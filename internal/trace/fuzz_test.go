package trace

import (
	"encoding/binary"
	"testing"

	"flacos/internal/fabric"
)

// FuzzTraceEventRoundTrip fuzzes the 64-byte slot format on three
// fronts: Encode/Decode must round-trip every event exactly; Decode of
// an arbitrary payload image must canonicalize (re-encoding what was
// decoded changes nothing); and the collector must survive a published
// slot being truncated or bit-flipped at home — the torn shapes a crash
// mid-write-back or a fault-injected line can leave — by skipping the
// slot, never by panicking or surfacing an event that fails the sanity
// checks.
func FuzzTraceEventRoundTrip(f *testing.F) {
	f.Add(uint64(123), uint8(1), uint8(4), uint8(0), uint8(1), uint64(7), uint64(9), []byte{0xff}, uint8(60), uint8(3))
	f.Add(uint64(0), uint8(0), uint8(0), uint8(0), uint8(0), uint64(0), uint64(0), []byte{}, uint8(0), uint8(0))
	f.Add(^uint64(0), uint8(255), uint8(255), uint8(255), uint8(255), ^uint64(0), ^uint64(0), []byte{1, 2, 3}, uint8(56), uint8(255))
	f.Fuzz(func(t *testing.T, ts uint64, sub, kind, node, flags uint8, arg0, arg1 uint64, raw []byte, corruptOff, corruptXor uint8) {
		// 1. Exact round-trip for every representable event.
		ev := Event{
			TS:    ts,
			Sub:   Subsys(sub),
			Kind:  Kind(kind),
			Node:  node,
			Flags: Flags(flags),
			Arg0:  arg0,
			Arg1:  arg1,
		}
		if got := Decode(Encode(ev)); got != ev {
			t.Fatalf("round trip mangled event:\n in  %+v\n out %+v", ev, got)
		}

		// 2. Decode of arbitrary bytes canonicalizes: whatever meaning
		// Decode assigns to a hostile image, Encode preserves it.
		var img [payloadBytes]byte
		copy(img[:], raw)
		d1 := Decode(img)
		if d2 := Decode(Encode(d1)); d2 != d1 {
			t.Fatalf("canonicalization unstable:\n first  %+v\n second %+v", d1, d2)
		}

		// 3. Corrupt a genuinely published slot at home and collect. The
		// fuzzer picks the byte and the mask, covering payload tears
		// (sanity-check skips), sequence-word tears (ticket mapping
		// rejects) and the identity flip (mask 0) which must still
		// collect cleanly.
		fab := fabric.New(fabric.Config{GlobalSize: 1 << 16, Nodes: 1})
		rec := New(fab, Config{RingCap: 2})
		w := rec.Writer(0)
		w.Emit(SubApp, KMark, FlagBegin, arg0, arg1)
		n := fab.Node(0)

		slot := rec.ringG // node 0, slot 0: the ticket-0 event just emitted
		var line [slotBytes]byte
		n.InvalidateRange(slot, slotBytes)
		n.Read(slot, line[:])
		line[corruptOff%slotBytes] ^= corruptXor
		if len(raw) > 0 && raw[0]&1 == 1 {
			// Truncate: zero the line from the corruption point on, the
			// shape of a write-back that never finished.
			for i := int(corruptOff % slotBytes); i < slotBytes; i++ {
				line[i] = 0
			}
		}
		n.Write(slot, line[:])
		n.WriteBackRange(slot, slotBytes)

		snap := rec.Collector().SnapshotNode(n, 0, false)
		for _, got := range snap.Events {
			if int(got.Node) != 0 || got.Sub >= numSubsys || got.Kind >= numKinds {
				t.Fatalf("collector surfaced an insane event from a corrupt slot: %+v", got)
			}
			if got.Seq != 0 {
				t.Fatalf("node 0 emitted only ticket 0, got seq %d", got.Seq)
			}
			seq := binary.LittleEndian.Uint64(line[offSeq:])
			if seq != 1 {
				t.Fatalf("collector accepted slot with sequence word %d as ticket 0", seq)
			}
		}
	})
}
