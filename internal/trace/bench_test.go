package trace

import (
	"testing"

	"flacos/internal/fabric"
)

// BenchmarkEmit measures the wall-clock hot path of one event: compose,
// full-line cached write, explicit write-back. The ring is drained every
// half capacity so the benchmark never enters the (cheaper) drop path.
func BenchmarkEmit(b *testing.B) {
	f := fabric.New(fabric.Config{
		GlobalSize: 64 << 20, Nodes: 2,
		CacheCapacityLines: -1, Latency: fabric.DefaultLatency(),
	})
	rec := New(f, Config{RingCap: 1 << 16})
	w := rec.Writer(0)
	c := rec.Collector()
	drain := int(rec.Cap() / 2)
	reader := f.Node(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Emit(SubApp, KMark, 0, uint64(i), 0)
		if i%drain == drain-1 {
			b.StopTimer()
			c.SnapshotNode(reader, 0, true)
			b.StartTimer()
		}
	}
	if d := w.Dropped(); d != 0 {
		b.Fatalf("benchmark dropped %d events; the drop path polluted the measurement", d)
	}
}
