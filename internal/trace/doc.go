// Package trace is FlacOS's rack-wide flight recorder: an always-on,
// low-overhead event log whose buffers live in the offset-addressed
// global-memory arena, so a surviving node can extract and merge a
// crashed node's pre-crash events — post-mortem debugging across the
// fabric, which is exactly what a partially-shared OS makes possible.
//
// Each node owns a fixed-size ring of 64-byte event records (one cache
// line each: timestamp, subsystem/kind/node/flags, two operand words,
// and a publication sequence). The writer never blocks and never takes a
// lock: it claims a ticket with a node-local atomic, composes the whole
// record as a single full-line store, and pushes it to home memory with
// one explicit write-back. The record's sequence word is the line's LAST
// word, and the fabric commits line words in ascending order, so a
// record becomes visible at home atomically-enough: a reader either sees
// the old sequence (and ignores the slot) or the new sequence with the
// payload already landed. A node that crashes mid-emit loses at most the
// records it had not yet written back; everything published survives in
// home memory.
//
// When the ring is full (the collector's consumption cursor has fallen a
// full ring behind), new events are dropped and counted — the hot path
// never waits for a reader.
//
// The Collector snapshots every node's ring through any live node,
// invalidating its own cached copies first, validates each slot with a
// sequence double-read (rejecting slots that are mid-overwrite or
// corrupted by fault injection), merges all nodes by virtual timestamp,
// and renders a human-readable timeline or a Chrome trace_event JSON
// blob (open via chrome://tracing or https://ui.perfetto.dev).
//
// Timestamps come from the fabric's virtual-latency clock (Node
// VirtualNS); when the fabric runs with LatencyOff the recorder falls
// back to wall-clock nanoseconds since the recorder was created, so
// traces stay ordered in unit tests too.
package trace
