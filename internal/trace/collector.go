package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"flacos/internal/fabric"
)

// Collector extracts and merges trace rings. Any live node can collect
// any ring — including a crashed node's, which is the whole point: the
// rings live in home global memory, so whatever a dead node published
// before crashing is still there for its peers to read. One collector
// at a time: snapshots are serialized by an internal mutex, and the
// consumption cursor assumes a single consumer.
type Collector struct {
	rec *Recorder
	mu  sync.Mutex
}

// Collector returns a collector for r's rings.
func (r *Recorder) Collector() *Collector { return &Collector{rec: r} }

// NodeSnapshot is one ring's extracted contents.
type NodeSnapshot struct {
	Node    int
	Events  []Event // ticket order
	Dropped uint64  // ring-full drops the node counted (from the header)
	Skipped int     // slots rejected as unstable or corrupt
}

// SnapshotNode reads node's ring through reader (any live node) and
// returns every published, still-live event. With consume set the
// collector advances the node's tail cursor past everything it saw,
// freeing those slots for reuse; events still being written at that
// moment may then be discarded unobserved — the flight-recorder
// contract is at-most-once collection, not exactly-once delivery.
func (c *Collector) SnapshotNode(reader *fabric.Node, node int, consume bool) NodeSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotNodeLocked(reader, node, consume)
}

func (c *Collector) snapshotNodeLocked(reader *fabric.Node, node int, consume bool) NodeSnapshot {
	r := c.rec
	hdr := r.hdrG.Add(uint64(node) * fabric.LineSize)
	base := r.ringG.Add(uint64(node) * r.cap * slotBytes)
	snap := NodeSnapshot{
		Node:    node,
		Dropped: reader.AtomicLoad64(hdr.Add(offDropped)),
	}
	tail := reader.AtomicLoad64(hdr.Add(offTail))
	maxTicket := uint64(0)
	for i := uint64(0); i < r.cap; i++ {
		g := base.Add(i * slotBytes)
		seqG := g.Add(offSeq)
		for attempt := 0; ; attempt++ {
			if attempt == 4 {
				snap.Skipped++ // never stabilized under live rewriting
				break
			}
			s1 := reader.AtomicLoad64(seqG)
			if s1 == 0 {
				break // never written
			}
			t := s1 - 1
			if t < tail || t&(r.cap-1) != i {
				// Already consumed, or a sequence word mangled by fault
				// injection: either way the slot holds nothing live.
				break
			}
			if t >= tail+r.cap {
				// A ticket the writer could not have claimed while the
				// cursor was at tail: the ring holds at most cap live
				// events. Either the sequence word was mangled at home
				// (torn line, fault injection) or the writer lapped this
				// snapshot mid-scan; in both cases the slot is not data,
				// and accepting the ticket would let a consume yank the
				// tail cursor arbitrarily far forward and wedge the ring.
				snap.Skipped++
				break
			}
			// The reader may hold a stale cached copy from an earlier
			// snapshot; drop it so Read refetches from home.
			reader.InvalidateRange(g, slotBytes)
			var pb [payloadBytes]byte
			reader.Read(g, pb[:])
			if reader.AtomicLoad64(seqG) != s1 {
				continue // overwritten mid-read; retry
			}
			ev := Decode(pb)
			if int(ev.Node) != node || ev.Sub >= numSubsys || ev.Kind >= numKinds {
				// Payload failed sanity checks: count it and move on
				// rather than poisoning the merged timeline.
				snap.Skipped++
				break
			}
			ev.Seq = t
			snap.Events = append(snap.Events, ev)
			if t > maxTicket {
				maxTicket = t
			}
			break
		}
	}
	sort.Slice(snap.Events, func(a, b int) bool { return snap.Events[a].Seq < snap.Events[b].Seq })
	if consume {
		newTail := tail
		if len(snap.Events) > 0 && maxTicket+1 > newTail {
			newTail = maxTicket + 1
		}
		// Dropped tickets never land in a slot; the writer's drop path
		// records how far its claims reached so the cursor can skip the
		// holes and un-wedge a ring that filled up.
		if claimed := reader.AtomicLoad64(hdr.Add(offClaimed)); claimed > newTail {
			newTail = claimed
		}
		if newTail != tail {
			reader.AtomicStore64(hdr.Add(offTail), newTail)
		}
	}
	return snap
}

// RackTrace is every node's snapshot merged into one timeline.
type RackTrace struct {
	Nodes  []NodeSnapshot
	Events []Event // merged: by timestamp, then node, then ticket
}

// Snapshot captures all rings through reader and merges them by virtual
// timestamp (node then ticket break ties deterministically).
func (c *Collector) Snapshot(reader *fabric.Node, consume bool) *RackTrace {
	c.mu.Lock()
	defer c.mu.Unlock()
	rt := &RackTrace{}
	for node := 0; node < c.rec.fab.NumNodes(); node++ {
		ns := c.snapshotNodeLocked(reader, node, consume)
		rt.Nodes = append(rt.Nodes, ns)
		rt.Events = append(rt.Events, ns.Events...)
	}
	sort.Slice(rt.Events, func(a, b int) bool {
		ea, eb := rt.Events[a], rt.Events[b]
		if ea.TS != eb.TS {
			return ea.TS < eb.TS
		}
		if ea.Node != eb.Node {
			return ea.Node < eb.Node
		}
		return ea.Seq < eb.Seq
	})
	return rt
}

// TotalDropped sums ring-full drops across all nodes.
func (t *RackTrace) TotalDropped() uint64 {
	var d uint64
	for _, ns := range t.Nodes {
		d += ns.Dropped
	}
	return d
}

// TotalSkipped sums slots rejected as unstable or corrupt.
func (t *RackTrace) TotalSkipped() int {
	var s int
	for _, ns := range t.Nodes {
		s += ns.Skipped
	}
	return s
}

// Count returns how many events survived the merge.
func (t *RackTrace) Count() int { return len(t.Events) }

// Timeline renders the whole merged trace as human-readable text, one
// line per event, timestamped relative to the earliest event.
func (t *RackTrace) Timeline() string { return t.timeline(t.Events) }

// TimelineTail renders only the last max events — the moments before a
// failure, which is what post-mortems read first.
func (t *RackTrace) TimelineTail(max int) string {
	evs := t.Events
	if max > 0 && len(evs) > max {
		evs = evs[len(evs)-max:]
	}
	return t.timeline(evs)
}

func (t *RackTrace) timeline(evs []Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rack trace: %d/%d events, %d nodes, dropped=%d skipped=%d\n",
		len(evs), len(t.Events), len(t.Nodes), t.TotalDropped(), t.TotalSkipped())
	if len(evs) == 0 {
		return b.String()
	}
	t0 := t.Events[0].TS
	for _, e := range evs {
		fmt.Fprintf(&b, "  +%-10s n%d %-22s %-5s arg0=%#x arg1=%d\n",
			VNS(e.TS-t0), e.Node, e.Name(), e.Flags, e.Arg0, e.Arg1)
	}
	return b.String()
}

// chromeEvent is one Chrome trace_event record. ts/dur are microseconds.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Ph    string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   *float64          `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]uint64 `json:"args,omitempty"`
}

// ChromeJSON renders the merged trace in Chrome trace_event format
// (load into chrome://tracing or ui.perfetto.dev). Nodes map to pids,
// subsystems to tids; Begin/End pairs on the same (node, subsystem,
// arg0) key become complete "X" spans, everything else an instant.
func (t *RackTrace) ChromeJSON() []byte {
	type spanKey struct {
		node uint8
		sub  Subsys
		arg0 uint64
	}
	var out []chromeEvent
	open := make(map[spanKey][]Event)
	instant := func(e Event) {
		out = append(out, chromeEvent{
			Name: e.Name(), Cat: e.Sub.String(), Ph: "i",
			TS: float64(e.TS) / 1e3, PID: int(e.Node), TID: int(e.Sub),
			Scope: "t",
			Args:  map[string]uint64{"arg0": e.Arg0, "arg1": e.Arg1, "seq": e.Seq},
		})
	}
	for _, e := range t.Events {
		k := spanKey{e.Node, e.Sub, e.Arg0}
		switch {
		case e.Flags&FlagBegin != 0:
			open[k] = append(open[k], e)
		case e.Flags&FlagEnd != 0:
			stack := open[k]
			if len(stack) == 0 {
				instant(e) // unmatched end (begin lost to crash or drop)
				continue
			}
			b := stack[len(stack)-1]
			open[k] = stack[:len(stack)-1]
			dur := float64(e.TS-b.TS) / 1e3
			out = append(out, chromeEvent{
				Name: b.Name(), Cat: b.Sub.String(), Ph: "X",
				TS: float64(b.TS) / 1e3, Dur: &dur,
				PID: int(b.Node), TID: int(b.Sub),
				Args: map[string]uint64{
					"arg0": b.Arg0, "arg1": b.Arg1,
					"end_arg1": e.Arg1, "seq": b.Seq,
				},
			})
		default:
			instant(e)
		}
	}
	// Begins whose end never happened (task in flight at snapshot, or
	// the runner crashed): surface them as instants rather than hiding.
	for _, stack := range open {
		for _, e := range stack {
			instant(e)
		}
	}
	blob, err := json.Marshal(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{out})
	if err != nil {
		// Marshal of plain structs and uint64 maps cannot fail; keep the
		// signature error-free for callers writing artifacts.
		return []byte(`{"traceEvents":[]}`)
	}
	return blob
}
