package trace

import (
	"encoding/binary"
	"sync/atomic"
	"time"

	"flacos/internal/fabric"
)

// Config sizes the recorder.
type Config struct {
	// RingCap is each node's ring capacity in events, rounded up to a
	// power of two. Default 1<<16 (64Ki events, 4 MiB of arena per node).
	RingCap uint64
	// FabricEvents installs per-node fabric op hooks recording cache
	// misses, write-backs and fences. This is a firehose — every miss
	// becomes an event whose emission itself costs fabric traffic — so
	// it is off by default and meant for short forensic windows.
	FabricEvents bool
}

const (
	slotBytes = fabric.LineSize
	// offSeq is the slot's publication-sequence word: the LAST word of
	// the line. fabric.writeLineHome commits words in ascending order,
	// so when a reader observes the sequence at home, the payload words
	// of the same flush have already landed.
	offSeq = payloadBytes

	// Per-node header line words.
	offDropped = 0 // events dropped because the ring was full
	offTail    = 8 // collector's consumption cursor (first live ticket)
	// offClaimed is a high-watermark (ticket+1) published by the DROP
	// path only: dropped tickets never occupy a slot, so without this
	// hint a consume could not advance the tail past them and a ring
	// that filled once would stay full forever.
	offClaimed = 16
)

// Recorder owns the rack's trace arena: one header line and one event
// ring per node, all addressed by offset so no Go pointers cross nodes.
type Recorder struct {
	fab     *fabric.Fabric
	cap     uint64 // slots per node ring, power of two
	hdrG    fabric.GPtr
	ringG   fabric.GPtr
	writers []*Writer
	wall    bool // fabric charges no latency: fall back to wall clock
	epoch   time.Time
}

// New reserves the trace arena on f and returns a ready recorder. Every
// node gets a Writer immediately; emission is enabled from the start.
func New(f *fabric.Fabric, cfg Config) *Recorder {
	want := cfg.RingCap
	if want == 0 {
		want = 1 << 16
	}
	cap := uint64(1)
	for cap < want {
		cap <<= 1
	}
	nn := uint64(f.NumNodes())
	r := &Recorder{
		fab:   f,
		cap:   cap,
		hdrG:  f.Reserve(nn*fabric.LineSize, fabric.LineSize),
		ringG: f.Reserve(nn*cap*slotBytes, fabric.LineSize),
		wall:  f.Latency().Mode == fabric.LatencyOff,
		epoch: time.Now(),
	}
	r.writers = make([]*Writer, f.NumNodes())
	for i := range r.writers {
		r.writers[i] = &Writer{
			rec:  r,
			n:    f.Node(i),
			base: r.ringG.Add(uint64(i) * cap * slotBytes),
			hdr:  r.hdrG.Add(uint64(i) * fabric.LineSize),
		}
	}
	if cfg.FabricEvents {
		r.InstallFabricHooks()
	}
	return r
}

// Cap returns the per-node ring capacity in events.
func (r *Recorder) Cap() uint64 { return r.cap }

// Fabric returns the fabric the recorder is attached to.
func (r *Recorder) Fabric() *fabric.Fabric { return r.fab }

// Writer returns node's writer. Writers are created eagerly; this is a
// slice index, cheap enough for hot paths to call per event.
func (r *Recorder) Writer(node int) *Writer {
	if r == nil {
		return nil
	}
	return r.writers[node]
}

// InstallFabricHooks wires an op hook into every node that records
// misses, write-backs and fences as SubFabric events. The recorder's
// own emission traffic is elided via the writer's suppression counter —
// otherwise each emit's write-back would recurse into another emit.
func (r *Recorder) InstallFabricHooks() {
	for i := 0; i < r.fab.NumNodes(); i++ {
		w := r.writers[i]
		r.fab.Node(i).SetOpHook(func(k fabric.OpKind, arg0, arg1 uint64) {
			if w.suppress.Load() > 0 {
				return
			}
			switch k {
			case fabric.OpMiss:
				w.Emit(SubFabric, KMiss, 0, arg0, 0)
			case fabric.OpWriteBack:
				w.Emit(SubFabric, KWriteBack, 0, arg0, 0)
			case fabric.OpWriteBackRange:
				// One ranged event per maintenance burst: first written
				// line and line count, full fidelity at 1/Nth the emits.
				w.Emit(SubFabric, KWriteBackRange, 0, arg0, arg1)
			case fabric.OpFence:
				w.Emit(SubFabric, KFence, 0, 0, 0)
			}
		})
	}
}

// RemoveFabricHooks uninstalls the op hooks installed above.
func (r *Recorder) RemoveFabricHooks() {
	for i := 0; i < r.fab.NumNodes(); i++ {
		r.fab.Node(i).SetOpHook(nil)
	}
}

// Writer is one node's lock-free emitter. All goroutines playing that
// node's CPUs share it; a ticket counter serializes slot claims without
// any lock, and each record is published with a single explicit
// write-back — the hot path never waits for a reader and never blocks.
type Writer struct {
	rec  *Recorder
	n    *fabric.Node
	base fabric.GPtr // this node's ring
	hdr  fabric.GPtr // this node's header line

	// reserve is node-local CPU state (a ticket counter in the node's
	// private memory), not fabric state: it does not survive a crash and
	// costs nothing to bump.
	reserve  atomic.Uint64
	tailSeen atomic.Uint64 // local cache of the header tail cursor
	dropped  atomic.Uint64 // local mirror of the header dropped count
	// suppress marks the writer as inside Emit so the fabric op hook
	// does not trace the recorder's own cache traffic.
	suppress atomic.Int32
}

// Node returns the node this writer emits for.
func (w *Writer) Node() *fabric.Node { return w.n }

// Dropped returns how many events this writer discarded ring-full.
func (w *Writer) Dropped() uint64 {
	if w == nil {
		return 0
	}
	return w.dropped.Load()
}

// emitTestHook, when set (tests only, before any writer runs), fires
// after the record line is composed in the node cache but before the
// write-back that publishes it — the window where a crash loses the
// event entirely rather than tearing it.
var emitTestHook func(node int, ticket uint64)

func (w *Writer) now() uint64 {
	if w.rec.wall {
		return uint64(time.Since(w.rec.epoch))
	}
	return w.n.VirtualNS()
}

// Emit records one event. Nil-safe: a nil writer (tracing disabled)
// does nothing. When the ring is full — the collector's cursor a whole
// ring behind — the event is dropped and counted instead of blocking.
// Emitting on a crashed node panics like any other fabric op; callers
// on crash-tolerant paths already absorb that panic.
func (w *Writer) Emit(sub Subsys, kind Kind, flags Flags, arg0, arg1 uint64) {
	if w == nil {
		return
	}
	t := w.reserve.Add(1) - 1
	if t >= w.tailSeen.Load()+w.rec.cap {
		// Apparently full: refresh the cursor once, then really drop.
		tail := w.n.AtomicLoad64(w.hdr.Add(offTail))
		w.tailSeen.Store(tail)
		if t >= tail+w.rec.cap {
			w.dropped.Add(1)
			w.n.Add64(w.hdr.Add(offDropped), 1)
			for { // publish the claimed high-watermark (CAS-max)
				cur := w.n.AtomicLoad64(w.hdr.Add(offClaimed))
				if t+1 <= cur || w.n.CAS64(w.hdr.Add(offClaimed), cur, t+1) {
					break
				}
			}
			return
		}
	}
	pb := Encode(Event{
		TS:    w.now(),
		Node:  uint8(w.n.ID()),
		Sub:   sub,
		Kind:  kind,
		Flags: flags & flagsMask,
		Arg0:  arg0,
		Arg1:  arg1,
	})
	var line [slotBytes]byte
	copy(line[:], pb[:])
	binary.LittleEndian.PutUint64(line[offSeq:], t+1)
	g := w.base.Add((t & (w.rec.cap - 1)) * slotBytes)
	w.suppress.Add(1)
	defer w.suppress.Add(-1)
	// One full-line store (no write-allocate fetch), then one explicit
	// write-back. The sequence word rides in the same line, last in
	// commit order, so the record becomes visible at home only after its
	// payload — and a crash right here loses the event cleanly instead
	// of publishing a torn one.
	w.n.Write(g, line[:])
	if emitTestHook != nil {
		emitTestHook(w.n.ID(), t)
	}
	w.n.WriteBackRange(g, slotBytes)
}

// Begin emits a span-begin event; pair with End on the same (sub, arg0).
func (w *Writer) Begin(sub Subsys, kind Kind, arg0, arg1 uint64) {
	w.Emit(sub, kind, FlagBegin, arg0, arg1)
}

// End emits a span-end event closing the most recent Begin with the
// same (sub, arg0) on this node.
func (w *Writer) End(sub Subsys, kind Kind, arg0, arg1 uint64) {
	w.Emit(sub, kind, FlagEnd, arg0, arg1)
}
