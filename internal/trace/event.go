package trace

import (
	"encoding/binary"
	"fmt"

	"flacos/internal/metrics"
)

// Subsys identifies the subsystem that emitted an event.
type Subsys uint8

// Subsystem ids, one per instrumented layer.
const (
	SubFabric Subsys = iota
	SubSched
	SubFS
	SubMemsys
	SubServerless
	SubTorture
	SubApp
	SubRedis
	SubMembership
	SubHealth
	numSubsys
)

func (s Subsys) String() string {
	switch s {
	case SubFabric:
		return "fabric"
	case SubSched:
		return "sched"
	case SubFS:
		return "fs"
	case SubMemsys:
		return "memsys"
	case SubServerless:
		return "serverless"
	case SubTorture:
		return "torture"
	case SubApp:
		return "app"
	case SubRedis:
		return "redis"
	case SubMembership:
		return "membership"
	case SubHealth:
		return "health"
	}
	return fmt.Sprintf("sub(%d)", uint8(s))
}

// Kind is the event type within a subsystem.
type Kind uint8

// Event kinds. The recorder does not interpret them beyond naming; the
// operand words' meaning is per-kind and documented at the emit site.
const (
	KNone Kind = iota
	// fabric (firehose, opt-in): arg0 = global line index.
	KMiss
	KWriteBack
	KFence
	// sched: arg0 = task slot.
	KDispatch    // begin: a worker claimed the task; arg1 = attempt
	KSteal       // the claimer was not the assigned node; arg1 = assigned
	KLeaseExpiry // keeper reclaimed a dead runner's task; arg1 = old owner
	KComplete    // end: completion CAS landed; arg1 = attempt
	// fs: arg0 = file id or page key.
	KJournalCommit // a metadata op committed; arg1 = op code
	KEvict         // a page-cache frame was retired; arg1 = frame index
	// memsys: arg0 = virtual page number.
	KShootdown // TLB shootdown broadcast; arg1 = peers signaled
	KMigrate   // page relocated local -> global; arg1 = owner node
	KPromote   // tiering promotion; instant: arg1 = dest node (^0 = warm tier); span: arg0 = step
	KDemote    // tiering demotion; instant: arg1 = dest tier (0 warm, 1 cold); span: arg0 = step
	// serverless: arg0 = function-name hash.
	KInvoke // begin/end: one invocation; arg1 = payload bytes
	KPlace  // placement decision; arg1 = chosen node
	// torture: arg0 = schedule EventKind, arg1 = victim node / rate.
	KFault
	// app: free-form marks from tests and experiments.
	KMark
	// redis: arg0 = 64-bit key hash.
	KSet     // begin/end: one rack-store SET round trip; arg1 = value bytes
	KGet     // begin/end: one rack-store GET round trip; arg1 = value bytes (0 on miss)
	KCombine // begin/end: one combined hot-key batch at the owner; arg1 = fan-in
	// membership: arg0 = table slot.
	KJoin    // a member activated (Joining -> Alive); arg1 = generation
	KSuspect // a detector suspected the slot; arg1 = suspected node
	KRefute  // the occupant refuted a suspicion; arg1 = new incarnation
	KDead    // the rack declared the slot dead; arg1 = dead node
	KLeft    // clean departure; arg1 = generation
	KResync  // begin/end: a hot-plugged node's resync span; arg1 = node
	// redis (membership-driven): arg0 = fenced node.
	KViewFence // a dead node's views were fenced; arg1 = fence generation
	// health: arg0 = degraded/drained node.
	KDegraded   // an anomaly detector marked the node Degraded; arg1 = generation
	KRecovered  // the node's signals returned to normal; arg1 = generation
	KDrain      // begin/end: the self-healing drain pipeline; arg1 = generation (end: stage mask)
	KFenceEarly // the store was fenced BEFORE node death; arg1 = fenced generation
	KRePlace    // tiering stopped promoting toward the node; arg1 = generation
	KRejoin     // begin/end: recovery rejoin span; arg1 = generation
	// fabric (firehose, opt-in), ranged: one event per maintenance burst.
	// arg0 = first (lowest) line index written, arg1 = lines written.
	// Replaces what used to be arg1 per-line KWriteBack events, so the
	// firehose keeps full traffic fidelity at 1/Nth the emit cost.
	KWriteBackRange
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KNone:
		return "none"
	case KMiss:
		return "miss"
	case KWriteBack:
		return "write-back"
	case KFence:
		return "fence"
	case KDispatch:
		return "dispatch"
	case KSteal:
		return "steal"
	case KLeaseExpiry:
		return "lease-expiry"
	case KComplete:
		return "complete"
	case KJournalCommit:
		return "journal-commit"
	case KEvict:
		return "evict"
	case KShootdown:
		return "shootdown"
	case KMigrate:
		return "migrate"
	case KPromote:
		return "promote"
	case KDemote:
		return "demote"
	case KInvoke:
		return "invoke"
	case KPlace:
		return "place"
	case KFault:
		return "fault"
	case KMark:
		return "mark"
	case KSet:
		return "set"
	case KGet:
		return "get"
	case KCombine:
		return "combine"
	case KJoin:
		return "join"
	case KSuspect:
		return "suspect"
	case KRefute:
		return "refute"
	case KDead:
		return "dead"
	case KLeft:
		return "left"
	case KResync:
		return "resync"
	case KViewFence:
		return "view-fence"
	case KDegraded:
		return "degraded"
	case KRecovered:
		return "recovered"
	case KDrain:
		return "drain"
	case KFenceEarly:
		return "fence-early"
	case KRePlace:
		return "re-place"
	case KRejoin:
		return "rejoin"
	case KWriteBackRange:
		return "write-back-range"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Flags mark span structure: a Begin/End pair on the same (node,
// subsystem, arg0) key brackets one span; an event with neither flag is
// an instant.
type Flags uint8

const (
	FlagBegin Flags = 1 << iota
	FlagEnd

	flagsMask = FlagBegin | FlagEnd
)

func (f Flags) String() string {
	switch f & flagsMask {
	case FlagBegin:
		return "begin"
	case FlagEnd:
		return "end"
	case FlagBegin | FlagEnd:
		return "begin|end"
	}
	return "-"
}

// Event is one decoded trace record.
type Event struct {
	TS    uint64 // virtual-ns timestamp on the emitting node's clock
	Seq   uint64 // per-node emission ticket: total order within the node
	Node  uint8  // emitting node id
	Sub   Subsys
	Kind  Kind
	Flags Flags
	Arg0  uint64
	Arg1  uint64
}

// payloadBytes is the encoded size of an event inside its ring slot. The
// slot's final word — outside the payload — is the publication sequence,
// which makes a whole slot exactly one cache line.
const payloadBytes = 56

// Encode packs e's payload (everything but Seq, which lives in the
// slot's publication word) into the binary slot image: word 0 the
// timestamp, word 1 the packed identity sub(8)|kind(8)|node(8)|flags(8)
// in the high bytes, words 2-3 the operands, the rest reserved zero.
func Encode(e Event) [payloadBytes]byte {
	var b [payloadBytes]byte
	binary.LittleEndian.PutUint64(b[0:], e.TS)
	meta := uint64(e.Sub)<<56 | uint64(e.Kind)<<48 | uint64(e.Node)<<40 | uint64(e.Flags)<<32
	binary.LittleEndian.PutUint64(b[8:], meta)
	binary.LittleEndian.PutUint64(b[16:], e.Arg0)
	binary.LittleEndian.PutUint64(b[24:], e.Arg1)
	return b
}

// Decode unpacks a slot payload image written by Encode. Seq is left
// zero; the collector fills it from the slot's publication word.
func Decode(b [payloadBytes]byte) Event {
	meta := binary.LittleEndian.Uint64(b[8:])
	return Event{
		TS:    binary.LittleEndian.Uint64(b[0:]),
		Sub:   Subsys(meta >> 56),
		Kind:  Kind(meta >> 48),
		Node:  uint8(meta >> 40),
		Flags: Flags(meta >> 32),
		Arg0:  binary.LittleEndian.Uint64(b[16:]),
		Arg1:  binary.LittleEndian.Uint64(b[24:]),
	}
}

// Name returns the event's "subsystem/kind" label.
func (e Event) Name() string { return e.Sub.String() + "/" + e.Kind.String() }

// String renders one event for logs and timelines.
func (e Event) String() string {
	return fmt.Sprintf("n%d #%d vt=%s %-20s %-5s arg0=%#x arg1=%d",
		e.Node, e.Seq, VNS(e.TS), e.Name(), e.Flags, e.Arg0, e.Arg1)
}

// VNS formats a virtual-nanosecond quantity with an adaptive unit
// ("1.75us", "21.07ms"). It is the one shared formatter for virtual
// time: sched's lease-expiry log and torture's event log both use it,
// so rack timelines read consistently across subsystems.
func VNS(ns uint64) string { return metrics.FormatNS(float64(ns)) }
