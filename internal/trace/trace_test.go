package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"flacos/internal/fabric"
)

func testFabric(t *testing.T, nodes int) *fabric.Fabric {
	t.Helper()
	return fabric.New(fabric.Config{
		GlobalSize:         4 << 20,
		Nodes:              nodes,
		CacheCapacityLines: -1,
	})
}

// TestEncodeDecodeQuick: Encode/Decode round-trips every payload field
// for arbitrary values (Seq is carried by the slot's publication word,
// not the payload, so it is excluded by construction).
func TestEncodeDecodeQuick(t *testing.T) {
	prop := func(ts uint64, sub, kind, node, flags uint8, arg0, arg1 uint64) bool {
		in := Event{
			TS:    ts,
			Sub:   Subsys(sub),
			Kind:  Kind(kind),
			Node:  node,
			Flags: Flags(flags),
			Arg0:  arg0,
			Arg1:  arg1,
		}
		return Decode(Encode(in)) == in
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestEmitCollectRoundTrip(t *testing.T) {
	f := testFabric(t, 2)
	r := New(f, Config{RingCap: 256})
	w0, w1 := r.Writer(0), r.Writer(1)
	for i := uint64(0); i < 50; i++ {
		w0.Emit(SubApp, KMark, 0, i, i*2)
		w1.Emit(SubSched, KDispatch, FlagBegin, i, 7)
	}
	rt := r.Collector().Snapshot(f.Node(0), false)
	if rt.Count() != 100 {
		t.Fatalf("merged %d events, want 100", rt.Count())
	}
	if d := rt.TotalDropped(); d != 0 {
		t.Fatalf("dropped %d events, want 0", d)
	}
	for _, ns := range rt.Nodes {
		if len(ns.Events) != 50 {
			t.Fatalf("node %d: %d events, want 50", ns.Node, len(ns.Events))
		}
		for i, ev := range ns.Events {
			if ev.Seq != uint64(i) {
				t.Fatalf("node %d: event %d has seq %d", ns.Node, i, ev.Seq)
			}
			if int(ev.Node) != ns.Node {
				t.Fatalf("node %d: event attributed to node %d", ns.Node, ev.Node)
			}
			if ev.Arg0 != uint64(i) {
				t.Fatalf("node %d event %d: arg0=%d", ns.Node, i, ev.Arg0)
			}
		}
	}
}

// TestCrashRecovery is the headline guarantee: a crashed node's
// published events are recovered and merged by a surviving node.
func TestCrashRecovery(t *testing.T) {
	f := testFabric(t, 3)
	r := New(f, Config{RingCap: 256})
	for i := uint64(0); i < 100; i++ {
		r.Writer(1).Emit(SubFS, KJournalCommit, 0, i, 0xdead)
	}
	r.Writer(0).Emit(SubApp, KMark, 0, 1, 1)
	f.Node(1).Crash()

	rt := r.Collector().Snapshot(f.Node(0), false)
	var fromDead []Event
	for _, ev := range rt.Events {
		if ev.Node == 1 {
			fromDead = append(fromDead, ev)
		}
	}
	if len(fromDead) != 100 {
		t.Fatalf("recovered %d pre-crash events from node 1, want 100", len(fromDead))
	}
	for _, ev := range fromDead {
		if ev.Sub != SubFS || ev.Kind != KJournalCommit || ev.Arg1 != 0xdead {
			t.Fatalf("torn event recovered from crashed node: %v", ev)
		}
	}
	if rt.Count() != 101 {
		t.Fatalf("merged %d events, want 101", rt.Count())
	}
}

func TestRingFullDropsNewest(t *testing.T) {
	f := testFabric(t, 1)
	r := New(f, Config{RingCap: 8})
	w := r.Writer(0)
	for i := uint64(0); i < 20; i++ {
		w.Emit(SubApp, KMark, 0, i, 0)
	}
	if d := w.Dropped(); d != 12 {
		t.Fatalf("Dropped() = %d, want 12", d)
	}
	c := r.Collector()
	rt := c.Snapshot(f.Node(0), true)
	if rt.Count() != 8 || rt.TotalDropped() != 12 {
		t.Fatalf("snapshot: %d events dropped=%d, want 8/12", rt.Count(), rt.TotalDropped())
	}
	for i, ev := range rt.Events {
		if ev.Arg0 != uint64(i) {
			t.Fatalf("survivor %d is arg0=%d; drop-newest should keep the oldest 8", i, ev.Arg0)
		}
	}
	// Consuming freed the ring: the writer can publish again.
	w.Emit(SubApp, KMark, 0, 99, 0)
	rt = c.Snapshot(f.Node(0), false)
	if rt.Count() != 1 || rt.Events[0].Arg0 != 99 {
		t.Fatalf("after consume: %d events (first arg0=%v), want the single new event",
			rt.Count(), rt.Events)
	}
}

func TestSpansAndChromeJSON(t *testing.T) {
	f := testFabric(t, 2)
	r := New(f, Config{RingCap: 64})
	w := r.Writer(0)
	w.Begin(SubSched, KDispatch, 42, 1)
	w.End(SubSched, KComplete, 42, 1)
	w.Begin(SubServerless, KInvoke, 7, 0) // left open: runner "crashed"
	w.Emit(SubMemsys, KShootdown, 0, 0x1000, 2)

	rt := r.Collector().Snapshot(f.Node(1), false)
	blob := rt.ChromeJSON()
	if !json.Valid(blob) {
		t.Fatalf("ChromeJSON is not valid JSON: %s", blob)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatal(err)
	}
	var complete, instants int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
			if ev["name"] != "sched/dispatch" {
				t.Fatalf("span name %q, want sched/dispatch", ev["name"])
			}
		case "i":
			instants++
		}
	}
	if complete != 1 || instants != 2 {
		t.Fatalf("chrome events: %d spans %d instants, want 1 and 2", complete, instants)
	}

	tl := rt.Timeline()
	for _, want := range []string{"sched/dispatch", "memsys/shootdown", "begin"} {
		if !strings.Contains(tl, want) {
			t.Fatalf("timeline missing %q:\n%s", want, tl)
		}
	}
}

func TestVNS(t *testing.T) {
	cases := map[uint64]string{
		0:         "0ns",
		750:       "750ns",
		1750:      "1.75us",
		2_500_000: "2.50ms",
		3 << 30:   "3.22s",
	}
	for ns, want := range cases {
		if got := VNS(ns); got != want {
			t.Fatalf("VNS(%d) = %q, want %q", ns, got, want)
		}
	}
}

func TestVirtualTimestamps(t *testing.T) {
	f := fabric.New(fabric.Config{
		GlobalSize:         4 << 20,
		Nodes:              1,
		CacheCapacityLines: -1,
		Latency:            fabric.DefaultLatency(),
	})
	r := New(f, Config{RingCap: 64})
	n := f.Node(0)
	w := r.Writer(0)
	w.Emit(SubApp, KMark, 0, 0, 0)
	n.ChargeNS(5000)
	w.Emit(SubApp, KMark, 0, 1, 0)
	rt := r.Collector().Snapshot(n, false)
	if rt.Count() != 2 {
		t.Fatalf("got %d events", rt.Count())
	}
	if gap := rt.Events[1].TS - rt.Events[0].TS; gap < 5000 {
		t.Fatalf("virtual timestamp gap %d, want >= 5000", gap)
	}
}

// TestFirehoseRangedWriteBack: with fabric events on, an application
// burst that dirties N lines and writes them back in one ranged call
// produces exactly ONE write-back-range event carrying the burst's first
// line and line count — not N per-line events — while misses keep their
// per-line records.
func TestFirehoseRangedWriteBack(t *testing.T) {
	f := testFabric(t, 1)
	r := New(f, Config{RingCap: 256, FabricEvents: true})
	n := f.Node(0)

	const lines = 8
	g := f.Reserve(lines*fabric.LineSize, fabric.LineSize)
	for l := uint64(0); l < lines; l++ {
		n.Store64(g.Add(l*fabric.LineSize), l)
	}
	n.WriteBackRange(g, lines*fabric.LineSize)
	r.RemoveFabricHooks()

	rt := r.Collector().Snapshot(n, false)
	var ranged, perLine, misses int
	for _, ns := range rt.Nodes {
		for _, ev := range ns.Events {
			switch ev.Kind {
			case KWriteBackRange:
				ranged++
				if ev.Arg0 != g.Line() || ev.Arg1 != lines {
					t.Errorf("ranged event arg0=%d arg1=%d, want first line %d count %d",
						ev.Arg0, ev.Arg1, g.Line(), lines)
				}
			case KWriteBack:
				perLine++
			case KMiss:
				misses++
			}
		}
	}
	if ranged != 1 {
		t.Errorf("got %d write-back-range events, want exactly 1", ranged)
	}
	if perLine != 0 {
		t.Errorf("got %d per-line write-back events riding an explicit ranged call, want 0", perLine)
	}
	if misses != lines {
		t.Errorf("got %d miss events, want %d (stores fetch each line once)", misses, lines)
	}
}
