package trace

import (
	"sync"
	"sync/atomic"
	"testing"

	"flacos/internal/fabric"
)

// TestCrashBetweenComposeAndPublish kills the node in the window after
// the record line is composed in the node's cache but before the
// write-back publishes it. The event must vanish cleanly: everything
// emitted earlier survives, nothing torn appears.
func TestCrashBetweenComposeAndPublish(t *testing.T) {
	f := testFabric(t, 2)
	r := New(f, Config{RingCap: 64})
	w := r.Writer(1)

	const crashAt = 10
	emitTestHook = func(node int, ticket uint64) {
		if node == 1 && ticket == crashAt {
			f.Node(1).Crash()
		}
	}
	defer func() { emitTestHook = nil }()

	emitted := 0
	func() {
		defer func() { recover() }() // the publish write-back panics
		for i := uint64(0); i < 20; i++ {
			w.Emit(SubSched, KDispatch, 0, i, i)
			emitted++
		}
	}()
	if emitted != crashAt {
		t.Fatalf("emitted %d events before dying, want %d", emitted, crashAt)
	}

	rt := r.Collector().Snapshot(f.Node(0), false)
	var got []Event
	for _, ev := range rt.Events {
		if ev.Node == 1 {
			got = append(got, ev)
		}
	}
	if len(got) != crashAt {
		t.Fatalf("recovered %d events, want exactly the %d published pre-crash", len(got), crashAt)
	}
	for i, ev := range got {
		if ev.Seq != uint64(i) || ev.Arg0 != uint64(i) || ev.Sub != SubSched || ev.Kind != KDispatch {
			t.Fatalf("event %d torn or out of range: %v", i, ev)
		}
	}
	if s := rt.TotalSkipped(); s != 0 {
		t.Fatalf("collector skipped %d slots; the half-written record must look unpublished, not corrupt", s)
	}
}

// TestHammerWhileSnapshotting drives one node's writer from several
// goroutines while a collector on another node snapshots continuously,
// then crashes the writer node mid-storm. No snapshot — during the
// storm, across the crash, or after — may contain a torn or
// out-of-range event.
func TestHammerWhileSnapshotting(t *testing.T) {
	const (
		emitters  = 4
		perEmit   = 2000
		total     = emitters * perEmit
		crashTick = total / 2
	)
	f := fabric.New(fabric.Config{
		GlobalSize:         16 << 20,
		Nodes:              2,
		CacheCapacityLines: -1,
	})
	r := New(f, Config{RingCap: 16384}) // > total: drops impossible
	w := r.Writer(1)
	c := r.Collector()

	// checkSnap validates one observation of node 1's ring.
	checkSnap := func(ns NodeSnapshot) {
		seen := make(map[uint64]bool, len(ns.Events))
		for _, ev := range ns.Events {
			if ev.Sub != SubApp || ev.Kind != KMark || int(ev.Node) != 1 {
				t.Errorf("foreign/torn event in ring: %v", ev)
			}
			// Each emitter g writes arg0 = g*perEmit + i with arg1 = arg0^magic.
			if ev.Arg0 >= total || ev.Arg1 != ev.Arg0^0xabcdef {
				t.Errorf("torn operands: %v", ev)
			}
			if seen[ev.Seq] {
				t.Errorf("duplicate ticket %d in one snapshot", ev.Seq)
			}
			seen[ev.Seq] = true
		}
	}

	var emittedTotal atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			defer func() { recover() }() // die with the node
			for i := 0; i < perEmit; i++ {
				arg0 := uint64(g*perEmit + i)
				w.Emit(SubApp, KMark, 0, arg0, arg0^0xabcdef)
				emittedTotal.Add(1)
			}
		}(g)
	}

	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			checkSnap(c.SnapshotNode(f.Node(0), 1, false))
		}
	}()

	// Crash node 1 mid-storm, then let the dust settle.
	for emittedTotal.Load() < crashTick {
	}
	f.Node(1).Crash()
	wg.Wait()
	close(stop)
	snapWG.Wait()

	final := c.SnapshotNode(f.Node(0), 1, false)
	checkSnap(final)
	if len(final.Events) == 0 {
		t.Fatal("no events survived the crash")
	}
	if final.Dropped != 0 {
		t.Fatalf("ring dropped %d events with cap > total", final.Dropped)
	}
	// At most `emitters` tickets were in flight (composed but not yet
	// written back) when the node died; everything else that was claimed
	// must have been recovered.
	claimed := emittedTotal.Load()
	if uint64(len(final.Events))+emitters < claimed {
		t.Fatalf("recovered %d of %d completed emits; published events were lost", len(final.Events), claimed)
	}
}
