package boot

import (
	"reflect"
	"testing"

	"flacos/internal/fabric"
)

// fuzzDesc is the table every corruption run publishes before scribbling.
var fuzzDesc = HWDesc{
	GlobalMemBytes: 1 << 30,
	BootSeq:        7,
	Nodes: []NodeDesc{
		{ID: 0, Cores: 8, Hops: 1, LocalMemMB: 4096},
		{ID: 1, Cores: 8, Hops: 2, LocalMemMB: 4096},
	},
	Devices: []DeviceDesc{
		{Name: "nvme0", Owner: 0, Kind: "block"},
		{Name: "eth0", Owner: 1, Kind: "nic"},
	},
}

// FuzzHWDescDecode throws arbitrary bytes at the payload parser: it must
// never panic, and anything it accepts must re-encode canonically
// (decode(encode(decode(x))) == decode(x)).
func FuzzHWDescDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(fuzzDesc.encode())
	f.Add(HWDesc{}.encode())
	// Truncations and hostile counts.
	enc := fuzzDesc.encode()
	f.Add(enc[:20])
	f.Add(enc[:len(enc)-3])
	f.Add(append(append([]byte{}, enc[:16]...), 0xff, 0xff, 0xff, 0xff))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := decode(data)
		if err != nil {
			return
		}
		d2, err := decode(d.encode())
		if err != nil || !reflect.DeepEqual(d, d2) {
			t.Fatalf("decode accepted %q but canonical round-trip gave (%+v, %v), want %+v", data, d2, err, d)
		}
	})
}

// FuzzBootDiscoverCorrupted publishes a valid table, then XOR-corrupts the
// payload (and, driven by the input, the header words) exactly as flaky
// hardware or a hostile node could. Discover must never panic and must
// reject every table that decodes differently from what was published.
func FuzzBootDiscoverCorrupted(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0x00, 0xff, 0x00, 0xff})
	f.Add([]byte{0xaa, 0x55, 0x03})
	f.Fuzz(func(t *testing.T, mask []byte) {
		const payloadCap = 4096
		fab := fabric.New(fabric.Config{GlobalSize: 1 << 16, Nodes: 1, CacheCapacityLines: -1})
		n := fab.Node(0)
		g := fab.Reserve(TableCap(payloadCap), fabric.LineSize)
		if err := Publish(n, g, fuzzDesc); err != nil {
			t.Fatal(err)
		}
		payloadLen := uint64(len(fuzzDesc.encode()))

		corrupted := false
		buf := make([]byte, 1)
		for i, c := range mask {
			if c == 0 {
				continue
			}
			switch {
			case i%17 == 13:
				// Scribble the length word (keeping the version so the
				// check under test is the length bound, not the version).
				meta := n.AtomicLoad64(g.Add(8))
				n.AtomicStore64(g.Add(8), meta^uint64(c))
			case i%17 == 5:
				n.AtomicStore64(g.Add(16), n.AtomicLoad64(g.Add(16))^uint64(c))
			default:
				off := g.Add(fabric.LineSize + uint64(i)%payloadLen)
				n.Read(off, buf)
				buf[0] ^= c
				n.Write(off, buf)
				n.WriteBackRange(off, 1)
			}
			corrupted = true
		}

		got, err := DiscoverCapped(n, g, payloadCap)
		if err == nil && !reflect.DeepEqual(got, fuzzDesc) {
			t.Fatalf("corrupted table (mask %x) accepted as %+v", mask, got)
		}
		if !corrupted && err != nil {
			t.Fatalf("pristine table rejected: %v", err)
		}
	})
}
