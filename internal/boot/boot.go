// Package boot implements the paper's §5 "system bootstrapping" item: the
// hardware description — node topology, memory layout, device inventory —
// lives in shared global memory (an FDT/ACPI analogue), published once by
// the boot node and discovered by every other node as it comes up, instead
// of each node probing its own view of the machine.
//
// Layout at the published address:
//
//	word 0: magic (atomic; published LAST, so readers that see the magic
//	        are guaranteed a complete, written-back table)
//	word 1: version<<32 | payload length
//	word 2: CRC32 of the payload
//	line 1+: payload (binary-serialized HWDesc)
package boot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"flacos/internal/fabric"
)

// Magic identifies a published hardware description table.
const Magic = 0x464c4143_44455343 // "FLACDESC"

// Version is the table format version.
const Version = 1

// ErrNoTable is returned when no valid table exists at the address.
var ErrNoTable = errors.New("boot: no hardware description table")

// NodeDesc describes one compute node.
type NodeDesc struct {
	ID         uint32
	Cores      uint32
	Hops       uint32
	LocalMemMB uint32
}

// DeviceDesc describes one rack device.
type DeviceDesc struct {
	Name  string
	Owner uint32
	Kind  string // "block", "nic", ...
}

// HWDesc is the rack's hardware description.
type HWDesc struct {
	GlobalMemBytes uint64
	BootSeq        uint64
	Nodes          []NodeDesc
	Devices        []DeviceDesc
}

func (d HWDesc) encode() []byte {
	var out []byte
	out = binary.LittleEndian.AppendUint64(out, d.GlobalMemBytes)
	out = binary.LittleEndian.AppendUint64(out, d.BootSeq)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(d.Nodes)))
	for _, n := range d.Nodes {
		out = binary.LittleEndian.AppendUint32(out, n.ID)
		out = binary.LittleEndian.AppendUint32(out, n.Cores)
		out = binary.LittleEndian.AppendUint32(out, n.Hops)
		out = binary.LittleEndian.AppendUint32(out, n.LocalMemMB)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(d.Devices)))
	for _, dev := range d.Devices {
		out = binary.LittleEndian.AppendUint32(out, dev.Owner)
		out = appendString(out, dev.Name)
		out = appendString(out, dev.Kind)
	}
	return out
}

func appendString(out []byte, s string) []byte {
	out = binary.LittleEndian.AppendUint32(out, uint32(len(s)))
	return append(out, s...)
}

func readString(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, fmt.Errorf("boot: truncated string header")
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) < n {
		return "", nil, fmt.Errorf("boot: truncated string body")
	}
	return string(b[:n]), b[n:], nil
}

func decode(b []byte) (HWDesc, error) {
	var d HWDesc
	if len(b) < 20 {
		return d, fmt.Errorf("boot: table too short")
	}
	d.GlobalMemBytes = binary.LittleEndian.Uint64(b)
	d.BootSeq = binary.LittleEndian.Uint64(b[8:])
	nNodes := binary.LittleEndian.Uint32(b[16:])
	b = b[20:]
	for i := uint32(0); i < nNodes; i++ {
		if len(b) < 16 {
			return d, fmt.Errorf("boot: truncated node %d", i)
		}
		d.Nodes = append(d.Nodes, NodeDesc{
			ID:         binary.LittleEndian.Uint32(b),
			Cores:      binary.LittleEndian.Uint32(b[4:]),
			Hops:       binary.LittleEndian.Uint32(b[8:]),
			LocalMemMB: binary.LittleEndian.Uint32(b[12:]),
		})
		b = b[16:]
	}
	if len(b) < 4 {
		return d, fmt.Errorf("boot: truncated device count")
	}
	nDevs := binary.LittleEndian.Uint32(b)
	b = b[4:]
	for i := uint32(0); i < nDevs; i++ {
		if len(b) < 4 {
			return d, fmt.Errorf("boot: truncated device %d", i)
		}
		owner := binary.LittleEndian.Uint32(b)
		b = b[4:]
		var name, kind string
		var err error
		if name, b, err = readString(b); err != nil {
			return d, err
		}
		if kind, b, err = readString(b); err != nil {
			return d, err
		}
		d.Devices = append(d.Devices, DeviceDesc{Name: name, Owner: owner, Kind: kind})
	}
	return d, nil
}

// DefaultPayloadCap is the conventional payload budget for the table
// reservation (core.Boot reserves TableCap(DefaultPayloadCap)).
const DefaultPayloadCap = 16 << 10

// TableCap returns the reservation size needed for a table whose payload
// is at most payloadCap bytes.
func TableCap(payloadCap uint64) uint64 {
	return fabric.LineSize + fabric.AlignUp64(payloadCap, fabric.LineSize)
}

// Publish writes desc to the table at g (reserved with TableCap space) and
// makes it discoverable. The boot node calls it once; republishing with a
// higher BootSeq is allowed (hardware hotplug).
func Publish(n *fabric.Node, g fabric.GPtr, desc HWDesc) error {
	payload := desc.encode()
	n.Write(g.Add(fabric.LineSize), payload)
	n.WriteBackRange(g.Add(fabric.LineSize), uint64(len(payload)))
	n.AtomicStore64(g.Add(8), uint64(Version)<<32|uint64(uint32(len(payload))))
	n.AtomicStore64(g.Add(16), uint64(crc32.ChecksumIEEE(payload)))
	n.AtomicStore64(g, Magic) // publish last
	return nil
}

// Discover reads and validates the table from any node, assuming the
// conventional DefaultPayloadCap reservation.
func Discover(n *fabric.Node, g fabric.GPtr) (HWDesc, error) {
	return DiscoverCapped(n, g, DefaultPayloadCap)
}

// DiscoverCapped reads and validates a table reserved with
// TableCap(payloadCap) space. Every header word comes from shared memory
// a corrupted or hostile node may have scribbled on, so nothing in it is
// trusted: an implausible length is rejected before it can drive reads
// outside the reservation.
func DiscoverCapped(n *fabric.Node, g fabric.GPtr, payloadCap uint64) (HWDesc, error) {
	if n.AtomicLoad64(g) != Magic {
		return HWDesc{}, ErrNoTable
	}
	meta := n.AtomicLoad64(g.Add(8))
	if meta>>32 != Version {
		return HWDesc{}, fmt.Errorf("boot: unsupported table version %d", meta>>32)
	}
	ln := uint64(uint32(meta))
	if ln > payloadCap {
		return HWDesc{}, fmt.Errorf("boot: table length %d exceeds reservation %d (corrupted?)", ln, payloadCap)
	}
	payload := make([]byte, ln)
	n.InvalidateRange(g.Add(fabric.LineSize), ln)
	n.Read(g.Add(fabric.LineSize), payload)
	if uint64(crc32.ChecksumIEEE(payload)) != n.AtomicLoad64(g.Add(16)) {
		return HWDesc{}, fmt.Errorf("boot: hardware table checksum mismatch (corrupted?)")
	}
	return decode(payload)
}
