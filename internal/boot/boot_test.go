package boot

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"flacos/internal/fabric"
)

func rack(t *testing.T) (*fabric.Fabric, fabric.GPtr) {
	t.Helper()
	f := fabric.New(fabric.Config{GlobalSize: 4 << 20, Nodes: 2})
	return f, f.Reserve(TableCap(64<<10), fabric.LineSize)
}

func sample() HWDesc {
	return HWDesc{
		GlobalMemBytes: 16 << 30,
		BootSeq:        1,
		Nodes: []NodeDesc{
			{ID: 0, Cores: 320, Hops: 1, LocalMemMB: 262144},
			{ID: 1, Cores: 320, Hops: 1, LocalMemMB: 262144},
		},
		Devices: []DeviceDesc{
			{Name: "nvme0", Owner: 0, Kind: "block"},
			{Name: "eth0", Owner: 1, Kind: "nic"},
		},
	}
}

func TestPublishDiscoverCrossNode(t *testing.T) {
	f, g := rack(t)
	want := sample()
	if err := Publish(f.Node(0), g, want); err != nil {
		t.Fatal(err)
	}
	got, err := Discover(f.Node(1), g) // discovered by the OTHER node
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v\nwant %+v", got, want)
	}
}

func TestDiscoverBeforePublish(t *testing.T) {
	f, g := rack(t)
	if _, err := Discover(f.Node(0), g); !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v, want ErrNoTable", err)
	}
}

func TestRepublishHotplug(t *testing.T) {
	f, g := rack(t)
	d := sample()
	Publish(f.Node(0), g, d)
	d.BootSeq = 2
	d.Devices = append(d.Devices, DeviceDesc{Name: "nvme1", Owner: 1, Kind: "block"})
	if err := Publish(f.Node(0), g, d); err != nil {
		t.Fatal(err)
	}
	got, err := Discover(f.Node(1), g)
	if err != nil {
		t.Fatal(err)
	}
	if got.BootSeq != 2 || len(got.Devices) != 3 {
		t.Fatalf("hotplug not visible: %+v", got)
	}
}

func TestCorruptedTableDetected(t *testing.T) {
	f, g := rack(t)
	Publish(f.Node(0), g, sample())
	f.Faults().FlipBitAtHome(f, g.Add(fabric.LineSize), 5)
	if _, err := Discover(f.Node(1), g); err == nil {
		t.Fatal("corrupted table should fail checksum")
	}
}

func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	prop := func(mem uint64, seq uint64, nodeCount uint8, name string, kind string) bool {
		d := HWDesc{GlobalMemBytes: mem, BootSeq: seq}
		for i := uint8(0); i < nodeCount%8; i++ {
			d.Nodes = append(d.Nodes, NodeDesc{ID: uint32(i), Cores: uint32(i) * 10, Hops: 1, LocalMemMB: 1024})
		}
		if len(name) > 0 {
			d.Devices = append(d.Devices, DeviceDesc{Name: name, Owner: 0, Kind: kind})
		}
		got, err := decode(d.encode())
		return err == nil && reflect.DeepEqual(got, normalize(d))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// normalize maps empty slices to nil for DeepEqual symmetry with decode.
func normalize(d HWDesc) HWDesc {
	if len(d.Nodes) == 0 {
		d.Nodes = nil
	}
	if len(d.Devices) == 0 {
		d.Devices = nil
	}
	return d
}
