// Package integration_test exercises cross-subsystem scenarios end to end
// through the public core facade: the availability, elasticity and
// reliability flows the paper's Figure 3 serverless architecture promises.
package integration_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"flacos/internal/core"
	"flacos/internal/fabric"
	"flacos/internal/faultbox"
	"flacos/internal/flacdk/reliability"
	"flacos/internal/ipc"
	"flacos/internal/sched"
	"flacos/internal/serverless"
)

func boot(t *testing.T, nodes int) *core.Rack {
	t.Helper()
	return core.Boot(core.Config{Nodes: nodes, GlobalMemory: 192 << 20, FaultSeed: 7})
}

// TestServiceSurvivesNodeCrash is the availability flow: a stateful
// service in a fault box keeps serving (with its state) after its host
// node dies — recovery onto a survivor plus the shared code context make
// the failover invisible to callers.
func TestServiceSurvivesNodeCrash(t *testing.T) {
	rack := boot(t, 2)

	// The service's counter lives in its box heap so it is part of the
	// vertical snapshot.
	type counterApp struct{ v uint64 }
	app := &counterApp{}
	_ = app

	box, err := rack.Boxes.Create("svc", rack.Fabric.Node(0), faultbox.Config{
		HeapPages: 2, StackPages: 1, Criticality: 2, Services: []string{"count"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	makeHandler := func(b *faultbox.Box) ipc.Handler {
		return func(caller *fabric.Node, req []byte) []byte {
			var cur [8]byte
			b.MMU().Read(faultbox.HeapVA, cur[:])
			v := binary.LittleEndian.Uint64(cur[:]) + 1
			binary.LittleEndian.PutUint64(cur[:], v)
			b.MMU().Write(faultbox.HeapVA, cur[:])
			return cur[:]
		}
	}
	rack.Services.Register("count", makeHandler(box))

	// Serve some traffic from both nodes.
	for i := 0; i < 5; i++ {
		if _, err := rack.Services.Call(rack.Fabric.Node(i%2), "count", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := box.Quiesce(); err != nil { // criticality 2 => eager checkpoint
		t.Fatal(err)
	}

	rack.Fabric.Node(0).Crash()

	nb, err := box.RecoverOn(rack.Fabric.Node(1), nil, map[string]ipc.Handler{})
	if err != nil {
		t.Fatal(err)
	}
	rack.Services.Register("count", makeHandler(nb)) // rebind to the new box
	resp, err := rack.Services.Call(rack.Fabric.Node(1), "count", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(resp); got != 6 {
		t.Fatalf("counter after failover = %d, want 6 (state survived)", got)
	}
}

// TestFSJournalRecoveryUnderLoad crashes a node mid-workload and verifies
// the surviving node recovers the full namespace from checkpoint + journal
// and that file DATA (in the crash-surviving shared page cache) matches.
func TestFSJournalRecoveryUnderLoad(t *testing.T) {
	rack := boot(t, 2)
	m0 := rack.OS(0).Mount
	ck := reliability.NewCheckpointer(rack.Fabric, rack.Fabric.Node(0), 1<<16)

	content := map[string][]byte{}
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("/data/f%02d", i)
		id, err := m0.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte{byte(i + 1)}, 1000+i*37)
		m0.Write(id, 0, data)
		content[name] = data
		if i == 9 {
			reliability.CheckpointReplica(ck, m0.MetaReplica(), m0.MetaState(), nil)
		}
	}
	m0.Unlink("/data/f03")
	delete(content, "/data/f03")

	rack.Fabric.Node(0).Crash()

	// The survivor's own mount replays the journal on demand.
	m1 := rack.OS(1).Mount
	names := m1.List("/data/")
	if len(names) != len(content) {
		t.Fatalf("recovered %d names, want %d: %v", len(names), len(content), names)
	}
	for name, want := range content {
		id, ok := m1.Lookup(name)
		if !ok {
			t.Fatalf("lost %s", name)
		}
		got := make([]byte, len(want))
		if n, err := m1.Read(id, 0, got); err != nil || n != len(want) {
			t.Fatalf("read %s: %d,%v", name, n, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s content diverged after crash", name)
		}
	}
}

// TestScrubRepairUnderCorruptionStorm injects a steady corruption rate
// while a workload writes protected regions; every corruption the scrubber
// finds is repaired from a good copy, converging to a clean system.
func TestScrubRepairUnderCorruptionStorm(t *testing.T) {
	rack := boot(t, 1)
	n := rack.Fabric.Node(0)
	const regions = 8
	good := make([][]byte, regions)
	regs := make([]reliability.Region, regions)
	for i := range regs {
		g := rack.Fabric.Reserve(256, 64)
		good[i] = bytes.Repeat([]byte{byte(i + 1)}, 256)
		n.Write(g, good[i])
		n.FlushRange(g, 256)
		regs[i] = reliability.Region{G: g, Size: 256}
		rack.Scrubber.Protect(regs[i])
	}
	// Storm: flip bits in random regions (deterministic seed).
	for round := 0; round < 10; round++ {
		rack.Fabric.Faults().FlipBitAtHome(rack.Fabric, regs[round%regions].G.Add(uint64(round)*8%256), uint(round%64))
		for _, bad := range rack.Scrubber.ScrubOnce() {
			for i := range regs {
				if regs[i] == bad {
					rack.Scrubber.Repair(bad, good[i])
				}
			}
		}
	}
	if bad := rack.Scrubber.ScrubOnce(); len(bad) != 0 {
		t.Fatalf("%d regions still corrupt after repair loop", len(bad))
	}
	_, detected := rack.Scrubber.Stats()
	if detected == 0 {
		t.Fatal("storm detected nothing")
	}
}

// TestElasticScaleOutUnderInvocationLoad drives a function from both nodes
// while the controller scales it out; every invocation must succeed and
// the second instance must come from the shared page cache, not the
// registry.
func TestElasticScaleOutUnderInvocationLoad(t *testing.T) {
	rack := boot(t, 2)
	reg := serverless.NewRegistry(2_000_000, 0.05)
	reg.Push(serverless.SyntheticImage("app", 4, 8<<20))
	cfg := serverless.DefaultRuntimeConfig()
	cfg.InitNS = 5_000_000
	ctl := rack.Serverless(reg, cfg)

	if _, err := ctl.Deploy("work", "app", func(n *fabric.Node, req []byte) []byte {
		return append(req, byte(n.ID()))
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := ctl.Invoke(rack.Fabric.Node(w), "work", []byte{1}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	rep, err := ctl.ScaleUp("work")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Source == serverless.SourceRegistry {
		t.Fatal("scale-out went to the registry despite a warm shared cache")
	}
}

// TestCrashDuringIPCDoesNotWedgePeers ensures a node crash leaves other
// nodes' IPC operational (connection slots and the registry are unaffected
// state in global memory).
func TestCrashDuringIPCDoesNotWedgePeers(t *testing.T) {
	rack := boot(t, 3)
	l, err := rack.OS(1).Endpoint.Bind("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c := l.Accept()
			go func(c *ipc.Conn) {
				buf := make([]byte, 64)
				for {
					n, err := c.Recv(buf)
					if err != nil {
						return
					}
					c.Send(buf[:n])
				}
			}(c)
		}
	}()
	// Node 0 dies; node 2 can still talk to node 1's service.
	rack.Fabric.Node(0).Crash()
	c, err := rack.OS(2).Endpoint.Connect("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Send([]byte("still alive"))
	buf := make([]byte, 64)
	n, err := c.Recv(buf)
	if err != nil || string(buf[:n]) != "still alive" {
		t.Fatalf("echo after crash = %q, %v", buf[:n], err)
	}
}

// TestPredictiveMigrationBeforeFailure wires the failure predictor to the
// fault box: a node whose correctable-error rate trends up gets its
// critical boxes migrated away BEFORE it dies — §3.2's failure prediction
// feeding §3.6's migration, with zero data loss when the failure arrives.
func TestPredictiveMigrationBeforeFailure(t *testing.T) {
	rack := boot(t, 2)
	app := struct{ appStateBytes }{appStateBytes("session-table")}
	box, err := rack.Boxes.Create("critical", rack.Fabric.Node(0), faultbox.Config{
		HeapPages: 4, StackPages: 1, Criticality: 1,
	}, &app)
	if err != nil {
		t.Fatal(err)
	}
	box.MMU().Write(faultbox.HeapVA, []byte("hot working set"))

	// Node 0's DIMMs degrade: correctable-error counts climb window after
	// window. The predictor smooths them; crossing the threshold triggers
	// proactive migration.
	pred := reliability.NewPredictor(0.4)
	errorsPerWindow := []uint64{0, 1, 1, 3, 6, 14, 30}
	migrated := false
	for _, e := range errorsPerWindow {
		pred.Observe(e)
		if pred.AtRisk(5) && !migrated {
			nb, err := box.MigrateTo(rack.Fabric.Node(1), &app, nil)
			if err != nil {
				t.Fatalf("proactive migration: %v", err)
			}
			box = nb
			migrated = true
		}
	}
	if !migrated {
		t.Fatalf("predictor never crossed threshold (rate %.1f)", pred.Rate())
	}
	if box.Node().ID() != 1 {
		t.Fatalf("box still on failing node %d", box.Node().ID())
	}

	// The failure the predictor foresaw arrives; nothing is lost because
	// nothing critical lives there anymore.
	rack.Fabric.Node(0).Crash()
	buf := make([]byte, 15)
	if err := box.MMU().Read(faultbox.HeapVA, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hot working set" {
		t.Fatalf("migrated state = %q", buf)
	}
	if string(app.appStateBytes) != "session-table" {
		t.Fatalf("app state = %q", app.appStateBytes)
	}
}

// appStateBytes is a minimal AppState for the predictive-migration test.
type appStateBytes []byte

func (a *appStateBytes) Snapshot() []byte { return *a }
func (a *appStateBytes) Restore(b []byte) { *a = append((*a)[:0], b...) }

// TestScheduledWorkSurvivesNodeCrash is the coordinated-scheduling flow:
// tasks dispatched rack-wide through core.Rack's scheduler keep their
// exactly-once completion guarantee when a node dies mid-run — the
// survivors' lease keepers reclaim the dead node's in-flight tasks from
// the global run queue and re-dispatch them.
func TestScheduledWorkSurvivesNodeCrash(t *testing.T) {
	rack := boot(t, 3)
	defer rack.Shutdown()
	s := rack.Scheduler()

	const tasks = 30
	cells := rack.Fabric.Reserve(tasks*8, fabric.LineSize)
	started := rack.Fabric.Reserve(8*3, fabric.LineSize)
	fn := s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
		n.Add64(fabric.GPtr(started).Add(uint64(n.ID())*8), 1)
		time.Sleep(300 * time.Microsecond)
		n.Load64(fabric.GPtr(arg0)) // a crashed node's worker dies here
	})

	n0 := rack.Fabric.Node(0)
	for i := uint64(0); i < tasks; i++ {
		s.Submit(n0, sched.Task{
			Fn: fn, Arg0: uint64(cells),
			Preferred: 1, DoneCell: cells.Add(i * 8),
		})
	}
	// Let node 1 take work in, then kill it mid-run.
	for n0.AtomicLoad64(started.Add(8)) == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	rack.Fabric.Node(1).Crash()

	if !s.Drain(n0) {
		t.Fatal("Drain aborted")
	}
	st := s.StatsFrom(n0)
	if st.Completed != tasks {
		t.Fatalf("completed %d of %d after the crash", st.Completed, tasks)
	}
	for i := uint64(0); i < tasks; i++ {
		if c := n0.AtomicLoad64(cells.Add(i * 8)); c != 1 {
			t.Fatalf("task %d completed %d times, want exactly once", i, c)
		}
	}
	if st.Reclaimed == 0 {
		t.Fatal("no lease was reclaimed: the crash recovery path never ran")
	}
	// The survivors did the work; the dead node can't have finished more
	// than it started.
	if n0.AtomicLoad64(started.Add(8)) >= tasks {
		t.Fatal("crashed node executed everything; crash came too late to test recovery")
	}
}

// TestSchedulerPlacesServerlessContainers covers the control-plane
// rerouting: serverless placement flows through the rack scheduler's
// load board, so container scale-up avoids crashed nodes entirely.
func TestSchedulerPlacesServerlessContainers(t *testing.T) {
	rack := boot(t, 3)
	defer rack.Shutdown()

	reg := serverless.NewRegistry(1_000_000, 1.0)
	reg.Push(serverless.SyntheticImage("app", 2, 1<<20))
	ctl := rack.Serverless(reg, serverless.DefaultRuntimeConfig())
	if _, err := ctl.Deploy("fn", "app", func(caller *fabric.Node, req []byte) []byte { return req }); err != nil {
		t.Fatal(err)
	}

	rack.Fabric.Node(0).Crash()
	for i := 0; i < 4; i++ {
		if _, err := ctl.ScaleUp("fn"); err != nil {
			t.Fatal(err)
		}
	}
	density := ctl.Density()
	if density[0] != 0 {
		t.Fatalf("scale-up placed %d instances on the crashed node 0 (density %v)", density[0], density)
	}
	if density[1]+density[2] == 0 {
		t.Fatalf("no instances placed anywhere: density %v", density)
	}
}
