// Package faultbox implements FlacOS's system-level fault-isolation
// abstraction (paper §3.6).
//
// Existing systems aggregate state HORIZONTALLY: each subsystem (memory
// manager, file system, IPC) holds a little of every application's state,
// so recovering one application means touching every subsystem and every
// subsystem means touching every application. A fault box instead
// consolidates ONE application's state VERTICALLY along its execution
// flow — its page table and pages, its execution context, its
// communication endpoints, its stack and heap — so the complete state set
// can be snapshotted, destroyed, migrated or recovered as a single unit,
// bounding the blast radius of a fault to the box it hit.
//
// Adaptive redundancy (§3.6) layers on top: by task criticality a box gets
// no redundancy, periodic checkpointing, eager (per-quiesce) replication,
// or N-modular execution with output voting.
package faultbox

import (
	"encoding/binary"
	"fmt"
	"sync"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/alloc"
	"flacos/internal/flacdk/reliability"
	"flacos/internal/ipc"
	"flacos/internal/memsys"
)

// Fixed virtual layout inside every box's address space.
const (
	HeapVA  = 0x1000_0000
	StackVA = 0x7000_0000
)

// AppState lets an application contribute its logical state to the box's
// vertical snapshot (optional).
type AppState interface {
	Snapshot() []byte
	Restore([]byte)
}

// Redundancy is the protection level adaptive redundancy assigns.
type Redundancy int

// Redundancy levels, in increasing cost and protection.
const (
	RedNone       Redundancy = iota // best effort
	RedCheckpoint                   // periodic vertical checkpoints
	RedReplicate                    // checkpoint after every Quiesce call
	RedNModular                     // N-modular execution with voting
)

// RedundancyFor maps task criticality (0 = throwaway, 3 = critical) to a
// redundancy level — the adaptive policy of §3.6.
func RedundancyFor(criticality int) Redundancy {
	switch {
	case criticality <= 0:
		return RedNone
	case criticality == 1:
		return RedCheckpoint
	case criticality == 2:
		return RedReplicate
	default:
		return RedNModular
	}
}

// Config describes a box's resources.
type Config struct {
	HeapPages   uint64
	StackPages  uint64
	Criticality int
	// Services the box offers; re-registered on recovery.
	Services []string
}

// Manager owns the rack's boxes and the shared resources they draw from.
type Manager struct {
	fab      *fabric.Fabric
	frames   *memsys.GlobalFrames
	arena    *alloc.Arena
	services *ipc.ServiceTable

	mu     sync.Mutex
	boxes  map[string]*Box
	nextID uint64
}

// NewManager creates a box manager over the rack's memory resources.
func NewManager(f *fabric.Fabric, frames *memsys.GlobalFrames, arena *alloc.Arena, services *ipc.ServiceTable) *Manager {
	return &Manager{
		fab:      f,
		frames:   frames,
		arena:    arena,
		services: services,
		boxes:    make(map[string]*Box),
	}
}

// Boxes returns the number of live boxes.
func (mgr *Manager) Boxes() int {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	return len(mgr.boxes)
}

// Box is one application's vertically consolidated state.
type Box struct {
	Name string
	mgr  *Manager
	cfg  Config
	node *fabric.Node

	space *memsys.Space
	mmu   *memsys.MMU
	app   AppState
	ck    *reliability.Checkpointer
	red   Redundancy

	destroyed bool
}

// Create builds a box hosted on node, with its heap and stack mapped in a
// private address space backed by global memory (so the box's memory
// survives its host node's crash).
func (mgr *Manager) Create(name string, node *fabric.Node, cfg Config, app AppState) (*Box, error) {
	mgr.mu.Lock()
	if _, dup := mgr.boxes[name]; dup {
		mgr.mu.Unlock()
		return nil, fmt.Errorf("faultbox: box %q exists", name)
	}
	mgr.nextID++
	id := mgr.nextID
	mgr.mu.Unlock()

	b := &Box{
		Name: name,
		mgr:  mgr,
		cfg:  cfg,
		node: node,
		app:  app,
		red:  RedundancyFor(cfg.Criticality),
	}
	b.space = memsys.NewSpace(mgr.fab, id, mgr.frames, mgr.arena.NodeAllocator(node, 0), 256)
	b.mmu = b.space.Attach(node, mgr.arena.NodeAllocator(node, 0), memsys.NewLocalStore(node), 128)
	if err := b.mmu.MMap(HeapVA, cfg.HeapPages, memsys.ProtRead|memsys.ProtWrite, memsys.BackGlobal); err != nil {
		return nil, err
	}
	if err := b.mmu.MMap(StackVA, cfg.StackPages, memsys.ProtRead|memsys.ProtWrite, memsys.BackGlobal); err != nil {
		return nil, err
	}
	ckCap := (cfg.HeapPages+cfg.StackPages+2)*(memsys.PageSize+16) + 1<<16
	b.ck = reliability.NewCheckpointer(mgr.fab, node, ckCap)

	mgr.mu.Lock()
	mgr.boxes[name] = b
	mgr.mu.Unlock()
	return b, nil
}

// MMU gives the application access to the box's memory.
func (b *Box) MMU() *memsys.MMU { return b.mmu }

// Node returns the box's current host node.
func (b *Box) Node() *fabric.Node { return b.node }

// Redundancy returns the box's assigned protection level.
func (b *Box) Redundancy() Redundancy { return b.red }

// regions enumerates the box's mapped regions.
func (b *Box) regions() [](struct{ va, pages uint64 }) {
	return []struct{ va, pages uint64 }{
		{HeapVA, b.cfg.HeapPages},
		{StackVA, b.cfg.StackPages},
	}
}

// Checkpoint takes one vertical snapshot: every RESIDENT page of the box's
// regions plus the application's logical state, saved as one unit. This is
// the single-operation state capture the fault box exists for — no
// per-subsystem coordination.
func (b *Box) Checkpoint() error {
	if b.destroyed {
		return fmt.Errorf("faultbox: checkpoint of destroyed box %q", b.Name)
	}
	var out []byte
	var count uint32
	page := make([]byte, memsys.PageSize)
	body := make([]byte, 0, 1<<16)
	for _, r := range b.regions() {
		for i := uint64(0); i < r.pages; i++ {
			va := r.va + i*memsys.PageSize
			if !b.mmu.PTEOf(va).Valid() {
				continue // never touched: stays a hole
			}
			if err := b.mmu.Read(va, page); err != nil {
				return err
			}
			var hdr [8]byte
			binary.LittleEndian.PutUint64(hdr[:], va)
			body = append(body, hdr[:]...)
			body = append(body, page...)
			count++
		}
	}
	var appBytes []byte
	if b.app != nil {
		appBytes = b.app.Snapshot()
	}
	out = binary.LittleEndian.AppendUint32(out, count)
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(appBytes)))
	out = append(out, appBytes...)
	b.ck.Save(out, 0, nil)
	return nil
}

// Quiesce is the application's consistency point hook: under RedReplicate
// it takes an immediate checkpoint, under RedCheckpoint the manager's
// periodic sweep handles it, otherwise it is free.
func (b *Box) Quiesce() error {
	if b.red == RedReplicate {
		return b.Checkpoint()
	}
	return nil
}

// liveNode returns a non-crashed node for teardown work.
func (mgr *Manager) liveNode() *fabric.Node {
	for i := 0; i < mgr.fab.NumNodes(); i++ {
		if n := mgr.fab.Node(i); !n.Crashed() {
			return n
		}
	}
	panic("faultbox: every node in the rack is down")
}

// releaseResources unmaps the box's regions and detaches its MMU. If the
// host node is dead the work runs through a temporary MMU on a live node —
// possible precisely because the box's page table and frames live in
// global memory, not on the dead host.
func (b *Box) releaseResources() {
	m := b.mmu
	if b.node.Crashed() {
		b.space.Detach(b.mmu) // lift the dead replica's log constraint
		via := b.mgr.liveNode()
		m = b.space.Attach(via, b.mgr.arena.NodeAllocator(via, 0), memsys.NewLocalStore(via), 16)
	}
	for _, r := range b.regions() {
		_ = m.MUnmap(r.va, r.pages)
	}
	b.space.Detach(m)
}

// Destroy tears down the complete box in one operation: unmap every
// region (releasing frames), detach the MMU, deregister services. Other
// boxes are untouched — the isolation property.
func (b *Box) Destroy() {
	if b.destroyed {
		return
	}
	b.destroyed = true
	b.releaseResources()
	for _, svc := range b.cfg.Services {
		b.mgr.services.Unregister(svc)
	}
	b.mgr.mu.Lock()
	delete(b.mgr.boxes, b.Name)
	b.mgr.mu.Unlock()
}

// RecoverOn rebuilds the box on target from its newest checkpoint: fresh
// address space, restored pages, restored application state, services
// re-registered by the caller's handlers. The old box (whose host may have
// crashed) is abandoned; its global frames are released when possible.
// Returns the replacement box.
func (b *Box) RecoverOn(target *fabric.Node, app AppState, handlers map[string]ipc.Handler) (*Box, error) {
	data, _, ok := b.ck.Latest(target)
	if !ok {
		return nil, fmt.Errorf("faultbox: box %q has no checkpoint", b.Name)
	}
	// Drop the registry entry for the dead instance so the name is free.
	b.mgr.mu.Lock()
	delete(b.mgr.boxes, b.Name)
	b.mgr.mu.Unlock()
	nb, err := b.mgr.Create(b.Name, target, b.cfg, app)
	if err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint32(data)
	off := 4
	for i := uint32(0); i < count; i++ {
		va := binary.LittleEndian.Uint64(data[off:])
		off += 8
		if err := nb.mmu.Write(va, data[off:off+memsys.PageSize]); err != nil {
			return nil, err
		}
		off += memsys.PageSize
	}
	appLen := binary.LittleEndian.Uint32(data[off:])
	off += 4
	if app != nil && appLen > 0 {
		app.Restore(data[off : off+int(appLen)])
	}
	for name, h := range handlers {
		b.mgr.services.Register(name, h)
	}
	return nb, nil
}

// MigrateTo live-migrates the box: checkpoint on the source, recover on
// the target, destroy the source instance. The shared code context (§3.5)
// makes the service instantly invocable on the target.
func (b *Box) MigrateTo(target *fabric.Node, app AppState, handlers map[string]ipc.Handler) (*Box, error) {
	if err := b.Checkpoint(); err != nil {
		return nil, err
	}
	old := *b // keep teardown info
	nb, err := b.RecoverOn(target, app, handlers)
	if err != nil {
		return nil, err
	}
	// Tear down the source instance's resources (not the registry entry —
	// RecoverOn already moved it).
	old.releaseResources()
	return nb, nil
}
