package faultbox

import (
	"bytes"
	"fmt"

	"flacos/internal/fabric"
)

// NModularCall executes fn N times — once per provided node, modeling
// replicated execution across the rack — and returns the majority output.
// A replica whose output disagrees (silent corruption, a flipped branch)
// is outvoted; with no majority the call fails. This is §3.6's n-modular
// execution redundancy level.
func NModularCall(nodes []*fabric.Node, fn func(n *fabric.Node) []byte) ([]byte, error) {
	if len(nodes) < 2 {
		return nil, fmt.Errorf("faultbox: n-modular execution needs >= 2 replicas, got %d", len(nodes))
	}
	outputs := make([][]byte, len(nodes))
	for i, n := range nodes {
		outputs[i] = fn(n)
	}
	best, bestVotes := -1, 0
	for i := range outputs {
		votes := 0
		for j := range outputs {
			if bytes.Equal(outputs[i], outputs[j]) {
				votes++
			}
		}
		if votes > bestVotes {
			best, bestVotes = i, votes
		}
	}
	if bestVotes*2 <= len(nodes) {
		return nil, fmt.Errorf("faultbox: no majority among %d replicas", len(nodes))
	}
	return outputs[best], nil
}

// HorizontalRecovery is the BASELINE fault-handling model the fault box
// replaces: application state is aggregated per subsystem, so recovering
// one application requires each subsystem to scan the state of EVERY
// application to find and repair the faulty one's pieces. The scan cost —
// proportional to total system state, not the faulty box's state — is what
// ablation C measures against Box.RecoverOn.
func HorizontalRecovery(mgr *Manager, faulty *Box, target *fabric.Node, app AppState) (*Box, error) {
	mgr.mu.Lock()
	all := make([]*Box, 0, len(mgr.boxes))
	for _, b := range mgr.boxes {
		all = append(all, b)
	}
	mgr.mu.Unlock()

	page := make([]byte, 4096)
	// "Memory subsystem" pass: walk every box's pages looking for the
	// faulty application's state.
	for _, b := range all {
		if b.node == nil || b.node.Crashed() {
			continue // the dead host's pages are scanned during its restore
		}
		for _, r := range b.regions() {
			for i := uint64(0); i < r.pages; i++ {
				va := r.va + i*4096
				if b.mmu.PTEOf(va).Valid() {
					_ = b.mmu.Read(va, page)
				}
			}
		}
	}
	// "IPC subsystem" pass: walk every box's service registrations.
	for _, b := range all {
		for range b.cfg.Services {
			target.ChargeNS(500)
		}
	}
	// Only now restore the faulty application, same as the vertical path.
	return faulty.RecoverOn(target, app, nil)
}
