package faultbox

import (
	"bytes"
	"encoding/binary"
	"testing"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/alloc"
	"flacos/internal/ipc"
	"flacos/internal/memsys"
)

type env struct {
	fab    *fabric.Fabric
	frames *memsys.GlobalFrames
	arena  *alloc.Arena
	svcs   *ipc.ServiceTable
	mgr    *Manager
}

func newEnv(t *testing.T, nodes int) *env {
	t.Helper()
	f := fabric.New(fabric.Config{GlobalSize: 64 << 20, Nodes: nodes, Latency: fabric.DefaultLatency()})
	frames := memsys.NewGlobalFrames(f, 4096)
	arena := alloc.NewArena(f, 24<<20)
	svcs := ipc.NewServiceTable(f)
	return &env{fab: f, frames: frames, arena: arena, svcs: svcs,
		mgr: NewManager(f, frames, arena, svcs)}
}

// counterApp is a box application with logical state.
type counterApp struct{ v uint64 }

func (a *counterApp) Snapshot() []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], a.v)
	return b[:]
}
func (a *counterApp) Restore(b []byte) { a.v = binary.LittleEndian.Uint64(b) }

func TestRedundancyPolicy(t *testing.T) {
	cases := map[int]Redundancy{-1: RedNone, 0: RedNone, 1: RedCheckpoint, 2: RedReplicate, 3: RedNModular, 9: RedNModular}
	for crit, want := range cases {
		if got := RedundancyFor(crit); got != want {
			t.Errorf("RedundancyFor(%d) = %v, want %v", crit, got, want)
		}
	}
}

func TestCreateWriteDestroy(t *testing.T) {
	e := newEnv(t, 2)
	b, err := e.mgr.Create("app1", e.fab.Node(0), Config{HeapPages: 4, StackPages: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.mgr.Boxes() != 1 {
		t.Fatalf("boxes = %d", e.mgr.Boxes())
	}
	if _, err := e.mgr.Create("app1", e.fab.Node(1), Config{HeapPages: 1, StackPages: 1}, nil); err == nil {
		t.Fatal("duplicate name should fail")
	}
	if err := b.MMU().Write(HeapVA, []byte("heap data")); err != nil {
		t.Fatal(err)
	}
	if err := b.MMU().Write(StackVA, []byte("stack data")); err != nil {
		t.Fatal(err)
	}
	b.Destroy()
	b.Destroy() // idempotent
	if e.mgr.Boxes() != 0 {
		t.Fatalf("boxes after destroy = %d", e.mgr.Boxes())
	}
}

func TestCheckpointRecoverOnOtherNodeAfterCrash(t *testing.T) {
	e := newEnv(t, 2)
	app := &counterApp{}
	b, err := e.mgr.Create("svc", e.fab.Node(0), Config{HeapPages: 8, StackPages: 2, Criticality: 1}, app)
	if err != nil {
		t.Fatal(err)
	}
	heap := bytes.Repeat([]byte{0xAB}, 3*memsys.PageSize)
	if err := b.MMU().Write(HeapVA, heap); err != nil {
		t.Fatal(err)
	}
	stack := []byte("return addresses and locals")
	if err := b.MMU().Write(StackVA+100, stack); err != nil {
		t.Fatal(err)
	}
	app.v = 1234
	if err := b.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint damage that recovery must roll back.
	b.MMU().Write(HeapVA, []byte("corrupted"))
	app.v = 9999

	e.fab.Node(0).Crash()

	app2 := &counterApp{}
	nb, err := b.RecoverOn(e.fab.Node(1), app2, nil)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	got := make([]byte, len(heap))
	if err := nb.MMU().Read(HeapVA, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, heap) {
		t.Fatal("heap not restored from checkpoint")
	}
	gotStack := make([]byte, len(stack))
	nb.MMU().Read(StackVA+100, gotStack)
	if !bytes.Equal(gotStack, stack) {
		t.Fatal("stack not restored")
	}
	if app2.v != 1234 {
		t.Fatalf("app state = %d, want 1234", app2.v)
	}
	if e.mgr.Boxes() != 1 {
		t.Fatalf("boxes = %d", e.mgr.Boxes())
	}
}

func TestRecoverWithoutCheckpointFails(t *testing.T) {
	e := newEnv(t, 2)
	b, _ := e.mgr.Create("x", e.fab.Node(0), Config{HeapPages: 1, StackPages: 1}, nil)
	if _, err := b.RecoverOn(e.fab.Node(1), nil, nil); err == nil {
		t.Fatal("recovery without checkpoint should fail")
	}
}

func TestQuiesceUnderReplicatePolicy(t *testing.T) {
	e := newEnv(t, 2)
	app := &counterApp{}
	b, _ := e.mgr.Create("crit", e.fab.Node(0), Config{HeapPages: 2, StackPages: 1, Criticality: 2}, app)
	if b.Redundancy() != RedReplicate {
		t.Fatalf("redundancy = %v", b.Redundancy())
	}
	b.MMU().Write(HeapVA, []byte("v1"))
	app.v = 1
	if err := b.Quiesce(); err != nil { // RedReplicate: immediate checkpoint
		t.Fatal(err)
	}
	e.fab.Node(0).Crash()
	app2 := &counterApp{}
	nb, err := b.RecoverOn(e.fab.Node(1), app2, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	nb.MMU().Read(HeapVA, buf)
	if string(buf) != "v1" || app2.v != 1 {
		t.Fatalf("recovered %q / %d", buf, app2.v)
	}
}

func TestFaultIsolationBetweenBoxes(t *testing.T) {
	// A fault destroying one box must leave the other's memory intact.
	e := newEnv(t, 2)
	b1, _ := e.mgr.Create("victim", e.fab.Node(0), Config{HeapPages: 4, StackPages: 1}, nil)
	b2, _ := e.mgr.Create("bystander", e.fab.Node(1), Config{HeapPages: 4, StackPages: 1}, nil)
	payload := bytes.Repeat([]byte{0x5F}, memsys.PageSize)
	b2.MMU().Write(HeapVA, payload)

	b1.MMU().Write(HeapVA, bytes.Repeat([]byte{0xEE}, memsys.PageSize))
	b1.Destroy()

	got := make([]byte, memsys.PageSize)
	b2.MMU().Read(HeapVA, got)
	if !bytes.Equal(got, payload) {
		t.Fatal("destroying one box disturbed another")
	}
	if e.mgr.Boxes() != 1 {
		t.Fatalf("boxes = %d", e.mgr.Boxes())
	}
}

func TestMigrateTo(t *testing.T) {
	e := newEnv(t, 2)
	app := &counterApp{v: 7}
	b, _ := e.mgr.Create("mobile", e.fab.Node(0), Config{HeapPages: 2, StackPages: 1, Criticality: 1,
		Services: []string{"mobile.svc"}}, app)
	e.svcs.Register("mobile.svc", func(n *fabric.Node, req []byte) []byte { return []byte("v1") })
	b.MMU().Write(HeapVA, []byte("moving state"))

	nb, err := b.MigrateTo(e.fab.Node(1), app, map[string]ipc.Handler{
		"mobile.svc": func(n *fabric.Node, req []byte) []byte { return []byte("v1") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if nb.Node().ID() != 1 {
		t.Fatalf("host = %d", nb.Node().ID())
	}
	buf := make([]byte, 12)
	nb.MMU().Read(HeapVA, buf)
	if string(buf) != "moving state" {
		t.Fatalf("migrated heap = %q", buf)
	}
	// Service remains callable (shared code context) from either node.
	resp, err := e.svcs.Call(e.fab.Node(0), "mobile.svc", nil)
	if err != nil || string(resp) != "v1" {
		t.Fatalf("call after migration = %q, %v", resp, err)
	}
	if e.mgr.Boxes() != 1 {
		t.Fatalf("boxes = %d", e.mgr.Boxes())
	}
}

func TestNModularVoting(t *testing.T) {
	e := newEnv(t, 3)
	nodes := []*fabric.Node{e.fab.Node(0), e.fab.Node(1), e.fab.Node(2)}

	out, err := NModularCall(nodes, func(n *fabric.Node) []byte {
		return []byte("agreed")
	})
	if err != nil || string(out) != "agreed" {
		t.Fatalf("unanimous = %q, %v", out, err)
	}
	// One corrupt replica is outvoted.
	out, err = NModularCall(nodes, func(n *fabric.Node) []byte {
		if n.ID() == 1 {
			return []byte("corrupt")
		}
		return []byte("majority")
	})
	if err != nil || string(out) != "majority" {
		t.Fatalf("outvote = %q, %v", out, err)
	}
	// Total disagreement has no majority.
	if _, err := NModularCall(nodes, func(n *fabric.Node) []byte {
		return []byte{byte(n.ID())}
	}); err == nil {
		t.Fatal("no-majority should fail")
	}
	if _, err := NModularCall(nodes[:1], func(n *fabric.Node) []byte { return nil }); err == nil {
		t.Fatal("single replica should be rejected")
	}
}

func TestHorizontalRecoveryScansEverything(t *testing.T) {
	e := newEnv(t, 2)
	app := &counterApp{v: 5}
	faulty, _ := e.mgr.Create("faulty", e.fab.Node(0), Config{HeapPages: 2, StackPages: 1, Criticality: 1}, app)
	for i := 0; i < 3; i++ {
		b, _ := e.mgr.Create(string(rune('a'+i)), e.fab.Node(1), Config{HeapPages: 4, StackPages: 1}, nil)
		b.MMU().Write(HeapVA, bytes.Repeat([]byte{byte(i)}, 4*memsys.PageSize))
	}
	faulty.MMU().Write(HeapVA, []byte("important"))
	faulty.Checkpoint()
	e.fab.Node(0).Crash()

	target := e.fab.Node(1)
	before := target.VirtualNS()
	app2 := &counterApp{}
	nb, err := HorizontalRecovery(e.mgr, faulty, target, app2)
	if err != nil {
		t.Fatal(err)
	}
	horizCost := target.VirtualNS() - before
	buf := make([]byte, 9)
	nb.MMU().Read(HeapVA, buf)
	if string(buf) != "important" || app2.v != 5 {
		t.Fatalf("recovered %q / %d", buf, app2.v)
	}
	if horizCost == 0 {
		t.Fatal("horizontal recovery charged nothing")
	}
}
