package health

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/reliability"
	"flacos/internal/membership"
	"flacos/internal/trace"
)

// DetectState is a slot's health verdict, stored in the health control
// word. Unlike membership's liveness states it is advisory — a wrong
// verdict costs a needless drain, never correctness — but transitions
// are still CAS-only so exactly one agent wins each verdict rack-wide
// and the event stream carries each transition once per observer.
type DetectState uint8

const (
	// HealthUnknown: no verdict yet (slot empty or just (re)joined).
	HealthUnknown DetectState = iota
	// HealthOK: the detector affirmed the node's signals are normal.
	HealthOK
	// HealthDegraded: the anomaly detector concluded the node is gray-
	// failing: alive and heartbeating, but slower or more error-prone
	// than the rack by the configured margins.
	HealthDegraded
)

func (s DetectState) String() string {
	switch s {
	case HealthUnknown:
		return "unknown"
	case HealthOK:
		return "ok"
	case HealthDegraded:
		return "degraded"
	}
	return fmt.Sprintf("health(%d)", uint8(s))
}

// The health control word packs gen(32) | node(8) | state(8), the same
// shape as membership's control word minus the incarnation. The
// generation ties every verdict to one membership incarnation of the
// slot: a rejoin bumps the generation, so stale verdicts are
// distinguishable and cleared rather than inherited.
func packHCtl(gen uint64, node int, st DetectState) uint64 {
	return gen<<32 | uint64(node&0xff)<<8 | uint64(st)
}

func hctlGen(w uint64) uint64        { return w >> 32 }
func hctlNode(w uint64) int          { return int((w >> 8) & 0xff) }
func hctlState(w uint64) DetectState { return DetectState(w & 0xff) }

// Health control line: one per slot, fabric atomics ONLY — like
// membership's control line it must never share a line with the plainly
// written record, or a record write-back would clobber a concurrent CAS.
//
//	w0 ctl       gen|node|state (all transitions via CAS64)
//	w1 stampVNS  rack virtual time of the last verdict transition
//
//flac:shared
//flac:published-by=CAS64
type HCtlLine struct {
	Ctl      uint64
	StampVNS uint64
}

const (
	hctlLineBytes = fabric.LineSize
	offHCtl       = 0
	offHStamp     = 8
)

// Config tunes the anomaly detector. Zero values get defaults sized for
// the simulated rack's microsecond ticks and its latency model.
type Config struct {
	// Tick is the agent's sample-and-observe period (default 200µs,
	// matching membership's heartbeat tick).
	Tick time.Duration
	// Alpha is the EWMA smoothing factor for the latency and error
	// predictors (default 0.3; see reliability.NewPredictor).
	Alpha float64
	// LatFactor: a node is latency-degraded when its own smoothed
	// ns-per-op exceeds LatFactor times the rack median (default 3).
	LatFactor float64
	// LatFloorNS guards the ratio test against tiny absolute numbers: a
	// node is never latency-degraded below this many ns per op however
	// the median compares (default 1000).
	LatFloorNS uint64
	// LinkHops: a node whose published link degradation reaches this
	// many extra hops is degraded outright — the signal is a direct
	// reading, no smoothing needed (default 4).
	LinkHops uint64
	// ErrMilli: a node is error-degraded when its smoothed errors per
	// window reach this fixed-point-milli value (default 500 = 0.5
	// errors per window).
	ErrMilli uint64
	// EnterStrikes is how many consecutive agent ticks the degraded
	// condition must hold before the verdict flips (default 3); the
	// strike counter is observer-local, exactly like membership's
	// DeadStrikes, so a stalled observer cannot rush a verdict.
	EnterStrikes int
	// ExitStrikes is the recovery hysteresis: consecutive healthy ticks
	// before Degraded flips back to OK (default 8 — recover slower than
	// you detect, or a flapping link saws the controller back and
	// forth).
	ExitStrikes int
	// ExitFactor scales the enter thresholds for the recovery test so
	// the two bands never touch: signals must fall below ExitFactor
	// times the enter threshold to count as healthy (default 0.75).
	ExitFactor float64
}

func (c *Config) fillDefaults() {
	if c.Tick == 0 {
		c.Tick = 200 * time.Microsecond
	}
	if c.Alpha == 0 {
		c.Alpha = 0.3
	}
	if c.LatFactor == 0 {
		c.LatFactor = 3
	}
	if c.LatFloorNS == 0 {
		c.LatFloorNS = 1000
	}
	if c.LinkHops == 0 {
		c.LinkHops = 4
	}
	if c.ErrMilli == 0 {
		c.ErrMilli = 500
	}
	if c.EnterStrikes == 0 {
		c.EnterStrikes = 3
	}
	if c.ExitStrikes == 0 {
		c.ExitStrikes = 8
	}
	if c.ExitFactor == 0 {
		c.ExitFactor = 0.75
	}
}

// Layer is the rack's health table: one record line and one control
// line per membership slot, plus the host-side degraded mirror. It
// rides the membership table's slot space — slot i here is slot i
// there — so a verdict and the liveness state it annotates always name
// the same (node, generation).
type Layer struct {
	fab *fabric.Fabric
	mem *membership.Table
	cfg Config

	recG  fabric.GPtr // health records, one line per slot (cached writes)
	hctlG fabric.GPtr // health control lines, one per slot (atomics only)

	// degraded mirrors each NODE's verdict as this host's agents last
	// observed it — the zero-fabric-cost oracle for placement paths;
	// authoritative state is always the control word.
	degraded []atomic.Bool
}

// New lays the health table out in the fabric's global memory alongside
// mem's slots.
func New(mem *membership.Table, cfg Config) *Layer {
	cfg.fillDefaults()
	f := mem.Fabric()
	slots := uint64(mem.Slots())
	return &Layer{
		fab:      f,
		mem:      mem,
		cfg:      cfg,
		recG:     f.Reserve(slots*recordBytes, fabric.LineSize),
		hctlG:    f.Reserve(slots*hctlLineBytes, fabric.LineSize),
		degraded: make([]atomic.Bool, f.NumNodes()),
	}
}

func (l *Layer) recSlotG(slot int) fabric.GPtr { return l.recG.Add(uint64(slot) * recordBytes) }
func (l *Layer) hctlSlotG(slot int) fabric.GPtr {
	return l.hctlG.Add(uint64(slot)*hctlLineBytes + offHCtl)
}
func (l *Layer) hstampG(slot int) fabric.GPtr {
	return l.hctlG.Add(uint64(slot)*hctlLineBytes + offHStamp)
}

// Degraded reports whether node id is currently under a Degraded
// verdict, as last observed by this host's agents. Pure host-side read,
// safe on any hot path. Nodes with no verdict report false.
func (l *Layer) Degraded(id int) bool {
	if id < 0 || id >= len(l.degraded) {
		return false
	}
	return l.degraded[id].Load()
}

func (l *Layer) setDegradedMirror(node int, deg bool) {
	if node < 0 || node >= len(l.degraded) {
		return
	}
	l.degraded[node].Store(deg)
}

// VerdictInfo is one slot's decoded health control state (debug, tests).
type VerdictInfo struct {
	Slot       int
	State      DetectState
	Node       int
	Generation uint64
	StampVNS   uint64
}

// Verdicts reads every slot's health control word through node n.
func (l *Layer) Verdicts(n *fabric.Node) []VerdictInfo {
	out := make([]VerdictInfo, l.mem.Slots())
	for i := range out {
		w := n.AtomicLoad64(l.hctlSlotG(i))
		out[i] = VerdictInfo{
			Slot:       i,
			State:      hctlState(w),
			Node:       hctlNode(w),
			Generation: hctlGen(w),
			StampVNS:   n.AtomicLoad64(l.hstampG(i)),
		}
	}
	return out
}

// Join attaches a health agent to membership member m: the agent
// publishes m's node's own signals into the slot's health record and
// runs the anomaly detector over every slot, raising EvDegraded /
// EvRecovered through m's event stream. Call Start to boot it.
func (l *Layer) Join(m *membership.Member, src SignalSource) *Agent {
	a := &Agent{
		l:        l,
		m:        m,
		n:        m.Node(),
		src:      src,
		latP:     reliability.NewPredictor(l.cfg.Alpha),
		errP:     reliability.NewPredictor(l.cfg.Alpha),
		lastHCtl: make([]uint64, l.mem.Slots()),
		eval:     make(map[int]*slotEval),
		stop:     make(chan struct{}),
	}
	return a
}

// slotEval is one agent's running evaluation state for a slot.
type slotEval struct {
	gen     uint64 // generation the strike history belongs to
	strikes int    // consecutive degraded ticks (toward EnterStrikes)
	clears  int    // consecutive healthy ticks (toward ExitStrikes)
}

// Agent is one node's live participation in the health layer: its
// signal publisher and its anomaly detector over the other slots.
// Every live agent evaluates every slot — like membership's detector,
// verdicts need no coordinator and survive any single observer.
type Agent struct {
	l   *Layer
	m   *membership.Member
	n   *fabric.Node
	src SignalSource

	latP *reliability.Predictor // smoothed own ns-per-op
	errP *reliability.Predictor // smoothed own errors-per-window
	seq  uint64

	trw atomic.Pointer[trace.Writer]

	// Detector state, all node-local host memory.
	lastHCtl []uint64
	eval     map[int]*slotEval

	stop     chan struct{}
	stopOnce sync.Once
	started  atomic.Bool
	wg       sync.WaitGroup
}

// SetTrace attaches a flight-recorder writer; verdict transitions this
// agent wins then land in the rack timeline as SubHealth events.
func (a *Agent) SetTrace(w *trace.Writer) { a.trw.Store(w) }

func (a *Agent) tw() *trace.Writer { return a.trw.Load() }

// Start boots the agent's sample-and-observe loop. Idempotent. The
// goroutine absorbs the fabric panic of its own node's crash — the
// record freezes exactly at the crash, and the other agents' generation
// guard retires it with the membership state.
func (a *Agent) Start() {
	if !a.started.CompareAndSwap(false, true) {
		return
	}
	a.wg.Add(1)
	go a.loop()
}

// Stop halts the agent (idempotent; safe after the node crashed).
func (a *Agent) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
	a.wg.Wait()
}

func (a *Agent) loop() {
	defer a.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			if a.n.Crashed() {
				return // this agent died with its node
			}
			panic(r)
		}
	}()
	tick := time.NewTicker(a.l.cfg.Tick)
	defer tick.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-tick.C:
			a.publishSample()
			a.observeAll()
		}
	}
}

// publishSample folds one window of the node's own signals into the
// EWMAs and republishes the slot's health record — same single
// write-back publication contract as the membership heartbeat, with the
// seq counter as the line's last-committed publication word.
func (a *Agent) publishSample() {
	sg := a.src.Sample()
	if sg.Ops > 0 {
		a.latP.Observe(sg.VirtualNS / sg.Ops)
	}
	a.errP.Observe(sg.Errors)
	a.seq++
	line := EncodeRecord(Record{
		Node:          uint8(a.n.ID()),
		Slot:          uint8(a.m.Slot()),
		Generation:    a.m.Generation(),
		LatEWMANS:     uint64(a.latP.Rate()),
		ErrEWMAMilli:  uint64(a.errP.Rate() * ewmaScale),
		LeaseExpiries: uint32(sg.LeaseExpiries),
		ClaimFails:    uint32(sg.ClaimFails),
		LinkHops:      sg.LinkHops,
		Seq:           a.seq,
	})
	g := a.l.recSlotG(a.m.Slot())
	a.n.Write(g, line[:])
	a.n.WriteBackRange(g, recordBytes)
}

// observeAll runs one detector pass: read every live slot's record,
// compute the rack-median latency, evaluate each slot against the
// thresholds with observer-local hysteresis, CAS verdict transitions,
// and synthesize EvDegraded/EvRecovered from health-control diffs.
func (a *Agent) observeAll() {
	mem := a.l.mem.Snapshot(a.n)
	slots := a.l.mem.Slots()

	// Pass 1: collect every live slot's current record (generation- and
	// occupant-checked) so the median is computed over one consistent
	// population.
	recs := make(map[int]Record, slots)
	lats := make([]uint64, 0, slots)
	for slot := 0; slot < slots; slot++ {
		st := mem[slot].State
		if st != membership.StateJoining && st != membership.StateAlive && st != membership.StateSuspect {
			continue
		}
		rec, err := a.readRecord(slot)
		if err != nil || rec.Generation != mem[slot].Generation || int(rec.Node) != mem[slot].Node {
			continue // torn, stale-generation, or recycled-slot record: no information
		}
		recs[slot] = rec
		lats = append(lats, rec.LatEWMANS)
	}
	median := medianU64(lats)

	// Pass 2: per-slot verdicts and event synthesis.
	for slot := 0; slot < slots; slot++ {
		hw := a.n.AtomicLoad64(a.l.hctlSlotG(slot))
		cur := hw
		st := mem[slot].State
		live := st == membership.StateJoining || st == membership.StateAlive || st == membership.StateSuspect

		if !live || (hw != 0 && hctlGen(hw) != mem[slot].Generation) {
			// The occupant died, left, or rejoined under a new generation:
			// liveness wins, the stale verdict is cleared without an event
			// (consumers hear about death from the membership stream).
			delete(a.eval, slot)
			if hw != 0 && a.n.CAS64(a.l.hctlSlotG(slot), hw, 0) {
				a.n.AtomicStore64(a.l.hstampG(slot), a.n.VirtualNS())
			}
			cur = 0
			a.diffHCtl(slot, cur)
			continue
		}

		rec, ok := recs[slot]
		if !ok {
			// No usable sample this tick: hold the verdict, freeze strikes.
			a.diffHCtl(slot, cur)
			continue
		}

		ev := a.eval[slot]
		if ev == nil || ev.gen != rec.Generation {
			ev = &slotEval{gen: rec.Generation}
			a.eval[slot] = ev
		}
		deg := a.degradedNow(rec, median, 1)
		healthy := !a.degradedNow(rec, median, a.l.cfg.ExitFactor)

		switch hctlState(hw) {
		case HealthDegraded:
			ev.strikes = 0
			if healthy {
				ev.clears++
			} else {
				ev.clears = 0
			}
			if ev.clears >= a.l.cfg.ExitStrikes {
				ev.clears = 0
				next := packHCtl(mem[slot].Generation, mem[slot].Node, HealthOK)
				if a.n.CAS64(a.l.hctlSlotG(slot), hw, next) {
					a.n.AtomicStore64(a.l.hstampG(slot), a.n.VirtualNS())
					cur = next
					if tw := a.tw(); tw != nil {
						tw.Emit(trace.SubHealth, trace.KRecovered, 0, uint64(mem[slot].Node), mem[slot].Generation)
					}
				}
			}
		default: // HealthUnknown or HealthOK
			ev.clears = 0
			if deg {
				ev.strikes++
			} else {
				ev.strikes = 0
			}
			if ev.strikes >= a.l.cfg.EnterStrikes {
				ev.strikes = 0
				next := packHCtl(mem[slot].Generation, mem[slot].Node, HealthDegraded)
				if a.n.CAS64(a.l.hctlSlotG(slot), hw, next) {
					a.n.AtomicStore64(a.l.hstampG(slot), a.n.VirtualNS())
					cur = next
					if tw := a.tw(); tw != nil {
						tw.Emit(trace.SubHealth, trace.KDegraded, 0, uint64(mem[slot].Node), mem[slot].Generation)
					}
				}
			}
		}
		a.diffHCtl(slot, cur)
	}
}

// degradedNow evaluates the instantaneous degraded condition for rec
// against the rack median, with every threshold scaled by factor (1 for
// the enter test, ExitFactor for the recovery test, so the bands never
// touch).
func (a *Agent) degradedNow(rec Record, median uint64, factor float64) bool {
	cfg := &a.l.cfg
	latBad := median > 0 &&
		float64(rec.LatEWMANS) > cfg.LatFactor*factor*float64(median) &&
		float64(rec.LatEWMANS) >= factor*float64(cfg.LatFloorNS)
	hopsBad := float64(rec.LinkHops) >= factor*float64(cfg.LinkHops)
	errBad := float64(rec.ErrEWMAMilli) >= factor*float64(cfg.ErrMilli)
	return latBad || hopsBad || errBad
}

// diffHCtl synthesizes EvDegraded/EvRecovered by comparing slot's
// health control word against what this agent last saw, updating the
// host-side degraded mirror on the way. A word cleared by death or
// rejoin delivers nothing: the membership stream already carries the
// transition that killed the verdict, and dead beats degraded.
func (a *Agent) diffHCtl(slot int, w uint64) {
	prev := a.lastHCtl[slot]
	if w == prev {
		return
	}
	a.lastHCtl[slot] = w
	switch {
	case hctlState(w) == HealthDegraded:
		a.l.setDegradedMirror(hctlNode(w), true)
		a.m.Publish(membership.Event{
			Kind: membership.EvDegraded, Slot: slot,
			Node: hctlNode(w), Generation: hctlGen(w),
		})
	case hctlState(prev) == HealthDegraded:
		a.l.setDegradedMirror(hctlNode(prev), false)
		if hctlState(w) == HealthOK && hctlGen(w) == hctlGen(prev) {
			a.m.Publish(membership.Event{
				Kind: membership.EvRecovered, Slot: slot,
				Node: hctlNode(w), Generation: hctlGen(w),
			})
		}
	}
}

// readRecord pulls slot's health record line through this node's cache.
func (a *Agent) readRecord(slot int) (Record, error) {
	g := a.l.recSlotG(slot)
	a.n.InvalidateRange(g, recordBytes)
	var line [recordBytes]byte
	a.n.Read(g, line[:])
	return DecodeRecord(line, slot)
}

// medianU64 returns the median of vs (mean of the middle pair for even
// lengths), 0 for an empty slice.
func medianU64(vs []uint64) uint64 {
	if len(vs) == 0 {
		return 0
	}
	s := make([]uint64, len(vs))
	copy(s, vs)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
