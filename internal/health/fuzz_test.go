package health

import (
	"bytes"
	"errors"
	"testing"
)

// Health lines are read straight out of the arena, so under torture
// faults the detector can see anything: half of one publish and half of
// another, scrub-detectable bit flips, a retired generation's line. The
// decoder is the only gate — FuzzHealthRecordDecode drives arbitrary
// lines through it and checks that everything it accepts is exactly a
// canonical encoding with in-range fields, the same contract membership
// fuzzes for its heartbeat records.
func FuzzHealthRecordDecode(f *testing.F) {
	// Canonical records at a few shapes.
	f.Add(lineBytes(EncodeRecord(Record{Node: 1, Slot: 3, Generation: 1, LatEWMANS: 450, ErrEWMAMilli: 120, LeaseExpiries: 2, ClaimFails: 9, LinkHops: 0, Seq: 1})), 3)
	f.Add(lineBytes(EncodeRecord(Record{Node: 0, Slot: 0, Generation: 1 << 32, LatEWMANS: 1 << 50, ErrEWMAMilli: 0, LeaseExpiries: ^uint32(0), ClaimFails: ^uint32(0), LinkHops: 255, Seq: 1 << 50})), 0)
	// Never-published slot (all zero) and a torn variant of it.
	f.Add(make([]byte, recordBytes), 0)
	torn := lineBytes(EncodeRecord(Record{Node: 2, Slot: 2, Generation: 7, LatEWMANS: 900, Seq: 9}))
	torn[offLatEWMA] ^= 0x01 // latency word from a different publish
	f.Add(torn, 2)
	// Valid checksum but out-of-policy fields.
	f.Add(lineBytes(EncodeRecord(Record{Node: 4, Slot: 4, Generation: 0, Seq: 3})), 4)
	f.Add(lineBytes(EncodeRecord(Record{Node: 5, Slot: 5, Generation: 1<<32 + 1, Seq: 3})), 5)

	f.Fuzz(func(t *testing.T, data []byte, wantSlot int) {
		var line [recordBytes]byte
		copy(line[:], data)
		wantSlot &= 0xff // slots are uint8-addressed, like the table's

		rec, err := DecodeRecord(line, wantSlot)
		if err != nil {
			return // rejection is always safe; acceptance carries the burden
		}
		// Anything accepted must satisfy the policy the detector relies on.
		if int(rec.Slot) != wantSlot {
			t.Fatalf("accepted record for slot %d when reading slot %d", rec.Slot, wantSlot)
		}
		if rec.Generation == 0 || rec.Generation > 1<<32 {
			t.Fatalf("accepted out-of-range generation %#x", rec.Generation)
		}
		if rec.Seq == 0 {
			t.Fatal("accepted a record with seq 0")
		}
		// And must be exactly a canonical encoding: no accepted line that
		// EncodeRecord could not itself have produced.
		re := EncodeRecord(rec)
		if !bytes.Equal(re[:], line[:]) {
			t.Fatalf("accepted non-canonical line:\n got %x\nwant %x", line, re)
		}
	})
}

func lineBytes(b [recordBytes]byte) []byte { return b[:] }

func TestRecordRoundTrip(t *testing.T) {
	r := Record{Node: 7, Slot: 9, Generation: 42, LatEWMANS: 1234, ErrEWMAMilli: 567,
		LeaseExpiries: 8, ClaimFails: 90, LinkHops: 6, Seq: 1000}
	got, err := DecodeRecord(EncodeRecord(r), 9)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != r {
		t.Fatalf("round trip: got %+v want %+v", got, r)
	}
}

func TestRecordRejections(t *testing.T) {
	valid := Record{Node: 1, Slot: 2, Generation: 5, LatEWMANS: 800, ErrEWMAMilli: 10,
		LeaseExpiries: 1, ClaimFails: 2, LinkHops: 3, Seq: 77}

	cases := []struct {
		name    string
		mutate  func(*[recordBytes]byte)
		slot    int
		wantErr error
	}{
		{"zero line", func(b *[recordBytes]byte) { *b = [recordBytes]byte{} }, 2, ErrZeroRecord},
		{"torn zero line", func(b *[recordBytes]byte) {
			*b = [recordBytes]byte{}
			b[offGen] = 0x5a // payload word landed, seq word did not
		}, 2, ErrBadChecksum},
		{"bad magic", func(b *[recordBytes]byte) { b[7] ^= 0xff }, 2, ErrBadMagic},
		{"flipped latency", func(b *[recordBytes]byte) { b[offLatEWMA] ^= 0x01 }, 2, ErrBadChecksum},
		{"flipped seq", func(b *[recordBytes]byte) { b[offSeq+2] ^= 0x10 }, 2, ErrBadChecksum},
		{"flipped reserved bits", func(b *[recordBytes]byte) { b[0] = 1 }, 2, ErrBadChecksum},
		{"wrong slot", nil, 3, ErrBadSlot},
		{"zero generation", func(b *[recordBytes]byte) {
			*b = EncodeRecord(Record{Node: 1, Slot: 2, Generation: 0, Seq: 77})
		}, 2, ErrBadGen},
		{"oversized generation", func(b *[recordBytes]byte) {
			*b = EncodeRecord(Record{Node: 1, Slot: 2, Generation: 1<<32 + 1, Seq: 77})
		}, 2, ErrBadGen},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			line := EncodeRecord(valid)
			if tc.mutate != nil {
				tc.mutate(&line)
			}
			_, err := DecodeRecord(line, tc.slot)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("got %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// A torn publish — any strict byte-prefix of the new line over the old
// one — must either decode as the OLD record or be rejected; it must
// never surface fields from the new publish, because fabric commits
// flushed words in ascending order and the seq (last word) is the
// publication gate.
func TestTornPublishNeverYieldsNewFields(t *testing.T) {
	old := EncodeRecord(Record{Node: 1, Slot: 0, Generation: 3, LatEWMANS: 500, LinkHops: 0, Seq: 10})
	next := EncodeRecord(Record{Node: 1, Slot: 0, Generation: 3, LatEWMANS: 5000, LinkHops: 12, Seq: 11})
	for cut := 0; cut < recordBytes; cut++ { // cut=recordBytes would be a full publish
		line := old
		copy(line[:cut], next[:cut])
		if line == next {
			continue // prefix happens to reconstruct the complete publish
		}
		rec, err := DecodeRecord(line, 0)
		if err != nil {
			continue
		}
		if rec.Seq != 10 || rec.LatEWMANS != 500 || rec.LinkHops != 0 {
			t.Fatalf("cut %d: torn line decoded to new-publish fields: %+v", cut, rec)
		}
	}
}
