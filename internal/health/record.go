// Package health is the rack's gray-failure layer: an anomaly detector
// that folds per-node performance signals into arena-resident health
// records, and a self-healing controller that drains, fences, re-places
// and rejoins degrading nodes BEFORE the liveness detector declares them
// dead.
//
// Membership answers "is the node there?"; health answers "is the node
// still pulling its weight?". A gray-failing node — a flaky interconnect
// link, a slow-degrading DIMM, CPUs losing every claim race — keeps its
// heartbeat perfectly healthy while its latency tail poisons the whole
// rack. The health layer publishes each node's own view of its signals
// (latency EWMA, error EWMA, sched anomaly counters, link degradation)
// in one cache line per slot under the same publication contract as the
// membership heartbeat table, and every agent independently evaluates
// every slot against the rack median. Detection state transitions ride
// a separate fabric-atomics-only control line, CAS-guarded exactly like
// membership's, and surface as EvDegraded/EvRecovered events on the
// membership event stream.
package health

import (
	"encoding/binary"
	"errors"

	"flacos/internal/fabric"
)

// The health record reuses the heartbeat table's publication contract:
// one cache line per node slot, republished by the owner as a single
// full-line store plus one explicit write-back. fabric commits a
// flushed line's words in ascending order, so the sequence counter —
// the LAST word — lands at home only after every payload word of the
// same flush; a reader observing a new seq observes the matching
// payload, and a crash mid-publish loses the sample cleanly instead of
// tearing it. Detection state lives on a separate fabric-atomics-only
// control line (see health.go) — the two must never share a line.
//
// Record line layout (8 little-endian words):
//
//	w0 magic(32) | node(8) | slot(8) | reserved(16)
//	w1 generation   (the slot's membership generation when sampled)
//	w2 latency EWMA (ns per fabric op, owner-smoothed)
//	w3 error EWMA   (errors per observation window, fixed-point millis)
//	w4 leaseExpiries(32) | claimFails(32)  (cumulative sched counters)
//	w5 linkHops     (the node's current extra fabric hops)
//	w6 checksum     (mix of words 0-5 and the seq)
//	w7 seq          (publication word: strictly increasing sample counter)
const (
	recordBytes = fabric.LineSize

	offMagic    = 0
	offGen      = 8
	offLatEWMA  = 16
	offErrEWMA  = 24
	offSched    = 32
	offLinkHops = 40
	offCkSum    = 48
	offSeq      = 56

	recordMagic = 0x464c484c // "FLHL"
)

// ewmaScale is the fixed-point scale for the error EWMA word: the
// owner's float EWMA is published as round(rate * ewmaScale), giving
// milli-error resolution without floats in the line image.
const ewmaScale = 1000

// Record is one decoded health observation: the owner's own smoothed
// view of its signals at publish time.
//
//flac:shared
type Record struct {
	Node          uint8
	Slot          uint8
	Generation    uint64 // membership generation the sample belongs to
	LatEWMANS     uint64 // smoothed ns per fabric op
	ErrEWMAMilli  uint64 // smoothed errors per window, fixed-point 1/1000
	LeaseExpiries uint32 // cumulative sched lease expiries charged to the node
	ClaimFails    uint32 // cumulative claim-CAS losses
	LinkHops      uint64 // extra fabric hops on the node's links
	Seq           uint64 // strictly increasing sample counter
}

// Decode validation errors. The detector treats every one of them as
// "no usable sample": a record torn by a crash, corrupted in transit,
// or left over from an earlier generation must never drive a detection
// transition.
var (
	ErrBadMagic    = errors.New("health: record magic mismatch")
	ErrBadSlot     = errors.New("health: record slot mismatch")
	ErrBadChecksum = errors.New("health: record checksum mismatch")
	ErrZeroRecord  = errors.New("health: record has no sample yet")
	ErrBadGen      = errors.New("health: record generation invalid")
)

// mix64 is the splitmix64 finalizer, the same mixing membership's
// heartbeat checksum uses.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// recordSum folds the payload words and the seq into one checksum word.
// An integrity check against torn and bit-flipped lines, not an
// authentication code.
func recordSum(w0, gen, lat, errw, sched, hops, seq uint64) uint64 {
	h := mix64(w0 ^ 0x6865616c74687265)
	h = mix64(h ^ gen)
	h = mix64(h ^ lat)
	h = mix64(h ^ errw)
	h = mix64(h ^ sched)
	h = mix64(h ^ hops)
	h = mix64(h ^ seq)
	return h
}

// EncodeRecord packs r into its line image.
func EncodeRecord(r Record) [recordBytes]byte {
	var b [recordBytes]byte
	w0 := uint64(recordMagic)<<32 | uint64(r.Node)<<24 | uint64(r.Slot)<<16
	sched := uint64(r.LeaseExpiries)<<32 | uint64(r.ClaimFails)
	binary.LittleEndian.PutUint64(b[offMagic:], w0)
	binary.LittleEndian.PutUint64(b[offGen:], r.Generation)
	binary.LittleEndian.PutUint64(b[offLatEWMA:], r.LatEWMANS)
	binary.LittleEndian.PutUint64(b[offErrEWMA:], r.ErrEWMAMilli)
	binary.LittleEndian.PutUint64(b[offSched:], sched)
	binary.LittleEndian.PutUint64(b[offLinkHops:], r.LinkHops)
	binary.LittleEndian.PutUint64(b[offCkSum:],
		recordSum(w0, r.Generation, r.LatEWMANS, r.ErrEWMAMilli, sched, r.LinkHops, r.Seq))
	binary.LittleEndian.PutUint64(b[offSeq:], r.Seq)
	return b
}

// DecodeRecord unpacks and validates a health line read from the arena
// for slot wantSlot. A failed decode means the observation carries no
// information — never that the node is healthy or degraded. Every
// accepted line is exactly what EncodeRecord would produce (accepted =>
// canonical round-trip), so corruption in reserved bits is rejected
// even though the checksum does not cover them individually.
func DecodeRecord(b [recordBytes]byte, wantSlot int) (Record, error) {
	w0 := binary.LittleEndian.Uint64(b[offMagic:])
	gen := binary.LittleEndian.Uint64(b[offGen:])
	lat := binary.LittleEndian.Uint64(b[offLatEWMA:])
	errw := binary.LittleEndian.Uint64(b[offErrEWMA:])
	sched := binary.LittleEndian.Uint64(b[offSched:])
	hops := binary.LittleEndian.Uint64(b[offLinkHops:])
	sum := binary.LittleEndian.Uint64(b[offCkSum:])
	seq := binary.LittleEndian.Uint64(b[offSeq:])
	if seq == 0 {
		// A slot that has never published is all-zero by construction;
		// report it distinctly so callers can tell "empty" from "garbage".
		for _, x := range b {
			if x != 0 {
				return Record{}, ErrBadChecksum
			}
		}
		return Record{}, ErrZeroRecord
	}
	if w0>>32 != recordMagic {
		return Record{}, ErrBadMagic
	}
	if sum != recordSum(w0, gen, lat, errw, sched, hops, seq) {
		return Record{}, ErrBadChecksum
	}
	if w0&0xffff != 0 {
		return Record{}, ErrBadChecksum
	}
	r := Record{
		Node:          uint8(w0 >> 24),
		Slot:          uint8(w0 >> 16),
		Generation:    gen,
		LatEWMANS:     lat,
		ErrEWMAMilli:  errw,
		LeaseExpiries: uint32(sched >> 32),
		ClaimFails:    uint32(sched),
		LinkHops:      hops,
		Seq:           seq,
	}
	if int(r.Slot) != wantSlot {
		return Record{}, ErrBadSlot
	}
	if gen == 0 || gen > 1<<32 {
		return Record{}, ErrBadGen
	}
	return r, nil
}
