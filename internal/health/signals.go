package health

import (
	"sync/atomic"

	"flacos/internal/fabric"
)

// Signals is one observation window's worth of raw anomaly inputs for a
// node, sampled by the node itself (the owner is the only party that
// can read its own counters without fabric traffic).
type Signals struct {
	// Ops and VirtualNS are window deltas of the node's fabric traffic;
	// VirtualNS/Ops is the node's own average ns-per-op, the latency
	// drift signal. A degraded link inflates it directly (every global
	// op pays the extra hops).
	Ops       uint64
	VirtualNS uint64
	// Errors is the window's error count: injected faults observed on
	// the node's write-back path plus whatever external feeds (the
	// reliability scrubber, torture attribution) charged to the node.
	Errors uint64
	// LeaseExpiries and ClaimFails are CUMULATIVE sched anomaly
	// counters (see sched.NodeHealthCounters); the detector publishes
	// them raw and lets observers diff.
	LeaseExpiries uint64
	ClaimFails    uint64
	// LinkHops is the node's current extra fabric hops — the one signal
	// that is a direct reading rather than a rate.
	LinkHops uint64
}

// SignalSource produces one Signals sample per observation window.
// Implementations must be safe to call from the health agent goroutine.
type SignalSource interface {
	Sample() Signals
}

// SchedCounters is the slice of sched the health layer consumes.
// *sched.Scheduler satisfies it.
type SchedCounters interface {
	NodeHealthCounters(id int) (leaseExpiries, claimFails uint64)
}

// NodeSource is the standard SignalSource for a live rack node: fabric
// traffic deltas from the node's own stats, injected-fault counts, sched
// anomaly counters, link degradation, plus an external error feed for
// layers (the reliability scrubber) that detect a node's corruption
// somewhere other than the node itself.
type NodeSource struct {
	n     *fabric.Node
	sched SchedCounters // may be nil

	prev     fabric.NodeStatsSnapshot
	extErr   atomic.Uint64
	prevEErr uint64
}

// NewNodeSource builds a source for n. sched may be nil when no
// scheduler runs on the rack.
func NewNodeSource(n *fabric.Node, sched SchedCounters) *NodeSource {
	return &NodeSource{n: n, sched: sched, prev: n.Stats()}
}

// AddErrors charges k externally-detected errors to the node — the
// scrubber attribution path: a scrub pass that repairs a corrupt region
// homed on (or written by) this node calls AddErrors so the corruption
// shows up in the node's error EWMA even though the node itself never
// observed the fault.
func (s *NodeSource) AddErrors(k uint64) { s.extErr.Add(k) }

// Sample implements SignalSource. Not reentrant: the health agent is
// the only caller.
func (s *NodeSource) Sample() Signals {
	cur := s.n.Stats()
	d := cur.Delta(s.prev)
	s.prev = cur
	ext := s.extErr.Load()
	extD := ext - s.prevEErr
	s.prevEErr = ext
	var le, cf uint64
	if s.sched != nil {
		le, cf = s.sched.NodeHealthCounters(s.n.ID())
	}
	return Signals{
		Ops:           d.Loads + d.Stores + d.Atomics,
		VirtualNS:     d.VirtualNS,
		Errors:        d.FaultsInjected + extD,
		LeaseExpiries: le,
		ClaimFails:    cf,
		LinkHops:      uint64(s.n.LinkDegradation()),
	}
}
