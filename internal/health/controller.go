package health

import (
	"fmt"
	"sync"
	"sync/atomic"

	"flacos/internal/fabric"
	"flacos/internal/membership"
	"flacos/internal/trace"
)

// The self-healing controller is the action half of the health layer:
// it consumes the unified membership+health event stream and runs the
// remediation pipeline against a live, loaded rack.
//
//	EvDegraded  -> drain: gate the scheduler, evict serverless
//	               instances, fence the store EARLY (before the node is
//	               dead — a gray-failing node's writes are the zombie
//	               writes most worth stopping), and re-place memory by
//	               draining the node in the tiering daemon.
//	EvDead      -> abort any in-flight drain and run the classic death
//	               sweep (lease reclaim, fence, evict); dead beats
//	               degraded, always.
//	EvRecovered -> rejoin: membership rejoin under a bumped generation
//	               (the early fence made the old generation unusable by
//	               design), then reopen every gate the drain closed.
//
// Every stage is traced as a SubHealth span and every stage boundary is
// an abort point: an EvDead that lands mid-drain wins the race cleanly
// — the drain stops where it is, and the death sweep (idempotent,
// generation-fenced) covers whatever the drain had not gotten to.

// Stage identifies one remediation stage, for trace spans and the
// OnStage test/experiment hook.
type Stage uint8

const (
	// StageGate: sched.SetNodeServing(node, false) — the node stops
	// pulling rack work; in-flight tasks run to completion.
	StageGate Stage = iota
	// StageEvict: serverless controllers evict and re-place the node's
	// warm instances.
	StageEvict
	// StageFence: the store fences the node's CURRENT generation —
	// before death, not after. From here the degraded node cannot write.
	StageFence
	// StageRePlace: the tiering daemon marks the node drained — stops
	// promoting pages toward it and spills its local pages.
	StageRePlace
	// StageDrained: the drain pipeline completed; the node idles fenced.
	StageDrained
	// StageAbort: an EvDead (or a newer generation) interrupted the
	// drain; the death path owns remediation from here.
	StageAbort
	// StageRejoin: recovery rejoin is starting (membership rejoin plus
	// gate reopening).
	StageRejoin
	// StageRejoined: the rejoin pipeline completed; the node serves.
	StageRejoined
	// StageDead: the death sweep ran for the node.
	StageDead
)

func (s Stage) String() string {
	switch s {
	case StageGate:
		return "gate"
	case StageEvict:
		return "evict"
	case StageFence:
		return "fence"
	case StageRePlace:
		return "re-place"
	case StageDrained:
		return "drained"
	case StageAbort:
		return "abort"
	case StageRejoin:
		return "rejoin"
	case StageRejoined:
		return "rejoined"
	case StageDead:
		return "dead"
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// Stage-completion bits reported in the KDrain end span's arg1.
const (
	maskGate = 1 << iota
	maskEvict
	maskFence
	maskRePlace
	maskAborted
)

// SchedGate is the slice of sched the controller drives. The wider
// surface (vs signals.go's SchedCounters) is split so racks without a
// scheduler can pass nil for one and not the other.
type SchedGate interface {
	SetNodeServing(id int, serving bool)
	ReclaimNode(from *fabric.Node, dead int) int
}

// StoreGate is the slice of redis the controller drives.
type StoreGate interface {
	FenceNode(from *fabric.Node, nodeID int, gen uint64) int
}

// ServerlessGate is the slice of serverless the controller drives.
type ServerlessGate interface {
	EvictNode(id int) int
}

// TieringGate is the slice of tiering the controller drives.
type TieringGate interface {
	SetNodeDrained(node int, drained bool)
}

// ControllerConfig wires the controller to the subsystems it remediates
// through. Every field except From is optional: nil gates are skipped,
// so a rack running only sched+redis still self-heals what it has.
type ControllerConfig struct {
	Sched      SchedGate
	Store      StoreGate
	Serverless []ServerlessGate
	Tiering    TieringGate
	// Rejoin performs the node-side recovery rejoin: membership rejoin
	// under a bumped generation, resync, re-attach fresh store views.
	// It runs on the controller's event goroutine; returning an error
	// leaves the node drained (a later EvRecovered or EvJoin retries /
	// reopens).
	Rejoin func(node int, gen uint64) error
	// OnStage, when set, is called before each remediation stage runs
	// and after terminal ones complete (Drained/Abort/Rejoined/Dead).
	// Tests use it to hold a drain mid-stage and to observe completion.
	OnStage func(st Stage, node int, gen uint64)
	// From is the live node the controller's fabric operations (fence
	// CASes, lease-reclaim sweeps) execute through.
	From *fabric.Node
}

// node phases.
const (
	phaseIdle = iota
	phaseDraining
	phaseDrained
	phaseRejoining
)

type nodeState struct {
	phase          int
	gen            uint64 // generation being drained / drained at
	deadGen        uint64 // highest generation known dead
	seenGen        uint64 // highest generation seen alive (join/degrade/recover)
	pendingRecover bool   // EvRecovered landed while still draining
}

// sawGen records evidence that node's generation gen was alive. Callers
// hold c.mu.
func (st *nodeState) sawGen(gen uint64) {
	if gen > st.seenGen {
		st.seenGen = gen
	}
}

// ControllerStats counts the controller's remediation activity.
type ControllerStats struct {
	Drains        uint64 // drain pipelines completed
	DrainsAborted uint64 // drains interrupted by death / newer generation
	Rejoins       uint64 // rejoin pipelines completed
	DeadSweeps    uint64 // death sweeps run
}

// Controller is the self-healing controller. One instance subscribes to
// one member's event stream; run it on a node expected to stay up (or
// one per node — every action it takes is idempotent or CAS/fence
// protected, so duplicated controllers are safe, merely wasteful).
type Controller struct {
	cfg ControllerConfig
	m   *membership.Member

	trw atomic.Pointer[trace.Writer]

	mu       sync.Mutex
	nodes    map[int]*nodeState
	deadSeen map[[2]uint64]bool // {slot, gen} -> death sweep already ran

	// brokenSkipDrainFence is the planted self-test break: when set, the
	// drain pipeline SKIPS the early-fence stage — exactly the bug the
	// torture zombie-write checker exists to catch. See SetBroken*.
	brokenSkipDrainFence atomic.Bool

	stats struct {
		drains, aborted, rejoins, deadSweeps atomic.Uint64
	}
}

// NewController builds a controller over m's event stream and
// subscribes it. Events are handled inline on whichever goroutine
// delivers them (the member's agent, a health agent, or a test). m may
// be nil — cfg.From must then be set and the caller feeds OnEvent
// directly (tests, racks with their own event plumbing).
func NewController(m *membership.Member, cfg ControllerConfig) *Controller {
	if cfg.From == nil {
		cfg.From = m.Node()
	}
	c := &Controller{
		cfg:      cfg,
		m:        m,
		nodes:    make(map[int]*nodeState),
		deadSeen: make(map[[2]uint64]bool),
	}
	if m != nil {
		m.Subscribe(c.OnEvent)
	}
	return c
}

// SetTrace attaches a flight-recorder writer for the remediation spans.
func (c *Controller) SetTrace(w *trace.Writer) { c.trw.Store(w) }

func (c *Controller) tw() *trace.Writer { return c.trw.Load() }

// SetBrokenSkipDrainFence plants the self-test bug: drains skip the
// early-fence stage, so a drained-but-not-dead node can keep writing
// through its old views — the fenced-zombie-write invariant checker
// MUST catch this. Never set outside the planted-broken self-test.
func (c *Controller) SetBrokenSkipDrainFence(v bool) { c.brokenSkipDrainFence.Store(v) }

// brokenSkipDrainFencePkg is the package-wide form of the planted
// break, flipped by the torture harness's ApplyBreak("drain-fence")
// before any controller exists. Either flag bites.
var brokenSkipDrainFencePkg atomic.Bool

// SetBrokenSkipDrainFence plants the skip-drain-fence bug for every
// controller in the process — the torture break hook. Never set outside
// the planted-broken self-test.
func SetBrokenSkipDrainFence(v bool) { brokenSkipDrainFencePkg.Store(v) }

func (c *Controller) drainFenceBroken() bool {
	return c.brokenSkipDrainFence.Load() || brokenSkipDrainFencePkg.Load()
}

// Stats returns a snapshot of the controller's activity counters.
func (c *Controller) Stats() ControllerStats {
	return ControllerStats{
		Drains:        c.stats.drains.Load(),
		DrainsAborted: c.stats.aborted.Load(),
		Rejoins:       c.stats.rejoins.Load(),
		DeadSweeps:    c.stats.deadSweeps.Load(),
	}
}

func (c *Controller) node(id int) *nodeState {
	st := c.nodes[id]
	if st == nil {
		st = &nodeState{}
		c.nodes[id] = st
	}
	return st
}

func (c *Controller) stage(st Stage, node int, gen uint64) {
	if c.cfg.OnStage != nil {
		c.cfg.OnStage(st, node, gen)
	}
}

// OnEvent is the controller's subscriber. Exported so tests (and racks
// wiring the controller to a different stream) can inject events
// directly; concurrent calls are exactly the production situation — the
// member's agent, every health agent, and the death path all deliver
// from their own goroutines.
func (c *Controller) OnEvent(ev membership.Event) {
	switch ev.Kind {
	case membership.EvDegraded:
		c.drain(ev.Node, ev.Generation)
	case membership.EvRecovered:
		c.recoverNode(ev.Node, ev.Generation)
	case membership.EvDead:
		c.dead(ev)
	case membership.EvJoin:
		c.joined(ev.Node, ev.Generation)
	}
}

// aborted reports whether the drain/rejoin for (node, gen) lost to a
// death or a newer generation.
func (c *Controller) aborted(node int, gen uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.node(node)
	return st.deadGen >= gen || st.gen != gen
}

// drain runs the proactive pipeline for a degraded node. Stages execute
// in a fixed order with an abort check between each: gate -> evict ->
// fence -> re-place. A concurrent EvDead flips deadGen and the pipeline
// stops at the next boundary — remediation continuity is the death
// sweep's job from that point.
func (c *Controller) drain(node int, gen uint64) {
	c.mu.Lock()
	st := c.node(node)
	st.sawGen(gen)
	if gen <= st.deadGen || st.phase != phaseIdle || gen < st.gen {
		c.mu.Unlock()
		return // dead wins; or a drain/rejoin for this node is already running
	}
	st.phase, st.gen, st.pendingRecover = phaseDraining, gen, false
	c.mu.Unlock()

	if tw := c.tw(); tw != nil {
		tw.Begin(trace.SubHealth, trace.KDrain, uint64(node), gen)
	}
	mask := uint64(0)
	abort := func() bool { return c.aborted(node, gen) }

	done := false
	if !abort() {
		c.stage(StageGate, node, gen)
		if c.cfg.Sched != nil {
			c.cfg.Sched.SetNodeServing(node, false)
		}
		mask |= maskGate
		if !abort() {
			c.stage(StageEvict, node, gen)
			for _, sv := range c.cfg.Serverless {
				if sv != nil {
					sv.EvictNode(node)
				}
			}
			mask |= maskEvict
			if !abort() {
				c.stage(StageFence, node, gen)
				if c.cfg.Store != nil && !c.drainFenceBroken() {
					c.cfg.Store.FenceNode(c.cfg.From, node, gen)
					if tw := c.tw(); tw != nil {
						tw.Emit(trace.SubHealth, trace.KFenceEarly, 0, uint64(node), gen+1)
					}
				}
				mask |= maskFence
				if !abort() {
					c.stage(StageRePlace, node, gen)
					if c.cfg.Tiering != nil {
						c.cfg.Tiering.SetNodeDrained(node, true)
						if tw := c.tw(); tw != nil {
							tw.Emit(trace.SubHealth, trace.KRePlace, 0, uint64(node), gen)
						}
					}
					mask |= maskRePlace
					done = true
				}
			}
		}
	}

	rejoin := false
	c.mu.Lock()
	if done && st.deadGen < gen && st.gen == gen {
		st.phase = phaseDrained
		rejoin = st.pendingRecover
		st.pendingRecover = false
		if rejoin {
			st.phase = phaseRejoining
		}
	} else {
		// Lost to death (or a newer generation's pipeline). Leave the
		// gates as they are: the death sweep and the next join own them.
		if st.gen == gen && st.phase == phaseDraining {
			st.phase = phaseIdle
		}
		mask |= maskAborted
	}
	c.mu.Unlock()

	if tw := c.tw(); tw != nil {
		tw.End(trace.SubHealth, trace.KDrain, uint64(node), mask)
	}
	if mask&maskAborted != 0 {
		c.stats.aborted.Add(1)
		c.stage(StageAbort, node, gen)
		return
	}
	c.stats.drains.Add(1)
	c.stage(StageDrained, node, gen)
	if rejoin {
		// An EvRecovered landed while the drain was still running: the
		// verdict flapped faster than the pipeline. Honor it now, after
		// the drain fully closed every gate — never concurrently.
		c.runRejoin(node, gen)
	}
}

// recoverNode reacts to EvRecovered: rejoin a drained node. If the
// drain is still running the rejoin is deferred to its completion (the
// pipeline never runs both directions at once).
func (c *Controller) recoverNode(node int, gen uint64) {
	c.mu.Lock()
	st := c.node(node)
	st.sawGen(gen)
	if gen <= st.deadGen || st.gen != gen {
		c.mu.Unlock()
		return
	}
	switch st.phase {
	case phaseDraining:
		st.pendingRecover = true
		c.mu.Unlock()
		return
	case phaseDrained:
		st.phase = phaseRejoining
		c.mu.Unlock()
		c.runRejoin(node, gen)
	default:
		c.mu.Unlock()
	}
}

// runRejoin executes the recovery pipeline: the Rejoin callback brings
// the node back under a bumped generation (the early fence made the old
// one unusable — by design), then the gates reopen. Death aborts here
// too: a node that dies mid-rejoin stays gated and fenced.
func (c *Controller) runRejoin(node int, gen uint64) {
	if tw := c.tw(); tw != nil {
		tw.Begin(trace.SubHealth, trace.KRejoin, uint64(node), gen)
	}
	c.stage(StageRejoin, node, gen)
	ok := true
	if c.cfg.Rejoin != nil {
		if err := c.cfg.Rejoin(node, gen); err != nil {
			ok = false
		}
	}
	if ok {
		ok = !c.aborted(node, gen)
	}
	if ok {
		if c.cfg.Tiering != nil {
			c.cfg.Tiering.SetNodeDrained(node, false)
		}
		if c.cfg.Sched != nil {
			c.cfg.Sched.SetNodeServing(node, true)
		}
	}
	c.mu.Lock()
	st := c.node(node)
	if st.gen == gen && st.phase == phaseRejoining {
		if ok {
			st.phase = phaseIdle
		} else {
			st.phase = phaseDrained // retry on the next EvRecovered/EvJoin
		}
	}
	c.mu.Unlock()
	if tw := c.tw(); tw != nil {
		tw.End(trace.SubHealth, trace.KRejoin, uint64(node), boolU64(ok))
	}
	if ok {
		c.stats.rejoins.Add(1)
		c.stage(StageRejoined, node, gen)
	}
}

// dead reacts to EvDead: record the death (aborting any in-flight drain
// at its next stage boundary) and run the classic death sweep exactly
// once per (slot, generation).
func (c *Controller) dead(ev membership.Event) {
	c.mu.Lock()
	key := [2]uint64{uint64(ev.Slot), ev.Generation}
	if c.deadSeen[key] {
		c.mu.Unlock()
		return
	}
	c.deadSeen[key] = true
	st := c.node(ev.Node)
	if ev.Generation > st.deadGen {
		st.deadGen = ev.Generation
	}
	if st.gen <= ev.Generation {
		st.phase, st.pendingRecover = phaseIdle, false
	}
	// Restart can beat detection: if the controller has already seen the
	// node alive under a NEWER generation, this death names a finished
	// incarnation — run the generation-scoped sweep (reclaim, fence,
	// evict are all idempotent or fenced by gen) but leave the serving
	// gate alone, or a late verdict would bench a live, rejoined node.
	gate := st.seenGen <= ev.Generation
	c.mu.Unlock()

	c.stage(StageDead, ev.Node, ev.Generation)
	if c.cfg.Sched != nil {
		if gate {
			c.cfg.Sched.SetNodeServing(ev.Node, false)
		}
		c.cfg.Sched.ReclaimNode(c.cfg.From, ev.Node)
	}
	if c.cfg.Store != nil {
		// The death fence is NOT subject to the planted break: the break
		// models forgetting the early fence, not the classic one.
		c.cfg.Store.FenceNode(c.cfg.From, ev.Node, ev.Generation)
	}
	for _, sv := range c.cfg.Serverless {
		if sv != nil {
			sv.EvictNode(ev.Node)
		}
	}
	if c.cfg.Tiering != nil {
		// Stop the drain spill: moving pages through a dead node's MMU
		// can only fail. Rejoin re-primes placement organically.
		c.cfg.Tiering.SetNodeDrained(ev.Node, false)
	}
	c.stats.deadSweeps.Add(1)
}

// joined reacts to EvJoin: a node rejoining under a NEWER generation
// than any the controller acted against (drained OR death-swept) resets
// the node's remediation state and reopens the gates — this covers the
// crash-restart rejoin path, where recovery happens outside the
// controller's own pipeline, including a crash that was never drained
// (the death sweep still closed the serving gate).
func (c *Controller) joined(node int, gen uint64) {
	c.mu.Lock()
	st := c.node(node)
	st.sawGen(gen)
	reopen := gen > st.gen && gen > st.deadGen &&
		(st.phase == phaseDrained || (st.phase == phaseIdle && (st.gen > 0 || st.deadGen > 0)))
	if reopen {
		st.phase, st.gen, st.pendingRecover = phaseIdle, 0, false
	}
	c.mu.Unlock()
	if !reopen {
		return
	}
	if c.cfg.Tiering != nil {
		c.cfg.Tiering.SetNodeDrained(node, false)
	}
	if c.cfg.Sched != nil {
		c.cfg.Sched.SetNodeServing(node, true)
	}
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
