package health

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/membership"
	"flacos/internal/trace"
)

func testFabric(nodes int) *fabric.Fabric {
	return fabric.New(fabric.Config{
		GlobalSize: 16 << 20,
		Nodes:      nodes,
		Latency:    fabric.DefaultLatency(),
	})
}

func fastMemCfg() membership.Config {
	return membership.Config{
		HeartbeatTick: 100 * time.Microsecond,
		DetectTick:    100 * time.Microsecond,
		DeadStrikes:   2,
	}
}

func fastHealthCfg() Config {
	return Config{
		Tick:         100 * time.Microsecond,
		EnterStrikes: 2,
		ExitStrikes:  2,
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// rack boots n members with health agents on every node.
type rack struct {
	f      *fabric.Fabric
	tb     *membership.Table
	layer  *Layer
	ms     []*membership.Member
	agents []*Agent
	srcs   []*NodeSource
}

func bootRack(t *testing.T, nodes int) *rack {
	t.Helper()
	f := testFabric(nodes)
	tb := membership.New(f, fastMemCfg())
	l := New(tb, fastHealthCfg())
	r := &rack{f: f, tb: tb, layer: l}
	for i := 0; i < nodes; i++ {
		m, err := tb.JoinSlot(f.Node(i), i)
		if err != nil {
			t.Fatalf("join node %d: %v", i, err)
		}
		if err := m.Activate(); err != nil {
			t.Fatalf("activate node %d: %v", i, err)
		}
		src := NewNodeSource(f.Node(i), nil)
		a := l.Join(m, src)
		r.ms = append(r.ms, m)
		r.agents = append(r.agents, a)
		r.srcs = append(r.srcs, src)
	}
	for i := range r.ms {
		r.ms[i].Start()
		r.agents[i].Start()
	}
	t.Cleanup(r.stopAll)
	return r
}

func (r *rack) stopAll() {
	for i := range r.ms {
		r.agents[i].Stop()
		r.ms[i].Stop()
	}
}

// TestLinkDegradationRaisesDegradedAndRecovers: the core detection loop
// end to end — one node's link degrades, every agent publishes and
// observes through the arena, exactly one wins the verdict CAS, the
// event stream carries EvDegraded, and clearing the degradation brings
// EvRecovered under the same generation.
func TestLinkDegradationRaisesDegradedAndRecovers(t *testing.T) {
	r := bootRack(t, 4)
	victim := 3

	var mu sync.Mutex
	var got []membership.Event
	r.ms[0].Subscribe(func(ev membership.Event) {
		if ev.Kind == membership.EvDegraded || ev.Kind == membership.EvRecovered {
			mu.Lock()
			got = append(got, ev)
			mu.Unlock()
		}
	})

	r.f.Node(victim).SetLinkDegradation(8)
	waitFor(t, "EvDegraded for the victim", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, ev := range got {
			if ev.Kind == membership.EvDegraded && ev.Node == victim {
				return true
			}
		}
		return false
	})
	waitFor(t, "degraded mirror", func() bool { return r.layer.Degraded(victim) })
	vs := r.layer.Verdicts(r.f.Node(0))
	if vs[victim].State != HealthDegraded || vs[victim].Node != victim || vs[victim].Generation != 1 {
		t.Fatalf("verdict = %+v, want degraded node %d gen 1", vs[victim], victim)
	}
	// Healthy nodes carry no Degraded verdict.
	for i := 0; i < 3; i++ {
		if r.layer.Degraded(i) {
			t.Fatalf("node %d degraded with no anomaly", i)
		}
	}

	r.f.Node(victim).SetLinkDegradation(0)
	waitFor(t, "EvRecovered for the victim", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, ev := range got {
			if ev.Kind == membership.EvRecovered && ev.Node == victim && ev.Generation == 1 {
				return true
			}
		}
		return false
	})
	waitFor(t, "degraded mirror cleared", func() bool { return !r.layer.Degraded(victim) })
}

// TestErrorEWMARaisesDegraded: the scrubber-attribution path — errors
// charged to a node via NodeSource.AddErrors push its error EWMA over
// the threshold with no latency anomaly at all.
func TestErrorEWMARaisesDegraded(t *testing.T) {
	r := bootRack(t, 3)
	victim := 1

	stop := make(chan struct{})
	defer close(stop)
	go func() { // a steady error drip, as a scrub monitor would produce
		tick := time.NewTicker(100 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				r.srcs[victim].AddErrors(2)
			}
		}
	}()
	waitFor(t, "error-driven degraded verdict", func() bool { return r.layer.Degraded(victim) })
}

// TestCrashClearsVerdictWithoutRecovered: dead beats degraded — when a
// degraded node crashes, the verdict is cleared for the membership
// transition to own, and no EvRecovered is synthesized from the clear.
func TestCrashClearsVerdictWithoutRecovered(t *testing.T) {
	r := bootRack(t, 4)
	victim := 2

	var recovered atomic.Int64
	r.ms[0].Subscribe(func(ev membership.Event) {
		if ev.Kind == membership.EvRecovered && ev.Node == victim {
			recovered.Add(1)
		}
	})

	r.f.Node(victim).SetLinkDegradation(8)
	waitFor(t, "degraded verdict", func() bool { return r.layer.Degraded(victim) })

	r.f.Node(victim).Crash()
	waitFor(t, "membership dead", func() bool { return !r.tb.Alive(victim) })
	waitFor(t, "verdict cleared", func() bool {
		return r.layer.Verdicts(r.f.Node(0))[victim].State == HealthUnknown
	})
	waitFor(t, "degraded mirror cleared", func() bool { return !r.layer.Degraded(victim) })
	if n := recovered.Load(); n != 0 {
		t.Fatalf("death synthesized %d EvRecovered events, want 0", n)
	}
}

// TestSuspectNodeStillEmitsHealthSignals: a node held at StateSuspect
// by repeated (false) suspicion keeps publishing health records and the
// detector keeps evaluating it — gray-failure detection must not go
// blind exactly when the liveness layer is unsure. This is the
// membership/detector gap test: Suspect slots remain first-class
// citizens of the anomaly layer.
func TestSuspectNodeStillEmitsHealthSignals(t *testing.T) {
	r := bootRack(t, 3)
	victim := 2

	// Hold the victim near-permanently Suspect: a hostile observer keeps
	// re-suspecting it from node 0; the victim keeps refuting. The CAS
	// churn guarantees the slot spends real time in StateSuspect.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	sawSuspect := make(chan struct{})
	var once sync.Once
	go func() {
		defer wg.Done()
		n := r.f.Node(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.tb.Snapshot(n)[victim]
			if snap.State == membership.StateSuspect {
				once.Do(func() { close(sawSuspect) })
			}
			time.Sleep(50 * time.Microsecond)
			// Re-suspecting is what membership's own detector would do on a
			// frozen beat; here we script it to pin the state.
			r.tb.Suspect(n, victim)
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	select {
	case <-sawSuspect:
	case <-time.After(5 * time.Second):
		t.Fatal("victim never observed Suspect")
	}

	// The victim's health record must keep advancing while suspect...
	read := func() uint64 {
		n := r.f.Node(0)
		g := r.layer.recSlotG(victim)
		n.InvalidateRange(g, recordBytes)
		var line [recordBytes]byte
		n.Read(g, line[:])
		rec, err := DecodeRecord(line, victim)
		if err != nil {
			return 0
		}
		return rec.Seq
	}
	seq0 := read()
	waitFor(t, "health record seq to advance under Suspect", func() bool {
		return read() > seq0
	})

	// ...and the anomaly detector must still be able to convict it.
	r.f.Node(victim).SetLinkDegradation(8)
	waitFor(t, "degraded verdict on a Suspect node", func() bool {
		return r.layer.Degraded(victim)
	})
}

// ---- controller unit tests with scripted gates ----

type fakeGates struct {
	mu        sync.Mutex
	log       []string // serialized action log
	fenceGens []uint64
}

func (g *fakeGates) record(s string) {
	g.mu.Lock()
	g.log = append(g.log, s)
	g.mu.Unlock()
}

func (g *fakeGates) Log() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, len(g.log))
	copy(out, g.log)
	return out
}

func (g *fakeGates) SetNodeServing(id int, serving bool) {
	g.record(fmt.Sprintf("serving(%d,%v)", id, serving))
}
func (g *fakeGates) ReclaimNode(from *fabric.Node, dead int) int {
	g.record(fmt.Sprintf("reclaim(%d)", dead))
	return 0
}
func (g *fakeGates) FenceNode(from *fabric.Node, nodeID int, gen uint64) int {
	g.mu.Lock()
	g.fenceGens = append(g.fenceGens, gen)
	g.log = append(g.log, fmt.Sprintf("fence(%d,%d)", nodeID, gen))
	g.mu.Unlock()
	return 0
}
func (g *fakeGates) EvictNode(id int) int {
	g.record(fmt.Sprintf("evict(%d)", id))
	return 0
}
func (g *fakeGates) SetNodeDrained(node int, drained bool) {
	g.record(fmt.Sprintf("drained(%d,%v)", node, drained))
}

func newFakeController(f *fabric.Fabric, g *fakeGates, onStage func(Stage, int, uint64)) *Controller {
	return NewController(nil, ControllerConfig{
		Sched:      g,
		Store:      g,
		Serverless: []ServerlessGate{g},
		Tiering:    g,
		OnStage:    onStage,
		From:       f.Node(0),
	})
}

func logEquals(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("action log = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("action log = %v, want %v", got, want)
		}
	}
}

// TestControllerDrainPipelineOrder: one EvDegraded runs the full drain
// in stage order — gate, evict, fence (at the node's CURRENT
// generation, before any death), re-place — and the trace timeline
// carries the matching span.
func TestControllerDrainPipelineOrder(t *testing.T) {
	f := testFabric(2)
	rec := trace.New(f, trace.Config{RingCap: 1 << 10})
	g := &fakeGates{}
	c := newFakeController(f, g, nil)
	c.SetTrace(rec.Writer(0))

	c.OnEvent(membership.Event{Kind: membership.EvDegraded, Slot: 1, Node: 1, Generation: 5})

	logEquals(t, g.Log(), []string{
		"serving(1,false)", "evict(1)", "fence(1,5)", "drained(1,true)",
	})
	st := c.Stats()
	if st.Drains != 1 || st.DrainsAborted != 0 {
		t.Fatalf("stats = %+v, want one clean drain", st)
	}
	// A duplicate EvDegraded (another agent's delivery) is a no-op.
	c.OnEvent(membership.Event{Kind: membership.EvDegraded, Slot: 1, Node: 1, Generation: 5})
	if st := c.Stats(); st.Drains != 1 {
		t.Fatalf("duplicate EvDegraded re-ran the drain: %+v", st)
	}

	evs := rec.Collector().Snapshot(f.Node(0), false).Events
	var begin, end, fence int
	for _, e := range evs {
		if e.Sub != trace.SubHealth {
			continue
		}
		switch {
		case e.Kind == trace.KDrain && e.Flags == trace.FlagBegin:
			begin++
		case e.Kind == trace.KDrain && e.Flags == trace.FlagEnd:
			end++
			if e.Arg1&maskAborted != 0 {
				t.Fatalf("clean drain traced as aborted: %+v", e)
			}
		case e.Kind == trace.KFenceEarly:
			fence++
			if e.Arg1 != 6 {
				t.Fatalf("KFenceEarly arg1 = %d, want fenced generation 6", e.Arg1)
			}
		}
	}
	if begin != 1 || end != 1 || fence != 1 {
		t.Fatalf("trace spans: begin=%d end=%d fenceEarly=%d, want 1 each", begin, end, fence)
	}
}

// TestControllerRecoverRunsRejoin: EvRecovered after a completed drain
// runs the rejoin callback and reopens every gate in reverse.
func TestControllerRecoverRunsRejoin(t *testing.T) {
	f := testFabric(2)
	g := &fakeGates{}
	rejoined := 0
	c := newFakeController(f, g, nil)
	c.cfg.Rejoin = func(node int, gen uint64) error {
		g.record(fmt.Sprintf("rejoin(%d,%d)", node, gen))
		rejoined++
		return nil
	}

	c.OnEvent(membership.Event{Kind: membership.EvDegraded, Slot: 1, Node: 1, Generation: 5})
	c.OnEvent(membership.Event{Kind: membership.EvRecovered, Slot: 1, Node: 1, Generation: 5})

	logEquals(t, g.Log(), []string{
		"serving(1,false)", "evict(1)", "fence(1,5)", "drained(1,true)",
		"rejoin(1,5)", "drained(1,false)", "serving(1,true)",
	})
	if rejoined != 1 || c.Stats().Rejoins != 1 {
		t.Fatalf("rejoin ran %d times (stats %+v), want 1", rejoined, c.Stats())
	}
	// The node can degrade and drain again under a later generation.
	c.OnEvent(membership.Event{Kind: membership.EvDegraded, Slot: 1, Node: 1, Generation: 6})
	if st := c.Stats(); st.Drains != 2 {
		t.Fatalf("re-drain after rejoin did not run: %+v", st)
	}
}

// TestControllerBrokenSkipDrainFence: the planted self-test bug — with
// the break set, the drain runs but never fences. The torture workload's
// zombie-write checker exists to catch exactly this hole; here we pin
// the break's mechanics so the self-test fails for the right reason.
func TestControllerBrokenSkipDrainFence(t *testing.T) {
	f := testFabric(2)
	g := &fakeGates{}
	c := newFakeController(f, g, nil)
	c.SetBrokenSkipDrainFence(true)

	c.OnEvent(membership.Event{Kind: membership.EvDegraded, Slot: 1, Node: 1, Generation: 5})
	logEquals(t, g.Log(), []string{
		"serving(1,false)", "evict(1)", "drained(1,true)", // no fence!
	})

	// The classic death fence is NOT subject to the break.
	c.OnEvent(membership.Event{Kind: membership.EvDead, Slot: 1, Node: 1, Generation: 5})
	found := false
	for _, s := range g.Log() {
		if s == "fence(1,5)" {
			found = true
		}
	}
	if !found {
		t.Fatal("death fence was skipped by the drain-fence break")
	}
}

// TestRaceDegradedVsDead: EvDegraded's drain racing EvDead on the same
// node, deterministically interleaved — the death lands while the drain
// is held between its evict and fence stages. The drain must abort at
// the boundary, the node must end fenced EXACTLY once (by the death
// path, at the dead generation), and no rejoin may run afterward. Run
// under -race: the controller state machine is exercised from two
// goroutines exactly as the member agent + health agent would.
func TestRaceDegradedVsDead(t *testing.T) {
	f := testFabric(2)
	rec := trace.New(f, trace.Config{RingCap: 1 << 10})
	g := &fakeGates{}

	holdEvict := make(chan struct{})
	releaseEvict := make(chan struct{})
	var held atomic.Bool
	c := newFakeController(f, g, func(st Stage, node int, gen uint64) {
		if st == StageEvict && held.CompareAndSwap(false, true) {
			close(holdEvict) // signal: drain reached mid-pipeline
			<-releaseEvict   // hold it there until the death lands
		}
	})
	c.SetTrace(rec.Writer(0))
	c.cfg.Rejoin = func(node int, gen uint64) error {
		t.Error("rejoin ran after death")
		return nil
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.OnEvent(membership.Event{Kind: membership.EvDegraded, Slot: 1, Node: 1, Generation: 5})
	}()
	go func() {
		defer wg.Done()
		<-holdEvict // the drain is provably mid-pipeline
		c.OnEvent(membership.Event{Kind: membership.EvDead, Slot: 1, Node: 1, Generation: 5})
		close(releaseEvict)
	}()
	wg.Wait()

	// Exactly one fence: the death path's. The drain's fence stage sat
	// after the abort boundary and must not have run.
	g.mu.Lock()
	fences := append([]uint64(nil), g.fenceGens...)
	g.mu.Unlock()
	if len(fences) != 1 || fences[0] != 5 {
		t.Fatalf("fence calls = %v, want exactly [5]", fences)
	}
	st := c.Stats()
	if st.DrainsAborted != 1 || st.Drains != 0 || st.DeadSweeps != 1 {
		t.Fatalf("stats = %+v, want 1 aborted drain + 1 dead sweep", st)
	}
	// A late EvRecovered for the dead generation must not resurrect.
	c.OnEvent(membership.Event{Kind: membership.EvRecovered, Slot: 1, Node: 1, Generation: 5})
	if c.Stats().Rejoins != 0 {
		t.Fatal("EvRecovered after death ran a rejoin")
	}

	// Trace timeline: the KDrain span closed with the abort bit, and no
	// KRejoin span exists anywhere after it.
	evs := rec.Collector().Snapshot(f.Node(0), false).Events
	sawAbortEnd := false
	for _, e := range evs {
		if e.Sub != trace.SubHealth {
			continue
		}
		if e.Kind == trace.KDrain && e.Flags == trace.FlagEnd {
			if e.Arg1&maskAborted == 0 {
				t.Fatalf("raced drain closed without the abort bit: %+v", e)
			}
			sawAbortEnd = true
		}
		if e.Kind == trace.KRejoin {
			t.Fatalf("rejoin span after death: %+v", e)
		}
	}
	if !sawAbortEnd {
		t.Fatal("no aborted KDrain end span in the timeline")
	}
}

// TestRaceRecoveredVsRunningDrain: EvRecovered arriving while the drain
// is still mid-pipeline. The rejoin must not run concurrently with the
// drain — it is deferred to the drain's completion and runs exactly
// once, strictly after the drain's end in the trace timeline.
func TestRaceRecoveredVsRunningDrain(t *testing.T) {
	f := testFabric(2)
	rec := trace.New(f, trace.Config{RingCap: 1 << 10})
	g := &fakeGates{}

	holdFence := make(chan struct{})
	releaseFence := make(chan struct{})
	var held atomic.Bool
	c := newFakeController(f, g, func(st Stage, node int, gen uint64) {
		if st == StageFence && held.CompareAndSwap(false, true) {
			close(holdFence)
			<-releaseFence
		}
	})
	c.SetTrace(rec.Writer(0))
	var rejoins atomic.Int64
	c.cfg.Rejoin = func(node int, gen uint64) error {
		rejoins.Add(1)
		return nil
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.OnEvent(membership.Event{Kind: membership.EvDegraded, Slot: 1, Node: 1, Generation: 5})
	}()
	go func() {
		defer wg.Done()
		<-holdFence // the drain is provably mid-pipeline
		c.OnEvent(membership.Event{Kind: membership.EvRecovered, Slot: 1, Node: 1, Generation: 5})
		if n := rejoins.Load(); n != 0 {
			t.Errorf("rejoin ran %d times while the drain was still mid-pipeline", n)
		}
		close(releaseFence)
	}()
	wg.Wait()

	if n := rejoins.Load(); n != 1 {
		t.Fatalf("rejoin ran %d times, want exactly 1 (after drain completion)", n)
	}
	st := c.Stats()
	if st.Drains != 1 || st.DrainsAborted != 0 || st.Rejoins != 1 {
		t.Fatalf("stats = %+v, want one clean drain then one rejoin", st)
	}

	// Timeline order: KDrain end strictly precedes KRejoin begin. Both
	// spans are emitted by the one controller writer, so Seq gives a
	// total order.
	evs := rec.Collector().Snapshot(f.Node(0), false).Events
	var drainEnd, rejoinBegin *trace.Event
	for i := range evs {
		e := &evs[i]
		if e.Sub != trace.SubHealth {
			continue
		}
		if e.Kind == trace.KDrain && e.Flags == trace.FlagEnd {
			drainEnd = e
		}
		if e.Kind == trace.KRejoin && e.Flags == trace.FlagBegin {
			rejoinBegin = e
		}
	}
	if drainEnd == nil || rejoinBegin == nil {
		t.Fatalf("missing spans: drainEnd=%v rejoinBegin=%v", drainEnd, rejoinBegin)
	}
	if rejoinBegin.Seq <= drainEnd.Seq {
		t.Fatalf("rejoin began (seq %d) before the drain ended (seq %d)",
			rejoinBegin.Seq, drainEnd.Seq)
	}
}

// TestControllerJoinReopensGates: the crash-restart path — a node the
// controller drained dies, restarts, and rejoins under a bumped
// generation outside the controller's own rejoin pipeline. The EvJoin
// must reopen the gates.
func TestControllerJoinReopensGates(t *testing.T) {
	f := testFabric(2)
	g := &fakeGates{}
	c := newFakeController(f, g, nil)

	c.OnEvent(membership.Event{Kind: membership.EvDegraded, Slot: 1, Node: 1, Generation: 5})
	c.OnEvent(membership.Event{Kind: membership.EvJoin, Slot: 1, Node: 1, Generation: 6})

	want := []string{
		"serving(1,false)", "evict(1)", "fence(1,5)", "drained(1,true)",
		"drained(1,false)", "serving(1,true)",
	}
	logEquals(t, g.Log(), want)
}
