package metrics

import "testing"

func TestMergeExactWhenUncapped(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 5; i++ {
		a.Record(float64(i))
	}
	for i := 6; i <= 10; i++ {
		b.Record(float64(i))
	}
	a.Merge(b)
	if a.Count() != 10 {
		t.Fatalf("count=%d want 10", a.Count())
	}
	if m := a.Mean(); m != 5.5 {
		t.Errorf("mean=%v want 5.5", m)
	}
	if p := a.Percentile(50); p != 5 {
		t.Errorf("p50=%v want 5 (exact, nearest-rank)", p)
	}
	if mx := a.Max(); mx != 10 {
		t.Errorf("max=%v want 10", mx)
	}
	// b is read-only during the merge.
	if b.Count() != 5 || b.Mean() != 8 {
		t.Errorf("merge mutated other: count=%d mean=%v", b.Count(), b.Mean())
	}
}

func TestMergeEmptyOtherIsNoop(t *testing.T) {
	a := NewHistogram()
	a.Record(3)
	a.Merge(NewHistogram())
	if a.Count() != 1 || a.Mean() != 3 {
		t.Errorf("merge of empty histogram changed state: count=%d mean=%v", a.Count(), a.Mean())
	}
}

func TestMergeRespectsReservoirCap(t *testing.T) {
	a := NewHistogram()
	a.SetReservoir(100, 1)
	b := NewHistogram()
	for i := 0; i < 1000; i++ {
		a.Record(1)
		b.Record(2)
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("count=%d want 2000 (exact despite reservoir)", a.Count())
	}
	if m := a.Mean(); m != 1.5 {
		t.Errorf("mean=%v want exactly 1.5", m)
	}
	a.mu.Lock()
	retained := len(a.samples)
	a.mu.Unlock()
	if retained > 100 {
		t.Errorf("retained %d samples, cap is 100", retained)
	}
	// Equal-weight sources: the estimate should see both values.
	if p := a.Percentile(10); p != 1 {
		t.Errorf("p10=%v want 1", p)
	}
	if p := a.Percentile(90); p != 2 {
		t.Errorf("p90=%v want 2", p)
	}
}

func TestMergeWeightsSourcesByTotal(t *testing.T) {
	// A 10k-sample node must not be drowned out by a 50-sample node just
	// because the reservoir retains similar slot counts from each.
	a := NewHistogram()
	a.SetReservoir(50, 7)
	for i := 0; i < 10_000; i++ {
		a.Record(1) // each retained slot stands in for ~200 originals
	}
	b := NewHistogram()
	for i := 0; i < 50; i++ {
		b.Record(2) // weight 1 each
	}
	a.Merge(b)
	a.mu.Lock()
	light := 0
	for _, v := range a.samples {
		if v == 2 {
			light++
		}
	}
	total := len(a.samples)
	a.mu.Unlock()
	// Proportionally the light source is 50/10050 ≈ 0.5% of the mass; even
	// with sampling noise it must stay a small minority of retained slots.
	if light > total/5 {
		t.Errorf("light source holds %d/%d retained slots; weighting failed", light, total)
	}
}

func TestMergeSelfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Merge(self) did not panic")
		}
	}()
	h := NewHistogram()
	h.Merge(h)
}
