// Package metrics provides the small measurement toolkit the experiment
// harnesses share: latency histograms with percentile extraction, and
// simple tabular reporting matching the rows the paper prints.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Histogram records latency samples and reports summary statistics. By
// default it stores raw samples (experiments here record at most a few
// million), which keeps percentiles exact; long-running recorders (the
// scheduler) should bound memory with SetReservoir. Safe for concurrent
// use.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sum     float64
	total   int
	sorted  bool

	cap int // 0 = unbounded (exact percentiles)
	rng *rand.Rand
}

// NewHistogram returns an empty histogram with exact percentiles.
func NewHistogram() *Histogram { return &Histogram{} }

// SetReservoir bounds the histogram to cap retained samples using
// Vitter's Algorithm R: each of the first cap samples is kept, and the
// i'th sample thereafter replaces a uniformly random retained one with
// probability cap/i. Count and Mean stay exact (they track every
// sample); Percentile, Min and Max become reservoir estimates. seed
// makes runs reproducible. cap <= 0 restores unbounded exact mode.
func (h *Histogram) SetReservoir(cap int, seed int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if cap <= 0 {
		h.cap, h.rng = 0, nil
		return
	}
	h.cap = cap
	h.rng = rand.New(rand.NewSource(seed))
	if len(h.samples) > cap {
		h.samples = h.samples[:cap]
		h.sorted = false
	}
}

// Record adds one sample (any unit; callers keep units consistent).
func (h *Histogram) Record(v float64) {
	h.mu.Lock()
	h.total++
	h.sum += v
	if h.cap > 0 && len(h.samples) >= h.cap {
		if j := h.rng.Intn(h.total); j < h.cap {
			h.samples[j] = v
			h.sorted = false
		}
	} else {
		h.samples = append(h.samples, v)
		h.sorted = false
	}
	h.mu.Unlock()
}

// RecordDuration adds one sample in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(float64(d.Nanoseconds())) }

// Count returns the number of recorded samples (exact even when a
// reservoir cap is set).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the arithmetic mean, or 0 with no samples. It is exact
// even when a reservoir cap is set.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Percentile returns the p'th percentile (0 < p <= 100) by nearest-rank,
// or 0 with no samples.
func (h *Histogram) Percentile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return h.samples[rank-1]
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 { return h.Percentile(0.0001) }

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 { return h.Percentile(100) }

// Merge folds other's samples into h so per-node histograms can be
// combined into one rack-wide view. Count, Mean and sums stay exact.
// With no reservoir cap on h the sample sets are concatenated and
// percentiles remain exact. With a cap, the combined set is downsampled
// by weighted reservoir sampling (Efraimidis–Spirakis): each retained
// sample stands in for total/len originals of its source histogram, so
// a 1M-sample node is not drowned out by a 1k-sample node that happens
// to retain as many reservoir slots. other is read under its own lock
// and is not modified.
func (h *Histogram) Merge(other *Histogram) {
	if h == other {
		panic("metrics: Histogram.Merge with itself")
	}
	other.mu.Lock()
	oSamples := append([]float64(nil), other.samples...)
	oSum, oTotal := other.sum, other.total
	other.mu.Unlock()
	if oTotal == 0 {
		return
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	hTotal := h.total
	h.sum += oSum
	h.total += oTotal
	h.sorted = false
	if h.cap <= 0 || len(h.samples)+len(oSamples) <= h.cap {
		h.samples = append(h.samples, oSamples...)
		return
	}
	// Downsample the pooled samples to cap, weighting each by how many
	// originals it represents: key = u^(1/w), keep the cap largest keys.
	type keyed struct{ v, key float64 }
	pool := make([]keyed, 0, len(h.samples)+len(oSamples))
	weigh := func(samples []float64, total int) {
		if len(samples) == 0 {
			return
		}
		w := float64(total) / float64(len(samples))
		for _, v := range samples {
			u := h.rng.Float64()
			for u == 0 {
				u = h.rng.Float64()
			}
			pool = append(pool, keyed{v, math.Pow(u, 1/w)})
		}
	}
	weigh(h.samples, hTotal)
	weigh(oSamples, oTotal)
	sort.Slice(pool, func(i, j int) bool { return pool[i].key > pool[j].key })
	h.samples = h.samples[:0]
	for i := 0; i < h.cap && i < len(pool); i++ {
		h.samples = append(h.samples, pool[i].v)
	}
}

// Reset discards all samples (the reservoir configuration persists).
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sum = 0
	h.total = 0
	h.sorted = false
	h.mu.Unlock()
}

// Summary is a point-in-time digest of a histogram.
type Summary struct {
	Count          int
	Mean, P50, P99 float64
	Min, Max       float64
}

// Summarize extracts a Summary.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P99:   h.Percentile(99),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}

// FormatNS renders a nanosecond quantity with an adaptive unit, e.g.
// "1.75us" or "21.07s".
func FormatNS(ns float64) string {
	switch {
	case ns < 1e3:
		return fmt.Sprintf("%.0fns", ns)
	case ns < 1e6:
		return fmt.Sprintf("%.2fus", ns/1e3)
	case ns < 1e9:
		return fmt.Sprintf("%.2fms", ns/1e6)
	default:
		return fmt.Sprintf("%.2fs", ns/1e9)
	}
}

// Table accumulates aligned rows for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends one row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// NumRows returns how many rows have been added (tests assert every
// experiment produced a non-empty table).
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with space-aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, hd := range t.header {
		width[i] = len(hd)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var out string
	line := func(cells []string) string {
		s := ""
		for i := range t.header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			s += fmt.Sprintf("%-*s", width[i]+2, c)
		}
		return s + "\n"
	}
	out += line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = repeat('-', width[i])
	}
	out += line(sep)
	for _, r := range t.rows {
		out += line(r)
	}
	return out
}

func repeat(b byte, n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = b
	}
	return string(s)
}
