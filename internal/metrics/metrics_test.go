package metrics

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Record(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Mean(); got != 50.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := h.Percentile(50); got != 50 {
		t.Fatalf("P50 = %v", got)
	}
	if got := h.Percentile(99); got != 99 {
		t.Fatalf("P99 = %v", got)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	s := h.Summarize()
	if s.Count != 100 || s.P50 != 50 {
		t.Fatalf("Summary = %+v", s)
	}
	h.Reset()
	if h.Count() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestHistogramRecordAfterPercentile(t *testing.T) {
	h := NewHistogram()
	h.Record(5)
	_ = h.Percentile(50) // sorts
	h.Record(1)          // must re-sort on next query
	if got := h.Percentile(1); got != 1 {
		t.Fatalf("P1 = %v, want 1", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Record(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestRecordDuration(t *testing.T) {
	h := NewHistogram()
	h.RecordDuration(2 * time.Microsecond)
	if got := h.Mean(); got != 2000 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestFormatNS(t *testing.T) {
	cases := map[float64]string{
		500:     "500ns",
		1750:    "1.75us",
		2.5e6:   "2.50ms",
		21.07e9: "21.07s",
	}
	for in, want := range cases {
		if got := FormatNS(in); got != want {
			t.Errorf("FormatNS(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("op", "latency")
	tb.AddRow("set", "1.75us")
	tb.AddRow("get-with-long-name", "2.40us")
	out := tb.String()
	if !strings.Contains(out, "op") || !strings.Contains(out, "get-with-long-name") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestReservoirMatchesExactPercentiles(t *testing.T) {
	// Feed identical skewed streams to an exact histogram and a capped
	// one; the reservoir's percentile estimates must land close to the
	// exact values while holding ~25x fewer samples.
	const n, cap = 100_000, 4096
	exact := NewHistogram()
	capped := NewHistogram()
	capped.SetReservoir(cap, 42)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		// Log-normal-ish latency shape: a long tail over a tight body.
		v := math.Exp(rng.NormFloat64()) * 1000
		exact.Record(v)
		capped.Record(v)
	}
	if got := capped.Count(); got != n {
		t.Fatalf("capped Count = %d, want %d (count stays exact)", got, n)
	}
	if em, cm := exact.Mean(), capped.Mean(); math.Abs(em-cm) > 1e-6*em {
		t.Fatalf("capped Mean = %v, exact = %v (mean stays exact)", cm, em)
	}
	for _, p := range []float64{50, 90, 99} {
		e, c := exact.Percentile(p), capped.Percentile(p)
		if diff := math.Abs(e-c) / e; diff > 0.10 {
			t.Errorf("p%.0f: reservoir %v vs exact %v (%.1f%% off, want <10%%)", p, c, e, diff*100)
		}
	}
}

func TestReservoirUncappedByDefaultAndRestorable(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Record(float64(i))
	}
	if got := h.Percentile(99); got != 98 {
		t.Fatalf("exact p99 = %v, want 98", got)
	}
	h.SetReservoir(10, 1)
	h.Record(1000) // over cap: must replace, not grow
	if got := h.Count(); got != 101 {
		t.Fatalf("Count = %d, want 101", got)
	}
	h.SetReservoir(0, 0) // back to exact mode
	h.Reset()
	for i := 0; i < 100; i++ {
		h.Record(float64(i))
	}
	if got := h.Percentile(99); got != 98 {
		t.Fatalf("restored exact p99 = %v, want 98", got)
	}
}
