package coherlint

import (
	"go/ast"
	"go/types"
	"strings"
)

// fabricPkgPath is the package whose Node methods define the sync and
// data-movement vocabulary the analyzers reason about.
const fabricPkgPath = "flacos/internal/fabric"

// opClass partitions fabric.Node's API by coherence role.
type opClass int

const (
	opNone       opClass = iota
	opPlainRead          // Load8/16/32/64, Read: through the private cache
	opPlainWrite         // Store8/16/32/64, Write: dirty lines, not yet home
	opWriteBack          // WriteBackRange/WriteBackAll: dirty lines -> home
	opInvalidate         // InvalidateRange/InvalidateAll: drop cached lines
	opFlush              // FlushRange/FlushAll: write back then invalidate
	opAtomicLoad         // AtomicLoad64: acquire of a publication
	opAtomicPub          // AtomicStore64/CAS64/Swap64: publication stores
	opAtomicAdd          // Add64: fetch-and-add (counter, not a publication)
	opFence              // Fence
)

var nodeMethodClass = map[string]opClass{
	"Load8": opPlainRead, "Load16": opPlainRead, "Load32": opPlainRead,
	"Load64": opPlainRead, "Read": opPlainRead,
	"Store8": opPlainWrite, "Store16": opPlainWrite, "Store32": opPlainWrite,
	"Store64": opPlainWrite, "Write": opPlainWrite,
	"WriteBackRange": opWriteBack, "WriteBackAll": opWriteBack,
	"InvalidateRange": opInvalidate, "InvalidateAll": opInvalidate,
	"FlushRange": opFlush, "FlushAll": opFlush,
	"AtomicLoad64":  opAtomicLoad,
	"AtomicStore64": opAtomicPub, "CAS64": opAtomicPub, "Swap64": opAtomicPub,
	"Add64": opAtomicAdd,
	"Fence": opFence,
}

// atomicNames lists the method names //flac:published-by may reference.
var atomicNames = map[string]bool{
	"AtomicStore64": true, "CAS64": true, "Swap64": true, "Add64": true,
}

// namedType unwraps t to its *types.Named core (through pointers and
// aliases), or nil.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isFabricType reports whether t (possibly behind pointers) is the named
// fabric type with the given name.
func isFabricType(t types.Type, name string) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == fabricPkgPath
}

// isGPtr reports whether t is fabric.GPtr.
func isGPtr(t types.Type) bool { return isFabricType(t, "GPtr") }

// classifyCall maps a call expression to its fabric coherence role, with
// the method name for diagnostics. Non-fabric calls return opNone.
func classifyCall(info *types.Info, call *ast.CallExpr) (opClass, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return opNone, ""
	}
	cls, ok := nodeMethodClass[sel.Sel.Name]
	if !ok {
		return opNone, ""
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return opNone, ""
	}
	if !isFabricType(s.Recv(), "Node") {
		return opNone, ""
	}
	return cls, sel.Sel.Name
}

// isRetireCall recognizes quiescence grace-period retirement: a method
// named Retire on a type from a quiescence package, taking the reclaim
// callback closure.
func isRetireCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Retire" {
		return false
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return false
	}
	n := namedType(s.Recv())
	return n != nil && n.Obj().Pkg() != nil &&
		strings.HasSuffix(n.Obj().Pkg().Path(), "/quiescence")
}

// isFreeCall recognizes an immediate arena release: a method named Free
// whose single argument is a fabric.GPtr (alloc.Arena.Free and the
// quiescence Allocator interface both match). The offset it is given is
// dead the moment the call returns.
func isFreeCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Free" || len(call.Args) != 1 {
		return false
	}
	if s := info.Selections[sel]; s == nil || s.Kind() != types.MethodVal {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	return ok && isGPtr(tv.Type)
}
