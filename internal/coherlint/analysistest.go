package coherlint

import (
	"fmt"
	"regexp"
	"strings"
)

// wantSpec is one expected diagnostic: a regexp that must match a
// diagnostic message reported on its line.
type wantSpec struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRx = regexp.MustCompile("// want((?: +(?:`[^`]*`|\"[^\"]*\"))+)")
var wantArgRx = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")

// collectWants extracts the "// want `regexp`" expectations from a
// loaded package's comments, in the style of x/tools' analysistest: the
// expectation applies to the line the comment sits on, and a line may
// carry several.
func collectWants(pkgs []*Package) ([]*wantSpec, error) {
	var wants []*wantSpec
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRx.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, arg := range wantArgRx.FindAllString(m[1], -1) {
						re, err := regexp.Compile(arg[1 : len(arg)-1])
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
						}
						wants = append(wants, &wantSpec{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants, nil
}

// checkCorpus compares diagnostics against expectations and returns a
// list of mismatches (unexpected diagnostics and unmatched wants).
func checkCorpus(diags []Diagnostic, wants []*wantSpec) []string {
	var problems []string
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, "unexpected diagnostic: "+d.String())
		}
	}
	for _, w := range wants {
		if !w.hit {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matched want %q",
				shortPath(w.file), w.line, w.re.String()))
		}
	}
	return problems
}

func shortPath(p string) string {
	if i := strings.LastIndex(p, "/testdata/"); i >= 0 {
		return p[i+1:]
	}
	return p
}
