package coherlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// annotation is the parsed //flac: contract of one arena-layout type.
type annotation struct {
	Shared      bool   // //flac:shared: bytes of this type live in the arena
	PublishedBy string // //flac:published-by=<atomic>: the publishing atomic
	Pos         token.Pos
}

// badDirective is a //flac: or //flacvet: comment the parser rejected;
// directives are contract, so typos must be loud, not silently inert.
type badDirective struct {
	Pos token.Pos
	Msg string
}

// annotations holds a package's parsed type annotations.
type annotations struct {
	byType map[types.Object]*annotation
	bad    []badDirective
}

// parseAnnotations walks a package's type declarations and collects
// //flac: directives from their doc comments, plus every malformed or
// misplaced directive in the package.
func parseAnnotations(pass *Pass) *annotations {
	an := &annotations{byType: map[types.Object]*annotation{}}
	attached := map[*ast.Comment]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[ts.Name]
				if obj == nil {
					continue
				}
				for _, doc := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
					if doc == nil {
						continue
					}
					for _, c := range doc.List {
						if !strings.HasPrefix(c.Text, "//flac:") {
							continue
						}
						attached[c] = true
						an.applyDirective(obj, c)
					}
				}
			}
		}
	}
	// Any //flac: directive not attached to a type declaration does
	// nothing — which is never what its author intended.
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, "//flac:") && !attached[c] {
					an.bad = append(an.bad, badDirective{
						Pos: c.Pos(),
						Msg: "//flac: directive is not attached to a type declaration (it has no effect here)",
					})
				}
				if rest, ok := strings.CutPrefix(c.Text, "//flacvet:"); ok &&
					!strings.HasPrefix(rest, "ignore") {
					an.bad = append(an.bad, badDirective{
						Pos: c.Pos(),
						Msg: "unknown //flacvet: directive (only //flacvet:ignore exists)",
					})
				}
			}
		}
	}
	return an
}

// applyDirective parses one attached //flac: comment into obj's
// annotation, recording malformed spellings.
func (an *annotations) applyDirective(obj types.Object, c *ast.Comment) {
	a := an.byType[obj]
	if a == nil {
		a = &annotation{Pos: c.Pos()}
		an.byType[obj] = a
	}
	body := strings.TrimPrefix(c.Text, "//flac:")
	// Directives take no prose on the same line apart from the value.
	switch {
	case body == "shared":
		a.Shared = true
	case strings.HasPrefix(body, "published-by="):
		name := strings.TrimPrefix(body, "published-by=")
		if !atomicNames[name] {
			an.bad = append(an.bad, badDirective{
				Pos: c.Pos(),
				Msg: "//flac:published-by must name a fabric atomic (AtomicStore64, CAS64, Swap64 or Add64), not " + strconvQuote(name),
			})
			return
		}
		a.PublishedBy = name
	default:
		an.bad = append(an.bad, badDirective{
			Pos: c.Pos(),
			Msg: "unknown //flac: directive " + strconvQuote(body) + " (want //flac:shared or //flac:published-by=<atomic>)",
		})
	}
}

func strconvQuote(s string) string { return "\"" + s + "\"" }
