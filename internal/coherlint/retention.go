package coherlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RetentionAnalyzer enforces rule 4 of the coherence contract: an arena
// offset handed to a quiescence Retire callback (or released directly
// with an allocator Free) may be handed to another writer the moment the
// grace period expires. Any later use of that offset on this path —
// directly, or captured by a closure that will run after the grace
// period — is a use-after-free against the arena. The quiescence layer
// cannot catch this at runtime (the memory is still readable, just no
// longer yours), which is what makes the static rule load-bearing.
var RetentionAnalyzer = &Analyzer{
	Name: "grace-period-retention",
	Doc:  "arena offset used (or captured) after being retired to a grace period or freed",
	Run:  runRetention,
}

// retInfo records where and how an offset left this path's ownership.
type retInfo struct {
	pos token.Pos
	how string // "Retire" or "Free"
}

// retState maps retired/freed fabric.GPtr variables to their release.
type retState struct {
	retired map[types.Object]retInfo
}

func newRetState() *retState { return &retState{retired: map[types.Object]retInfo{}} }

func (s *retState) Clone() flowState {
	c := newRetState()
	for k, v := range s.retired {
		c.retired[k] = v
	}
	return c
}

func (s *retState) MergeFrom(other flowState) {
	for k, v := range other.(*retState).retired {
		if _, ok := s.retired[k]; !ok {
			s.retired[k] = v
		}
	}
}

func (s *retState) ReplaceWith(other flowState) {
	s.retired = map[types.Object]retInfo{}
	s.MergeFrom(other)
}

type retHooks struct {
	pass *Pass
	w    *flowWalker
}

func (h *retHooks) Call(st flowState, call *ast.CallExpr) {
	s := st.(*retState)
	info := h.pass.TypesInfo
	switch {
	case isRetireCall(info, call):
		// Every free fabric.GPtr variable the reclaim callback captures
		// is dead to the enclosing function from here on: the callback
		// will free it after the grace period, and "after the grace
		// period" can be any moment from now.
		if len(call.Args) == 1 {
			if fl, ok := call.Args[0].(*ast.FuncLit); ok {
				for obj := range freeGPtrVars(info, fl) {
					s.retired[obj] = retInfo{pos: call.Pos(), how: "Retire"}
				}
			}
		}
	case isFreeCall(info, call):
		if obj := rootVar(info, call.Args[0]); obj != nil && isGPtr(obj.Type()) {
			s.retired[obj] = retInfo{pos: call.Pos(), how: "Free"}
		}
	}
}

func (h *retHooks) Assign(st flowState, id *ast.Ident) {
	// A fresh value overwrites the retired offset; the name is live again.
	s := st.(*retState)
	if obj := h.pass.TypesInfo.Defs[id]; obj != nil {
		delete(s.retired, obj)
	}
	if obj := h.pass.TypesInfo.Uses[id]; obj != nil {
		delete(s.retired, obj)
	}
}

func (h *retHooks) Use(st flowState, id *ast.Ident) {
	s := st.(*retState)
	obj := h.pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	if ri, ok := s.retired[obj]; ok {
		h.pass.Reportf(id.Pos(),
			"arena offset %s is used after being handed to %s at %s; the grace period may already have recycled its memory",
			id.Name, ri.how, h.pass.Fset.Position(ri.pos))
		delete(s.retired, obj) // one report per variable per path
	}
}

func (h *retHooks) FuncLit(st flowState, fl *ast.FuncLit) {
	// A closure created after the retire point captures the offset and
	// may run arbitrarily later: analyze its body under the current
	// path's retired set (its own retires must not leak back out, so the
	// body runs on a clone).
	h.w.walkBody(st.Clone(), fl.Body)
}

func runRetention(pass *Pass) error {
	hooks := &retHooks{pass: pass}
	hooks.w = &flowWalker{hooks: hooks}
	forEachFuncBody(pass, func(decl *ast.FuncDecl) {
		hooks.w.walkBody(newRetState(), decl.Body)
	})
	return nil
}

// freeGPtrVars returns the fabric.GPtr variables fl's body references
// that are declared OUTSIDE fl — the offsets the closure captures.
func freeGPtrVars(info *types.Info, fl *ast.FuncLit) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || !isGPtr(obj.Type()) {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if obj.Pos() < fl.Pos() || obj.Pos() > fl.End() {
			out[obj] = true
		}
		return true
	})
	return out
}

// rootVar unwraps parens and conversions around an expression and
// returns the variable identifier at its core, if any.
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			// Conversion like fabric.GPtr(off): one argument, type operand.
			if len(x.Args) == 1 {
				if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
					e = x.Args[0]
					continue
				}
			}
			return nil
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			return v
		default:
			return nil
		}
	}
}
