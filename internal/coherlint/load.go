package coherlint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// Package is one type-checked target package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matching patterns (relative to dir, the
// module root) and returns them ready for analysis. It shells out to the
// go command for package discovery and dependency export data — the same
// compiler-produced export files `go build` uses — then parses and
// type-checks only the target packages from source, so analyzers see
// full syntax with comments while dependencies stay cheap. Test files
// are not loaded: the contract is enforced where arena code ships.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	byPath := map[string]*listedPkg{}
	var targets []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := &listedPkg{}
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		byPath[lp.ImportPath] = lp
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}
	for _, lp := range targets {
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	// Dependency types come from export data; one importer instance
	// caches packages across all targets.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		lp := byPath[path]
		if lp == nil || lp.Export == "" {
			return nil, fmt.Errorf("coherlint: no export data for %q", path)
		}
		return os.Open(lp.Export)
	})
	sizes := types.SizesFor("gc", runtime.GOARCH)

	var pkgs []*Package
	for _, lp := range targets {
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range append(append([]string{}, lp.GoFiles...), lp.CgoFiles...) {
			af, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %v", name, err)
			}
			files = append(files, af)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp, Sizes: sizes}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   lp.ImportPath,
			Dir:       lp.Dir,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}
