package coherlint

import (
	"strings"
	"testing"
)

// TestCorpus loads each planted-violation package under testdata/src
// (invisible to ./... wildcards, so the repo stays buildable and
// flacvet-clean) and checks the full analyzer suite reports exactly the
// diagnostics marked by // want comments — nothing more, nothing less.
func TestCorpus(t *testing.T) {
	for _, name := range []string{"escape", "publish", "invalidate", "retention"} {
		t.Run(name, func(t *testing.T) {
			pkgs, err := Load(".", "./testdata/src/"+name)
			if err != nil {
				t.Fatalf("loading corpus package: %v", err)
			}
			diags, err := Run(All(), pkgs)
			if err != nil {
				t.Fatalf("running analyzers: %v", err)
			}
			wants, err := collectWants(pkgs)
			if err != nil {
				t.Fatal(err)
			}
			if len(wants) == 0 {
				t.Fatal("corpus package has no // want expectations; the test would vacuously pass")
			}
			for _, problem := range checkCorpus(diags, wants) {
				t.Error(problem)
			}
		})
	}
}

// TestRepoIsClean runs the whole suite over the repository proper — the
// same gate CI's flacvet job applies. Production arena code must carry
// zero coherence-contract diagnostics (testdata is excluded by ./...).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole repository; skipped in -short")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	diags, err := Run(All(), pkgs)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("coherence-contract violation in production code: %s", d)
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("all")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(all) = %v analyzers, err %v", len(all), err)
	}
	one, err := ByName("read-without-invalidate")
	if err != nil || len(one) != 1 || one[0] != InvalidateAnalyzer {
		t.Fatalf("ByName(read-without-invalidate) = %v, err %v", one, err)
	}
	if _, err := ByName("no-such-rule"); err == nil || !strings.Contains(err.Error(), "no-such-rule") {
		t.Fatalf("ByName(no-such-rule) error = %v, want mention of the bad name", err)
	}
}
