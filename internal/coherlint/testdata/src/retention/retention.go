// Package retention is flacvet corpus: planted violations of rule 4
// (grace-period-retention) plus the correct publish-then-retire idiom.
package retention

import (
	"flacos/internal/fabric"
	"flacos/internal/flacdk/quiescence"
)

// useAfterRetire publishes a new version, retires the old block — and
// then, the planted bug, keeps dereferencing the retired offset. After
// the grace period that memory belongs to someone else.
func useAfterRetire(n *fabric.Node, p *quiescence.Participant, a quiescence.Allocator, headG fabric.GPtr, data []byte) uint64 {
	v := a.Alloc(uint64(len(data)))
	n.Write(v, data)
	n.WriteBackRange(v, uint64(len(data)))
	old := fabric.GPtr(n.Swap64(headG, uint64(v)))
	p.Retire(func() { a.Free(old) })
	return n.AtomicLoad64(old) // want `used after being handed to Retire`
}

// captureAfterRetire leaks the retired offset into a closure that will
// run arbitrarily later — after the grace period has recycled it.
func captureAfterRetire(n *fabric.Node, p *quiescence.Participant, a quiescence.Allocator, old fabric.GPtr) func() uint64 {
	p.Retire(func() { a.Free(old) })
	return func() uint64 {
		return n.AtomicLoad64(old) // want `used after being handed to Retire`
	}
}

// useAfterFree skips the grace period entirely and still loses: the
// allocator may already have reissued the block.
func useAfterFree(n *fabric.Node, a quiescence.Allocator, g fabric.GPtr) {
	a.Free(g)
	n.AtomicStore64(g, 1) // want `used after being handed to Free`
}

// retireGood is the contract idiom: after Retire the old offset is
// never touched again on this path. No diagnostic.
func retireGood(n *fabric.Node, p *quiescence.Participant, a quiescence.Allocator, headG fabric.GPtr, data []byte) fabric.GPtr {
	v := a.Alloc(uint64(len(data)))
	n.Write(v, data)
	n.WriteBackRange(v, uint64(len(data)))
	old := fabric.GPtr(n.Swap64(headG, uint64(v)))
	p.Retire(func() { a.Free(old) })
	return v
}

// reassignAfterFree overwrites the freed name with a fresh block before
// using it; the name is live again. No diagnostic.
func reassignAfterFree(n *fabric.Node, a quiescence.Allocator, g fabric.GPtr) uint64 {
	a.Free(g)
	g = a.Alloc(8)
	return n.AtomicLoad64(g)
}
