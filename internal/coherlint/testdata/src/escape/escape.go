// Package escape is flacvet corpus: planted violations of rule 1
// (arena-pointer-escape) plus clean idioms that must stay silent.
package escape

import (
	"unsafe"

	"flacos/internal/fabric"
)

// header is a correct flat arena layout: fixed words and bytes only.
//
//flac:shared
//flac:published-by=AtomicStore64
type header struct {
	Seq  uint64
	Len  uint32
	_    uint32
	Body [48]byte
}

// offsets is fine too: GPtr and uintptr are plain words in the arena.
//
//flac:shared
type offsets struct {
	Next fabric.GPtr
	Raw  uintptr
	Tbl  [8]fabric.GPtr
}

// badEntry mixes heap references into an arena layout; every
// pointer-bearing field is a diagnostic.
//
//flac:shared
type badEntry struct {
	Seq  uint64
	Name string            // want `carries a Go pointer`
	Next *badEntry         // want `carries a Go pointer`
	Vals []uint64          // want `carries a Go pointer`
	Meta map[string]uint64 // want `carries a Go pointer`
	Hook func()            // want `carries a Go pointer`
	Sub  inner             // want `carries a Go pointer`
}

// inner is not itself annotated, but it is embedded in badEntry, so its
// pointer poisons the layout transitively.
type inner struct{ P *uint64 }

// storePointer launders a stack address through unsafe and writes it
// into global memory, where it means nothing to any other node.
func storePointer(n *fabric.Node, g fabric.GPtr) {
	x := uint64(42)
	n.Store64(g, uint64(uintptr(unsafe.Pointer(&x)))) // want `Go pointer escapes into the arena`
}

// storeLaundered does the same through a local variable; the taint must
// survive the assignment.
func storeLaundered(n *fabric.Node, g fabric.GPtr) {
	x := uint64(42)
	w := uint64(uintptr(unsafe.Pointer(&x)))
	n.AtomicStore64(g, w) // want `Go pointer escapes into the arena`
}

// storeClean writes honest data and arena offsets; no diagnostic.
func storeClean(n *fabric.Node, g, other fabric.GPtr, v uint64) {
	n.Store64(g, v)
	n.Store64(g.Add(8), uint64(other))
	n.WriteBackRange(g, 16)
}

// retaint shows that overwriting a tainted variable with clean data
// clears the taint; no diagnostic.
func retaint(n *fabric.Node, g fabric.GPtr) {
	x := uint64(7)
	w := uint64(uintptr(unsafe.Pointer(&x)))
	w = x + 1
	n.Store64(g, w)
	n.WriteBackRange(g, 8)
}
