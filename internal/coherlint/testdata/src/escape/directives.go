package escape

// Malformed annotations must be diagnostics: a typo'd directive silently
// enforces nothing, which is worse than no annotation.

//flac:share // want `unknown //flac: directive`
type misspelled struct{ A uint64 }

//flac:published-by=StoreRelaxed // want `must name a fabric atomic`
type badPublisher struct{ B uint64 }

//flacvet:suppress arena-pointer-escape // want `unknown //flacvet: directive`
type badSuppress struct{ C uint64 }

func floating() uint64 {
	//flac:shared // want `not attached to a type declaration`
	v := misspelled{A: 1}
	_ = badPublisher{}
	_ = badSuppress{}
	return v.A
}
