// Package publish is flacvet corpus: planted violations of rule 2
// (publish-without-writeback) plus the correct idioms.
package publish

import "flacos/internal/fabric"

// publishSlot is the broken mirror of a ring push: payload written
// through the cache, then published with an atomic before any
// write-back — remote readers chase a tail into bytes that exist only
// in this node's cache.
func publishSlot(n *fabric.Node, slot, tail fabric.GPtr, msg []byte) {
	n.Store64(slot, uint64(len(msg)))
	n.Write(slot.Add(8), msg)
	n.AtomicStore64(tail, 1) // want `publishes while 2 plain write`
}

// publishCAS shows the same hole through a CAS publication.
func publishCAS(n *fabric.Node, head, entry fabric.GPtr, v uint64) {
	n.Store64(entry, v)
	n.CAS64(head, 0, uint64(entry)) // want `publishes while 1 plain write`
}

// publishConditionalWB only writes back on one branch; the fallthrough
// path still publishes cache-resident data.
func publishConditionalWB(n *fabric.Node, head, entry fabric.GPtr, v uint64, sync bool) {
	n.Store64(entry, v)
	if sync {
		n.WriteBackRange(entry, 8)
	}
	n.Swap64(head, uint64(entry)) // want `still cache-resident`
}

// publishGood is the contract idiom: write, write back, publish.
func publishGood(n *fabric.Node, head, entry fabric.GPtr, v uint64) {
	n.Store64(entry, v)
	n.WriteBackRange(entry, 8)
	n.AtomicStore64(head, uint64(entry))
}

// publishGoodFlush: a flush both writes back and drops the lines, so it
// discharges the pending writes too.
func publishGoodFlush(n *fabric.Node, head, entry fabric.GPtr, v uint64) {
	n.Store64(entry, v)
	n.FlushRange(entry, 8)
	n.CAS64(head, 0, uint64(entry))
}

// publishGoodBothBranches writes back on every path before publishing.
func publishGoodBothBranches(n *fabric.Node, head, entry fabric.GPtr, v uint64, wide bool) {
	n.Store64(entry, v)
	if wide {
		n.WriteBackAll()
	} else {
		n.WriteBackRange(entry, 8)
	}
	n.AtomicStore64(head, uint64(entry))
}

// atomicOnly publishes data written solely through home-memory atomics;
// nothing is cache-resident, no diagnostic.
func atomicOnly(n *fabric.Node, head, entry fabric.GPtr, v uint64) {
	n.AtomicStore64(entry, v)
	n.AtomicStore64(head, uint64(entry))
}
