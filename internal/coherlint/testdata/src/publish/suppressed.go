package publish

import "flacos/internal/fabric"

// suppressed shows the escape hatch: an accepted violation annotated
// with //flacvet:ignore and a reason produces no diagnostic. The corpus
// test would fail on any unexpected diagnostic here, so this also
// proves suppression works end to end.
func suppressed(n *fabric.Node, head, entry fabric.GPtr, v uint64) {
	n.Store64(entry, v)
	//flacvet:ignore publish-without-writeback corpus: proves the suppression directive works
	n.AtomicStore64(head, uint64(entry))
}
