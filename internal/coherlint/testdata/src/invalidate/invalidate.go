// Package invalidate is flacvet corpus: planted violations of rule 3
// (read-without-invalidate), including the unconditional-skip mirror of
// the torture harness's SetBrokenSkipPopInvalidate bug, plus the
// correct consume idioms.
package invalidate

import "flacos/internal/fabric"

// ring mirrors ds.SPSCRing's layout so the corpus can replay its
// consume path with the planted bug hard-wired on.
type ring struct {
	headG, tailG, slots fabric.GPtr
	slotSize, capacity  uint64
}

func (r *ring) slotG(pos uint64) fabric.GPtr {
	return r.slots.Add((pos & (r.capacity - 1)) * r.slotSize)
}

// brokenPop is SPSCRing.TryPop with the torture harness's
// ring-invalidate bug (SetBrokenSkipPopInvalidate) made unconditional:
// the consumer observes the producer's tail publication but decodes the
// slot through whatever stale lines its cache still holds.
func (r *ring) brokenPop(n *fabric.Node, buf []byte) (int, bool) {
	h := n.AtomicLoad64(r.headG)
	if h == n.AtomicLoad64(r.tailG) {
		return 0, false
	}
	s := r.slotG(h)
	ln := n.Load64(s) // want `no dominating InvalidateRange`
	n.Read(s.Add(8), buf[:ln])
	n.AtomicStore64(r.headG, h+1)
	return int(ln), true
}

// conditionalPop invalidates on only one branch — exactly the shape the
// torture toggle gives the real ring; the skipping path is the bug.
func (r *ring) conditionalPop(n *fabric.Node, buf []byte, broken bool) (int, bool) {
	h := n.AtomicLoad64(r.headG)
	if h == n.AtomicLoad64(r.tailG) {
		return 0, false
	}
	s := r.slotG(h)
	if !broken {
		n.InvalidateRange(s, r.slotSize)
	}
	ln := n.Load64(s) // want `no dominating InvalidateRange`
	n.Read(s.Add(8), buf[:ln])
	n.AtomicStore64(r.headG, h+1)
	return int(ln), true
}

// goodPop is the contract idiom: acquire, invalidate, then decode.
func (r *ring) goodPop(n *fabric.Node, buf []byte) (int, bool) {
	h := n.AtomicLoad64(r.headG)
	if h == n.AtomicLoad64(r.tailG) {
		return 0, false
	}
	s := r.slotG(h)
	n.InvalidateRange(s, r.slotSize)
	ln := n.Load64(s)
	n.Read(s.Add(8), buf[:ln])
	n.AtomicStore64(r.headG, h+1)
	return int(ln), true
}

// goodPopBothBranches invalidates on every path before decoding.
func (r *ring) goodPopBothBranches(n *fabric.Node, buf []byte, wide bool) (int, bool) {
	h := n.AtomicLoad64(r.headG)
	if h == n.AtomicLoad64(r.tailG) {
		return 0, false
	}
	s := r.slotG(h)
	if wide {
		n.InvalidateAll()
	} else {
		n.InvalidateRange(s, r.slotSize)
	}
	ln := n.Load64(s)
	n.AtomicStore64(r.headG, h+1)
	return int(ln), true
}

// readVersioned is the VersionedCell read idiom: atomic acquire of the
// current version pointer, invalidate, plain read. No diagnostic.
func readVersioned(n *fabric.Node, headG fabric.GPtr, buf []byte) {
	cur := fabric.GPtr(n.AtomicLoad64(headG))
	n.InvalidateRange(cur, uint64(len(buf)))
	n.Read(cur, buf)
}

// plainOnly never acquires through a fabric atomic, so its cached reads
// are private data and need no invalidate. No diagnostic.
func plainOnly(n *fabric.Node, g fabric.GPtr) uint64 {
	n.Store64(g, 7)
	return n.Load64(g)
}
