// Package coherlint statically enforces the coherence discipline every
// arena subsystem hand-follows on the non-coherent fabric. The rules it
// mechanizes are the unwritten contract of flacdk/ds, redis.RackStore,
// the trace rings, the fs journal and memsys:
//
//  1. arena-pointer-escape: never store a Go pointer (or anything
//     containing one) into the offset-addressed global arena. Another
//     node — or a restarted incarnation of this one — cannot interpret a
//     host pointer. Arena-resident layouts are declared with a
//     "//flac:shared" annotation and must be flat (no pointers, slices,
//     maps, strings, channels, funcs or interfaces anywhere in them).
//
//  2. publish-without-writeback: a fabric atomic store/CAS/swap is a
//     PUBLICATION — the moment another node can observe the data it
//     guards. Every plain (cached) write performed since the last
//     write-back must be pushed to home memory with WriteBackRange /
//     WriteBackAll / FlushRange / FlushAll BEFORE the publishing atomic,
//     or a remote reader can follow the pointer into bytes that only
//     exist in the writer's private cache.
//
//  3. read-without-invalidate: after a fabric atomic load (the acquire
//     of a publication), plain cached reads see whatever stale lines the
//     reader's cache happens to hold. An InvalidateRange / InvalidateAll
//     / FlushRange / FlushAll must dominate the first plain read that
//     follows an atomic load.
//
//  4. grace-period-retention: an arena offset handed to a quiescence
//     Retire (or freed directly with an allocator Free) may be reused as
//     soon as the grace period expires; using the offset afterwards —
//     directly or by capturing it in a closure that outlives the call —
//     is a use-after-free against the arena.
//
// Recognition is driven by the fabric package's API (methods on
// fabric.Node), the quiescence/alloc reclamation entry points, and two
// source annotations on arena-layout types:
//
//	//flac:shared                      the type's bytes live in the arena
//	//flac:published-by=AtomicStore64  which fabric atomic publishes it
//
// A diagnostic that is a understood-and-accepted exception (for example
// the torture harness's deliberately-broken sync paths) is suppressed
// with a "//flacvet:ignore <rule> <reason>" comment on, or immediately
// above, the offending line.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis
// surface (Analyzer, Pass, Diagnostic) so analyzers can migrate to the
// upstream driver wholesale if the dependency ever becomes available;
// the build environment here is hermetic, so the framework is
// implemented on the standard library's go/ast + go/types alone.
// cmd/flacvet is the command-line driver.
package coherlint
