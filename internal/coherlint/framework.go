package coherlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one coherence rule: a name usable in //flacvet:ignore
// comments, a one-paragraph contract, and the checking function.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported contract violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the full coherence-discipline analyzer suite in the order
// the rules are documented.
func All() []*Analyzer {
	return []*Analyzer{
		EscapeAnalyzer,
		PublishAnalyzer,
		InvalidateAnalyzer,
		RetentionAnalyzer,
	}
}

// ByName resolves a comma-separated analyzer list ("all" or empty means
// the whole suite).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" || names == "all" {
		return All(), nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics (suppressed ones removed) sorted by position.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				report: func(d Diagnostic) {
					if !ignores.suppressed(d) {
						diags = append(diags, d)
					}
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ignoreSet maps file -> line -> analyzer names suppressed on that line
// ("*" suppresses every rule).
type ignoreSet map[string]map[int][]string

// suppressed reports whether d sits on (or directly under) a matching
// //flacvet:ignore comment.
func (ig ignoreSet) suppressed(d Diagnostic) bool {
	lines := ig[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, name := range append(lines[d.Pos.Line], lines[d.Pos.Line-1]...) {
		if name == "*" || name == d.Analyzer {
			return true
		}
	}
	return false
}

// collectIgnores scans a package's comments for //flacvet:ignore
// directives. Syntax:
//
//	//flacvet:ignore <rule>[,<rule>...] [free-form reason]
//	//flacvet:ignore                     (suppresses every rule; discouraged)
//
// The directive applies to diagnostics on its own line and on the line
// immediately below it (so it can ride above the offending statement).
func collectIgnores(pkg *Package) ignoreSet {
	ig := ignoreSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//flacvet:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				names := []string{"*"}
				if fields := strings.Fields(rest); len(fields) > 0 {
					if rules := parseRuleList(fields[0]); len(rules) > 0 {
						names = rules
					}
				}
				lines := ig[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					ig[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
			}
		}
	}
	return ig
}

// parseRuleList splits "a,b,c" into known analyzer names; a token that
// is not an analyzer name means the field was free-form prose (the
// directive then suppresses everything, like a bare ignore).
func parseRuleList(s string) []string {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if !known[tok] {
			return nil
		}
		out = append(out, tok)
	}
	return out
}
