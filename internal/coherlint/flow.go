package coherlint

import "go/ast"

// flowState is the per-path abstract state an analyzer threads through a
// function body. Implementations are mutable; the walker clones at
// branch points and merges surviving paths at joins.
type flowState interface {
	Clone() flowState
	// MergeFrom folds another surviving path's state into the receiver.
	MergeFrom(flowState)
	// ReplaceWith overwrites the receiver with other's facts (used at a
	// join where every path went through some branch arm, so the
	// pre-branch state no longer describes any live path).
	ReplaceWith(flowState)
}

// flowHooks receives the walker's events in evaluation order, mutating
// the state in place.
type flowHooks interface {
	// Call fires after a call's function and arguments were visited.
	Call(st flowState, call *ast.CallExpr)
	// Assign fires for every plain identifier on an assignment's left
	// side (a kill: the name holds a new value from here on).
	Assign(st flowState, id *ast.Ident)
	// Use fires for every identifier read in an expression.
	Use(st flowState, id *ast.Ident)
	// FuncLit fires for a function literal in expression position; the
	// hook decides how to analyze the body (the walker does not descend).
	FuncLit(st flowState, fl *ast.FuncLit)
}

// flowWalker drives hooks over a function body with conservative
// branch handling: if/switch/select arms run on cloned states and merge
// at the join (arms that terminate — return, panic, break — are
// excluded); loop bodies are analyzed once and merged with the
// zero-iteration path. This is deliberately a one-pass approximation,
// not a fixpoint: the coherence idioms it checks are straight-line
// write/sync/publish and acquire/invalidate/read sequences.
type flowWalker struct {
	hooks flowHooks
}

// walkBody analyzes a function body from st.
func (w *flowWalker) walkBody(st flowState, body *ast.BlockStmt) {
	if body != nil {
		w.block(st, body.List)
	}
}

// block runs stmts in order; returns true if the path terminated.
func (w *flowWalker) block(st flowState, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if w.stmt(st, s) {
			return true
		}
	}
	return false
}

// merge joins the surviving branch states into st. Branches that
// terminated (returned, panicked, broke) contribute nothing. When there
// is no fall-through path — every live path went through some arm — st
// is replaced by the union of the survivors, so obligations satisfied
// on all arms stay satisfied; with a fall-through path (if without
// else, loop body that may not run) st itself stays a survivor. If
// nothing survives at all, the construct terminated.
func merge(st flowState, states []flowState, terminated []bool, hasFallthroughPath bool) bool {
	first := true
	for i, bs := range states {
		if terminated[i] {
			continue
		}
		if first && !hasFallthroughPath {
			st.ReplaceWith(bs)
		} else {
			st.MergeFrom(bs)
		}
		first = false
	}
	if first && !hasFallthroughPath {
		return true // every arm terminated
	}
	return false
}

func (w *flowWalker) stmt(st flowState, s ast.Stmt) (terminated bool) {
	switch n := s.(type) {
	case nil:
	case *ast.BlockStmt:
		return w.block(st, n.List)
	case *ast.ExprStmt:
		w.expr(st, n.X)
		if call, ok := n.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			w.expr(st, rhs)
		}
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				w.hooks.Assign(st, id)
			} else {
				w.expr(st, lhs) // x[i] = v, x.f = v: x and i are reads
			}
		}
	case *ast.IncDecStmt:
		w.expr(st, n.X)
		if id, ok := n.X.(*ast.Ident); ok {
			w.hooks.Assign(st, id)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(st, v)
					}
				}
			}
		}
	case *ast.IfStmt:
		w.stmt(st, n.Init)
		w.expr(st, n.Cond)
		thenSt := st.Clone()
		thenTerm := w.block(thenSt, n.Body.List)
		if n.Else != nil {
			elseSt := st.Clone()
			elseTerm := w.stmt(elseSt, n.Else)
			return merge(st, []flowState{thenSt, elseSt}, []bool{thenTerm, elseTerm}, false)
		}
		return merge(st, []flowState{thenSt}, []bool{thenTerm}, true)
	case *ast.ForStmt:
		w.stmt(st, n.Init)
		w.expr(st, n.Cond)
		bodySt := st.Clone()
		bodyTerm := w.block(bodySt, n.Body.List)
		if !bodyTerm {
			w.stmt(bodySt, n.Post)
		}
		// Zero-iteration path keeps st; one-pass body merges in. An
		// infinite loop (no cond) with a terminated body still falls
		// through here: breaks are modeled as termination, so "for {}"
		// loops that only exit via break would otherwise vanish.
		merge(st, []flowState{bodySt}, []bool{bodyTerm}, true)
	case *ast.RangeStmt:
		w.expr(st, n.X)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				w.hooks.Assign(st, id)
			}
		}
		bodySt := st.Clone()
		bodyTerm := w.block(bodySt, n.Body.List)
		merge(st, []flowState{bodySt}, []bool{bodyTerm}, true)
	case *ast.SwitchStmt:
		w.stmt(st, n.Init)
		w.expr(st, n.Tag)
		w.caseArms(st, n.Body.List)
	case *ast.TypeSwitchStmt:
		w.stmt(st, n.Init)
		w.stmt(st, n.Assign)
		w.caseArms(st, n.Body.List)
	case *ast.SelectStmt:
		w.caseArms(st, n.Body.List)
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			w.expr(st, e)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave this straight-line path. Modeling
		// them as termination drops their state from joins — see the
		// walker comment on the approximation.
		return true
	case *ast.LabeledStmt:
		return w.stmt(st, n.Stmt)
	case *ast.DeferStmt, *ast.GoStmt:
		// Arguments are evaluated now; the call itself runs later (or
		// concurrently), so its effects must not satisfy obligations on
		// this path — visit operands, skip the Call hook.
		var call *ast.CallExpr
		if d, ok := n.(*ast.DeferStmt); ok {
			call = d.Call
		} else {
			call = n.(*ast.GoStmt).Call
		}
		w.expr(st, call.Fun)
		for _, a := range call.Args {
			w.expr(st, a)
		}
	case *ast.SendStmt:
		w.expr(st, n.Chan)
		w.expr(st, n.Value)
	}
	return false
}

// caseArms analyzes switch/select clause bodies, each from a clone of
// the entry state, merging the survivors. A missing default keeps the
// entry state as a possible fall-past path.
func (w *flowWalker) caseArms(st flowState, clauses []ast.Stmt) {
	var states []flowState
	var terms []bool
	hasDefault := false
	for _, c := range clauses {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.expr(st, e)
			}
			if cc.List == nil {
				hasDefault = true
			}
			body = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				w.stmt(st, cc.Comm)
			}
			body = cc.Body
		default:
			continue
		}
		armSt := st.Clone()
		terms = append(terms, w.block(armSt, body))
		states = append(states, armSt)
	}
	merge(st, states, terms, !hasDefault)
}

// expr visits e in evaluation order, firing Use for identifier reads,
// FuncLit for closures, and Call after a call's operands.
func (w *flowWalker) expr(st flowState, e ast.Expr) {
	switch n := e.(type) {
	case nil:
	case *ast.Ident:
		w.hooks.Use(st, n)
	case *ast.FuncLit:
		w.hooks.FuncLit(st, n)
	case *ast.CallExpr:
		w.expr(st, n.Fun)
		for _, a := range n.Args {
			w.expr(st, a)
		}
		w.hooks.Call(st, n)
	case *ast.SelectorExpr:
		w.expr(st, n.X)
	case *ast.BinaryExpr:
		w.expr(st, n.X)
		w.expr(st, n.Y)
	case *ast.UnaryExpr:
		w.expr(st, n.X)
	case *ast.StarExpr:
		w.expr(st, n.X)
	case *ast.ParenExpr:
		w.expr(st, n.X)
	case *ast.IndexExpr:
		w.expr(st, n.X)
		w.expr(st, n.Index)
	case *ast.IndexListExpr:
		w.expr(st, n.X)
		for _, i := range n.Indices {
			w.expr(st, i)
		}
	case *ast.SliceExpr:
		w.expr(st, n.X)
		w.expr(st, n.Low)
		w.expr(st, n.High)
		w.expr(st, n.Max)
	case *ast.TypeAssertExpr:
		w.expr(st, n.X)
	case *ast.CompositeLit:
		for _, el := range n.Elts {
			w.expr(st, el)
		}
	case *ast.KeyValueExpr:
		w.expr(st, n.Key)
		w.expr(st, n.Value)
	}
}

// forEachFuncBody applies fn to every function declaration body in the
// package. Function literals are not visited here; analyzers reach them
// through their FuncLit hook so closure bodies run in the right context.
func forEachFuncBody(pass *Pass, fn func(decl *ast.FuncDecl)) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
