package coherlint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// EscapeAnalyzer enforces rule 1 of the coherence contract: no Go
// pointer — and nothing containing one — may enter the offset-addressed
// arena. A host pointer stored into global memory is garbage to every
// other node and to a restarted incarnation of this one, and it hides
// a Go allocation from the garbage collector's liveness reasoning the
// moment the local reference dies. Two fronts:
//
//   - layout: every type annotated //flac:shared must be flat — fixed
//     words, bytes and arrays all the way down. Pointers, slices, maps,
//     strings, channels, funcs and interfaces are rejected field by
//     field.
//
//   - dataflow: a value derived from unsafe.Pointer (or a uintptr
//     conversion of a pointer) must never reach a fabric write or
//     atomic-store argument, directly or through local assignments.
//
// It also rejects malformed //flac: and //flacvet: directives: an
// annotation with a typo silently enforces nothing, which is worse than
// no annotation.
var EscapeAnalyzer = &Analyzer{
	Name: "arena-pointer-escape",
	Doc:  "Go pointer (or pointer-bearing layout) written into the global arena",
	Run:  runEscape,
}

func runEscape(pass *Pass) error {
	an := parseAnnotations(pass)
	for _, bd := range an.bad {
		pass.Reportf(bd.Pos, "%s", bd.Msg)
	}
	for obj, a := range an.byType {
		if !a.Shared {
			continue
		}
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		checkSharedLayout(pass, tn)
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkPointerFlow(pass, fd.Body)
			}
		}
	}
	return nil
}

// checkSharedLayout verifies a //flac:shared type is flat, reporting
// each pointer-bearing field at its declaration.
func checkSharedLayout(pass *Pass, tn *types.TypeName) {
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		if why := pointerIn(tn.Type().Underlying(), nil); why != "" {
			pass.Reportf(tn.Pos(), "//flac:shared type %s is not a flat arena layout: %s", tn.Name(), why)
		}
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if why := pointerIn(f.Type(), nil); why != "" {
			pass.Reportf(f.Pos(),
				"field %s of //flac:shared type %s carries a Go pointer into the arena: %s",
				f.Name(), tn.Name(), why)
		}
	}
}

// pointerIn returns a human explanation if t contains any pointer-like
// component, or "" when t is flat. seen breaks type cycles.
func pointerIn(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.String, types.UntypedString:
			return "string headers point into the Go heap"
		case types.UnsafePointer:
			return "unsafe.Pointer is a Go pointer"
		case types.Uintptr:
			// A uintptr field is legal layout-wise (it is just a word),
			// and GPtr offsets are the sanctioned way to reference arena
			// data; the dataflow check catches pointers laundered
			// through uintptr conversions.
			return ""
		}
		return ""
	case *types.Pointer:
		return fmt.Sprintf("*%s is a Go pointer", u.Elem())
	case *types.Slice:
		return "slice headers point into the Go heap"
	case *types.Map:
		return "maps live in the Go heap"
	case *types.Chan:
		return "channels live in the Go heap"
	case *types.Signature:
		return "func values point at Go code and closures"
	case *types.Interface:
		return "interface values carry Go pointers"
	case *types.Array:
		return pointerIn(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if why := pointerIn(f.Type(), seen); why != "" {
				return fmt.Sprintf("field %s: %s", f.Name(), why)
			}
		}
		return ""
	}
	return fmt.Sprintf("%s cannot be laid out in the arena", t)
}

// checkPointerFlow walks one function body in source order tracking
// which local variables hold pointer-derived words, and reports any
// such value reaching a fabric plain-write or atomic-store argument.
// Source-order taint is a may-analysis: branches union naturally.
func checkPointerFlow(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	tainted := map[types.Object]ast.Expr{} // var -> the laundering expression
	exprTainted := func(e ast.Expr) ast.Expr {
		var found ast.Expr
		ast.Inspect(e, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			switch x := n.(type) {
			case *ast.Ident:
				if obj := info.Uses[x]; obj != nil {
					if src, ok := tainted[obj]; ok {
						found = src
					}
				}
			case *ast.CallExpr:
				if isPointerLaundering(info, x) {
					found = x
				}
			}
			return true
		})
		return found
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(x.Rhs) {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if src := exprTainted(x.Rhs[i]); src != nil {
					tainted[obj] = src
				} else {
					delete(tainted, obj)
				}
			}
		case *ast.CallExpr:
			cls, name := classifyCall(info, x)
			if cls != opPlainWrite && cls != opAtomicPub && cls != opAtomicAdd {
				return true
			}
			// Arg 0 is the destination GPtr; everything after is payload.
			for _, a := range x.Args[1:] {
				if src := exprTainted(a); src != nil {
					pass.Reportf(a.Pos(),
						"Go pointer escapes into the arena: argument of fabric %s derives from the unsafe conversion at %s; no other node (nor a restarted this-node) can interpret a host pointer",
						name, pass.Fset.Position(src.Pos()))
					break
				}
			}
		}
		return true
	})
}

// isPointerLaundering recognizes the conversions that turn a Go pointer
// into a storable word: unsafe.Pointer(p) and uintptr(p)/uint64-of-
// pointer chains.
func isPointerLaundering(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	dst, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || (dst.Kind() != types.Uintptr && dst.Kind() != types.UnsafePointer) {
		return false
	}
	argT := info.Types[call.Args[0]].Type
	if argT == nil {
		return false
	}
	switch u := argT.Underlying().(type) {
	case *types.Pointer:
		return true
	case *types.Basic:
		// uintptr(someUintptr) is innocent arithmetic; only a chain that
		// started from a real pointer taints, and the taint walker sees
		// that chain's inner conversion directly.
		return u.Kind() == types.UnsafePointer
	}
	return false
}
