package coherlint

import (
	"go/ast"
	"go/token"
)

// PublishAnalyzer enforces rule 2 of the coherence contract: a fabric
// atomic store/CAS/swap publishes data to the rack, so every plain
// (cached) write since the last write-back must have been pushed to home
// memory first. A publication that races ahead of its payload hands
// remote readers a pointer into bytes that exist only in the writer's
// private cache — the exact torn-publish class the torture harness's
// dropped-write-back sweeps hunt probabilistically; here it is a build
// failure.
var PublishAnalyzer = &Analyzer{
	Name: "publish-without-writeback",
	Doc:  "fabric atomic publication with cache-resident plain writes not yet written back",
	Run:  runPublish,
}

// pubState tracks the plain writes still cache-resident on this path.
type pubState struct {
	pending []pendingWrite
}

type pendingWrite struct {
	pos  token.Pos
	name string
}

func (s *pubState) Clone() flowState {
	return &pubState{pending: append([]pendingWrite(nil), s.pending...)}
}

func (s *pubState) MergeFrom(other flowState) {
	o := other.(*pubState)
	seen := map[token.Pos]bool{}
	for _, w := range s.pending {
		seen[w.pos] = true
	}
	for _, w := range o.pending {
		if !seen[w.pos] {
			s.pending = append(s.pending, w)
		}
	}
}

func (s *pubState) ReplaceWith(other flowState) {
	s.pending = append(s.pending[:0], other.(*pubState).pending...)
}

type pubHooks struct {
	pass *Pass
	w    *flowWalker
}

func (h *pubHooks) Call(st flowState, call *ast.CallExpr) {
	s := st.(*pubState)
	switch cls, name := classifyCall(h.pass.TypesInfo, call); cls {
	case opPlainWrite:
		s.pending = append(s.pending, pendingWrite{pos: call.Pos(), name: name})
	case opWriteBack, opFlush:
		// The fabric write-back APIs are range- or whole-cache-scoped;
		// range tracking is beyond this analyzer, so any write-back
		// discharges the pending set. The contract's idiom — write the
		// region, write the region back, publish — satisfies this
		// trivially; code that writes region A, writes back only region
		// B and publishes A gets past the linter but not the torture
		// sweeps, which stay in CI for exactly that reason.
		s.pending = nil
	case opAtomicPub:
		if len(s.pending) > 0 {
			first := s.pending[0]
			h.pass.Reportf(call.Pos(),
				"fabric atomic %s publishes while %d plain write(s) since the last write-back are still cache-resident (first: %s at %s); call WriteBackRange/FlushRange before the publishing atomic",
				name, len(s.pending), first.name, h.pass.Fset.Position(first.pos))
			s.pending = nil // one report per unsynchronized window
		}
	}
}

func (h *pubHooks) Assign(st flowState, id *ast.Ident) {}
func (h *pubHooks) Use(st flowState, id *ast.Ident)    {}

func (h *pubHooks) FuncLit(st flowState, fl *ast.FuncLit) {
	// A closure runs in its own context later; analyze its body from a
	// clean slate rather than crediting or charging this path.
	h.w.walkBody(&pubState{}, fl.Body)
}

func runPublish(pass *Pass) error {
	hooks := &pubHooks{pass: pass}
	hooks.w = &flowWalker{hooks: hooks}
	forEachFuncBody(pass, func(decl *ast.FuncDecl) {
		hooks.w.walkBody(&pubState{}, decl.Body)
	})
	return nil
}
