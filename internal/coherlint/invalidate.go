package coherlint

import (
	"go/ast"
	"go/token"
)

// InvalidateAnalyzer enforces rule 3 of the coherence contract: after a
// fabric atomic load — the acquire through which another node's
// publication becomes visible — plain cached reads must be preceded by
// an invalidate, or they decode whatever stale lines this node's cache
// still holds from an earlier residency. This is the exact bug the
// torture harness plants with SetBrokenSkipPopInvalidate; the analyzer
// turns it from a probabilistic sweep catch into a diagnostic.
var InvalidateAnalyzer = &Analyzer{
	Name: "read-without-invalidate",
	Doc:  "plain cached read after a fabric atomic load with no dominating invalidate",
	Run:  runInvalidate,
}

// invState tracks whether some path reaching this point performed a
// fabric atomic load with no invalidate since (the cache may hold stale
// lines for whatever region that acquire published).
type invState struct {
	exposed    bool
	acquirePos token.Pos // the atomic load that opened the window
}

func (s *invState) Clone() flowState { c := *s; return &c }

func (s *invState) MergeFrom(other flowState) {
	if o := other.(*invState); o.exposed {
		s.exposed = true
		s.acquirePos = o.acquirePos
	}
}

func (s *invState) ReplaceWith(other flowState) { *s = *other.(*invState) }

type invHooks struct {
	pass *Pass
	w    *flowWalker
}

func (h *invHooks) Call(st flowState, call *ast.CallExpr) {
	s := st.(*invState)
	switch cls, name := classifyCall(h.pass.TypesInfo, call); cls {
	case opAtomicLoad:
		s.exposed = true
		s.acquirePos = call.Pos()
	case opInvalidate, opFlush:
		s.exposed = false
	case opPlainRead:
		if s.exposed {
			h.pass.Reportf(call.Pos(),
				"plain %s decodes cached bytes after the fabric atomic load at %s with no dominating InvalidateRange/FlushRange; a stale line from an earlier residency may be read",
				name, h.pass.Fset.Position(s.acquirePos))
			s.exposed = false // one report per unprotected window
		}
	}
}

func (h *invHooks) Assign(st flowState, id *ast.Ident) {}
func (h *invHooks) Use(st flowState, id *ast.Ident)    {}

func (h *invHooks) FuncLit(st flowState, fl *ast.FuncLit) {
	h.w.walkBody(&invState{}, fl.Body)
}

func runInvalidate(pass *Pass) error {
	hooks := &invHooks{pass: pass}
	hooks.w = &flowWalker{hooks: hooks}
	forEachFuncBody(pass, func(decl *ast.FuncDecl) {
		hooks.w.walkBody(&invState{}, decl.Body)
	})
	return nil
}
