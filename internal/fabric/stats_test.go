package fabric

import (
	"sync/atomic"
	"testing"
)

func statsFabric(lat LatencyModel) *Fabric {
	return New(Config{GlobalSize: 1 << 20, Nodes: 2, CacheCapacityLines: -1, Latency: lat})
}

func TestStatsDelta(t *testing.T) {
	f := statsFabric(DefaultLatency())
	n := f.Node(0)
	g := f.Reserve(4*LineSize, LineSize)

	before := n.Stats()
	n.Load64(g)                 // miss
	n.Load64(g)                 // hit
	n.Store64(g.Add(8), 7)      // hit (line cached)
	n.Add64(g.Add(LineSize), 1) // atomic
	n.Fence()
	after := n.Stats()

	d := after.Delta(before)
	if d.Loads != 2 || d.Stores != 1 || d.Atomics != 1 || d.Fences != 1 {
		t.Errorf("delta loads=%d stores=%d atomics=%d fences=%d, want 2/1/1/1",
			d.Loads, d.Stores, d.Atomics, d.Fences)
	}
	if d.Misses != 1 || d.Hits != 2 {
		t.Errorf("delta misses=%d hits=%d, want 1/2", d.Misses, d.Hits)
	}
	if d.VirtualNS == 0 {
		t.Error("delta accrued no virtual time under an accounting model")
	}
	// A second delta against the later snapshot must be empty.
	if z := after.Delta(after); z != (NodeStatsSnapshot{}) {
		t.Errorf("self-delta not zero: %+v", z)
	}
}

func TestStallsCountOnlyInSpinMode(t *testing.T) {
	lat := DefaultLatency()
	lat.Mode = LatencySpin
	lat.LocalNS, lat.GlobalNS, lat.HopNS, lat.AtomicNS = 1, 1, 0, 1 // don't waste wall time
	f := statsFabric(lat)
	n := f.Node(0)
	g := f.Reserve(LineSize, LineSize)
	n.Load64(g)
	if s := n.Stats().Stalls; s == 0 {
		t.Error("spin mode charged an access but counted no stalls")
	}

	fa := statsFabric(DefaultLatency()) // accounting only
	na := fa.Node(0)
	na.Load64(fa.Reserve(LineSize, LineSize))
	if s := na.Stats().Stalls; s != 0 {
		t.Errorf("accounting mode counted %d stalls, want 0 (nothing waits)", s)
	}
}

func TestFaultsInjectedCountsDroppedWriteBacks(t *testing.T) {
	f := statsFabric(LatencyModel{})
	n := f.Node(0)
	g := f.Reserve(LineSize, LineSize)
	f.Faults().SetDropWriteBackRate(1_000_000) // drop everything
	n.Store64(g, 42)
	n.WriteBackRange(g, LineSize)
	f.Faults().SetDropWriteBackRate(0)
	if got := n.Stats().FaultsInjected; got != 1 {
		t.Errorf("FaultsInjected=%d after one dropped write-back, want 1", got)
	}
}

func TestOpHookFiresOnMissWriteBackFence(t *testing.T) {
	f := statsFabric(LatencyModel{})
	n := f.Node(0)
	g := f.Reserve(4*LineSize, LineSize)

	var miss, wbRanged, wbLines, fence atomic.Uint64
	n.SetOpHook(func(k OpKind, arg0, arg1 uint64) {
		switch k {
		case OpMiss:
			miss.Add(1)
		case OpWriteBackRange:
			wbRanged.Add(1)
			wbLines.Add(arg1)
			if first := g.Line(); arg0 != first {
				t.Errorf("ranged write-back arg0=%d, want first line %d", arg0, first)
			}
		case OpFence:
			fence.Add(1)
		}
	})
	n.Load64(g)                   // miss
	n.Load64(g)                   // hit: no event
	n.Store64(g, 1)               // hit on the cached line
	n.Store64(g.Add(LineSize), 2) // second miss: dirties a fresh line
	n.WriteBackRange(g, 2*LineSize) // ONE ranged event covering two lines
	n.WriteBackRange(g, 2*LineSize) // all clean now: no event at all
	n.Fence()
	n.Add64(g.Add(2*LineSize), 1) // atomics bypass the cache: no events
	if miss.Load() != 2 || wbRanged.Load() != 1 || wbLines.Load() != 2 || fence.Load() != 1 {
		t.Errorf("hook counts miss=%d ranged-wb=%d wb-lines=%d fence=%d, want 2/1/2/1",
			miss.Load(), wbRanged.Load(), wbLines.Load(), fence.Load())
	}

	n.SetOpHook(nil)
	n.Load64(g.Add(2 * LineSize)) // miss with hook removed
	if miss.Load() != 2 {
		t.Error("hook fired after removal")
	}
}

// TestOpHookEvictionStaysPerLine pins the one cache-path event that is
// still per-line: a capacity eviction's dirty-victim write-back happens on
// the access path, one line at a time, and keeps the legacy OpWriteBack
// kind so observers can tell evictions from explicit maintenance bursts.
func TestOpHookEvictionStaysPerLine(t *testing.T) {
	f := New(Config{GlobalSize: 1 << 20, Nodes: 1, CacheCapacityLines: 2})
	n := f.Node(0)
	g := f.Reserve(8*LineSize, LineSize)

	var evict atomic.Uint64
	n.SetOpHook(func(k OpKind, arg0, arg1 uint64) {
		if k == OpWriteBack {
			if arg1 != 1 {
				t.Errorf("eviction write-back arg1=%d, want 1", arg1)
			}
			evict.Add(1)
		}
	})
	for i := uint64(0); i < 6; i++ { // dirty 6 lines through a 2-line cache
		n.Store64(g.Add(i*LineSize), i)
	}
	if evict.Load() == 0 {
		t.Error("capacity evictions fired no per-line OpWriteBack events")
	}
}

// TestStatsDeltaWraparound documents Delta's arithmetic: field-wise uint64
// subtraction, modular on wraparound. A snapshot taken BEFORE ResetStats
// used as prev against a post-reset snapshot yields huge modular values,
// not negatives or panics — experiments must order snapshots around
// resets, and this test pins the behavior they are ordering around.
func TestStatsDeltaWraparound(t *testing.T) {
	prev := NodeStatsSnapshot{Loads: ^uint64(0), VirtualNS: ^uint64(0) - 1}
	cur := NodeStatsSnapshot{Loads: 2, VirtualNS: 3}
	d := cur.Delta(prev)
	if d.Loads != 3 { // 2 - (2^64-1) mod 2^64 = 3
		t.Errorf("wrapped Loads delta = %d, want 3", d.Loads)
	}
	if d.VirtualNS != 5 { // 3 - (2^64-2) mod 2^64 = 5
		t.Errorf("wrapped VirtualNS delta = %d, want 5", d.VirtualNS)
	}
	// The fields Delta never touches stay zero.
	if d.Stores != 0 || d.Fences != 0 {
		t.Errorf("untouched fields nonzero: %+v", d)
	}

	// End-to-end: snapshot, reset, small traffic — the delta against the
	// pre-reset snapshot wraps modularly (cur - prev + 2^64).
	f := statsFabric(DefaultLatency())
	n := f.Node(0)
	g := f.Reserve(LineSize, LineSize)
	n.Load64(g)
	n.Load64(g)
	before := n.Stats()
	n.ResetStats()
	n.Load64(g)
	after := n.Stats()
	got := after.Delta(before)
	want := after.Loads - before.Loads // modular by Go's uint64 rules
	if got.Loads != want {
		t.Errorf("post-reset Loads delta = %d, want modular %d", got.Loads, want)
	}
}
