package fabric

import (
	"sync/atomic"
	"testing"
)

func statsFabric(lat LatencyModel) *Fabric {
	return New(Config{GlobalSize: 1 << 20, Nodes: 2, CacheCapacityLines: -1, Latency: lat})
}

func TestStatsDelta(t *testing.T) {
	f := statsFabric(DefaultLatency())
	n := f.Node(0)
	g := f.Reserve(4*LineSize, LineSize)

	before := n.Stats()
	n.Load64(g)                 // miss
	n.Load64(g)                 // hit
	n.Store64(g.Add(8), 7)      // hit (line cached)
	n.Add64(g.Add(LineSize), 1) // atomic
	n.Fence()
	after := n.Stats()

	d := after.Delta(before)
	if d.Loads != 2 || d.Stores != 1 || d.Atomics != 1 || d.Fences != 1 {
		t.Errorf("delta loads=%d stores=%d atomics=%d fences=%d, want 2/1/1/1",
			d.Loads, d.Stores, d.Atomics, d.Fences)
	}
	if d.Misses != 1 || d.Hits != 2 {
		t.Errorf("delta misses=%d hits=%d, want 1/2", d.Misses, d.Hits)
	}
	if d.VirtualNS == 0 {
		t.Error("delta accrued no virtual time under an accounting model")
	}
	// A second delta against the later snapshot must be empty.
	if z := after.Delta(after); z != (NodeStatsSnapshot{}) {
		t.Errorf("self-delta not zero: %+v", z)
	}
}

func TestStallsCountOnlyInSpinMode(t *testing.T) {
	lat := DefaultLatency()
	lat.Mode = LatencySpin
	lat.LocalNS, lat.GlobalNS, lat.HopNS, lat.AtomicNS = 1, 1, 0, 1 // don't waste wall time
	f := statsFabric(lat)
	n := f.Node(0)
	g := f.Reserve(LineSize, LineSize)
	n.Load64(g)
	if s := n.Stats().Stalls; s == 0 {
		t.Error("spin mode charged an access but counted no stalls")
	}

	fa := statsFabric(DefaultLatency()) // accounting only
	na := fa.Node(0)
	na.Load64(fa.Reserve(LineSize, LineSize))
	if s := na.Stats().Stalls; s != 0 {
		t.Errorf("accounting mode counted %d stalls, want 0 (nothing waits)", s)
	}
}

func TestFaultsInjectedCountsDroppedWriteBacks(t *testing.T) {
	f := statsFabric(LatencyModel{})
	n := f.Node(0)
	g := f.Reserve(LineSize, LineSize)
	f.Faults().SetDropWriteBackRate(1_000_000) // drop everything
	n.Store64(g, 42)
	n.WriteBackRange(g, LineSize)
	f.Faults().SetDropWriteBackRate(0)
	if got := n.Stats().FaultsInjected; got != 1 {
		t.Errorf("FaultsInjected=%d after one dropped write-back, want 1", got)
	}
}

func TestOpHookFiresOnMissWriteBackFence(t *testing.T) {
	f := statsFabric(LatencyModel{})
	n := f.Node(0)
	g := f.Reserve(2*LineSize, LineSize)

	var miss, wb, fence atomic.Uint64
	n.SetOpHook(func(k OpKind, arg uint64) {
		switch k {
		case OpMiss:
			miss.Add(1)
		case OpWriteBack:
			wb.Add(1)
		case OpFence:
			fence.Add(1)
		}
	})
	n.Load64(g) // miss
	n.Load64(g) // hit: no event
	n.Store64(g, 1)
	n.WriteBackRange(g, LineSize)
	n.Fence()
	n.Add64(g.Add(LineSize), 1) // atomics bypass the cache: no events
	if miss.Load() != 1 || wb.Load() != 1 || fence.Load() != 1 {
		t.Errorf("hook counts miss=%d wb=%d fence=%d, want 1/1/1", miss.Load(), wb.Load(), fence.Load())
	}

	n.SetOpHook(nil)
	n.Load64(g.Add(LineSize)) // miss with hook removed
	if miss.Load() != 1 {
		t.Error("hook fired after removal")
	}
}
