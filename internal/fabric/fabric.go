package fabric

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
)

// Config describes the simulated rack.
type Config struct {
	// GlobalSize is the size of global memory in bytes. Rounded up to a
	// multiple of LineSize. The first line is reserved so GPtr 0 means nil.
	GlobalSize uint64
	// Nodes is the number of compute nodes attached to the interconnect.
	Nodes int
	// CacheCapacityLines bounds each node's simulated cache. 0 selects the
	// default of 65536 lines (4 MiB, an L2-ish cache); negative means
	// unlimited (only sensible for small unit tests).
	CacheCapacityLines int
	// Latency is the cost model. Zero value disables latency charging.
	Latency LatencyModel
	// Hops gives each node's distance (interconnect hops) to home memory.
	// Nil means one hop for every node. Length must equal Nodes otherwise.
	Hops []int
	// FaultSeed seeds the deterministic fault injector.
	FaultSeed int64
}

// Fabric is the rack's memory interconnect: home global memory plus the
// per-node caches and the fault domain that sits between nodes and memory.
type Fabric struct {
	cfg   Config
	lat   LatencyModel
	words []uint64 // home memory, accessed only with atomic word ops
	size  uint64
	nodes []*Node

	reserveMu  sync.Mutex
	reserveOff uint64

	faults *FaultInjector
}

// New builds a rack fabric from cfg. It panics on nonsensical configuration
// (zero nodes, zero memory), since that is always a programming error.
func New(cfg Config) *Fabric {
	if cfg.Nodes <= 0 {
		panic("fabric: Config.Nodes must be positive")
	}
	if cfg.GlobalSize < 2*LineSize {
		panic("fabric: Config.GlobalSize too small")
	}
	size := AlignUp64(cfg.GlobalSize, LineSize)
	if cfg.Hops != nil && len(cfg.Hops) != cfg.Nodes {
		panic("fabric: Config.Hops length must equal Config.Nodes")
	}
	cacheCap := cfg.CacheCapacityLines
	switch {
	case cacheCap == 0:
		cacheCap = 65536 // 4 MiB per node
	case cacheCap < 0:
		cacheCap = 0 // unlimited
	}
	f := &Fabric{
		cfg:        cfg,
		lat:        cfg.Latency,
		words:      make([]uint64, size/WordSize),
		size:       size,
		reserveOff: LineSize, // line 0 reserved: GPtr 0 is nil
	}
	f.faults = newFaultInjector(cfg.FaultSeed)
	f.nodes = make([]*Node, cfg.Nodes)
	for i := range f.nodes {
		hops := 1
		if cfg.Hops != nil {
			hops = cfg.Hops[i]
		}
		f.nodes[i] = &Node{
			id:    i,
			fab:   f,
			hops:  hops,
			cache: newCache(cacheCap),
		}
	}
	return f
}

// Node returns the i'th node's view of the fabric.
func (f *Fabric) Node(i int) *Node { return f.nodes[i] }

// NumNodes returns the number of nodes attached to the fabric.
func (f *Fabric) NumNodes() int { return len(f.nodes) }

// Size returns the usable size of global memory in bytes.
func (f *Fabric) Size() uint64 { return f.size }

// Faults returns the fabric's fault injector.
func (f *Fabric) Faults() *FaultInjector { return f.faults }

// Latency returns the fabric's latency model.
func (f *Fabric) Latency() LatencyModel { return f.lat }

// Reserve carves size bytes (aligned to align, a power of two, at least
// LineSize recommended for independently-synchronized regions) out of global
// memory. It is the boot-time allocator used to lay out static kernel
// regions; dynamic allocation is built above it by flacdk/alloc. Reserve
// panics when global memory is exhausted: static layout overflow is a
// configuration error, not a runtime condition.
func (f *Fabric) Reserve(size, align uint64) GPtr {
	if align == 0 {
		align = WordSize
	}
	if align&(align-1) != 0 {
		panic("fabric: Reserve alignment must be a power of two")
	}
	f.reserveMu.Lock()
	defer f.reserveMu.Unlock()
	off := AlignUp64(f.reserveOff, align)
	if off+size > f.size {
		panic(fmt.Sprintf("fabric: Reserve(%d, %d): global memory exhausted (%d of %d used)",
			size, align, f.reserveOff, f.size))
	}
	f.reserveOff = off + size
	return GPtr(off)
}

// Reserved returns how many bytes of global memory Reserve has handed out.
func (f *Fabric) Reserved() uint64 {
	f.reserveMu.Lock()
	defer f.reserveMu.Unlock()
	return f.reserveOff
}

// checkRange panics unless [g, g+n) lies inside global memory and g != nil.
func (f *Fabric) checkRange(g GPtr, n uint64) {
	if g.IsNil() {
		panic("fabric: nil GPtr dereference")
	}
	if uint64(g)+n > f.size || uint64(g)+n < uint64(g) {
		panic(fmt.Sprintf("fabric: access [%v,+%d) outside global memory of %d bytes", g, n, f.size))
	}
}

// homeLoadWord reads one aligned word from home memory.
func (f *Fabric) homeLoadWord(wordIdx uint64) uint64 {
	return atomic.LoadUint64(&f.words[wordIdx])
}

// homeStoreWord writes one aligned word to home memory.
func (f *Fabric) homeStoreWord(wordIdx uint64, v uint64) {
	atomic.StoreUint64(&f.words[wordIdx], v)
}

// fetchLineHome copies the line with index li from home memory into dst.
func (f *Fabric) fetchLineHome(li uint64, dst *[LineSize]byte) {
	base := li * LineSize / WordSize
	for w := uint64(0); w < LineSize/WordSize; w++ {
		binary.LittleEndian.PutUint64(dst[w*WordSize:], f.homeLoadWord(base+w))
	}
}

// writeLineHome copies src into home memory at line index li, applying any
// write-path fault injection, and returns how many injector hits the line
// took (1 for a dropped line, 1 per corrupted word) so the node can
// account them. Words land in ascending order; this is load-bearing for
// internal/trace, which publishes a record's sequence word as the LAST
// word of its line and relies on payload words reaching home first.
func (f *Fabric) writeLineHome(li uint64, src *[LineSize]byte) (faults uint64) {
	if f.faults.dropWriteBack() {
		return 1 // the line silently never reaches home memory
	}
	base := li * LineSize / WordSize
	if f.faults.corruptRate.Load() == 0 {
		// Fast path: with corruption disarmed the injector draws nothing
		// from its PRNG, so skipping the per-word roll is observationally
		// identical — and saves eight atomic rate loads per line.
		for w := uint64(0); w < LineSize/WordSize; w++ {
			f.homeStoreWord(base+w, binary.LittleEndian.Uint64(src[w*WordSize:]))
		}
		return 0
	}
	for w := uint64(0); w < LineSize/WordSize; w++ {
		v := binary.LittleEndian.Uint64(src[w*WordSize:])
		if cv := f.faults.corruptOnWrite(v); cv != v {
			v = cv
			faults++
		}
		f.homeStoreWord(base+w, v)
	}
	return faults
}

// writeLinesHome commits a harvested write-back batch to home memory in
// buf order (callers pass ascending line index — load-bearing for the
// fault injector's deterministic replay and trace's sequence-last line
// commit). With both injector rates disarmed it checks them ONCE for the
// whole batch instead of once per line per word: the injector draws
// nothing from its PRNG at rate zero, so the batch fast path is
// observationally identical to per-line commits, just cheaper. With
// either rate armed it falls back to per-line commits so every
// drop/corrupt draw happens in the same order as the per-line path.
func (f *Fabric) writeLinesHome(buf []wbEntry) (faults uint64) {
	if f.faults.dropRate.Load() == 0 && f.faults.corruptRate.Load() == 0 {
		for i := range buf {
			base := buf[i].li * LineSize / WordSize
			src := &buf[i].data
			for w := uint64(0); w < LineSize/WordSize; w++ {
				f.homeStoreWord(base+w, binary.LittleEndian.Uint64(src[w*WordSize:]))
			}
		}
		return 0
	}
	for i := range buf {
		faults += f.writeLineHome(buf[i].li, &buf[i].data)
	}
	return faults
}

// ReadAtHome copies home-memory contents into buf, bypassing every cache.
// It is the fabric's "device scrub" path, used by the reliability scrubber
// and by tests to observe ground truth; regular code must go through a Node.
func (f *Fabric) ReadAtHome(g GPtr, buf []byte) {
	f.checkRange(g, uint64(len(buf)))
	for i := range buf {
		w := (uint64(g) + uint64(i)) / WordSize
		sh := ((uint64(g) + uint64(i)) % WordSize) * 8
		buf[i] = byte(f.homeLoadWord(w) >> sh)
	}
}

// WriteAtHome stores buf directly into home memory, bypassing caches and
// fault injection. It models out-of-band provisioning (e.g. the BIOS or a
// storage device DMA-ing initial contents) and is also used by tests.
func (f *Fabric) WriteAtHome(g GPtr, buf []byte) {
	f.checkRange(g, uint64(len(buf)))
	i := 0
	for i < len(buf) {
		addr := uint64(g) + uint64(i)
		w := addr / WordSize
		sh := (addr % WordSize) * 8
		// Read-modify-write one byte at a time; fine for a provisioning path.
		for {
			old := f.homeLoadWord(w)
			neu := (old &^ (uint64(0xff) << sh)) | uint64(buf[i])<<sh
			if atomic.CompareAndSwapUint64(&f.words[w], old, neu) {
				break
			}
		}
		i++
	}
}
