package fabric

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Concurrency coverage for the ranged fast path, written to run under
// -race: overlapping ranged maintenance and regular accesses on ONE node
// must stay data-race free, and a hook installed mid-burst must observe
// either a whole ranged event or nothing.

func TestRangedOpsConcurrentOverlap(t *testing.T) {
	f := New(Config{GlobalSize: 1 << 20, Nodes: 1, CacheCapacityLines: -1})
	n := f.Node(0)
	const lines = 32
	g := f.Reserve(lines*LineSize, LineSize)

	const iters = 2000
	var wg sync.WaitGroup
	run := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fn(i)
			}
		}()
	}
	run(func(i int) { // writer dirtying the low half
		n.Store64(g.Add(uint64(i%16)*LineSize), uint64(i))
	})
	run(func(i int) { // writer dirtying the high half
		n.Store64(g.Add(uint64(16+i%16)*LineSize), uint64(i))
	})
	run(func(i int) { // ranged write-backs overlapping both halves
		n.WriteBackRange(g.Add(uint64(i%8)*LineSize), 24*LineSize)
	})
	run(func(i int) { // invalidates racing the write-backs
		n.InvalidateRange(g.Add(uint64(i%16)*LineSize), 8*LineSize)
	})
	run(func(i int) { // fused flushes
		n.FlushRange(g, lines*LineSize)
	})
	run(func(i int) { // readers re-fetching whatever the maintenance leaves
		n.Load64(g.Add(uint64(i%lines) * LineSize))
	})
	wg.Wait()

	// Sanity, not strictness: counters moved and nothing tore.
	s := n.Stats()
	if s.Stores != 2*iters || s.Loads != iters {
		t.Errorf("stores=%d loads=%d, want %d/%d", s.Stores, s.Loads, 2*iters, iters)
	}
}

// TestHookInstallMidBurstSeesWholeEventOrNothing is the regression test
// for the hooked-flag fast path: SetOpHook publishes the hook pointer
// BEFORE the flag and clears the flag BEFORE the pointer, and a ranged
// burst loads the pointer at most once — so however the install or remove
// interleaves with a running burst, an observer gets the burst's complete
// ranged event (full first-line + count) or no event at all. A torn
// partial count would mean the event was assembled from state the hook
// was never guaranteed to see.
func TestHookInstallMidBurstSeesWholeEventOrNothing(t *testing.T) {
	f := New(Config{GlobalSize: 1 << 20, Nodes: 1, CacheCapacityLines: -1})
	n := f.Node(0)
	const lines = 16
	g := f.Reserve(lines*LineSize, LineSize)
	firstLine := g.Line()

	var stop atomic.Bool
	var bad atomic.Uint64
	var seen atomic.Uint64

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // the burster: dirty all 16 lines, write them back, repeat
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			for l := uint64(0); l < lines; l++ {
				n.Store64(g.Add(l*LineSize), uint64(i)+l)
			}
			n.WriteBackRange(g, lines*LineSize)
		}
	}()
	go func() { // the observer: install and remove a hook mid-burst, forever
		defer wg.Done()
		for !stop.Load() {
			n.SetOpHook(func(k OpKind, arg0, arg1 uint64) {
				if k != OpWriteBackRange {
					return
				}
				seen.Add(1)
				// The burster is the only mutator: every burst writes back
				// all 16 freshly dirtied lines, so a delivered event must
				// carry the whole burst.
				if arg0 != firstLine || arg1 != lines {
					bad.Add(1)
				}
			})
			runtime.Gosched() // let a few bursts land while hooked
			n.SetOpHook(nil)
			runtime.Gosched() // ...and a few while unhooked
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for seen.Load() < 50 && bad.Load() == 0 && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()

	if bad.Load() != 0 {
		t.Errorf("%d torn ranged events observed (partial first-line/count) out of %d", bad.Load(), seen.Load())
	}
	if seen.Load() == 0 {
		t.Error("observer never saw a ranged event; the interleaving never delivered one")
	}
}
