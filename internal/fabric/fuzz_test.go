package fabric

import (
	"bytes"
	"testing"
)

// FuzzRangeLineMath fuzzes the range→line arithmetic behind every ranged
// maintenance call: LineSpan's first/last computation and the end-to-end
// contract that WriteBackRange over an arbitrary [off, off+size) slice of
// a reservation publishes exactly the written bytes and leaves every
// other home byte untouched. The seeds pin the historical hazards: zero
// size, single bytes straddling a line boundary, ranges ending exactly on
// a line boundary, and ranges hugging the end of the reservation (where
// off+size-1 arithmetic could overflow into the next line or past the
// reservation).
func FuzzRangeLineMath(f *testing.F) {
	const arenaLines = 8
	const arenaBytes = arenaLines * LineSize

	f.Add(uint64(0), uint64(0))            // zero size: no-op, must not touch LineSpan
	f.Add(uint64(0), uint64(1))            // first byte
	f.Add(uint64(LineSize-1), uint64(2))   // straddles lines 0|1
	f.Add(uint64(0), uint64(LineSize))     // exactly one line: must NOT touch line 1
	f.Add(uint64(0), uint64(arenaBytes))   // whole reservation
	f.Add(uint64(arenaBytes-1), uint64(1)) // last byte of the reservation
	f.Add(uint64(arenaBytes-8), uint64(8)) // last word
	f.Add(uint64(5), uint64(3*LineSize))   // unaligned start, multi-line
	f.Add(^uint64(0), ^uint64(0))          // garbage: exercises the clamping below

	f.Fuzz(func(t *testing.T, off, size uint64) {
		// Clamp the raw fuzz inputs into the reservation; the clamping
		// itself is part of what keeps the math honest near the edges.
		off %= arenaBytes
		size %= arenaBytes - off + 1 // 0..arenaBytes-off inclusive

		fab := New(Config{GlobalSize: 1 << 16, Nodes: 1, CacheCapacityLines: -1})
		n := fab.Node(0)
		g := fab.Reserve(arenaBytes, LineSize)

		if size == 0 {
			before := n.Stats()
			n.WriteBackRange(g.Add(off), 0)
			n.InvalidateRange(g.Add(off), 0)
			n.FlushRange(g.Add(off), 0)
			if d := n.Stats().Delta(before); d.WriteBacks != 0 || d.Invalidates != 0 || d.VirtualNS != 0 {
				t.Fatalf("zero-size maintenance did work: %+v", d)
			}
			return
		}

		// Pure line arithmetic against a transparent oracle.
		start := g.Add(off)
		first, last := LineSpan(start, size)
		wantFirst := (uint64(g) + off) / LineSize
		wantLast := (uint64(g) + off + size - 1) / LineSize
		if first != wantFirst || last != wantLast {
			t.Fatalf("LineSpan(off=%d,size=%d) = [%d,%d], want [%d,%d]",
				off, size, first, last, wantFirst, wantLast)
		}
		if first > last {
			t.Fatalf("LineSpan inverted: [%d,%d]", first, last)
		}
		if lines := last - first + 1; lines > size/LineSize+2 {
			t.Fatalf("range of %d bytes spans %d lines", size, lines)
		}

		// End-to-end: seed home with a pattern, write a different pattern
		// through the cache over [off, off+size), write back exactly that
		// range. Home must now hold the new bytes there and the old bytes
		// everywhere else — including the unwritten tails of the first and
		// last lines the range straddles.
		pre := make([]byte, arenaBytes)
		for i := range pre {
			pre[i] = byte(i * 7)
		}
		fab.WriteAtHome(g, pre)
		n.InvalidateAll() // drop lines cached by the stats probe above

		pat := make([]byte, size)
		for i := range pat {
			pat[i] = byte(255 - i%251)
		}
		n.Write(start, pat)
		n.WriteBackRange(start, size)

		post := make([]byte, arenaBytes)
		fab.ReadAtHome(g, post)
		if !bytes.Equal(post[off:off+size], pat) {
			t.Fatalf("written range did not reach home (off=%d size=%d)", off, size)
		}
		if !bytes.Equal(post[:off], pre[:off]) || !bytes.Equal(post[off+size:], pre[off+size:]) {
			t.Fatalf("write-back of [%d,+%d) disturbed bytes outside the range", off, size)
		}

		// The inverse op drops exactly the spanned lines and no others.
		resBefore := n.cache.resident()
		n.InvalidateRange(start, size)
		if got, want := resBefore-n.cache.resident(), int(last-first+1); got != want {
			t.Fatalf("InvalidateRange dropped %d lines, want %d", got, want)
		}
	})
}
