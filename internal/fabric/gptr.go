package fabric

import "fmt"

// GPtr is a global-memory address: a byte offset into the rack's shared
// global memory. GPtr 0 is the null address; the first usable byte of global
// memory starts at offset LineSize so that 0 can always mean "nil".
//
// GPtr is the only way code refers to shared state. Converting a GPtr to a
// Go pointer is deliberately impossible: shared structures are laid out in
// flat memory with explicit offsets, outside the Go garbage collector.
type GPtr uint64

// Nil is the null global pointer.
const Nil GPtr = 0

// LineSize is the cache-line size of the simulated per-node caches, in
// bytes. All cache maintenance operates at this granularity.
const LineSize = 64

// WordSize is the size of the fabric's atomic unit, in bytes. Fabric
// atomics require WordSize-aligned addresses.
const WordSize = 8

// IsNil reports whether g is the null global pointer.
func (g GPtr) IsNil() bool { return g == Nil }

// Add returns g advanced by off bytes.
func (g GPtr) Add(off uint64) GPtr { return g + GPtr(off) }

// Sub returns g moved back by off bytes.
func (g GPtr) Sub(off uint64) GPtr { return g - GPtr(off) }

// Diff returns the byte distance g-h. It panics if h > g.
func (g GPtr) Diff(h GPtr) uint64 {
	if h > g {
		panic("fabric: GPtr.Diff underflow")
	}
	return uint64(g - h)
}

// AlignedTo reports whether g is a multiple of align (a power of two).
func (g GPtr) AlignedTo(align uint64) bool { return uint64(g)&(align-1) == 0 }

// AlignUp rounds g up to the next multiple of align (a power of two).
func (g GPtr) AlignUp(align uint64) GPtr {
	return GPtr((uint64(g) + align - 1) &^ (align - 1))
}

// Line returns the index of the cache line containing g.
func (g GPtr) Line() uint64 { return uint64(g) / LineSize }

// LineSpan returns the indexes of the first and last cache line overlapped
// by the byte range [g, g+size). It is the one range→line conversion every
// ranged cache-maintenance op uses; size must be positive (callers treat a
// zero-size range as a no-op before converting). The last byte of the
// range is g+size-1, so a range ending exactly on a line boundary does NOT
// touch the following line.
func LineSpan(g GPtr, size uint64) (first, last uint64) {
	return g.Line(), g.Add(size - 1).Line()
}

// LineStart returns the address of the first byte of g's cache line.
func (g GPtr) LineStart() GPtr { return GPtr(g.Line() * LineSize) }

// String formats g as a hexadecimal global address.
func (g GPtr) String() string {
	if g.IsNil() {
		return "g<nil>"
	}
	return fmt.Sprintf("g0x%x", uint64(g))
}

// AlignUp64 rounds n up to the next multiple of align (a power of two).
func AlignUp64(n, align uint64) uint64 { return (n + align - 1) &^ (align - 1) }
