package fabric

// OpKind classifies the cache-path operations observable through a node's
// op hook — the events a bus analyzer on the node's fabric port would see.
type OpKind uint8

const (
	// OpMiss: a load or store missed the node cache and fetched a line
	// from home memory. arg0 = global line index, arg1 = 0.
	OpMiss OpKind = iota
	// OpWriteBack: a single dirty line left the node for home memory (a
	// capacity eviction on the access path). arg0 = global line index,
	// arg1 = 1. Explicit ranged maintenance reports OpWriteBackRange
	// instead — one event for the whole burst.
	OpWriteBack
	// OpFence: the node executed a memory barrier. arg0 = arg1 = 0.
	OpFence
	// OpWriteBackRange: an explicit cache-maintenance call (WriteBackRange,
	// FlushRange, WriteBackAll) pushed a batch of dirty lines home in one
	// pipelined burst. arg0 = the first (lowest) line index written,
	// arg1 = the number of lines written. The written lines all lie inside
	// the maintained range but need not be contiguous; observers that only
	// need traffic volume read arg1, observers that need placement get the
	// burst's starting line. One ranged event replaces what used to be
	// arg1 per-line OpWriteBack events, so a firehose consumer pays the
	// emit cost once per burst instead of once per line.
	OpWriteBackRange
)

func (k OpKind) String() string {
	switch k {
	case OpMiss:
		return "miss"
	case OpWriteBack:
		return "write-back"
	case OpFence:
		return "fence"
	case OpWriteBackRange:
		return "write-back-range"
	}
	return "op(?)"
}

// OpHook observes one cache-path operation. The operand meaning is
// per-kind, documented on the OpKind constants. Hooks run inline on the
// node's memory path, outside the cache lock, and may themselves perform
// fabric operations — but anything that can recurse (like a trace
// recorder whose emit path writes back lines) must guard itself, e.g.
// with a suppression counter, or it will re-enter forever.
type OpHook func(kind OpKind, arg0, arg1 uint64)

// SetOpHook installs h as the node's op hook; nil removes it. Safe to
// call while the node is running operations. A ranged operation loads the
// hook at most once, at its single notification point: a hook installed
// mid-burst observes either the whole ranged event or nothing, never a
// torn per-line/ranged mix.
func (n *Node) SetOpHook(h OpHook) {
	if h == nil {
		// Order matters against concurrent fireOp: clear the fast-path
		// flag first so new operations skip event assembly, then drop the
		// hook pointer (fireOp still nil-checks it).
		n.hooked.Store(false)
		n.opHook.Store(nil)
		return
	}
	n.opHook.Store(&h)
	n.hooked.Store(true)
}

// fireOp delivers one op event to the installed hook. Hot paths guard
// every call with n.hooked — a single byte load — so the no-hook fast
// path never assembles event operands, loads the hook pointer, or pays
// an indirect call.
func (n *Node) fireOp(k OpKind, arg0, arg1 uint64) {
	if p := n.opHook.Load(); p != nil {
		(*p)(k, arg0, arg1)
	}
}
