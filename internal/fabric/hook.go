package fabric

// OpKind classifies the cache-path operations observable through a node's
// op hook — the events a bus analyzer on the node's fabric port would see.
type OpKind uint8

const (
	// OpMiss: a load or store missed the node cache and fetched a line
	// from home memory.
	OpMiss OpKind = iota
	// OpWriteBack: a dirty line left the node for home memory (explicit
	// write-back or capacity eviction).
	OpWriteBack
	// OpFence: the node executed a memory barrier.
	OpFence
)

func (k OpKind) String() string {
	switch k {
	case OpMiss:
		return "miss"
	case OpWriteBack:
		return "write-back"
	case OpFence:
		return "fence"
	}
	return "op(?)"
}

// OpHook observes one cache-path operation. arg is the global line index
// for OpMiss/OpWriteBack and zero for OpFence. Hooks run inline on the
// node's memory path, outside the cache lock, and may themselves perform
// fabric operations — but anything that can recurse (like a trace
// recorder whose emit path writes back lines) must guard itself, e.g.
// with a suppression counter, or it will re-enter forever.
type OpHook func(kind OpKind, arg uint64)

// SetOpHook installs h as the node's op hook; nil removes it. Safe to
// call while the node is running operations.
func (n *Node) SetOpHook(h OpHook) {
	if h == nil {
		n.opHook.Store(nil)
		return
	}
	n.opHook.Store(&h)
}

func (n *Node) fireOp(k OpKind, arg uint64) {
	if p := n.opHook.Load(); p != nil {
		(*p)(k, arg)
	}
}
