package fabric

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Differential equivalence: the pinned legacy per-line maintenance paths
// (legacy.go) and the ranged fast path must be observationally identical.
// Twin fabrics with identical configuration and fault seed run the same
// seeded random workload; the only difference is which maintenance
// implementation each twin uses. Afterward home memory must match byte
// for byte, every node's charged virtual time must match to the
// nanosecond, the full stats snapshots must be equal, and the caches must
// hold the same number of resident lines.
//
// Caches are unlimited here on purpose: capacity eviction picks its
// victim in map order, which is the one nondeterminism that would make
// even two runs of the SAME implementation diverge.

const (
	eqArenaLines = 48
	eqArenaBytes = eqArenaLines * LineSize
)

type eqTwin struct {
	f *Fabric
	g GPtr
}

func newEqTwin(faultSeed int64) eqTwin {
	f := New(Config{
		GlobalSize:         1 << 20,
		Nodes:              2,
		CacheCapacityLines: -1,
		Latency:            DefaultLatency(),
		FaultSeed:          faultSeed,
	})
	return eqTwin{f: f, g: f.Reserve(eqArenaBytes, LineSize)}
}

// runEqWorkload applies ops random operations drawn from r to tw. ranged
// selects the new batched maintenance paths; false selects the pinned
// legacy per-line ones. Every random draw happens in the same order on
// both twins because the caller hands each the same seed.
func runEqWorkload(tw eqTwin, r *rand.Rand, ops int, ranged bool) {
	for i := 0; i < ops; i++ {
		n := tw.f.Node(r.Intn(tw.f.NumNodes()))
		off := uint64(r.Intn(eqArenaBytes-8)) &^ 7
		switch k := r.Intn(100); {
		case k < 25:
			n.Store64(tw.g.Add(off), r.Uint64())
		case k < 40:
			n.Load64(tw.g.Add(off))
		case k < 50:
			b := make([]byte, 1+r.Intn(200))
			r.Read(b)
			start := uint64(r.Intn(eqArenaBytes - len(b)))
			n.Write(tw.g.Add(start), b)
		case k < 65:
			start := uint64(r.Intn(eqArenaBytes - 1))
			size := 1 + uint64(r.Intn(int(eqArenaBytes-start)))
			if ranged {
				n.WriteBackRange(tw.g.Add(start), size)
			} else {
				n.WriteBackRangePerLine(tw.g.Add(start), size)
			}
		case k < 75:
			start := uint64(r.Intn(eqArenaBytes - 1))
			size := 1 + uint64(r.Intn(int(eqArenaBytes-start)))
			if ranged {
				n.InvalidateRange(tw.g.Add(start), size)
			} else {
				n.InvalidateRangePerLine(tw.g.Add(start), size)
			}
		case k < 85:
			start := uint64(r.Intn(eqArenaBytes - 1))
			size := 1 + uint64(r.Intn(int(eqArenaBytes-start)))
			if ranged {
				n.FlushRange(tw.g.Add(start), size)
			} else {
				n.FlushRangePerLine(tw.g.Add(start), size)
			}
		case k < 92:
			n.Add64(tw.g.Add(off), uint64(r.Intn(1000)))
		default:
			n.Fence()
		}
	}
}

func diffTwins(t *testing.T, seed int64, corruptPPM, dropPPM uint64) {
	t.Helper()
	legacy := newEqTwin(seed)
	ranged := newEqTwin(seed)
	legacy.f.Faults().SetCorruptionRate(corruptPPM)
	ranged.f.Faults().SetCorruptionRate(corruptPPM)
	legacy.f.Faults().SetDropWriteBackRate(dropPPM)
	ranged.f.Faults().SetDropWriteBackRate(dropPPM)

	runEqWorkload(legacy, rand.New(rand.NewSource(seed)), 400, false)
	runEqWorkload(ranged, rand.New(rand.NewSource(seed)), 400, true)

	lh := make([]byte, eqArenaBytes)
	rh := make([]byte, eqArenaBytes)
	legacy.f.ReadAtHome(legacy.g, lh)
	ranged.f.ReadAtHome(ranged.g, rh)
	if !bytes.Equal(lh, rh) {
		for i := range lh {
			if lh[i] != rh[i] {
				t.Errorf("seed %d: home memory diverges at byte %d (line %d): legacy %#x, ranged %#x",
					seed, i, i/LineSize, lh[i], rh[i])
				break
			}
		}
	}
	for i := 0; i < legacy.f.NumNodes(); i++ {
		ln, rn := legacy.f.Node(i), ranged.f.Node(i)
		if lv, rv := ln.VirtualNS(), rn.VirtualNS(); lv != rv {
			t.Errorf("seed %d node %d: virtual time diverges: legacy %d ns, ranged %d ns", seed, i, lv, rv)
		}
		if ls, rs := ln.Stats(), rn.Stats(); ls != rs {
			t.Errorf("seed %d node %d: stats diverge:\nlegacy %+v\nranged %+v", seed, i, ls, rs)
		}
		if lr, rr := ln.cache.resident(), rn.cache.resident(); lr != rr {
			t.Errorf("seed %d node %d: resident lines diverge: legacy %d, ranged %d", seed, i, lr, rr)
		}
	}
}

func TestRangedEquivalentToPerLine(t *testing.T) {
	check := func(seed int64) bool {
		diffTwins(t, seed, 0, 0)
		return !t.Failed()
	}
	cfg := &quick.Config{MaxCount: 24, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// With the injector armed the paths must STILL agree: the harvest streams
// lines home in ascending order exactly like the per-line loop walked
// them, so both twins consume the same PRNG draw sequence and corrupt or
// drop the same lines.
func TestRangedEquivalentToPerLineWithFaults(t *testing.T) {
	check := func(seed int64) bool {
		// Rates high enough that a 400-op workload reliably takes hits.
		diffTwins(t, seed, 20_000, 50_000)
		return !t.Failed()
	}
	cfg := &quick.Config{MaxCount: 16, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}
