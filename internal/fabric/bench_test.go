package fabric

import "testing"

// Micro-benchmarks of the simulator itself (latency model off): how fast
// the host can simulate fabric operations. The modeled costs live in the
// virtual-time ledger, not in these wall-clock numbers.

func benchFabric(b *testing.B) (*Fabric, *Node, GPtr) {
	b.Helper()
	f := New(Config{GlobalSize: 16 << 20, Nodes: 2})
	return f, f.Node(0), f.Reserve(1<<20, LineSize)
}

func BenchmarkLoad64Hit(b *testing.B) {
	_, n, g := benchFabric(b)
	n.Load64(g) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Load64(g)
	}
}

func BenchmarkLoad64Miss(b *testing.B) {
	_, n, g := benchFabric(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.InvalidateRange(g, 8)
		n.Load64(g)
	}
}

func BenchmarkStore64(b *testing.B) {
	_, n, g := benchFabric(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Store64(g, uint64(i))
	}
}

func BenchmarkCAS64(b *testing.B) {
	_, n, g := benchFabric(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.CAS64(g, uint64(i), uint64(i+1))
	}
}

func BenchmarkAdd64(b *testing.B) {
	_, n, g := benchFabric(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Add64(g, 1)
	}
}

func BenchmarkBulkWrite4K(b *testing.B) {
	_, n, g := benchFabric(b)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Write(g, buf)
	}
}

func BenchmarkBulkRead4K(b *testing.B) {
	_, n, g := benchFabric(b)
	buf := make([]byte, 4096)
	n.Write(g, buf)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Read(g, buf)
	}
}

func BenchmarkWriteBackFlush4K(b *testing.B) {
	_, n, g := benchFabric(b)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Write(g, buf)
		n.FlushRange(g, 4096)
	}
}

func BenchmarkCrossNodePublish(b *testing.B) {
	f, n, g := benchFabric(b)
	peer := f.Node(1)
	buf := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Write(g, buf)
		n.WriteBackRange(g, 256)
		peer.InvalidateRange(g, 256)
		peer.Read(g, buf)
	}
}

// Ranged write-back vs the pinned per-line baseline: the batching win the
// fabric experiment gates on. Each iteration dirties the lines (the store
// loop's cost is common to both) then writes them back in one ranged call
// or via the legacy per-line path.

func benchWBR(b *testing.B, lines uint64, wbr func(*Node, GPtr, uint64)) {
	_, n, g := benchFabric(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for l := uint64(0); l < lines; l++ {
			n.Store64(g.Add(l*LineSize), uint64(i))
		}
		wbr(n, g, lines*LineSize)
	}
}

func BenchmarkWriteBackRange1(b *testing.B) {
	benchWBR(b, 1, (*Node).WriteBackRange)
}

func BenchmarkWriteBackRange16(b *testing.B) {
	benchWBR(b, 16, (*Node).WriteBackRange)
}

func BenchmarkWriteBackRange64(b *testing.B) {
	benchWBR(b, 64, (*Node).WriteBackRange)
}

func BenchmarkWriteBackRange16PerLine(b *testing.B) {
	benchWBR(b, 16, (*Node).WriteBackRangePerLine)
}
