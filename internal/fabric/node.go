package fabric

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"
)

// Node is one compute node's view of the fabric. All plain loads and stores
// go through the node's private, non-coherent cache; atomics bypass it.
// A Node's methods are safe for concurrent use by the many goroutines that
// play the node's CPUs.
type Node struct {
	id      int
	fab     *Fabric
	hops    int
	extra   atomic.Int64 // runtime link degradation, in additional hops
	cache   *cache
	crashed atomic.Bool
	stats   NodeStats
	opHook  atomic.Pointer[OpHook]
	// hooked mirrors "opHook != nil" as one byte so hot paths can skip
	// event assembly, the hook pointer load and the indirect call with a
	// single load when no hook is installed — the common case for every
	// subsystem outside forensic trace windows.
	hooked atomic.Bool
}

// ID returns the node's index within the rack.
func (n *Node) ID() int { return n.id }

// Hops returns the node's interconnect distance to home memory.
func (n *Node) Hops() int { return n.hops }

// SetLinkDegradation adds extra (>= 0) hops to every home-memory access
// from this node, modeling a degraded or rerouted interconnect link. It is
// safe to call while the node is running ops; fault sweeps toggle it live.
func (n *Node) SetLinkDegradation(extra int) {
	if extra < 0 {
		extra = 0
	}
	n.extra.Store(int64(extra))
}

// LinkDegradation returns the extra hop count currently applied.
func (n *Node) LinkDegradation() int { return int(n.extra.Load()) }

// totalHops is the effective interconnect distance including degradation.
func (n *Node) totalHops() int { return n.hops + int(n.extra.Load()) }

// Fabric returns the fabric this node is attached to.
func (n *Node) Fabric() *Fabric { return n.fab }

// Stats returns a snapshot of the node's memory-traffic counters.
func (n *Node) Stats() NodeStatsSnapshot { return n.stats.snapshot() }

// ResetStats zeroes the node's counters.
func (n *Node) ResetStats() { n.stats.reset() }

// VirtualNS returns the virtual nanoseconds this node has been charged.
func (n *Node) VirtualNS() uint64 { return n.stats.VirtualNS.Load() }

func (n *Node) checkAlive() {
	if n.crashed.Load() {
		panic(fmt.Sprintf("fabric: operation on crashed node %d", n.id))
	}
}

// Crash simulates a node failure: every cache line that has not been
// written back is lost, and further memory operations panic until Restart.
// Home global memory keeps only what reached it — exactly the paper's
// persistence model for interconnect-attached memory.
func (n *Node) Crash() {
	n.crashed.Store(true)
	n.cache.mu.Lock()
	n.cache.reset()
	n.cache.mu.Unlock()
}

// Restart revives a crashed node with a cold, empty cache.
func (n *Node) Restart() {
	n.cache.mu.Lock()
	n.cache.reset()
	n.cache.mu.Unlock()
	n.crashed.Store(false)
}

// Crashed reports whether the node is currently down.
func (n *Node) Crashed() bool { return n.crashed.Load() }

// CacheResidentLines returns how many lines the node's cache holds.
func (n *Node) CacheResidentLines() int { return n.cache.resident() }

// withLine runs fn on the cache line containing [g, g+size), faulting the
// line in from home memory on a miss. size must not cross a line boundary.
// If write is true the line is marked dirty. It charges hit/miss latency.
func (n *Node) withLine(g GPtr, size uint64, write bool, fn func(data *[LineSize]byte, off uint64)) {
	n.checkAlive()
	n.fab.checkRange(g, size)
	li := g.Line()
	off := uint64(g) % LineSize
	if off+size > LineSize {
		panic(fmt.Sprintf("fabric: access at %v size %d crosses a cache line", g, size))
	}
	c := n.cache
	c.mu.Lock()
	ln := c.lookup(li)
	miss := ln == nil
	var victimIdx uint64
	var victim *cacheLine
	if miss {
		ln = &cacheLine{}
		if write && off == 0 && size == LineSize {
			// Full-line write: no write-allocate fetch — the line's old
			// contents are irrelevant and the store buffer covers it
			// entirely (hardware write-combining). The later write-back is
			// the only transfer this line costs.
			miss = false
		} else {
			n.fab.fetchLineHome(li, &ln.data)
		}
		victimIdx, victim = c.insert(li, ln)
	}
	if write {
		ln.dirty = true
	}
	fn(&ln.data, off)
	c.mu.Unlock()
	if victim != nil {
		if fl := n.fab.writeLineHome(victimIdx, &victim.data); fl > 0 {
			n.stats.FaultsInjected.Add(fl)
		}
		n.stats.WriteBacks.Add(1)
		if n.hooked.Load() {
			n.fireOp(OpWriteBack, victimIdx, 1)
		}
	}
	if write {
		n.stats.Stores.Add(1)
	} else {
		n.stats.Loads.Add(1)
	}
	if miss {
		n.stats.Misses.Add(1)
		n.charge(n.globalCost(1))
		if n.hooked.Load() {
			n.fireOp(OpMiss, li, 0)
		}
	} else {
		n.stats.Hits.Add(1)
		n.charge(n.fab.lat.LocalNS)
	}
}

func (n *Node) checkAligned(g GPtr, size uint64) {
	if !g.AlignedTo(size) {
		panic(fmt.Sprintf("fabric: %d-byte access at unaligned address %v", size, g))
	}
}

// Load8 reads one byte through the node's cache.
func (n *Node) Load8(g GPtr) byte {
	var v byte
	n.withLine(g, 1, false, func(d *[LineSize]byte, off uint64) { v = d[off] })
	return v
}

// Load16 reads an aligned 16-bit value through the node's cache.
func (n *Node) Load16(g GPtr) uint16 {
	n.checkAligned(g, 2)
	var v uint16
	n.withLine(g, 2, false, func(d *[LineSize]byte, off uint64) { v = binary.LittleEndian.Uint16(d[off:]) })
	return v
}

// Load32 reads an aligned 32-bit value through the node's cache.
func (n *Node) Load32(g GPtr) uint32 {
	n.checkAligned(g, 4)
	var v uint32
	n.withLine(g, 4, false, func(d *[LineSize]byte, off uint64) { v = binary.LittleEndian.Uint32(d[off:]) })
	return v
}

// Load64 reads an aligned 64-bit value through the node's cache. The value
// may be stale if another node wrote it and this node has not invalidated.
func (n *Node) Load64(g GPtr) uint64 {
	n.checkAligned(g, 8)
	var v uint64
	n.withLine(g, 8, false, func(d *[LineSize]byte, off uint64) { v = binary.LittleEndian.Uint64(d[off:]) })
	return v
}

// Store8 writes one byte into the node's cache. The byte does not reach
// home memory until the line is written back.
func (n *Node) Store8(g GPtr, v byte) {
	n.withLine(g, 1, true, func(d *[LineSize]byte, off uint64) { d[off] = v })
}

// Store16 writes an aligned 16-bit value into the node's cache.
func (n *Node) Store16(g GPtr, v uint16) {
	n.checkAligned(g, 2)
	n.withLine(g, 2, true, func(d *[LineSize]byte, off uint64) { binary.LittleEndian.PutUint16(d[off:], v) })
}

// Store32 writes an aligned 32-bit value into the node's cache.
func (n *Node) Store32(g GPtr, v uint32) {
	n.checkAligned(g, 4)
	n.withLine(g, 4, true, func(d *[LineSize]byte, off uint64) { binary.LittleEndian.PutUint32(d[off:], v) })
}

// Store64 writes an aligned 64-bit value into the node's cache.
func (n *Node) Store64(g GPtr, v uint64) {
	n.checkAligned(g, 8)
	n.withLine(g, 8, true, func(d *[LineSize]byte, off uint64) { binary.LittleEndian.PutUint64(d[off:], v) })
}

// bulkAccess runs fn over every line-chunk of [g, g+total) through the
// cache, then charges ONE pipelined transfer cost for the whole range:
// missed lines stream at PerLineNS after the first line's full latency,
// hit lines cost local accesses. This models how real interconnects move
// bulk data (pipelined line fetches), unlike the independent-miss charging
// of the word-granularity ops.
func (n *Node) bulkAccess(g GPtr, total uint64, write bool, fn func(d *[LineSize]byte, off, done, chunk uint64)) {
	n.checkAlive()
	n.fab.checkRange(g, total)
	missBefore := n.stats.Misses.Load()
	hitBefore := n.stats.Hits.Load()
	nsBefore := n.stats.VirtualNS.Load()
	done := uint64(0)
	for done < total {
		cur := g.Add(done)
		inLine := LineSize - uint64(cur)%LineSize
		chunk := min(inLine, total-done)
		n.withLine(cur, chunk, write, func(d *[LineSize]byte, off uint64) {
			fn(d, off, done, chunk)
		})
		done += chunk
	}
	// Replace the per-line charges accrued inside withLine with one
	// aggregate pipelined cost.
	perLine := n.stats.VirtualNS.Load() - nsBefore
	misses := n.stats.Misses.Load() - missBefore
	hits := n.stats.Hits.Load() - hitBefore
	agg := 0
	if misses > 0 {
		agg += n.globalCost(int(misses))
	}
	if hits > 0 {
		agg += int(hits) * n.fab.lat.LocalNS
	}
	if n.fab.lat.Mode != LatencyOff {
		// Undo the inline charge, apply the aggregate (accounting only; in
		// spin mode the inline spin already approximates the cost and we
		// simply correct the ledger).
		n.stats.VirtualNS.Add(uint64(agg) - perLine)
	}
}

// Read copies len(buf) bytes starting at g into buf, through the cache,
// charged as one pipelined bulk transfer.
func (n *Node) Read(g GPtr, buf []byte) {
	total := uint64(len(buf))
	n.bulkAccess(g, total, false, func(d *[LineSize]byte, off, done, chunk uint64) {
		copy(buf[done:done+chunk], d[off:off+chunk])
	})
	n.stats.BulkBytesRead.Add(total)
}

// Write copies data into global memory starting at g, through the cache,
// charged as one pipelined bulk transfer. The data reaches home memory
// only after write-back.
func (n *Node) Write(g GPtr, data []byte) {
	total := uint64(len(data))
	n.bulkAccess(g, total, true, func(d *[LineSize]byte, off, done, chunk uint64) {
		copy(d[off:off+chunk], data[done:done+chunk])
	})
	n.stats.BulkBytesWritten.Add(total)
}

// --- Fabric atomics: bypass the cache, operate on home memory ---

func (n *Node) atomicPre(g GPtr) uint64 {
	n.checkAlive()
	n.fab.checkRange(g, WordSize)
	n.checkAligned(g, WordSize)
	n.stats.Atomics.Add(1)
	n.charge(n.fab.lat.AtomicNS + n.totalHops()*n.fab.lat.HopNS)
	return uint64(g) / WordSize
}

// AtomicLoad64 reads a word directly from home memory.
func (n *Node) AtomicLoad64(g GPtr) uint64 {
	w := n.atomicPre(g)
	return atomic.LoadUint64(&n.fab.words[w])
}

// AtomicStore64 writes a word directly to home memory.
func (n *Node) AtomicStore64(g GPtr, v uint64) {
	w := n.atomicPre(g)
	atomic.StoreUint64(&n.fab.words[w], v)
}

// CAS64 atomically compares-and-swaps a home-memory word.
func (n *Node) CAS64(g GPtr, old, new uint64) bool {
	w := n.atomicPre(g)
	return atomic.CompareAndSwapUint64(&n.fab.words[w], old, new)
}

// Add64 atomically adds delta to a home-memory word and returns the new value.
func (n *Node) Add64(g GPtr, delta uint64) uint64 {
	w := n.atomicPre(g)
	return atomic.AddUint64(&n.fab.words[w], delta)
}

// Swap64 atomically exchanges a home-memory word, returning the old value.
func (n *Node) Swap64(g GPtr, v uint64) uint64 {
	w := n.atomicPre(g)
	return atomic.SwapUint64(&n.fab.words[w], v)
}

// Fence is a full memory barrier. Go's atomics already order the simulated
// operations; Fence exists so algorithm code documents its ordering points
// and pays the modeled cost.
func (n *Node) Fence() {
	n.checkAlive()
	n.stats.Fences.Add(1)
	n.charge(n.fab.lat.FenceNS)
	if n.hooked.Load() {
		n.fireOp(OpFence, 0, 0)
	}
}

// --- Cache maintenance ---
//
// The ranged operations are the fabric's batch fast path: every call takes
// the cache lock exactly ONCE, harvests the affected lines into a stack
// buffer, and finishes outside the lock with one batched home transfer,
// one summed stats update, one latency charge and (at most) one ranged op
// event. Per-line bookkeeping inside the loops uses plain locals — the
// single lock acquisition already serializes the harvest, so the per-line
// atomics the old line-at-a-time path paid are pure overhead.

// wbHarvestCap is how many dirty lines the ranged write-back paths buffer
// on the stack before spilling to the heap. 64 lines (one 4 KiB page of
// payload) covers every range the hot subsystems flush in one call.
// wbSmallCap is the tier below it: Go zero-initializes a declared array,
// and paying a ~4.6 KiB memclr on a one-line write-back (the trace
// emitter's per-event publish) would eat most of the batching win, so
// narrow ranges get a one-line-wide buffer instead.
const (
	wbHarvestCap = 64
	wbSmallCap   = 4
)

// wbEntry is one harvested dirty line awaiting its home write.
type wbEntry struct {
	li   uint64
	data [LineSize]byte
}

// harvestRange walks [first, last] under one cache-lock acquisition,
// appending every dirty line to buf (cleaning it in place) and, when drop
// is set, discarding every resident line in the range (the flush path).
// It returns the grown buffer and how many lines were dropped.
func (n *Node) harvestRange(first, last uint64, buf []wbEntry, drop bool) ([]wbEntry, uint64) {
	c := n.cache
	dropped := uint64(0)
	c.mu.Lock()
	c.maintLocks++
	for li := first; li <= last; li++ {
		ln := c.lines[li]
		if ln == nil {
			continue
		}
		if ln.dirty {
			ln.dirty = false
			buf = append(buf, wbEntry{li: li, data: ln.data})
		}
		if drop {
			delete(c.lines, li)
			dropped++
		}
	}
	c.mu.Unlock()
	return buf, dropped
}

// finishWriteBack commits a harvested batch: the dirty lines stream home
// in ascending line order (ascending order is load-bearing for the fault
// injector's deterministic replay and for trace's payload-before-sequence
// line commit), then the node pays ONE pipelined burst charge, ONE summed
// stats update and ONE ranged op event for the whole batch.
func (n *Node) finishWriteBack(buf []wbEntry) {
	if len(buf) == 0 {
		return
	}
	faults := n.fab.writeLinesHome(buf)
	if faults > 0 {
		n.stats.FaultsInjected.Add(faults)
	}
	n.stats.WriteBacks.Add(uint64(len(buf)))
	// One pipelined burst for the whole range, like hardware
	// write-combining, rather than independent line round trips.
	n.charge(n.globalCost(len(buf)))
	if n.hooked.Load() {
		n.fireOp(OpWriteBackRange, buf[0].li, uint64(len(buf)))
	}
}

// WriteBackRange pushes every dirty cached line overlapping [g, g+size) to
// home memory. Lines stay resident and become clean.
func (n *Node) WriteBackRange(g GPtr, size uint64) {
	n.checkAlive()
	if size == 0 {
		return
	}
	n.fab.checkRange(g, size)
	first, last := LineSpan(g, size)
	if last-first < wbSmallCap {
		var stack [wbSmallCap]wbEntry
		buf, _ := n.harvestRange(first, last, stack[:0], false)
		n.finishWriteBack(buf)
		return
	}
	var stack [wbHarvestCap]wbEntry
	buf, _ := n.harvestRange(first, last, stack[:0], false)
	n.finishWriteBack(buf)
}

// InvalidateRange discards every cached line overlapping [g, g+size).
// Dirty data in those lines is LOST, exactly like an invalidate-without-
// write-back instruction; use FlushRange to keep it.
func (n *Node) InvalidateRange(g GPtr, size uint64) {
	n.checkAlive()
	if size == 0 {
		return
	}
	n.fab.checkRange(g, size)
	first, last := LineSpan(g, size)
	c := n.cache
	dropped := uint64(0)
	c.mu.Lock()
	c.maintLocks++
	for li := first; li <= last; li++ {
		if _, ok := c.lines[li]; ok {
			delete(c.lines, li)
			dropped++
		}
	}
	c.mu.Unlock()
	if dropped > 0 {
		n.stats.Invalidates.Add(dropped)
	}
	n.charge(n.fab.lat.LocalNS)
}

// FlushRange writes back then invalidates every line in [g, g+size): after
// it returns, home memory holds this node's writes and the next load
// re-fetches from home. The write-back and the invalidate share one
// single-pass harvest under one lock acquisition.
func (n *Node) FlushRange(g GPtr, size uint64) {
	n.checkAlive()
	if size == 0 {
		return
	}
	n.fab.checkRange(g, size)
	first, last := LineSpan(g, size)
	if last-first < wbSmallCap {
		var stack [wbSmallCap]wbEntry
		buf, dropped := n.harvestRange(first, last, stack[:0], true)
		n.finishWriteBack(buf)
		if dropped > 0 {
			n.stats.Invalidates.Add(dropped)
		}
		n.charge(n.fab.lat.LocalNS)
		return
	}
	var stack [wbHarvestCap]wbEntry
	buf, dropped := n.harvestRange(first, last, stack[:0], true)
	n.finishWriteBack(buf)
	if dropped > 0 {
		n.stats.Invalidates.Add(dropped)
	}
	n.charge(n.fab.lat.LocalNS)
}

// WriteBackAll pushes every dirty line in the node's cache to home memory.
// The batch streams home in ascending line order — deterministic, unlike
// the map's iteration order, so fault-injection replays are stable.
func (n *Node) WriteBackAll() {
	n.checkAlive()
	c := n.cache
	c.mu.Lock()
	c.maintLocks++
	buf := make([]wbEntry, 0, len(c.lines))
	for li, ln := range c.lines {
		if ln.dirty {
			ln.dirty = false
			buf = append(buf, wbEntry{li: li, data: ln.data})
		}
	}
	c.mu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i].li < buf[j].li })
	n.finishWriteBack(buf)
}

// InvalidateAll empties the node's cache, losing dirty data.
func (n *Node) InvalidateAll() {
	n.checkAlive()
	c := n.cache
	c.mu.Lock()
	c.maintLocks++
	dropped := len(c.lines)
	c.reset()
	c.mu.Unlock()
	n.stats.Invalidates.Add(uint64(dropped))
	n.charge(n.fab.lat.LocalNS)
}

// FlushAll writes back every dirty line, then empties the cache.
func (n *Node) FlushAll() {
	n.WriteBackAll()
	n.InvalidateAll()
}

// --- Cost hooks for the layers above ---

// ChargeLocal charges the cost of one node-local memory access. Higher
// layers use it to model work on private (non-fabric) data.
func (n *Node) ChargeLocal() { n.charge(n.fab.lat.LocalNS) }

// ChargeNS charges an arbitrary modeled cost, e.g. software-stack
// processing in the networking baseline.
func (n *Node) ChargeNS(ns int) { n.charge(ns) }
