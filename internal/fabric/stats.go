package fabric

import "sync/atomic"

// NodeStats holds a node's memory-traffic counters. Counters are updated
// with atomics; read a consistent view via snapshot.
type NodeStats struct {
	Loads            atomic.Uint64
	Stores           atomic.Uint64
	Hits             atomic.Uint64
	Misses           atomic.Uint64
	WriteBacks       atomic.Uint64
	Invalidates      atomic.Uint64
	Atomics          atomic.Uint64
	Fences           atomic.Uint64
	BulkBytesRead    atomic.Uint64
	BulkBytesWritten atomic.Uint64
	VirtualNS        atomic.Uint64
}

// NodeStatsSnapshot is a point-in-time copy of NodeStats.
type NodeStatsSnapshot struct {
	Loads            uint64
	Stores           uint64
	Hits             uint64
	Misses           uint64
	WriteBacks       uint64
	Invalidates      uint64
	Atomics          uint64
	Fences           uint64
	BulkBytesRead    uint64
	BulkBytesWritten uint64
	VirtualNS        uint64
}

func (s *NodeStats) snapshot() NodeStatsSnapshot {
	return NodeStatsSnapshot{
		Loads:            s.Loads.Load(),
		Stores:           s.Stores.Load(),
		Hits:             s.Hits.Load(),
		Misses:           s.Misses.Load(),
		WriteBacks:       s.WriteBacks.Load(),
		Invalidates:      s.Invalidates.Load(),
		Atomics:          s.Atomics.Load(),
		Fences:           s.Fences.Load(),
		BulkBytesRead:    s.BulkBytesRead.Load(),
		BulkBytesWritten: s.BulkBytesWritten.Load(),
		VirtualNS:        s.VirtualNS.Load(),
	}
}

func (s *NodeStats) reset() {
	s.Loads.Store(0)
	s.Stores.Store(0)
	s.Hits.Store(0)
	s.Misses.Store(0)
	s.WriteBacks.Store(0)
	s.Invalidates.Store(0)
	s.Atomics.Store(0)
	s.Fences.Store(0)
	s.BulkBytesRead.Store(0)
	s.BulkBytesWritten.Store(0)
	s.VirtualNS.Store(0)
}

// RackStats aggregates every node's counters.
func (f *Fabric) RackStats() NodeStatsSnapshot {
	var agg NodeStatsSnapshot
	for _, n := range f.nodes {
		s := n.Stats()
		agg.Loads += s.Loads
		agg.Stores += s.Stores
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.WriteBacks += s.WriteBacks
		agg.Invalidates += s.Invalidates
		agg.Atomics += s.Atomics
		agg.Fences += s.Fences
		agg.BulkBytesRead += s.BulkBytesRead
		agg.BulkBytesWritten += s.BulkBytesWritten
		agg.VirtualNS += s.VirtualNS
	}
	return agg
}
