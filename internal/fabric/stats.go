package fabric

import "sync/atomic"

// NodeStats holds a node's memory-traffic counters. Counters are updated
// with atomics; read a consistent view via snapshot.
type NodeStats struct {
	Loads            atomic.Uint64
	Stores           atomic.Uint64
	Hits             atomic.Uint64
	Misses           atomic.Uint64
	WriteBacks       atomic.Uint64
	Invalidates      atomic.Uint64
	Atomics          atomic.Uint64
	Fences           atomic.Uint64
	BulkBytesRead    atomic.Uint64
	BulkBytesWritten atomic.Uint64
	VirtualNS        atomic.Uint64
	// Stalls counts charges the node actually waited out: in LatencySpin
	// mode every nonzero charge busy-waits and bumps this counter. In the
	// other modes it stays zero (nothing stalls).
	Stalls atomic.Uint64
	// FaultsInjected counts injector hits this node observed on its
	// write-back path: dropped lines count one each, plus one per
	// corrupted word.
	FaultsInjected atomic.Uint64
}

// NodeStatsSnapshot is a point-in-time copy of NodeStats.
type NodeStatsSnapshot struct {
	Loads            uint64
	Stores           uint64
	Hits             uint64
	Misses           uint64
	WriteBacks       uint64
	Invalidates      uint64
	Atomics          uint64
	Fences           uint64
	BulkBytesRead    uint64
	BulkBytesWritten uint64
	VirtualNS        uint64
	Stalls           uint64
	FaultsInjected   uint64
}

// Delta returns the traffic accrued since prev was taken: s - prev,
// field-wise. Experiments snapshot before and after a phase and report
// the delta instead of process-lifetime totals.
func (s NodeStatsSnapshot) Delta(prev NodeStatsSnapshot) NodeStatsSnapshot {
	return NodeStatsSnapshot{
		Loads:            s.Loads - prev.Loads,
		Stores:           s.Stores - prev.Stores,
		Hits:             s.Hits - prev.Hits,
		Misses:           s.Misses - prev.Misses,
		WriteBacks:       s.WriteBacks - prev.WriteBacks,
		Invalidates:      s.Invalidates - prev.Invalidates,
		Atomics:          s.Atomics - prev.Atomics,
		Fences:           s.Fences - prev.Fences,
		BulkBytesRead:    s.BulkBytesRead - prev.BulkBytesRead,
		BulkBytesWritten: s.BulkBytesWritten - prev.BulkBytesWritten,
		VirtualNS:        s.VirtualNS - prev.VirtualNS,
		Stalls:           s.Stalls - prev.Stalls,
		FaultsInjected:   s.FaultsInjected - prev.FaultsInjected,
	}
}

func (s *NodeStats) snapshot() NodeStatsSnapshot {
	return NodeStatsSnapshot{
		Loads:            s.Loads.Load(),
		Stores:           s.Stores.Load(),
		Hits:             s.Hits.Load(),
		Misses:           s.Misses.Load(),
		WriteBacks:       s.WriteBacks.Load(),
		Invalidates:      s.Invalidates.Load(),
		Atomics:          s.Atomics.Load(),
		Fences:           s.Fences.Load(),
		BulkBytesRead:    s.BulkBytesRead.Load(),
		BulkBytesWritten: s.BulkBytesWritten.Load(),
		VirtualNS:        s.VirtualNS.Load(),
		Stalls:           s.Stalls.Load(),
		FaultsInjected:   s.FaultsInjected.Load(),
	}
}

func (s *NodeStats) reset() {
	s.Loads.Store(0)
	s.Stores.Store(0)
	s.Hits.Store(0)
	s.Misses.Store(0)
	s.WriteBacks.Store(0)
	s.Invalidates.Store(0)
	s.Atomics.Store(0)
	s.Fences.Store(0)
	s.BulkBytesRead.Store(0)
	s.BulkBytesWritten.Store(0)
	s.VirtualNS.Store(0)
	s.Stalls.Store(0)
	s.FaultsInjected.Store(0)
}

// RackStats aggregates every node's counters.
func (f *Fabric) RackStats() NodeStatsSnapshot {
	var agg NodeStatsSnapshot
	for _, n := range f.nodes {
		s := n.Stats()
		agg.Loads += s.Loads
		agg.Stores += s.Stores
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.WriteBacks += s.WriteBacks
		agg.Invalidates += s.Invalidates
		agg.Atomics += s.Atomics
		agg.Fences += s.Fences
		agg.BulkBytesRead += s.BulkBytesRead
		agg.BulkBytesWritten += s.BulkBytesWritten
		agg.VirtualNS += s.VirtualNS
		agg.Stalls += s.Stalls
		agg.FaultsInjected += s.FaultsInjected
	}
	return agg
}
