// Package fabric simulates a memory-interconnected rack: a byte-addressable
// global memory shared by every node, reachable by load/store and fabric
// atomics, but WITHOUT hardware cache coherence.
//
// The simulation models the contract that CXL/HCCS-class interconnects give
// software (per the FlacOS paper, HotStorage '25):
//
//   - Every node may load/store any global address, but plain accesses go
//     through a per-node software-simulated cache of 64-byte lines. A node
//     that cached a line keeps reading its (possibly stale) copy until it
//     explicitly invalidates; a node's stores stay in its cache until it
//     explicitly writes them back. There is no snooping between nodes.
//   - Fabric atomics (AtomicLoad64, AtomicStore64, CAS64, Add64, Swap64)
//     bypass the caches entirely and act on home memory, like non-cacheable
//     fabric atomics. Mixing plain and atomic accesses to the same word
//     requires an explicit invalidate before the plain load observes the
//     atomic's effect.
//   - Global accesses are slower than node-local memory; the latency model
//     charges a per-operation cost (optionally as a real calibrated spin so
//     wall-clock benchmarks reproduce the paper's shapes).
//   - Faults happen: bit flips in home memory, node crashes that discard all
//     not-yet-written-back cache lines, and degraded links. The reliability
//     layers above detect and recover from these.
//
// Global memory is addressed by GPtr offsets, never by Go pointers, so the
// Go garbage collector never sees shared state — the same discipline a real
// shared-memory kernel uses (and the reason a naive GC-managed port of
// kernel data structures cannot work).
package fabric
