package fabric

import "testing"

// The ranged maintenance contract: every call takes the cache lock
// exactly once, no matter how many lines the range covers or how many
// dirty lines it harvests — including ranges that spill past the stack
// harvest buffer.

func dirtyLines(n *Node, g GPtr, lines uint64) {
	for l := uint64(0); l < lines; l++ {
		n.Store64(g.Add(l*LineSize), l+1)
	}
}

func TestRangedOpsTakeCacheLockOncePerCall(t *testing.T) {
	f := New(Config{GlobalSize: 1 << 20, Nodes: 1, CacheCapacityLines: -1})
	n := f.Node(0)
	g := f.Reserve(256*LineSize, LineSize)

	calls := []struct {
		name string
		prep func()
		op   func()
	}{
		{"WriteBackRange/small", func() { dirtyLines(n, g, 2) },
			func() { n.WriteBackRange(g, 2*LineSize) }},
		{"WriteBackRange/stack", func() { dirtyLines(n, g, 64) },
			func() { n.WriteBackRange(g, 64*LineSize) }},
		{"WriteBackRange/spill", func() { dirtyLines(n, g, 200) },
			func() { n.WriteBackRange(g, 200*LineSize) }},
		{"WriteBackRange/clean", func() {},
			func() { n.WriteBackRange(g, 64*LineSize) }},
		{"InvalidateRange", func() { dirtyLines(n, g, 64) },
			func() { n.InvalidateRange(g, 64*LineSize) }},
		{"FlushRange/small", func() { dirtyLines(n, g, 2) },
			func() { n.FlushRange(g, 2*LineSize) }},
		{"FlushRange/spill", func() { dirtyLines(n, g, 200) },
			func() { n.FlushRange(g, 200*LineSize) }},
		{"WriteBackAll", func() { dirtyLines(n, g, 64) },
			func() { n.WriteBackAll() }},
		{"InvalidateAll", func() { dirtyLines(n, g, 64) },
			func() { n.InvalidateAll() }},
	}
	for _, c := range calls {
		c.prep()
		before := n.cache.maintLockCount()
		c.op()
		if got := n.cache.maintLockCount() - before; got != 1 {
			t.Errorf("%s acquired the cache lock %d times, want exactly 1", c.name, got)
		}
	}

	// Zero-size ranged calls return before touching the cache at all.
	before := n.cache.maintLockCount()
	n.WriteBackRange(g, 0)
	n.InvalidateRange(g, 0)
	n.FlushRange(g, 0)
	if got := n.cache.maintLockCount() - before; got != 0 {
		t.Errorf("zero-size ranged ops acquired the cache lock %d times, want 0", got)
	}
}

// TestWriteBackRangeSpillsPastStackBuffer pins correctness (not just lock
// count) when the dirty harvest exceeds wbHarvestCap and the buffer moves
// to the heap: every line still reaches home, once, in one stats bump.
func TestWriteBackRangeSpillsPastStackBuffer(t *testing.T) {
	const lines = wbHarvestCap*3 + 7
	f := New(Config{GlobalSize: 1 << 20, Nodes: 1, CacheCapacityLines: -1})
	n := f.Node(0)
	g := f.Reserve(lines*LineSize, LineSize)
	dirtyLines(n, g, lines)

	before := n.Stats()
	n.WriteBackRange(g, lines*LineSize)
	d := n.Stats().Delta(before)
	if d.WriteBacks != lines {
		t.Fatalf("WriteBacks delta = %d, want %d", d.WriteBacks, lines)
	}
	for l := uint64(0); l < lines; l++ {
		var word [8]byte
		f.ReadAtHome(g.Add(l*LineSize), word[:])
		if got := uint64(word[0]) | uint64(word[1])<<8 | uint64(word[2])<<16 | uint64(word[3])<<24 |
			uint64(word[4])<<32 | uint64(word[5])<<40 | uint64(word[6])<<48 | uint64(word[7])<<56; got != l+1 {
			t.Fatalf("line %d home word = %d, want %d", l, got, l+1)
		}
	}
}

// TestRangedVirtualCostMatchesPerLine pins the virtual-time contract the
// differential suite relies on: batching changes wall cost only — the
// modeled (virtual) charge for a ranged write-back equals the pinned
// per-line baseline's to the nanosecond.
func TestRangedVirtualCostMatchesPerLine(t *testing.T) {
	mk := func() (*Fabric, *Node, GPtr) {
		f := New(Config{GlobalSize: 1 << 20, Nodes: 1, CacheCapacityLines: -1,
			Latency: DefaultLatency()})
		return f, f.Node(0), f.Reserve(64*LineSize, LineSize)
	}
	fa, na, ga := mk()
	fb, nb, gb := mk()
	_ = fa
	_ = fb
	dirtyLines(na, ga, 16)
	dirtyLines(nb, gb, 16)
	va, vb := na.VirtualNS(), nb.VirtualNS()
	na.WriteBackRange(ga, 16*LineSize)
	nb.WriteBackRangePerLine(gb, 16*LineSize)
	if da, db := na.VirtualNS()-va, nb.VirtualNS()-vb; da != db {
		t.Errorf("ranged write-back charged %d virtual ns, per-line baseline %d", da, db)
	}
}

// TestFlushRangeSinglePass pins FlushRange's fused semantics: dirty data
// reaches home, the lines leave the cache, and the stats agree with the
// two-pass legacy flush.
func TestFlushRangeSinglePass(t *testing.T) {
	f := New(Config{GlobalSize: 1 << 20, Nodes: 1, CacheCapacityLines: -1})
	n := f.Node(0)
	g := f.Reserve(9*LineSize, LineSize)
	dirtyLines(n, g, 8)
	n.Load64(g.Add(8 * LineSize)) // clean resident line outside the flushed range

	before := n.Stats()
	n.FlushRange(g, 4*LineSize)
	d := n.Stats().Delta(before)
	if d.WriteBacks != 4 || d.Invalidates != 4 {
		t.Errorf("flush delta write-backs=%d invalidates=%d, want 4/4", d.WriteBacks, d.Invalidates)
	}
	if res := n.cache.resident(); res != 5 { // 4 dirty lines + 1 clean load survive
		t.Errorf("resident lines after flush = %d, want 5", res)
	}
	var w [8]byte
	f.ReadAtHome(g.Add(2*LineSize), w[:])
	if w[0] != 3 { // dirtyLines stored l+1
		t.Errorf("flushed line did not reach home: got %d", w[0])
	}
}
