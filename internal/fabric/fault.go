package fabric

import (
	"math/rand"
	"sync"
	"sync/atomic"
)

// FaultInjector produces the fault classes the paper says a rack-scale
// shared memory must survive: silent bit corruption (shrinking transistor
// geometry, manufacturing defects), lost updates (a write-back that never
// reaches home across the multi-hop fabric), and whole-node failures
// (handled by Node.Crash). All randomness is seeded and mutex-serialized so
// fault scenarios replay deterministically.
type FaultInjector struct {
	mu  sync.Mutex
	rng *rand.Rand

	// corruptRate is the probability that a word written back to home
	// memory has one bit flipped, expressed in flips per million words.
	corruptRate atomic.Uint64
	// dropRate is the probability that an entire line write-back is
	// silently dropped, in drops per million write-backs.
	dropRate atomic.Uint64

	bitFlips     atomic.Uint64
	droppedLines atomic.Uint64
}

func newFaultInjector(seed int64) *FaultInjector {
	if seed == 0 {
		seed = 1
	}
	return &FaultInjector{rng: rand.New(rand.NewSource(seed))}
}

// SetCorruptionRate sets the per-word bit-flip probability on the write
// path, in parts per million. Zero disables corruption.
func (fi *FaultInjector) SetCorruptionRate(ppm uint64) { fi.corruptRate.Store(ppm) }

// SetDropWriteBackRate sets the probability that a line write-back is
// silently lost, in parts per million. Zero disables drops.
func (fi *FaultInjector) SetDropWriteBackRate(ppm uint64) { fi.dropRate.Store(ppm) }

// CorruptionRate returns the current bit-flip rate in parts per million.
func (fi *FaultInjector) CorruptionRate() uint64 { return fi.corruptRate.Load() }

// DropWriteBackRate returns the current write-back drop rate in ppm.
func (fi *FaultInjector) DropWriteBackRate() uint64 { return fi.dropRate.Load() }

// BitFlips returns how many bits the injector has flipped so far.
func (fi *FaultInjector) BitFlips() uint64 { return fi.bitFlips.Load() }

// DroppedWriteBacks returns how many line write-backs were lost.
func (fi *FaultInjector) DroppedWriteBacks() uint64 { return fi.droppedLines.Load() }

func (fi *FaultInjector) roll(ppm uint64) bool {
	if ppm == 0 {
		return false
	}
	fi.mu.Lock()
	hit := uint64(fi.rng.Intn(1_000_000)) < ppm
	fi.mu.Unlock()
	return hit
}

// corruptOnWrite possibly flips one random bit of v on its way to home
// memory.
func (fi *FaultInjector) corruptOnWrite(v uint64) uint64 {
	if !fi.roll(fi.corruptRate.Load()) {
		return v
	}
	fi.mu.Lock()
	bit := uint(fi.rng.Intn(64))
	fi.mu.Unlock()
	fi.bitFlips.Add(1)
	return v ^ (1 << bit)
}

// dropWriteBack decides whether an entire line write-back is lost.
func (fi *FaultInjector) dropWriteBack() bool {
	if fi.roll(fi.dropRate.Load()) {
		fi.droppedLines.Add(1)
		return true
	}
	return false
}

// FlipBitAtHome deterministically flips bit (0-63) of the aligned word at g
// in home memory, modeling an at-rest memory error. Tests and the fault-box
// experiments use it to place faults precisely.
func (fi *FaultInjector) FlipBitAtHome(f *Fabric, g GPtr, bit uint) {
	f.checkRange(g, WordSize)
	if !g.AlignedTo(WordSize) {
		panic("fabric: FlipBitAtHome requires word alignment")
	}
	w := uint64(g) / WordSize
	for {
		old := f.homeLoadWord(w)
		if atomic.CompareAndSwapUint64(&f.words[w], old, old^(1<<bit)) {
			fi.bitFlips.Add(1)
			return
		}
	}
}
