package fabric

import (
	"sync/atomic"
	"time"
)

// LatencyMode selects how the latency model charges memory-operation costs.
type LatencyMode int

const (
	// LatencyOff charges nothing. Unit tests use this.
	LatencyOff LatencyMode = iota
	// LatencyAccount accumulates virtual nanoseconds in per-node counters
	// without delaying execution. Deterministic experiments use this.
	LatencyAccount
	// LatencySpin both accounts and busy-waits for the charged duration so
	// wall-clock benchmark comparisons reproduce the modeled cost ratios.
	LatencySpin
)

// LatencyModel describes the cost, in nanoseconds, of the rack's memory
// operations. The defaults approximate published CXL/HCCS numbers: local
// DRAM ~100 ns, one-hop global memory 3-6x that, fabric atomics costlier
// still because they round-trip to the memory device.
type LatencyModel struct {
	Mode LatencyMode

	// LocalNS is the cost of a node-local memory access (a cache hit in the
	// simulated node cache is considered local).
	LocalNS int
	// GlobalNS is the base cost of reaching home global memory (a cache
	// miss, a write-back, or one line of a bulk transfer).
	GlobalNS int
	// HopNS is added per interconnect hop between the node and home memory.
	HopNS int
	// AtomicNS is the cost of one fabric atomic (always reaches home).
	AtomicNS int
	// FenceNS is the cost of a memory barrier.
	FenceNS int
	// PerLineNS is the incremental cost per additional cache line in a bulk
	// transfer after the first (models pipelined line fetches).
	PerLineNS int
	// ColdNS is the surcharge for one access that reaches the rack's cold
	// (capacity / modeled-persistent) memory tier instead of the premium
	// global tier: a second device hop plus media latency, in the regime of
	// NVM or far-memory numbers rather than DRAM. Charged on top of the
	// ordinary global cost by consumers that place pages in the cold tier
	// (memsys demotion); the fabric itself has no per-line cold state.
	ColdNS int
}

// DefaultLatency returns the latency model used by the experiment harness:
// accounting-only by default so results are deterministic; benchmarks flip
// Mode to LatencySpin.
func DefaultLatency() LatencyModel {
	return LatencyModel{
		Mode:      LatencyAccount,
		LocalNS:   100,
		GlobalNS:  450,
		HopNS:     80,
		AtomicNS:  600,
		FenceNS:   30,
		PerLineNS: 20,   // pipelined bulk: ~3 GB/s per-node streaming
		ColdNS:    1350, // capacity tier: ~3x the one-hop global round trip
	}
}

// spinCalibration is the number of iterations of the calibration loop that
// take one nanosecond, fixed-point scaled by spinScale. Calibrated once, at
// first use.
var (
	spinPerNS   atomic.Uint64 // iterations per ns, scaled by spinScale
	spinOnce    atomic.Bool
	spinSink    atomic.Uint64
	spinPending atomic.Bool
)

const spinScale = 1024

func calibrateSpin() {
	if !spinPending.CompareAndSwap(false, true) {
		// Another goroutine is calibrating; spin until done.
		for !spinOnce.Load() {
		}
		return
	}
	const iters = 4 << 20
	start := time.Now()
	var s uint64
	for i := 0; i < iters; i++ {
		s += uint64(i) ^ (s >> 3)
	}
	spinSink.Add(s)
	el := time.Since(start).Nanoseconds()
	if el < 1 {
		el = 1
	}
	per := uint64(iters) * spinScale / uint64(el)
	if per == 0 {
		per = 1
	}
	spinPerNS.Store(per)
	spinOnce.Store(true)
}

// spinWait busy-loops for approximately ns nanoseconds using a calibrated
// arithmetic loop (no syscalls, no timer churn).
func spinWait(ns int64) {
	if ns <= 0 {
		return
	}
	if !spinOnce.Load() {
		calibrateSpin()
	}
	iters := uint64(ns) * spinPerNS.Load() / spinScale
	var s uint64
	for i := uint64(0); i < iters; i++ {
		s += i ^ (s >> 3)
	}
	spinSink.Add(s)
}

// charge applies the latency model for a cost of ns nanoseconds on behalf of
// node n: it always accumulates virtual time, and in LatencySpin mode it
// also busy-waits.
func (n *Node) charge(ns int) {
	if ns <= 0 || n.fab.lat.Mode == LatencyOff {
		return
	}
	n.stats.VirtualNS.Add(uint64(ns))
	if n.fab.lat.Mode == LatencySpin {
		n.stats.Stalls.Add(1)
		spinWait(int64(ns))
	}
}

// ChargeColdAccess charges node n the cold-tier surcharge for one access
// touching lines cache lines: ColdNS for the media round trip plus the
// usual pipelined per-line cost for lines beyond the first. Callers charge
// this in addition to the ordinary global cost, mirroring how a far-memory
// access still traverses the interconnect before reaching the device.
func (n *Node) ChargeColdAccess(lines int) {
	c := n.fab.lat.ColdNS
	if lines > 1 {
		c += (lines - 1) * n.fab.lat.PerLineNS
	}
	n.charge(c)
}

// globalCost returns the modeled cost of one home-memory access from node n,
// including hop costs, plus PerLineNS for each line beyond the first.
func (n *Node) globalCost(lines int) int {
	c := n.fab.lat.GlobalNS + n.totalHops()*n.fab.lat.HopNS
	if lines > 1 {
		c += (lines - 1) * n.fab.lat.PerLineNS
	}
	return c
}
