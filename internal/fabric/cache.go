package fabric

import "sync"

// cacheLine is one 64-byte line held in a node's simulated cache.
type cacheLine struct {
	data  [LineSize]byte
	dirty bool
}

// cache is a node's private, software-simulated cache of global memory.
// There is no coherence traffic between caches: a line stays as fetched (or
// as locally written) until the owning node invalidates or writes it back.
type cache struct {
	mu       sync.Mutex
	lines    map[uint64]*cacheLine
	capacity int // max resident lines; 0 means unlimited
	// maintLocks counts lock acquisitions by the explicit cache-maintenance
	// paths (ranged write-back/invalidate/flush and the *All variants).
	// Guarded by mu; a plain counter so the hot path pays one increment,
	// not an atomic. Tests use it to pin the "one lock acquisition per
	// ranged call" contract.
	maintLocks uint64
}

func newCache(capacity int) *cache {
	return &cache{lines: make(map[uint64]*cacheLine), capacity: capacity}
}

// lookup returns the resident line for index li, or nil.
// Caller holds c.mu.
func (c *cache) lookup(li uint64) *cacheLine { return c.lines[li] }

// insert adds a line, evicting a victim if at capacity. It returns the
// victim's index and line if a dirty line was evicted (the caller must write
// it back to home memory), else (0, nil).
// Caller holds c.mu.
func (c *cache) insert(li uint64, ln *cacheLine) (uint64, *cacheLine) {
	var victimIdx uint64
	var victim *cacheLine
	if c.capacity > 0 && len(c.lines) >= c.capacity {
		// Evict an arbitrary line (map order); real caches use LRU/clock but
		// the choice only perturbs the miss rate, not correctness.
		for idx, l := range c.lines {
			delete(c.lines, idx)
			if l.dirty {
				victimIdx, victim = idx, l
			}
			break
		}
	}
	c.lines[li] = ln
	return victimIdx, victim
}

// reset discards every line (crash, or InvalidateAll).
// Caller holds c.mu.
func (c *cache) reset() { c.lines = make(map[uint64]*cacheLine) }

// resident returns the number of lines currently cached.
func (c *cache) resident() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.lines)
}

// maintLockCount returns how many times a maintenance path has acquired
// the cache lock. Test-only observability for the one-lock-per-call
// contract of the ranged operations.
func (c *cache) maintLockCount() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maintLocks
}
