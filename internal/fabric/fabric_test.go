package fabric

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func testFabric(t *testing.T, nodes int) *Fabric {
	t.Helper()
	return New(Config{GlobalSize: 1 << 20, Nodes: nodes})
}

func TestGPtrHelpers(t *testing.T) {
	g := GPtr(130)
	if g.Line() != 2 {
		t.Fatalf("Line() = %d, want 2", g.Line())
	}
	if g.LineStart() != GPtr(128) {
		t.Fatalf("LineStart() = %v, want 128", g.LineStart())
	}
	if g.AlignUp(64) != GPtr(192) {
		t.Fatalf("AlignUp(64) = %v, want 192", g.AlignUp(64))
	}
	if !GPtr(128).AlignedTo(64) || GPtr(129).AlignedTo(64) {
		t.Fatal("AlignedTo wrong")
	}
	if g.Add(6).Diff(g) != 6 {
		t.Fatal("Add/Diff mismatch")
	}
	if !Nil.IsNil() || g.IsNil() {
		t.Fatal("IsNil wrong")
	}
	if Nil.String() != "g<nil>" {
		t.Fatalf("String() = %q", Nil.String())
	}
}

func TestStoreLoadRoundTripSameNode(t *testing.T) {
	f := testFabric(t, 1)
	n := f.Node(0)
	g := f.Reserve(64, 64)

	n.Store64(g, 0xdeadbeefcafe)
	if got := n.Load64(g); got != 0xdeadbeefcafe {
		t.Fatalf("Load64 = %#x", got)
	}
	n.Store32(g.Add(8), 0x1234)
	if got := n.Load32(g.Add(8)); got != 0x1234 {
		t.Fatalf("Load32 = %#x", got)
	}
	n.Store16(g.Add(12), 0xbeef)
	if got := n.Load16(g.Add(12)); got != 0xbeef {
		t.Fatalf("Load16 = %#x", got)
	}
	n.Store8(g.Add(14), 0x7f)
	if got := n.Load8(g.Add(14)); got != 0x7f {
		t.Fatalf("Load8 = %#x", got)
	}
}

func TestDirtyDataInvisibleUntilWriteBack(t *testing.T) {
	f := testFabric(t, 2)
	w, r := f.Node(0), f.Node(1)
	g := f.Reserve(64, 64)

	w.Store64(g, 42) // sits dirty in node 0's cache
	if got := r.Load64(g); got != 0 {
		t.Fatalf("reader saw %d before write-back, want 0", got)
	}
	w.WriteBackRange(g, 8)
	r.InvalidateRange(g, 8)
	if got := r.Load64(g); got != 42 {
		t.Fatalf("reader saw %d after write-back+invalidate, want 42", got)
	}
}

func TestStaleReadWithoutInvalidate(t *testing.T) {
	f := testFabric(t, 2)
	w, r := f.Node(0), f.Node(1)
	g := f.Reserve(64, 64)

	w.Store64(g, 1)
	w.WriteBackRange(g, 8)
	if got := r.Load64(g); got != 1 {
		t.Fatalf("first read = %d, want 1", got)
	}
	// Node 0 updates and writes back, but node 1 never invalidates: the
	// fabric gives no coherence, so node 1 keeps seeing its cached copy.
	w.Store64(g, 2)
	w.WriteBackRange(g, 8)
	if got := r.Load64(g); got != 1 {
		t.Fatalf("stale read = %d, want 1 (no invalidate issued)", got)
	}
	r.InvalidateRange(g, 8)
	if got := r.Load64(g); got != 2 {
		t.Fatalf("read after invalidate = %d, want 2", got)
	}
}

func TestAtomicsBypassCache(t *testing.T) {
	f := testFabric(t, 2)
	a, b := f.Node(0), f.Node(1)
	g := f.Reserve(64, 64)

	a.AtomicStore64(g, 7)
	if got := b.AtomicLoad64(g); got != 7 {
		t.Fatalf("AtomicLoad64 = %d, want 7", got)
	}
	if !b.CAS64(g, 7, 8) {
		t.Fatal("CAS64 should succeed")
	}
	if b.CAS64(g, 7, 9) {
		t.Fatal("CAS64 should fail on stale expected value")
	}
	if got := a.Add64(g, 2); got != 10 {
		t.Fatalf("Add64 = %d, want 10", got)
	}
	if old := a.Swap64(g, 100); old != 10 {
		t.Fatalf("Swap64 old = %d, want 10", old)
	}
	if got := b.AtomicLoad64(g); got != 100 {
		t.Fatalf("AtomicLoad64 = %d, want 100", got)
	}
}

func TestPlainLoadDoesNotSeeAtomicWithoutInvalidate(t *testing.T) {
	f := testFabric(t, 1)
	n := f.Node(0)
	g := f.Reserve(64, 64)

	if got := n.Load64(g); got != 0 { // caches the line
		t.Fatalf("initial load = %d", got)
	}
	n.AtomicStore64(g, 5) // goes straight to home, cache untouched
	if got := n.Load64(g); got != 0 {
		t.Fatalf("plain load = %d, want stale 0", got)
	}
	n.InvalidateRange(g, 8)
	if got := n.Load64(g); got != 5 {
		t.Fatalf("load after invalidate = %d, want 5", got)
	}
}

func TestBulkReadWrite(t *testing.T) {
	f := testFabric(t, 2)
	w, r := f.Node(0), f.Node(1)
	const sz = 1000 // deliberately not line-aligned
	g := f.Reserve(sz, 64).Add(3)

	data := make([]byte, sz-3)
	for i := range data {
		data[i] = byte(i * 7)
	}
	w.Write(g, data)
	w.WriteBackRange(g, uint64(len(data)))
	r.InvalidateRange(g, uint64(len(data)))
	got := make([]byte, len(data))
	r.Read(g, got)
	if !bytes.Equal(got, data) {
		t.Fatal("bulk round trip mismatch")
	}
}

func TestInvalidateDiscardsDirtyData(t *testing.T) {
	f := testFabric(t, 1)
	n := f.Node(0)
	g := f.Reserve(64, 64)

	n.Store64(g, 77)
	n.InvalidateRange(g, 8) // dirty line dropped WITHOUT write-back
	if got := n.Load64(g); got != 0 {
		t.Fatalf("load after invalidate = %d, want 0 (dirty data lost)", got)
	}
}

func TestFlushRange(t *testing.T) {
	f := testFabric(t, 2)
	w, r := f.Node(0), f.Node(1)
	g := f.Reserve(64, 64)

	w.Store64(g, 11)
	w.FlushRange(g, 8)
	if got := r.Load64(g); got != 11 {
		t.Fatalf("reader = %d after flush, want 11", got)
	}
	// After the flush the writer's next load must re-fetch from home.
	var home [8]byte
	f.ReadAtHome(g, home[:])
	if home[0] != 11 {
		t.Fatalf("home memory byte = %d, want 11", home[0])
	}
}

func TestWriteBackAllAndFlushAll(t *testing.T) {
	f := testFabric(t, 2)
	w, r := f.Node(0), f.Node(1)
	g := f.Reserve(256, 64)

	for i := uint64(0); i < 4; i++ {
		w.Store64(g.Add(i*64), i+1)
	}
	w.WriteBackAll()
	for i := uint64(0); i < 4; i++ {
		if got := r.Load64(g.Add(i * 64)); got != i+1 {
			t.Fatalf("line %d: reader = %d, want %d", i, got, i+1)
		}
	}
	w.FlushAll()
	if res := w.CacheResidentLines(); res != 0 {
		t.Fatalf("resident lines after FlushAll = %d", res)
	}
}

func TestCrashLosesDirtyLines(t *testing.T) {
	f := testFabric(t, 2)
	a, b := f.Node(0), f.Node(1)
	g := f.Reserve(128, 64)

	a.Store64(g, 1)
	a.WriteBackRange(g, 8)
	a.Store64(g.Add(64), 2) // never written back
	a.Crash()
	if !a.Crashed() {
		t.Fatal("node should be crashed")
	}
	if got := b.Load64(g); got != 1 {
		t.Fatalf("persisted word = %d, want 1", got)
	}
	if got := b.Load64(g.Add(64)); got != 0 {
		t.Fatalf("unflushed word = %d, want 0 (lost in crash)", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("op on crashed node should panic")
			}
		}()
		a.Load64(g)
	}()
	a.Restart()
	if a.Crashed() {
		t.Fatal("node should be alive after Restart")
	}
	if got := a.Load64(g); got != 1 {
		t.Fatalf("restarted node read = %d, want 1", got)
	}
}

func TestCacheEvictionWritesBackDirtyVictim(t *testing.T) {
	f := New(Config{GlobalSize: 1 << 20, Nodes: 2, CacheCapacityLines: 4})
	w, r := f.Node(0), f.Node(1)
	g := f.Reserve(64*64, 64)

	// Dirty many distinct lines; capacity 4 forces evictions, which must
	// write dirty victims back (hardware caches never drop dirty data on
	// capacity pressure).
	for i := uint64(0); i < 32; i++ {
		w.Store64(g.Add(i*64), i+1)
	}
	w.WriteBackAll()
	for i := uint64(0); i < 32; i++ {
		if got := r.Load64(g.Add(i * 64)); got != i+1 {
			t.Fatalf("line %d = %d, want %d", i, got, i+1)
		}
	}
	if res := w.CacheResidentLines(); res > 4 {
		t.Fatalf("resident = %d exceeds capacity 4", res)
	}
}

func TestReserveLayout(t *testing.T) {
	f := testFabric(t, 1)
	a := f.Reserve(10, 64)
	b := f.Reserve(10, 64)
	if !a.AlignedTo(64) || !b.AlignedTo(64) {
		t.Fatal("Reserve alignment violated")
	}
	if a == b || b < a {
		t.Fatalf("overlapping reservations %v %v", a, b)
	}
	if f.Reserved() == 0 {
		t.Fatal("Reserved() should be nonzero")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("exhausting Reserve should panic")
			}
		}()
		f.Reserve(1<<30, 64)
	}()
}

func TestBoundsAndAlignmentPanics(t *testing.T) {
	f := testFabric(t, 1)
	n := f.Node(0)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		fn()
	}
	mustPanic("nil deref", func() { n.Load64(Nil) })
	mustPanic("out of range", func() { n.Load64(GPtr(f.Size())) })
	mustPanic("unaligned 64", func() { n.Load64(GPtr(65)) })
	mustPanic("unaligned atomic", func() { n.AtomicLoad64(GPtr(68)) })
	mustPanic("unaligned 32", func() { n.Load32(GPtr(66)) })
	mustPanic("zero nodes", func() { New(Config{GlobalSize: 1 << 20}) })
	mustPanic("tiny memory", func() { New(Config{GlobalSize: 64, Nodes: 1}) })
	mustPanic("bad hops", func() { New(Config{GlobalSize: 1 << 20, Nodes: 2, Hops: []int{1}}) })
	mustPanic("bad align", func() { f.Reserve(8, 3) })
}

func TestWriteAtHomeReadAtHome(t *testing.T) {
	f := testFabric(t, 1)
	g := f.Reserve(100, 64).Add(5)
	data := []byte("hello, global memory")
	f.WriteAtHome(g, data)
	got := make([]byte, len(data))
	f.ReadAtHome(g, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("home round trip = %q", got)
	}
	// A node load (cold cache) should see the provisioned data too.
	n := f.Node(0)
	nodeGot := make([]byte, len(data))
	n.Read(g, nodeGot)
	if !bytes.Equal(nodeGot, data) {
		t.Fatalf("node read = %q", nodeGot)
	}
}

func TestFaultBitFlipAtHome(t *testing.T) {
	f := testFabric(t, 1)
	n := f.Node(0)
	g := f.Reserve(64, 64)
	n.Store64(g, 0)
	n.FlushRange(g, 8)
	f.Faults().FlipBitAtHome(f, g, 3)
	if got := n.Load64(g); got != 8 {
		t.Fatalf("after bit flip = %d, want 8", got)
	}
	if f.Faults().BitFlips() != 1 {
		t.Fatalf("BitFlips = %d", f.Faults().BitFlips())
	}
}

func TestFaultDropWriteBack(t *testing.T) {
	f := New(Config{GlobalSize: 1 << 20, Nodes: 1, FaultSeed: 7})
	n := f.Node(0)
	f.Faults().SetDropWriteBackRate(1_000_000) // drop everything
	g := f.Reserve(64, 64)
	n.Store64(g, 9)
	n.FlushRange(g, 8)
	if got := n.Load64(g); got != 0 {
		t.Fatalf("dropped write-back still visible: %d", got)
	}
	if f.Faults().DroppedWriteBacks() == 0 {
		t.Fatal("expected dropped write-backs recorded")
	}
}

func TestFaultCorruptionOnWrite(t *testing.T) {
	f := New(Config{GlobalSize: 1 << 20, Nodes: 1, FaultSeed: 11})
	n := f.Node(0)
	f.Faults().SetCorruptionRate(1_000_000) // corrupt every word
	g := f.Reserve(64, 64)
	n.Store64(g, 0)
	n.FlushRange(g, 8)
	// Every written-back word had one bit flipped; at least one of the
	// line's eight words must differ from zero.
	var buf [64]byte
	f.ReadAtHome(g.LineStart(), buf[:])
	allZero := true
	for _, b := range buf {
		if b != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("corruption rate 100% produced no corruption")
	}
	if f.Faults().BitFlips() == 0 {
		t.Fatal("no bit flips recorded")
	}
}

func TestStatsCounters(t *testing.T) {
	f := testFabric(t, 1)
	n := f.Node(0)
	g := f.Reserve(128, 64)
	n.Load64(g) // miss
	n.Load64(g) // hit
	n.Store64(g.Add(8), 1)
	n.WriteBackRange(g, 64)
	n.InvalidateRange(g, 64)
	n.AtomicLoad64(g.Add(64))
	n.Fence()
	s := n.Stats()
	if s.Loads != 2 || s.Misses != 1 || s.Hits != 2 || s.Stores != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.WriteBacks != 1 || s.Invalidates != 1 || s.Atomics != 1 || s.Fences != 1 {
		t.Fatalf("stats = %+v", s)
	}
	n.ResetStats()
	if n.Stats().Loads != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestLatencyAccounting(t *testing.T) {
	lat := DefaultLatency()
	f := New(Config{GlobalSize: 1 << 20, Nodes: 2, Latency: lat, Hops: []int{1, 3}})
	near, far := f.Node(0), f.Node(1)
	g := f.Reserve(64, 64)
	near.Load64(g) // miss: GlobalNS + 1 hop
	far.Load64(g)  // miss: GlobalNS + 3 hops
	nearNS, farNS := near.VirtualNS(), far.VirtualNS()
	wantNear := uint64(lat.GlobalNS + 1*lat.HopNS)
	wantFar := uint64(lat.GlobalNS + 3*lat.HopNS)
	if nearNS != wantNear || farNS != wantFar {
		t.Fatalf("virtual ns near=%d (want %d) far=%d (want %d)", nearNS, wantNear, farNS, wantFar)
	}
	if f.RackStats().VirtualNS != nearNS+farNS {
		t.Fatal("RackStats aggregation wrong")
	}
}

func TestConcurrentAtomicCounter(t *testing.T) {
	f := testFabric(t, 4)
	g := f.Reserve(64, 64)
	const perNode = 1000
	var wg sync.WaitGroup
	for i := 0; i < f.NumNodes(); i++ {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			for j := 0; j < perNode; j++ {
				n.Add64(g, 1)
			}
		}(f.Node(i))
	}
	wg.Wait()
	if got := f.Node(0).AtomicLoad64(g); got != uint64(f.NumNodes()*perNode) {
		t.Fatalf("counter = %d, want %d", got, f.NumNodes()*perNode)
	}
}

func TestConcurrentDisjointBulkWriters(t *testing.T) {
	f := testFabric(t, 4)
	const region = 4096
	g := f.Reserve(region*4, 64)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := f.Node(i)
			buf := bytes.Repeat([]byte{byte(i + 1)}, region)
			n.Write(g.Add(uint64(i)*region), buf)
			n.FlushRange(g.Add(uint64(i)*region), region)
		}(i)
	}
	wg.Wait()
	check := f.Node(0)
	check.InvalidateAll()
	for i := 0; i < 4; i++ {
		buf := make([]byte, region)
		check.Read(g.Add(uint64(i)*region), buf)
		for j, b := range buf {
			if b != byte(i+1) {
				t.Fatalf("region %d byte %d = %d", i, j, b)
			}
		}
	}
}

func TestQuickWriteFlushReadRoundTrip(t *testing.T) {
	f := testFabric(t, 2)
	base := f.Reserve(1<<16, 64)
	w, r := f.Node(0), f.Node(1)
	prop := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 4096 {
			data = data[:4096]
		}
		g := base.Add(uint64(off) % (1<<16 - 4096))
		w.Write(g, data)
		w.WriteBackRange(g, uint64(len(data)))
		r.InvalidateRange(g, uint64(len(data)))
		got := make([]byte, len(data))
		r.Read(g, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSpinLatencyMode(t *testing.T) {
	lat := DefaultLatency()
	lat.Mode = LatencySpin
	f := New(Config{GlobalSize: 1 << 20, Nodes: 1, Latency: lat})
	n := f.Node(0)
	g := f.Reserve(64, 64)
	// Just exercise the spin path; timing assertions would be flaky.
	for i := 0; i < 10; i++ {
		n.Store64(g, uint64(i))
		n.FlushRange(g, 8)
	}
	if n.VirtualNS() == 0 {
		t.Fatal("spin mode should still account virtual time")
	}
}
