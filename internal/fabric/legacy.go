package fabric

import "encoding/binary"

// Legacy per-line cache maintenance, pinned verbatim from the pre-batching
// implementation. These are NOT part of the fabric's public contract:
// they exist so the differential equivalence suite can drive the old
// semantics against the new ranged fast path on twin fabrics, and so the
// fabric benchmark can report an honest "per-line baseline" for the
// ranged speedup gate. They deliberately keep every cost the rewrite
// removed — one cache-lock acquisition per line, per-line atomic stats
// bumps, and an unconditional hook-pointer load per event — and they do
// not count toward cache.maintLocks, which pins the NEW paths' contract.

// WriteBackRangePerLine is the pre-batching WriteBackRange: lock, harvest
// and write back one line at a time, bumping atomic stats and firing a
// per-line OpWriteBack event for each. The latency charge was already a
// single pipelined burst for the whole range, so virtual time agrees with
// the ranged path to the nanosecond — only wall cost differs.
func (n *Node) WriteBackRangePerLine(g GPtr, size uint64) {
	n.checkAlive()
	if size == 0 {
		return
	}
	n.fab.checkRange(g, size)
	c := n.cache
	first, last := LineSpan(g, size)
	written := 0
	for li := first; li <= last; li++ {
		c.mu.Lock()
		ln := c.lookup(li)
		var cp [LineSize]byte
		doWB := ln != nil && ln.dirty
		if doWB {
			cp = ln.data
			ln.dirty = false
		}
		c.mu.Unlock()
		if doWB {
			if fl := n.fab.writeLineHomePerWord(li, &cp); fl > 0 {
				n.stats.FaultsInjected.Add(fl)
			}
			n.stats.WriteBacks.Add(1)
			n.fireOp(OpWriteBack, li, 1)
			written++
		}
	}
	if written > 0 {
		n.charge(n.globalCost(written))
	}
}

// InvalidateRangePerLine is the pre-batching InvalidateRange: one lock
// acquisition, but a per-line atomic Invalidates bump under the lock.
func (n *Node) InvalidateRangePerLine(g GPtr, size uint64) {
	n.checkAlive()
	if size == 0 {
		return
	}
	n.fab.checkRange(g, size)
	c := n.cache
	first, last := LineSpan(g, size)
	c.mu.Lock()
	for li := first; li <= last; li++ {
		if _, ok := c.lines[li]; ok {
			delete(c.lines, li)
			n.stats.Invalidates.Add(1)
		}
	}
	c.mu.Unlock()
	n.charge(n.fab.lat.LocalNS)
}

// FlushRangePerLine is the pre-batching FlushRange: two full passes (and
// at least lines+1 lock acquisitions) where the ranged path makes one.
func (n *Node) FlushRangePerLine(g GPtr, size uint64) {
	n.WriteBackRangePerLine(g, size)
	n.InvalidateRangePerLine(g, size)
}

// writeLineHomePerWord is the pre-batching writeLineHome: it consults the
// corruption injector per WORD — an atomic rate load and a call for each
// of the line's eight words — where the current path checks the armed
// rates once per line (or once per batch). With a rate armed the draw
// sequence is identical to the current path, so the differential suite
// can run it with faults enabled; only the disarmed wall cost differs.
func (f *Fabric) writeLineHomePerWord(li uint64, src *[LineSize]byte) (faults uint64) {
	if f.faults.dropWriteBack() {
		return 1 // the line silently never reaches home memory
	}
	base := li * LineSize / WordSize
	for w := uint64(0); w < LineSize/WordSize; w++ {
		v := binary.LittleEndian.Uint64(src[w*WordSize:])
		if cv := f.faults.corruptOnWrite(v); cv != v {
			v = cv
			faults++
		}
		f.homeStoreWord(base+w, v)
	}
	return faults
}
