// Package ipc is the FlacOS communication system (paper §3.5).
//
// Cross-node IPC runs over shared data buffers in global memory: a
// connection is a pair of single-producer rings whose payload lines are
// written once by the sender and read once by the receiver — no
// serialization, no socket buffers, no network stack. This is the
// "zero-copy IPC via shared memory" data plane the Redis experiment
// (Figure 4) measures against TCP.
//
// Following the paper's placement analysis, socket METADATA (the name
// registry mapping service names to endpoints) is node-local, replicated
// with FlacDK's replication method; only data-plane buffers and tiny
// connection-state words live in shared memory.
//
// The package also implements migration-based RPC: the caller's thread
// switches into the service's code context (shared in global memory) and
// executes the handler itself, without a thread switch or a server-side
// queue — the Ford/Parmer thread-migration model the paper adopts.
package ipc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/ds"
	"flacos/internal/flacdk/replication"
)

// ErrClosed is returned on operations against a closed connection.
var ErrClosed = errors.New("ipc: connection closed")

// ErrNoService is returned when a name does not resolve.
var ErrNoService = errors.New("ipc: no such service")

// connection slot states (fabric word).
const (
	connFree uint64 = iota
	connConnecting
	connEstablished
	connClosed
)

const (
	regOpBind   = 1
	regOpUnbind = 2
)

// registrySM is the replicated socket-metadata table: name -> listener slot.
type registrySM struct {
	names map[string]uint64
}

func newRegistrySM() *registrySM { return &registrySM{names: make(map[string]uint64)} }

func (s *registrySM) Apply(op uint32, payload []byte) uint64 {
	switch op {
	case regOpBind:
		slot := binary.LittleEndian.Uint64(payload)
		name := string(payload[8:])
		if _, ok := s.names[name]; ok {
			return 0
		}
		s.names[name] = slot + 1
		return 1
	case regOpUnbind:
		name := string(payload)
		if _, ok := s.names[name]; !ok {
			return 0
		}
		delete(s.names, name)
		return 1
	}
	return 0
}

type connSlot struct {
	stateG fabric.GPtr
	c2s    *ds.SPSCRing // client -> server
	s2c    *ds.SPSCRing // server -> client
}

type listenerSlot struct {
	claimedG fabric.GPtr
	accept   *ds.MPSCRing // carries connection slot indices
}

// Config sizes the switchboard.
type Config struct {
	MaxConns     int    // connection slot pool
	MaxListeners int    // listener slot pool
	RingSlots    uint64 // per-direction ring capacity (messages)
	MsgMax       uint64 // largest message in bytes
	RegLogCap    uint64 // registry operation log entries
}

// Switchboard is the rack-wide IPC fabric: pre-laid-out connection and
// listener slots in global memory plus the replicated name registry. One
// Switchboard is created at boot; each node derives Endpoints from it.
type Switchboard struct {
	fab    *fabric.Fabric
	conns  []connSlot
	lsts   []listenerSlot
	regLog *replication.Log
	cfg    Config
}

// NewSwitchboard lays out the IPC fabric in f's global memory. node
// initializes ring control words.
func NewSwitchboard(f *fabric.Fabric, node *fabric.Node, cfg Config) *Switchboard {
	if cfg.MaxConns == 0 {
		cfg.MaxConns = 64
	}
	if cfg.MaxListeners == 0 {
		cfg.MaxListeners = 16
	}
	if cfg.RingSlots == 0 {
		cfg.RingSlots = 16
	}
	if cfg.MsgMax == 0 {
		cfg.MsgMax = 16 << 10
	}
	if cfg.RegLogCap == 0 {
		cfg.RegLogCap = 256
	}
	sb := &Switchboard{fab: f, cfg: cfg, regLog: replication.NewLog(f, cfg.RegLogCap)}
	sb.conns = make([]connSlot, cfg.MaxConns)
	for i := range sb.conns {
		sb.conns[i] = connSlot{
			stateG: f.Reserve(fabric.LineSize, fabric.LineSize),
			c2s:    ds.NewSPSCRing(f, cfg.RingSlots, cfg.MsgMax),
			s2c:    ds.NewSPSCRing(f, cfg.RingSlots, cfg.MsgMax),
		}
	}
	sb.lsts = make([]listenerSlot, cfg.MaxListeners)
	for i := range sb.lsts {
		sb.lsts[i] = listenerSlot{
			claimedG: f.Reserve(fabric.LineSize, fabric.LineSize),
			accept:   ds.NewMPSCRing(f, node, 16, 16),
		}
	}
	return sb
}

// Endpoint is one node's handle on the switchboard.
type Endpoint struct {
	sb   *Switchboard
	node *fabric.Node

	reg    *registrySM
	regRep *replication.Replica
	mu     sync.Mutex
}

// Endpoint attaches node n.
func (sb *Switchboard) Endpoint(n *fabric.Node) *Endpoint {
	e := &Endpoint{sb: sb, node: n, reg: newRegistrySM()}
	e.regRep = sb.regLog.Replica(n, e.reg)
	return e
}

// Node returns the endpoint's fabric node.
func (e *Endpoint) Node() *fabric.Node { return e.node }

// Listener accepts connections for a bound name.
type Listener struct {
	ep   *Endpoint
	name string
	slot int
}

// Bind claims a listener slot and registers name -> slot in the replicated
// registry (the domain-socket bind).
func (e *Endpoint) Bind(name string) (*Listener, error) {
	slot := -1
	for i := range e.sb.lsts {
		if e.node.CAS64(e.sb.lsts[i].claimedG, 0, 1) {
			slot = i
			break
		}
	}
	if slot < 0 {
		return nil, fmt.Errorf("ipc: bind %q: out of listener slots", name)
	}
	payload := make([]byte, 8+len(name))
	binary.LittleEndian.PutUint64(payload, uint64(slot))
	copy(payload[8:], name)
	if e.regRep.Execute(regOpBind, payload) == 0 {
		e.node.AtomicStore64(e.sb.lsts[slot].claimedG, 0)
		return nil, fmt.Errorf("ipc: bind %q: name in use", name)
	}
	return &Listener{ep: e, name: name, slot: slot}, nil
}

// Close unbinds the name and releases the listener slot.
func (l *Listener) Close() {
	l.ep.regRep.Execute(regOpUnbind, []byte(l.name))
	l.ep.node.AtomicStore64(l.ep.sb.lsts[l.slot].claimedG, 0)
}

// Accept waits for the next incoming connection.
func (l *Listener) Accept() *Conn {
	var buf [16]byte
	n := l.ep.node
	ln := l.ep.sb.lsts[l.slot].accept.Pop(n, buf[:])
	idx := binary.LittleEndian.Uint64(buf[:ln])
	slot := &l.ep.sb.conns[idx]
	n.AtomicStore64(slot.stateG, connEstablished)
	return &Conn{node: n, slot: slot, server: true}
}

// lookup resolves a name through the replicated registry.
func (e *Endpoint) lookup(name string) (uint64, bool) {
	e.regRep.Sync()
	var slot uint64
	var ok bool
	e.regRep.ReadLocal(func(replication.StateMachine) {
		slot, ok = e.reg.names[name]
	})
	return slot - 1, ok && slot > 0
}

// Connect establishes a zero-copy channel to the named service: it claims
// a connection slot, enqueues it on the listener's accept ring, and waits
// for the server to accept.
func (e *Endpoint) Connect(name string) (*Conn, error) {
	lslot, ok := e.lookup(name)
	if !ok {
		return nil, fmt.Errorf("ipc: connect %q: %w", name, ErrNoService)
	}
	n := e.node
	idx := -1
	for i := range e.sb.conns {
		if n.CAS64(e.sb.conns[i].stateG, connFree, connConnecting) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("ipc: connect %q: out of connection slots", name)
	}
	var msg [8]byte
	binary.LittleEndian.PutUint64(msg[:], uint64(idx))
	e.sb.lsts[lslot].accept.Push(n, msg[:])
	slot := &e.sb.conns[idx]
	for n.AtomicLoad64(slot.stateG) == connConnecting {
		runtime.Gosched()
	}
	if n.AtomicLoad64(slot.stateG) != connEstablished {
		return nil, ErrClosed
	}
	return &Conn{node: n, slot: slot, server: false}, nil
}

// Conn is one side of an established channel. Each side must be driven by
// a single goroutine (the rings are single-producer/single-consumer), the
// usual discipline for a socket.
type Conn struct {
	node   *fabric.Node
	slot   *connSlot
	server bool
}

func (c *Conn) sendRing() *ds.SPSCRing {
	if c.server {
		return c.slot.s2c
	}
	return c.slot.c2s
}

func (c *Conn) recvRing() *ds.SPSCRing {
	if c.server {
		return c.slot.c2s
	}
	return c.slot.s2c
}

// Send transmits msg: one write of the payload into the shared ring, no
// intermediate copies.
func (c *Conn) Send(msg []byte) error {
	for {
		if c.node.AtomicLoad64(c.slot.stateG) != connEstablished {
			return ErrClosed
		}
		if c.sendRing().TryPush(c.node, msg) {
			return nil
		}
		runtime.Gosched()
	}
}

// Recv receives the next message into buf, returning its length.
func (c *Conn) Recv(buf []byte) (int, error) {
	for {
		if n, ok := c.recvRing().TryPop(c.node, buf); ok {
			return n, nil
		}
		if c.node.AtomicLoad64(c.slot.stateG) != connEstablished {
			// Drain anything that raced with close.
			if n, ok := c.recvRing().TryPop(c.node, buf); ok {
				return n, nil
			}
			return 0, ErrClosed
		}
		runtime.Gosched()
	}
}

// Close tears the connection down for both sides and recycles the slot
// once both rings are drained. (The slot returns to the free pool on the
// next Connect scan; rings carry per-slot cursors so reuse is safe.)
func (c *Conn) Close() {
	n := c.node
	if n.AtomicLoad64(c.slot.stateG) == connEstablished {
		n.AtomicStore64(c.slot.stateG, connClosed)
	}
}

// Release returns a fully closed connection slot to the free pool. The
// side that observes the close calls it after both sides are done.
func (c *Conn) Release() {
	n := c.node
	// Drain leftovers so the next user starts clean.
	buf := make([]byte, c.recvRing().MsgMax())
	for {
		if _, ok := c.recvRing().TryPop(n, buf); !ok {
			break
		}
	}
	for {
		if _, ok := c.sendRing().TryPop(n, buf); !ok {
			break
		}
	}
	n.CAS64(c.slot.stateG, connClosed, connFree)
}
