package ipc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"flacos/internal/fabric"
)

// asSwitchNS models one address-space switch (page-table base swap plus
// the TLB refill tax) — the cost the migrating thread pays instead of a
// full network round trip or a cross-thread handoff.
const asSwitchNS = 250

// Handler is a service's code: it runs ON THE CALLER'S THREAD (thread-
// migration RPC), with the caller's node identity for memory-cost
// accounting, against the service's state in global memory.
type Handler func(caller *fabric.Node, req []byte) []byte

// Service is an RPC service whose code context is shared rack-wide: any
// node can invoke it by switching into its address space, and its
// activation counter (in global memory) records rack-wide usage — the
// basis for the elastic scale-out and fast migration §3.5 describes.
type Service struct {
	Name    string
	handler Handler
	ctxG    fabric.GPtr // word0: activation count
}

// Activations returns how many times the service has been invoked,
// rack-wide.
func (s *Service) Activations(n *fabric.Node) uint64 { return n.AtomicLoad64(s.ctxG) }

// ServiceTable holds the rack's shared code contexts. In a real FlacOS the
// text and context descriptors live in global memory; the simulation keeps
// the Go function values in a process-wide table (all nodes share the
// process) and the descriptors in fabric memory.
type ServiceTable struct {
	fab *fabric.Fabric

	mu       sync.RWMutex
	services map[string]*Service
	calls    atomic.Uint64
}

// NewServiceTable creates the rack's RPC service table.
func NewServiceTable(f *fabric.Fabric) *ServiceTable {
	return &ServiceTable{fab: f, services: make(map[string]*Service)}
}

// Register publishes a service. Registering an existing name replaces its
// handler (code upgrade) but keeps the shared context descriptor.
func (t *ServiceTable) Register(name string, h Handler) *Service {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.services[name]; ok {
		s.handler = h
		return s
	}
	s := &Service{
		Name:    name,
		handler: h,
		ctxG:    t.fab.Reserve(fabric.LineSize, fabric.LineSize),
	}
	t.services[name] = s
	return s
}

// Unregister removes a service.
func (t *ServiceTable) Unregister(name string) {
	t.mu.Lock()
	delete(t.services, name)
	t.mu.Unlock()
}

// Call performs a migration-based RPC from node n: the calling thread
// switches into the service's shared code context, executes the handler
// itself, and switches back. No thread switch, no queueing, no copies of
// req beyond what the handler itself does.
func (t *ServiceTable) Call(n *fabric.Node, name string, req []byte) ([]byte, error) {
	t.mu.RLock()
	s, ok := t.services[name]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ipc: rpc %q: %w", name, ErrNoService)
	}
	n.ChargeNS(asSwitchNS) // switch into the service's address space
	n.Add64(s.ctxG, 1)
	resp := s.handler(n, req)
	n.ChargeNS(asSwitchNS) // switch back
	t.calls.Add(1)
	return resp, nil
}

// Calls returns the table's lifetime call count.
func (t *ServiceTable) Calls() uint64 { return t.calls.Load() }
