package ipc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"flacos/internal/fabric"
)

func newSB(t *testing.T, nodes int) (*fabric.Fabric, *Switchboard) {
	t.Helper()
	f := fabric.New(fabric.Config{GlobalSize: 64 << 20, Nodes: nodes})
	return f, NewSwitchboard(f, f.Node(0), Config{})
}

func TestConnectSendRecvAcrossNodes(t *testing.T) {
	f, sb := newSB(t, 2)
	server := sb.Endpoint(f.Node(0))
	client := sb.Endpoint(f.Node(1))

	l, err := server.Bind("echo")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := l.Accept()
		buf := make([]byte, 1024)
		for {
			n, err := c.Recv(buf)
			if err != nil {
				return
			}
			c.Send(buf[:n])
		}
	}()
	c, err := client.Connect("echo")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("zero copy across the rack")
	if err := c.Send(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	n, err := c.Recv(buf)
	if err != nil || !bytes.Equal(buf[:n], msg) {
		t.Fatalf("echo = %q, %v", buf[:n], err)
	}
	c.Close()
	wg.Wait()
	l.Close()
}

func TestConnectUnknownService(t *testing.T) {
	f, sb := newSB(t, 1)
	e := sb.Endpoint(f.Node(0))
	if _, err := e.Connect("nope"); !errors.Is(err, ErrNoService) {
		t.Fatalf("err = %v", err)
	}
}

func TestBindDuplicateNameFails(t *testing.T) {
	f, sb := newSB(t, 2)
	e0 := sb.Endpoint(f.Node(0))
	e1 := sb.Endpoint(f.Node(1))
	l, err := e0.Bind("svc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Bind("svc"); err == nil {
		t.Fatal("duplicate bind from another node should fail")
	}
	l.Close()
	// After close the name is free again.
	l2, err := e1.Bind("svc")
	if err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	l2.Close()
}

func TestCloseUnblocksRecvAndSlotReuse(t *testing.T) {
	f, sb := newSB(t, 2)
	server := sb.Endpoint(f.Node(0))
	client := sb.Endpoint(f.Node(1))
	l, _ := server.Bind("s")
	defer l.Close()

	for round := 0; round < 3; round++ { // slot must be reusable
		var srv *Conn
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv = l.Accept()
			buf := make([]byte, 64)
			for {
				if _, err := srv.Recv(buf); err != nil {
					return
				}
			}
		}()
		c, err := client.Connect("s")
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		c.Send([]byte("hi"))
		c.Close()
		wg.Wait()
		if err := c.Send([]byte("x")); !errors.Is(err, ErrClosed) {
			t.Fatal("send on closed conn should fail")
		}
		c.Release()
	}
}

func TestManyConcurrentConnections(t *testing.T) {
	f, sb := newSB(t, 4)
	server := sb.Endpoint(f.Node(0))
	l, _ := server.Bind("multi")
	defer l.Close()

	const clients = 8
	var swg sync.WaitGroup
	swg.Add(1)
	go func() {
		defer swg.Done()
		var hwg sync.WaitGroup
		for i := 0; i < clients; i++ {
			c := l.Accept()
			hwg.Add(1)
			go func(c *Conn) {
				defer hwg.Done()
				buf := make([]byte, 256)
				for {
					n, err := c.Recv(buf)
					if err != nil {
						return
					}
					// Double every byte as the "service result".
					for j := 0; j < n; j++ {
						buf[j] *= 2
					}
					c.Send(buf[:n])
				}
			}(c)
		}
		hwg.Wait()
	}()

	var cwg sync.WaitGroup
	for i := 0; i < clients; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			e := sb.Endpoint(f.Node(1 + i%3))
			c, err := e.Connect("multi")
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			buf := make([]byte, 256)
			for round := 0; round < 50; round++ {
				msg := []byte{byte(i), byte(round), 3}
				c.Send(msg)
				n, err := c.Recv(buf)
				if err != nil || n != 3 || buf[0] != byte(i)*2 || buf[2] != 6 {
					t.Errorf("client %d round %d: % x err %v", i, round, buf[:n], err)
					return
				}
			}
			c.Close()
		}(i)
	}
	cwg.Wait()
	swg.Wait()
}

func TestLargeMessages(t *testing.T) {
	f := fabric.New(fabric.Config{GlobalSize: 64 << 20, Nodes: 2})
	sb := NewSwitchboard(f, f.Node(0), Config{MsgMax: 8 << 10, RingSlots: 4})
	server := sb.Endpoint(f.Node(0))
	client := sb.Endpoint(f.Node(1))
	l, _ := server.Bind("big")
	defer l.Close()
	go func() {
		c := l.Accept()
		buf := make([]byte, 8<<10)
		for {
			n, err := c.Recv(buf)
			if err != nil {
				return
			}
			c.Send(buf[:n])
		}
	}()
	c, _ := client.Connect("big")
	defer c.Close()
	msg := bytes.Repeat([]byte{0xF0}, 8<<10)
	c.Send(msg)
	buf := make([]byte, 8<<10)
	n, err := c.Recv(buf)
	if err != nil || n != len(msg) || !bytes.Equal(buf[:n], msg) {
		t.Fatalf("large echo n=%d err=%v", n, err)
	}
}

func TestMigrationRPC(t *testing.T) {
	f, sb := newSB(t, 2)
	_ = sb
	tbl := NewServiceTable(f)

	// Service state lives in global memory; the handler runs on the
	// CALLER's node and still sees it — shared code context semantics.
	stateG := f.Reserve(fabric.LineSize, fabric.LineSize)
	svc := tbl.Register("counter", func(caller *fabric.Node, req []byte) []byte {
		v := caller.Add64(stateG, uint64(req[0]))
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], v)
		return out[:]
	})

	resp, err := tbl.Call(f.Node(0), "counter", []byte{5})
	if err != nil || binary.LittleEndian.Uint64(resp) != 5 {
		t.Fatalf("call 1 = %v, %v", resp, err)
	}
	// Invoked from the OTHER node without any server thread there.
	resp, err = tbl.Call(f.Node(1), "counter", []byte{3})
	if err != nil || binary.LittleEndian.Uint64(resp) != 8 {
		t.Fatalf("call 2 = %v, %v", resp, err)
	}
	if svc.Activations(f.Node(0)) != 2 {
		t.Fatalf("activations = %d", svc.Activations(f.Node(0)))
	}
	if tbl.Calls() != 2 {
		t.Fatalf("calls = %d", tbl.Calls())
	}
	if _, err := tbl.Call(f.Node(0), "missing", nil); !errors.Is(err, ErrNoService) {
		t.Fatalf("err = %v", err)
	}
	tbl.Unregister("counter")
	if _, err := tbl.Call(f.Node(0), "counter", []byte{1}); err == nil {
		t.Fatal("call after unregister should fail")
	}
}

func TestRPCHandlerUpgradeKeepsContext(t *testing.T) {
	f, _ := newSB(t, 1)
	tbl := NewServiceTable(f)
	s1 := tbl.Register("svc", func(n *fabric.Node, req []byte) []byte { return []byte("v1") })
	tbl.Call(f.Node(0), "svc", nil)
	s2 := tbl.Register("svc", func(n *fabric.Node, req []byte) []byte { return []byte("v2") })
	if s1 != s2 {
		t.Fatal("re-register must keep the shared context descriptor")
	}
	resp, _ := tbl.Call(f.Node(0), "svc", nil)
	if string(resp) != "v2" {
		t.Fatalf("resp = %q", resp)
	}
	if s2.Activations(f.Node(0)) != 2 {
		t.Fatalf("activations across upgrade = %d", s2.Activations(f.Node(0)))
	}
}
