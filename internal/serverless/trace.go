package serverless

import (
	"hash/fnv"

	"flacos/internal/fabric"
	"flacos/internal/trace"
)

// SetTrace attaches the control plane's invocation and placement paths
// to r's per-node writers; a nil recorder detaches.
func (c *Controller) SetTrace(r *trace.Recorder) {
	for i := range c.trw {
		c.trw[i].Store(r.Writer(i))
	}
}

// tw returns node id's writer, or nil when tracing is off.
func (c *Controller) tw(id int) *trace.Writer {
	if id < 0 || id >= len(c.trw) {
		return nil
	}
	return c.trw[id].Load()
}

// fnHash names a function in a trace operand: FNV-1a of its name, so the
// same function hashes identically on every node and invoke spans pair up.
func fnHash(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// tracedInvoke wraps the body of one invocation in a KInvoke span on the
// caller's writer (arg0 = function-name hash, arg1 = request length).
func (c *Controller) tracedInvoke(caller *fabric.Node, name string, reqLen int, body func() ([]byte, error)) ([]byte, error) {
	tw := c.tw(caller.ID())
	if tw == nil {
		return body()
	}
	h := fnHash(name)
	tw.Begin(trace.SubServerless, trace.KInvoke, h, uint64(reqLen))
	out, err := body()
	tw.End(trace.SubServerless, trace.KInvoke, h, uint64(len(out)))
	return out, err
}
