// Package serverless is the paper's case study (§4.1): a rack-level
// serverless architecture on FlacOS. Container images flow through the
// FlacOS shared page cache (one copy rack-wide), services interact over
// FlacOS IPC and migration RPC instead of cross-node networking, and the
// control plane uses FlacOS scheduling and fault-box recovery for
// elasticity, density and availability.
//
// The container-startup experiment of §4.2 is reproduced by the
// NodeRuntime: starting the same image on a second node is a COLD start
// without FlacOS (pull everything from the registry), a SHARED-CACHE start
// with FlacOS (image bytes already in global memory; only the manifest
// and local runtime work remain), and a HOT start when the node itself
// already ran the image.
package serverless

import (
	"fmt"
	"hash/fnv"
	"sync"

	"flacos/internal/fabric"
)

// Layer is one content-addressed image layer. Its bytes are synthesized
// deterministically from the digest, standing in for real layer tarballs.
type Layer struct {
	Digest string
	Size   uint64
}

// Content fills buf with the layer's bytes at offset off.
func (l Layer) Content(off uint64, buf []byte) {
	h := fnv.New64a()
	h.Write([]byte(l.Digest))
	seed := h.Sum64()
	for i := range buf {
		x := seed + (off+uint64(i))/8
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		buf[i] = byte(x >> ((off + uint64(i)) % 8 * 8))
	}
}

// Image is a named manifest listing layers.
type Image struct {
	Name         string
	Layers       []Layer
	ManifestSize uint64
}

// TotalBytes returns the image's layer bytes.
func (img Image) TotalBytes() uint64 {
	var t uint64
	for _, l := range img.Layers {
		t += l.Size
	}
	return t
}

// Registry is the remote image registry: the slow, WAN-ish store cold
// starts pull from. Costs are charged to the pulling node.
type Registry struct {
	// RTTNS is the per-request round trip to the registry.
	RTTNS int
	// BytesPerNS is the pull bandwidth (0.2 = 200 MB/s, the paper's 4 GB
	// image in ~20 s).
	BytesPerNS float64

	mu     sync.Mutex
	images map[string]Image
	pulls  uint64
}

// NewRegistry creates a registry with the given cost model.
func NewRegistry(rttNS int, bytesPerNS float64) *Registry {
	return &Registry{RTTNS: rttNS, BytesPerNS: bytesPerNS, images: make(map[string]Image)}
}

// Push publishes an image.
func (r *Registry) Push(img Image) {
	r.mu.Lock()
	r.images[img.Name] = img
	r.mu.Unlock()
}

// PullManifest fetches an image's manifest, charging one round trip plus
// the manifest transfer.
func (r *Registry) PullManifest(n *fabric.Node, name string) (Image, error) {
	r.mu.Lock()
	img, ok := r.images[name]
	r.pulls++
	r.mu.Unlock()
	if !ok {
		return Image{}, fmt.Errorf("serverless: image %q not in registry", name)
	}
	n.ChargeNS(r.RTTNS + int(float64(img.ManifestSize)/r.BytesPerNS))
	return img, nil
}

// PullLayer streams one layer's bytes, invoking sink per chunk. The
// transfer cost (RTT + size/bandwidth) is charged to n.
func (r *Registry) PullLayer(n *fabric.Node, l Layer, chunk uint64, sink func(off uint64, data []byte)) {
	n.ChargeNS(r.RTTNS + int(float64(l.Size)/r.BytesPerNS))
	buf := make([]byte, chunk)
	for off := uint64(0); off < l.Size; off += chunk {
		sz := min(chunk, l.Size-off)
		l.Content(off, buf[:sz])
		sink(off, buf[:sz])
	}
}

// LayerPulls returns how many registry requests have been served.
func (r *Registry) LayerPulls() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pulls
}

// SyntheticImage builds an image of layerCount layers totalling totalBytes.
func SyntheticImage(name string, layerCount int, totalBytes uint64) Image {
	img := Image{Name: name, ManifestSize: 4096}
	per := totalBytes / uint64(layerCount)
	for i := 0; i < layerCount; i++ {
		sz := per
		if i == layerCount-1 {
			sz = totalBytes - per*uint64(layerCount-1)
		}
		img.Layers = append(img.Layers, Layer{
			Digest: fmt.Sprintf("sha256:%s-%d", name, i),
			Size:   sz,
		})
	}
	return img
}
