package serverless

import (
	"fmt"
	"math"

	"flacos/internal/fabric"
)

// InterferenceModel captures §4.1's second serverless pain point:
// co-located containers contend for a node's memory bandwidth and caches,
// so a function's execution cost grows with the density of its host node.
// ExecNS is the uncontended execution cost; each co-resident instance
// beyond the first adds PenaltyFrac of it.
type InterferenceModel struct {
	ExecNS      int
	PenaltyFrac float64
}

// DefaultInterference models a memory-bound function losing ~18% per
// co-located neighbor.
func DefaultInterference() InterferenceModel {
	return InterferenceModel{ExecNS: 2_000_000, PenaltyFrac: 0.18}
}

// CostOn returns the modeled execution cost on a node hosting `density`
// warm instances (>= 1, the one running).
func (im InterferenceModel) CostOn(density int) int {
	if density < 1 {
		density = 1
	}
	return int(float64(im.ExecNS) * (1 + im.PenaltyFrac*float64(density-1)))
}

// InvokeOn runs the function's handler with the interference cost of the
// chosen host charged to the caller, routing to the LEAST-dense node that
// has a warm instance — the placement freedom FlacOS's shared state makes
// cheap (any instance can serve, state is in global memory). Returns the
// chosen host.
func (c *Controller) InvokeOn(caller *fabric.Node, name string, req []byte, im InterferenceModel) ([]byte, int, error) {
	c.mu.Lock()
	f, ok := c.fns[name]
	c.mu.Unlock()
	if !ok {
		return nil, -1, fmt.Errorf("serverless: function %q not deployed", name)
	}
	if f.Instances() == 0 {
		if _, err := c.ScaleUp(name); err != nil {
			return nil, -1, err
		}
	}
	// Route to the least-loaded node holding a warm instance.
	f.mu.Lock()
	best, bestLoad := -1, math.MaxInt
	c.mu.Lock()
	for nodeID := range f.instances {
		if c.load[nodeID] < bestLoad {
			best, bestLoad = nodeID, c.load[nodeID]
		}
	}
	c.mu.Unlock()
	f.invokes++
	f.mu.Unlock()

	caller.ChargeNS(im.CostOn(bestLoad))
	out, err := c.services.Call(caller, name, req)
	return out, best, err
}

// InvokePinned is the baseline without routing freedom: the invocation
// always executes against the instance on `host` regardless of its
// density (the disaggregated world, where moving an invocation means
// moving its state over the network).
func (c *Controller) InvokePinned(caller *fabric.Node, name string, req []byte, host int, im InterferenceModel) ([]byte, error) {
	c.mu.Lock()
	f, ok := c.fns[name]
	var density int
	if host >= 0 && host < len(c.load) {
		density = c.load[host]
	}
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serverless: function %q not deployed", name)
	}
	f.mu.Lock()
	f.invokes++
	f.mu.Unlock()
	caller.ChargeNS(im.CostOn(density))
	return c.services.Call(caller, name, req)
}
