package serverless

import (
	"bytes"
	"testing"

	"flacos/internal/fabric"
	"flacos/internal/fs"
	"flacos/internal/ipc"
)

// testEnv boots a rack with the shared FS and a registry holding a small
// synthetic image (16 MiB so tests stay fast; the flacbench harness runs
// the paper-scale 4 GB version).
type testEnv struct {
	fab      *fabric.Fabric
	registry *Registry
	runtimes []*NodeRuntime
	services *ipc.ServiceTable
}

const testImageBytes = 16 << 20

func newTestEnv(t *testing.T, nodes int) *testEnv {
	t.Helper()
	f := fabric.New(fabric.Config{
		GlobalSize: 96 << 20,
		Nodes:      nodes,
		Latency:    fabric.DefaultLatency(),
	})
	dev := fs.NewMemDev(50_000, 60_000)
	fsys := fs.New(f, dev, fs.Config{CacheFrames: (testImageBytes / 4096) * 2, MetaLogCap: 1024})
	// Scaled-down costs so the 16 MiB test image keeps the same phase
	// proportions as the paper-scale 4 GB run in flacbench: a slow
	// registry dominating cold starts, a modest runtime-init floor.
	reg := NewRegistry(5_000_000, 0.02) // 5 ms RTT, 20 MB/s
	reg.Push(SyntheticImage("pytorch", 4, testImageBytes))

	cfg := DefaultRuntimeConfig()
	cfg.InitNS = 50_000_000 // 50 ms
	env := &testEnv{fab: f, registry: reg, services: ipc.NewServiceTable(f)}
	for i := 0; i < nodes; i++ {
		env.runtimes = append(env.runtimes,
			NewNodeRuntime(f.Node(i), fsys.Mount(f.Node(i)), reg, cfg))
	}
	return env
}

func TestLayerContentDeterministic(t *testing.T) {
	l := Layer{Digest: "sha256:abc", Size: 1 << 20}
	a := make([]byte, 4096)
	b := make([]byte, 4096)
	l.Content(100, a)
	l.Content(100, b)
	if !bytes.Equal(a, b) {
		t.Fatal("layer content not deterministic")
	}
	l2 := Layer{Digest: "sha256:def", Size: 1 << 20}
	l2.Content(100, b)
	if bytes.Equal(a, b) {
		t.Fatal("different digests produced identical content")
	}
	// Offset-consistency: reading [0,8K) in one call equals two 4K calls.
	big := make([]byte, 8192)
	l.Content(0, big)
	l.Content(4096, b)
	if !bytes.Equal(big[4096:], b) {
		t.Fatal("content not offset-consistent")
	}
}

func TestSyntheticImageSizes(t *testing.T) {
	img := SyntheticImage("x", 3, 100)
	if img.TotalBytes() != 100 || len(img.Layers) != 3 {
		t.Fatalf("img = %+v", img)
	}
}

func TestContainerStartupThreePaths(t *testing.T) {
	env := newTestEnv(t, 2)

	// Node 0: full cold start from the registry.
	cold, err := env.runtimes[0].StartContainer("pytorch")
	if err != nil {
		t.Fatal(err)
	}
	if cold.Source != SourceRegistry {
		t.Fatalf("first start source = %v", cold.Source)
	}

	// Node 1: FlacOS start — image bytes come from the shared page cache.
	pullsBefore := env.registry.LayerPulls()
	flac, err := env.runtimes[1].StartContainer("pytorch")
	if err != nil {
		t.Fatal(err)
	}
	if flac.Source != SourceSharedCache {
		t.Fatalf("second-node start source = %v", flac.Source)
	}
	// Only the manifest request may hit the registry, never layers.
	if env.registry.LayerPulls() != pullsBefore+1 {
		t.Fatalf("registry pulls during FlacOS start = %d", env.registry.LayerPulls()-pullsBefore)
	}

	// Node 1 again: hot start.
	hot, err := env.runtimes[1].StartContainer("pytorch")
	if err != nil {
		t.Fatal(err)
	}
	if hot.Source != SourceLocal {
		t.Fatalf("third start source = %v", hot.Source)
	}

	// The paper's ordering: hot < FlacOS shared-cache < cold, with a
	// multi-x gap between FlacOS and cold.
	if !(hot.TotalNS < flac.TotalNS && flac.TotalNS < cold.TotalNS) {
		t.Fatalf("ordering violated: cold=%s flac=%s hot=%s", cold, flac, hot)
	}
	if cold.TotalNS < 2*flac.TotalNS {
		t.Fatalf("shared cache speedup too small: cold=%s flac=%s", cold, flac)
	}
}

func TestStartUnknownImage(t *testing.T) {
	env := newTestEnv(t, 1)
	if _, err := env.runtimes[0].StartContainer("nope"); err == nil {
		t.Fatal("unknown image should fail")
	}
}

func TestControllerDeployInvokeScale(t *testing.T) {
	env := newTestEnv(t, 2)
	ctl := NewController(env.runtimes, env.services)

	_, err := ctl.Deploy("resize", "pytorch", func(n *fabric.Node, req []byte) []byte {
		out := append([]byte("resized:"), req...)
		return out
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Deploy("resize", "pytorch", nil); err == nil {
		t.Fatal("duplicate deploy should fail")
	}

	// First invocation cold-starts an instance.
	out, err := ctl.Invoke(env.fab.Node(0), "resize", []byte("img1"))
	if err != nil || string(out) != "resized:img1" {
		t.Fatalf("invoke = %q, %v", out, err)
	}
	f := func() *Function {
		fn, _ := ctl.fns["resize"]
		return fn
	}()
	if f.Instances() != 1 {
		t.Fatalf("instances = %d", f.Instances())
	}
	inv, colds := f.Stats()
	if inv != 1 || colds != 1 {
		t.Fatalf("stats = %d/%d", inv, colds)
	}

	// Scale out to the second node: the shared page cache makes it a
	// non-registry start.
	rep, err := ctl.ScaleUp("resize")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Source != SourceSharedCache {
		t.Fatalf("scale-out source = %v", rep.Source)
	}
	if f.Instances() != 2 {
		t.Fatalf("instances = %d", f.Instances())
	}
	density := ctl.Density()
	if density[0]+density[1] != 2 || density[0] != 1 {
		t.Fatalf("density = %v (placement should balance)", density)
	}
	// Invocations run from any node via the shared code context.
	out, err = ctl.Invoke(env.fab.Node(1), "resize", []byte("img2"))
	if err != nil || string(out) != "resized:img2" {
		t.Fatalf("invoke from node 1 = %q, %v", out, err)
	}
}

func TestInvokeChainOverSharedMemory(t *testing.T) {
	env := newTestEnv(t, 2)
	ctl := NewController(env.runtimes, env.services)
	ctl.Deploy("stage1", "pytorch", func(n *fabric.Node, req []byte) []byte {
		return append(req, []byte("|s1")...)
	})
	ctl.Deploy("stage2", "pytorch", func(n *fabric.Node, req []byte) []byte {
		return append(req, []byte("|s2")...)
	})
	ctl.Deploy("stage3", "pytorch", func(n *fabric.Node, req []byte) []byte {
		return append(req, []byte("|s3")...)
	})
	out, err := ctl.InvokeChain(env.fab.Node(0), []string{"stage1", "stage2", "stage3"}, []byte("in"))
	if err != nil || string(out) != "in|s1|s2|s3" {
		t.Fatalf("chain = %q, %v", out, err)
	}
	if _, err := ctl.InvokeChain(env.fab.Node(0), []string{"stage1", "missing"}, nil); err == nil {
		t.Fatal("chain with missing stage should fail")
	}
}

func TestInvokeUndeployed(t *testing.T) {
	env := newTestEnv(t, 1)
	ctl := NewController(env.runtimes, env.services)
	if _, err := ctl.Invoke(env.fab.Node(0), "ghost", nil); err == nil {
		t.Fatal("undeployed function should fail")
	}
	if _, err := ctl.ScaleUp("ghost"); err == nil {
		t.Fatal("scale of undeployed function should fail")
	}
}
