package serverless

import (
	"fmt"
	"sync"
	"sync/atomic"

	"flacos/internal/fabric"
	"flacos/internal/ipc"
	"flacos/internal/trace"
)

// Function is a deployed serverless function.
type Function struct {
	Name    string
	Image   string
	Handler ipc.Handler

	mu        sync.Mutex
	instances map[int]bool // node id -> warm instance present
	invokes   uint64
	coldStart uint64
}

// Instances returns how many warm instances exist.
func (f *Function) Instances() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.instances)
}

// Stats returns invocation and cold-start counts.
func (f *Function) Stats() (invokes, coldStarts uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.invokes, f.coldStart
}

// Controller is the rack-level serverless control plane of Figure 3: it
// schedules function instances across nodes, starts containers through the
// FlacOS shared page cache, and routes invocations over migration RPC so
// service chains never cross the network.
type Controller struct {
	runtimes []*NodeRuntime
	services *ipc.ServiceTable

	mu     sync.Mutex
	fns    map[string]*Function
	load   []int // warm instances per node (density tracking)
	placer func(density []int) int

	trw []atomic.Pointer[trace.Writer] // per-node flight-recorder hooks
}

// SetPlacer installs an external placement oracle consulted by pickNode
// with a snapshot of the per-node instance density. The rack wires the
// coordinated scheduler's PickNode here so container placement sees the
// global load board (and skips crashed nodes), not just this control
// plane's own density. A nil or out-of-range answer falls back to the
// built-in least-loaded choice.
func (c *Controller) SetPlacer(p func(density []int) int) {
	c.mu.Lock()
	c.placer = p
	c.mu.Unlock()
}

// NewController creates a control plane over the per-node runtimes.
func NewController(runtimes []*NodeRuntime, services *ipc.ServiceTable) *Controller {
	return &Controller{
		runtimes: runtimes,
		services: services,
		fns:      make(map[string]*Function),
		load:     make([]int, len(runtimes)),
		trw:      make([]atomic.Pointer[trace.Writer], len(runtimes)),
	}
}

// Deploy registers a function backed by an image. No instance starts until
// the first invocation (scale from zero).
func (c *Controller) Deploy(name, image string, handler ipc.Handler) (*Function, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.fns[name]; dup {
		return nil, fmt.Errorf("serverless: function %q already deployed", name)
	}
	f := &Function{Name: name, Image: image, Handler: handler, instances: make(map[int]bool)}
	c.fns[name] = f
	// The code context is shared rack-wide immediately (§3.5): any node
	// can execute the function once an instance's state exists.
	c.services.Register(name, handler)
	return f, nil
}

// pickNode returns the next placement target: the installed placer's
// answer when one is set and sane, otherwise the least-loaded runtime
// (density-aware placement). Callers hold c.mu.
func (c *Controller) pickNode() int {
	if c.placer != nil {
		density := make([]int, len(c.load))
		copy(density, c.load)
		if id := c.placer(density); id >= 0 && id < len(c.runtimes) {
			return id
		}
	}
	best := 0
	for i := 1; i < len(c.load); i++ {
		if c.load[i] < c.load[best] {
			best = i
		}
	}
	return best
}

// ScaleUp starts one more warm instance of the function, placed on the
// least-loaded node, and returns that node's startup report. Thanks to the
// shared page cache, every instance after the rack's first skips the
// registry.
func (c *Controller) ScaleUp(name string) (StartupReport, error) {
	c.mu.Lock()
	f, ok := c.fns[name]
	if !ok {
		c.mu.Unlock()
		return StartupReport{}, fmt.Errorf("serverless: function %q not deployed", name)
	}
	nodeID := c.pickNode()
	c.mu.Unlock()

	if tw := c.tw(nodeID); tw != nil {
		tw.Emit(trace.SubServerless, trace.KPlace, 0, fnHash(name), uint64(nodeID))
	}
	rep, err := c.runtimes[nodeID].StartContainer(f.Image)
	if err != nil {
		return rep, err
	}
	c.mu.Lock()
	f.mu.Lock()
	if !f.instances[nodeID] {
		f.instances[nodeID] = true
		c.load[nodeID]++
	}
	if rep.Source == SourceRegistry {
		f.coldStart++
	}
	f.mu.Unlock()
	c.mu.Unlock()
	return rep, nil
}

// ScaleUpOn starts a warm instance on an explicit node (operator-pinned
// placement; ScaleUp picks the least-loaded node automatically).
func (c *Controller) ScaleUpOn(name string, nodeID int) (StartupReport, error) {
	c.mu.Lock()
	f, ok := c.fns[name]
	c.mu.Unlock()
	if !ok {
		return StartupReport{}, fmt.Errorf("serverless: function %q not deployed", name)
	}
	if nodeID < 0 || nodeID >= len(c.runtimes) {
		return StartupReport{}, fmt.Errorf("serverless: no node %d", nodeID)
	}
	if tw := c.tw(nodeID); tw != nil {
		tw.Emit(trace.SubServerless, trace.KPlace, 0, fnHash(name), uint64(nodeID))
	}
	rep, err := c.runtimes[nodeID].StartContainer(f.Image)
	if err != nil {
		return rep, err
	}
	c.mu.Lock()
	f.mu.Lock()
	if !f.instances[nodeID] {
		f.instances[nodeID] = true
		c.load[nodeID]++
	}
	if rep.Source == SourceRegistry {
		f.coldStart++
	}
	f.mu.Unlock()
	c.mu.Unlock()
	return rep, nil
}

// Invoke calls the function from caller, cold-starting an instance if none
// exists. The invocation itself is a migration RPC: the caller's thread
// runs the function's code against its shared state, with no cross-node
// message at all.
func (c *Controller) Invoke(caller *fabric.Node, name string, req []byte) ([]byte, error) {
	c.mu.Lock()
	f, ok := c.fns[name]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serverless: function %q not deployed", name)
	}
	return c.tracedInvoke(caller, name, len(req), func() ([]byte, error) {
		if f.Instances() == 0 {
			if _, err := c.ScaleUp(name); err != nil {
				return nil, err
			}
		}
		f.mu.Lock()
		f.invokes++
		f.mu.Unlock()
		return c.services.Call(caller, name, req)
	})
}

// InvokeChain runs a service chain: each function's output is the next
// one's input, all over shared memory (§4.1's "communication cost between
// service chains" pain point).
func (c *Controller) InvokeChain(caller *fabric.Node, names []string, req []byte) ([]byte, error) {
	cur := req
	for _, name := range names {
		out, err := c.Invoke(caller, name, cur)
		if err != nil {
			return nil, fmt.Errorf("serverless: chain stage %q: %w", name, err)
		}
		cur = out
	}
	return cur, nil
}

// EvictNode drops every warm instance on node id and re-places one
// replacement instance per affected function elsewhere (the installed
// placer skips nodes the rack considers dead). It is the membership
// Dead event's recovery hook for the control plane: containers on a
// dead node are gone, so the density books must say so and capacity
// must come back up somewhere live. Returns how many functions lost an
// instance. Idempotent — a second call finds nothing on the node.
func (c *Controller) EvictNode(id int) int {
	if id < 0 || id >= len(c.runtimes) {
		return 0
	}
	c.mu.Lock()
	var affected []string
	for name, f := range c.fns {
		f.mu.Lock()
		if f.instances[id] {
			delete(f.instances, id)
			c.load[id]--
			affected = append(affected, name)
		}
		f.mu.Unlock()
	}
	c.mu.Unlock()
	// Re-place outside the lock: ScaleUp takes c.mu itself, and the
	// replacement cold starts go through the shared page cache anyway.
	for _, name := range affected {
		if _, err := c.ScaleUp(name); err != nil {
			// The function stays at scale-from-zero; the next Invoke
			// cold-starts it. Nothing to unwind.
			continue
		}
	}
	return len(affected)
}

// Density returns warm instances per node.
func (c *Controller) Density() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, len(c.load))
	copy(out, c.load)
	return out
}
