package serverless

import (
	"fmt"
	"sync"

	"flacos/internal/fabric"
	"flacos/internal/fs"
)

// StartSource says where a container start got its image bytes.
type StartSource int

// Start sources, fastest path last.
const (
	// SourceRegistry: full cold start, layers pulled over the WAN.
	SourceRegistry StartSource = iota
	// SourceSharedCache: FlacOS start — layers served from the rack's
	// shared page cache, populated by another node's earlier start.
	SourceSharedCache
	// SourceLocal: hot start — this node already unpacked the image.
	SourceLocal
)

func (s StartSource) String() string {
	switch s {
	case SourceRegistry:
		return "registry(cold)"
	case SourceSharedCache:
		return "shared-page-cache(flacos)"
	case SourceLocal:
		return "local(hot)"
	}
	return "unknown"
}

// StartupReport breaks a container start into the paper's phases, in
// virtual nanoseconds.
type StartupReport struct {
	Source     StartSource
	ManifestNS uint64
	FetchNS    uint64
	UnpackNS   uint64
	InitNS     uint64
	TotalNS    uint64
}

// RuntimeConfig models the node-local container runtime costs.
type RuntimeConfig struct {
	// UnpackBytesPerNS is layer unpack (decompress + untar) throughput.
	// 2.0 = 2 GB/s.
	UnpackBytesPerNS float64
	// InitNS is runtime initialization: namespaces, cgroups, guest/runtime
	// boot — the floor every start pays (the paper's 3.02 s hot start is
	// dominated by it).
	InitNS uint64
	// PullChunk is the registry streaming granularity.
	PullChunk uint64
}

// DefaultRuntimeConfig reproduces the paper's container experiment scale:
// 4 GB image, ~200 MB/s registry, ~2.8 s runtime init.
func DefaultRuntimeConfig() RuntimeConfig {
	return RuntimeConfig{
		UnpackBytesPerNS: 4.0,
		PullChunk:        1 << 20,
		InitNS:           2_800_000_000,
	}
}

// NodeRuntime is one node's container runtime, sharing the FlacOS file
// system (and therefore the rack-wide page cache) with every other node.
type NodeRuntime struct {
	node     *fabric.Node
	cfg      RuntimeConfig
	mount    *fs.Mount
	registry *Registry

	mu       sync.Mutex
	unpacked map[string]bool // images with a local rootfs (hot-startable)
}

// NewNodeRuntime creates node n's runtime over the shared file system.
func NewNodeRuntime(n *fabric.Node, mount *fs.Mount, reg *Registry, cfg RuntimeConfig) *NodeRuntime {
	return &NodeRuntime{node: n, cfg: cfg, mount: mount, registry: reg, unpacked: make(map[string]bool)}
}

// Node returns the runtime's fabric node.
func (rt *NodeRuntime) Node() *fabric.Node { return rt.node }

func layerPath(l Layer) string { return "/images/" + l.Digest }

// StartContainer materializes the image and boots a container, returning
// the phase-by-phase startup report. The three paths (cold, shared-cache,
// hot) emerge naturally from what is already where.
func (rt *NodeRuntime) StartContainer(imageName string) (StartupReport, error) {
	n := rt.node
	var rep StartupReport
	t0 := n.VirtualNS()

	rt.mu.Lock()
	hot := rt.unpacked[imageName]
	rt.mu.Unlock()

	if hot {
		// Hot start: rootfs and runtime data already on this node.
		rep.Source = SourceLocal
		n.ChargeNS(int(rt.cfg.InitNS))
		rep.InitNS = rt.cfg.InitNS
		rep.TotalNS = n.VirtualNS() - t0
		return rep, nil
	}

	// Every non-hot start fetches the manifest from the registry — the
	// paper notes FlacOS cold start still downloads image metadata.
	img, err := rt.registry.PullManifest(n, imageName)
	if err != nil {
		return rep, err
	}
	rep.ManifestNS = n.VirtualNS() - t0

	// Materialize layers: through the shared page cache if some node
	// already fetched them, otherwise from the registry (also populating
	// the cache for the rest of the rack).
	fetchStart := n.VirtualNS()
	usedRegistry := false
	buf := make([]byte, rt.cfg.PullChunk)
	for _, l := range img.Layers {
		if id, ok := rt.mount.Lookup(layerPath(l)); ok && rt.mount.Size(id) == l.Size {
			// Shared-cache path: stream the layer out of global memory.
			for off := uint64(0); off < l.Size; off += rt.cfg.PullChunk {
				sz := min(rt.cfg.PullChunk, l.Size-off)
				if _, err := rt.mount.Read(id, off, buf[:sz]); err != nil {
					return rep, err
				}
			}
			continue
		}
		usedRegistry = true
		id, err := rt.mount.Create(layerPath(l))
		if err != nil {
			// Racing node created it; read it instead.
			if id2, ok := rt.mount.Lookup(layerPath(l)); ok {
				id = id2
			} else {
				return rep, err
			}
		}
		rt.registry.PullLayer(n, l, rt.cfg.PullChunk, func(off uint64, data []byte) {
			rt.mount.Write(id, off, data)
		})
	}
	rep.FetchNS = n.VirtualNS() - fetchStart

	// Unpack into the node-local rootfs.
	unpackStart := n.VirtualNS()
	n.ChargeNS(int(float64(img.TotalBytes()) / rt.cfg.UnpackBytesPerNS))
	rep.UnpackNS = n.VirtualNS() - unpackStart

	// Boot the runtime.
	n.ChargeNS(int(rt.cfg.InitNS))
	rep.InitNS = rt.cfg.InitNS

	rt.mu.Lock()
	rt.unpacked[imageName] = true
	rt.mu.Unlock()

	if usedRegistry {
		rep.Source = SourceRegistry
	} else {
		rep.Source = SourceSharedCache
	}
	rep.TotalNS = n.VirtualNS() - t0
	return rep, nil
}

// Seconds renders a virtual-nanosecond quantity as seconds.
func Seconds(ns uint64) float64 { return float64(ns) / 1e9 }

// String summarizes a report.
func (r StartupReport) String() string {
	return fmt.Sprintf("%s: total=%.3fs (manifest=%.3fs fetch=%.3fs unpack=%.3fs init=%.3fs)",
		r.Source, Seconds(r.TotalNS), Seconds(r.ManifestNS), Seconds(r.FetchNS),
		Seconds(r.UnpackNS), Seconds(r.InitNS))
}
