package serverless

import (
	"testing"

	"flacos/internal/fabric"
)

func TestInterferenceCostModel(t *testing.T) {
	im := InterferenceModel{ExecNS: 1000, PenaltyFrac: 0.5}
	cases := map[int]int{0: 1000, 1: 1000, 2: 1500, 5: 3000}
	for density, want := range cases {
		if got := im.CostOn(density); got != want {
			t.Errorf("CostOn(%d) = %d, want %d", density, got, want)
		}
	}
	d := DefaultInterference()
	if d.CostOn(2) <= d.CostOn(1) {
		t.Fatal("default model has no interference")
	}
}

func TestScaleUpOnExplicitPlacement(t *testing.T) {
	env := newTestEnv(t, 2)
	ctl := NewController(env.runtimes, env.services)
	ctl.Deploy("f", "pytorch", func(n *fabric.Node, req []byte) []byte { return req })

	if _, err := ctl.ScaleUpOn("f", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.ScaleUpOn("f", 1); err != nil { // idempotent per node
		t.Fatal(err)
	}
	density := ctl.Density()
	if density[0] != 0 || density[1] != 1 {
		t.Fatalf("density = %v, want [0 1]", density)
	}
	if _, err := ctl.ScaleUpOn("f", 9); err == nil {
		t.Fatal("bad node should fail")
	}
	if _, err := ctl.ScaleUpOn("ghost", 0); err == nil {
		t.Fatal("unknown function should fail")
	}
}

func TestInvokeOnRoutesToLeastLoadedInstance(t *testing.T) {
	env := newTestEnv(t, 2)
	ctl := NewController(env.runtimes, env.services)
	// Pack node 0 with fillers; target has instances on both nodes.
	for i := 0; i < 4; i++ {
		name := string(rune('a' + i))
		ctl.Deploy(name, "pytorch", func(n *fabric.Node, req []byte) []byte { return nil })
		if _, err := ctl.ScaleUpOn(name, 0); err != nil {
			t.Fatal(err)
		}
	}
	ctl.Deploy("target", "pytorch", func(n *fabric.Node, req []byte) []byte { return req })
	ctl.ScaleUpOn("target", 0)
	ctl.ScaleUpOn("target", 1)

	im := DefaultInterference()
	out, host, err := ctl.InvokeOn(env.fab.Node(0), "target", []byte("x"), im)
	if err != nil || string(out) != "x" {
		t.Fatalf("invoke = %q, %v", out, err)
	}
	if host != 1 {
		t.Fatalf("routed to node %d, want idle node 1", host)
	}
	// Pinned to the hot node costs more virtual time.
	caller := env.fab.Node(1)
	before := caller.VirtualNS()
	if _, err := ctl.InvokePinned(caller, "target", []byte("x"), 0, im); err != nil {
		t.Fatal(err)
	}
	pinned := caller.VirtualNS() - before
	before = caller.VirtualNS()
	if _, _, err := ctl.InvokeOn(caller, "target", []byte("x"), im); err != nil {
		t.Fatal(err)
	}
	routed := caller.VirtualNS() - before
	if pinned <= routed {
		t.Fatalf("pinned (%d ns) should cost more than routed (%d ns)", pinned, routed)
	}
	// Error paths.
	if _, _, err := ctl.InvokeOn(caller, "ghost", nil, im); err == nil {
		t.Fatal("unknown function should fail")
	}
	if _, err := ctl.InvokePinned(caller, "ghost", nil, 0, im); err == nil {
		t.Fatal("unknown function should fail")
	}
}
