package membership

import (
	"encoding/binary"
	"errors"

	"flacos/internal/fabric"
)

// The heartbeat record is the membership hot path: one cache line per
// node slot that the owner republishes every tick with a single
// full-line store plus one explicit write-back, exactly the trace-ring
// publication idiom. fabric commits a flushed line's words in ascending
// order, so the beat counter — the LAST word of the line — lands at
// home only after every payload word of the same flush. A reader that
// observes a new beat therefore observes the matching payload; a crash
// mid-publish loses the tick cleanly instead of tearing it.
//
// No per-slot fabric atomics anywhere on this path: publication is one
// write-back, observation is one invalidate + one line read. All slow
// state transitions (Joining/Alive/Suspect/Dead/Left) live on the
// separate control line, which is fabric-atomics-only — the two MUST
// NOT share a line, or a heartbeat write-back would clobber home words
// that a concurrent control CAS just committed.
//
// Record line layout (8 little-endian words):
//
//	w0 magic(32) | node(8) | slot(8) | reserved(16)
//	w1 generation   (bumped every time the slot is (re)claimed)
//	w2 incarnation  (bumped by the owner to refute a false suspicion)
//	w3 timestamp    (owner's virtual-clock ns at publish)
//	w4 reserved 0
//	w5 reserved 0
//	w6 checksum     (mix of words 0-5 and the beat)
//	w7 beat         (publication word: strictly increasing tick counter)
const (
	recordBytes = fabric.LineSize

	offMagic = 0
	offGen   = 8
	offInc   = 16
	offTS    = 24
	offCkSum = 48
	offBeat  = 56

	recordMagic = 0x464c4d42 // "FLMB"
)

// Record is one decoded heartbeat observation.
//
//flac:shared
type Record struct {
	Node        uint8
	Slot        uint8
	Generation  uint64
	Incarnation uint64
	TS          uint64 // owner's virtual-clock ns at publish
	Beat        uint64 // strictly increasing tick counter
}

// Decode validation errors. The detector treats every one of them as
// "no usable beat": a record torn by a crash, corrupted in transit, or
// forged by a stale cache line must never drive a state transition.
var (
	ErrBadMagic    = errors.New("membership: record magic mismatch")
	ErrBadSlot     = errors.New("membership: record slot mismatch")
	ErrBadChecksum = errors.New("membership: record checksum mismatch")
	ErrZeroRecord  = errors.New("membership: record has no beat yet")
	ErrBadGen      = errors.New("membership: record generation invalid")
	ErrFutureTS    = errors.New("membership: record timestamp in the future")
)

// mix64 is the splitmix64 finalizer, the same mixing the ds and redis
// layers use for hashing.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// recordSum folds the payload words and the beat into one checksum
// word. It is an integrity check against torn and bit-flipped lines,
// not an authentication code.
func recordSum(w0, gen, inc, ts, beat uint64) uint64 {
	h := mix64(w0 ^ 0x6d656d6265727368)
	h = mix64(h ^ gen)
	h = mix64(h ^ inc)
	h = mix64(h ^ ts)
	h = mix64(h ^ beat)
	return h
}

// EncodeRecord packs r into its line image.
func EncodeRecord(r Record) [recordBytes]byte {
	var b [recordBytes]byte
	w0 := uint64(recordMagic)<<32 | uint64(r.Node)<<24 | uint64(r.Slot)<<16
	binary.LittleEndian.PutUint64(b[offMagic:], w0)
	binary.LittleEndian.PutUint64(b[offGen:], r.Generation)
	binary.LittleEndian.PutUint64(b[offInc:], r.Incarnation)
	binary.LittleEndian.PutUint64(b[offTS:], r.TS)
	binary.LittleEndian.PutUint64(b[offCkSum:], recordSum(w0, r.Generation, r.Incarnation, r.TS, r.Beat))
	binary.LittleEndian.PutUint64(b[offBeat:], r.Beat)
	return b
}

// DecodeRecord unpacks and validates a heartbeat line read from the
// arena for slot wantSlot. maxVNS is the freshest virtual-clock value
// the reader can vouch for rack-wide (plus any slack it tolerates); a
// record stamped beyond it cannot have been produced by a well-behaved
// owner and is rejected. A failed decode means the observation carries
// no information — never that the node is alive or dead.
func DecodeRecord(b [recordBytes]byte, wantSlot int, maxVNS uint64) (Record, error) {
	w0 := binary.LittleEndian.Uint64(b[offMagic:])
	gen := binary.LittleEndian.Uint64(b[offGen:])
	inc := binary.LittleEndian.Uint64(b[offInc:])
	ts := binary.LittleEndian.Uint64(b[offTS:])
	sum := binary.LittleEndian.Uint64(b[offCkSum:])
	beat := binary.LittleEndian.Uint64(b[offBeat:])
	if beat == 0 {
		// A slot that has never published is all-zero by construction;
		// report it distinctly so callers can tell "empty" from "garbage".
		for _, x := range b {
			if x != 0 {
				return Record{}, ErrBadChecksum
			}
		}
		return Record{}, ErrZeroRecord
	}
	if w0>>32 != recordMagic {
		return Record{}, ErrBadMagic
	}
	if sum != recordSum(w0, gen, inc, ts, beat) {
		return Record{}, ErrBadChecksum
	}
	// The checksum covers only the meaningful words; reject corruption in
	// the reserved ones too, so every accepted line is exactly what
	// EncodeRecord would produce (accepted => canonical round-trip).
	if w0&0xffff != 0 ||
		binary.LittleEndian.Uint64(b[offTS+8:]) != 0 ||
		binary.LittleEndian.Uint64(b[offTS+16:]) != 0 {
		return Record{}, ErrBadChecksum
	}
	r := Record{
		Node:        uint8(w0 >> 24),
		Slot:        uint8(w0 >> 16),
		Generation:  gen,
		Incarnation: inc,
		TS:          ts,
		Beat:        beat,
	}
	if int(r.Slot) != wantSlot {
		return Record{}, ErrBadSlot
	}
	if gen == 0 || gen > 1<<32 {
		return Record{}, ErrBadGen
	}
	if ts > maxVNS {
		return Record{}, ErrFutureTS
	}
	return r, nil
}
