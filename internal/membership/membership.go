// Package membership is the rack's coordinated failure-detection and
// self-healing layer: an arena-resident membership table (one heartbeat
// line and one control line per node slot), a phi-accrual-style
// suspicion detector every member runs over the other slots, and a
// rack-wide event stream (Join/Suspect/Alive/Dead/Left) that the other
// subsystems subscribe to so ONE detection drives recovery everywhere
// — sched reclaims a dead node's leases, the redis RackStore fences its
// views, serverless re-places its containers — instead of each
// subsystem rediscovering node death independently.
//
// The layer also implements node hot-plug: a fresh (or restarted) node
// CASes into a slot with a bumped generation number, resyncs against
// the shared structures, and starts serving while the rack is under
// load. Generation numbers fence zombies — a node declared Dead that
// keeps writing does so under a stale generation every consumer can
// reject deterministically; incarnation numbers let a falsely suspected
// node refute the suspicion (SWIM-style) without a generation bump.
package membership

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/trace"
)

// State is a slot's lifecycle state, stored in the control word.
type State uint8

// Slot states. All transitions are CAS64s on the control word.
const (
	StateFree State = iota
	StateJoining
	StateAlive
	StateSuspect
	StateDead
	StateLeft
)

func (s State) String() string {
	switch s {
	case StateFree:
		return "free"
	case StateJoining:
		return "joining"
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateLeft:
		return "left"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// The control word packs gen(32) | incarnation(16) | node(8) | state(8).
// It is the slow-path authority on a slot's identity and state; every
// transition is a CAS, so exactly one contender wins each transition
// rack-wide no matter how many detectors fire concurrently.
func packCtl(gen, inc uint64, node int, st State) uint64 {
	return gen<<32 | (inc&0xffff)<<16 | uint64(node&0xff)<<8 | uint64(st)
}

func ctlGen(w uint64) uint64  { return w >> 32 }
func ctlInc(w uint64) uint64  { return (w >> 16) & 0xffff }
func ctlNode(w uint64) int    { return int((w >> 8) & 0xff) }
func ctlState(w uint64) State { return State(w & 0xff) }

// Control line layout: one cache line per slot, fabric atomics ONLY —
// it must never share a line with the plainly-written heartbeat record,
// or a heartbeat write-back would clobber home words a concurrent
// control CAS just committed. Words:
//
//	w0 ctl       gen|incarnation|node|state (all transitions via CAS64)
//	w1 stampVNS  rack virtual time of the last state transition
//
//flac:shared
//flac:published-by=CAS64
type CtlLine struct {
	Ctl      uint64
	StampVNS uint64
	_        [6]uint64
}

const (
	ctlLineBytes = fabric.LineSize
	offCtl       = 0
	offStamp     = 8
)

// Config tunes the membership layer. Zero values get defaults sized for
// the simulated rack's microsecond-scale ticks.
type Config struct {
	// Slots is the table capacity. Hot-plugging a node into a NEW slot
	// needs free headroom beyond the boot-time population (default
	// f.NumNodes() + 2, max 255).
	Slots int
	// HeartbeatTick is how often each member republishes its record.
	HeartbeatTick time.Duration
	// DetectTick is the detector's observation period (default
	// HeartbeatTick).
	DetectTick time.Duration
	// PhiSuspect is the phi threshold at which an observer moves a slot
	// Alive -> Suspect (default 3: roughly 7x the mean beat interval
	// without an arrival).
	PhiSuspect float64
	// PhiDead is the phi threshold required (together with DeadStrikes)
	// to move Suspect -> Dead (default 8).
	PhiDead float64
	// DeadStrikes is how many consecutive detector ticks the beat must
	// stay frozen ABOVE PhiDead before the slot is declared Dead. The
	// strike counter only advances when the observer's own tick ran, so
	// a stalled observer cannot rush a verdict (same self-normalization
	// as sched's lease keeper).
	DeadStrikes int
	// Window is the per-slot sliding window of inter-beat intervals the
	// phi estimate is computed over (default 16).
	Window int
	// ClockSlackNS is how far beyond the rack's max virtual clock a
	// record timestamp may point before the detector rejects it as
	// corrupt (default 1ms).
	ClockSlackNS uint64
}

func (c *Config) fillDefaults(f *fabric.Fabric) {
	if c.Slots == 0 {
		c.Slots = f.NumNodes() + 2
	}
	if c.Slots > 255 {
		panic("membership: at most 255 slots (slot is a packed byte)")
	}
	if c.HeartbeatTick == 0 {
		c.HeartbeatTick = 200 * time.Microsecond
	}
	if c.DetectTick == 0 {
		c.DetectTick = c.HeartbeatTick
	}
	if c.PhiSuspect == 0 {
		c.PhiSuspect = 3
	}
	if c.PhiDead == 0 {
		c.PhiDead = 8
	}
	if c.DeadStrikes == 0 {
		c.DeadStrikes = 3
	}
	if c.Window == 0 {
		c.Window = 16
	}
	if c.ClockSlackNS == 0 {
		c.ClockSlackNS = uint64(time.Millisecond.Nanoseconds())
	}
}

// Table is the rack's membership table: the arena-resident slots plus
// the host-side liveness mirror the hot paths consult.
type Table struct {
	fab *fabric.Fabric
	cfg Config

	hbG  fabric.GPtr // heartbeat records, one line per slot (cached writes)
	ctlG fabric.GPtr // control lines, one per slot (fabric atomics only)

	// alive mirrors each NODE's serving state as the local agents last
	// observed it (Alive or Suspect = true). It is the zero-fabric-cost
	// oracle sched's placement hot path consults; authoritative state is
	// always the control word.
	alive []atomic.Bool

	mu      sync.Mutex
	members map[int]*Member // by slot
}

// New lays the membership table out in f's global memory. Every slot
// starts Free; nodes join explicitly (core joins the boot population,
// hot-plugged nodes join at runtime).
func New(f *fabric.Fabric, cfg Config) *Table {
	cfg.fillDefaults(f)
	t := &Table{
		fab:     f,
		cfg:     cfg,
		hbG:     f.Reserve(uint64(cfg.Slots)*recordBytes, fabric.LineSize),
		ctlG:    f.Reserve(uint64(cfg.Slots)*ctlLineBytes, fabric.LineSize),
		alive:   make([]atomic.Bool, f.NumNodes()),
		members: make(map[int]*Member),
	}
	return t
}

// Slots returns the table capacity.
func (t *Table) Slots() int { return t.cfg.Slots }

// Fabric returns the fabric the table lives on.
func (t *Table) Fabric() *fabric.Fabric { return t.fab }

func (t *Table) hbSlotG(slot int) fabric.GPtr  { return t.hbG.Add(uint64(slot) * recordBytes) }
func (t *Table) ctlSlotG(slot int) fabric.GPtr { return t.ctlG.Add(uint64(slot)*ctlLineBytes + offCtl) }
func (t *Table) stampG(slot int) fabric.GPtr   { return t.ctlG.Add(uint64(slot)*ctlLineBytes + offStamp) }

// Alive reports whether node id is currently serving (Alive or Suspect
// in some slot) as last observed by this host's agents. It is the
// liveness oracle sched.SetLiveness consumes: a pure host-side read,
// safe on any hot path. Nodes that never joined report false.
func (t *Table) Alive(id int) bool {
	if id < 0 || id >= len(t.alive) {
		return false
	}
	return t.alive[id].Load()
}

// SlotInfo is one slot's decoded control state (debug and tests).
type SlotInfo struct {
	Slot        int
	State       State
	Node        int
	Generation  uint64
	Incarnation uint64
	StampVNS    uint64
}

// Snapshot reads every slot's control word through node n.
func (t *Table) Snapshot(n *fabric.Node) []SlotInfo {
	out := make([]SlotInfo, t.cfg.Slots)
	for i := range out {
		w := n.AtomicLoad64(t.ctlSlotG(i))
		out[i] = SlotInfo{
			Slot:        i,
			State:       ctlState(w),
			Node:        ctlNode(w),
			Generation:  ctlGen(w),
			Incarnation: ctlInc(w),
			StampVNS:    n.AtomicLoad64(t.stampG(i)),
		}
	}
	return out
}

// Join claims a slot for node n and returns the joined Member in the
// Joining state: the caller resyncs (scheduler board, redis index,
// trace registration, whatever its role needs) and then Activates. Slot
// preference order: the slot this node previously occupied (restart
// rejoin, generation bumped), then a Free slot, then a Dead or Left
// slot of some other node (slot recycling under a bumped generation).
func (t *Table) Join(n *fabric.Node) (*Member, error) {
	// Rejoin first: a restarted node must reclaim its old identity slot
	// so every observer sees one (node, slot) history with a bumped
	// generation rather than the same node in two slots.
	for slot := 0; slot < t.cfg.Slots; slot++ {
		w := n.AtomicLoad64(t.ctlSlotG(slot))
		if ctlState(w) != StateFree && ctlNode(w) == n.ID() {
			return t.joinSlot(n, slot)
		}
	}
	for slot := 0; slot < t.cfg.Slots; slot++ {
		w := n.AtomicLoad64(t.ctlSlotG(slot))
		if ctlState(w) == StateFree {
			if m, err := t.joinSlot(n, slot); err == nil {
				return m, nil
			}
		}
	}
	for slot := 0; slot < t.cfg.Slots; slot++ {
		w := n.AtomicLoad64(t.ctlSlotG(slot))
		if st := ctlState(w); st == StateDead || st == StateLeft {
			if m, err := t.joinSlot(n, slot); err == nil {
				return m, nil
			}
		}
	}
	return nil, fmt.Errorf("membership: no joinable slot among %d for node %d", t.cfg.Slots, n.ID())
}

// JoinSlot claims an explicit slot (deterministic boot layout: core
// joins node i into slot i). The slot must be Free, previously owned by
// this node, or Dead/Left.
func (t *Table) JoinSlot(n *fabric.Node, slot int) (*Member, error) {
	if slot < 0 || slot >= t.cfg.Slots {
		return nil, fmt.Errorf("membership: slot %d out of range [0,%d)", slot, t.cfg.Slots)
	}
	return t.joinSlot(n, slot)
}

func (t *Table) joinSlot(n *fabric.Node, slot int) (*Member, error) {
	for {
		w := n.AtomicLoad64(t.ctlSlotG(slot))
		st := ctlState(w)
		rejoin := st != StateFree && ctlNode(w) == n.ID()
		if !rejoin && st != StateFree && st != StateDead && st != StateLeft {
			return nil, fmt.Errorf("membership: slot %d is %s (node %d gen %d), not joinable by node %d",
				slot, st, ctlNode(w), ctlGen(w), n.ID())
		}
		gen := ctlGen(w) + 1
		next := packCtl(gen, 0, n.ID(), StateJoining)
		if !n.CAS64(t.ctlSlotG(slot), w, next) {
			continue // raced with another joiner or a detector; re-read
		}
		n.AtomicStore64(t.stampG(slot), n.VirtualNS())
		m := &Member{
			t:    t,
			n:    n,
			slot: slot,
			gen:  gen,
			inc:  0,
			stop: make(chan struct{}),
		}
		m.lastCtl = make([]uint64, t.cfg.Slots)
		t.mu.Lock()
		t.members[slot] = m
		t.mu.Unlock()
		// Publish the first heartbeat immediately so detectors have a
		// baseline for the new generation before the agent's first tick.
		m.publishBeat()
		return m, nil
	}
}

// Member is one node's live participation in the table: its heartbeat
// publisher, its detector agent over the other slots, and its local
// subscriber list for the rack-wide event stream.
type Member struct {
	t    *Table
	n    *fabric.Node
	slot int
	gen  uint64
	inc  uint64 // local incarnation (bumped on refute)
	beat uint64

	trw atomic.Pointer[trace.Writer]

	subMu sync.Mutex
	subs  []func(Event)

	// Detector state, all node-local host memory: it costs nothing and
	// legitimately dies with the node.
	lastCtl []uint64
	obs     map[int]*slotObs

	stop     chan struct{}
	stopOnce sync.Once
	started  atomic.Bool
	wg       sync.WaitGroup
}

// Node returns the fabric node this member runs on.
func (m *Member) Node() *fabric.Node { return m.n }

// Slot returns the member's table slot.
func (m *Member) Slot() int { return m.slot }

// Generation returns the generation this member joined under — the
// fencing token consumers compare zombie writes against.
func (m *Member) Generation() uint64 { return m.gen }

// Incarnation returns the member's current incarnation number.
func (m *Member) Incarnation() uint64 { return atomic.LoadUint64(&m.inc) }

// SetTrace attaches a flight-recorder writer; membership transitions
// this member performs or observes then land in the rack timeline.
// Safe while the member is running (core's EnableTrace may come late).
func (m *Member) SetTrace(w *trace.Writer) { m.trw.Store(w) }

func (m *Member) tw() *trace.Writer { return m.trw.Load() }

// Subscribe registers fn on this member's event stream. fn runs on the
// member's agent goroutine; EVERY member's agent observes and delivers
// the same rack-wide transitions, so cross-member consumers must be
// idempotent (or dedup on (Slot, Generation), as core does).
func (m *Member) Subscribe(fn func(Event)) {
	m.subMu.Lock()
	m.subs = append(m.subs, fn)
	m.subMu.Unlock()
}

// Activate transitions the member Joining -> Alive after its resync is
// complete; the node is serving from this moment.
func (m *Member) Activate() error {
	want := packCtl(m.gen, 0, m.n.ID(), StateJoining)
	next := packCtl(m.gen, 0, m.n.ID(), StateAlive)
	if !m.n.CAS64(m.t.ctlSlotG(m.slot), want, next) {
		w := m.n.AtomicLoad64(m.t.ctlSlotG(m.slot))
		return fmt.Errorf("membership: activate lost slot %d: now %s node %d gen %d (joined gen %d)",
			m.slot, ctlState(w), ctlNode(w), ctlGen(w), m.gen)
	}
	m.n.AtomicStore64(m.t.stampG(m.slot), m.n.VirtualNS())
	m.t.alive[m.n.ID()].Store(true)
	if tw := m.tw(); tw != nil {
		tw.Emit(trace.SubMembership, trace.KJoin, 0, uint64(m.slot), m.gen)
	}
	return nil
}

// Start boots the member's heartbeat publisher and detector agent.
// Idempotent. Both goroutines absorb the fabric panic of their own
// node's crash — the heartbeat freezes exactly at the crash, which is
// precisely the signal the other detectors key on.
func (m *Member) Start() {
	if !m.started.CompareAndSwap(false, true) {
		return
	}
	m.wg.Add(2)
	go m.heartbeatLoop()
	go m.agentLoop()
}

// Stop halts the member's goroutines without a Leave: the slot keeps
// its state (a crash-like disappearance as far as observers care).
// Idempotent; safe on members whose node already crashed.
func (m *Member) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
}

// Leave performs a clean departure: Alive -> Left (best effort), then
// stops the goroutines. Observers deliver EvLeft, not EvDead, so
// consumers can skip crash recovery.
func (m *Member) Leave() {
	want := packCtl(m.gen, atomic.LoadUint64(&m.inc), m.n.ID(), StateAlive)
	next := packCtl(m.gen, atomic.LoadUint64(&m.inc), m.n.ID(), StateLeft)
	if m.n.CAS64(m.t.ctlSlotG(m.slot), want, next) {
		m.n.AtomicStore64(m.t.stampG(m.slot), m.n.VirtualNS())
		m.t.alive[m.n.ID()].Store(false)
		if tw := m.tw(); tw != nil {
			tw.Emit(trace.SubMembership, trace.KLeft, 0, uint64(m.slot), m.gen)
		}
	}
	m.Stop()
}

// publishBeat composes the member's heartbeat record in its cache and
// pushes the whole line home with one write-back. The beat counter is
// the line's last word, so fabric's ascending commit order makes it the
// publication word — observers never see a new beat with old payload.
func (m *Member) publishBeat() {
	beat := atomic.AddUint64(&m.beat, 1)
	line := EncodeRecord(Record{
		Node:        uint8(m.n.ID()),
		Slot:        uint8(m.slot),
		Generation:  m.gen,
		Incarnation: atomic.LoadUint64(&m.inc),
		TS:          m.n.VirtualNS(),
		Beat:        beat,
	})
	g := m.t.hbSlotG(m.slot)
	m.n.Write(g, line[:])
	m.n.WriteBackRange(g, recordBytes)
}

// heartbeatLoop republishes the record every tick until Stop or crash.
func (m *Member) heartbeatLoop() {
	defer m.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			if m.n.Crashed() {
				return // the beat freezes exactly at the crash
			}
			panic(r)
		}
	}()
	tick := time.NewTicker(m.t.cfg.HeartbeatTick)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			m.publishBeat()
		}
	}
}
