package membership

import (
	"bytes"
	"errors"
	"testing"
)

// Heartbeat lines are read straight out of the arena, so after a crash
// or under torture faults the detector can see anything: half of one
// publish and half of another, random bit flips, a stale generation's
// line, a record stamped by a clock that never existed. The decoder is
// the only gate — FuzzHeartbeatRecordDecode drives arbitrary lines
// through it and checks that everything it accepts is exactly a
// canonical encoding with in-range fields.
func FuzzHeartbeatRecordDecode(f *testing.F) {
	// Canonical records at a few shapes.
	f.Add(lineBytes(EncodeRecord(Record{Node: 1, Slot: 3, Generation: 1, Incarnation: 0, TS: 1000, Beat: 1})), 3, uint64(1<<40))
	f.Add(lineBytes(EncodeRecord(Record{Node: 0, Slot: 0, Generation: 1 << 32, Incarnation: 0xffff, TS: 0, Beat: 1 << 50})), 0, uint64(0))
	// Never-published slot (all zero) and a torn variant of it.
	f.Add(make([]byte, recordBytes), 0, uint64(1<<40))
	torn := lineBytes(EncodeRecord(Record{Node: 2, Slot: 2, Generation: 7, TS: 500, Beat: 9}))
	torn[offGen] ^= 0x01 // generation word from a different publish
	f.Add(torn, 2, uint64(1<<40))
	// Valid checksum but out-of-policy fields.
	f.Add(lineBytes(EncodeRecord(Record{Node: 4, Slot: 4, Generation: 0, TS: 10, Beat: 3})), 4, uint64(1<<40))
	f.Add(lineBytes(EncodeRecord(Record{Node: 5, Slot: 5, Generation: 2, TS: 1 << 60, Beat: 3})), 5, uint64(1<<30))

	f.Fuzz(func(t *testing.T, data []byte, wantSlot int, maxVNS uint64) {
		var line [recordBytes]byte
		copy(line[:], data)
		wantSlot &= 0xff // slots are uint8-addressed, like the table's

		rec, err := DecodeRecord(line, wantSlot, maxVNS)
		if err != nil {
			return // rejection is always safe; acceptance carries the burden
		}
		// Anything accepted must satisfy the policy the detector relies on.
		if int(rec.Slot) != wantSlot {
			t.Fatalf("accepted record for slot %d when reading slot %d", rec.Slot, wantSlot)
		}
		if rec.Generation == 0 || rec.Generation > 1<<32 {
			t.Fatalf("accepted out-of-range generation %#x", rec.Generation)
		}
		if rec.TS > maxVNS {
			t.Fatalf("accepted future timestamp %d > maxVNS %d", rec.TS, maxVNS)
		}
		if rec.Beat == 0 {
			t.Fatal("accepted a record with beat 0")
		}
		// And must be exactly a canonical encoding: no accepted line that
		// EncodeRecord could not itself have produced.
		re := EncodeRecord(rec)
		if !bytes.Equal(re[:], line[:]) {
			t.Fatalf("accepted non-canonical line:\n got %x\nwant %x", line, re)
		}
	})
}

func lineBytes(b [recordBytes]byte) []byte { return b[:] }

func TestRecordRoundTrip(t *testing.T) {
	r := Record{Node: 7, Slot: 9, Generation: 42, Incarnation: 3, TS: 123456789, Beat: 1000}
	got, err := DecodeRecord(EncodeRecord(r), 9, 1<<40)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != r {
		t.Fatalf("round trip: got %+v want %+v", got, r)
	}
}

func TestRecordRejections(t *testing.T) {
	valid := Record{Node: 1, Slot: 2, Generation: 5, Incarnation: 1, TS: 1000, Beat: 77}
	maxVNS := uint64(1 << 40)

	cases := []struct {
		name    string
		mutate  func(*[recordBytes]byte)
		slot    int
		max     uint64
		wantErr error
	}{
		{"zero line", func(b *[recordBytes]byte) { *b = [recordBytes]byte{} }, 2, maxVNS, ErrZeroRecord},
		{"torn zero line", func(b *[recordBytes]byte) {
			*b = [recordBytes]byte{}
			b[offGen] = 0x5a // payload word landed, beat word did not
		}, 2, maxVNS, ErrBadChecksum},
		{"bad magic", func(b *[recordBytes]byte) { b[7] ^= 0xff }, 2, maxVNS, ErrBadMagic},
		{"flipped generation", func(b *[recordBytes]byte) { b[offGen] ^= 0x01 }, 2, maxVNS, ErrBadChecksum},
		{"flipped beat", func(b *[recordBytes]byte) { b[offBeat+2] ^= 0x10 }, 2, maxVNS, ErrBadChecksum},
		{"flipped reserved word", func(b *[recordBytes]byte) { b[offTS+8] = 1 }, 2, maxVNS, ErrBadChecksum},
		{"wrong slot", nil, 3, maxVNS, ErrBadSlot},
		{"zero generation", func(b *[recordBytes]byte) {
			*b = EncodeRecord(Record{Node: 1, Slot: 2, Generation: 0, TS: 1000, Beat: 77})
		}, 2, maxVNS, ErrBadGen},
		{"oversized generation", func(b *[recordBytes]byte) {
			*b = EncodeRecord(Record{Node: 1, Slot: 2, Generation: 1<<32 + 1, TS: 1000, Beat: 77})
		}, 2, maxVNS, ErrBadGen},
		{"future timestamp", nil, 2, 999, ErrFutureTS},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			line := EncodeRecord(valid)
			if tc.mutate != nil {
				tc.mutate(&line)
			}
			_, err := DecodeRecord(line, tc.slot, tc.max)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("got %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// A torn publish — any strict byte-prefix of the new line over the old
// one — must either decode as the OLD record or be rejected; it must
// never surface fields from the new publish, because fabric commits
// flushed words in ascending order and the beat (last word) is the
// publication gate.
func TestTornPublishNeverYieldsNewFields(t *testing.T) {
	old := EncodeRecord(Record{Node: 1, Slot: 0, Generation: 3, Incarnation: 0, TS: 5000, Beat: 10})
	next := EncodeRecord(Record{Node: 1, Slot: 0, Generation: 3, Incarnation: 1, TS: 6000, Beat: 11})
	for cut := 0; cut < recordBytes; cut++ { // cut=recordBytes would be a full publish
		line := old
		copy(line[:cut], next[:cut])
		if line == next {
			continue // prefix happens to reconstruct the complete publish
		}
		rec, err := DecodeRecord(line, 0, 1<<40)
		if err != nil {
			continue
		}
		if rec.Beat != 10 || rec.Incarnation != 0 || rec.TS != 5000 {
			t.Fatalf("cut %d: torn line decoded to new-publish fields: %+v", cut, rec)
		}
	}
}
