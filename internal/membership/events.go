package membership

// EventKind classifies one membership transition.
type EventKind uint8

// Event kinds delivered on the rack-wide stream.
const (
	// EvJoin: a node finished joining (Joining -> Alive) — it has
	// resynced and is serving.
	EvJoin EventKind = iota
	// EvSuspect: a detector crossed the suspicion threshold.
	EvSuspect
	// EvAlive: a suspicion was lifted (refutation or a resumed beat).
	EvAlive
	// EvDead: the rack declared the slot's occupant dead. Consumers run
	// recovery (lease reclaim, view fencing, container eviction) keyed
	// on (Slot, Generation) for idempotence.
	EvDead
	// EvLeft: a clean departure; no crash recovery needed.
	EvLeft
	// EvDegraded: the health layer's anomaly detector concluded the
	// slot's occupant is degrading (gray failure) while still alive.
	// Raised by internal/health onto the same stream so consumers see
	// liveness and health transitions in one place; the self-healing
	// controller reacts by draining the node BEFORE it dies.
	EvDegraded
	// EvRecovered: the degraded node's signals returned to normal under
	// the same generation; the controller may rejoin it.
	EvRecovered
)

func (k EventKind) String() string {
	switch k {
	case EvJoin:
		return "join"
	case EvSuspect:
		return "suspect"
	case EvAlive:
		return "alive"
	case EvDead:
		return "dead"
	case EvLeft:
		return "left"
	case EvDegraded:
		return "degraded"
	case EvRecovered:
		return "recovered"
	}
	return "event(?)"
}

// Event is one membership transition as observed by a member's agent.
// Every live member's agent observes and delivers the same rack-wide
// transitions (the control table IS the log — there is no separate
// event ring to wedge or tear), so subscribers shared across members
// must be idempotent or dedup on (Slot, Generation).
type Event struct {
	Kind        EventKind
	Slot        int
	Node        int    // the slot's occupant at the transition
	Generation  uint64 // the occupant's generation (fencing token)
	Incarnation uint64
}

// diffCtl synthesizes events by comparing slot's control word against
// what this agent last saw, updating the host-side liveness mirror on
// the way. A generation bump observed without an intervening Dead/Left
// means the node restarted faster than detection — the old incarnation
// still gets its EvDead (under the OLD generation) so recovery runs,
// followed by the new generation's own lifecycle events.
func (m *Member) diffCtl(slot int, w uint64) {
	prev := m.lastCtl[slot]
	if w == prev {
		return
	}
	m.lastCtl[slot] = w
	node, st, gen, inc := ctlNode(w), ctlState(w), ctlGen(w), ctlInc(w)
	pst := ctlState(prev)

	if prev != 0 && gen > ctlGen(prev) && (pst == StateAlive || pst == StateSuspect || pst == StateJoining) {
		// Restart-beats-detection: the slot was reclaimed under a new
		// generation while the old one was still nominally serving. The
		// old generation is gone exactly as if it had been declared Dead.
		m.deliver(Event{Kind: EvDead, Slot: slot, Node: ctlNode(prev), Generation: ctlGen(prev), Incarnation: ctlInc(prev)})
	}

	switch st {
	case StateJoining:
		// Not serving yet; EvJoin fires on Activate.
		m.t.setAliveMirror(node, false)
	case StateAlive:
		m.t.setAliveMirror(node, true)
		if pst == StateSuspect && gen == ctlGen(prev) {
			m.deliver(Event{Kind: EvAlive, Slot: slot, Node: node, Generation: gen, Incarnation: inc})
		} else {
			m.deliver(Event{Kind: EvJoin, Slot: slot, Node: node, Generation: gen, Incarnation: inc})
		}
	case StateSuspect:
		// Suspicion does NOT stop placement: a suspect is probably slow,
		// and a wrong verdict is fenced anyway.
		m.deliver(Event{Kind: EvSuspect, Slot: slot, Node: node, Generation: gen, Incarnation: inc})
	case StateDead:
		m.t.setAliveMirror(node, false)
		m.deliver(Event{Kind: EvDead, Slot: slot, Node: node, Generation: gen, Incarnation: inc})
	case StateLeft:
		m.t.setAliveMirror(node, false)
		m.deliver(Event{Kind: EvLeft, Slot: slot, Node: node, Generation: gen, Incarnation: inc})
	}
}

// setAliveMirror updates the host-side liveness oracle. Guarded against
// out-of-range nodes: control words can in principle carry garbage
// after corruption faults, and the mirror must never panic a hot path.
func (t *Table) setAliveMirror(node int, alive bool) {
	if node < 0 || node >= len(t.alive) {
		return
	}
	t.alive[node].Store(alive)
}

// Publish delivers ev to this member's subscribers as if the member's
// own agent had observed it. It is how companion layers extend the
// rack-wide stream with transitions the membership control table does
// not carry — internal/health raises EvDegraded/EvRecovered through it
// — so consumers subscribe once and see liveness AND health in one
// ordered feed. Same contract as agent-delivered events: when several
// members' companions publish the same rack-wide transition, consumers
// must dedup on (Slot, Generation).
func (m *Member) Publish(ev Event) { m.deliver(ev) }

func (m *Member) deliver(ev Event) {
	m.subMu.Lock()
	subs := make([]func(Event), len(m.subs))
	copy(subs, m.subs)
	m.subMu.Unlock()
	for _, fn := range subs {
		fn(ev)
	}
}
