package membership

import (
	"math"
	"sync/atomic"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/trace"
)

// The detector is phi-accrual style (Hayashibara et al.), hybridized
// with the frozen-beat strike counting sched's lease keeper proved out:
// each agent keeps a sliding window of observed inter-beat intervals
// per slot and converts "time since the last beat" into a suspicion
// level phi; crossing PhiSuspect proposes Suspect, and a slot is only
// declared Dead after phi has stayed above PhiDead for DeadStrikes
// consecutive ticks OF THIS OBSERVER — the strike counter advances with
// the observer's own loop, so an observer that was itself descheduled
// for a while resumes with stale elapsed times but no accumulated
// strikes, and cannot rush a verdict it didn't watch happen.
//
// Every transition is a CAS on the control word, so when five agents
// conclude "dead" simultaneously exactly one performs the transition —
// and a false verdict is SAFE (the fencing generation makes the zombie
// rejectable everywhere) but still avoided, because a suspected node
// refutes by bumping its incarnation (SWIM-style) the moment it sees
// itself suspected.

// slotObs is one agent's running observation state for a slot.
type slotObs struct {
	gen       uint64    // generation the observation history belongs to
	beat      uint64    // last observed beat
	lastBeatW time.Time // wall time of the last beat advance
	intervals []float64 // sliding window of inter-beat wall intervals (ns)
	strikes   int       // consecutive ticks with phi >= PhiDead
}

// phi converts the elapsed time since the last beat into a suspicion
// level: phi = log10(1 / P(beat still pending)) under an exponential
// inter-arrival model, i.e. elapsed/mean * log10(e). Fresh windows fall
// back to 4 heartbeat ticks as the mean.
func (t *Table) phi(o *slotObs, elapsed time.Duration) float64 {
	mean := 4 * float64(t.cfg.HeartbeatTick.Nanoseconds())
	if len(o.intervals) >= 2 {
		sum := 0.0
		for _, v := range o.intervals {
			sum += v
		}
		mean = sum / float64(len(o.intervals))
	}
	if mean <= 0 {
		mean = float64(t.cfg.HeartbeatTick.Nanoseconds())
	}
	return float64(elapsed.Nanoseconds()) / mean * math.Log10E
}

// maxVNS returns the freshest virtual-clock value rack-wide plus the
// configured slack — the bound a valid record timestamp cannot exceed.
func (t *Table) maxVNS() uint64 {
	var max uint64
	for i := 0; i < t.fab.NumNodes(); i++ {
		if v := t.fab.Node(i).VirtualNS(); v > max {
			max = v
		}
	}
	return max + t.cfg.ClockSlackNS
}

// agentLoop is the member's detector: every tick it reads each other
// slot's control word and heartbeat record, updates the phi estimate,
// performs Suspect/Dead transitions it is entitled to, refutes
// suspicions against itself, and synthesizes the rack-wide event stream
// from control-word diffs.
func (m *Member) agentLoop() {
	defer m.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			if m.n.Crashed() {
				return // this agent died with its node
			}
			panic(r)
		}
	}()
	m.obs = make(map[int]*slotObs)
	tick := time.NewTicker(m.t.cfg.DetectTick)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			m.observeAll()
		}
	}
}

func (m *Member) observeAll() {
	maxVNS := m.t.maxVNS()
	for slot := 0; slot < m.t.cfg.Slots; slot++ {
		w := m.n.AtomicLoad64(m.t.ctlSlotG(slot))
		m.diffCtl(slot, w)
		if slot == m.slot {
			m.refuteIfSuspected(w)
			continue
		}
		st := ctlState(w)
		if st == StateFree || st == StateDead || st == StateLeft {
			delete(m.obs, slot)
			continue
		}
		m.observeSlot(slot, w, maxVNS)
	}
}

// observeSlot reads slot's heartbeat record and applies the detector's
// transition rules against control word w (state Joining/Alive/Suspect).
func (m *Member) observeSlot(slot int, w uint64, maxVNS uint64) {
	g := m.t.hbSlotG(slot)
	m.n.InvalidateRange(g, recordBytes)
	var line [recordBytes]byte
	m.n.Read(g, line[:])
	rec, err := DecodeRecord(line, slot, maxVNS)

	o := m.obs[slot]
	if o == nil || (err == nil && o.gen != rec.Generation) {
		// First sight of this slot (or of a new generation): start a
		// fresh observation history; never carry strikes across a rejoin.
		o = &slotObs{lastBeatW: time.Now()}
		if err == nil {
			o.gen, o.beat = rec.Generation, rec.Beat
		}
		m.obs[slot] = o
		return
	}

	if err == nil && rec.Generation == ctlGen(w) && rec.Beat > o.beat {
		// A live beat under the current generation: record the arrival.
		now := time.Now()
		iv := float64(now.Sub(o.lastBeatW).Nanoseconds())
		o.intervals = append(o.intervals, iv)
		if len(o.intervals) > m.t.cfg.Window {
			o.intervals = o.intervals[1:]
		}
		o.beat, o.lastBeatW, o.strikes = rec.Beat, now, 0
		// A beating Suspect is alive: lift the suspicion on its behalf
		// (its own refutation may land first; either CAS winning is fine).
		if ctlState(w) == StateSuspect && rec.Incarnation >= ctlInc(w) {
			next := packCtl(ctlGen(w), rec.Incarnation, ctlNode(w), StateAlive)
			if m.n.CAS64(m.t.ctlSlotG(slot), w, next) {
				m.n.AtomicStore64(m.t.stampG(slot), m.n.VirtualNS())
			}
		}
		return
	}

	// No usable beat this tick (frozen, torn, corrupt, or from a stale
	// generation — all treated identically: zero information).
	phi := m.t.phi(o, time.Since(o.lastBeatW))
	st := ctlState(w)
	if st != StateSuspect {
		o.strikes = 0
		if phi >= m.t.cfg.PhiSuspect && st == StateAlive {
			next := packCtl(ctlGen(w), ctlInc(w), ctlNode(w), StateSuspect)
			if m.n.CAS64(m.t.ctlSlotG(slot), w, next) {
				m.n.AtomicStore64(m.t.stampG(slot), m.n.VirtualNS())
				if tw := m.tw(); tw != nil {
					tw.Emit(trace.SubMembership, trace.KSuspect, 0, uint64(slot), uint64(ctlNode(w)))
				}
			}
		}
		return
	}
	if phi >= m.t.cfg.PhiDead {
		o.strikes++
	} else {
		o.strikes = 0
	}
	if o.strikes >= m.t.cfg.DeadStrikes {
		o.strikes = 0
		next := packCtl(ctlGen(w), ctlInc(w), ctlNode(w), StateDead)
		if m.n.CAS64(m.t.ctlSlotG(slot), w, next) {
			m.n.AtomicStore64(m.t.stampG(slot), m.n.VirtualNS())
			if tw := m.tw(); tw != nil {
				tw.Emit(trace.SubMembership, trace.KDead, 0, uint64(slot), uint64(ctlNode(w)))
			}
		}
	}
}

// Suspect forces slot Alive -> Suspect through node n — exactly the
// CAS the detector performs when phi crosses PhiSuspect, minus the phi.
// For tests and fault-injection tooling that script suspicion instead
// of waiting out a real beat gap; the suspected node refutes it like
// any other suspicion. Returns whether the CAS won.
func (t *Table) Suspect(n *fabric.Node, slot int) bool {
	if slot < 0 || slot >= t.cfg.Slots {
		return false
	}
	w := n.AtomicLoad64(t.ctlSlotG(slot))
	if ctlState(w) != StateAlive {
		return false
	}
	next := packCtl(ctlGen(w), ctlInc(w), ctlNode(w), StateSuspect)
	if !n.CAS64(t.ctlSlotG(slot), w, next) {
		return false
	}
	n.AtomicStore64(t.stampG(slot), n.VirtualNS())
	return true
}

// refuteIfSuspected handles the member's OWN slot: a live node that
// finds itself Suspect bumps its incarnation and CASes back to Alive —
// the SWIM refutation that distinguishes "slow" from "gone" without
// any observer having to guess.
func (m *Member) refuteIfSuspected(w uint64) {
	if ctlState(w) != StateSuspect || ctlGen(w) != m.gen {
		return
	}
	newInc := ctlInc(w) + 1
	next := packCtl(m.gen, newInc, m.n.ID(), StateAlive)
	if m.n.CAS64(m.t.ctlSlotG(m.slot), w, next) {
		atomic.StoreUint64(&m.inc, newInc)
		m.n.AtomicStore64(m.t.stampG(m.slot), m.n.VirtualNS())
		// Republish immediately so observers see the new incarnation's
		// beat rather than re-suspecting off the old history.
		m.publishBeat()
		if tw := m.tw(); tw != nil {
			tw.Emit(trace.SubMembership, trace.KRefute, 0, uint64(m.slot), newInc)
		}
	}
}
