package membership

import (
	"sync"
	"testing"
	"time"

	"flacos/internal/fabric"
)

func testFabric(nodes int) *fabric.Fabric {
	return fabric.New(fabric.Config{GlobalSize: 16 << 20, Nodes: nodes})
}

// fastCfg returns detector timings quick enough for tests but with the
// production transition rules intact.
func fastCfg() Config {
	return Config{
		HeartbeatTick: 100 * time.Microsecond,
		DetectTick:    100 * time.Microsecond,
		DeadStrikes:   2,
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func joinAll(t *testing.T, tb *Table, f *fabric.Fabric, n int) []*Member {
	t.Helper()
	ms := make([]*Member, n)
	for i := 0; i < n; i++ {
		m, err := tb.JoinSlot(f.Node(i), i)
		if err != nil {
			t.Fatalf("join node %d: %v", i, err)
		}
		if err := m.Activate(); err != nil {
			t.Fatalf("activate node %d: %v", i, err)
		}
		ms[i] = m
	}
	return ms
}

func TestJoinActivatePopulatesTable(t *testing.T) {
	f := testFabric(3)
	tb := New(f, fastCfg())
	ms := joinAll(t, tb, f, 3)
	defer func() {
		for _, m := range ms {
			m.Stop()
		}
	}()
	for i, si := range tb.Snapshot(f.Node(0))[:3] {
		if si.State != StateAlive || si.Node != i || si.Generation != 1 {
			t.Errorf("slot %d: %+v, want alive node %d gen 1", i, si, i)
		}
		if !tb.Alive(i) {
			t.Errorf("Alive(%d) = false after Activate", i)
		}
	}
	// Unjoined nodes are not alive and unused slots stay free.
	if tb.Alive(99) {
		t.Error("out-of-range node reported alive")
	}
	for _, si := range tb.Snapshot(f.Node(0))[3:] {
		if si.State != StateFree {
			t.Errorf("slot %d: %s, want free", si.Slot, si.State)
		}
	}
}

func TestCrashIsDetectedAsDead(t *testing.T) {
	f := testFabric(3)
	tb := New(f, fastCfg())
	ms := joinAll(t, tb, f, 3)
	var mu sync.Mutex
	var deadEvents []Event
	ms[0].Subscribe(func(ev Event) {
		if ev.Kind == EvDead {
			mu.Lock()
			deadEvents = append(deadEvents, ev)
			mu.Unlock()
		}
	})
	for _, m := range ms {
		m.Start()
	}
	defer func() {
		for _, m := range ms {
			m.Stop()
		}
	}()

	f.Node(2).Crash()
	waitFor(t, "node 2 declared dead", func() bool {
		return tb.Snapshot(f.Node(0))[2].State == StateDead
	})
	waitFor(t, "dead event delivered on node 0", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(deadEvents) > 0
	})
	mu.Lock()
	ev := deadEvents[0]
	mu.Unlock()
	if ev.Node != 2 || ev.Slot != 2 || ev.Generation != 1 {
		t.Errorf("dead event %+v, want node 2 slot 2 gen 1", ev)
	}
	if tb.Alive(2) {
		t.Error("Alive(2) still true after Dead")
	}
	// Survivors stay alive: no collateral suspicion stuck anywhere.
	if !tb.Alive(0) || !tb.Alive(1) {
		t.Error("survivors lost liveness")
	}
	f.Node(2).Restart()
}

func TestRestartRejoinsSameSlotWithBumpedGeneration(t *testing.T) {
	f := testFabric(3)
	tb := New(f, fastCfg())
	ms := joinAll(t, tb, f, 3)
	for _, m := range ms {
		m.Start()
	}
	defer func() {
		for _, m := range ms {
			m.Stop()
		}
	}()

	f.Node(2).Crash()
	waitFor(t, "node 2 declared dead", func() bool {
		return tb.Snapshot(f.Node(0))[2].State == StateDead
	})
	ms[2].Stop()
	f.Node(2).Restart()

	m2, err := tb.Join(f.Node(2)) // must find its old slot
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if m2.Slot() != 2 {
		t.Fatalf("rejoined slot %d, want original slot 2", m2.Slot())
	}
	if m2.Generation() != 2 {
		t.Fatalf("rejoined generation %d, want 2", m2.Generation())
	}
	if err := m2.Activate(); err != nil {
		t.Fatalf("activate after rejoin: %v", err)
	}
	m2.Start()
	defer m2.Stop()
	waitFor(t, "node 2 alive again", func() bool { return tb.Alive(2) })
}

func TestHotPlugIntoFreeSlot(t *testing.T) {
	f := testFabric(4)
	tb := New(f, fastCfg())
	ms := joinAll(t, tb, f, 3) // node 3 not part of the boot population
	for _, m := range ms {
		m.Start()
	}
	defer func() {
		for _, m := range ms {
			m.Stop()
		}
	}()
	if tb.Alive(3) {
		t.Fatal("unjoined node reported alive")
	}

	m3, err := tb.Join(f.Node(3))
	if err != nil {
		t.Fatalf("hot-plug join: %v", err)
	}
	if m3.Slot() < 3 {
		t.Fatalf("hot-plug landed on occupied slot %d", m3.Slot())
	}
	if err := m3.Activate(); err != nil {
		t.Fatalf("activate: %v", err)
	}
	m3.Start()
	defer m3.Stop()
	waitFor(t, "boot members observe the hot-plugged node", func() bool {
		return tb.Alive(3) && tb.Snapshot(f.Node(0))[m3.Slot()].State == StateAlive
	})
}

func TestFalseSuspicionIsRefuted(t *testing.T) {
	f := testFabric(2)
	tb := New(f, fastCfg())
	ms := joinAll(t, tb, f, 2)
	for _, m := range ms {
		m.Start()
	}
	defer func() {
		for _, m := range ms {
			m.Stop()
		}
	}()

	// Falsely suspect node 1 by hand, as a detector with a stale view
	// would: node 1's agent must refute with a bumped incarnation.
	n0 := f.Node(0)
	w := n0.AtomicLoad64(tb.ctlSlotG(1))
	if ctlState(w) != StateAlive {
		t.Fatalf("precondition: slot 1 is %s", ctlState(w))
	}
	if !n0.CAS64(tb.ctlSlotG(1), w, packCtl(ctlGen(w), ctlInc(w), 1, StateSuspect)) {
		t.Fatal("suspect CAS lost")
	}
	waitFor(t, "refutation", func() bool {
		si := tb.Snapshot(n0)[1]
		return si.State == StateAlive && si.Incarnation >= 1
	})
	if !tb.Alive(1) {
		t.Error("refuted node lost host-side liveness")
	}
}

func TestRestartBeatingDetectionStillDeliversDead(t *testing.T) {
	f := testFabric(3)
	cfg := fastCfg()
	// Make detection effectively impossible: the restart must win.
	cfg.PhiSuspect = 1e12
	cfg.PhiDead = 1e12
	tb := New(f, cfg)
	ms := joinAll(t, tb, f, 3)
	var mu sync.Mutex
	events := map[EventKind]int{}
	var deadGen, joinGen uint64
	ms[0].Subscribe(func(ev Event) {
		if ev.Slot != 2 {
			return
		}
		mu.Lock()
		events[ev.Kind]++
		switch ev.Kind {
		case EvDead:
			deadGen = ev.Generation
		case EvJoin:
			joinGen = ev.Generation
		}
		mu.Unlock()
	})
	for _, m := range ms {
		m.Start()
	}
	defer func() {
		for _, m := range ms {
			m.Stop()
		}
	}()

	// The synthetic Dead needs an observer that actually saw generation 1
	// alive; wait for node 0's agent to make that observation.
	waitFor(t, "node 0 observes slot 2 at gen 1", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return joinGen == 1
	})

	f.Node(2).Crash()
	ms[2].Stop()
	f.Node(2).Restart()
	m2, err := tb.Join(f.Node(2))
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if err := m2.Activate(); err != nil {
		t.Fatalf("activate: %v", err)
	}
	m2.Start()
	defer m2.Stop()

	// The generation bump alone must synthesize Dead(gen 1) before the
	// new generation's Join — recovery runs even when detection lost.
	waitFor(t, "synthesized dead + join for slot 2", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return events[EvDead] >= 1 && deadGen == 1 && joinGen == 2
	})
}

func TestLeaveDeliversLeftNotDead(t *testing.T) {
	f := testFabric(3)
	tb := New(f, fastCfg())
	ms := joinAll(t, tb, f, 3)
	var mu sync.Mutex
	kinds := map[EventKind]int{}
	ms[0].Subscribe(func(ev Event) {
		if ev.Slot == 2 {
			mu.Lock()
			kinds[ev.Kind]++
			mu.Unlock()
		}
	})
	for _, m := range ms {
		m.Start()
	}
	defer func() {
		for _, m := range ms {
			m.Stop()
		}
	}()
	ms[2].Leave()
	waitFor(t, "left event", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return kinds[EvLeft] >= 1
	})
	mu.Lock()
	dead := kinds[EvDead]
	mu.Unlock()
	if dead != 0 {
		t.Errorf("clean leave delivered %d dead event(s)", dead)
	}
	if tb.Alive(2) {
		t.Error("left node still alive in mirror")
	}
}

// TestSuspectHeldNodeKeepsHeartbeating: a node pinned at StateSuspect
// by repeated scripted suspicion never stops publishing — its beat
// keeps advancing and its incarnation keeps bumping through refutation.
// This is the contract internal/health builds on: a Suspect node is a
// live signal source, not a silent one, so gray-failure detection keeps
// working exactly when the liveness layer is unsure about the node.
func TestSuspectHeldNodeKeepsHeartbeating(t *testing.T) {
	f := testFabric(2)
	tb := New(f, fastCfg())
	ms := joinAll(t, tb, f, 2)
	for _, m := range ms {
		m.Start()
	}
	defer func() {
		for _, m := range ms {
			m.Stop()
		}
	}()

	n0 := f.Node(0)
	readBeat := func() uint64 {
		g := tb.hbSlotG(1)
		n0.InvalidateRange(g, recordBytes)
		var line [recordBytes]byte
		n0.Read(g, line[:])
		rec, err := DecodeRecord(line, 1, tb.maxVNS())
		if err != nil {
			return 0
		}
		return rec.Beat
	}

	// Pin slot 1 at Suspect: re-suspect as fast as node 1 refutes, and
	// sample the heartbeat while the control word churns.
	deadline := time.Now().Add(2 * time.Second)
	start := readBeat()
	sawSuspect, advanced := false, false
	var maxInc uint64
	for time.Now().Before(deadline) && !(sawSuspect && advanced && maxInc > 0) {
		tb.Suspect(n0, 1)
		si := tb.Snapshot(n0)[1]
		if si.State == StateSuspect {
			sawSuspect = true
		}
		if si.Incarnation > maxInc {
			maxInc = si.Incarnation
		}
		if b := readBeat(); b > start {
			advanced = true
		}
		time.Sleep(100 * time.Microsecond)
	}
	if !sawSuspect {
		t.Fatal("slot never observed Suspect under scripted suspicion")
	}
	if !advanced {
		t.Fatal("heartbeat froze while the node was held Suspect")
	}
	if maxInc == 0 {
		t.Fatal("incarnation never bumped: the node stopped refuting")
	}
	// The slot must come back to rest Alive once the harassment stops.
	waitFor(t, "final refutation", func() bool {
		return tb.Snapshot(n0)[1].State == StateAlive
	})
}
