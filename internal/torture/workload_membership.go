package torture

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/membership"
	"flacos/internal/redis"
	"flacos/internal/sched"
)

// membershipWorkload tortures the coordinated failure-detection layer
// (internal/membership) end to end: every node heartbeats into the
// arena-resident membership table while the schedule driver crashes and
// restarts serving nodes, and ONE membership Dead event — not per-lease
// expiry, not per-client discovery — drives recovery everywhere: the
// scheduler's leases are swept, the redis store is generation-fenced,
// and placement steers off the dead node via the liveness oracle. The
// last node is held OUT of the boot population and hot-plugs into a
// free slot mid-sweep: it joins under load, resyncs against the shared
// store, activates, and serves both subsystems. Restarted nodes rejoin
// their original slot under a bumped generation.
//
// Invariants:
//   - sched exactly-once: every task's DoneCell is incremented exactly
//     once even when the membership sweep re-dispatches tasks whose
//     runner died (the keeper's lease-expiry backstop is deliberately
//     slow, ~20ms, so timely recovery must come from the membership
//     path — a broken path shows up as the stall detector firing and,
//     for leaked completions, as a DoneCell above 1);
//   - redis: reads are never torn and never go backwards, a view fenced
//     at a dead generation never applies another write (zombie writers
//     observe ErrFenced and reattach under the current fence level),
//     and the quiescent store holds exactly each writer's last
//     committed value;
//   - hot-plug: the joining node's resync sees every committed floor
//     intact before it activates, and the quiescent rack converges to
//     every node Alive in the table.
type membershipWorkload struct {
	tb    *membership.Table
	s     *sched.Scheduler
	store *redis.RackStore

	fn       sched.FuncID
	doneBase fabric.GPtr
	execBase fabric.GPtr
	tasks    int

	mu       sync.Mutex
	members  []*membership.Member // by node id; nil until joined
	deadSeen map[[2]uint64]bool   // {slot, generation} -> sweep ran

	floors   []atomic.Uint64 // per key: committed (flush-acknowledged) seq
	finalVer []uint64        // per key: writer's final committed seq
	kpw      int             // keys per writer (per node)

	hot   int    // hot-plug node (the last); not in the boot population
	hotAt uint64 // global op count at which the hot node joins
}

const membershipSubmitters = 2

func newMembershipWorkload() *membershipWorkload { return &membershipWorkload{kpw: 2} }

func (w *membershipWorkload) Name() string { return "membership" }

// Tolerates: the control table and every transition travel over fabric
// atomics, and a corrupted heartbeat record just decodes as "no beat"
// (the checksum rejects it, phi absorbs the gap). But the redis entry
// payloads ride the cached write-back path, so silent corruption and
// dropped write-backs are out of contract — exactly redisWorkload's
// envelope.
func (w *membershipWorkload) Tolerates() FaultClass { return FaultCrash | FaultDegrade }

func (w *membershipWorkload) clients(env *Env) int { return membershipSubmitters + w.hot + 2 }

func (w *membershipWorkload) Prepare(env *Env) {
	f := env.Fab
	w.hot = env.Cfg.Nodes - 1
	w.tasks = membershipSubmitters * env.Cfg.OpsPerClient
	// Hot-plug once the sweep is well under way: a quarter of all ops in,
	// the rack is loaded and the fault windows have opened.
	w.hotAt = uint64(w.clients(env)) * uint64(env.Cfg.OpsPerClient) / 4

	w.doneBase = f.Reserve(uint64(w.tasks)*8, fabric.LineSize)
	w.execBase = f.Reserve(uint64(w.tasks)*8, fabric.LineSize)
	// The keeper's lease-expiry backstop is deliberately conservative
	// (ProbeRounds*ReclaimTick = 20ms): timely crash recovery comes from
	// the membership Dead sweep, and the schedule driver's 25ms stall
	// detector keeps a broken membership path from hiding behind it.
	w.s = sched.New(f, sched.Config{
		TableCap:    128,
		Policy:      sched.PolicyLocality,
		ProbeRounds: 50,
		ReclaimTick: 400 * time.Microsecond,
		IdleTick:    200 * time.Microsecond,
		StealGrace:  500 * time.Microsecond,
		HistCap:     1024,
	})
	w.s.SetTrace(env.Trace)
	w.fn = w.s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
		n.Add64(w.execBase+fabric.GPtr(arg1*8), 1)
		// Linger off-fabric so a crash can land mid-task, then touch the
		// fabric so runners on a crashed node actually die.
		time.Sleep(20 * time.Microsecond)
		n.Load64(w.doneBase + fabric.GPtr(arg1*8))
	})
	w.s.Start()
	w.s.SetNodeServing(w.hot, false) // gated until it hot-plugs

	keys := env.Cfg.Nodes * w.kpw
	w.store = redis.NewRackStore(f, redis.RackStoreConfig{
		Slots: uint64(keys) * 8,
		// Crashes and fences abandon views; size for the sweep's churn.
		MaxViews:   4*env.Cfg.Nodes*(env.Cfg.Events+2) + 16,
		ArenaBytes: 16 << 20,
	})
	w.floors = make([]atomic.Uint64, keys)
	w.finalVer = make([]uint64, keys)
	v0 := w.attach(env, f.Node(0))
	for k := 0; k < keys; k++ {
		if err := v0.Set(redisKey(k/w.kpw, k%w.kpw), redisVal(k, 1), 0); err != nil {
			panic(err)
		}
		w.floors[k].Store(1)
	}
	v0.Barrier()

	w.tb = membership.New(f, membership.Config{
		HeartbeatTick: 100 * time.Microsecond,
		PhiSuspect:    3,
		PhiDead:       6,
		DeadStrikes:   2,
	})
	w.deadSeen = make(map[[2]uint64]bool)
	w.members = make([]*membership.Member, env.Cfg.Nodes)
	for id := 0; id < w.hot; id++ {
		n := f.Node(id)
		m, err := w.tb.JoinSlot(n, id)
		if err != nil {
			panic(err)
		}
		if env.Trace != nil {
			m.SetTrace(env.Trace.Writer(id))
		}
		if err := m.Activate(); err != nil {
			panic(err)
		}
		if id == 0 {
			// One observer acts on Dead (deduped below); node 0 never
			// crashes, so the sweep always has a live home.
			m.Subscribe(func(ev membership.Event) { w.onEvent(env, ev) })
		}
		m.Start()
		w.members[id] = m
	}
	// Placement consults the table from here on. A crashed-but-undetected
	// node may still be chosen for a beat; the Dead sweep re-dispatches.
	w.s.SetLiveness(w.tb.Alive)
}

// onEvent is the rack's coordinated recovery hook, running on node 0's
// member agent: exactly one sweep per (slot, generation) reclaims the
// dead node's scheduler leases and fences its store views at the dead
// generation so zombie writes bounce with ErrFenced.
func (w *membershipWorkload) onEvent(env *Env, ev membership.Event) {
	if ev.Kind != membership.EvDead {
		return
	}
	key := [2]uint64{uint64(ev.Slot), ev.Generation}
	w.mu.Lock()
	done := w.deadSeen[key]
	w.deadSeen[key] = true
	w.mu.Unlock()
	if done {
		return
	}
	n0 := env.Fab.Node(0)
	w.s.ReclaimNode(n0, ev.Node)
	w.store.FenceNode(n0, ev.Node, ev.Generation)
}

// rejoin puts node id back into the table under a bumped generation.
// The restart path and the quiescent repair of a false Dead verdict
// share it: both are the same protocol action.
func (w *membershipWorkload) rejoin(env *Env, id int) error {
	w.mu.Lock()
	old := w.members[id]
	w.mu.Unlock()
	if old != nil {
		old.Stop() // reap the previous incarnation's goroutines
	}
	m, err := w.tb.Join(env.Fab.Node(id))
	if err != nil {
		return err
	}
	if env.Trace != nil {
		m.SetTrace(env.Trace.Writer(id))
	}
	if err := m.Activate(); err != nil {
		return err
	}
	m.Start()
	w.mu.Lock()
	w.members[id] = m
	w.mu.Unlock()
	return nil
}

// HandleRestart reboots a restarted node's scheduler workers and rejoins
// it to its original membership slot (the restart-same-slot path: same
// node, same slot, bumped generation).
func (w *membershipWorkload) HandleRestart(env *Env, node int) {
	w.s.RebootNode(node)
	w.mu.Lock()
	joined := w.members[node] != nil
	w.mu.Unlock()
	if !joined {
		return // crashed before hot-plugging; the hot client joins itself
	}
	if err := w.rejoin(env, node); err != nil {
		env.Violatef(-1, "restart rejoin node %d: %v", node, err)
	}
}

func (w *membershipWorkload) Clients(env *Env) []func() {
	out := make([]func(), 0, w.clients(env))
	for i := 0; i < membershipSubmitters; i++ {
		sub := i
		out = append(out, func() { w.submitter(env, sub) })
	}
	for id := 0; id < w.hot; id++ {
		node := id
		out = append(out, func() { w.writer(env, node) })
	}
	out = append(out, func() { w.reader(env) })
	out = append(out, func() { w.hotplug(env) })
	return out
}

// submitter storms the scheduler from node 0 with tasks preferred onto
// every node — dead ones, joining ones, the lot; placement and the
// membership sweep between them must still deliver exactly-once.
func (w *membershipWorkload) submitter(env *Env, sub int) {
	n0 := env.Fab.Node(0)
	rng := env.Rand(uint64(0x70 + sub))
	handles := make([]sched.Handle, 0, env.Cfg.OpsPerClient)
	for t := 0; t < env.Cfg.OpsPerClient; t++ {
		idx := sub*env.Cfg.OpsPerClient + t
		h := w.s.Submit(n0, sched.Task{
			Fn:        w.fn,
			Arg1:      uint64(idx),
			Preferred: rng.Intn(env.Cfg.Nodes),
			DoneCell:  w.doneBase + fabric.GPtr(idx*8),
		})
		handles = append(handles, h)
		env.OpDone()
	}
	for _, h := range handles {
		w.s.Wait(n0, h)
	}
}

// attach creates a view with the flight recorder wired in.
func (w *membershipWorkload) attach(env *Env, n *fabric.Node) *redis.View {
	v := w.store.Attach(n)
	if env.Trace != nil {
		v.SetTrace(env.Trace.Writer(n.ID()))
	}
	return v
}

// attachLoop attaches on n, riding out crashes that land before or
// during the attach itself (the fault driver does not wait for clients
// to reach a safe point).
func (w *membershipWorkload) attachLoop(env *Env, n *fabric.Node) *redis.View {
	for {
		var v *redis.View
		if env.RunOp(n, func() { v = w.attach(env, n) }) {
			return v
		}
		env.WaitAlive(n)
	}
}

// reattach abandons a view whose node crashed: wait for the restart,
// clear the dead view's epoch reservation from node 0 (the membership
// sweep also does this for the node's tracked views; the explicit fence
// keeps the store reclaimable even when a restart beats detection), and
// attach fresh under the current fence level.
func (w *membershipWorkload) reattach(env *Env, n *fabric.Node, dead *redis.View) *redis.View {
	env.WaitAlive(n)
	w.store.FenceView(env.Fab.Node(0), dead.ID())
	return w.attachLoop(env, n)
}

// writer owns node's keys and SETs strictly increasing sequences. Two
// recovery paths exercise the membership machinery: a crash makes the
// in-flight SET uncertain (resync with a GET after reattaching), and
// ErrFenced means the Dead sweep fenced this view's generation — the
// SET never applied, so reattach under the current fence and retry.
func (w *membershipWorkload) writer(env *Env, node int) {
	n := env.Fab.Node(node)
	v := w.attachLoop(env, n)
	rng := env.Rand(uint64(0x80 + node))
	ci := 0x800 + node
	vers := make([]uint64, w.kpw)
	needSync := make([]bool, w.kpw)
	for j := range vers {
		vers[j] = 1
	}
	for completed := 0; completed < env.Cfg.OpsPerClient; {
		j := rng.Intn(w.kpw)
		keyIdx := node*w.kpw + j
		key := redisKey(node, j)
		if needSync[j] {
			var val []byte
			var ok bool
			if !env.RunOp(n, func() { val, ok = v.Get(key) }) {
				v = w.reattach(env, n, v)
				continue
			}
			seq, intact := uint64(0), false
			if ok {
				seq, intact = redisDecode(keyIdx, val)
			}
			if !ok || !intact || seq < vers[j] || seq > vers[j]+1 {
				env.Violatef(ci, "key %s: resync read seq=%d ok=%v intact=%v, committed=%d", key, seq, ok, intact, vers[j])
				seq = vers[j]
			}
			vers[j] = seq
			w.floors[keyIdx].Store(seq)
			needSync[j] = false
		}
		next := vers[j] + 1
		fenced := false
		if !env.RunOp(n, func() {
			if err := v.Set(key, redisVal(keyIdx, next), 0); err != nil {
				if errors.Is(err, redis.ErrFenced) {
					fenced = true
					return
				}
				panic(err)
			}
		}) {
			// Crashed mid-SET: the publish either landed or it didn't.
			needSync[j] = true
			v = w.reattach(env, n, v)
			continue
		}
		if fenced {
			// The zombie path worked as designed: this view carried a
			// generation the rack declared dead. Nothing applied.
			v = w.attachLoop(env, n)
			continue
		}
		vers[j] = next
		w.floors[keyIdx].Store(next)
		completed++
		env.OpDone()
	}
	for j := range vers {
		w.finalVer[node*w.kpw+j] = vers[j]
	}
}

// reader GETs random keys rack-wide from node 0 (never crashed) and
// checks every observation is intact and not behind the committed floor
// loaded before the read.
func (w *membershipWorkload) reader(env *Env) {
	n := env.Fab.Node(0)
	v := w.attach(env, n)
	rng := env.Rand(0x91)
	ci := 0x900
	keys := len(w.floors)
	for completed := 0; completed < env.Cfg.OpsPerClient; completed++ {
		keyIdx := rng.Intn(keys)
		key := redisKey(keyIdx/w.kpw, keyIdx%w.kpw)
		f0 := w.floors[keyIdx].Load()
		val, ok := v.Get(key)
		if !ok {
			env.Violatef(ci, "key %s: vanished (committed floor %d)", key, f0)
		} else if seq, intact := redisDecode(keyIdx, val); !intact {
			env.Violatef(ci, "key %s: torn value (carries seq %d)", key, seq)
		} else if seq < f0 {
			env.Violatef(ci, "key %s: went backwards: read seq %d after committed %d", key, seq, f0)
		}
		env.OpDone()
	}
}

// hotplug is the tentpole scenario: the held-out last node joins the
// rack mid-sweep, under load and under the fault schedule. It claims a
// slot with a fresh generation, resyncs against the shared store (every
// committed floor must be readable and intact BEFORE it serves),
// activates, lifts its scheduler serving gate, and then runs the same
// single-writer stream every boot member runs.
func (w *membershipWorkload) hotplug(env *Env) {
	n := env.Fab.Node(w.hot)
	ci := 0xA00
	for env.Ops() < w.hotAt {
		time.Sleep(200 * time.Microsecond)
	}
	var m *membership.Member
	for m == nil {
		env.WaitAlive(n)
		bail := false
		ok := env.RunOp(n, func() {
			mm, err := w.tb.Join(n)
			if err != nil {
				env.Violatef(ci, "hot-plug join: %v", err)
				bail = true
				return
			}
			if env.Trace != nil {
				mm.SetTrace(env.Trace.Writer(w.hot))
			}
			// Resync while Joining: the shared store must be fully
			// readable at the committed floors before this node serves.
			v := w.attach(env, n)
			for k := range w.floors {
				f0 := w.floors[k].Load()
				key := redisKey(k/w.kpw, k%w.kpw)
				val, okG := v.Get(key)
				seq, intact := uint64(0), false
				if okG {
					seq, intact = redisDecode(k, val)
				}
				if !okG || !intact || seq < f0 {
					env.Violatef(ci, "hot-plug resync key %s: seq=%d ok=%v intact=%v floor=%d", key, seq, okG, intact, f0)
				}
			}
			if err := mm.Activate(); err != nil {
				env.Violatef(ci, "hot-plug activate: %v", err)
				bail = true
				return
			}
			m = mm
		})
		if !ok {
			continue // crashed mid-join; the retry rejoins with a bumped gen
		}
		if bail {
			return
		}
	}
	m.Start()
	w.mu.Lock()
	w.members[w.hot] = m
	w.mu.Unlock()
	w.s.SetNodeServing(w.hot, true)
	w.writer(env, w.hot)
}

// stopMembers halts every member's goroutines so matrix sweeps don't
// leak heartbeat and detector loops into each other.
func (w *membershipWorkload) stopMembers() {
	w.mu.Lock()
	members := append([]*membership.Member(nil), w.members...)
	w.mu.Unlock()
	for _, m := range members {
		if m != nil {
			m.Stop()
		}
	}
}

func (w *membershipWorkload) Check(env *Env) {
	n0 := env.Fab.Node(0)
	defer w.stopMembers()
	defer w.s.Stop()
	if !w.s.Drain(n0) {
		env.Violatef(-1, "scheduler stopped before draining")
		return
	}
	st := w.s.StatsFrom(n0)
	if st.Submitted != uint64(w.tasks) || st.Completed != uint64(w.tasks) {
		env.Violatef(-1, "lost tasks: submitted=%d completed=%d want %d", st.Submitted, st.Completed, w.tasks)
	}
	if st.Queued != 0 {
		env.Violatef(-1, "stranded tasks: queued=%d after drain", st.Queued)
	}
	for idx := 0; idx < w.tasks; idx++ {
		if done := n0.AtomicLoad64(w.doneBase + fabric.GPtr(idx*8)); done != 1 {
			env.Violatef(-1, "task %d: DoneCell=%d, want exactly 1", idx, done)
		}
		if exec := n0.AtomicLoad64(w.execBase + fabric.GPtr(idx*8)); exec == 0 {
			env.Violatef(-1, "task %d: never executed", idx)
		}
	}

	// Quiescent store: every key holds exactly its writer's last
	// committed value, intact.
	v0 := w.attach(env, n0)
	for k := range w.finalVer {
		want := w.finalVer[k]
		if want == 0 {
			continue // writer bailed before serving (already recorded)
		}
		key := redisKey(k/w.kpw, k%w.kpw)
		val, ok := v0.Get(key)
		if !ok {
			env.Violatef(-1, "final state: key %s missing, want seq %d", key, want)
			continue
		}
		seq, intact := redisDecode(k, val)
		if !intact || seq != want {
			env.Violatef(-1, "final state: key %s seq=%d intact=%v, want %d", key, seq, intact, want)
		}
	}
	v0.Barrier()

	// The quiescent rack converges to every node Alive. A false Dead
	// verdict is legitimate under phi (and SAFE — fencing already made
	// it consistent); its repair is the same rejoin protocol a restart
	// uses, so perform it rather than fail on it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		allAlive := true
		for id := 0; id < env.Cfg.Nodes; id++ {
			if w.tb.Alive(id) {
				continue
			}
			allAlive = false
			w.mu.Lock()
			joined := w.members[id] != nil
			w.mu.Unlock()
			if joined && !env.Fab.Node(id).Crashed() {
				if err := w.rejoin(env, id); err != nil {
					env.Violatef(-1, "quiescent rejoin node %d: %v", id, err)
					return
				}
			}
		}
		if allAlive {
			return
		}
		if time.Now().After(deadline) {
			for id := 0; id < env.Cfg.Nodes; id++ {
				if !w.tb.Alive(id) {
					env.Violatef(-1, "quiescent rack: node %d never converged to Alive", id)
				}
			}
			return
		}
		time.Sleep(500 * time.Microsecond)
	}
}
