package torture

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/reliability"
	"flacos/internal/health"
	"flacos/internal/membership"
	"flacos/internal/redis"
	"flacos/internal/sched"
)

// healthWorkload tortures the gray-failure layer (internal/health) end
// to end: every node publishes health signals and runs the anomaly
// detector, a self-healing controller on node 0 consumes the unified
// membership+health event stream, and TWO independent gray-failure
// generators feed the detector while the schedule driver crashes and
// restarts nodes underneath it:
//
//   - the schedule's degrade windows add link hops to a victim at
//     runtime (the detector's direct LinkHops signal, plus genuine
//     latency drift on every op the victim performs);
//   - a "graygen" client plants seeded, scrub-detectable bit flips in
//     per-node sentinel regions, and each scrub pass that repairs one
//     charges the owning node's error EWMA through the health layer's
//     attribution feed (NodeSource.AddErrors).
//
// Each Degraded verdict runs the proactive drain — gate, evict, fence
// EARLY, re-place — against a live, loaded rack; each Recovered verdict
// rejoins the node under a bumped generation; a crash mid-anything lets
// EvDead win the race and the death sweep owns remediation.
//
// Invariants:
//   - sched exactly-once: every task's DoneCell is incremented exactly
//     once even while drains bench nodes mid-sweep and death sweeps
//     re-dispatch leases;
//   - zero fenced-zombie writes: after every completed drain a probe
//     view attached at the DRAINED generation must bounce with
//     ErrFenced — before the node is dead, not after. The planted
//     "drain-fence" break (skip the early fence) must make exactly this
//     checker fire;
//   - redis: reads are never torn and never go backwards, and the
//     quiescent store holds exactly each writer's last committed value;
//   - convergence: the quiescent rack returns to every node Alive with
//     no Degraded verdict standing.
type healthWorkload struct {
	env   *Env
	tb    *membership.Table
	layer *health.Layer
	ctl   *health.Controller
	s     *sched.Scheduler
	store *redis.RackStore
	scrub *reliability.Scrubber

	fn       sched.FuncID
	doneBase fabric.GPtr
	execBase fabric.GPtr
	sentG    fabric.GPtr
	tasks    int

	mu       sync.Mutex
	members  []*membership.Member // by node id
	agents   []*health.Agent      // by node id
	srcs     []*health.NodeSource // by node id (stable across rejoins)
	rejoinMu sync.Mutex           // serializes whole-node rejoin sequences

	floors   []atomic.Uint64 // per key: committed (flush-acknowledged) seq
	finalVer []uint64        // per key: writer's final committed seq
	kpw      int             // keys per writer (per node)
}

const healthSubmitters = 2

// graygenBurst is how many consecutive flips the graygen client plants
// on one victim before cooling down — long enough to push the error
// EWMA over the Degraded threshold, short enough that the victim
// recovers and the drain/rejoin cycle runs repeatedly per sweep.
const graygenBurst = 8

func newHealthWorkload() *healthWorkload { return &healthWorkload{kpw: 2} }

func (w *healthWorkload) Name() string { return "health" }

// Tolerates: crashes and link degradation are the point. The redis
// entry payloads and the health records ride the cached write-back
// path, so silent corruption and dropped write-backs are out of
// contract (a corrupted health record is merely rejected by its
// checksum, but the store payloads cannot survive it) — the graygen
// client plants its own, attributable corruption instead.
func (w *healthWorkload) Tolerates() FaultClass { return FaultCrash | FaultDegrade }

func (w *healthWorkload) clients(env *Env) int { return healthSubmitters + env.Cfg.Nodes + 2 }

func (w *healthWorkload) Prepare(env *Env) {
	f := env.Fab
	w.env = env
	nodes := env.Cfg.Nodes
	w.tasks = healthSubmitters * env.Cfg.OpsPerClient

	w.doneBase = f.Reserve(uint64(w.tasks)*8, fabric.LineSize)
	w.execBase = f.Reserve(uint64(w.tasks)*8, fabric.LineSize)
	w.s = sched.New(f, sched.Config{
		TableCap:    128,
		Policy:      sched.PolicyLocality,
		ProbeRounds: 50,
		ReclaimTick: 400 * time.Microsecond,
		IdleTick:    200 * time.Microsecond,
		StealGrace:  500 * time.Microsecond,
		HistCap:     1024,
	})
	w.s.SetTrace(env.Trace)
	w.fn = w.s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
		n.Add64(w.execBase+fabric.GPtr(arg1*8), 1)
		time.Sleep(20 * time.Microsecond)
		n.Load64(w.doneBase + fabric.GPtr(arg1*8))
	})
	w.s.Start()

	keys := nodes * w.kpw
	w.store = redis.NewRackStore(f, redis.RackStoreConfig{
		// Extra slot headroom for the zombie-probe keys a broken fence
		// path would actually write.
		Slots: uint64(keys+nodes) * 8,
		// Fences (proactive drains AND death sweeps) abandon views, and
		// every completed drain attaches one probe view; size for churn.
		MaxViews:   4*nodes*(env.Cfg.Events+2) + 3*env.Cfg.OpsPerClient + 64,
		ArenaBytes: 16 << 20,
	})
	w.floors = make([]atomic.Uint64, keys)
	w.finalVer = make([]uint64, keys)
	v0 := w.attach(env, f.Node(0))
	for k := 0; k < keys; k++ {
		if err := v0.Set(redisKey(k/w.kpw, k%w.kpw), redisVal(k, 1), 0); err != nil {
			panic(err)
		}
		w.floors[k].Store(1)
	}
	v0.Barrier()

	// Per-node sentinel lines the graygen client corrupts and the
	// scrubber guards: the scrub->attribute->repair loop is how at-rest
	// corruption becomes a node-charged error signal.
	w.scrub = reliability.NewScrubber(f)
	w.sentG = f.Reserve(uint64(nodes)*fabric.LineSize, fabric.LineSize)
	for id := 0; id < nodes; id++ {
		r := w.sentRegion(id)
		f.WriteAtHome(r.G, w.sentPattern(id))
		w.scrub.Protect(r)
	}

	w.tb = membership.New(f, membership.Config{
		HeartbeatTick: 100 * time.Microsecond,
		PhiSuspect:    3,
		PhiDead:       6,
		DeadStrikes:   2,
	})
	w.layer = health.New(w.tb, health.Config{
		Tick:         100 * time.Microsecond,
		EnterStrikes: 2,
		ExitStrikes:  4,
	})
	w.members = make([]*membership.Member, nodes)
	w.agents = make([]*health.Agent, nodes)
	w.srcs = make([]*health.NodeSource, nodes)
	for id := 0; id < nodes; id++ {
		n := f.Node(id)
		m, err := w.tb.JoinSlot(n, id)
		if err != nil {
			panic(err)
		}
		if env.Trace != nil {
			m.SetTrace(env.Trace.Writer(id))
		}
		if err := m.Activate(); err != nil {
			panic(err)
		}
		m.Start()
		w.members[id] = m
		w.srcs[id] = health.NewNodeSource(n, w.s)
		a := w.layer.Join(m, w.srcs[id])
		if env.Trace != nil {
			a.SetTrace(env.Trace.Writer(id))
		}
		a.Start()
		w.agents[id] = a
	}

	// The controller rides node 0's event stream (node 0 never crashes,
	// and its health agent evaluates every slot, so one stream carries
	// the whole rack's verdicts). It owns the death sweep too — the
	// classic EvDead hook lives inside the same pipeline here.
	w.ctl = health.NewController(w.members[0], health.ControllerConfig{
		Sched:   w.s,
		Store:   w.store,
		Rejoin:  w.ctlRejoin,
		OnStage: w.onStage,
		From:    f.Node(0),
	})
	if env.Trace != nil {
		w.ctl.SetTrace(env.Trace.Writer(0))
	}
	w.s.SetLiveness(w.tb.Alive)
}

func (w *healthWorkload) sentRegion(id int) reliability.Region {
	return reliability.Region{G: w.sentG.Add(uint64(id) * fabric.LineSize), Size: fabric.LineSize}
}

func (w *healthWorkload) sentPattern(id int) []byte {
	b := make([]byte, fabric.LineSize)
	for i := range b {
		b[i] = byte(id*37 + i*11 + 5)
	}
	return b
}

// onStage is the fenced-zombie-write checker: the moment a drain
// completes, a view attached at the DRAINED generation must already be
// unable to write — the early fence ran BEFORE the node died, which is
// the whole point of proactive draining. The planted "drain-fence"
// break skips that fence, and this probe is what must catch it.
func (w *healthWorkload) onStage(st health.Stage, node int, gen uint64) {
	if st != health.StageDrained {
		return
	}
	env := w.env
	n := env.Fab.Node(node)
	var err error
	if !env.RunOp(n, func() {
		pv := w.store.AttachGen(n, gen)
		err = pv.Set(fmt.Sprintf("zk-%d", node), []byte("zombie"), 0)
		// Release the probe's quiescence reservation; the view is never
		// used again.
		w.store.FenceView(env.Fab.Node(0), pv.ID())
	}) {
		return // node died mid-probe; the death sweep owns it now
	}
	if err == nil {
		env.Violatef(-1, "fenced-zombie write applied: node %d gen %d accepted a SET after its drain's fence stage", node, gen)
	} else if !errors.Is(err, redis.ErrFenced) {
		env.Violatef(-1, "zombie probe node %d gen %d: want ErrFenced, got %v", node, gen, err)
	}
}

// ctlRejoin is the controller's Rejoin hook: bring a recovered node
// back under a bumped generation. Node 0 never rejoins through the
// pipeline — the controller (and its event subscription) lives on node
// 0's member, so replacing it would orphan the controller.
func (w *healthWorkload) ctlRejoin(node int, gen uint64) error {
	if node == 0 {
		return fmt.Errorf("health torture: node 0 hosts the controller and does not self-rejoin")
	}
	if w.env.Fab.Node(node).Crashed() {
		return fmt.Errorf("health torture: node %d crashed before rejoin", node)
	}
	return w.rejoinNode(w.env, node)
}

// rejoinNode replaces node id's member AND health agent under a bumped
// generation — the health agent publishes records stamped with its
// member's generation, so the two always rejoin together. Controller
// recovery, crash restart, and quiescent repair all share it.
func (w *healthWorkload) rejoinNode(env *Env, id int) error {
	w.rejoinMu.Lock()
	defer w.rejoinMu.Unlock()
	n := env.Fab.Node(id)
	w.mu.Lock()
	oldM, oldA := w.members[id], w.agents[id]
	w.mu.Unlock()
	if oldA != nil {
		oldA.Stop()
	}
	if oldM != nil {
		oldM.Stop()
	}
	var m *membership.Member
	ok := env.RunOp(n, func() {
		mm, err := w.tb.Join(n)
		if err != nil {
			panic(err)
		}
		if env.Trace != nil {
			mm.SetTrace(env.Trace.Writer(id))
		}
		if err := mm.Activate(); err != nil {
			panic(err)
		}
		m = mm
	})
	if !ok {
		return fmt.Errorf("node %d crashed during rejoin", id)
	}
	m.Start()
	a := w.layer.Join(m, w.srcs[id])
	if env.Trace != nil {
		a.SetTrace(env.Trace.Writer(id))
	}
	a.Start()
	w.mu.Lock()
	w.members[id], w.agents[id] = m, a
	w.mu.Unlock()
	return nil
}

// HandleRestart reboots a restarted node's scheduler workers and
// rejoins member+agent under a bumped generation; the controller's
// EvJoin hook then reopens whatever gates the death sweep closed.
func (w *healthWorkload) HandleRestart(env *Env, node int) {
	w.s.RebootNode(node)
	if err := w.rejoinNode(env, node); err != nil {
		env.Violatef(-1, "restart rejoin node %d: %v", node, err)
	}
}

func (w *healthWorkload) Clients(env *Env) []func() {
	out := make([]func(), 0, w.clients(env))
	for i := 0; i < healthSubmitters; i++ {
		sub := i
		out = append(out, func() { w.submitter(env, sub) })
	}
	for id := 0; id < env.Cfg.Nodes; id++ {
		node := id
		out = append(out, func() { w.writer(env, node) })
	}
	out = append(out, func() { w.reader(env) })
	out = append(out, func() { w.graygen(env) })
	return out
}

// submitter storms the scheduler from node 0 with tasks preferred onto
// every node — degraded, draining, benched, dead, the lot; placement,
// the drain gate, and the death sweep between them must still deliver
// exactly-once.
func (w *healthWorkload) submitter(env *Env, sub int) {
	n0 := env.Fab.Node(0)
	rng := env.Rand(uint64(0xD0 + sub))
	handles := make([]sched.Handle, 0, env.Cfg.OpsPerClient)
	for t := 0; t < env.Cfg.OpsPerClient; t++ {
		idx := sub*env.Cfg.OpsPerClient + t
		h := w.s.Submit(n0, sched.Task{
			Fn:        w.fn,
			Arg1:      uint64(idx),
			Preferred: rng.Intn(env.Cfg.Nodes),
			DoneCell:  w.doneBase + fabric.GPtr(idx*8),
		})
		handles = append(handles, h)
		env.OpDone()
	}
	for _, h := range handles {
		w.s.Wait(n0, h)
	}
}

func (w *healthWorkload) attach(env *Env, n *fabric.Node) *redis.View {
	v := w.store.Attach(n)
	if env.Trace != nil {
		v.SetTrace(env.Trace.Writer(n.ID()))
	}
	return v
}

func (w *healthWorkload) attachLoop(env *Env, n *fabric.Node) *redis.View {
	for {
		var v *redis.View
		if env.RunOp(n, func() { v = w.attach(env, n) }) {
			return v
		}
		env.WaitAlive(n)
	}
}

func (w *healthWorkload) reattach(env *Env, n *fabric.Node, dead *redis.View) *redis.View {
	env.WaitAlive(n)
	w.store.FenceView(env.Fab.Node(0), dead.ID())
	return w.attachLoop(env, n)
}

// writer owns node's keys and SETs strictly increasing sequences.
// ErrFenced here is MORE common than in the membership sweep: besides
// the death sweep, every proactive drain fences the degraded node's
// live views early — the writer's reattach-under-current-fence is the
// sanctioned way a gray node keeps serving its own traffic.
func (w *healthWorkload) writer(env *Env, node int) {
	n := env.Fab.Node(node)
	v := w.attachLoop(env, n)
	rng := env.Rand(uint64(0xE0 + node))
	ci := 0xE00 + node
	vers := make([]uint64, w.kpw)
	needSync := make([]bool, w.kpw)
	for j := range vers {
		vers[j] = 1
	}
	for completed := 0; completed < env.Cfg.OpsPerClient; {
		j := rng.Intn(w.kpw)
		keyIdx := node*w.kpw + j
		key := redisKey(node, j)
		if needSync[j] {
			var val []byte
			var ok bool
			if !env.RunOp(n, func() { val, ok = v.Get(key) }) {
				v = w.reattach(env, n, v)
				continue
			}
			seq, intact := uint64(0), false
			if ok {
				seq, intact = redisDecode(keyIdx, val)
			}
			if !ok || !intact || seq < vers[j] || seq > vers[j]+1 {
				env.Violatef(ci, "key %s: resync read seq=%d ok=%v intact=%v, committed=%d", key, seq, ok, intact, vers[j])
				seq = vers[j]
			}
			vers[j] = seq
			w.floors[keyIdx].Store(seq)
			needSync[j] = false
		}
		next := vers[j] + 1
		fenced := false
		if !env.RunOp(n, func() {
			if err := v.Set(key, redisVal(keyIdx, next), 0); err != nil {
				if errors.Is(err, redis.ErrFenced) {
					fenced = true
					return
				}
				panic(err)
			}
		}) {
			needSync[j] = true
			v = w.reattach(env, n, v)
			continue
		}
		if fenced {
			// Early-fenced by a drain (or fenced by a death sweep racing
			// a restart): nothing applied; attach fresh under the current
			// fence level and retry.
			v = w.attachLoop(env, n)
			continue
		}
		vers[j] = next
		w.floors[keyIdx].Store(next)
		completed++
		env.OpDone()
	}
	for j := range vers {
		w.finalVer[node*w.kpw+j] = vers[j]
	}
}

// reader GETs random keys rack-wide from node 0 and checks every
// observation is intact and not behind the committed floor.
func (w *healthWorkload) reader(env *Env) {
	n := env.Fab.Node(0)
	v := w.attach(env, n)
	rng := env.Rand(0xF1)
	ci := 0xF00
	keys := len(w.floors)
	for completed := 0; completed < env.Cfg.OpsPerClient; completed++ {
		keyIdx := rng.Intn(keys)
		key := redisKey(keyIdx/w.kpw, keyIdx%w.kpw)
		f0 := w.floors[keyIdx].Load()
		val, ok := v.Get(key)
		if !ok {
			env.Violatef(ci, "key %s: vanished (committed floor %d)", key, f0)
		} else if seq, intact := redisDecode(keyIdx, val); !intact {
			env.Violatef(ci, "key %s: torn value (carries seq %d)", key, seq)
		} else if seq < f0 {
			env.Violatef(ci, "key %s: went backwards: read seq %d after committed %d", key, seq, f0)
		}
		env.OpDone()
	}
}

// graygen is the seeded gray-failure generator: bursts of single-bit
// flips against one victim's sentinel line, each one scrubbed, charged
// to the victim's error EWMA, and repaired — at-rest corruption
// surfacing as a node-health signal without the node ever observing the
// fault itself. The cool-down between bursts lets the EWMA decay so the
// victim recovers and the drain/rejoin cycle runs again.
func (w *healthWorkload) graygen(env *Env) {
	rng := env.Rand(0xC3)
	ci := 0xC00
	nodes := env.Cfg.Nodes
	completed := 0
	for completed < env.Cfg.OpsPerClient {
		victim := 1 + rng.Intn(nodes-1) // node 0 hosts the controller
		for b := 0; b < graygenBurst && completed < env.Cfg.OpsPerClient; b++ {
			word := w.sentG.Add(uint64(victim)*fabric.LineSize + uint64(rng.Intn(fabric.LineSize/8))*8)
			env.Fab.Faults().FlipBitAtHome(env.Fab, word, uint(rng.Intn(64)))
			bad := w.scrub.ScrubOnce()
			if len(bad) == 0 {
				env.Violatef(ci, "scrub pass missed a planted flip on node %d", victim)
			}
			for _, r := range bad {
				id := int(uint64(r.G-w.sentG) / fabric.LineSize)
				w.srcs[id].AddErrors(1)
				w.scrub.Repair(r, w.sentPattern(id))
			}
			completed++
			env.OpDone()
			time.Sleep(50 * time.Microsecond)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// stopAll halts every member's and agent's goroutines so matrix sweeps
// don't leak detector loops into each other.
func (w *healthWorkload) stopAll() {
	w.mu.Lock()
	members := append([]*membership.Member(nil), w.members...)
	agents := append([]*health.Agent(nil), w.agents...)
	w.mu.Unlock()
	for _, a := range agents {
		if a != nil {
			a.Stop()
		}
	}
	for _, m := range members {
		if m != nil {
			m.Stop()
		}
	}
}

func (w *healthWorkload) Check(env *Env) {
	n0 := env.Fab.Node(0)
	defer w.stopAll()
	defer w.s.Stop()
	if !w.s.Drain(n0) {
		env.Violatef(-1, "scheduler stopped before draining")
		return
	}
	st := w.s.StatsFrom(n0)
	if st.Submitted != uint64(w.tasks) || st.Completed != uint64(w.tasks) {
		env.Violatef(-1, "lost tasks: submitted=%d completed=%d want %d", st.Submitted, st.Completed, w.tasks)
	}
	if st.Queued != 0 {
		env.Violatef(-1, "stranded tasks: queued=%d after drain", st.Queued)
	}
	for idx := 0; idx < w.tasks; idx++ {
		if done := n0.AtomicLoad64(w.doneBase + fabric.GPtr(idx*8)); done != 1 {
			env.Violatef(-1, "task %d: DoneCell=%d, want exactly 1", idx, done)
		}
		if exec := n0.AtomicLoad64(w.execBase + fabric.GPtr(idx*8)); exec == 0 {
			env.Violatef(-1, "task %d: never executed", idx)
		}
	}

	// Quiescent store: every key holds exactly its writer's last
	// committed value, intact — drains fence views, never writes.
	v0 := w.attach(env, n0)
	for k := range w.finalVer {
		want := w.finalVer[k]
		if want == 0 {
			continue
		}
		key := redisKey(k/w.kpw, k%w.kpw)
		val, ok := v0.Get(key)
		if !ok {
			env.Violatef(-1, "final state: key %s missing, want seq %d", key, want)
			continue
		}
		seq, intact := redisDecode(k, val)
		if !intact || seq != want {
			env.Violatef(-1, "final state: key %s seq=%d intact=%v, want %d", key, seq, intact, want)
		}
	}
	v0.Barrier()

	// Convergence: with faults off, every node returns to Alive and
	// every Degraded verdict clears (the EWMAs decay, the recovery
	// hysteresis flips the verdict, the controller rejoins). A false
	// Dead verdict is legitimate under phi; its repair is the same
	// rejoin protocol, so perform it rather than fail on it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		healthy := true
		for id := 0; id < env.Cfg.Nodes; id++ {
			if !w.tb.Alive(id) {
				healthy = false
				if !env.Fab.Node(id).Crashed() {
					if err := w.rejoinNode(env, id); err != nil {
						env.Violatef(-1, "quiescent rejoin node %d: %v", id, err)
						return
					}
				}
			} else if w.layer.Degraded(id) {
				healthy = false
			}
		}
		if healthy {
			return
		}
		if time.Now().After(deadline) {
			for id := 0; id < env.Cfg.Nodes; id++ {
				if !w.tb.Alive(id) {
					env.Violatef(-1, "quiescent rack: node %d never converged to Alive", id)
				} else if w.layer.Degraded(id) {
					env.Violatef(-1, "quiescent rack: node %d still under a Degraded verdict", id)
				}
			}
			return
		}
		time.Sleep(500 * time.Microsecond)
	}
}
