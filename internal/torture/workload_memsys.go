package torture

import (
	"bytes"
	"encoding/binary"
	"sync/atomic"

	"flacos/internal/flacdk/alloc"
	"flacos/internal/memsys"
)

// memsysWorkload exercises the shared address space under concurrent
// dedup merging and TLB shootdowns: each node's writer rewrites its pages
// in identical-content pairs (so the dedup scanner constantly merges
// them), a dedicated client on node 0 loops DedupPass, and readers on
// every node check page headers through their own MMU.
//
// Invariants:
//   - no stale mapping: a reader never observes a page header whose
//     version is below the committed floor or whose identity words name a
//     different page pair — both happen only if an MMU keeps translating
//     through a TLB entry that a remap's shootdown should have killed;
//   - dedup preserves content: the final quiescent sweep (plus one more
//     DedupPass) must reproduce every page's exact committed image.
//
// Reader protocol: page writes are in-place after the COW break, so a
// header read is sandwiched between two page-table lookups and retried
// until the PTE is stable — an unstable read may have landed on a frame
// freed mid-flight, which is indistinguishable from a real violation.
// With shootdowns intact, a stable PTE guarantees the read went through
// the live frame; with shootdowns broken (-torture-break shootdown), the
// stale TLB path bypasses the page table entirely and the checker fires.
type memsysWorkload struct {
	frames *memsys.GlobalFrames
	space  *memsys.Space
	mmus   []*memsys.MMU

	pub      []atomic.Uint64 // per page, committed version floor
	finalVer []uint64        // per page, writer's final version
	merges   atomic.Uint64
	pp       int // pages per writer (pairs of two)
}

func newMemsysWorkload() *memsysWorkload { return &memsysWorkload{pp: 4} }

func (w *memsysWorkload) Name() string { return "memsys" }

// Tolerates: page frames are cached payload, so corruption and dropped
// write-backs are out of contract.
func (w *memsysWorkload) Tolerates() FaultClass { return FaultCrash | FaultDegrade }

func (w *memsysWorkload) writerOf(page int) int { return page / w.pp }
func (w *memsysWorkload) pairOf(page int) int   { return (page % w.pp) / 2 }

func memVA(page int) uint64 { return uint64(page) * memsys.PageSize }

// makeMemPage builds the image for one page of (writer, pair) at version
// v. Both pages of a pair carry the identical image, which is what makes
// them dedup candidates.
func makeMemPage(writer, pair int, v uint64) []byte {
	buf := make([]byte, memsys.PageSize)
	binary.LittleEndian.PutUint64(buf, v<<32|uint64(writer)<<16|uint64(pair))
	for k := 8; k < memsys.PageSize; k++ {
		buf[k] = byte(v*29 + uint64(writer)*13 + uint64(pair)*7 + uint64(k)*3)
	}
	return buf
}

func decodeMemHeader(h uint64) (v uint64, writer, pair int) {
	return h >> 32, int(h >> 16 & 0xffff), int(h & 0xffff)
}

func (w *memsysWorkload) Prepare(env *Env) {
	f := env.Fab
	n := env.Cfg.Nodes
	totalPages := n * w.pp
	arena := alloc.NewArena(f, 8<<20)
	w.frames = memsys.NewGlobalFrames(f, uint64(totalPages*4+128))
	w.space = memsys.NewSpace(f, 1, w.frames, arena.NodeAllocator(f.Node(0), 0), 256)
	w.space.SetTrace(env.Trace)
	w.mmus = make([]*memsys.MMU, n)
	for i := 0; i < n; i++ {
		w.mmus[i] = w.space.Attach(f.Node(i), arena.NodeAllocator(f.Node(i), 0), nil, 256)
	}
	if err := w.mmus[0].MMap(0, uint64(totalPages), memsys.ProtRead|memsys.ProtWrite, memsys.BackGlobal); err != nil {
		panic(err)
	}
	w.pub = make([]atomic.Uint64, totalPages)
	w.finalVer = make([]uint64, totalPages)
	// Pre-fault every page at v1 from node 0: installs all PTEs (and the
	// radix interior nodes), so no client ever demand-faults concurrently
	// through a shared node allocator.
	for p := 0; p < totalPages; p++ {
		if err := w.mmus[0].Write(memVA(p), makeMemPage(w.writerOf(p), w.pairOf(p), 1)); err != nil {
			panic(err)
		}
		w.pub[p].Store(1)
	}
}

func (w *memsysWorkload) Clients(env *Env) []func() {
	var out []func()
	for i := 0; i < env.Cfg.Nodes; i++ {
		node := i
		out = append(out,
			func() { w.writer(env, node) },
			func() { w.reader(env, node) },
		)
	}
	out = append(out, func() { w.dedupClient(env) })
	return out
}

// writer rewrites one of its pairs at the next version: both pages get
// the identical new image. A crash mid-write leaves the pair split across
// versions (and possibly a torn frame at home); the retry rewrites both
// pages of the pair at the same version, which is idempotent.
func (w *memsysWorkload) writer(env *Env, node int) {
	n := env.Fab.Node(node)
	mmu := w.mmus[node]
	rng := env.Rand(uint64(0x70 + node))
	ci := 0x700 + node
	vers := make([]uint64, w.pp/2)
	for j := range vers {
		vers[j] = 1
	}
	for completed := 0; completed < env.Cfg.OpsPerClient; {
		pair := rng.Intn(w.pp / 2)
		base := node*w.pp + pair*2
		v := vers[pair] + 1
		content := makeMemPage(node, pair, v)
		var err error
		if !env.RunOp(n, func() { err = mmu.Write(memVA(base), content) }) {
			env.WaitAlive(n)
			continue
		}
		if err != nil {
			env.Violatef(ci, "page %d: write v%d failed: %v", base, v, err)
		}
		w.pub[base].Store(v)
		if !env.RunOp(n, func() { err = mmu.Write(memVA(base+1), content) }) {
			env.WaitAlive(n)
			continue // retries page base at v too: identical image, harmless
		}
		if err != nil {
			env.Violatef(ci, "page %d: write v%d failed: %v", base+1, v, err)
		}
		w.pub[base+1].Store(v)
		vers[pair] = v
		completed++
		env.OpDone()
	}
	for j := range vers {
		w.finalVer[node*w.pp+j*2] = vers[j]
		w.finalVer[node*w.pp+j*2+1] = vers[j]
	}
}

// readHeader performs one stable header read of page p through mmu: the
// 8-byte read is sandwiched between page-table lookups and retried while
// the PTE moves underneath it. Returns ok=false if the node kept crashing
// or the page churned too fast to observe (both are non-verdicts).
func (w *memsysWorkload) readHeader(env *Env, node, p int) (hdr uint64, ok bool) {
	n := env.Fab.Node(node)
	mmu := w.mmus[node]
	var b8 [8]byte
	for try := 0; try < 64; try++ {
		var p1, p2 memsys.PTE
		var err error
		if !env.RunOp(n, func() {
			p1 = mmu.PTEOf(memVA(p))
			err = mmu.Read(memVA(p), b8[:])
			p2 = mmu.PTEOf(memVA(p))
		}) {
			env.WaitAlive(n)
			continue
		}
		if err != nil {
			env.Violatef(0x800+node, "page %d: read failed: %v", p, err)
			return 0, false
		}
		if p1 == p2 {
			return binary.LittleEndian.Uint64(b8[:]), true
		}
	}
	return 0, false
}

func (w *memsysWorkload) checkHeader(env *Env, ci, p int, hdr, v0 uint64) {
	ver, writer, pair := decodeMemHeader(hdr)
	if writer != w.writerOf(p) || pair != w.pairOf(p) {
		env.Violatef(ci, "page %d: stale mapping: header names (writer %d, pair %d) v%d", p, writer, pair, ver)
		return
	}
	if ver < v0 {
		env.Violatef(ci, "page %d: stale version v%d after committed v%d", p, ver, v0)
	}
}

func (w *memsysWorkload) reader(env *Env, node int) {
	rng := env.Rand(uint64(0x80 + node))
	ci := 0x800 + node
	totalPages := len(w.pub)
	for completed := 0; completed < env.Cfg.OpsPerClient; completed++ {
		p := rng.Intn(totalPages)
		v0 := w.pub[p].Load()
		if hdr, ok := w.readHeader(env, node, p); ok {
			w.checkHeader(env, ci, p, hdr, v0)
		}
		env.OpDone()
	}
}

// dedupClient lives on node 0 (never a crash victim, so a pass is never
// killed halfway) and alternates DedupPass with header reads.
func (w *memsysWorkload) dedupClient(env *Env) {
	rng := env.Rand(0x90)
	n := env.Fab.Node(0)
	totalPages := len(w.pub)
	for completed := 0; completed < env.Cfg.OpsPerClient; completed++ {
		if completed%4 == 0 {
			env.RunOp(n, func() { w.merges.Add(uint64(w.mmus[0].DedupPass())) })
		} else {
			p := rng.Intn(totalPages)
			v0 := w.pub[p].Load()
			if hdr, ok := w.readHeader(env, 0, p); ok {
				w.checkHeader(env, 0x900, p, hdr, v0)
			}
		}
		env.OpDone()
	}
}

// Check sweeps the quiescent space: every page must hold exactly its
// final committed image, then one more DedupPass must merge the (now all
// identical) pairs without disturbing any content.
func (w *memsysWorkload) Check(env *Env) {
	buf := make([]byte, memsys.PageSize)
	sweep := func(tag string) {
		for p := range w.finalVer {
			want := makeMemPage(w.writerOf(p), w.pairOf(p), w.finalVer[p])
			if err := w.mmus[0].Read(memVA(p), buf); err != nil {
				env.Violatef(-1, "%s: page %d read failed: %v", tag, p, err)
				continue
			}
			if !bytes.Equal(buf, want) {
				env.Violatef(-1, "%s: page %d does not match committed v%d (header %#x)",
					tag, p, w.finalVer[p], binary.LittleEndian.Uint64(buf))
			}
		}
	}
	sweep("final")
	w.merges.Add(uint64(w.mmus[0].DedupPass()))
	sweep("post-dedup")
}
