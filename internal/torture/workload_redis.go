package torture

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"flacos/internal/fabric"
	"flacos/internal/redis"
)

// redisWorkload tortures the rack-shared Redis store (internal/redis
// RackStore): every node runs a single-writer SET stream over its own
// keys and a reader stream over everyone's keys, while the schedule
// driver crashes serving nodes mid-SET.
//
// Invariants (the redisrack acceptance property under faults):
//   - A GET observed by any survivor never returns a TORN value: entry
//     blocks are written back before the index publish, so a crash
//     between the two leaves the previous intact value in place, never a
//     half-written one.
//   - A GET never goes BACKWARDS: it must carry a sequence >= the
//     highest flush-acknowledged write for that key (host-side committed
//     floor, the same linearizability style dsWorkload uses).
//   - Keys never vanish (this workload never deletes), and the quiescent
//     final state holds exactly each writer's last committed value.
//
// A writer whose node crashed cannot know whether its in-flight SET
// published, so it re-reads the key and adopts whichever of {committed,
// attempted} sequence it finds — the same resync protocol as dsWorkload's
// mapWriter. Crashed views are fenced (their epoch reservation cleared on
// their behalf) and abandoned; the replacement is a fresh Attach.
type redisWorkload struct {
	store *redis.RackStore

	floors   []atomic.Uint64 // per key: committed (flush-acknowledged) seq
	finalVer []uint64        // per key: writer's final committed seq
	kpw      int             // keys per writer (per node)
}

func newRedisWorkload() *redisWorkload { return &redisWorkload{kpw: 4} }

func (w *redisWorkload) Name() string { return "redisrack" }

// Tolerates: the index and clocks are pure fabric atomics, but entry
// payloads are cached data pushed home by explicit write-backs — silent
// corruption and dropped write-backs legitimately destroy them, so those
// classes are out of contract (exactly like dsWorkload's ring payloads).
func (w *redisWorkload) Tolerates() FaultClass { return FaultCrash | FaultDegrade }

const redisValBytes = 40 // 8-byte seq + 32 pattern bytes

func redisKey(node, j int) string { return fmt.Sprintf("rk-%d-%d", node, j) }

func redisVal(keyIdx int, seq uint64) []byte {
	v := make([]byte, redisValBytes)
	binary.LittleEndian.PutUint64(v, seq)
	for i := 8; i < redisValBytes; i++ {
		v[i] = byte(seq*13 + uint64(keyIdx)*7 + uint64(i))
	}
	return v
}

// redisDecode returns the sequence a value carries and whether every
// byte matches the pattern for it (false = torn or corrupt).
func redisDecode(keyIdx int, v []byte) (seq uint64, intact bool) {
	if len(v) != redisValBytes {
		return 0, false
	}
	seq = binary.LittleEndian.Uint64(v)
	for i := 8; i < redisValBytes; i++ {
		if v[i] != byte(seq*13+uint64(keyIdx)*7+uint64(i)) {
			return seq, false
		}
	}
	return seq, true
}

func (w *redisWorkload) Prepare(env *Env) {
	keys := env.Cfg.Nodes * w.kpw
	w.store = redis.NewRackStore(env.Fab, redis.RackStoreConfig{
		Slots: uint64(keys) * 8,
		// Every crash abandons the victim node's views; size for the
		// worst-case reattach churn of the whole sweep.
		MaxViews:   2*env.Cfg.Nodes*(env.Cfg.Events+2) + 8,
		ArenaBytes: 16 << 20,
	})
	w.floors = make([]atomic.Uint64, keys)
	w.finalVer = make([]uint64, keys)
	v0 := w.attach(env, env.Fab.Node(0))
	for k := 0; k < keys; k++ {
		if err := v0.Set(redisKey(k/w.kpw, k%w.kpw), redisVal(k, 1), 0); err != nil {
			panic(err)
		}
		w.floors[k].Store(1)
	}
	v0.Barrier()
}

// attach creates a view with the flight recorder wired in (SET/GET spans
// land in failing sweeps' timelines).
func (w *redisWorkload) attach(env *Env, n *fabric.Node) *redis.View {
	v := w.store.Attach(n)
	if env.Trace != nil {
		v.SetTrace(env.Trace.Writer(n.ID()))
	}
	return v
}

func (w *redisWorkload) Clients(env *Env) []func() {
	var out []func()
	for i := 0; i < env.Cfg.Nodes; i++ {
		node := i
		out = append(out,
			func() { w.writer(env, node) },
			func() { w.reader(env, node) },
		)
	}
	return out
}

// attachLoop attaches on n, riding out crashes that land before or
// during the attach itself (under a loaded test host a client can be
// scheduled so late that its first attach races the first fault event).
func (w *redisWorkload) attachLoop(env *Env, n *fabric.Node) *redis.View {
	for {
		var v *redis.View
		if env.RunOp(n, func() { v = w.attach(env, n) }) {
			return v
		}
		env.WaitAlive(n)
	}
}

// reattach fences a dead view and opens a fresh one once the node is
// back. The fence runs on node 0 (never crashed) so it cannot itself die
// mid-fence.
func (w *redisWorkload) reattach(env *Env, n *fabric.Node, dead *redis.View) *redis.View {
	env.WaitAlive(n)
	w.store.FenceView(env.Fab.Node(0), dead.ID())
	return w.attachLoop(env, n)
}

// writer owns keys [node*kpw, node*kpw+kpw) and SETs strictly increasing
// sequences. A crash mid-SET makes the applied sequence uncertain, so it
// resyncs with a GET before continuing.
func (w *redisWorkload) writer(env *Env, node int) {
	n := env.Fab.Node(node)
	v := w.attachLoop(env, n)
	rng := env.Rand(uint64(0x50 + node))
	ci := 0x500 + node
	vers := make([]uint64, w.kpw)
	needSync := make([]bool, w.kpw)
	for j := range vers {
		vers[j] = 1
	}
	for completed := 0; completed < env.Cfg.OpsPerClient; {
		j := rng.Intn(w.kpw)
		keyIdx := node*w.kpw + j
		key := redisKey(node, j)
		if needSync[j] {
			var val []byte
			var ok bool
			if !env.RunOp(n, func() { val, ok = v.Get(key) }) {
				v = w.reattach(env, n, v)
				continue
			}
			seq, intact := uint64(0), false
			if ok {
				seq, intact = redisDecode(keyIdx, val)
			}
			if !ok || !intact || seq < vers[j] || seq > vers[j]+1 {
				env.Violatef(ci, "key %s: resync read seq=%d ok=%v intact=%v, committed=%d", key, seq, ok, intact, vers[j])
				seq = vers[j]
			}
			vers[j] = seq
			w.floors[keyIdx].Store(seq)
			needSync[j] = false
		}
		next := vers[j] + 1
		if !env.RunOp(n, func() {
			if err := v.Set(key, redisVal(keyIdx, next), 0); err != nil {
				panic(err)
			}
		}) {
			// Crashed mid-SET: the publish either landed or it didn't.
			needSync[j] = true
			v = w.reattach(env, n, v)
			continue
		}
		vers[j] = next
		w.floors[keyIdx].Store(next)
		completed++
		env.OpDone()
	}
	for j := range vers {
		w.finalVer[node*w.kpw+j] = vers[j]
	}
}

// reader GETs random keys rack-wide and checks every observation is
// intact and not behind the committed floor loaded before the read.
func (w *redisWorkload) reader(env *Env, node int) {
	n := env.Fab.Node(node)
	v := w.attachLoop(env, n)
	rng := env.Rand(uint64(0x60 + node))
	ci := 0x600 + node
	keys := len(w.floors)
	for completed := 0; completed < env.Cfg.OpsPerClient; {
		keyIdx := rng.Intn(keys)
		key := redisKey(keyIdx/w.kpw, keyIdx%w.kpw)
		f0 := w.floors[keyIdx].Load()
		var val []byte
		var ok bool
		if !env.RunOp(n, func() { val, ok = v.Get(key) }) {
			v = w.reattach(env, n, v)
			continue
		}
		if !ok {
			env.Violatef(ci, "key %s: vanished (committed floor %d)", key, f0)
		} else if seq, intact := redisDecode(keyIdx, val); !intact {
			env.Violatef(ci, "key %s: torn value (carries seq %d)", key, seq)
		} else if seq < f0 {
			env.Violatef(ci, "key %s: went backwards: read seq %d after committed %d", key, seq, f0)
		}
		completed++
		env.OpDone()
	}
}

// Check verifies the quiescent store: every key holds exactly its
// writer's final committed value, intact.
func (w *redisWorkload) Check(env *Env) {
	v0 := w.attach(env, env.Fab.Node(0))
	for k := range w.finalVer {
		want := w.finalVer[k]
		key := redisKey(k/w.kpw, k%w.kpw)
		val, ok := v0.Get(key)
		if !ok {
			env.Violatef(-1, "final state: key %s missing, want seq %d", key, want)
			continue
		}
		seq, intact := redisDecode(k, val)
		if !intact || seq != want {
			env.Violatef(-1, "final state: key %s seq=%d intact=%v, want %d", key, seq, intact, want)
		}
	}
	v0.Barrier()
}
