package torture

import (
	"time"

	"flacos/internal/fabric"
	"flacos/internal/sched"
)

// schedWorkload storms the rack-wide scheduler with tasks preferred onto
// every node — including crash victims — while the fault driver kills and
// restarts nodes under it.
//
// Invariants:
//   - exactly-once completion: each task's DoneCell is incremented by the
//     scheduler exactly once, even when a lease reclaim re-dispatches a
//     task whose first runner died mid-flight (the attempt bump must fence
//     the stale runner's completion CAS);
//   - no lost tasks: Completed == Submitted and Queued == 0 after Drain;
//   - at-least-once execution: every task's side-effect counter is >= 1.
//
// Submitters live on node 0, which the schedule never crashes, so the
// submission history itself is reliable ground truth. This workload
// tolerates every fault class: all scheduler control words are fabric
// atomics, and the cached announcement-ring payload is only a hint.
type schedWorkload struct {
	s        *sched.Scheduler
	fn       sched.FuncID
	doneBase fabric.GPtr
	execBase fabric.GPtr
	tasks    int
}

const schedSubmitters = 2

func newSchedWorkload() *schedWorkload { return &schedWorkload{} }

func (w *schedWorkload) Name() string { return "sched" }

func (w *schedWorkload) Tolerates() FaultClass { return FaultAll }

func (w *schedWorkload) Prepare(env *Env) {
	f := env.Fab
	w.tasks = schedSubmitters * env.Cfg.OpsPerClient
	w.doneBase = f.Reserve(uint64(w.tasks)*8, fabric.LineSize)
	w.execBase = f.Reserve(uint64(w.tasks)*8, fabric.LineSize)
	w.s = sched.New(f, sched.Config{
		TableCap:    128,
		Policy:      sched.PolicyLocality,
		ProbeRounds: 3,
		ReclaimTick: 200 * time.Microsecond,
		IdleTick:    200 * time.Microsecond,
		StealGrace:  500 * time.Microsecond,
		HistCap:     1024,
	})
	w.s.SetTrace(env.Trace)
	w.fn = w.s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
		n.Add64(w.execBase+fabric.GPtr(arg1*8), 1)
		// Linger off-fabric so a crash can land mid-task, then touch the
		// fabric so runners on a crashed node actually die.
		time.Sleep(20 * time.Microsecond)
		n.Load64(w.doneBase + fabric.GPtr(arg1*8))
	})
	w.s.Start()
}

// HandleRestart rejoins a restarted node's worker pool and keeper under
// its original node ID.
func (w *schedWorkload) HandleRestart(env *Env, node int) {
	w.s.RebootNode(node)
}

func (w *schedWorkload) Clients(env *Env) []func() {
	out := make([]func(), schedSubmitters)
	for i := 0; i < schedSubmitters; i++ {
		sub := i
		out[sub] = func() { w.submitter(env, sub) }
	}
	return out
}

func (w *schedWorkload) submitter(env *Env, sub int) {
	n0 := env.Fab.Node(0)
	rng := env.Rand(uint64(0x30 + sub))
	handles := make([]sched.Handle, 0, env.Cfg.OpsPerClient)
	for t := 0; t < env.Cfg.OpsPerClient; t++ {
		idx := sub*env.Cfg.OpsPerClient + t
		h := w.s.Submit(n0, sched.Task{
			Fn:        w.fn,
			Arg1:      uint64(idx),
			Preferred: rng.Intn(env.Cfg.Nodes),
			DoneCell:  w.doneBase + fabric.GPtr(idx*8),
		})
		handles = append(handles, h)
		env.OpDone()
	}
	for _, h := range handles {
		w.s.Wait(n0, h)
	}
}

func (w *schedWorkload) Check(env *Env) {
	n0 := env.Fab.Node(0)
	defer w.s.Stop()
	if !w.s.Drain(n0) {
		env.Violatef(-1, "scheduler stopped before draining")
		return
	}
	st := w.s.StatsFrom(n0)
	if st.Submitted != uint64(w.tasks) || st.Completed != uint64(w.tasks) {
		env.Violatef(-1, "lost tasks: submitted=%d completed=%d want %d", st.Submitted, st.Completed, w.tasks)
	}
	if st.Queued != 0 {
		env.Violatef(-1, "stranded tasks: queued=%d after drain", st.Queued)
	}
	for idx := 0; idx < w.tasks; idx++ {
		done := n0.AtomicLoad64(w.doneBase + fabric.GPtr(idx*8))
		if done != 1 {
			env.Violatef(-1, "task %d: DoneCell=%d, want exactly 1", idx, done)
		}
		if exec := n0.AtomicLoad64(w.execBase + fabric.GPtr(idx*8)); exec == 0 {
			env.Violatef(-1, "task %d: never executed", idx)
		}
	}
}
