package torture

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// smokeConfig keeps the tier-1 sweep fast while still driving every fault
// window class.
func smokeConfig(seed int64) Config {
	return Config{
		Seed:         seed,
		Nodes:        3,
		OpsPerClient: 120,
		Events:       4,
	}
}

// TestTortureSmoke is the tier-1 sweep: every workload/checker pair, a
// couple of seeds, all tolerated fault classes enabled. Any violation is a
// real invariant break (or a checker bug) and fails the build.
func TestTortureSmoke(t *testing.T) {
	for _, w := range Workloads() {
		for _, seed := range []int64{1, 7} {
			w, seed := w, seed
			t.Run(fmt.Sprintf("%s/seed%d", w.Name(), seed), func(t *testing.T) {
				t.Parallel()
				rep := Run(w, smokeConfig(seed))
				if !rep.Passed() {
					t.Fatalf("invariants violated:\n%s", rep)
				}
				if len(rep.Events) == 0 {
					t.Fatalf("schedule was empty: the sweep tested nothing (faults=%s)", rep.Faults)
				}
			})
		}
	}
}

// TestTortureDeterminism: same seed, same schedule — identical event
// traces and verdicts across runs (the replay contract behind
// `flacbench -experiment torture -seed N`).
func TestTortureDeterminism(t *testing.T) {
	for _, name := range []string{"ds", "sched"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := smokeConfig(42)
			r1 := Run(ByName(name), cfg)
			r2 := Run(ByName(name), cfg)
			if len(r1.Events) != len(r2.Events) {
				t.Fatalf("event counts differ: %d vs %d", len(r1.Events), len(r2.Events))
			}
			for i := range r1.Events {
				a, b := r1.Events[i], r2.Events[i]
				// FiredVNS is the observed rack-virtual fire time: timing
				// metadata that varies with interleaving, not part of the
				// seed-derived schedule the replay contract covers.
				a.FiredVNS, b.FiredVNS = 0, 0
				if a != b {
					t.Fatalf("event %d differs: %v vs %v", i, a, b)
				}
			}
			if r1.Verdict() != r2.Verdict() {
				t.Fatalf("verdicts differ: %s vs %s", r1.Verdict(), r2.Verdict())
			}
		})
	}
}

// requireCaught runs the workload with a deliberately broken sync path and
// demands that some seed produces violations — proving the checkers catch
// the bug class they exist for.
func requireCaught(t *testing.T, workload, breakName string) {
	t.Helper()
	for _, seed := range []int64{1, 2, 3} {
		cfg := smokeConfig(seed)
		cfg.OpsPerClient = 250 // more laps/merges: give the break time to bite
		cfg.Break = breakName
		rep := Run(ByName(workload), cfg)
		if !rep.Passed() {
			t.Logf("seed %d caught it:\n%s", seed, rep)
			return
		}
	}
	t.Fatalf("break %q was never caught by the %s checkers", breakName, workload)
}

// TestTortureCatchesRingInvalidateBreak: a consumer that skips its
// pop-side invalidate reads stale cached slots on the second lap; the
// FIFO/payload checker must flag it.
func TestTortureCatchesRingInvalidateBreak(t *testing.T) {
	requireCaught(t, "ds", "ring-invalidate")
}

// TestTortureCatchesShootdownBreak: a remap whose TLB shootdown is
// dropped leaves readers translating through stale entries to old frames;
// the version-floor checker must flag it.
func TestTortureCatchesShootdownBreak(t *testing.T) {
	requireCaught(t, "memsys", "shootdown")
}

// TestTortureCatchesDrainFenceBreak: a self-healing controller that
// forgets the EARLY fence leaves a drained-but-alive node able to write
// through its pre-drain views; the fenced-zombie-write probe must flag
// it the moment a drain completes.
func TestTortureCatchesDrainFenceBreak(t *testing.T) {
	requireCaught(t, "health", "drain-fence")
}

// TestFailureAttachesTrace: a failing sweep must come back with the
// flight recorder's merged post-mortem attached — a non-empty timeline
// and parseable Chrome JSON — while a passing sweep stays lean.
func TestFailureAttachesTrace(t *testing.T) {
	var failed *Report
	for _, seed := range []int64{1, 2, 3} {
		cfg := smokeConfig(seed)
		cfg.OpsPerClient = 250
		cfg.Break = "ring-invalidate"
		rep := Run(ByName("ds"), cfg)
		if !rep.Passed() {
			failed = rep
			break
		}
	}
	if failed == nil {
		t.Fatal("no seed produced a failing run to attach a trace to")
	}
	if failed.TraceTimeline == "" {
		t.Error("failing report has no TraceTimeline")
	}
	if !json.Valid(failed.TraceJSON) {
		t.Errorf("failing report's TraceJSON does not parse: %.80s", failed.TraceJSON)
	}
	if !strings.Contains(failed.TraceTimeline, "rack trace:") {
		t.Errorf("timeline missing header:\n%.200s", failed.TraceTimeline)
	}

	pass := Run(ByName("ds"), smokeConfig(1))
	if !pass.Passed() {
		t.Fatalf("expected clean ds run to pass:\n%s", pass)
	}
	if pass.TraceTimeline != "" || pass.TraceJSON != nil {
		t.Error("passing report should not carry a trace extract")
	}
}
