package torture

import (
	"encoding/binary"
	"runtime"
	"sync/atomic"

	"flacos/internal/flacdk/ds"
)

// dsWorkload tortures the FlacDK shared data structures: a hash table
// driven by per-key single-writer version counters, and a ring of SPSC
// rings carrying checksummed messages between neighbor nodes.
//
// Invariants (linearizability-style over concurrent client histories):
//   - hash table: single-writer per key, so any Get must return a version
//     >= the highest version whose Put/CAS completed before the Get began
//     (tracked as a host-side committed floor) — per-key monotonicity;
//     writer CAS from a synced version must succeed.
//   - ring: strict FIFO with no loss and no duplication (publication is
//     the producer's last fabric op, so a crashed push never half-lands),
//     and every payload matches the pattern derived from its sequence
//     number — a consumer that skips its invalidate reads a stale lap and
//     fails both checks.
type dsWorkload struct {
	hm    *ds.HashMap
	rings []*ds.SPSCRing // rings[i]: producer node i -> consumer node (i+1)%N

	floors   []atomic.Uint64 // per key (1-based), committed version floor
	finalVer []uint64        // per key, writer's final version
	ringDead []atomic.Bool   // consumer i aborted (too many violations)
	kpw      int             // keys per writer
}

func newDSWorkload() *dsWorkload { return &dsWorkload{kpw: 4} }

func (w *dsWorkload) Name() string { return "ds" }

// Tolerates: the hash table is pure fabric atomics, but ring payloads are
// cached data, which silent corruption and dropped write-backs can
// legitimately destroy — those classes are out of contract here.
func (w *dsWorkload) Tolerates() FaultClass { return FaultCrash | FaultDegrade }

const ringMsgBytes = 24 // 8-byte seq + 16 pattern bytes

func ringPattern(ring int, seq uint64, k int) byte {
	return byte(seq*31 + uint64(ring)*17 + uint64(k)*7)
}

func fillRingMsg(buf []byte, ring int, seq uint64) {
	binary.LittleEndian.PutUint64(buf, seq)
	for k := 8; k < ringMsgBytes; k++ {
		buf[k] = ringPattern(ring, seq, k)
	}
}

func (w *dsWorkload) Prepare(env *Env) {
	n := env.Cfg.Nodes
	keys := n * w.kpw
	w.hm = ds.NewHashMap(env.Fab, uint64(keys)*8+64)
	w.floors = make([]atomic.Uint64, keys)
	w.finalVer = make([]uint64, keys)
	n0 := env.Fab.Node(0)
	for k := 1; k <= keys; k++ {
		w.hm.Put(n0, uint64(k), 1)
		w.floors[k-1].Store(1)
	}
	w.rings = make([]*ds.SPSCRing, n)
	w.ringDead = make([]atomic.Bool, n)
	for i := 0; i < n; i++ {
		w.rings[i] = ds.NewSPSCRing(env.Fab, 8, ringMsgBytes)
	}
}

func (w *dsWorkload) Clients(env *Env) []func() {
	var out []func()
	for i := 0; i < env.Cfg.Nodes; i++ {
		node := i
		out = append(out,
			func() { w.mapWriter(env, node) },
			func() { w.mapReader(env, node) },
			func() { w.ringProducer(env, node) },
			func() { w.ringConsumer(env, node) },
		)
	}
	return out
}

// mapWriter owns keys [node*kpw+1, node*kpw+kpw] and bumps their versions
// with alternating Put and CAS. A crash mid-op makes the applied version
// uncertain, so the writer resyncs with a Get before continuing.
func (w *dsWorkload) mapWriter(env *Env, node int) {
	n := env.Fab.Node(node)
	rng := env.Rand(uint64(0x10 + node))
	ci := 0x100 + node
	vers := make([]uint64, w.kpw)
	needSync := make([]bool, w.kpw)
	for j := range vers {
		vers[j] = 1
	}
	for completed := 0; completed < env.Cfg.OpsPerClient; {
		j := rng.Intn(w.kpw)
		key := uint64(node*w.kpw + j + 1)
		if needSync[j] {
			var v uint64
			var ok bool
			if !env.RunOp(n, func() { v, ok = w.hm.Get(n, key) }) {
				env.WaitAlive(n)
				continue
			}
			if !ok || v < vers[j] {
				env.Violatef(ci, "key %d: resync read v=%d ok=%v below committed %d", key, v, ok, vers[j])
				v = vers[j]
			}
			vers[j] = v
			needSync[j] = false
		}
		next := vers[j] + 1
		useCAS := rng.Intn(2) == 0
		casOK := true
		if !env.RunOp(n, func() {
			if useCAS {
				casOK = w.hm.CompareAndSwap(n, key, vers[j], next)
			} else {
				w.hm.Put(n, key, next)
			}
		}) {
			needSync[j] = true
			env.WaitAlive(n)
			continue
		}
		if !casOK {
			env.Violatef(ci, "key %d: single-writer CAS %d->%d lost", key, vers[j], next)
			needSync[j] = true
			continue
		}
		vers[j] = next
		w.floors[key-1].Store(next)
		completed++
		env.OpDone()
	}
	for j := range vers {
		w.finalVer[node*w.kpw+j] = vers[j]
	}
}

// mapReader reads random keys and checks per-key monotonicity against the
// committed floor loaded before the read began.
func (w *dsWorkload) mapReader(env *Env, node int) {
	n := env.Fab.Node(node)
	rng := env.Rand(uint64(0x20 + node))
	ci := 0x200 + node
	keys := len(w.floors)
	for completed := 0; completed < env.Cfg.OpsPerClient; {
		key := uint64(rng.Intn(keys) + 1)
		v0 := w.floors[key-1].Load()
		var v uint64
		var ok bool
		if !env.RunOp(n, func() { v, ok = w.hm.Get(n, key) }) {
			env.WaitAlive(n)
			continue
		}
		if !ok {
			env.Violatef(ci, "key %d: vanished (committed floor %d)", key, v0)
		} else if v < v0 {
			env.Violatef(ci, "key %d: non-monotonic read %d after committed %d", key, v, v0)
		}
		completed++
		env.OpDone()
	}
}

// ringProducer pushes OpsPerClient sequenced messages into its ring. The
// tail publication is TryPush's last fabric op, so a crashed push either
// fully landed (the op then reports complete) or left nothing visible —
// retrying is exact, never duplicating.
func (w *dsWorkload) ringProducer(env *Env, node int) {
	n := env.Fab.Node(node)
	r := w.rings[node]
	buf := make([]byte, ringMsgBytes)
	for seq := uint64(1); seq <= uint64(env.Cfg.OpsPerClient); seq++ {
		fillRingMsg(buf, node, seq)
		for {
			if w.ringDead[node].Load() {
				return // consumer gave up (break-catching run): don't spin on a full ring
			}
			pushed := false
			if !env.RunOp(n, func() { pushed = r.TryPush(n, buf) }) {
				env.WaitAlive(n)
				continue
			}
			if pushed {
				break
			}
			runtime.Gosched() // ring full: consumer is behind (or down)
		}
		env.OpDone()
	}
}

// ringConsumer drains ring (node-1+N)%N, checking strict FIFO and the
// per-sequence payload pattern.
func (w *dsWorkload) ringConsumer(env *Env, node int) {
	ringID := (node - 1 + env.Cfg.Nodes) % env.Cfg.Nodes
	n := env.Fab.Node(node)
	r := w.rings[ringID]
	ci := 0x400 + node
	buf := make([]byte, ringMsgBytes)
	myViols := 0
	expected := uint64(1)
	ops := uint64(env.Cfg.OpsPerClient)
	for expected <= ops {
		var ln int
		var ok bool
		if !env.RunOp(n, func() { ln, ok = r.TryPop(n, buf) }) {
			env.WaitAlive(n)
			continue
		}
		if !ok {
			runtime.Gosched()
			continue
		}
		bad := false
		if ln != ringMsgBytes {
			env.Violatef(ci, "ring %d: message length %d, want %d", ringID, ln, ringMsgBytes)
			bad = true
		}
		seq := binary.LittleEndian.Uint64(buf)
		if seq != expected {
			env.Violatef(ci, "ring %d: FIFO broken: got seq %d, want %d", ringID, seq, expected)
			bad = true
		}
		for k := 8; k < ringMsgBytes && !bad; k++ {
			if buf[k] != ringPattern(ringID, seq, k) {
				env.Violatef(ci, "ring %d: stale/corrupt payload for seq %d at byte %d", ringID, seq, k)
				bad = true
			}
		}
		if bad {
			if myViols++; myViols > 16 {
				env.Violatef(ci, "ring %d: aborting consumer after %d violations", ringID, myViols)
				w.ringDead[ringID].Store(true)
				return
			}
			if seq >= expected {
				expected = seq + 1 // resync forward so the run terminates
			}
			continue
		}
		expected++
		env.OpDone()
	}
}

// Check verifies the quiescent map state: every key holds exactly its
// writer's final committed version.
func (w *dsWorkload) Check(env *Env) {
	n0 := env.Fab.Node(0)
	for k := 1; k <= len(w.finalVer); k++ {
		want := w.finalVer[k-1]
		got, ok := w.hm.Get(n0, uint64(k))
		if !ok || got != want {
			env.Violatef(-1, "final state: key %d = %d (present=%v), want %d", k, got, ok, want)
		}
	}
}
