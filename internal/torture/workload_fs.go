package torture

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"flacos/internal/fabric"
	"flacos/internal/fs"
)

// fsWorkload drives the rack file system: per-node writers rewrite whole
// pages of their own file (bumping an embedded version), occasionally
// fsync and create extra files to churn the metadata journal, while
// readers on every node re-read random pages.
//
// Invariants:
//   - durability: a page version whose Write completed before a read began
//     (the committed floor) is never lost — the read may see a newer
//     version, never an older or zero page;
//   - no torn reads: a full-page read decodes to exactly one version's
//     content (page writes install a fresh frame, so readers must always
//     land on a frame-consistent image, even across crash-recovery);
//   - journal durability: every created file resolves through a fresh
//     mount whose metadata replica replays the journal from scratch.
//
// A client whose op was interrupted by its node's crash fences its dead
// mount (freeing the stuck quiescence reservation) and re-mounts — the
// same recovery dance a rebooted FlacOS node performs.
type fsWorkload struct {
	fsys *fs.FS

	names []string // per writer file name
	ids   []uint64 // per writer file id
	pages int      // pages per file

	pub      [][]atomic.Uint64 // [writer][page] committed version floor
	finalVer [][]uint64        // [writer][page] writer's final version

	extraMu sync.Mutex
	extras  map[string]uint64 // published extra files: name -> id
}

func newFSWorkload() *fsWorkload { return &fsWorkload{pages: 4} }

func (w *fsWorkload) Name() string { return "fs" }

// Tolerates: page payloads and the journal ring live in cached memory, so
// silent corruption and dropped write-backs are out of contract; crashes
// and link degradation are the faults the FS is designed to survive.
func (w *fsWorkload) Tolerates() FaultClass { return FaultCrash | FaultDegrade }

// makeFilePage builds the deterministic full-page image for (file, page,
// version). Word 0 is the header; every body byte depends on the offset so
// any mix of two versions is detectable.
func makeFilePage(file, page int, ver uint64) []byte {
	buf := make([]byte, fs.PageSize)
	binary.LittleEndian.PutUint64(buf, ver<<24|uint64(file)<<12|uint64(page))
	for k := 8; k < fs.PageSize; k++ {
		buf[k] = byte(uint64(k)*2654435761 + ver*97 + uint64(file)*31 + uint64(page)*17)
	}
	return buf
}

func decodeFileHeader(h uint64) (ver uint64, file, page int) {
	return h >> 24, int(h >> 12 & 0xfff), int(h & 0xfff)
}

func (w *fsWorkload) Prepare(env *Env) {
	n := env.Cfg.Nodes
	writes := n * env.Cfg.OpsPerClient
	w.fsys = fs.New(env.Fab, fs.NewMemDev(0, 0), fs.Config{
		// Headroom for the worst case: reclamation stalls while a crashed
		// mount pins the epoch, so every write may take a fresh frame.
		CacheFrames: uint64(2*writes + n*w.pages + 256),
		MetaLogCap:  4096,
		MaxMounts:   2*n + 2*env.Cfg.Events + 8,
	})
	w.fsys.SetTrace(env.Trace)
	w.extras = make(map[string]uint64)
	w.names = make([]string, n)
	w.ids = make([]uint64, n)
	w.pub = make([][]atomic.Uint64, n)
	w.finalVer = make([][]uint64, n)
	m0 := w.fsys.Mount(env.Fab.Node(0))
	for i := 0; i < n; i++ {
		w.names[i] = fmt.Sprintf("torture-%d", i)
		id, err := m0.Create(w.names[i])
		if err != nil {
			panic(err)
		}
		w.ids[i] = id
		w.pub[i] = make([]atomic.Uint64, w.pages)
		w.finalVer[i] = make([]uint64, w.pages)
		for p := 0; p < w.pages; p++ {
			if _, err := m0.Write(id, uint64(p)*fs.PageSize, makeFilePage(i, p, 1)); err != nil {
				panic(err)
			}
			w.pub[i][p].Store(1)
		}
	}
}

func (w *fsWorkload) Clients(env *Env) []func() {
	var out []func()
	for i := 0; i < env.Cfg.Nodes; i++ {
		node := i
		out = append(out,
			func() { w.writer(env, node) },
			func() { w.reader(env, node) },
		)
	}
	return out
}

// mount attaches a fresh mount on n, riding out crashes (a half-made
// mount just burns a participant slot, which MaxMounts budgets for).
func (w *fsWorkload) mount(env *Env, n *fabric.Node) *fs.Mount {
	for {
		var m *fs.Mount
		if env.RunOp(n, func() { m = w.fsys.Mount(n) }) {
			return m
		}
		env.WaitAlive(n)
	}
}

// remount recovers a client whose mount died with its node: wait for the
// restart, fence the dead participant, attach fresh.
func (w *fsWorkload) remount(env *Env, n *fabric.Node, dead *fs.Mount) *fs.Mount {
	for {
		env.WaitAlive(n)
		if env.RunOp(n, func() { w.fsys.FenceMount(n, dead) }) {
			return w.mount(env, n)
		}
	}
}

func (w *fsWorkload) writer(env *Env, node int) {
	n := env.Fab.Node(node)
	rng := env.Rand(uint64(0x50 + node))
	ci := 0x500 + node
	m := w.mount(env, n)
	id := w.ids[node]
	vers := make([]uint64, w.pages)
	for p := range vers {
		vers[p] = 1
	}
	attempt := 0
	for completed := 0; completed < env.Cfg.OpsPerClient; {
		p := rng.Intn(w.pages)
		v := vers[p] + 1
		buf := makeFilePage(node, p, v)
		var err error
		if !env.RunOp(n, func() { _, err = m.Write(id, uint64(p)*fs.PageSize, buf) }) {
			// Crash mid-write: the version may or may not have landed;
			// rewriting the identical image is idempotent either way.
			m = w.remount(env, n, m)
			continue
		}
		if err != nil {
			env.Violatef(ci, "file %d page %d: write v%d failed: %v", node, p, v, err)
		}
		vers[p] = v
		w.pub[node][p].Store(v)
		completed++
		env.OpDone()

		switch {
		case completed%40 == 20:
			// Metadata churn: publish an extra file only once Create
			// definitely completed (a crashed attempt may leave an orphan,
			// which is fine — it just must never corrupt the journal).
			attempt++
			name := fmt.Sprintf("extra-%d-%d", node, attempt)
			var eid uint64
			if env.RunOp(n, func() { eid, err = m.Create(name) }) {
				if err != nil {
					env.Violatef(ci, "create %q failed: %v", name, err)
				} else {
					w.extraMu.Lock()
					w.extras[name] = eid
					w.extraMu.Unlock()
				}
			} else {
				m = w.remount(env, n, m)
			}
		case completed%16 == 8:
			if !env.RunOp(n, func() {
				if rng.Intn(2) == 0 {
					err = m.Fsync(id)
				} else {
					m.WriteBackOnce()
				}
			}) {
				m = w.remount(env, n, m)
			} else if err != nil {
				env.Violatef(ci, "fsync file %d failed: %v", node, err)
			}
		}
	}
	copy(w.finalVer[node], vers)
}

func (w *fsWorkload) reader(env *Env, node int) {
	n := env.Fab.Node(node)
	rng := env.Rand(uint64(0x60 + node))
	ci := 0x600 + node
	m := w.mount(env, n)
	buf := make([]byte, fs.PageSize)
	for completed := 0; completed < env.Cfg.OpsPerClient; {
		target := rng.Intn(len(w.ids))
		p := rng.Intn(w.pages)
		v0 := w.pub[target][p].Load()
		var err error
		if !env.RunOp(n, func() { _, err = m.Read(w.ids[target], uint64(p)*fs.PageSize, buf) }) {
			m = w.remount(env, n, m)
			continue
		}
		if err != nil {
			env.Violatef(ci, "file %d page %d: read failed: %v", target, p, err)
		} else {
			w.checkPage(env, ci, buf, target, p, v0)
		}
		completed++
		env.OpDone()

		if completed%16 == 4 {
			var gotID uint64
			var ok bool
			if !env.RunOp(n, func() { gotID, ok = m.Lookup(w.names[target]) }) {
				m = w.remount(env, n, m)
			} else if !ok || gotID != w.ids[target] {
				env.Violatef(ci, "lookup %q = (%d,%v), want id %d", w.names[target], gotID, ok, w.ids[target])
			}
		}
	}
}

// checkPage verifies one full-page image against the durability and
// no-torn-read invariants, given the committed floor v0 loaded before the
// read began.
func (w *fsWorkload) checkPage(env *Env, ci int, buf []byte, file, page int, v0 uint64) {
	hdr := binary.LittleEndian.Uint64(buf)
	if hdr == 0 {
		if v0 > 0 {
			env.Violatef(ci, "file %d page %d: lost write: zero page after committed v%d", file, page, v0)
		}
		return
	}
	ver, gotFile, gotPage := decodeFileHeader(hdr)
	if gotFile != file || gotPage != page {
		env.Violatef(ci, "file %d page %d: wrong identity (%d,%d) v%d", file, page, gotFile, gotPage, ver)
		return
	}
	if ver < v0 {
		env.Violatef(ci, "file %d page %d: stale read v%d after committed v%d", file, page, ver, v0)
		return
	}
	if !bytes.Equal(buf, makeFilePage(file, page, ver)) {
		env.Violatef(ci, "file %d page %d: torn read at v%d", file, page, ver)
	}
}

// Check attaches a brand-new mount on the last node — its metadata replica
// replays the journal from entry zero, standing in for a rebooted node —
// and verifies names, final page versions, and full page content.
func (w *fsWorkload) Check(env *Env) {
	m := w.fsys.Mount(env.Fab.Node(env.Cfg.Nodes - 1))
	buf := make([]byte, fs.PageSize)
	for i, name := range w.names {
		id, ok := m.Lookup(name)
		if !ok || id != w.ids[i] {
			env.Violatef(-1, "final: lookup %q = (%d,%v), want id %d", name, id, ok, w.ids[i])
			continue
		}
		for p := 0; p < w.pages; p++ {
			want := w.finalVer[i][p]
			if _, err := m.Read(id, uint64(p)*fs.PageSize, buf); err != nil {
				env.Violatef(-1, "final: read file %d page %d: %v", i, p, err)
				continue
			}
			if !bytes.Equal(buf, makeFilePage(i, p, want)) {
				env.Violatef(-1, "final: file %d page %d does not match committed v%d (header %#x)",
					i, p, want, binary.LittleEndian.Uint64(buf))
			}
		}
	}
	w.extraMu.Lock()
	defer w.extraMu.Unlock()
	for name, id := range w.extras {
		got, ok := m.Lookup(name)
		if !ok || got != id {
			env.Violatef(-1, "final: journal lost create %q (got %d,%v want %d)", name, got, ok, id)
		}
	}
}
