// Package torture is FlacOS's deterministic, seeded fault-sweep
// framework: it runs registered workloads against a live rack while a
// schedule driver injects faults — bit corruption and dropped write-backs
// from fabric.FaultInjector, node crashes and restarts, link degradation
// — at seed-replayable points, then runs invariant checkers over the
// recorded operation history.
//
// The paper's core claim is that FlacOS co-designs its lock-free
// synchronization methods WITH fault tolerance, so the rack survives the
// larger fault surface of non-coherent global memory. This package is the
// correctness backbone behind that claim: every subsystem's invariants
// are checked under a systematic, reproducible stress campaign rather
// than asserted ad hoc.
//
// Determinism contract: the fault schedule is derived entirely from the
// seed (event kinds, victims, rates, and the operation counts at which
// they fire), and every scheduled event is applied exactly once per run —
// by op-count crossing while clients run, or drained at the end. Same
// seed therefore means identical event counts and, for correct code,
// identical PASS verdicts; goroutine interleavings may vary but the
// checked invariants must hold under all of them.
package torture

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/ds"
	"flacos/internal/health"
	"flacos/internal/memsys"
	"flacos/internal/trace"
)

// FaultClass is a bitmask of injectable fault classes.
type FaultClass uint32

// Fault classes.
const (
	// FaultCrash kills a node mid-run (losing its un-written-back cache
	// lines) and later restarts it cold.
	FaultCrash FaultClass = 1 << iota
	// FaultCorrupt flips random bits in words on the cached write-back
	// path. Only workloads whose shared state travels purely over fabric
	// atomics (which bypass that path) tolerate it.
	FaultCorrupt
	// FaultDropWB silently drops whole line write-backs.
	FaultDropWB
	// FaultDegrade adds interconnect hops to a node's link at runtime.
	FaultDegrade

	// FaultAll enables every class a workload tolerates.
	FaultAll = FaultCrash | FaultCorrupt | FaultDropWB | FaultDegrade
)

func (fc FaultClass) String() string {
	if fc == 0 {
		return "none"
	}
	var parts []string
	for _, p := range []struct {
		f FaultClass
		s string
	}{{FaultCrash, "crash"}, {FaultCorrupt, "corrupt"}, {FaultDropWB, "dropwb"}, {FaultDegrade, "degrade"}} {
		if fc&p.f != 0 {
			parts = append(parts, p.s)
		}
	}
	return strings.Join(parts, "+")
}

// Config parameterizes one sweep run.
type Config struct {
	// Seed drives the fault schedule, the fabric's fault injector, and
	// every client's op stream. Same seed, same schedule.
	Seed int64
	// Nodes sizes the rack (default 3; node 0 never crashes).
	Nodes int
	// ClientsPerNode is how many client goroutines each node runs
	// (default 2; workloads may interpret roles per client).
	ClientsPerNode int
	// OpsPerClient is how many completed operations each client performs
	// (default 250). The fault schedule is laid out over the total.
	OpsPerClient int
	// Faults enables fault classes; each workload additionally masks it
	// with what it tolerates. Default FaultAll.
	Faults FaultClass
	// Events is how many fault windows the schedule contains (each is an
	// on/off or crash/restart pair; default 6).
	Events int
	// CorruptPPM and DropPPM are the peak injector rates used inside
	// corrupt/dropwb windows (defaults 400/400).
	CorruptPPM, DropPPM uint64
	// DegradeHops is the link degradation applied inside degrade windows
	// (default 6 extra hops).
	DegradeHops int
	// Break names a deliberately broken sync path to enable for the run
	// ("" = none). See ApplyBreak.
	Break string
	// GlobalMemBytes sizes the fabric (default 256 MiB).
	GlobalMemBytes uint64
	// CacheLines bounds each node cache (default -1: unbounded, so stale
	// lines stay resident and missing invalidates are observable).
	CacheLines int
	// NoTrace disables the rack flight recorder. Tracing is on by default:
	// a failing sweep's report carries the merged pre-failure timeline
	// (Report.TraceTimeline / TraceJSON), including whatever a crashed
	// node published before dying.
	NoTrace bool
	// TraceRingCap sizes each node's event ring (default 32768 slots).
	TraceRingCap uint64
}

func (c *Config) fillDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.ClientsPerNode == 0 {
		c.ClientsPerNode = 2
	}
	if c.OpsPerClient == 0 {
		c.OpsPerClient = 250
	}
	if c.Faults == 0 {
		c.Faults = FaultAll
	}
	if c.Events == 0 {
		c.Events = 6
	}
	if c.CorruptPPM == 0 {
		c.CorruptPPM = 400
	}
	if c.DropPPM == 0 {
		c.DropPPM = 400
	}
	if c.DegradeHops == 0 {
		c.DegradeHops = 6
	}
	if c.GlobalMemBytes == 0 {
		c.GlobalMemBytes = 256 << 20
	}
	if c.CacheLines == 0 {
		c.CacheLines = -1
	}
	if c.TraceRingCap == 0 {
		c.TraceRingCap = 1 << 15
	}
}

// Violation is one invariant breach found by a checker.
type Violation struct {
	Client int
	Detail string
}

func (v Violation) String() string { return fmt.Sprintf("client %d: %s", v.Client, v.Detail) }

// Workload is one subsystem-under-torture: it builds its subsystem on the
// rack, runs client op streams, and checks invariants. Online violations
// are recorded through Env.Violatef; Check runs after every client
// finished and the rack is quiescent (all nodes alive, faults off).
type Workload interface {
	Name() string
	// Tolerates returns the fault classes this workload's invariants are
	// expected to hold under (e.g. cached-payload structures cannot
	// survive silent corruption; atomics-only ones can).
	Tolerates() FaultClass
	Prepare(env *Env)
	Clients(env *Env) []func()
	Check(env *Env)
}

// RestartHandler is implemented by workloads that must re-integrate a
// restarted node (e.g. reboot its scheduler workers).
type RestartHandler interface {
	HandleRestart(env *Env, node int)
}

// Env is the harness context handed to workloads.
type Env struct {
	Fab *fabric.Fabric
	Cfg Config
	// Trace is the rack flight recorder, nil when Cfg.NoTrace is set.
	// Workloads attach their subsystems to it in Prepare (SetTrace is
	// nil-recorder safe, so unconditional attachment is fine).
	Trace *trace.Recorder

	ops    atomic.Uint64
	violMu sync.Mutex
	viols  []Violation
}

// OpDone counts one completed client operation; the schedule driver fires
// events when the global count crosses their thresholds.
func (e *Env) OpDone() { e.ops.Add(1) }

// Ops returns the global completed-operation count.
func (e *Env) Ops() uint64 { return e.ops.Load() }

// Violatef records an invariant violation observed online.
func (e *Env) Violatef(client int, format string, args ...any) {
	e.violMu.Lock()
	e.viols = append(e.viols, Violation{Client: client, Detail: fmt.Sprintf(format, args...)})
	e.violMu.Unlock()
}

func (e *Env) takeViolations() []Violation {
	e.violMu.Lock()
	defer e.violMu.Unlock()
	v := e.viols
	e.viols = nil
	return v
}

// Rand returns a deterministic per-stream rng derived from the seed.
func (e *Env) Rand(stream uint64) *rand.Rand {
	return rand.New(rand.NewSource(e.Cfg.Seed ^ int64(stream*0x9e3779b97f4a7c15+0x6a09e667)))
}

// RunOp executes fn, which performs fabric operations on node n, and
// reports whether it completed. A panic caused by the node being crashed
// is absorbed (the op's CPU died with its node); any other panic
// propagates — it is a bug, not a fault.
func (e *Env) RunOp(n *fabric.Node, fn func()) (completed bool) {
	defer func() {
		if r := recover(); r != nil {
			if n.Crashed() {
				completed = false
				return
			}
			panic(r)
		}
	}()
	fn()
	return true
}

// WaitAlive blocks until n has been restarted.
func (e *Env) WaitAlive(n *fabric.Node) {
	for n.Crashed() {
		time.Sleep(100 * time.Microsecond)
	}
}

// Report is the outcome of one workload sweep.
type Report struct {
	Workload   string
	Seed       int64
	Faults     FaultClass // classes actually enabled (config ∩ tolerated)
	Ops        uint64
	Events     []Event
	BitFlips   uint64
	DroppedWBs uint64
	Violations []Violation
	// TraceTimeline and TraceJSON hold the merged rack flight-recorder
	// extract (human timeline tail and Chrome trace_event JSON), filled
	// only for failing runs with tracing enabled.
	TraceTimeline string
	TraceJSON     []byte
}

// Passed reports whether every invariant held.
func (r *Report) Passed() bool { return len(r.Violations) == 0 }

// Verdict is "PASS" or "FAIL".
func (r *Report) Verdict() string {
	if r.Passed() {
		return "PASS"
	}
	return "FAIL"
}

// String renders the report with the compact event trace that makes a
// failure replayable: feed the same seed back through
// `flacbench -experiment torture -seed N`.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "torture %-8s seed=%-6d faults=%-28s ops=%-6d events=%d flips=%d drops=%d => %s\n",
		r.Workload, r.Seed, r.Faults, r.Ops, len(r.Events), r.BitFlips, r.DroppedWBs, r.Verdict())
	if !r.Passed() {
		fmt.Fprintf(&b, "  event trace (replay with -seed %d):\n", r.Seed)
		for _, ev := range r.Events {
			fmt.Fprintf(&b, "    %s\n", ev)
		}
		max := len(r.Violations)
		if max > 12 {
			max = 12
		}
		for _, v := range r.Violations[:max] {
			fmt.Fprintf(&b, "  violation: %s\n", v)
		}
		if len(r.Violations) > max {
			fmt.Fprintf(&b, "  ... and %d more violations\n", len(r.Violations)-max)
		}
	}
	return b.String()
}

// ApplyBreak enables a named deliberately-broken sync path, proving the
// checkers catch the class of bug they exist for. Returns an error for an
// unknown name. Call ClearBreaks afterwards.
func ApplyBreak(name string) error {
	switch name {
	case "":
		return nil
	case "ring-invalidate":
		ds.SetBrokenSkipPopInvalidate(true)
	case "shootdown":
		memsys.SetBrokenSkipShootdown(true)
	case "drain-fence":
		health.SetBrokenSkipDrainFence(true)
	default:
		return fmt.Errorf("torture: unknown break %q (want ring-invalidate|shootdown|drain-fence)", name)
	}
	return nil
}

// Breaks lists the valid ApplyBreak names.
func Breaks() []string { return []string{"ring-invalidate", "shootdown", "drain-fence"} }

// ClearBreaks restores every broken path.
func ClearBreaks() {
	ds.SetBrokenSkipPopInvalidate(false)
	memsys.SetBrokenSkipShootdown(false)
	health.SetBrokenSkipDrainFence(false)
}

// Workloads returns the registered workload set, in fixed order.
func Workloads() []Workload {
	return []Workload{newDSWorkload(), newSchedWorkload(), newFSWorkload(), newMemsysWorkload(), newRedisWorkload(), newMembershipWorkload(), newHealthWorkload()}
}

// ByName returns the named workload, or nil.
func ByName(name string) Workload {
	for _, w := range Workloads() {
		if w.Name() == name {
			return w
		}
	}
	return nil
}

// Run executes one workload sweep under cfg and returns its report.
func Run(w Workload, cfg Config) *Report {
	cfg.fillDefaults()
	mask := w.Tolerates() & cfg.Faults
	f := fabric.New(fabric.Config{
		GlobalSize:         cfg.GlobalMemBytes,
		Nodes:              cfg.Nodes,
		CacheCapacityLines: cfg.CacheLines,
		// Accounting-only latency gives the flight recorder deterministic
		// virtual timestamps; it adds no real delay to the sweep.
		Latency:   fabric.DefaultLatency(),
		FaultSeed: cfg.Seed,
	})
	env := &Env{Fab: f, Cfg: cfg}
	if !cfg.NoTrace {
		env.Trace = trace.New(f, trace.Config{RingCap: cfg.TraceRingCap})
	}
	if cfg.Break != "" {
		if err := ApplyBreak(cfg.Break); err != nil {
			panic(err)
		}
		defer ClearBreaks()
	}
	w.Prepare(env)
	clients := w.Clients(env)
	total := uint64(len(clients)) * uint64(cfg.OpsPerClient)
	schedule := buildSchedule(cfg, mask, total)

	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(ci int, fn func()) {
			defer wg.Done()
			// With a deliberately broken path enabled, a panic (e.g. an
			// allocator corrupted by a write through a stale mapping) IS the
			// injected bug manifesting: record it and let the sweep finish.
			// Without a break it is a harness/subsystem bug and must blow up.
			defer func() {
				if r := recover(); r != nil {
					if cfg.Break == "" {
						panic(r)
					}
					env.Violatef(ci, "client panicked (broken %q path bit): %v", cfg.Break, r)
				}
			}()
			fn()
		}(i, c)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()

	drive(env, w, schedule, done)
	<-done
	quiesce(env, w)

	viols := env.takeViolations()
	func() {
		defer func() {
			if r := recover(); r != nil {
				if cfg.Break == "" {
					panic(r)
				}
				env.Violatef(-1, "final check panicked (broken %q path bit): %v", cfg.Break, r)
			}
		}()
		w.Check(env)
	}()
	viols = append(viols, env.takeViolations()...)
	rep := &Report{
		Workload:   w.Name(),
		Seed:       cfg.Seed,
		Faults:     mask,
		Ops:        env.Ops(),
		Events:     schedule,
		BitFlips:   f.Faults().BitFlips(),
		DroppedWBs: f.Faults().DroppedWriteBacks(),
		Violations: viols,
	}
	if !rep.Passed() && env.Trace != nil {
		// Post-mortem: extract every node's ring — crashed nodes' published
		// events are still in global memory — and attach the merged tail.
		rt := env.Trace.Collector().Snapshot(f.Node(0), false)
		rep.TraceTimeline = rt.TimelineTail(256)
		rep.TraceJSON = rt.ChromeJSON()
	}
	return rep
}

// quiesce restores the rack to a fault-free, fully-alive state so final
// checks observe steady-state invariants.
func quiesce(env *Env, w Workload) {
	f := env.Fab
	f.Faults().SetCorruptionRate(0)
	f.Faults().SetDropWriteBackRate(0)
	for i := 0; i < f.NumNodes(); i++ {
		n := f.Node(i)
		n.SetLinkDegradation(0)
		if n.Crashed() {
			// Unreachable with a well-formed schedule (crashes are always
			// paired with a drained restart); kept as a safety net so Check
			// never runs against a dead node.
			n.Restart()
			if h, ok := w.(RestartHandler); ok {
				h.HandleRestart(env, i)
			}
		}
	}
}
