package torture

import (
	"fmt"
	"math/rand"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/trace"
)

// EventKind is one fault-schedule action.
type EventKind int

// Event kinds. On/off kinds always come in pairs inside one window.
const (
	EvCrash EventKind = iota
	EvRestart
	EvCorruptOn
	EvCorruptOff
	EvDropOn
	EvDropOff
	EvDegradeOn
	EvDegradeOff
)

func (k EventKind) String() string {
	switch k {
	case EvCrash:
		return "crash"
	case EvRestart:
		return "restart"
	case EvCorruptOn:
		return "corrupt-on"
	case EvCorruptOff:
		return "corrupt-off"
	case EvDropOn:
		return "dropwb-on"
	case EvDropOff:
		return "dropwb-off"
	case EvDegradeOn:
		return "degrade-on"
	case EvDegradeOff:
		return "degrade-off"
	}
	return fmt.Sprintf("ev(%d)", int(k))
}

// Event is one scheduled fault action, fired when the global op counter
// crosses AtOp.
type Event struct {
	AtOp uint64
	Kind EventKind
	Node int    // victim (crash/restart/degrade); unused for rates
	Arg  uint64 // rate in ppm, or extra hops
	// FiredVNS is the rack virtual time (max node clock) at which apply
	// fired the event — 0 until then. It lines the event log up with the
	// flight recorder's virtual-timestamped trace.
	FiredVNS uint64
}

func (ev Event) String() string {
	vt := ""
	if ev.FiredVNS != 0 {
		vt = fmt.Sprintf(" vt=%-9s", trace.VNS(ev.FiredVNS))
	}
	switch ev.Kind {
	case EvCrash, EvRestart:
		return fmt.Sprintf("@%-6d%s %s node=%d", ev.AtOp, vt, ev.Kind, ev.Node)
	case EvDegradeOn, EvDegradeOff:
		return fmt.Sprintf("@%-6d%s %s node=%d hops=+%d", ev.AtOp, vt, ev.Kind, ev.Node, ev.Arg)
	default:
		return fmt.Sprintf("@%-6d%s %s ppm=%d", ev.AtOp, vt, ev.Kind, ev.Arg)
	}
}

// buildSchedule derives the whole fault schedule from the seed: cfg.Events
// windows spread over [10%, 90%] of the expected op count, each holding
// one paired action (crash→restart, rate on→off, degrade on→off) from the
// enabled classes. Windows never overlap, so at most one node is down and
// at most one window of each action is active at a time; node 0 is never
// a victim, so every workload keeps a stable home for submitters and
// final checks.
func buildSchedule(cfg Config, mask FaultClass, totalOps uint64) []Event {
	if mask == 0 || cfg.Events <= 0 || totalOps == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed*0x5deece66d + 0xb))
	var kinds []EventKind
	if mask&FaultCrash != 0 && cfg.Nodes > 1 {
		kinds = append(kinds, EvCrash)
	}
	if mask&FaultCorrupt != 0 {
		kinds = append(kinds, EvCorruptOn)
	}
	if mask&FaultDropWB != 0 {
		kinds = append(kinds, EvDropOn)
	}
	if mask&FaultDegrade != 0 {
		kinds = append(kinds, EvDegradeOn)
	}
	if len(kinds) == 0 {
		return nil
	}
	lo := totalOps / 10
	hi := totalOps * 9 / 10
	span := (hi - lo) / uint64(cfg.Events)
	if span < 4 {
		span = 4
	}
	var out []Event
	victim := 0
	for i := 0; i < cfg.Events; i++ {
		wStart := lo + uint64(i)*span
		a := wStart + uint64(rng.Int63n(int64(span/4+1)))
		b := wStart + span/2 + uint64(rng.Int63n(int64(span/4+1)))
		kind := kinds[rng.Intn(len(kinds))]
		switch kind {
		case EvCrash:
			victim = 1 + (victim+rng.Intn(cfg.Nodes-1))%(cfg.Nodes-1)
			out = append(out,
				Event{AtOp: a, Kind: EvCrash, Node: victim},
				Event{AtOp: b, Kind: EvRestart, Node: victim})
		case EvCorruptOn:
			ppm := cfg.CorruptPPM / uint64(1<<rng.Intn(3))
			out = append(out,
				Event{AtOp: a, Kind: EvCorruptOn, Arg: ppm},
				Event{AtOp: b, Kind: EvCorruptOff})
		case EvDropOn:
			ppm := cfg.DropPPM / uint64(1<<rng.Intn(3))
			out = append(out,
				Event{AtOp: a, Kind: EvDropOn, Arg: ppm},
				Event{AtOp: b, Kind: EvDropOff})
		case EvDegradeOn:
			victim = 1 + (victim+rng.Intn(cfg.Nodes-1))%(cfg.Nodes-1)
			hops := uint64(1 + rng.Intn(cfg.DegradeHops))
			out = append(out,
				Event{AtOp: a, Kind: EvDegradeOn, Node: victim, Arg: hops},
				Event{AtOp: b, Kind: EvDegradeOff, Node: victim})
		}
	}
	return out
}

// stallTimeout fires the next scheduled event when the op counter makes
// no progress — clients may all be waiting on a crashed node whose
// restart is the very event being waited for.
const stallTimeout = 25 * time.Millisecond

// drive applies the schedule as the op counter crosses event thresholds,
// then drains whatever remains once every client finished, so each run
// applies exactly len(schedule) events regardless of interleaving.
func drive(env *Env, w Workload, schedule []Event, done <-chan struct{}) {
	idx := 0
	lastOps := env.Ops()
	lastProgress := time.Now()
	for idx < len(schedule) {
		select {
		case <-done:
			for ; idx < len(schedule); idx++ {
				apply(env, w, &schedule[idx])
			}
			return
		default:
		}
		cur := env.Ops()
		if cur >= schedule[idx].AtOp || (cur == lastOps && time.Since(lastProgress) > stallTimeout) {
			apply(env, w, &schedule[idx])
			idx++
			lastOps = cur
			lastProgress = time.Now()
			continue
		}
		if cur != lastOps {
			lastOps = cur
			lastProgress = time.Now()
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// apply fires one event against the rack, stamping its rack-virtual fire
// time and mirroring it into the flight recorder (via node 0, which never
// crashes) so post-mortem timelines show faults amid subsystem events.
func apply(env *Env, w Workload, ev *Event) {
	f := env.Fab
	ev.FiredVNS = rackVNS(f)
	if env.Trace != nil {
		env.Trace.Writer(0).Emit(trace.SubTorture, trace.KFault, 0, uint64(ev.Kind), uint64(ev.Node))
	}
	var n *fabric.Node
	if ev.Node >= 0 && ev.Node < f.NumNodes() {
		n = f.Node(ev.Node)
	}
	switch ev.Kind {
	case EvCrash:
		if n != nil && !n.Crashed() {
			n.Crash()
		}
	case EvRestart:
		if n != nil && n.Crashed() {
			n.Restart()
			if h, ok := w.(RestartHandler); ok {
				h.HandleRestart(env, ev.Node)
			}
		}
	case EvCorruptOn:
		f.Faults().SetCorruptionRate(ev.Arg)
	case EvCorruptOff:
		f.Faults().SetCorruptionRate(0)
	case EvDropOn:
		f.Faults().SetDropWriteBackRate(ev.Arg)
	case EvDropOff:
		f.Faults().SetDropWriteBackRate(0)
	case EvDegradeOn:
		if n != nil {
			n.SetLinkDegradation(int(ev.Arg))
		}
	case EvDegradeOff:
		if n != nil {
			n.SetLinkDegradation(0)
		}
	}
}

// rackVNS returns the rack's virtual time: the furthest-ahead node clock
// (safe to read even from crashed nodes).
func rackVNS(f *fabric.Fabric) uint64 {
	var max uint64
	for i := 0; i < f.NumNodes(); i++ {
		if v := f.Node(i).VirtualNS(); v > max {
			max = v
		}
	}
	return max
}
