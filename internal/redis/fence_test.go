package redis

import (
	"errors"
	"testing"

	"flacos/internal/fabric"
)

// Zombie fencing, deterministically: a view attached before its node
// was declared Dead must have every write rejected once FenceNode runs,
// while a view attached under the post-rejoin generation serves
// normally. This is the redis half of the membership generation fence
// (sched's half is TestReclaimNodeFencesZombieCompletion).
func TestFenceNodeRejectsZombieWrites(t *testing.T) {
	f := fabric.New(fabric.Config{GlobalSize: 64 << 20, Nodes: 2})
	s := NewRackStore(f, RackStoreConfig{})
	n0, n1 := f.Node(0), f.Node(1)

	// Node 1 serves under membership generation 1.
	zombie := s.AttachGen(n1, 1)
	if err := zombie.Set("k", []byte("before"), 0); err != nil {
		t.Fatalf("pre-fence set: %v", err)
	}

	// The rack declares node 1 dead at generation 1; recovery fences it
	// from a live node.
	if got := s.FenceNode(n0, 1, 1); got != 1 {
		t.Fatalf("FenceNode fenced %d views, want 1", got)
	}
	// Idempotent per (node, generation).
	if got := s.FenceNode(n0, 1, 1); got != 0 {
		t.Fatalf("repeat FenceNode fenced %d views, want 0", got)
	}

	// Every write through the zombie's view now bounces.
	if err := zombie.Set("k", []byte("after"), 0); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie Set: %v, want ErrFenced", err)
	}
	if _, err := zombie.Incr("ctr"); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie Incr: %v, want ErrFenced", err)
	}
	if got := zombie.Del("k"); got != 0 {
		t.Fatalf("zombie Del deleted %d keys, want 0", got)
	}

	// The committed state is untouched and visible elsewhere.
	reader := s.AttachGen(n0, 1)
	if v, ok := reader.Get("k"); !ok || string(v) != "before" {
		t.Fatalf("Get(k) = %q, %v; want \"before\", true", v, ok)
	}

	// Node 1 rejoins at generation 2: its fresh view serves.
	rejoined := s.AttachGen(n1, 2)
	if err := rejoined.Set("k", []byte("rejoined"), 0); err != nil {
		t.Fatalf("post-rejoin set: %v", err)
	}
	if v, ok := reader.Get("k"); !ok || string(v) != "rejoined" {
		t.Fatalf("Get(k) = %q, %v; want \"rejoined\", true", v, ok)
	}
	// And the OLD generation stays fenced forever.
	if err := zombie.Set("k", []byte("necro"), 0); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie Set after rejoin: %v, want ErrFenced", err)
	}
}

// Attach (without an explicit generation) adopts the node's current
// fence level, so plain reattach-after-crash keeps working for callers
// that never heard of membership.
func TestAttachAdoptsFenceLevel(t *testing.T) {
	f := fabric.New(fabric.Config{GlobalSize: 64 << 20, Nodes: 2})
	s := NewRackStore(f, RackStoreConfig{})
	n0, n1 := f.Node(0), f.Node(1)

	old := s.Attach(n1) // generation 0
	s.FenceNode(n0, 1, 0)
	if err := old.Set("k", []byte("x"), 0); !errors.Is(err, ErrFenced) {
		t.Fatalf("old view Set: %v, want ErrFenced", err)
	}
	fresh := s.Attach(n1) // adopts fence level 1
	if err := fresh.Set("k", []byte("x"), 0); err != nil {
		t.Fatalf("fresh view Set: %v", err)
	}
	if fresh.Generation() == old.Generation() {
		t.Fatal("fresh view did not adopt the raised fence level")
	}
}

// A fence for an older generation must not reject a view already
// serving under a newer one (the FenceNode(gen) monotonicity contract).
func TestLateFenceForOldGenerationIsHarmless(t *testing.T) {
	f := fabric.New(fabric.Config{GlobalSize: 64 << 20, Nodes: 2})
	s := NewRackStore(f, RackStoreConfig{})
	n0, n1 := f.Node(0), f.Node(1)

	v2 := s.AttachGen(n1, 2)
	// A slow observer only now reports the generation-1 death.
	s.FenceNode(n0, 1, 1)
	if err := v2.Set("k", []byte("x"), 0); err != nil {
		t.Fatalf("gen-2 view fenced by a gen-1 fence: %v", err)
	}
}
