package redis

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/ipc"
	"flacos/internal/netstack"
)

// --- RESP codec ---

func TestRESPRoundTrip(t *testing.T) {
	cmd := AppendCommand(nil, []byte("SET"), []byte("key"), []byte("value"))
	v, n, err := Decode(cmd)
	if err != nil || n != len(cmd) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if v.Kind != respArray || len(v.Array) != 3 || string(v.Array[0].Bulk) != "SET" {
		t.Fatalf("decoded %+v", v)
	}
	for in, check := range map[string]func(Value) bool{
		"+OK\r\n":       func(v Value) bool { return v.Kind == respSimple && v.Str == "OK" },
		"-ERR x\r\n":    func(v Value) bool { return v.Kind == respError && v.Str == "ERR x" },
		":-42\r\n":      func(v Value) bool { return v.Kind == respInt && v.Int == -42 },
		"$-1\r\n":       func(v Value) bool { return v.Kind == respBulk && v.Bulk == nil },
		"$3\r\nabc\r\n": func(v Value) bool { return string(v.Bulk) == "abc" },
		"*0\r\n":        func(v Value) bool { return v.Kind == respArray && len(v.Array) == 0 },
	} {
		v, _, err := Decode([]byte(in))
		if err != nil || !check(v) {
			t.Fatalf("decode %q: %+v, %v", in, v, err)
		}
	}
}

func TestRESPMalformed(t *testing.T) {
	for _, in := range []string{"", "x", "+OK", "$5\r\nab\r\n", ":abc\r\n", "*2\r\n+a\r\n", "$3\r\nabcXX"} {
		if _, _, err := Decode([]byte(in)); err == nil {
			t.Errorf("Decode(%q) should fail", in)
		}
	}
}

func TestRESPQuickBulkRoundTrip(t *testing.T) {
	prop := func(data []byte) bool {
		enc := AppendBulk(nil, data)
		v, n, err := Decode(enc)
		return err == nil && n == len(enc) && bytes.Equal(v.Bulk, data) ||
			(data == nil && v.Bulk == nil && err == nil)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- Store ---

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	s.Set("a", []byte("1"), 0)
	if v, ok := s.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if s.Exists("a", "b") != 1 || s.Len() != 1 {
		t.Fatal("exists/len wrong")
	}
	if s.Del("a", "b") != 1 {
		t.Fatal("del wrong")
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("deleted key present")
	}
	if v, err := s.Incr("ctr"); err != nil || v != 1 {
		t.Fatalf("incr = %d,%v", v, err)
	}
	if v, _ := s.Incr("ctr"); v != 2 {
		t.Fatalf("incr = %d", v)
	}
	s.Set("notnum", []byte("xyz"), 0)
	if _, err := s.Incr("notnum"); err == nil {
		t.Fatal("incr of non-integer should fail")
	}
}

func TestStoreExpiry(t *testing.T) {
	s := NewStore()
	now := time.Unix(1000, 0)
	s.SetClock(func() time.Time { return now })
	s.Set("k", []byte("v"), 5*time.Second)
	if _, ok := s.Get("k"); !ok {
		t.Fatal("fresh key missing")
	}
	now = now.Add(6 * time.Second)
	if _, ok := s.Get("k"); ok {
		t.Fatal("expired key still present")
	}
	// SET without TTL clears a previous TTL.
	s.Set("k2", []byte("v"), time.Second)
	s.Set("k2", []byte("v"), 0)
	now = now.Add(time.Hour)
	if _, ok := s.Get("k2"); !ok {
		t.Fatal("TTL not cleared by plain SET")
	}
}

// --- Command execution ---

func TestExecuteCommands(t *testing.T) {
	srv := NewServer(NewStore())
	exec := func(args ...string) Value {
		bb := make([][]byte, len(args))
		for i, a := range args {
			bb[i] = []byte(a)
		}
		v, _, err := Decode(srv.Execute(AppendCommand(nil, bb...)))
		if err != nil {
			t.Fatalf("execute %v: %v", args, err)
		}
		return v
	}
	if v := exec("PING"); v.Str != "PONG" {
		t.Fatalf("PING = %+v", v)
	}
	if v := exec("SET", "k", "val"); v.Str != "OK" {
		t.Fatalf("SET = %+v", v)
	}
	if v := exec("GET", "k"); string(v.Bulk) != "val" {
		t.Fatalf("GET = %+v", v)
	}
	if v := exec("GET", "missing"); v.Bulk != nil {
		t.Fatalf("GET missing = %+v", v)
	}
	if v := exec("DBSIZE"); v.Int != 1 {
		t.Fatalf("DBSIZE = %+v", v)
	}
	if v := exec("DEL", "k", "x"); v.Int != 1 {
		t.Fatalf("DEL = %+v", v)
	}
	if v := exec("NOSUCH"); v.Kind != respError {
		t.Fatalf("unknown command = %+v", v)
	}
	if v := exec("SET", "only-key"); v.Kind != respError {
		t.Fatalf("bad arity = %+v", v)
	}
	if v := exec("INCR", "n"); v.Int != 1 {
		t.Fatalf("INCR = %+v", v)
	}
	// Raw garbage.
	if v, _, _ := Decode(srv.Execute([]byte("garbage"))); v.Kind != respError {
		t.Fatal("garbage should produce an error reply")
	}
}

// --- End to end over both transports ---

func runIPC(t *testing.T) (*Client, func()) {
	t.Helper()
	f := fabric.New(fabric.Config{GlobalSize: 64 << 20, Nodes: 2})
	sb := ipc.NewSwitchboard(f, f.Node(0), ipc.Config{
		MaxConns: 4, MaxListeners: 2, RingSlots: 4, MsgMax: 64 << 10,
	})
	srvEP := sb.Endpoint(f.Node(0))
	l, err := srvEP.Bind("redis")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewStore())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.ServeConn(l.Accept(), 0)
	}()
	conn, err := sb.Endpoint(f.Node(1)).Connect("redis")
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(conn, 0)
	return cl, func() { cl.Close(); wg.Wait(); l.Close() }
}

func runTCP(t *testing.T) (*Client, func()) {
	t.Helper()
	f := fabric.New(fabric.Config{GlobalSize: 1 << 20, Nodes: 2})
	nw := netstack.New(netstack.DefaultTCP())
	l, err := nw.Listen(f.Node(0), "10.0.0.1:6379")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewStore())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			return
		}
		srv.ServeConn(c, 0)
	}()
	conn, err := nw.Dial(f.Node(1), "10.0.0.1:6379")
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(conn, 0)
	return cl, func() { cl.Close(); wg.Wait(); l.Close() }
}

func exerciseClient(t *testing.T, cl *Client) {
	t.Helper()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{0x42}, 4096)
	if err := cl.Set("big", val, 0); err != nil {
		t.Fatal(err)
	}
	got, ok, err := cl.Get("big")
	if err != nil || !ok || !bytes.Equal(got, val) {
		t.Fatalf("GET big: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := cl.Get("missing"); ok {
		t.Fatal("missing key found")
	}
	if n, _ := cl.Incr("ctr"); n != 1 {
		t.Fatalf("incr = %d", n)
	}
	if n, _ := cl.Exists("big", "ctr", "nope"); n != 2 {
		t.Fatalf("exists = %d", n)
	}
	if n, _ := cl.DBSize(); n != 2 {
		t.Fatalf("dbsize = %d", n)
	}
	if n, _ := cl.Del("big"); n != 1 {
		t.Fatalf("del = %d", n)
	}
}

func TestEndToEndOverIPC(t *testing.T) {
	cl, cleanup := runIPC(t)
	defer cleanup()
	exerciseClient(t, cl)
}

func TestEndToEndOverTCP(t *testing.T) {
	cl, cleanup := runTCP(t)
	defer cleanup()
	exerciseClient(t, cl)
}

func TestStoreExpire(t *testing.T) {
	s := NewStore()
	now := time.Unix(1000, 0)
	s.SetClock(func() time.Time { return now })

	if s.Expire("missing", time.Second) {
		t.Fatal("EXPIRE on a missing key reported success")
	}
	s.Set("k", []byte("v"), 0)
	if !s.Expire("k", 5*time.Second) {
		t.Fatal("EXPIRE on a live key failed")
	}
	now = now.Add(6 * time.Second)
	if _, ok := s.Get("k"); ok {
		t.Fatal("key survived its EXPIRE deadline")
	}
	if s.Expire("k", time.Second) {
		t.Fatal("EXPIRE on an expired key reported success")
	}
	// A later EXPIRE replaces the deadline entirely.
	s.Set("k2", []byte("v"), time.Second)
	if !s.Expire("k2", time.Hour) {
		t.Fatal("re-EXPIRE failed")
	}
	now = now.Add(time.Minute)
	if _, ok := s.Get("k2"); !ok {
		t.Fatal("extended TTL not honored")
	}
	// Non-positive ttl deletes immediately, like real Redis.
	if !s.Expire("k2", -time.Second) {
		t.Fatal("negative-ttl EXPIRE on live key failed")
	}
	if _, ok := s.Get("k2"); ok {
		t.Fatal("negative-ttl EXPIRE did not delete")
	}
}

func TestExecuteExpire(t *testing.T) {
	srv := NewServer(NewStore())
	exec := func(args ...string) Value {
		bs := make([][]byte, len(args))
		for i, a := range args {
			bs[i] = []byte(a)
		}
		out := srv.Execute(AppendCommand(nil, bs...))
		v, _, err := Decode(out)
		if err != nil {
			t.Fatalf("reply undecodable: %v", err)
		}
		return v
	}
	exec("SET", "a", "1")
	if v := exec("EXPIRE", "a", "10"); v.Kind != respInt || v.Int != 1 {
		t.Fatalf("EXPIRE live = %+v, want :1", v)
	}
	if v := exec("EXPIRE", "nope", "10"); v.Kind != respInt || v.Int != 0 {
		t.Fatalf("EXPIRE missing = %+v, want :0", v)
	}
	if v := exec("EXPIRE", "a", "zzz"); v.Kind != respError {
		t.Fatalf("EXPIRE with garbage ttl = %+v, want error", v)
	}
	if v := exec("EXPIRE", "a"); v.Kind != respError {
		t.Fatalf("EXPIRE arity = %+v, want error", v)
	}
	if v := exec("EXPIRE", "a", "-1"); v.Kind != respInt || v.Int != 1 {
		t.Fatalf("EXPIRE -1 = %+v, want :1 (delete-now)", v)
	}
	if v := exec("GET", "a"); v.Kind != respBulk || v.Bulk != nil {
		t.Fatalf("GET after delete-now EXPIRE = %+v, want nil bulk", v)
	}
}
