package redis

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/alloc"
)

func newTestRackStore(t *testing.T, nodes int, cfg RackStoreConfig) (*fabric.Fabric, *RackStore) {
	t.Helper()
	f := fabric.New(fabric.Config{
		GlobalSize: 64 << 20,
		Nodes:      nodes,
		Latency:    fabric.DefaultLatency(),
	})
	if cfg.ArenaBytes == 0 {
		cfg.ArenaBytes = 16 << 20
	}
	return f, NewRackStore(f, cfg)
}

// --- rack-shared store: cross-node visibility ---

func TestRackStoreCrossNodeSetGet(t *testing.T) {
	f, s := newTestRackStore(t, 2, RackStoreConfig{})
	a, b := s.Attach(f.Node(0)), s.Attach(f.Node(1))

	// Node 0 writes, node 1 reads — through global memory, no coherence.
	for _, size := range []int{0, 1, 7, 64, 255, 4096, 60000} {
		key := fmt.Sprintf("k%d", size)
		val := make([]byte, size)
		for i := range val {
			val[i] = byte(i * 3)
		}
		if err := a.Set(key, val, 0); err != nil {
			t.Fatalf("set %s: %v", key, err)
		}
		got, ok := b.Get(key)
		if !ok || !bytes.Equal(got, val) {
			t.Fatalf("get %s from node 1: ok=%v len=%d want %d", key, ok, len(got), len(val))
		}
	}

	// Overwrite from node 1, read back from node 0.
	if err := b.Set("k64", []byte("fresh"), 0); err != nil {
		t.Fatal(err)
	}
	if got, ok := a.Get("k64"); !ok || string(got) != "fresh" {
		t.Fatalf("node 0 read after node 1 overwrite: %q ok=%v", got, ok)
	}
}

func TestRackStoreMissAndEmpty(t *testing.T) {
	f, s := newTestRackStore(t, 2, RackStoreConfig{})
	v := s.Attach(f.Node(0))
	if _, ok := v.Get("nope"); ok {
		t.Fatal("get of never-set key hit")
	}
	// Empty key and empty value are both legal.
	if err := v.Set("", []byte{}, 0); err != nil {
		t.Fatal(err)
	}
	got, ok := v.Get("")
	if !ok || len(got) != 0 {
		t.Fatalf("empty key/value: got %v ok=%v", got, ok)
	}
}

func TestRackStoreOversizeRejected(t *testing.T) {
	f, s := newTestRackStore(t, 1, RackStoreConfig{})
	v := s.Attach(f.Node(0))
	if err := v.Set("big", make([]byte, MaxEntryBytes+1), 0); err == nil {
		t.Fatal("oversize Set accepted")
	}
	if err := v.Set("big", make([]byte, MaxEntryBytes-3), 0); err != nil {
		t.Fatalf("max-size Set rejected: %v", err)
	}
}

func TestRackStoreDelExistsLen(t *testing.T) {
	f, s := newTestRackStore(t, 2, RackStoreConfig{})
	a, b := s.Attach(f.Node(0)), s.Attach(f.Node(1))

	for i := 0; i < 10; i++ {
		if err := a.Set(fmt.Sprintf("d%d", i), []byte("x"), 0); err != nil {
			t.Fatal(err)
		}
	}
	if n := b.Len(); n != 10 {
		t.Fatalf("Len from node 1 = %d, want 10", n)
	}
	if n := b.Exists("d0", "d5", "nope"); n != 2 {
		t.Fatalf("Exists = %d, want 2", n)
	}
	// Delete from the OTHER node; the first node must observe it.
	if n := b.Del("d0", "d1", "nope"); n != 2 {
		t.Fatalf("Del = %d, want 2", n)
	}
	if _, ok := a.Get("d0"); ok {
		t.Fatal("node 0 still sees key deleted by node 1")
	}
	if n := a.Len(); n != 8 {
		t.Fatalf("Len after del = %d, want 8", n)
	}
	// Delete of a deleted key is 0; re-SET resurrects the same slot.
	if n := a.Del("d0"); n != 0 {
		t.Fatalf("double del = %d, want 0", n)
	}
	if err := a.Set("d0", []byte("back"), 0); err != nil {
		t.Fatal(err)
	}
	if got, ok := b.Get("d0"); !ok || string(got) != "back" {
		t.Fatalf("resurrected key: %q ok=%v", got, ok)
	}
	if n := b.Len(); n != 9 {
		t.Fatalf("Len after resurrect = %d, want 9", n)
	}
}

func TestRackStoreIncr(t *testing.T) {
	f, s := newTestRackStore(t, 2, RackStoreConfig{})
	a, b := s.Attach(f.Node(0)), s.Attach(f.Node(1))
	for i := int64(1); i <= 5; i++ {
		// Alternate nodes; the counter is one rack-wide integer.
		v := a
		if i%2 == 0 {
			v = b
		}
		got, err := v.Incr("ctr")
		if err != nil || got != i {
			t.Fatalf("incr %d: got %d err=%v", i, got, err)
		}
	}
	if err := a.Set("notanum", []byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Incr("notanum"); err == nil {
		t.Fatal("Incr of non-integer succeeded")
	}
}

// --- TTL: the rack-wide shared-clock bugfix ---

// TestRackStoreTTLExpiryRackWide is the regression test for the
// node-local-clock bug: a key expired on node A must be expired on node
// B. The store's TTLs are deadlines on ONE shared virtual clock, so
// expiry is the same event everywhere, deterministically.
func TestRackStoreTTLExpiryRackWide(t *testing.T) {
	f, s := newTestRackStore(t, 2, RackStoreConfig{})
	a, b := s.Attach(f.Node(0)), s.Attach(f.Node(1))

	if err := a.Set("lease", []byte("v"), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := a.Set("keep", []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	for _, v := range []*View{a, b} {
		if _, ok := v.Get("lease"); !ok {
			t.Fatal("unexpired key missing")
		}
	}
	// Advance the SHARED clock from node B; expiry must hit both nodes.
	b.AdvanceClock(11 * time.Second)
	if _, ok := a.Get("lease"); ok {
		t.Fatal("key expired on the shared clock still visible on node A")
	}
	if _, ok := b.Get("lease"); ok {
		t.Fatal("key expired on the shared clock still visible on node B")
	}
	if _, ok := b.Get("keep"); !ok {
		t.Fatal("no-TTL key expired")
	}
	// Expired keys are dead for EXISTS and DEL (DEL returns 0) too.
	if n := a.Exists("lease"); n != 0 {
		t.Fatalf("Exists on expired = %d", n)
	}
	if n := b.Del("lease"); n != 0 {
		t.Fatalf("Del on expired = %d, want 0", n)
	}
	// A fresh SET with a new TTL starts a new lease.
	if err := b.Set("lease", []byte("v2"), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if got, ok := a.Get("lease"); !ok || string(got) != "v2" {
		t.Fatalf("re-leased key: %q ok=%v", got, ok)
	}
	// Incr preserves a live key's TTL, like real Redis.
	if err := a.Set("n", []byte("41"), 100*time.Second); err != nil {
		t.Fatal(err)
	}
	if got, err := b.Incr("n"); err != nil || got != 42 {
		t.Fatalf("incr with ttl: %d %v", got, err)
	}
	a.AdvanceClock(101 * time.Second)
	if _, ok := b.Get("n"); ok {
		t.Fatal("TTL lost across Incr: key did not expire")
	}
}

// --- reclamation: replaced blocks actually return to the allocator ---

func TestRackStoreReclaimsReplacedValues(t *testing.T) {
	f := fabric.New(fabric.Config{GlobalSize: 64 << 20, Nodes: 1, Latency: fabric.DefaultLatency()})
	ar := alloc.NewArena(f, 16<<20)
	s := NewRackStore(f, RackStoreConfig{Arena: ar})
	v := s.Attach(f.Node(0))
	val := make([]byte, 128)
	for i := 0; i < 500; i++ {
		if err := v.Set("churn", val, 0); err != nil {
			t.Fatal(err)
		}
	}
	v.Barrier()
	allocs, frees := v.AllocStats()
	if frees == 0 {
		t.Fatalf("no replaced entry was ever freed (allocs=%d)", allocs)
	}
	// Everything but the one live entry must be back in the free lists.
	if allocs-frees > 2 {
		t.Fatalf("leak: allocs=%d frees=%d", allocs, frees)
	}
}

// --- server/client over the rack store: batch pipeline end to end ---

func TestServerPipelineOverRackStore(t *testing.T) {
	f, s := newTestRackStore(t, 2, RackStoreConfig{})
	srv := NewServer(s.Attach(f.Node(0)))

	cconn, sconn := newPipePair()
	done := make(chan struct{})
	go func() { defer close(done); srv.ServeConn(sconn, 0) }()

	cl := NewClient(cconn, 0)
	cl.PipeSet("a", []byte("1"), 0)
	cl.PipeSet("b", []byte("2"), 0)
	cl.PipeGet("a")
	cl.PipeCommand([]byte("INCR"), []byte("n"))
	cl.PipeGet("missing")
	replies, err := cl.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 5 {
		t.Fatalf("replies = %d, want 5", len(replies))
	}
	if replies[0].Str != "OK" || replies[1].Str != "OK" {
		t.Fatalf("set replies: %+v %+v", replies[0], replies[1])
	}
	if string(replies[2].Bulk) != "1" {
		t.Fatalf("pipelined get: %+v", replies[2])
	}
	if replies[3].Int != 1 {
		t.Fatalf("pipelined incr: %+v", replies[3])
	}
	if replies[4].Bulk != nil {
		t.Fatalf("pipelined miss: %+v", replies[4])
	}
	// The same dataset is visible to a second server session on the OTHER
	// node, through plain (non-pipelined) commands.
	srv2 := NewServer(s.Attach(f.Node(1)))
	if resp := srv2.Execute(AppendCommand(nil, []byte("GET"), []byte("b"))); !bytes.Contains(resp, []byte("2")) {
		t.Fatalf("node 1 server reply: %q", resp)
	}
	// An oversize SET surfaces as a RESP error, not a dropped write.
	cl.PipeSet("big", make([]byte, MaxEntryBytes+1), 0)
	replies, err = cl.Flush()
	if err != nil || len(replies) != 1 {
		t.Fatalf("oversize flush: %v (%d replies)", err, len(replies))
	}
	if !replies[0].IsError() {
		t.Fatalf("oversize SET reply: %+v", replies[0])
	}
	cconn.Close()
	<-done
}

// newPipePair returns two in-memory Conn halves (host-side, for protocol
// tests that don't need the fabric transport).
func newPipePair() (*pipeConn, *pipeConn) {
	ab, ba := make(chan []byte, 16), make(chan []byte, 16)
	return &pipeConn{send: ab, recv: ba}, &pipeConn{send: ba, recv: ab}
}

type pipeConn struct {
	send, recv chan []byte
}

func (p *pipeConn) Send(msg []byte) error {
	cp := append([]byte(nil), msg...)
	defer func() { recover() }() // closed peer
	p.send <- cp
	return nil
}

func (p *pipeConn) Recv(buf []byte) (int, error) {
	msg, ok := <-p.recv
	if !ok {
		return 0, fmt.Errorf("closed")
	}
	return copy(buf, msg), nil
}

func (p *pipeConn) Close() { close(p.send) }

// TestRackStoreExpire: EXPIRE republishes the entry with a new deadline
// on the SHARED virtual clock, so the lease is the same event on every
// node; negative ttl is delete-now; dead keys refuse a new lease.
func TestRackStoreExpire(t *testing.T) {
	f, s := newTestRackStore(t, 2, RackStoreConfig{})
	a, b := s.Attach(f.Node(0)), s.Attach(f.Node(1))

	if a.Expire("missing", time.Second) {
		t.Fatal("EXPIRE on a missing key reported success")
	}
	if err := a.Set("lease", []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	// Node B sets the lease node A wrote; the value must survive the
	// republish byte for byte.
	if !b.Expire("lease", 10*time.Second) {
		t.Fatal("EXPIRE on a live key failed")
	}
	if got, ok := a.Get("lease"); !ok || string(got) != "v" {
		t.Fatalf("value after EXPIRE = %q ok=%v", got, ok)
	}
	// Re-EXPIRE extends the deadline.
	if !a.Expire("lease", 100*time.Second) {
		t.Fatal("re-EXPIRE failed")
	}
	b.AdvanceClock(11 * time.Second)
	if _, ok := b.Get("lease"); !ok {
		t.Fatal("extended lease expired early")
	}
	a.AdvanceClock(90 * time.Second)
	for _, v := range []*View{a, b} {
		if _, ok := v.Get("lease"); ok {
			t.Fatal("lease survived its deadline")
		}
	}
	if b.Expire("lease", time.Second) {
		t.Fatal("EXPIRE revived an expired key")
	}
	// Delete-now form, cross-node visible, and DEL-consistent counting.
	if err := b.Set("tmp", []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if !a.Expire("tmp", -time.Second) {
		t.Fatal("negative-ttl EXPIRE on live key failed")
	}
	if n := b.Exists("tmp"); n != 0 {
		t.Fatalf("Exists after delete-now EXPIRE = %d", n)
	}
	if a.Expire("tmp", time.Second) {
		t.Fatal("EXPIRE on a deleted key reported success")
	}
}
