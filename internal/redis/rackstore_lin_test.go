package redis

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"flacos/internal/histcheck"
)

// Linearizability tests for the rack-shared store: concurrent multi-node
// clients record SET/GET/DEL/INCR histories with histcheck's atomic-clock
// Recorder, and the Wing&Gong checker decides whether a linearization
// exists — replacing the hand-rolled committed-floor checks these tests
// started with. Payload integrity (torn reads) is still asserted inline:
// the KV model sees a compact seq, the wire carries a checksummed body.
// Run under -race (CI does); the views are per-goroutine, the STORE is
// the shared object under test.

// TestRackStoreLinearizableSingleWriter drives one writer per key (on a
// round-robin node) against readers on every node, then checks the
// recorded history linearizes under the KV model: no stale read, no
// backward step, no vanished key can survive the checker.
func TestRackStoreLinearizableSingleWriter(t *testing.T) {
	const (
		nodes   = 3
		keys    = 6
		writes  = 300
		readers = 6
	)
	f, s := newTestRackStore(t, nodes, RackStoreConfig{MaxViews: 32})
	rec := histcheck.NewRecorder()

	val := func(k int, seq uint64) []byte {
		b := make([]byte, 48)
		binary.LittleEndian.PutUint64(b, seq)
		for i := 8; i < len(b); i++ {
			b[i] = byte(seq*7 + uint64(k)*3 + uint64(i))
		}
		return b
	}
	checkVal := func(k int, b []byte) (uint64, bool) {
		if len(b) != 48 {
			return 0, false
		}
		seq := binary.LittleEndian.Uint64(b)
		for i := 8; i < len(b); i++ {
			if b[i] != byte(seq*7+uint64(k)*3+uint64(i)) {
				return seq, false
			}
		}
		return seq, true
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			v := s.Attach(f.Node(k % nodes))
			key := fmt.Sprintf("lin%d", k)
			for seq := uint64(1); seq <= writes; seq++ {
				p := rec.Begin(k, histcheck.KVInput{Op: histcheck.KVSet, Key: key, Val: seq})
				err := v.Set(key, val(k, seq), 0)
				p.End(histcheck.KVOutput{})
				if err != nil {
					fail("set %s seq %d: %v", key, seq, err)
					return
				}
			}
		}(k)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			v := s.Attach(f.Node(r % nodes))
			for i := 0; i < writes; i++ {
				k := (r + i) % keys
				key := fmt.Sprintf("lin%d", k)
				p := rec.Begin(keys+r, histcheck.KVInput{Op: histcheck.KVGet, Key: key})
				b, ok := v.Get(key)
				if !ok {
					p.End(histcheck.KVOutput{})
					continue
				}
				seq, intact := checkVal(k, b)
				p.End(histcheck.KVOutput{Val: seq, Found: true})
				if !intact {
					fail("reader %d: %s torn at seq %d", r, key, seq)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if res := histcheck.Check(histcheck.KVModel(), rec.Operations()); !res.Ok {
		t.Fatal(res.Info)
	}
}

// TestRackStoreLinearizableIncr hammers one counter from every node.
// Linearizability of INCR under the KV model forces the returned values
// to be exactly 1..N*M, each once, in an order consistent with real
// time — the old duplicate/gap bookkeeping falls out of the checker.
func TestRackStoreLinearizableIncr(t *testing.T) {
	const (
		nodes   = 3
		workers = 6
		each    = 200
	)
	f, s := newTestRackStore(t, nodes, RackStoreConfig{MaxViews: 16})
	rec := histcheck.NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := s.Attach(f.Node(w % nodes))
			for i := 0; i < each; i++ {
				p := rec.Begin(w, histcheck.KVInput{Op: histcheck.KVIncr, Key: "shared-ctr"})
				got, err := v.Incr("shared-ctr")
				p.End(histcheck.KVOutput{Val: uint64(got)})
				if err != nil {
					t.Errorf("worker %d incr: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if res := histcheck.Check(histcheck.KVModel(), rec.Operations()); !res.Ok {
		t.Fatal(res.Info)
	}
	v := s.Attach(f.Node(0))
	if got, err := v.Incr("shared-ctr"); err != nil || got != workers*each+1 {
		t.Fatalf("final count %d (err %v), want %d", got, err, workers*each+1)
	}
}

// TestRackStoreLinearizableSetDel alternates SET and DEL on a shared key
// from one node while readers on every node record their hits and
// misses; the checker decides whether each miss had a legal DEL to sit
// behind and each hit a fresh-enough SET — no floor word needed.
func TestRackStoreLinearizableSetDel(t *testing.T) {
	const (
		nodes  = 3
		rounds = 200
	)
	f, s := newTestRackStore(t, nodes, RackStoreConfig{MaxViews: 16})
	rec := histcheck.NewRecorder()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		v := s.Attach(f.Node(0))
		for seq := uint64(1); seq <= rounds; seq++ {
			b := make([]byte, 16)
			binary.LittleEndian.PutUint64(b, seq)
			binary.LittleEndian.PutUint64(b[8:], ^seq)
			p := rec.Begin(0, histcheck.KVInput{Op: histcheck.KVSet, Key: "flap", Val: seq})
			err := v.Set("flap", b, 0)
			p.End(histcheck.KVOutput{})
			if err != nil {
				fail("set: %v", err)
				return
			}
			p = rec.Begin(0, histcheck.KVInput{Op: histcheck.KVDel, Key: "flap"})
			n := v.Del("flap")
			p.End(histcheck.KVOutput{Found: n == 1})
			if n != 1 {
				fail("del of just-set key returned %d", n)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			v := s.Attach(f.Node(r % nodes))
			for i := 0; i < rounds; i++ {
				p := rec.Begin(1+r, histcheck.KVInput{Op: histcheck.KVGet, Key: "flap"})
				b, ok := v.Get("flap")
				if !ok {
					p.End(histcheck.KVOutput{})
					continue
				}
				if len(b) != 16 {
					fail("reader %d: torn len %d", r, len(b))
					return
				}
				seq := binary.LittleEndian.Uint64(b)
				p.End(histcheck.KVOutput{Val: seq, Found: true})
				if binary.LittleEndian.Uint64(b[8:]) != ^seq {
					fail("reader %d: torn payload at seq %d", r, seq)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if res := histcheck.Check(histcheck.KVModel(), rec.Operations()); !res.Ok {
		t.Fatal(res.Info)
	}
	// Quiescent: the last round ended with DEL, so the key must be gone
	// and the live count zero.
	v := s.Attach(f.Node(1))
	if _, ok := v.Get("flap"); ok {
		t.Fatal("key visible after final DEL")
	}
	if n := v.Len(); n != 0 {
		t.Fatalf("Len = %d after final DEL, want 0", n)
	}
}
