package redis

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// Linearizability tests for the rack-shared store: concurrent multi-node
// clients record SET/GET/DEL/INCR histories and check them with the same
// committed-floor style the torture workloads use. Run under -race (CI
// does); the views themselves are per-goroutine, the STORE is the shared
// object under test.

// TestRackStoreLinearizableSingleWriter drives one writer per key (on a
// round-robin node) against readers on every node. Every read must
// observe a sequence >= the floor committed before the read began and
// a payload fully consistent with that sequence.
func TestRackStoreLinearizableSingleWriter(t *testing.T) {
	const (
		nodes   = 3
		keys    = 6
		writes  = 300
		readers = 6
	)
	f, s := newTestRackStore(t, nodes, RackStoreConfig{MaxViews: 32})

	var floors [keys]atomic.Uint64
	val := func(k int, seq uint64) []byte {
		b := make([]byte, 48)
		binary.LittleEndian.PutUint64(b, seq)
		for i := 8; i < len(b); i++ {
			b[i] = byte(seq*7 + uint64(k)*3 + uint64(i))
		}
		return b
	}
	checkVal := func(k int, b []byte) (uint64, bool) {
		if len(b) != 48 {
			return 0, false
		}
		seq := binary.LittleEndian.Uint64(b)
		for i := 8; i < len(b); i++ {
			if b[i] != byte(seq*7+uint64(k)*3+uint64(i)) {
				return seq, false
			}
		}
		return seq, true
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			v := s.Attach(f.Node(k % nodes))
			key := fmt.Sprintf("lin%d", k)
			for seq := uint64(1); seq <= writes; seq++ {
				if err := v.Set(key, val(k, seq), 0); err != nil {
					fail("set %s seq %d: %v", key, seq, err)
					return
				}
				floors[k].Store(seq)
			}
		}(k)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			v := s.Attach(f.Node(r % nodes))
			last := [keys]uint64{}
			for i := 0; i < writes; i++ {
				k := (r + i) % keys
				key := fmt.Sprintf("lin%d", k)
				floor := floors[k].Load()
				b, ok := v.Get(key)
				if !ok {
					if floor > 0 {
						fail("reader %d: %s vanished (floor %d)", r, key, floor)
						return
					}
					continue
				}
				seq, intact := checkVal(k, b)
				switch {
				case !intact:
					fail("reader %d: %s torn at seq %d", r, key, seq)
					return
				case seq < floor:
					fail("reader %d: %s stale: read %d after committed %d", r, key, seq, floor)
					return
				case seq < last[k]:
					fail("reader %d: %s went backwards: %d after %d", r, key, seq, last[k])
					return
				}
				last[k] = seq
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRackStoreLinearizableIncr hammers one counter from every node.
// INCR is atomic, so the returned values must be exactly 1..N*M with no
// duplicate and no gap, in any order.
func TestRackStoreLinearizableIncr(t *testing.T) {
	const (
		nodes   = 3
		workers = 6
		each    = 200
	)
	f, s := newTestRackStore(t, nodes, RackStoreConfig{MaxViews: 16})
	results := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := s.Attach(f.Node(w % nodes))
			for i := 0; i < each; i++ {
				got, err := v.Incr("shared-ctr")
				if err != nil {
					t.Errorf("worker %d incr: %v", w, err)
					return
				}
				results[w] = append(results[w], got)
			}
		}(w)
	}
	wg.Wait()
	seen := map[int64]bool{}
	for w, rs := range results {
		prev := int64(0)
		for _, got := range rs {
			if got <= prev {
				t.Fatalf("worker %d: non-increasing INCR results %d then %d", w, prev, got)
			}
			if seen[got] {
				t.Fatalf("duplicate INCR result %d", got)
			}
			seen[got] = true
			prev = got
		}
	}
	if len(seen) != workers*each {
		t.Fatalf("got %d distinct results, want %d", len(seen), workers*each)
	}
	v := s.Attach(f.Node(0))
	if got, err := v.Incr("shared-ctr"); err != nil || got != workers*each+1 {
		t.Fatalf("final count %d (err %v), want %d", got, err, workers*each+1)
	}
}

// TestRackStoreLinearizableSetDel alternates SET and DEL on shared keys
// from different nodes while readers check that hits are never stale:
// the writer publishes a floor (seq, and whether a miss is currently
// legal) BEFORE each destructive op, so any hit must carry seq >= floor
// and a miss is a violation only while mayMiss is off.
func TestRackStoreLinearizableSetDel(t *testing.T) {
	const (
		nodes  = 3
		rounds = 200
	)
	f, s := newTestRackStore(t, nodes, RackStoreConfig{MaxViews: 16})

	// floorWord packs (seq<<1 | mayMiss) so readers load it atomically.
	var floorWord atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		v := s.Attach(f.Node(0))
		for seq := uint64(1); seq <= rounds; seq++ {
			b := make([]byte, 16)
			binary.LittleEndian.PutUint64(b, seq)
			binary.LittleEndian.PutUint64(b[8:], ^seq)
			if err := v.Set("flap", b, 0); err != nil {
				fail("set: %v", err)
				return
			}
			floorWord.Store(seq << 1) // committed: visible, at least seq
			// A DEL is coming: misses become legal before it can land.
			floorWord.Store(seq<<1 | 1)
			if n := v.Del("flap"); n != 1 {
				fail("del of just-set key returned %d", n)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			v := s.Attach(f.Node(r % nodes))
			for i := 0; i < rounds; i++ {
				w0 := floorWord.Load()
				b, ok := v.Get("flap")
				if !ok {
					if w0 != 0 && w0&1 == 0 {
						fail("reader %d: miss while floor said visible (seq %d)", r, w0>>1)
						return
					}
					continue
				}
				if len(b) != 16 {
					fail("reader %d: torn len %d", r, len(b))
					return
				}
				seq := binary.LittleEndian.Uint64(b)
				if binary.LittleEndian.Uint64(b[8:]) != ^seq {
					fail("reader %d: torn payload at seq %d", r, seq)
					return
				}
				if seq < w0>>1 {
					fail("reader %d: stale hit %d, floor %d", r, seq, w0>>1)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Quiescent: the last round ended with DEL, so the key must be gone
	// and the live count zero.
	v := s.Attach(f.Node(1))
	if _, ok := v.Get("flap"); ok {
		t.Fatal("key visible after final DEL")
	}
	if n := v.Len(); n != 0 {
		t.Fatalf("Len = %d after final DEL, want 0", n)
	}
}
