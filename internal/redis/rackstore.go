package redis

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"sync"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/alloc"
	"flacos/internal/flacdk/ds"
	"flacos/internal/flacdk/quiescence"
	"flacos/internal/trace"
)

// RackStore is the rack-shared Redis keyspace: keys and values live in the
// offset-addressed global arena, so EVERY node's server executes commands
// against the same dataset — the paper's headline workload (Fig. 4) served
// the way §3 intends, through coordinated OS sharing rather than a
// per-node Go heap.
//
// Layout and coherence protocol:
//
//   - The index is a flacdk/ds.HashMap mapping a salted 64-bit key hash to
//     the global address of an immutable entry block.
//   - Entry blocks (header | key bytes | value bytes) come from
//     flacdk/alloc. A writer fills the block through its cache, WRITES THE
//     LINES BACK explicitly, and only then publishes the address with a
//     fabric atomic — so by the time any node can observe the pointer, the
//     bytes are in home memory. Readers invalidate the block's lines
//     before reading. No hardware coherence is assumed anywhere.
//   - Entries are never modified in place. SET/DEL/INCR publish a fresh
//     block and retire the old one through flacdk/quiescence, whose grace
//     period guarantees no reader still holds the old address when its
//     memory is reused (§3.2's multi-version + epoch reclamation).
//   - DEL publishes a "deleted" entry (a marker block still carrying the
//     key) instead of removing the index slot. A slot is therefore bound
//     to one key forever, which keeps the salted-probe protocol
//     linearizable: probes stop at the first slot bound to the key, and
//     that binding can never change underneath a concurrent operation.
//   - TTL deadlines are stored inline as absolute values of the rack's
//     SHARED virtual clock (one word in global memory), so "expired" is a
//     rack-wide deterministic fact: a key expired on node A is expired on
//     node B by construction, not by clock luck.
//
// IMPORTANT: nothing in an entry block may be a Go pointer — blocks live
// in simulated global memory addressed by fabric.GPtr offsets, and another
// node (or a restarted one) has no way to interpret a host pointer. Keys
// and values are stored as raw bytes; the index stores offsets.
type RackStore struct {
	fab   *fabric.Fabric
	index *ds.HashMap
	arena *alloc.Arena
	dom   *quiescence.Domain

	clockG fabric.GPtr // shared virtual clock, ns (one word, fabric atomics only)
	liveG  fabric.GPtr // live-key count (Redis DBSIZE semantics)
	fenceG fabric.GPtr // per-node generation fence words (fabric atomics only)

	mu       sync.Mutex
	nextView int
	maxViews int
	byNode   map[int][]*View // unfenced views per node (see fence.go)
}

// RackStoreConfig sizes the shared store. Zero values get defaults sized
// for tests and CI-scale experiments.
type RackStoreConfig struct {
	// Slots is the index capacity. A slot is bound to a key forever (DEL
	// leaves a marker), so size for the number of DISTINCT keys ever
	// stored, not the live count. Default 1<<15.
	Slots uint64
	// MaxViews bounds concurrently attached views (quiescence participant
	// slots). Views are not recycled — a crashed node's replacement view
	// consumes a fresh slot — so leave headroom for reattach churn.
	// Default 128.
	MaxViews int
	// Arena optionally shares an existing allocator arena (core passes the
	// kernel object arena). Nil allocates a private one of ArenaBytes.
	Arena *alloc.Arena
	// ArenaBytes sizes the private arena when Arena is nil. Default 32 MiB.
	ArenaBytes uint64
}

func (c *RackStoreConfig) fillDefaults() {
	if c.Slots == 0 {
		c.Slots = 1 << 15
	}
	if c.MaxViews == 0 {
		c.MaxViews = 128
	}
	if c.ArenaBytes == 0 {
		c.ArenaBytes = 32 << 20
	}
}

// Entry block layout (all little-endian, immutable once published):
//
//	[0:4)   key length
//	[4:8)   value length, or delMarker for a deleted entry
//	[8:16)  expiry deadline in shared-virtual-clock ns (0 = no TTL)
//	[16:16+klen)        key bytes
//	[16+klen:16+klen+vlen) value bytes
const (
	entryHdrSize = 16
	delMarker    = ^uint32(0)
)

// MaxEntryBytes bounds key length + value length per entry (the allocator's
// largest size class minus the header).
const MaxEntryBytes = alloc.MaxAlloc - entryHdrSize

// maxProbeSalts bounds the salted-rehash chain walked on a full 64-bit
// hash collision between distinct keys. Chains longer than one slot need
// a 64-bit collision, two need a pair of them; running out is treated
// like index exhaustion (a sizing error), not limped through.
const maxProbeSalts = 16

// NewRackStore lays the store out in f's global memory.
func NewRackStore(f *fabric.Fabric, cfg RackStoreConfig) *RackStore {
	cfg.fillDefaults()
	ar := cfg.Arena
	if ar == nil {
		ar = alloc.NewArena(f, cfg.ArenaBytes)
	}
	return &RackStore{
		fab:      f,
		index:    ds.NewHashMap(f, cfg.Slots),
		arena:    ar,
		dom:      quiescence.NewDomain(f, cfg.MaxViews),
		clockG:   f.Reserve(fabric.LineSize, fabric.LineSize),
		liveG:    f.Reserve(fabric.LineSize, fabric.LineSize),
		fenceG:   f.Reserve(uint64(f.NumNodes())*8, fabric.LineSize),
		maxViews: cfg.MaxViews,
		byNode:   make(map[int][]*View),
	}
}

// Now reads the shared virtual clock from node n.
func (s *RackStore) Now(n *fabric.Node) uint64 { return n.AtomicLoad64(s.clockG) }

// AdvanceClock moves the shared virtual clock forward by d (from node n)
// and returns the new time. The clock is one global-memory word advanced
// with fabric atomics, so every node observes the same timeline — TTL
// expiry is a rack-wide deterministic event.
func (s *RackStore) AdvanceClock(n *fabric.Node, d time.Duration) uint64 {
	if d <= 0 {
		return s.Now(n)
	}
	return n.Add64(s.clockG, uint64(d.Nanoseconds()))
}

// Attach creates node n's handle on the shared store. A View is bound to
// ONE goroutine at a time (it owns a quiescence participant and a per-node
// allocator, neither of which is concurrency-safe); attach one per server
// session or client worker. Views of a crashed node must be abandoned:
// FenceView the old id from any live node and Attach a fresh one.
func (s *RackStore) Attach(n *fabric.Node) *View {
	// A fresh attachment adopts the node's CURRENT fence level as its
	// generation: new views are definitionally not zombies, so a fence
	// raised against the node's previous life does not reject them.
	gen := n.AtomicLoad64(s.fenceSlotG(n.ID()))
	s.mu.Lock()
	id := s.nextView
	s.nextView++
	s.mu.Unlock()
	if id >= s.maxViews {
		panic(fmt.Sprintf("redis: RackStore view capacity exhausted (%d); size RackStoreConfig.MaxViews for attach churn", s.maxViews))
	}
	v := &View{
		s:   s,
		n:   n,
		na:  s.arena.NodeAllocator(n, 0),
		p:   s.dom.Participant(n, id),
		id:  id,
		gen: gen,
	}
	s.mu.Lock()
	s.byNode[n.ID()] = append(s.byNode[n.ID()], v)
	s.mu.Unlock()
	return v
}

// FenceView clears a dead view's quiescence reservation on its behalf,
// acting from live node n. A view that dies inside a read section would
// otherwise stall epoch advance — and with it value-block reclamation —
// rack-wide. The fenced view must never be used again.
func (s *RackStore) FenceView(n *fabric.Node, id int) { s.dom.Fence(n, id) }

// Len returns the live key count as seen from node n. Like real Redis,
// keys whose TTL has passed count until they are lazily purged by a later
// write to the same key.
func (s *RackStore) Len(n *fabric.Node) int { return int(n.AtomicLoad64(s.liveG)) }

// View is one worker's attachment to the RackStore. It implements Backend,
// so a redis.Server can execute commands directly against the shared
// dataset from any node. Not safe for concurrent use — one per goroutine.
type View struct {
	s   *RackStore
	n   *fabric.Node
	na  *alloc.NodeAllocator
	p   *quiescence.Participant
	id  int
	gen uint64 // membership generation this view writes under (fence.go)
	tw  *trace.Writer

	ops uint64
}

// ID returns the view's participant slot (for FenceView after a crash).
func (v *View) ID() int { return v.id }

// Node returns the fabric node this view runs on.
func (v *View) Node() *fabric.Node { return v.n }

// Store returns the shared store this view is attached to.
func (v *View) Store() *RackStore { return v.s }

// SetTrace attaches a flight-recorder writer; SET and GET then emit
// begin/end spans (subsystem "redis", arg0 = key hash, arg1 = bytes).
func (v *View) SetTrace(w *trace.Writer) { v.tw = w }

// Now reads the shared virtual clock.
func (v *View) Now() uint64 { return v.s.Now(v.n) }

// AdvanceClock moves the shared virtual clock forward by d.
func (v *View) AdvanceClock(d time.Duration) uint64 { return v.s.AdvanceClock(v.n, d) }

// tick amortizes epoch maintenance over the op stream: every 64th
// operation tries to advance the global epoch and collects any of this
// view's retired blocks whose grace period has elapsed.
func (v *View) tick() {
	v.ops++
	if v.ops&63 == 0 {
		v.p.TryAdvance()
		v.p.Collect()
	}
}

// Barrier forces full reclamation of everything this view has retired
// (tests and teardown; not a hot-path call).
func (v *View) Barrier() { v.p.Barrier() }

// AllocStats returns this view's allocator counters (tests assert that
// replaced entries actually return to the free lists).
func (v *View) AllocStats() (allocs, frees uint64) { return v.na.Stats() }

// keyHash is FNV-1a finalized with splitmix64 — the same mixing the ds
// layer applies to slot indices, applied here to whole key strings.
func keyHash(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return mix64(h)
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// slotKey derives the index key for probe step salt, avoiding the ds
// layer's two reserved values.
func slotKey(h uint64, salt int) uint64 {
	k := h
	if salt > 0 {
		k = mix64(h + uint64(salt)*0x9e3779b97f4a7c15)
	}
	if k == 0 || k == ^uint64(0) {
		k = 0x2545f4914f6cdd1d
	}
	return k
}

type entryHdr struct {
	klen, vlen uint32
	exp        uint64
}

func (h entryHdr) deleted() bool { return h.vlen == delMarker }

// liveLen returns the value length for a live entry (0 for deleted).
func (h entryHdr) liveLen() uint32 {
	if h.deleted() {
		return 0
	}
	return h.vlen
}

// readHeader fetches an entry's header with fresh lines. Entry blocks are
// immutable and fully written back before publication, so invalidating
// then reading always observes the published bytes; the invalidate only
// guards against stale lines from a previous residency of the block.
func (v *View) readHeader(e fabric.GPtr) entryHdr {
	v.n.InvalidateRange(e, entryHdrSize)
	var b [entryHdrSize]byte
	v.n.Read(e, b[:])
	return entryHdr{
		klen: binary.LittleEndian.Uint32(b[0:]),
		vlen: binary.LittleEndian.Uint32(b[4:]),
		exp:  binary.LittleEndian.Uint64(b[8:]),
	}
}

// readBody fetches the key and value bytes following an entry's header.
func (v *View) readBody(e fabric.GPtr, hdr entryHdr) (key, value []byte) {
	total := uint64(hdr.klen) + uint64(hdr.liveLen())
	if total == 0 {
		return nil, nil
	}
	v.n.InvalidateRange(e.Add(entryHdrSize), total)
	buf := make([]byte, total)
	v.n.Read(e.Add(entryHdrSize), buf)
	return buf[:hdr.klen], buf[hdr.klen:]
}

// keyMatches reports whether entry e is bound to key.
func (v *View) keyMatches(e fabric.GPtr, hdr entryHdr, key string) bool {
	if int(hdr.klen) != len(key) {
		return false
	}
	if hdr.klen == 0 {
		return true
	}
	v.n.InvalidateRange(e.Add(entryHdrSize), uint64(hdr.klen))
	kb := make([]byte, hdr.klen)
	v.n.Read(e.Add(entryHdrSize), kb)
	return string(kb) == key
}

// newEntry writes an immutable entry block and pushes its lines to home
// memory. The block is unpublished: the caller owns it until a successful
// publish (and must na.Free it directly on a lost race — no grace period
// is needed for a block no reader ever saw).
func (v *View) newEntry(key string, value []byte, exp uint64, deleted bool) fabric.GPtr {
	total := entryHdrSize + len(key) + len(value)
	blk := v.na.AllocUninit(uint64(total))
	buf := make([]byte, total)
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(key)))
	if deleted {
		binary.LittleEndian.PutUint32(buf[4:], delMarker)
	} else {
		binary.LittleEndian.PutUint32(buf[4:], uint32(len(value)))
	}
	binary.LittleEndian.PutUint64(buf[8:], exp)
	copy(buf[entryHdrSize:], key)
	copy(buf[entryHdrSize+len(key):], value)
	v.n.Write(blk, buf)
	v.n.WriteBackRange(blk, uint64(total))
	return blk
}

// retire schedules an unpublished-from-now block for reclamation once no
// concurrent reader can still hold its address.
func (v *View) retire(e fabric.GPtr) {
	na := v.na
	v.p.Retire(func() { na.Free(e) })
}

// expired reports whether hdr's TTL deadline has passed on the shared
// clock. now is loaded lazily (most entries carry no TTL).
func (v *View) expired(hdr entryHdr) bool {
	return hdr.exp != 0 && v.Now() >= hdr.exp
}

func (v *View) addLive(delta int64) { v.n.Add64(v.s.liveG, uint64(delta)) }

// probeResult is one resolved slot for a key.
type probeResult struct {
	sk    uint64      // index key of the slot bound to key
	entry fabric.GPtr // current entry (Nil if the slot is absent)
	hdr   entryHdr
}

// probe walks the salted-hash chain until it finds the slot bound to key
// or the first absent slot (entry Nil: the key has never been stored; sk
// is where an insert would bind it). Must run inside a read section.
func (v *View) probe(key string) probeResult {
	h := keyHash(key)
	for salt := 0; salt < maxProbeSalts; salt++ {
		sk := slotKey(h, salt)
		ev, ok := v.s.index.Get(v.n, sk)
		if !ok {
			return probeResult{sk: sk, entry: fabric.Nil}
		}
		e := fabric.GPtr(ev)
		hdr := v.readHeader(e)
		if v.keyMatches(e, hdr, key) {
			return probeResult{sk: sk, entry: e, hdr: hdr}
		}
	}
	panic(fmt.Sprintf("redis: RackStore salted-probe chain exhausted for key %q (%d 64-bit hash collisions?!); size Slots up", key, maxProbeSalts))
}

// checkSizes validates an entry's payload against the allocator's largest
// size class.
func checkSizes(key string, value []byte) error {
	if len(key)+len(value) > MaxEntryBytes {
		return fmt.Errorf("redis: key+value %d bytes exceeds the rack store's %d-byte entry limit", len(key)+len(value), MaxEntryBytes)
	}
	return nil
}

// Set stores key -> value with an optional TTL (0 means no expiry),
// visible to every node's view as soon as it returns.
func (v *View) Set(key string, value []byte, ttl time.Duration) error {
	if err := checkSizes(key, value); err != nil {
		return err
	}
	if v.fenced() {
		return ErrFenced
	}
	if v.tw != nil {
		h := keyHash(key)
		v.tw.Begin(trace.SubRedis, trace.KSet, h, uint64(len(value)))
		defer v.tw.End(trace.SubRedis, trace.KSet, h, uint64(len(value)))
	}
	exp := uint64(0)
	if ttl > 0 {
		exp = v.Now() + uint64(ttl.Nanoseconds())
	}
	blk := v.newEntry(key, value, exp, false)
	prev, prevDeleted := v.publish(key, blk)
	if !prev.IsNil() {
		v.retire(prev)
	}
	if prev.IsNil() || prevDeleted {
		v.addLive(1)
	}
	v.tick()
	return nil
}

// publish installs blk as key's entry, returning the displaced entry (Nil
// on a fresh insert) and whether it was a deleted marker. Every racing
// publish receives a distinct previous entry (ds.HashMap.Exchange's
// contract), so each old block is retired exactly once.
func (v *View) publish(key string, blk fabric.GPtr) (prev fabric.GPtr, prevDeleted bool) {
	v.p.Enter()
	defer v.p.Exit()
	for {
		pr := v.probe(key)
		if pr.entry.IsNil() {
			if _, inserted := v.s.index.PutIfAbsent(v.n, pr.sk, uint64(blk)); inserted {
				return fabric.Nil, false
			}
			continue // lost the bind race; re-probe (the winner may be another key)
		}
		old, existed := v.s.index.Exchange(v.n, pr.sk, uint64(blk))
		if !existed {
			continue
		}
		oe := fabric.GPtr(old)
		// The displaced entry may differ from the probed one (a concurrent
		// writer published in between), but slot binding is permanent, so
		// it is OUR key's entry and we own retiring it.
		return oe, v.readHeader(oe).deleted()
	}
}

// Get returns the value for key. A key whose TTL deadline has passed on
// the shared clock is a miss on every node, deterministically.
func (v *View) Get(key string) ([]byte, bool) {
	var (
		val []byte
		ok  bool
	)
	if v.tw != nil {
		h := keyHash(key)
		v.tw.Begin(trace.SubRedis, trace.KGet, h, 0)
		defer func() { v.tw.End(trace.SubRedis, trace.KGet, h, uint64(len(val))) }()
	}
	v.p.Enter()
	pr := v.probe(key)
	if !pr.entry.IsNil() && !pr.hdr.deleted() && !v.expired(pr.hdr) {
		_, val = v.readBody(pr.entry, pr.hdr)
		ok = true
	}
	v.p.Exit()
	v.tick()
	return val, ok
}

// MGet returns the values for keys in order (nil = miss), resolving the
// whole batch inside ONE quiescence read section and one epoch tick — the
// per-op overhead a pipelined client pays N times through Get is paid
// once, which is what makes MGET cheaper than N GETs on the rack store.
func (v *View) MGet(keys ...string) [][]byte {
	vals := make([][]byte, len(keys))
	v.p.Enter()
	for i, key := range keys {
		pr := v.probe(key)
		if !pr.entry.IsNil() && !pr.hdr.deleted() && !v.expired(pr.hdr) {
			_, vals[i] = v.readBody(pr.entry, pr.hdr)
		}
	}
	v.p.Exit()
	v.tick()
	return vals
}

// Exists reports how many of the keys exist (live and unexpired).
func (v *View) Exists(keys ...string) int {
	n := 0
	v.p.Enter()
	for _, key := range keys {
		pr := v.probe(key)
		if !pr.entry.IsNil() && !pr.hdr.deleted() && !v.expired(pr.hdr) {
			n++
		}
	}
	v.p.Exit()
	v.tick()
	return n
}

// Del removes keys, returning how many existed (live and unexpired).
func (v *View) Del(keys ...string) int {
	ndel := 0
	for _, key := range keys {
		if v.del1(key) {
			ndel++
		}
	}
	return ndel
}

func (v *View) del1(key string) bool {
	if v.fenced() {
		// Del's counting signature has no error channel; a fenced delete
		// simply does not happen (and reports the key untouched).
		return false
	}
	v.p.Enter()
	pr := v.probe(key)
	if pr.entry.IsNil() || pr.hdr.deleted() {
		v.p.Exit()
		v.tick()
		return false
	}
	// The key is (or recently was) live: publish a deleted marker. The
	// marker keeps the slot's key binding intact — mandatory for probe
	// linearizability — at the cost of one small block per deleted key.
	dblk := v.newEntry(key, nil, 0, true)
	old, existed := v.s.index.Exchange(v.n, pr.sk, uint64(dblk))
	v.p.Exit()
	if !existed {
		// Unreachable once a slot is bound (bindings are permanent), but
		// reclaim the marker rather than leak it.
		v.na.Free(dblk)
		v.tick()
		return false
	}
	oe := fabric.GPtr(old)
	ohdr := v.readHeader(oe)
	wasLive := !ohdr.deleted()
	wasUnexpired := wasLive && !v.expired(ohdr)
	v.retire(oe)
	if wasLive {
		v.addLive(-1)
	}
	v.tick()
	return wasUnexpired
}

// Incr atomically increments the integer stored at key, returning the new
// value; missing (or expired) keys start at 0. The TTL of a live key is
// preserved, like real Redis.
func (v *View) Incr(key string) (int64, error) { return v.IncrBy(key, 1) }

// IncrBy atomically adds delta to the integer stored at key, returning
// the new value. One IncrBy publishes ONE fresh entry block however large
// delta is — it is the combining primitive: an owner that has gathered N
// delegated increments applies them with a single probe/alloc/publish
// round instead of N contended ones.
func (v *View) IncrBy(key string, delta int64) (int64, error) {
	for {
		if v.fenced() {
			return 0, ErrFenced
		}
		v.p.Enter()
		pr := v.probe(key)
		cur := int64(0)
		exp := uint64(0)
		if !pr.entry.IsNil() && !pr.hdr.deleted() && !v.expired(pr.hdr) {
			_, val := v.readBody(pr.entry, pr.hdr)
			parsed, err := strconv.ParseInt(string(val), 10, 64)
			if err != nil {
				v.p.Exit()
				v.tick()
				return 0, err
			}
			cur = parsed
			exp = pr.hdr.exp
		}
		next := cur + delta
		nblk := v.newEntry(key, []byte(strconv.FormatInt(next, 10)), exp, false)
		if pr.entry.IsNil() {
			if _, inserted := v.s.index.PutIfAbsent(v.n, pr.sk, uint64(nblk)); inserted {
				v.p.Exit()
				v.addLive(1)
				v.tick()
				return next, nil
			}
		} else if v.s.index.CompareAndSwap(v.n, pr.sk, uint64(pr.entry), uint64(nblk)) {
			v.p.Exit()
			v.retire(pr.entry)
			if pr.hdr.deleted() {
				v.addLive(1)
			}
			v.tick()
			return next, nil
		}
		// Lost the race to a concurrent writer: our block was never
		// published, free it directly and retry against the fresh state.
		v.p.Exit()
		v.na.Free(nblk)
	}
}

// Expire sets a fresh TTL deadline on a live key, reporting whether the
// key existed; a non-positive ttl deletes the key immediately, matching
// real Redis. Like IncrBy it republishes ONE fresh entry block — same
// value, new deadline — so a racing writer either sees the old deadline
// or the new one, never a torn mix, and the CAS loses cleanly to any
// concurrent Set.
func (v *View) Expire(key string, ttl time.Duration) bool {
	if ttl <= 0 {
		return v.del1(key)
	}
	for {
		if v.fenced() {
			return false
		}
		v.p.Enter()
		pr := v.probe(key)
		if pr.entry.IsNil() || pr.hdr.deleted() || v.expired(pr.hdr) {
			v.p.Exit()
			v.tick()
			return false
		}
		_, val := v.readBody(pr.entry, pr.hdr)
		nblk := v.newEntry(key, val, v.Now()+uint64(ttl.Nanoseconds()), false)
		if v.s.index.CompareAndSwap(v.n, pr.sk, uint64(pr.entry), uint64(nblk)) {
			v.p.Exit()
			v.retire(pr.entry)
			v.tick()
			return true
		}
		// Lost to a concurrent writer: the fresh state decides whether a
		// TTL still applies — retry against it.
		v.p.Exit()
		v.na.Free(nblk)
	}
}

// Len returns the live key count (Redis DBSIZE; expired-but-unpurged keys
// count, as in the original store).
func (v *View) Len() int { return v.s.Len(v.n) }
