package redis

import (
	"encoding/binary"
	"errors"
	"runtime"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/alloc"
	"flacos/internal/flacdk/delegation"
	"flacos/internal/trace"
)

// Hot-key combining (paper §3.2, delegation applied to the rack store).
//
// Under a Zipfian workload a handful of keys absorb most of the traffic.
// On the rack store every write to such a key is a publish race: N nodes
// allocate N fresh entry blocks and fight one index CAS, so N-1 of them
// free their block and retry — fabric atomics per success grow with the
// fan-in, and the key stops scaling exactly when it matters (GCS's
// prediction for naive shared-memory hot spots). Combining routes a hot
// key's operations to its OWNER node through a delegation domain instead:
// clients post GET/INCRBY requests into their slots, the owner gathers a
// sweep, and executes ONE store operation per key per sweep — one Get
// serves every gathered read, one IncrBy with the summed delta serves
// every gathered increment (each caller receives its own intermediate
// value, as if the increments ran back to back). The CAS storm collapses
// into a single uncontended publish.
//
// Combining preserves the store's coherence contract because the owner is
// just another View: the combined IncrBy goes through the same
// write-back-then-publish path as any other write, and every reply the
// owner hands out corresponds to a state the arena actually reached.
// SetBrokenSkipCombineFlush deliberately breaks exactly that step (replies
// computed in owner-private state, publish skipped) so the
// linearizability self-test can prove the checker notices.

// Delegation wire protocol: op codes posted by CombineClient.
const (
	combineOpGet    = 1 // payload: key bytes
	combineOpIncrBy = 2 // payload: 8-byte little-endian delta | key bytes
)

// Reply status codes.
const (
	combineMiss  = 0 // GET: key absent/expired; empty payload
	combineFound = 1 // GET: payload = value; INCRBY: payload = 8-byte result
	combineErr   = 2 // payload = error text
)

// CombineKeyMax bounds a combinable key (the INCRBY frame carries an
// 8-byte delta before the key, and both must fit a delegation payload).
const CombineKeyMax = delegation.PayloadMax - 8

// CombineValueMax bounds a value returned through the combining path.
const CombineValueMax = delegation.PayloadMax

// HotTracker decides online which keys are hot enough to route through a
// combiner. It is a thin keyed front end over flacdk/alloc's decaying
// HotnessTracker — the same EWMA machinery the allocator uses to pack hot
// objects, here keyed by the store's 64-bit key hash. Not concurrency
// safe: one per worker, like a View.
type HotTracker struct {
	h         *alloc.HotnessTracker
	threshold float64
}

// NewHotTracker creates a tracker: heat decays by decay per Decay() call,
// and a key counts as hot once its heat reaches threshold.
func NewHotTracker(decay, threshold float64) *HotTracker {
	if threshold <= 0 {
		panic("redis: HotTracker threshold must be positive")
	}
	return &HotTracker{h: alloc.NewHotnessTracker(decay), threshold: threshold}
}

// Touch records one access to key.
func (t *HotTracker) Touch(key string) { t.h.Touch(fabric.GPtr(keyHash(key))) }

// Hot reports whether key's decayed access frequency has crossed the
// combining threshold.
func (t *HotTracker) Hot(key string) bool {
	return t.h.Heat(fabric.GPtr(keyHash(key))) >= t.threshold
}

// Decay ages every key's heat; call it once per sampling interval so a
// key that cools off stops being combined.
func (t *HotTracker) Decay() { t.h.Decay() }

// Combiner is the owner side of hot-key combining: a delegation server
// whose sweep gathers every pending request, groups them by key, and
// executes one store operation per group through the owner's View.
type Combiner struct {
	view *View
	sv   *delegation.Server

	reqs   []delegation.Request
	order  []combineGroup
	broken bool
	shadow map[string]int64 // broken mode's never-published counters
}

type combineGroup struct {
	op   uint32
	key  string
	reqs []delegation.Request
}

// NewCombiner binds the owner's combining server: view is the owner
// node's store attachment, dom the delegation domain its clients post
// into. Like a View, a Combiner serves one goroutine.
func NewCombiner(view *View, dom *delegation.Domain) *Combiner {
	return &Combiner{view: view, sv: dom.Server(view.Node(), nil)}
}

// View returns the owner's store attachment.
func (cb *Combiner) View() *View { return cb.view }

// SetBrokenSkipCombineFlush toggles a DELIBERATE bug for the checker
// self-test: combined increments are applied to an owner-private shadow
// map and the arena publish is skipped, so replies report states no other
// node can ever observe. Never enable outside tests.
func (cb *Combiner) SetBrokenSkipCombineFlush(on bool) {
	cb.broken = on
	if on && cb.shadow == nil {
		cb.shadow = make(map[string]int64)
	}
}

// ServeSweep collects one sweep of pending requests and serves them with
// one store operation per (op, key) group, returning how many requests it
// served. Every request in a sweep was posted before any of them
// completes, so they are pairwise concurrent and ANY serve order is a
// valid linearization; the sweep picks the CANONICAL one — all increment
// groups first (first-seen order), then all read groups. Canonical order
// is what lets one caller put an INCRBY and a GET on the same key into
// the same sweep and still see monotone results: its GET observes the
// post-increment state, never a torn interleaving that depends on slot
// numbering.
func (cb *Combiner) ServeSweep() int {
	cb.reqs = cb.sv.CollectOnce(cb.reqs[:0])
	if len(cb.reqs) == 0 {
		return 0
	}
	cb.order = cb.order[:0]
	for _, rq := range cb.reqs {
		key, ok := combineReqKey(rq)
		if !ok {
			cb.sv.ReplyDeferred(rq.Slot, rq.Seq, combineErr, []byte("bad combine frame"))
			continue
		}
		cb.addToGroup(rq.Op, key, rq)
	}
	served := 0
	for _, wantOp := range [...]uint32{combineOpIncrBy, combineOpGet} {
		for i := range cb.order {
			g := &cb.order[i]
			if g.op != wantOp {
				continue
			}
			served += len(g.reqs)
			if g.op == combineOpIncrBy {
				cb.serveIncrGroup(g)
			} else {
				cb.serveGetGroup(g)
			}
		}
	}
	for i := range cb.order {
		g := &cb.order[i]
		if g.op == combineOpIncrBy || g.op == combineOpGet {
			continue
		}
		served += len(g.reqs)
		for _, rq := range g.reqs {
			cb.sv.ReplyDeferred(rq.Slot, rq.Seq, combineErr, []byte("unknown combine op"))
		}
	}
	// One write-back burst publishes the whole sweep's replies.
	cb.sv.FlushReplies()
	return served
}

func (cb *Combiner) addToGroup(op uint32, key string, rq delegation.Request) {
	for i := range cb.order {
		if cb.order[i].op == op && cb.order[i].key == key {
			cb.order[i].reqs = append(cb.order[i].reqs, rq)
			return
		}
	}
	cb.order = append(cb.order, combineGroup{op: op, key: key, reqs: []delegation.Request{rq}})
}

// combineReqKey extracts the key from a request frame.
func combineReqKey(rq delegation.Request) (string, bool) {
	switch rq.Op {
	case combineOpGet:
		return string(rq.Payload), true
	case combineOpIncrBy:
		if len(rq.Payload) < 8 {
			return "", false
		}
		return string(rq.Payload[8:]), true
	}
	return string(rq.Payload), true
}

// serveGetGroup answers a whole GET fan-in from one store read.
func (cb *Combiner) serveGetGroup(g *combineGroup) {
	cb.traceBegin(g)
	defer cb.traceEnd(g)
	val, ok := cb.view.Get(g.key)
	status := uint32(combineMiss)
	var payload []byte
	switch {
	case ok && len(val) > CombineValueMax:
		status, payload = combineErr, []byte("value exceeds combine payload")
	case ok:
		status, payload = combineFound, val
	}
	for _, rq := range g.reqs {
		cb.sv.ReplyDeferred(rq.Slot, rq.Seq, status, payload)
	}
}

// serveIncrGroup applies a whole increment batch with ONE IncrBy of the
// summed delta, then hands each caller its intermediate value (base plus
// its prefix sum) — exactly the results the increments would have
// produced run back to back in gathered order.
func (cb *Combiner) serveIncrGroup(g *combineGroup) {
	cb.traceBegin(g)
	defer cb.traceEnd(g)
	var sum int64
	for _, rq := range g.reqs {
		sum += int64(binary.LittleEndian.Uint64(rq.Payload[:8]))
	}
	var base int64
	if cb.broken {
		// The deliberate bug: compute from the shadow, skip the publish.
		base = cb.shadow[g.key]
		cb.shadow[g.key] = base + sum
	} else {
		final, err := cb.view.IncrBy(g.key, sum)
		if err != nil {
			for _, rq := range g.reqs {
				cb.sv.ReplyDeferred(rq.Slot, rq.Seq, combineErr, []byte(err.Error()))
			}
			return
		}
		base = final - sum
	}
	var out [8]byte
	run := base
	for _, rq := range g.reqs {
		run += int64(binary.LittleEndian.Uint64(rq.Payload[:8]))
		binary.LittleEndian.PutUint64(out[:], uint64(run))
		cb.sv.ReplyDeferred(rq.Slot, rq.Seq, combineFound, out[:])
	}
}

func (cb *Combiner) traceBegin(g *combineGroup) {
	if cb.view.tw != nil {
		cb.view.tw.Begin(trace.SubRedis, trace.KCombine, keyHash(g.key), uint64(len(g.reqs)))
	}
}

func (cb *Combiner) traceEnd(g *combineGroup) {
	if cb.view.tw != nil {
		cb.view.tw.End(trace.SubRedis, trace.KCombine, keyHash(g.key), uint64(len(g.reqs)))
	}
}

// CombineOwner maps a key to its owning node: the node that runs the
// key's combiner and whose view executes its combined operations. The
// assignment is pure key-hash, so every node routes a key identically
// with no coordination.
func CombineOwner(key string, nodes int) int {
	return int(keyHash(key) % uint64(nodes))
}

// CombineClient is one caller's handle on a combining domain: a single
// delegation slot plus frame encoding. Not safe for concurrent use.
type CombineClient struct {
	c    *delegation.Client
	resp []byte
}

// NewCombineClient binds node n to slot of dom.
func NewCombineClient(dom *delegation.Domain, n *fabric.Node, slot int) *CombineClient {
	return &CombineClient{c: dom.Client(n, slot), resp: make([]byte, delegation.PayloadMax)}
}

// PostGet publishes a GET for key without waiting (barriered harnesses
// pair it with TryGet after the owner's sweep).
func (cc *CombineClient) PostGet(key string) {
	if len(key) > delegation.PayloadMax {
		panic("redis: combine key exceeds payload")
	}
	cc.c.Post(combineOpGet, []byte(key))
}

// PostIncrBy publishes an INCRBY of delta on key without waiting.
func (cc *CombineClient) PostIncrBy(key string, delta int64) {
	if len(key) > CombineKeyMax {
		panic("redis: combine key exceeds payload")
	}
	buf := make([]byte, 8+len(key))
	binary.LittleEndian.PutUint64(buf, uint64(delta))
	copy(buf[8:], key)
	cc.c.Post(combineOpIncrBy, buf)
}

// TryGet polls for a posted GET's reply. The returned value is a private
// copy.
func (cc *CombineClient) TryGet() (val []byte, ok, done bool, err error) {
	n, st, d := cc.c.TryComplete(cc.resp)
	if !d {
		return nil, false, false, nil
	}
	switch st {
	case combineFound:
		v := make([]byte, n)
		copy(v, cc.resp[:n])
		return v, true, true, nil
	case combineMiss:
		return nil, false, true, nil
	}
	return nil, false, true, errors.New("redis: combine: " + string(cc.resp[:n]))
}

// TryIncr polls for a posted INCRBY's reply.
func (cc *CombineClient) TryIncr() (val int64, done bool, err error) {
	n, st, d := cc.c.TryComplete(cc.resp)
	if !d {
		return 0, false, nil
	}
	if st != combineFound || n != 8 {
		return 0, true, errors.New("redis: combine: " + string(cc.resp[:n]))
	}
	return int64(binary.LittleEndian.Uint64(cc.resp[:8])), true, nil
}

// CombineGroup is one caller's BATCHED handle on a combining domain: a
// contiguous range of delegation slots plus frame encoding. A cycle posts
// several hot ops, flushes them as one burst, and — after the owner's
// sweep — refreshes the response stripe once and completes every op from
// the snapshot, so the per-op fabric cost is a fraction of a slot-at-a-
// time client's. Not safe for concurrent use.
type CombineGroup struct {
	g    *delegation.ClientGroup
	resp []byte
}

// NewCombineGroup binds node n to slots [lo, lo+count) of dom. Align lo
// and count to 8 for atomic-free flushes.
func NewCombineGroup(dom *delegation.Domain, n *fabric.Node, lo, count int) *CombineGroup {
	return &CombineGroup{g: dom.ClientGroup(n, lo, count), resp: make([]byte, delegation.PayloadMax)}
}

// Free returns how many more ops fit before the batch must complete.
func (cg *CombineGroup) Free() int { return cg.g.Free() }

// PostGet stages a GET for key, returning its batch index.
func (cg *CombineGroup) PostGet(key string) int {
	if len(key) > delegation.PayloadMax {
		panic("redis: combine key exceeds payload")
	}
	return cg.g.Post(combineOpGet, []byte(key))
}

// PostIncrBy stages an INCRBY of delta on key, returning its batch index.
func (cg *CombineGroup) PostIncrBy(key string, delta int64) int {
	if len(key) > CombineKeyMax {
		panic("redis: combine key exceeds payload")
	}
	buf := make([]byte, 8+len(key))
	binary.LittleEndian.PutUint64(buf, uint64(delta))
	copy(buf[8:], key)
	return cg.g.Post(combineOpIncrBy, buf)
}

// Flush publishes every staged op to the owner as one burst.
func (cg *CombineGroup) Flush() { cg.g.Flush() }

// Refresh bulk-fetches the group's response stripe; call before a round
// of TryGet/TryIncr polls.
func (cg *CombineGroup) Refresh() { cg.g.Refresh() }

// Recycle frees all slots once a batch has fully completed.
func (cg *CombineGroup) Recycle() { cg.g.Recycle() }

// TryGet checks the refreshed snapshot for batch index i's GET reply.
// The returned value is a private copy.
func (cg *CombineGroup) TryGet(i int) (val []byte, ok, done bool, err error) {
	n, st, d := cg.g.TryComplete(i, cg.resp)
	if !d {
		return nil, false, false, nil
	}
	switch st {
	case combineFound:
		v := make([]byte, n)
		copy(v, cg.resp[:n])
		return v, true, true, nil
	case combineMiss:
		return nil, false, true, nil
	}
	return nil, false, true, errors.New("redis: combine: " + string(cg.resp[:n]))
}

// TryIncr checks the refreshed snapshot for batch index i's INCRBY reply.
func (cg *CombineGroup) TryIncr(i int) (val int64, done bool, err error) {
	n, st, d := cg.g.TryComplete(i, cg.resp)
	if !d {
		return 0, false, nil
	}
	if st != combineFound || n != 8 {
		return 0, true, errors.New("redis: combine: " + string(cg.resp[:n]))
	}
	return int64(binary.LittleEndian.Uint64(cg.resp[:8])), true, nil
}

// Get posts a GET and spins until the owner answers. Spinning charges
// nondeterministic virtual time, so this is for correctness tests; the
// measured experiments use the Post/Try split under barriers.
func (cc *CombineClient) Get(key string) ([]byte, bool, error) {
	cc.PostGet(key)
	for {
		val, ok, done, err := cc.TryGet()
		if done {
			return val, ok, err
		}
		runtime.Gosched()
	}
}

// IncrBy posts an INCRBY and spins until the owner answers.
func (cc *CombineClient) IncrBy(key string, delta int64) (int64, error) {
	cc.PostIncrBy(key, delta)
	for {
		val, done, err := cc.TryIncr()
		if done {
			return val, err
		}
		runtime.Gosched()
	}
}
