package redis

import (
	"errors"

	"flacos/internal/fabric"
)

// Generation fencing: the membership layer's answer to zombie servers.
// Every view carries the membership generation its node was serving
// under when it attached; the store keeps one fence word per node
// (fabric atomics only). When the rack declares a node dead at
// generation g, FenceNode raises that node's fence above g — from then
// on every WRITE through a view attached at generation <= g is rejected
// with ErrFenced, deterministically, on every node. A node that was
// falsely declared dead and keeps executing cannot corrupt the shared
// keyspace: its writes bounce until it rejoins under a bumped
// generation and attaches fresh views.
//
// Reads are NOT fenced: entry blocks are immutable and published with
// write-back-then-publish, so a zombie's reads return a consistent (if
// slightly stale) snapshot and cannot damage anything. This mirrors
// sched's lease fencing, where the stale owner may finish computing but
// its completion CAS fails.

// ErrFenced is returned by write operations through a view whose
// generation the rack has fenced off. The holder must discard the view
// and re-attach (with the post-rejoin generation) to resume writing.
var ErrFenced = errors.New("redis: view fenced (node declared dead at this generation)")

func (s *RackStore) fenceSlotG(node int) fabric.GPtr {
	return s.fenceG.Add(uint64(node) * 8)
}

// AttachGen creates a view like Attach but records gen as the view's
// membership generation. Membership-aware callers (core's resync path,
// the torture membership workload) pass the generation their node
// joined under, so a later FenceNode for an OLDER generation leaves the
// new view serving.
func (s *RackStore) AttachGen(n *fabric.Node, gen uint64) *View {
	v := s.Attach(n)
	v.gen = gen
	return v
}

// Generation returns the membership generation this view writes under.
func (v *View) Generation() uint64 { return v.gen }

// fenced reports whether this view's writes are fenced off: the node's
// fence word has been raised above the view's attach generation.
func (v *View) fenced() bool {
	return v.n.AtomicLoad64(v.s.fenceSlotG(v.n.ID())) > v.gen
}

// FenceNode fences node nodeID at membership generation gen, acting
// from live node `from`: the node's fence word is raised to gen+1
// (monotonic — a later generation's fence is never lowered), and every
// tracked view that node attached at generation <= gen has its
// quiescence reservation cleared so epoch advance cannot stall on the
// dead node's read sections. Idempotent per (nodeID, gen); returns how
// many views were newly fenced. It is the membership Dead event's
// recovery hook for the store.
func (s *RackStore) FenceNode(from *fabric.Node, nodeID int, gen uint64) int {
	if nodeID < 0 || nodeID >= s.fab.NumNodes() {
		return 0
	}
	g := s.fenceSlotG(nodeID)
	for {
		cur := from.AtomicLoad64(g)
		if cur > gen {
			break // already fenced at or above this generation
		}
		if from.CAS64(g, cur, gen+1) {
			break
		}
	}
	s.mu.Lock()
	var fenced []*View
	keep := s.byNode[nodeID][:0]
	for _, v := range s.byNode[nodeID] {
		if v.gen <= gen {
			fenced = append(fenced, v)
		} else {
			keep = append(keep, v)
		}
	}
	s.byNode[nodeID] = keep
	s.mu.Unlock()
	for _, v := range fenced {
		s.dom.Fence(from, v.id)
	}
	return len(fenced)
}
