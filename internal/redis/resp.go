// Package redis is a miniature Redis used as the paper's evaluation
// workload (Figure 4): a RESP-speaking in-memory KV server and client that
// run unchanged over two transports — the simulated TCP/IP stack
// (internal/netstack, the paper's "networking" baseline) and FlacOS
// zero-copy IPC (internal/ipc). The latency gap between the two transports
// under SET/GET at different value sizes is exactly the paper's headline
// experiment.
package redis

import (
	"errors"
	"fmt"
	"strconv"
)

// RESP value kinds.
const (
	respSimple = '+'
	respError  = '-'
	respInt    = ':'
	respBulk   = '$'
	respArray  = '*'
)

// ErrProtocol reports malformed RESP input.
var ErrProtocol = errors.New("redis: protocol error")

// Value is one decoded RESP value.
type Value struct {
	Kind  byte
	Str   string  // simple string or error text
	Int   int64   // integer
	Bulk  []byte  // bulk string (nil means null bulk)
	Array []Value // array elements
}

// IsError reports whether v is a RESP error reply.
func (v Value) IsError() bool { return v.Kind == respError }

// Err returns the reply as a Go error (nil unless v is a RESP error).
func (v Value) Err() error {
	if v.Kind != respError {
		return nil
	}
	return errors.New(v.Str)
}

// AppendCommand encodes a command (array of bulk strings) onto dst.
func AppendCommand(dst []byte, args ...[]byte) []byte {
	dst = append(dst, respArray)
	dst = strconv.AppendInt(dst, int64(len(args)), 10)
	dst = append(dst, '\r', '\n')
	for _, a := range args {
		dst = AppendBulk(dst, a)
	}
	return dst
}

// AppendBulk encodes one bulk string onto dst.
func AppendBulk(dst, b []byte) []byte {
	if b == nil {
		return append(dst, '$', '-', '1', '\r', '\n')
	}
	dst = append(dst, respBulk)
	dst = strconv.AppendInt(dst, int64(len(b)), 10)
	dst = append(dst, '\r', '\n')
	dst = append(dst, b...)
	return append(dst, '\r', '\n')
}

// AppendArrayHeader encodes an array header for n elements; the caller
// appends the n element encodings after it (MGET replies).
func AppendArrayHeader(dst []byte, n int) []byte {
	dst = append(dst, respArray)
	dst = strconv.AppendInt(dst, int64(n), 10)
	return append(dst, '\r', '\n')
}

// AppendSimple encodes a simple string ("+OK\r\n").
func AppendSimple(dst []byte, s string) []byte {
	dst = append(dst, respSimple)
	dst = append(dst, s...)
	return append(dst, '\r', '\n')
}

// AppendError encodes an error reply. Error text is line-framed, so any
// CR/LF smuggled in via user data (an unknown command named "A\r\nB")
// would desynchronize the whole reply stream; those bytes are replaced
// with spaces.
func AppendError(dst []byte, msg string) []byte {
	dst = append(dst, respError)
	for i := 0; i < len(msg); i++ {
		c := msg[i]
		if c == '\r' || c == '\n' {
			c = ' '
		}
		dst = append(dst, c)
	}
	return append(dst, '\r', '\n')
}

// AppendInt encodes an integer reply.
func AppendInt(dst []byte, v int64) []byte {
	dst = append(dst, respInt)
	dst = strconv.AppendInt(dst, v, 10)
	return append(dst, '\r', '\n')
}

// Decode parses one RESP value from b, returning it and the bytes consumed.
func Decode(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Value{}, 0, fmt.Errorf("%w: empty input", ErrProtocol)
	}
	line, n, err := readLine(b[1:])
	if err != nil {
		return Value{}, 0, err
	}
	consumed := 1 + n
	switch b[0] {
	case respSimple:
		return Value{Kind: respSimple, Str: string(line)}, consumed, nil
	case respError:
		return Value{Kind: respError, Str: string(line)}, consumed, nil
	case respInt:
		v, err := strconv.ParseInt(string(line), 10, 64)
		if err != nil {
			return Value{}, 0, fmt.Errorf("%w: bad integer %q", ErrProtocol, line)
		}
		return Value{Kind: respInt, Int: v}, consumed, nil
	case respBulk:
		ln, err := strconv.Atoi(string(line))
		if err != nil {
			return Value{}, 0, fmt.Errorf("%w: bad bulk length %q", ErrProtocol, line)
		}
		if ln < 0 {
			return Value{Kind: respBulk, Bulk: nil}, consumed, nil
		}
		// Compare against the remaining bytes, not consumed+ln+2: an
		// attacker-supplied length near MaxInt would overflow the sum and
		// slip past the bound straight into a huge allocation.
		if ln > len(b)-consumed-2 {
			return Value{}, 0, fmt.Errorf("%w: truncated bulk", ErrProtocol)
		}
		bulk := make([]byte, ln)
		copy(bulk, b[consumed:consumed+ln])
		if b[consumed+ln] != '\r' || b[consumed+ln+1] != '\n' {
			return Value{}, 0, fmt.Errorf("%w: bulk missing CRLF", ErrProtocol)
		}
		return Value{Kind: respBulk, Bulk: bulk}, consumed + ln + 2, nil
	case respArray:
		count, err := strconv.Atoi(string(line))
		if err != nil || count < 0 {
			return Value{}, 0, fmt.Errorf("%w: bad array length %q", ErrProtocol, line)
		}
		// The smallest element ("+\r\n") is 3 bytes, so a count the input
		// cannot possibly back is rejected before allocating for it.
		if count > (len(b)-consumed)/3 {
			return Value{}, 0, fmt.Errorf("%w: truncated array", ErrProtocol)
		}
		arr := make([]Value, 0, count)
		off := consumed
		for i := 0; i < count; i++ {
			v, n, err := Decode(b[off:])
			if err != nil {
				return Value{}, 0, err
			}
			arr = append(arr, v)
			off += n
		}
		return Value{Kind: respArray, Array: arr}, off, nil
	}
	return Value{}, 0, fmt.Errorf("%w: unknown type %q", ErrProtocol, b[0])
}

// readLine returns the bytes before the next CRLF and the total consumed
// including the CRLF.
func readLine(b []byte) ([]byte, int, error) {
	for i := 0; i+1 < len(b); i++ {
		if b[i] == '\r' && b[i+1] == '\n' {
			return b[:i], i + 2, nil
		}
	}
	return nil, 0, fmt.Errorf("%w: missing CRLF", ErrProtocol)
}
