package redis

import (
	"strconv"
	"strings"
	"time"
)

// Conn is the transport a server session or client runs over. Both
// ipc.Conn (FlacOS zero-copy IPC) and netstack.Conn (simulated TCP)
// satisfy it, which is the point: the same Redis binary, two transports.
type Conn interface {
	Send(msg []byte) error
	Recv(buf []byte) (int, error)
	Close()
}

// Server executes commands against a Store.
type Server struct {
	store *Store
}

// NewServer creates a server over store.
func NewServer(store *Store) *Server { return &Server{store: store} }

// Store returns the server's keyspace.
func (s *Server) Store() *Store { return s.store }

// ServeConn runs one session: decode command, execute, reply, until the
// connection closes. Run it in a goroutine per accepted connection.
func (s *Server) ServeConn(c Conn, bufSize int) {
	if bufSize <= 0 {
		bufSize = 64 << 10
	}
	req := make([]byte, bufSize)
	for {
		n, err := c.Recv(req)
		if err != nil {
			return
		}
		resp := s.Execute(req[:n])
		if err := c.Send(resp); err != nil {
			return
		}
	}
}

// Execute runs one RESP-encoded command and returns the RESP reply.
func (s *Server) Execute(req []byte) []byte {
	v, _, err := Decode(req)
	if err != nil || v.Kind != respArray || len(v.Array) == 0 {
		return AppendError(nil, "ERR protocol error")
	}
	args := v.Array
	for _, a := range args {
		if a.Kind != respBulk {
			return AppendError(nil, "ERR protocol error: expected bulk string")
		}
	}
	cmd := strings.ToUpper(string(args[0].Bulk))
	switch cmd {
	case "PING":
		return AppendSimple(nil, "PONG")
	case "SET":
		if len(args) < 3 {
			return AppendError(nil, "ERR wrong number of arguments for 'set'")
		}
		ttl := time.Duration(0)
		if len(args) == 5 && strings.EqualFold(string(args[3].Bulk), "EX") {
			secs, err := strconv.Atoi(string(args[4].Bulk))
			if err != nil {
				return AppendError(nil, "ERR invalid expire time")
			}
			ttl = time.Duration(secs) * time.Second
		}
		s.store.Set(string(args[1].Bulk), args[2].Bulk, ttl)
		return AppendSimple(nil, "OK")
	case "GET":
		if len(args) != 2 {
			return AppendError(nil, "ERR wrong number of arguments for 'get'")
		}
		val, ok := s.store.Get(string(args[1].Bulk))
		if !ok {
			return AppendBulk(nil, nil)
		}
		return AppendBulk(nil, val)
	case "DEL":
		keys := bulkKeys(args[1:])
		return AppendInt(nil, int64(s.store.Del(keys...)))
	case "EXISTS":
		keys := bulkKeys(args[1:])
		return AppendInt(nil, int64(s.store.Exists(keys...)))
	case "INCR":
		if len(args) != 2 {
			return AppendError(nil, "ERR wrong number of arguments for 'incr'")
		}
		v, err := s.store.Incr(string(args[1].Bulk))
		if err != nil {
			return AppendError(nil, "ERR value is not an integer or out of range")
		}
		return AppendInt(nil, v)
	case "DBSIZE":
		return AppendInt(nil, int64(s.store.Len()))
	}
	return AppendError(nil, "ERR unknown command '"+cmd+"'")
}

func bulkKeys(args []Value) []string {
	keys := make([]string, len(args))
	for i, a := range args {
		keys[i] = string(a.Bulk)
	}
	return keys
}
