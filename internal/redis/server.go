package redis

import (
	"strconv"
	"strings"
	"time"
)

// Conn is the transport a server session or client runs over. Both
// ipc.Conn (FlacOS zero-copy IPC) and netstack.Conn (simulated TCP)
// satisfy it, which is the point: the same Redis binary, two transports.
type Conn interface {
	Send(msg []byte) error
	Recv(buf []byte) (int, error)
	Close()
}

// Backend is the keyspace a server executes against. Two implementations:
// the single-node *Store (Go map behind a mutex) and the rack-shared
// *View (the global-arena store, one view per server session, same
// dataset from every node).
type Backend interface {
	Set(key string, value []byte, ttl time.Duration) error
	Get(key string) ([]byte, bool)
	// MGet resolves a whole key batch at once (nil = miss); the rack
	// store answers it inside one epoch section, so MGET is genuinely
	// cheaper than N GETs, not just one transport round trip.
	MGet(keys ...string) [][]byte
	Del(keys ...string) int
	Exists(keys ...string) int
	Incr(key string) (int64, error)
	// IncrBy adds delta in one published write — the primitive a
	// combining owner uses to apply a gathered increment batch.
	IncrBy(key string, delta int64) (int64, error)
	// Expire sets a fresh TTL on a live key, reporting whether it
	// existed; a non-positive ttl deletes the key immediately, matching
	// real Redis.
	Expire(key string, ttl time.Duration) bool
	Len() int
}

// Server executes commands against a Backend.
type Server struct {
	store Backend
}

// NewServer creates a server over store.
func NewServer(store Backend) *Server { return &Server{store: store} }

// Store returns the server's keyspace.
func (s *Server) Store() Backend { return s.store }

// ServeConn runs one session: decode commands, execute, reply, until the
// connection closes. Run it in a goroutine per accepted connection. Each
// received message is executed as a BATCH: a pipelining client packs N
// commands per Send, the server drains all of them and replies with the
// concatenated replies in one Send — one transport round trip, N store
// operations, the amortization the fig4/redisrack experiments measure.
func (s *Server) ServeConn(c Conn, bufSize int) {
	if bufSize <= 0 {
		bufSize = 64 << 10
	}
	req := make([]byte, bufSize)
	var resp []byte
	for {
		n, err := c.Recv(req)
		if err != nil {
			return
		}
		resp = s.ExecuteBatch(resp[:0], req[:n])
		if err := c.Send(resp); err != nil {
			return
		}
	}
}

// Execute runs one RESP-encoded command and returns the RESP reply.
func (s *Server) Execute(req []byte) []byte {
	v, _, err := Decode(req)
	if err != nil {
		return AppendError(nil, "ERR protocol error")
	}
	return s.executeValue(nil, v)
}

// ExecuteBatch runs every RESP command packed in req, appending the
// replies to out in order. A decode error poisons the remainder of the
// batch (the stream boundary is lost) but replies already produced stand.
func (s *Server) ExecuteBatch(out, req []byte) []byte {
	for len(req) > 0 {
		v, n, err := Decode(req)
		if err != nil {
			return AppendError(out, "ERR protocol error")
		}
		out = s.executeValue(out, v)
		req = req[n:]
	}
	return out
}

// executeValue executes one decoded command, appending its reply to out.
func (s *Server) executeValue(out []byte, v Value) []byte {
	if v.Kind != respArray || len(v.Array) == 0 {
		return AppendError(out, "ERR protocol error")
	}
	args := v.Array
	for _, a := range args {
		if a.Kind != respBulk {
			return AppendError(out, "ERR protocol error: expected bulk string")
		}
	}
	cmd := strings.ToUpper(string(args[0].Bulk))
	switch cmd {
	case "PING":
		return AppendSimple(out, "PONG")
	case "SET":
		if len(args) < 3 {
			return AppendError(out, "ERR wrong number of arguments for 'set'")
		}
		ttl := time.Duration(0)
		if len(args) == 5 && strings.EqualFold(string(args[3].Bulk), "EX") {
			secs, err := strconv.Atoi(string(args[4].Bulk))
			if err != nil {
				return AppendError(out, "ERR invalid expire time")
			}
			ttl = time.Duration(secs) * time.Second
		}
		if err := s.store.Set(string(args[1].Bulk), args[2].Bulk, ttl); err != nil {
			return AppendError(out, "ERR "+err.Error())
		}
		return AppendSimple(out, "OK")
	case "GET":
		if len(args) != 2 {
			return AppendError(out, "ERR wrong number of arguments for 'get'")
		}
		val, ok := s.store.Get(string(args[1].Bulk))
		if !ok {
			return AppendBulk(out, nil)
		}
		return AppendBulk(out, val)
	case "MGET":
		if len(args) < 2 {
			return AppendError(out, "ERR wrong number of arguments for 'mget'")
		}
		keys := bulkKeys(args[1:])
		vals := s.store.MGet(keys...)
		out = AppendArrayHeader(out, len(vals))
		for _, v := range vals {
			out = AppendBulk(out, v)
		}
		return out
	case "MSET":
		if len(args) < 3 || len(args)%2 == 0 {
			return AppendError(out, "ERR wrong number of arguments for 'mset'")
		}
		for i := 1; i < len(args); i += 2 {
			if err := s.store.Set(string(args[i].Bulk), args[i+1].Bulk, 0); err != nil {
				return AppendError(out, "ERR "+err.Error())
			}
		}
		return AppendSimple(out, "OK")
	case "DEL":
		keys := bulkKeys(args[1:])
		return AppendInt(out, int64(s.store.Del(keys...)))
	case "EXISTS":
		keys := bulkKeys(args[1:])
		return AppendInt(out, int64(s.store.Exists(keys...)))
	case "INCR":
		if len(args) != 2 {
			return AppendError(out, "ERR wrong number of arguments for 'incr'")
		}
		v, err := s.store.Incr(string(args[1].Bulk))
		if err != nil {
			return AppendError(out, "ERR value is not an integer or out of range")
		}
		return AppendInt(out, v)
	case "INCRBY":
		if len(args) != 3 {
			return AppendError(out, "ERR wrong number of arguments for 'incrby'")
		}
		delta, err := strconv.ParseInt(string(args[2].Bulk), 10, 64)
		if err != nil {
			return AppendError(out, "ERR value is not an integer or out of range")
		}
		v, err := s.store.IncrBy(string(args[1].Bulk), delta)
		if err != nil {
			return AppendError(out, "ERR value is not an integer or out of range")
		}
		return AppendInt(out, v)
	case "EXPIRE":
		if len(args) != 3 {
			return AppendError(out, "ERR wrong number of arguments for 'expire'")
		}
		secs, err := strconv.ParseInt(string(args[2].Bulk), 10, 64)
		if err != nil {
			return AppendError(out, "ERR value is not an integer or out of range")
		}
		if s.store.Expire(string(args[1].Bulk), time.Duration(secs)*time.Second) {
			return AppendInt(out, 1)
		}
		return AppendInt(out, 0)
	case "DBSIZE":
		return AppendInt(out, int64(s.store.Len()))
	}
	return AppendError(out, "ERR unknown command '"+cmd+"'")
}

func bulkKeys(args []Value) []string {
	keys := make([]string, len(args))
	for i, a := range args {
		keys[i] = string(a.Bulk)
	}
	return keys
}
