package redis

import (
	"fmt"
	"testing"
)

func BenchmarkExecuteSet(b *testing.B) {
	srv := NewServer(NewStore())
	val := make([]byte, 64)
	cmds := make([][]byte, 64)
	for i := range cmds {
		cmds[i] = AppendCommand(nil, []byte("SET"), []byte(fmt.Sprintf("key-%d", i)), val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Execute(cmds[i%64])
	}
}

func BenchmarkExecuteGet(b *testing.B) {
	srv := NewServer(NewStore())
	srv.Store().Set("key", make([]byte, 4096), 0)
	cmd := AppendCommand(nil, []byte("GET"), []byte("key"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Execute(cmd)
	}
}

func BenchmarkRESPDecodeCommand(b *testing.B) {
	cmd := AppendCommand(nil, []byte("SET"), []byte("some-key"), make([]byte, 4096))
	b.SetBytes(int64(len(cmd)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(cmd); err != nil {
			b.Fatal(err)
		}
	}
}
