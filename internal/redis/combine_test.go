package redis

import (
	"bytes"
	"fmt"
	"testing"

	"flacos/internal/flacdk/delegation"
)

// combineRig is a deterministic single-goroutine combining harness: one
// owner combiner on node 0 and one client per remaining slot. Posts,
// sweeps and completions are driven explicitly, so fan-in composition per
// sweep is exact.
func newCombineRig(t *testing.T, nodes, slots int) (*Combiner, []*CombineClient) {
	t.Helper()
	f, s := newTestRackStore(t, nodes, RackStoreConfig{MaxViews: 16})
	dom := delegation.NewDomain(f, slots)
	cb := NewCombiner(s.Attach(f.Node(0)), dom)
	clients := make([]*CombineClient, slots)
	for i := range clients {
		clients[i] = NewCombineClient(dom, f.Node(i%nodes), i)
	}
	return cb, clients
}

func TestCombineGetHitAndMiss(t *testing.T) {
	cb, cl := newCombineRig(t, 2, 2)
	if err := cb.View().Set("k", []byte("v1"), 0); err != nil {
		t.Fatal(err)
	}
	cl[0].PostGet("k")
	cl[1].PostGet("absent")
	if served := cb.ServeSweep(); served != 2 {
		t.Fatalf("ServeSweep served %d, want 2", served)
	}
	val, ok, done, err := cl[0].TryGet()
	if err != nil || !done || !ok || !bytes.Equal(val, []byte("v1")) {
		t.Fatalf("combined GET hit = (%q, %v, %v, %v)", val, ok, done, err)
	}
	if _, ok, done, err := cl[1].TryGet(); err != nil || !done || ok {
		t.Fatalf("combined GET miss = (ok=%v, done=%v, err=%v), want clean miss", ok, done, err)
	}
}

// TestCombineIncrBatchOnePublish gathers increments from every client in
// one sweep and checks (a) each caller receives its exact intermediate
// value as if the increments ran back to back, (b) the arena holds the
// total, and (c) the whole batch cost ONE entry publish — the allocator's
// count is the witness that combining actually combined.
func TestCombineIncrBatchOnePublish(t *testing.T) {
	const slots = 6
	cb, cl := newCombineRig(t, 3, slots)
	if _, err := cb.View().IncrBy("ctr", 100); err != nil {
		t.Fatal(err)
	}
	allocsBefore, _ := cb.View().AllocStats()
	for i, c := range cl {
		c.PostIncrBy("ctr", int64(i+1))
	}
	if served := cb.ServeSweep(); served != slots {
		t.Fatalf("ServeSweep served %d, want %d", served, slots)
	}
	run := int64(100)
	for i, c := range cl {
		run += int64(i + 1)
		val, done, err := c.TryIncr()
		if err != nil || !done || val != run {
			t.Fatalf("client %d: combined INCRBY = (%d, %v, %v), want %d", i, val, done, err, run)
		}
	}
	allocsAfter, _ := cb.View().AllocStats()
	if got := allocsAfter - allocsBefore; got != 1 {
		t.Fatalf("combined increment batch allocated %d entry blocks, want 1", got)
	}
	if v, err := cb.View().IncrBy("ctr", 0); err != nil || v != run {
		t.Fatalf("arena total = %d (err %v), want %d", v, err, run)
	}
}

func TestCombineIncrErrorPropagates(t *testing.T) {
	cb, cl := newCombineRig(t, 2, 1)
	if err := cb.View().Set("notanum", []byte("xyz"), 0); err != nil {
		t.Fatal(err)
	}
	cl[0].PostIncrBy("notanum", 1)
	cb.ServeSweep()
	if _, done, err := cl[0].TryIncr(); !done || err == nil {
		t.Fatalf("INCRBY on non-integer: done=%v err=%v, want done with error", done, err)
	}
}

func TestCombineOversizeValueRejected(t *testing.T) {
	cb, cl := newCombineRig(t, 2, 1)
	big := make([]byte, CombineValueMax+1)
	if err := cb.View().Set("big", big, 0); err != nil {
		t.Fatal(err)
	}
	cl[0].PostGet("big")
	cb.ServeSweep()
	if _, _, done, err := cl[0].TryGet(); !done || err == nil {
		t.Fatalf("oversize combined GET: done=%v err=%v, want done with error", done, err)
	}
}

func TestHotTrackerClassifies(t *testing.T) {
	ht := NewHotTracker(0.5, 4)
	for i := 0; i < 4; i++ {
		if ht.Hot("k") {
			t.Fatalf("hot after %d touches, threshold 4", i)
		}
		ht.Touch("k")
	}
	if !ht.Hot("k") {
		t.Fatal("not hot at threshold")
	}
	ht.Touch("cold")
	if ht.Hot("cold") {
		t.Fatal("one touch classified hot")
	}
	for i := 0; i < 8; i++ {
		ht.Decay()
	}
	if ht.Hot("k") {
		t.Fatal("still hot after 8 decays at factor 0.5")
	}
}

func TestCombineOwnerStable(t *testing.T) {
	for n := 1; n <= 16; n *= 2 {
		for i := 0; i < 64; i++ {
			key := fmt.Sprintf("k%d", i)
			o := CombineOwner(key, n)
			if o < 0 || o >= n {
				t.Fatalf("CombineOwner(%q, %d) = %d out of range", key, n, o)
			}
			if o != CombineOwner(key, n) {
				t.Fatalf("CombineOwner(%q, %d) unstable", key, n)
			}
		}
	}
}

// TestCombineSweepGroupsMixedOps posts a mix of GETs and INCRBYs on two
// keys in one sweep and checks every reply lands on the right slot with
// the right shape (the interleaved-reply framing the experiment relies
// on).
func TestCombineSweepGroupsMixedOps(t *testing.T) {
	cb, cl := newCombineRig(t, 2, 4)
	if err := cb.View().Set("d", []byte("payload"), 0); err != nil {
		t.Fatal(err)
	}
	cl[0].PostGet("d")
	cl[1].PostIncrBy("c", 5)
	cl[2].PostGet("d")
	cl[3].PostIncrBy("c", 7)
	if served := cb.ServeSweep(); served != 4 {
		t.Fatalf("served %d, want 4", served)
	}
	for _, i := range []int{0, 2} {
		val, ok, done, err := cl[i].TryGet()
		if err != nil || !done || !ok || string(val) != "payload" {
			t.Fatalf("slot %d GET = (%q, %v, %v, %v)", i, val, ok, done, err)
		}
	}
	v1, done1, err1 := cl[1].TryIncr()
	v3, done3, err3 := cl[3].TryIncr()
	if err1 != nil || err3 != nil || !done1 || !done3 {
		t.Fatalf("INCRBY replies: (%d,%v,%v) (%d,%v,%v)", v1, done1, err1, v3, done3, err3)
	}
	if v1 != 5 || v3 != 12 {
		t.Fatalf("cumulative INCRBY results = %d, %d; want 5, 12", v1, v3)
	}
}
