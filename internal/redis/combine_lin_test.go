package redis

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"flacos/internal/flacdk/delegation"
	"flacos/internal/histcheck"
)

// Linearizability histories for the hot-key combining path. The combining
// owner serves whole sweeps with one store operation per key, handing out
// synthesized intermediate results — precisely the kind of shortcut that
// could hide a stale read or a lost increment, so the histories here are
// checked by the real decision procedure (histcheck's Wing&Gong search),
// not hand-rolled floors. Run under -race (CI does): clients spin on
// their slots while the owner sweeps, the maximal interleaving stress.

// combineServeLoop runs the owner's sweep loop until stop is set, then
// drains one final sweep so no posted request is orphaned.
func combineServeLoop(cb *Combiner, stop *atomic.Bool) {
	for !stop.Load() {
		if cb.ServeSweep() == 0 {
			runtime.Gosched()
		}
	}
	cb.ServeSweep()
}

// TestCombineLinearizableIncr hammers one hot counter through the
// combining path from every node. The KV model forces the combined
// replies to be exactly 1..N*M, each exactly once, in an order consistent
// with real time: a double-applied or dropped increment inside a combined
// batch cannot linearize.
func TestCombineLinearizableIncr(t *testing.T) {
	const (
		nodes   = 4
		workers = 6
		each    = 150
	)
	f, s := newTestRackStore(t, nodes, RackStoreConfig{MaxViews: 16})
	dom := delegation.NewDomain(f, workers)
	cb := NewCombiner(s.Attach(f.Node(0)), dom)
	rec := histcheck.NewRecorder()

	var stop atomic.Bool
	var serveWG sync.WaitGroup
	serveWG.Add(1)
	go func() { defer serveWG.Done(); combineServeLoop(cb, &stop) }()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cc := NewCombineClient(dom, f.Node(1+w%(nodes-1)), w)
			for i := 0; i < each; i++ {
				p := rec.Begin(w, histcheck.KVInput{Op: histcheck.KVIncr, Key: "hot"})
				got, err := cc.IncrBy("hot", 1)
				p.End(histcheck.KVOutput{Val: uint64(got)})
				if err != nil {
					t.Errorf("worker %d: combined incr: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	serveWG.Wait()

	if res := histcheck.Check(histcheck.KVModel(), rec.Operations()); !res.Ok {
		t.Fatal(res.Info)
	}
	// Ground truth: the arena counter holds exactly N*M — every combined
	// increment was published exactly once.
	v := s.Attach(f.Node(1))
	b, ok := v.Get("hot")
	if !ok {
		t.Fatal("hot counter missing after combined increments")
	}
	if got, err := strconv.ParseInt(string(b), 10, 64); err != nil || got != workers*each {
		t.Fatalf("final counter %s (err %v), want %d", b, err, workers*each)
	}
}

// TestCombineLinearizableGetFreshness runs a direct writer against
// combined readers: every combined GET must observe a value at least as
// fresh as any SET that completed before the GET began. A combiner that
// served reads from a cached copy instead of the arena would fail here.
func TestCombineLinearizableGetFreshness(t *testing.T) {
	const (
		nodes   = 4
		writes  = 250
		readers = 5
	)
	f, s := newTestRackStore(t, nodes, RackStoreConfig{MaxViews: 16})
	dom := delegation.NewDomain(f, readers)
	cb := NewCombiner(s.Attach(f.Node(0)), dom)
	rec := histcheck.NewRecorder()

	var stop atomic.Bool
	var serveWG sync.WaitGroup
	serveWG.Add(1)
	go func() { defer serveWG.Done(); combineServeLoop(cb, &stop) }()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v := s.Attach(f.Node(1))
		for seq := uint64(1); seq <= writes; seq++ {
			p := rec.Begin(0, histcheck.KVInput{Op: histcheck.KVSet, Key: "fresh", Val: seq})
			err := v.Set("fresh", []byte(strconv.FormatUint(seq, 10)), 0)
			p.End(histcheck.KVOutput{})
			if err != nil {
				t.Errorf("set seq %d: %v", seq, err)
				return
			}
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cc := NewCombineClient(dom, f.Node(1+r%(nodes-1)), r)
			for i := 0; i < writes; i++ {
				p := rec.Begin(1+r, histcheck.KVInput{Op: histcheck.KVGet, Key: "fresh"})
				b, ok, err := cc.Get("fresh")
				if err != nil {
					t.Errorf("reader %d: combined get: %v", r, err)
					return
				}
				if !ok {
					p.End(histcheck.KVOutput{})
					continue
				}
				seq, perr := strconv.ParseUint(string(b), 10, 64)
				if perr != nil {
					t.Errorf("reader %d: torn value %q", r, b)
					return
				}
				p.End(histcheck.KVOutput{Val: seq, Found: true})
			}
		}(r)
	}
	wg.Wait()
	stop.Store(true)
	serveWG.Wait()

	if res := histcheck.Check(histcheck.KVModel(), rec.Operations()); !res.Ok {
		t.Fatal(res.Info)
	}
}

// TestCombineBrokenFlushCaught is the checker's self-test: with
// SetBrokenSkipCombineFlush the owner computes combined increments in
// private state and skips the arena publish — a missing write-back, the
// non-coherent fabric's signature bug. The recorded history must FAIL the
// linearizability check (an acknowledged increment no read can observe),
// proving the harness can actually catch the failure mode it exists for.
func TestCombineBrokenFlushCaught(t *testing.T) {
	f, s := newTestRackStore(t, 2, RackStoreConfig{MaxViews: 8})
	dom := delegation.NewDomain(f, 1)
	cb := NewCombiner(s.Attach(f.Node(0)), dom)
	cb.SetBrokenSkipCombineFlush(true)
	rec := histcheck.NewRecorder()

	cc := NewCombineClient(dom, f.Node(1), 0)
	for i := 0; i < 3; i++ {
		p := rec.Begin(0, histcheck.KVInput{Op: histcheck.KVIncr, Key: "lost"})
		cc.PostIncrBy("lost", 1)
		if served := cb.ServeSweep(); served != 1 {
			t.Fatalf("sweep served %d, want 1", served)
		}
		got, done, err := cc.TryIncr()
		if err != nil || !done {
			t.Fatalf("broken combined incr: (%v, %v)", done, err)
		}
		p.End(histcheck.KVOutput{Val: uint64(got)})
	}
	// The increments were acknowledged; a direct read must now see them —
	// but the broken combiner never published, so it sees a miss.
	v := s.Attach(f.Node(1))
	p := rec.Begin(1, histcheck.KVInput{Op: histcheck.KVGet, Key: "lost"})
	b, ok := v.Get("lost")
	out := histcheck.KVOutput{}
	if ok {
		seq, err := strconv.ParseUint(string(b), 10, 64)
		if err != nil {
			t.Fatalf("unparseable counter %q", b)
		}
		out = histcheck.KVOutput{Val: seq, Found: true}
	}
	p.End(out)

	res := histcheck.Check(histcheck.KVModel(), rec.Operations())
	if res.Ok {
		t.Fatal("checker accepted a history with acknowledged-but-unpublished increments; the broken combiner went uncaught")
	}
	if testing.Verbose() {
		fmt.Println("broken-flush counterexample:", res.Info)
	}
}
