package redis

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
)

// respSeeds is the shared corpus: every well-formed and malformed shape
// the unit tests exercise, plus the hostile lengths the decoder hardens
// against (overflow-inducing bulk length, unbackable array count).
var respSeeds = []string{
	"+OK\r\n",
	"-ERR x\r\n",
	":-42\r\n",
	":9223372036854775807\r\n",
	"$-1\r\n",
	"$3\r\nabc\r\n",
	"$0\r\n\r\n",
	"*0\r\n",
	"*2\r\n$3\r\nSET\r\n$1\r\nk\r\n",
	"*1\r\n*1\r\n:1\r\n",
	"", "x", "+OK", "$5\r\nab\r\n", ":abc\r\n", "*2\r\n+a\r\n", "$3\r\nabcXX",
	"$9223372036854775806\r\n\r\n",
	"*2147483647\r\n",
	"*-1\r\n",
	"$\r\n", "*\r\n", ":\r\n",
	"\r\n", "+\r\n",
}

// FuzzRESPDecode feeds arbitrary bytes to Decode: it must never panic,
// and on success the consumed count must be a sane self-delimiting prefix
// (decoding just that prefix yields the identical value).
func FuzzRESPDecode(f *testing.F) {
	for _, s := range respSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("Decode(%q) consumed %d of %d bytes", data, n, len(data))
		}
		v2, n2, err2 := Decode(data[:n])
		if err2 != nil || n2 != n || !reflect.DeepEqual(v, v2) {
			t.Fatalf("Decode(%q) not self-delimiting: prefix gave (%+v,%d,%v), full gave (%+v,%d)",
				data, v2, n2, err2, v, n)
		}
	})
}

// FuzzRESPRoundTrip drives the encoder with fuzz-derived content and
// checks decode(encode(x)) == x for commands (arrays of bulks), integers,
// and simple strings.
func FuzzRESPRoundTrip(f *testing.F) {
	for _, s := range respSeeds {
		f.Add([]byte(s))
	}
	f.Add([]byte("SET\xffkey\xffvalue"))
	f.Add(bytes.Repeat([]byte{0xff}, 9))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Command: the input split on 0xff becomes the argument vector.
		args := bytes.Split(data, []byte{0xff})
		if len(args) > 32 {
			args = args[:32]
		}
		enc := AppendCommand(nil, args...)
		v, n, err := Decode(enc)
		if err != nil || n != len(enc) {
			t.Fatalf("command round-trip: Decode(%q) = (_, %d, %v), want full %d bytes", enc, n, err, len(enc))
		}
		if v.Kind != respArray || len(v.Array) != len(args) {
			t.Fatalf("command round-trip: got kind %q with %d elements, want array of %d", v.Kind, len(v.Array), len(args))
		}
		for i, a := range args {
			got := v.Array[i].Bulk
			if got == nil {
				got = []byte{}
			}
			if !bytes.Equal(got, a) {
				t.Fatalf("command round-trip: arg %d = %q, want %q", i, got, a)
			}
		}

		// Integer: the first 8 bytes (zero-padded) as an int64.
		var pad [8]byte
		copy(pad[:], data)
		want := int64(binary.LittleEndian.Uint64(pad[:]))
		v, n, err = Decode(AppendInt(nil, want))
		if err != nil || v.Kind != respInt || v.Int != want {
			t.Fatalf("int round-trip: %d gave (%+v, %d, %v)", want, v, n, err)
		}

		// Simple string: CR/LF cannot appear inside the unescaped frame.
		s := strings.NewReplacer("\r", "", "\n", "").Replace(string(data))
		v, _, err = Decode(AppendSimple(nil, s))
		if err != nil || v.Kind != respSimple || v.Str != s {
			t.Fatalf("simple round-trip: %q gave (%+v, %v)", s, v, err)
		}
	})
}
