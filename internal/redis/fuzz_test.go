package redis

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// respSeeds is the shared corpus: every well-formed and malformed shape
// the unit tests exercise, plus the hostile lengths the decoder hardens
// against (overflow-inducing bulk length, unbackable array count).
var respSeeds = []string{
	"+OK\r\n",
	"-ERR x\r\n",
	":-42\r\n",
	":9223372036854775807\r\n",
	"$-1\r\n",
	"$3\r\nabc\r\n",
	"$0\r\n\r\n",
	"*0\r\n",
	"*2\r\n$3\r\nSET\r\n$1\r\nk\r\n",
	"*1\r\n*1\r\n:1\r\n",
	"", "x", "+OK", "$5\r\nab\r\n", ":abc\r\n", "*2\r\n+a\r\n", "$3\r\nabcXX",
	"$9223372036854775806\r\n\r\n",
	"*2147483647\r\n",
	"*-1\r\n",
	"$\r\n", "*\r\n", ":\r\n",
	"\r\n", "+\r\n",
}

// FuzzRESPDecode feeds arbitrary bytes to Decode: it must never panic,
// and on success the consumed count must be a sane self-delimiting prefix
// (decoding just that prefix yields the identical value).
func FuzzRESPDecode(f *testing.F) {
	for _, s := range respSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("Decode(%q) consumed %d of %d bytes", data, n, len(data))
		}
		v2, n2, err2 := Decode(data[:n])
		if err2 != nil || n2 != n || !reflect.DeepEqual(v, v2) {
			t.Fatalf("Decode(%q) not self-delimiting: prefix gave (%+v,%d,%v), full gave (%+v,%d)",
				data, v2, n2, err2, v, n)
		}
	})
}

// FuzzBatchCommandDecode feeds hostile batch framings to ExecuteBatch:
// truncated commands, overflow-inducing lengths, garbage between commands.
// Properties: (1) never panic; (2) the reply stream is itself a fully
// self-delimiting RESP sequence; (3) the reply count matches the number of
// decodable commands in the input prefix, plus exactly one poisoned error
// when the stream breaks mid-batch. Then the same fuzz bytes drive a
// structured phase: MSET/MGET/INCRBY built from the data are pipelined as
// one batch and the interleaved replies must decode with the right shapes.
func FuzzBatchCommandDecode(f *testing.F) {
	for _, s := range respSeeds {
		f.Add([]byte(s))
	}
	// Whole-batch seeds: MSET+MGET+INCRBY pipelines, truncation mid-frame.
	f.Add([]byte("*5\r\n$4\r\nMSET\r\n$1\r\na\r\n$1\r\n1\r\n$1\r\nb\r\n$1\r\n2\r\n*3\r\n$4\r\nMGET\r\n$1\r\na\r\n$1\r\nb\r\n"))
	f.Add([]byte("*3\r\n$6\r\nINCRBY\r\n$1\r\nc\r\n$2\r\n-7\r\n*3\r\n$6\r\nINCRBY\r\n$1\r\nc\r\n$19\r\n9223372036854775807\r\n"))
	f.Add([]byte("*3\r\n$4\r\nMGET\r\n$1\r\na\r\n$1\r\nb\r\n*2\r\n$4\r\nMGET\r\n$300\r\ntruncated"))
	f.Add([]byte("+inline\r\n*1\r\n$4\r\nPING\r\n:42\r\n"))
	// EXPIRE pipelines: set-then-expire, expire of a missing key, the
	// delete-now negative-ttl form, and a truncated EXPIRE mid-frame.
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$1\r\na\r\n$1\r\n1\r\n*3\r\n$6\r\nEXPIRE\r\n$1\r\na\r\n$2\r\n10\r\n*2\r\n$3\r\nGET\r\n$1\r\na\r\n"))
	f.Add([]byte("*3\r\n$6\r\nEXPIRE\r\n$7\r\nmissing\r\n$1\r\n5\r\n*3\r\n$6\r\nEXPIRE\r\n$1\r\na\r\n$2\r\n-1\r\n"))
	f.Add([]byte("*3\r\n$6\r\nEXPIRE\r\n$1\r\na\r\n$3\r\nnan\r\n*3\r\n$6\r\nEXPIRE\r\n$1\r\na"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewServer(NewStore())
		out := s.ExecuteBatch(nil, data)

		// Count how many commands the batch loop could have consumed, and
		// whether it then hit a decode error (which poisons the remainder).
		cmds, poisoned := 0, false
		for rest := data; len(rest) > 0; {
			_, n, err := Decode(rest)
			if err != nil {
				poisoned = true
				break
			}
			cmds++
			rest = rest[n:]
		}

		replies := 0
		for rest := out; len(rest) > 0; {
			_, n, err := Decode(rest)
			if err != nil {
				t.Fatalf("ExecuteBatch(%q) produced undecodable reply stream at %q", data, rest)
			}
			replies++
			rest = rest[n:]
		}
		want := cmds
		if poisoned {
			want++ // the single "ERR protocol error" that ends the batch
		}
		if replies != want {
			t.Fatalf("ExecuteBatch(%q): %d replies for %d commands (poisoned=%v)", data, replies, cmds, poisoned)
		}

		// Structured phase: fuzz-derived keys/values pipelined as
		// MSET(pairs) ; MGET(keys) ; INCRBY ctr <delta> ; MGET(keys).
		fields := bytes.Split(data, []byte{0xff})
		if len(fields) > 16 {
			fields = fields[:16]
		}
		if len(fields)%2 == 1 {
			fields = append(fields, []byte("pad"))
		}
		// Keys get a "k:" prefix so a fuzz-chosen key can never collide
		// with the INCRBY counter.
		keys := make([][]byte, 0, len(fields)/2)
		msetArgs := [][]byte{[]byte("MSET")}
		for i := 0; i < len(fields); i += 2 {
			k := append([]byte("k:"), fields[i]...)
			keys = append(keys, k)
			msetArgs = append(msetArgs, k, fields[i+1])
		}
		mgetArgs := append([][]byte{[]byte("MGET")}, keys...)
		var pad [8]byte
		copy(pad[:], data)
		delta := int64(binary.LittleEndian.Uint64(pad[:])) % 1000
		batch := AppendCommand(nil, msetArgs...)
		batch = AppendCommand(batch, mgetArgs...)
		batch = AppendCommand(batch, []byte("INCRBY"), []byte("ctr"), []byte(strconv.FormatInt(delta, 10)))
		batch = AppendCommand(batch, mgetArgs...)

		out = s.ExecuteBatch(nil, batch)
		var vals []Value
		for rest := out; len(rest) > 0; {
			v, n, err := Decode(rest)
			if err != nil {
				t.Fatalf("structured batch reply undecodable at %q", rest)
			}
			vals = append(vals, v)
			rest = rest[n:]
		}
		if len(vals) != 4 {
			t.Fatalf("structured batch: %d replies, want 4", len(vals))
		}
		if vals[0].Kind != respSimple || vals[0].Str != "OK" {
			t.Fatalf("MSET reply = %+v, want +OK", vals[0])
		}
		for _, i := range []int{1, 3} {
			if vals[i].Kind != respArray || len(vals[i].Array) != len(keys) {
				t.Fatalf("MGET reply %d = kind %q with %d elems, want array of %d", i, vals[i].Kind, len(vals[i].Array), len(keys))
			}
		}
		// Every MSET key must read back; duplicate keys resolve to the
		// LAST written value (later pair wins), so check against that.
		last := make(map[string][]byte, len(keys))
		for i := 0; i < len(fields); i += 2 {
			last["k:"+string(fields[i])] = fields[i+1]
		}
		for i, k := range keys {
			got := vals[3].Array[i]
			want := last[string(k)]
			if got.Kind != respBulk || got.Bulk == nil && len(want) > 0 || !bytes.Equal(got.Bulk, want) {
				t.Fatalf("MGET[%d] key %q = %q, want %q", i, k, got.Bulk, want)
			}
		}
		if vals[2].Kind != respInt || vals[2].Int != delta {
			t.Fatalf("INCRBY reply = %+v, want :%d", vals[2], delta)
		}
	})
}

// FuzzRESPRoundTrip drives the encoder with fuzz-derived content and
// checks decode(encode(x)) == x for commands (arrays of bulks), integers,
// and simple strings.
func FuzzRESPRoundTrip(f *testing.F) {
	for _, s := range respSeeds {
		f.Add([]byte(s))
	}
	f.Add([]byte("SET\xffkey\xffvalue"))
	f.Add(bytes.Repeat([]byte{0xff}, 9))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Command: the input split on 0xff becomes the argument vector.
		args := bytes.Split(data, []byte{0xff})
		if len(args) > 32 {
			args = args[:32]
		}
		enc := AppendCommand(nil, args...)
		v, n, err := Decode(enc)
		if err != nil || n != len(enc) {
			t.Fatalf("command round-trip: Decode(%q) = (_, %d, %v), want full %d bytes", enc, n, err, len(enc))
		}
		if v.Kind != respArray || len(v.Array) != len(args) {
			t.Fatalf("command round-trip: got kind %q with %d elements, want array of %d", v.Kind, len(v.Array), len(args))
		}
		for i, a := range args {
			got := v.Array[i].Bulk
			if got == nil {
				got = []byte{}
			}
			if !bytes.Equal(got, a) {
				t.Fatalf("command round-trip: arg %d = %q, want %q", i, got, a)
			}
		}

		// Integer: the first 8 bytes (zero-padded) as an int64.
		var pad [8]byte
		copy(pad[:], data)
		want := int64(binary.LittleEndian.Uint64(pad[:]))
		v, n, err = Decode(AppendInt(nil, want))
		if err != nil || v.Kind != respInt || v.Int != want {
			t.Fatalf("int round-trip: %d gave (%+v, %d, %v)", want, v, n, err)
		}

		// Simple string: CR/LF cannot appear inside the unescaped frame.
		s := strings.NewReplacer("\r", "", "\n", "").Replace(string(data))
		v, _, err = Decode(AppendSimple(nil, s))
		if err != nil || v.Kind != respSimple || v.Str != s {
			t.Fatalf("simple round-trip: %q gave (%+v, %v)", s, v, err)
		}
	})
}
