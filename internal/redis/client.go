package redis

import (
	"errors"
	"fmt"
	"strconv"
	"time"
)

// Client issues commands over any Conn. Not safe for concurrent use (like
// a raw Redis connection); open one per worker.
type Client struct {
	conn Conn
	buf  []byte
	out  []byte

	pipe  []byte // commands queued by Pipe* since the last Flush
	pipeN int
}

// NewClient wraps an established connection.
func NewClient(conn Conn, bufSize int) *Client {
	if bufSize <= 0 {
		bufSize = 64 << 10
	}
	return &Client{conn: conn, buf: make([]byte, bufSize)}
}

// Close closes the underlying connection.
func (c *Client) Close() { c.conn.Close() }

// roundTrip sends one command and decodes the reply.
func (c *Client) roundTrip(args ...[]byte) (Value, error) {
	c.out = AppendCommand(c.out[:0], args...)
	if err := c.conn.Send(c.out); err != nil {
		return Value{}, err
	}
	n, err := c.conn.Recv(c.buf)
	if err != nil {
		return Value{}, err
	}
	v, _, err := Decode(c.buf[:n])
	if err != nil {
		return Value{}, err
	}
	if v.Kind == respError {
		return Value{}, errors.New(v.Str)
	}
	return v, nil
}

// SendSet transmits a SET without waiting for the reply. Paired with
// FinishSet, it lets deterministic harnesses interleave the server's turn
// between the two halves (and supports pipelining generally).
func (c *Client) SendSet(key string, value []byte) error {
	c.out = AppendCommand(c.out[:0], []byte("SET"), []byte(key), value)
	return c.conn.Send(c.out)
}

// FinishSet consumes a SET's reply.
func (c *Client) FinishSet() error {
	v, err := c.recvReply()
	if err != nil {
		return err
	}
	if v.Str != "OK" {
		return fmt.Errorf("redis: unexpected SET reply %q", v.Str)
	}
	return nil
}

// SendGet transmits a GET without waiting for the reply.
func (c *Client) SendGet(key string) error {
	c.out = AppendCommand(c.out[:0], []byte("GET"), []byte(key))
	return c.conn.Send(c.out)
}

// FinishGet consumes a GET's reply.
func (c *Client) FinishGet() ([]byte, bool, error) {
	v, err := c.recvReply()
	if err != nil {
		return nil, false, err
	}
	if v.Bulk == nil {
		return nil, false, nil
	}
	return v.Bulk, true, nil
}

func (c *Client) recvReply() (Value, error) {
	n, err := c.conn.Recv(c.buf)
	if err != nil {
		return Value{}, err
	}
	v, _, err := Decode(c.buf[:n])
	if err != nil {
		return Value{}, err
	}
	if v.Kind == respError {
		return Value{}, errors.New(v.Str)
	}
	return v, nil
}

// PipeCommand queues one command without sending it. Flush transmits the
// whole queue as ONE message and collects the replies in order — one
// transport round trip for N commands, which is how the rack-shared
// serving experiments amortize fabric latency (the server executes the
// batch with ExecuteBatch).
func (c *Client) PipeCommand(args ...[]byte) {
	c.pipe = AppendCommand(c.pipe, args...)
	c.pipeN++
}

// PipeSet queues a SET (ttl 0 = no expiry).
func (c *Client) PipeSet(key string, value []byte, ttl time.Duration) {
	if ttl > 0 {
		c.PipeCommand([]byte("SET"), []byte(key), value,
			[]byte("EX"), []byte(strconv.Itoa(int(ttl.Seconds()))))
		return
	}
	c.PipeCommand([]byte("SET"), []byte(key), value)
}

// PipeGet queues a GET.
func (c *Client) PipeGet(key string) { c.PipeCommand([]byte("GET"), []byte(key)) }

// PipeMGet queues an MGET for keys; its Flush reply is one array Value.
func (c *Client) PipeMGet(keys ...string) {
	args := make([][]byte, 0, len(keys)+1)
	args = append(args, []byte("MGET"))
	for _, k := range keys {
		args = append(args, []byte(k))
	}
	c.PipeCommand(args...)
}

// PipeMSet queues an MSET of the key/value pairs.
func (c *Client) PipeMSet(pairs ...[]byte) {
	if len(pairs)%2 != 0 {
		panic("redis: PipeMSet needs key/value pairs")
	}
	args := make([][]byte, 0, len(pairs)+1)
	args = append(args, []byte("MSET"))
	args = append(args, pairs...)
	c.PipeCommand(args...)
}

// PipeIncrBy queues an INCRBY.
func (c *Client) PipeIncrBy(key string, delta int64) {
	c.PipeCommand([]byte("INCRBY"), []byte(key), []byte(strconv.FormatInt(delta, 10)))
}

// Pending returns how many commands are queued for the next Flush.
func (c *Client) Pending() int { return c.pipeN }

// Flush sends the queued pipeline and returns the replies in queue order.
// Per-command errors come back as respError Values (check v.Kind); a
// transport or framing failure returns a non-nil error and poisons the
// batch. The returned Values alias the client's receive buffer and are
// only valid until the next operation.
func (c *Client) Flush() ([]Value, error) {
	n, err := c.FlushSend()
	if err != nil {
		return nil, err
	}
	return c.FlushRecv(n)
}

// FlushSend transmits the queued pipeline without waiting for replies,
// returning how many commands were sent. Deterministic harnesses use the
// FlushSend/FlushRecv split to run the server's turn in between.
func (c *Client) FlushSend() (int, error) {
	n := c.pipeN
	if n == 0 {
		return 0, nil
	}
	err := c.conn.Send(c.pipe)
	c.pipe = c.pipe[:0]
	c.pipeN = 0
	if err != nil {
		return 0, err
	}
	return n, nil
}

// FlushRecv receives one batched reply message and decodes exactly n
// replies from it.
func (c *Client) FlushRecv(n int) ([]Value, error) {
	if n == 0 {
		return nil, nil
	}
	got, err := c.conn.Recv(c.buf)
	if err != nil {
		return nil, err
	}
	replies := make([]Value, 0, n)
	rest := c.buf[:got]
	for len(rest) > 0 {
		v, used, err := Decode(rest)
		if err != nil {
			return nil, err
		}
		replies = append(replies, v)
		rest = rest[used:]
	}
	if len(replies) != n {
		return nil, fmt.Errorf("redis: pipeline sent %d commands, got %d replies", n, len(replies))
	}
	return replies, nil
}

// Ping checks the connection.
func (c *Client) Ping() error {
	v, err := c.roundTrip([]byte("PING"))
	if err != nil {
		return err
	}
	if v.Str != "PONG" {
		return fmt.Errorf("redis: unexpected PING reply %q", v.Str)
	}
	return nil
}

// Set stores key -> value with optional TTL (0 = none).
func (c *Client) Set(key string, value []byte, ttl time.Duration) error {
	args := [][]byte{[]byte("SET"), []byte(key), value}
	if ttl > 0 {
		args = append(args, []byte("EX"), []byte(fmt.Sprintf("%d", int(ttl.Seconds()))))
	}
	v, err := c.roundTrip(args...)
	if err != nil {
		return err
	}
	if v.Str != "OK" {
		return fmt.Errorf("redis: unexpected SET reply %q", v.Str)
	}
	return nil
}

// Get fetches key; ok is false on a miss.
func (c *Client) Get(key string) ([]byte, bool, error) {
	v, err := c.roundTrip([]byte("GET"), []byte(key))
	if err != nil {
		return nil, false, err
	}
	if v.Bulk == nil {
		return nil, false, nil
	}
	return v.Bulk, true, nil
}

// Del removes keys, returning how many existed.
func (c *Client) Del(keys ...string) (int64, error) {
	args := [][]byte{[]byte("DEL")}
	for _, k := range keys {
		args = append(args, []byte(k))
	}
	v, err := c.roundTrip(args...)
	return v.Int, err
}

// Incr increments the integer at key.
func (c *Client) Incr(key string) (int64, error) {
	v, err := c.roundTrip([]byte("INCR"), []byte(key))
	return v.Int, err
}

// IncrBy adds delta to the integer at key.
func (c *Client) IncrBy(key string, delta int64) (int64, error) {
	v, err := c.roundTrip([]byte("INCRBY"), []byte(key),
		[]byte(strconv.FormatInt(delta, 10)))
	return v.Int, err
}

// MGet fetches keys in one round trip (nil = miss).
func (c *Client) MGet(keys ...string) ([][]byte, error) {
	args := make([][]byte, 0, len(keys)+1)
	args = append(args, []byte("MGET"))
	for _, k := range keys {
		args = append(args, []byte(k))
	}
	v, err := c.roundTrip(args...)
	if err != nil {
		return nil, err
	}
	if v.Kind != respArray {
		return nil, fmt.Errorf("redis: unexpected MGET reply kind %q", v.Kind)
	}
	vals := make([][]byte, len(v.Array))
	for i, e := range v.Array {
		vals[i] = e.Bulk
	}
	return vals, nil
}

// MSet stores the key/value pairs in one round trip.
func (c *Client) MSet(pairs ...[]byte) error {
	if len(pairs) == 0 || len(pairs)%2 != 0 {
		return errors.New("redis: MSet needs key/value pairs")
	}
	args := make([][]byte, 0, len(pairs)+1)
	args = append(args, []byte("MSET"))
	args = append(args, pairs...)
	v, err := c.roundTrip(args...)
	if err != nil {
		return err
	}
	if v.Str != "OK" {
		return fmt.Errorf("redis: unexpected MSET reply %q", v.Str)
	}
	return nil
}

// Exists reports how many of keys exist.
func (c *Client) Exists(keys ...string) (int64, error) {
	args := [][]byte{[]byte("EXISTS")}
	for _, k := range keys {
		args = append(args, []byte(k))
	}
	v, err := c.roundTrip(args...)
	return v.Int, err
}

// DBSize returns the server's key count.
func (c *Client) DBSize() (int64, error) {
	v, err := c.roundTrip([]byte("DBSIZE"))
	return v.Int, err
}
