package redis

import (
	"strconv"
	"sync"
	"time"
)

// Store is the single-node keyspace: string keys to byte values with
// optional expiry, guarded by a mutex exactly like real Redis's
// single-threaded command execution (one logical executor). Its expiry
// clock is NODE-LOCAL — fine for one node, but a rack serving one
// dataset needs the shared-virtual-clock TTLs of RackStore, where
// expiry is the same event on every node.
type Store struct {
	mu      sync.Mutex
	data    map[string][]byte
	expires map[string]time.Time
	clock   func() time.Time
}

// NewStore creates an empty keyspace.
func NewStore() *Store {
	return &Store{
		data:    make(map[string][]byte),
		expires: make(map[string]time.Time),
		clock:   time.Now,
	}
}

// SetClock overrides the expiry clock (tests).
func (s *Store) SetClock(fn func() time.Time) { s.clock = fn }

func (s *Store) expiredLocked(key string) bool {
	exp, ok := s.expires[key]
	if !ok {
		return false
	}
	if s.clock().After(exp) {
		delete(s.data, key)
		delete(s.expires, key)
		return true
	}
	return false
}

// Set stores key -> value with an optional TTL (0 means no expiry). The
// error is always nil; the signature matches Backend, where the
// rack-shared implementation can reject oversized entries.
func (s *Store) Set(key string, value []byte, ttl time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]byte, len(value))
	copy(cp, value)
	s.data[key] = cp
	if ttl > 0 {
		s.expires[key] = s.clock().Add(ttl)
	} else {
		delete(s.expires, key)
	}
	return nil
}

// Get returns the value for key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.expiredLocked(key) {
		return nil, false
	}
	v, ok := s.data[key]
	return v, ok
}

// Del removes keys, returning how many existed.
func (s *Store) Del(keys ...string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, k := range keys {
		if s.expiredLocked(k) {
			continue
		}
		if _, ok := s.data[k]; ok {
			delete(s.data, k)
			delete(s.expires, k)
			n++
		}
	}
	return n
}

// Exists reports how many of the keys exist.
func (s *Store) Exists(keys ...string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, k := range keys {
		if s.expiredLocked(k) {
			continue
		}
		if _, ok := s.data[k]; ok {
			n++
		}
	}
	return n
}

// MGet returns the values for keys in order (nil = miss) under one lock
// acquisition, matching the rack store's batched read.
func (s *Store) MGet(keys ...string) [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	vals := make([][]byte, len(keys))
	for i, k := range keys {
		if s.expiredLocked(k) {
			continue
		}
		vals[i] = s.data[k]
	}
	return vals
}

// Incr atomically increments the integer stored at key, returning the new
// value; missing keys start at 0.
func (s *Store) Incr(key string) (int64, error) { return s.IncrBy(key, 1) }

// IncrBy atomically adds delta to the integer stored at key, returning
// the new value.
func (s *Store) IncrBy(key string, delta int64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expiredLocked(key)
	cur := int64(0)
	if v, ok := s.data[key]; ok {
		parsed, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			return 0, err
		}
		cur = parsed
	}
	cur += delta
	s.data[key] = []byte(strconv.FormatInt(cur, 10))
	return cur, nil
}

// Expire sets a fresh TTL on key, reporting whether it existed. A
// non-positive ttl deletes the key immediately, as in real Redis.
func (s *Store) Expire(key string, ttl time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.expiredLocked(key) {
		return false
	}
	if _, ok := s.data[key]; !ok {
		return false
	}
	if ttl <= 0 {
		delete(s.data, key)
		delete(s.expires, key)
		return true
	}
	s.expires[key] = s.clock().Add(ttl)
	return true
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}
