package devshare

import (
	"bytes"
	"testing"

	"flacos/internal/fabric"
	"flacos/internal/fs"
)

func rack(t *testing.T, nodes int) *fabric.Fabric {
	t.Helper()
	return fabric.New(fabric.Config{GlobalSize: 8 << 20, Nodes: nodes, Latency: fabric.DefaultLatency()})
}

func TestGlobalNamespace(t *testing.T) {
	r := NewRegistry()
	dev := fs.NewMemDev(50_000, 60_000)
	if _, err := r.Register("nvme0", 0, dev); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("nvme0", 1, dev); err == nil {
		t.Fatal("duplicate name should fail")
	}
	if _, err := r.Open("nvme0"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Open("nvme9"); err == nil {
		t.Fatal("unknown device should fail")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "nvme0" {
		t.Fatalf("names = %v", names)
	}
}

func TestSharedDeviceReachableFromEveryNode(t *testing.T) {
	f := rack(t, 2)
	r := NewRegistry()
	sd, _ := r.Register("nvme0", 0, fs.NewMemDev(50_000, 60_000))

	page := bytes.Repeat([]byte{0x5A}, fs.PageSize)
	// Remote node writes; owner node reads the same data back.
	sd.WritePage(f.Node(1), 1, 0, page)
	got := make([]byte, fs.PageSize)
	if !sd.ReadPage(f.Node(0), 1, 0, got) || !bytes.Equal(got, page) {
		t.Fatal("cross-node device data mismatch")
	}
	local, remote := sd.Stats()
	if local != 1 || remote != 1 {
		t.Fatalf("stats local=%d remote=%d", local, remote)
	}
}

func TestRemoteAccessCostsMore(t *testing.T) {
	f := rack(t, 2)
	r := NewRegistry()
	sd, _ := r.Register("nvme0", 0, fs.NewMemDev(50_000, 60_000))
	buf := make([]byte, fs.PageSize)
	sd.WritePage(f.Node(0), 1, 0, buf)

	owner, remote := f.Node(0), f.Node(1)
	ownerBefore := owner.VirtualNS()
	sd.ReadPage(owner, 1, 0, buf)
	ownerCost := owner.VirtualNS() - ownerBefore

	remoteBefore := remote.VirtualNS()
	sd.ReadPage(remote, 1, 0, buf)
	remoteCost := remote.VirtualNS() - remoteBefore

	if remoteCost <= ownerCost {
		t.Fatalf("remote access (%d ns) should cost more than local (%d ns)", remoteCost, ownerCost)
	}
}

func TestMultiRailStripingAndRoundTrip(t *testing.T) {
	f := rack(t, 2)
	r := NewRegistry()
	var rails []*SharedDev
	for i := 0; i < 4; i++ {
		sd, _ := r.Register(string(rune('a'+i)), i%2, fs.NewMemDev(0, 0))
		rails = append(rails, sd)
	}
	mr := NewMultiRail(rails, 50_000)
	if mr.Rails() != 4 {
		t.Fatalf("rails = %d", mr.Rails())
	}
	const pages = 8
	data := make([]byte, pages*fs.PageSize)
	for i := range data {
		data[i] = byte(i / fs.PageSize)
	}
	n := f.Node(0)
	mr.WritePages(n, 1, 0, pages, data)
	got := make([]byte, pages*fs.PageSize)
	if !mr.ReadPages(n, 1, 0, pages, got) || !bytes.Equal(got, data) {
		t.Fatal("multirail round trip mismatch")
	}
	// Each page must actually be on its p%4 rail.
	one := make([]byte, fs.PageSize)
	for p := uint32(0); p < pages; p++ {
		if !rails[p%4].dev.ReadPage(n, 1, p, one) {
			t.Fatalf("page %d missing from rail %d", p, p%4)
		}
		if one[0] != byte(p) {
			t.Fatalf("page %d content %d on rail %d", p, one[0], p%4)
		}
	}
}

func TestMultiRailParallelSpeedup(t *testing.T) {
	f := rack(t, 1)
	n := f.Node(0)
	const railLat = 50_000
	mkRails := func(count int) *MultiRail {
		r := NewRegistry()
		var rails []*SharedDev
		for i := 0; i < count; i++ {
			sd, _ := r.Register(string(rune('a'+i)), 0, fs.NewMemDev(0, 0))
			rails = append(rails, sd)
		}
		return NewMultiRail(rails, railLat)
	}
	const pages = 16
	data := make([]byte, pages*fs.PageSize)

	single := mkRails(1)
	before := n.VirtualNS()
	single.WritePages(n, 1, 0, pages, data)
	singleCost := n.VirtualNS() - before

	quad := mkRails(4)
	before = n.VirtualNS()
	quad.WritePages(n, 1, 0, pages, data)
	quadCost := n.VirtualNS() - before

	// 4 rails should be ~4x faster on the device-latency component.
	ratio := float64(singleCost) / float64(quadCost)
	if ratio < 3 || ratio > 5 {
		t.Fatalf("4-rail speedup = %.2fx (single %d, quad %d)", ratio, singleCost, quadCost)
	}
}

func TestMultiRailRejectsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty rail set should panic")
		}
	}()
	NewMultiRail(nil, 0)
}
