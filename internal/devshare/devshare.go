// Package devshare implements the paper's §5 "device sharing and
// aggregation" future-work items:
//
//   - Global naming: every device exports a single rack-wide name; any
//     node opens "nvme0" and gets the same device.
//   - Device sharing: a device is reachable from every node. Non-owner
//     access pays a forwarding cost (doorbell + descriptor + the data's
//     trip across the fabric — the paper wants DMA buffers in global
//     memory, which is what makes this possible at all).
//   - Device aggregation: a multi-rail group stripes pages across several
//     devices so one stream uses all their bandwidth in parallel, like
//     multi-rail RDMA.
package devshare

import (
	"fmt"
	"sync"
	"sync/atomic"

	"flacos/internal/fabric"
	"flacos/internal/fs"
)

// forwardNS is the cost of handing an I/O request to a remote device
// owner: doorbell, descriptor fetch, completion notification.
const forwardNS = 2000

// remoteDataPerPageNS is the extra fabric cost of moving one page between
// the device's node and the requester (DMA into global memory + pull).
const remoteDataPerPageNS = 1800

// SharedDev is one rack-visible device.
type SharedDev struct {
	Name  string
	Owner int
	dev   fs.BlockDev

	localOps  atomic.Uint64
	remoteOps atomic.Uint64
}

// ReadPage reads through the shared device from any node.
func (d *SharedDev) ReadPage(n *fabric.Node, fileID uint64, page uint32, buf []byte) bool {
	d.charge(n)
	return d.dev.ReadPage(n, fileID, page, buf)
}

// WritePage writes through the shared device from any node.
func (d *SharedDev) WritePage(n *fabric.Node, fileID uint64, page uint32, data []byte) {
	d.charge(n)
	d.dev.WritePage(n, fileID, page, data)
}

func (d *SharedDev) charge(n *fabric.Node) {
	if n.ID() == d.Owner {
		d.localOps.Add(1)
		return
	}
	d.remoteOps.Add(1)
	n.ChargeNS(forwardNS + remoteDataPerPageNS)
}

// Stats returns local and remote operation counts.
func (d *SharedDev) Stats() (local, remote uint64) {
	return d.localOps.Load(), d.remoteOps.Load()
}

// Registry is the rack's single device namespace (§5's "all nodes have the
// same block namespace").
type Registry struct {
	mu   sync.Mutex
	devs map[string]*SharedDev
}

// NewRegistry creates an empty namespace.
func NewRegistry() *Registry { return &Registry{devs: make(map[string]*SharedDev)} }

// Register exports dev rack-wide under name, owned by node owner.
func (r *Registry) Register(name string, owner int, dev fs.BlockDev) (*SharedDev, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.devs[name]; dup {
		return nil, fmt.Errorf("devshare: device %q already registered", name)
	}
	sd := &SharedDev{Name: name, Owner: owner, dev: dev}
	r.devs[name] = sd
	return sd, nil
}

// Open resolves a rack-wide device name from any node.
func (r *Registry) Open(name string) (*SharedDev, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sd, ok := r.devs[name]
	if !ok {
		return nil, fmt.Errorf("devshare: no device %q", name)
	}
	return sd, nil
}

// Names lists the namespace.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.devs))
	for n := range r.devs {
		out = append(out, n)
	}
	return out
}

// MultiRail aggregates several shared devices into one logical device:
// page p lives on rail p%R, and batched transfers proceed on all rails in
// parallel, so a batch of k pages costs what ceil(k/R) sequential pages
// cost on the slowest rail — the multi-rail bandwidth aggregation of §5.
//
// The rails' own per-op latency should be folded into railLatencyNS (use
// zero-latency BlockDevs underneath); MultiRail charges the modeled
// parallel cost itself.
type MultiRail struct {
	rails         []*SharedDev
	railLatencyNS int
}

// NewMultiRail groups rails with the given per-page rail latency.
func NewMultiRail(rails []*SharedDev, railLatencyNS int) *MultiRail {
	if len(rails) == 0 {
		panic("devshare: MultiRail needs at least one rail")
	}
	return &MultiRail{rails: rails, railLatencyNS: railLatencyNS}
}

// Rails returns the number of rails.
func (m *MultiRail) Rails() int { return len(m.rails) }

func (m *MultiRail) railFor(page uint32) *SharedDev {
	return m.rails[int(page)%len(m.rails)]
}

// WritePages stripes count pages starting at startPage across the rails.
// data holds the pages back to back.
func (m *MultiRail) WritePages(n *fabric.Node, fileID uint64, startPage uint32, count int, data []byte) {
	for i := 0; i < count; i++ {
		p := startPage + uint32(i)
		m.railFor(p).dev.WritePage(n, fileID, p, data[i*fs.PageSize:(i+1)*fs.PageSize])
	}
	m.chargeBatch(n, count)
}

// ReadPages gathers count pages starting at startPage from the rails into
// buf, charging the parallel (per-rail pipelined) cost.
func (m *MultiRail) ReadPages(n *fabric.Node, fileID uint64, startPage uint32, count int, buf []byte) bool {
	ok := true
	for i := 0; i < count; i++ {
		p := startPage + uint32(i)
		if !m.railFor(p).dev.ReadPage(n, fileID, p, buf[i*fs.PageSize:(i+1)*fs.PageSize]) {
			ok = false
		}
	}
	m.chargeBatch(n, count)
	return ok
}

// chargeBatch charges the batch's parallel completion time: the deepest
// rail's queue times the per-page rail latency.
func (m *MultiRail) chargeBatch(n *fabric.Node, count int) {
	deepest := (count + len(m.rails) - 1) / len(m.rails)
	n.ChargeNS(deepest * m.railLatencyNS)
}
