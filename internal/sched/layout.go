package sched

import (
	"time"

	"flacos/internal/fabric"
)

// Task slot states. A slot cycles Free -> Init (submitter fills words) ->
// Queued -> Running -> Free(gen+1); a reclaimed task detours
// Running -> Init(attempt+1) -> Queued without changing generation.
const (
	stFree    = 0
	stInit    = 1
	stQueued  = 2
	stRunning = 3
)

// The state word packs gen(32) | attempt(16) | owner(8) | state(8). The
// generation advances once per slot lifecycle (at completion), so a
// Handle's generation comparison tells waiters when their task is done
// even after the slot is reused; the attempt counter advances on every
// lease reclaim so a stale runner's completion CAS can never succeed
// against a re-dispatched incarnation of the same task.
func packState(gen, attempt uint64, owner int, state uint64) uint64 {
	return gen<<32 | (attempt&0xffff)<<16 | uint64(owner&0xff)<<8 | state&0xff
}

func stGen(w uint64) uint64     { return w >> 32 }
func stAttempt(w uint64) uint64 { return (w >> 16) & 0xffff }
func stOwner(w uint64) int      { return int((w >> 8) & 0xff) }
func stState(w uint64) uint64   { return w & 0xff }

// noPreference is the preferred-node byte meaning "run anywhere".
const noPreference = 0xff

// Slot layout: one cache line per task so fabric atomics on different
// tasks never share a line. Words:
//
//	w0 state      gen|attempt|owner|state (all transitions via CAS)
//	w1 lease      owner's heartbeat value at claim time
//	w2 fn         registered function index
//	w3 arg0       first argument (often a GPtr to task state)
//	w4 arg1       second argument
//	w5 routing    assigned<<8 | preferred (bytes)
//	w6 enqueueNS  wall-clock ns at (re-)queue, for dispatch latency
//	w7 doneCell   optional GPtr FAA'd exactly once at completion
const (
	slotBytes = fabric.LineSize

	offState   = 0
	offLease   = 8
	offFn      = 16
	offArg0    = 24
	offArg1    = 32
	offRouting = 40
	offEnqueue = 48
	offCell    = 56
)

// Load-board layout: one line per node. w0 is the node's load (tasks
// queued for or running on it), w1 its heartbeat (lease renewal beat).
const (
	boardBytes = fabric.LineSize
	offLoad    = 0
	offBeat    = 8
)

// Global counter line words.
const (
	offSubmitted = 0
	offCompleted = 8
	offQueuedCnt = 16
)

func (s *Scheduler) slotG(i uint64) fabric.GPtr  { return s.tableG.Add(i * slotBytes) }
func (s *Scheduler) stateG(i uint64) fabric.GPtr { return s.slotG(i).Add(offState) }
func (s *Scheduler) leaseG(i uint64) fabric.GPtr { return s.slotG(i).Add(offLease) }
func (s *Scheduler) fnG(i uint64) fabric.GPtr    { return s.slotG(i).Add(offFn) }
func (s *Scheduler) arg0G(i uint64) fabric.GPtr  { return s.slotG(i).Add(offArg0) }
func (s *Scheduler) arg1G(i uint64) fabric.GPtr  { return s.slotG(i).Add(offArg1) }
func (s *Scheduler) routeG(i uint64) fabric.GPtr { return s.slotG(i).Add(offRouting) }
func (s *Scheduler) enqG(i uint64) fabric.GPtr   { return s.slotG(i).Add(offEnqueue) }
func (s *Scheduler) cellG(i uint64) fabric.GPtr  { return s.slotG(i).Add(offCell) }

func (s *Scheduler) loadG(node int) fabric.GPtr {
	return s.boardG.Add(uint64(node)*boardBytes + offLoad)
}
func (s *Scheduler) beatG(node int) fabric.GPtr {
	return s.boardG.Add(uint64(node)*boardBytes + offBeat)
}

func (s *Scheduler) submittedG() fabric.GPtr { return s.ctrG.Add(offSubmitted) }
func (s *Scheduler) completedG() fabric.GPtr { return s.ctrG.Add(offCompleted) }
func (s *Scheduler) queuedG() fabric.GPtr    { return s.ctrG.Add(offQueuedCnt) }

func packRoute(assigned, preferred int) uint64 {
	return uint64(assigned&0xff)<<8 | uint64(preferred&0xff)
}

func routeAssigned(w uint64) int  { return int((w >> 8) & 0xff) }
func routePreferred(w uint64) int { return int(w & 0xff) }

// nowNS is the wall clock used for dispatch-latency instrumentation. It
// is measurement only: no scheduling decision depends on it.
func nowNS() uint64 { return uint64(time.Now().UnixNano()) }

func latencyNS(from, to uint64) float64 {
	if to <= from {
		return 0
	}
	return float64(to - from)
}
