package sched

import (
	"flacos/internal/fabric"
)

// This file is the scheduler's membership integration. The scheduler
// predates the membership layer and keeps working without it (crash
// checks + lease keeper), but when core wires a membership table in:
//
//   - SetLiveness installs the table's host-side liveness oracle, so
//     placement stops routing to nodes the rack has declared dead long
//     before their leases would expire;
//   - SetNodeServing gates a node's pull paths off while it is joining
//     (hot-plug: present on the fabric, not yet resynced);
//   - ReclaimNode reclaims every lease a dead node holds in ONE sweep,
//     driven by the membership Dead event, instead of waiting for each
//     lease to expire individually under the keeper's probe cadence.

// SetLiveness installs a liveness oracle consulted by every placement
// decision (Submit targeting, SubmitToSpace, PickNode, steal grace). A
// node is placeable only if it is not crashed AND the oracle approves.
// A nil oracle (the default) restores crash-check-only behavior. The
// oracle runs on hot paths: it must be a cheap host-side read, like
// membership.(*Table).Alive.
func (s *Scheduler) SetLiveness(fn func(int) bool) {
	if fn == nil {
		s.liveness.Store(nil)
		return
	}
	s.liveness.Store(&fn)
}

// SetNodeServing gates node id's work-pulling paths. While not serving,
// the node's workers run only the node-private local queue: they do not
// pop announcements, scan the table, or steal — the state of a
// hot-plugged node that has joined the fabric but not yet activated.
// Placement likewise skips non-serving nodes. Nodes default to serving.
func (s *Scheduler) SetNodeServing(id int, serving bool) {
	if id < 0 || id >= len(s.notServing) {
		return
	}
	s.notServing[id].Store(!serving)
	if serving {
		s.wake(id)
	}
}

// nodeAlive reports whether node id is up: not crashed, and not
// declared dead by the membership oracle if one is installed.
func (s *Scheduler) nodeAlive(id int) bool {
	if id < 0 || id >= s.fab.NumNodes() || s.fab.Node(id).Crashed() {
		return false
	}
	if fn := s.liveness.Load(); fn != nil {
		return (*fn)(id)
	}
	return true
}

// placeable reports whether node id may receive new work.
func (s *Scheduler) placeable(id int) bool {
	return s.nodeAlive(id) && !s.notServing[id].Load()
}

// ReclaimNode reclaims every lease node dead currently holds: each
// Running slot owned by it is detoured through Init with a bumped
// attempt (fencing the dead owner's completion CAS) and re-queued on
// node from. It is the membership Dead event's recovery hook — one
// detection, all leases at once — and returns how many were reclaimed.
// Idempotent: a second sweep finds nothing Running under that owner.
// The keeper's per-lease expiry stays on as the backstop for racks
// running without a membership table.
func (s *Scheduler) ReclaimNode(from *fabric.Node, dead int) int {
	if dead < 0 || dead >= s.fab.NumNodes() {
		return 0
	}
	reclaimed := 0
	for i := uint64(0); i < s.cfg.TableCap; i++ {
		w := from.AtomicLoad64(s.stateG(i))
		if stState(w) != stRunning || stOwner(w) != dead {
			continue
		}
		before := s.reclaimed.Load()
		s.reclaim(from, from.ID(), i, w)
		if s.reclaimed.Load() > before {
			reclaimed++
		}
	}
	return reclaimed
}
