package sched

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/trace"
)

// TestLeaseExpiryRacesLateCompletion drives the exact interleaving the
// attempt-bump fence exists for, deterministically: a runner claims a
// task and stalls mid-execution; a keeper declares the lease expired and
// re-queues the task (attempt+1); the re-dispatched attempt completes;
// and only THEN does the original runner wake up and try to publish its
// own completion. The stale CAS must fail: the DoneCell increments
// exactly once, the completed counter moves exactly once, and the trace
// timeline shows the full story — two dispatches, one lease expiry, one
// completion.
func TestLeaseExpiryRacesLateCompletion(t *testing.T) {
	f := fabric.New(fabric.Config{GlobalSize: 64 << 20, Nodes: 2, CacheCapacityLines: -1})
	rec := trace.New(f, trace.Config{RingCap: 1 << 10})
	// The real keepers must not fire: this test IS the keeper, calling
	// reclaim at the chosen moment.
	s := New(f, Config{
		TableCap:       8,
		WorkersPerNode: 2,
		ReclaimTick:    time.Hour,
		ProbeRounds:    1 << 30,
	})
	s.SetTrace(rec)

	var calls atomic.Int32
	block := make(chan struct{})     // holds the first attempt mid-task
	unblocked := make(chan struct{}) // the first attempt woke back up
	entered := make(chan uint64, 4)  // reports each attempt's entry
	fn := s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
		c := calls.Add(1)
		entered <- uint64(n.ID())
		if c == 1 {
			<-block // stall: the lease will expire out from under us
			close(unblocked)
		}
	})
	s.Start()
	defer s.Stop()

	cell := f.Reserve(fabric.LineSize, fabric.LineSize)
	sub := f.Node(0)
	h := s.Submit(sub, Task{Fn: fn, Arg0: 0, Preferred: 0, DoneCell: cell})

	// Wait until attempt 0 is inside the function, then freeze-frame its
	// state word: Running, attempt 0, whoever claimed it.
	<-entered
	w := sub.AtomicLoad64(s.stateG(h.Slot))
	if stState(w) != stRunning || stAttempt(w) != 0 || stGen(w) != h.Gen {
		t.Fatalf("unexpected state word before reclaim: state=%d owner=%d attempt=%d gen=%d",
			stState(w), stOwner(w), stAttempt(w), stGen(w))
	}
	owner := stOwner(w)

	// The other node's "keeper" declares the lease expired while the
	// owner is in fact alive and mid-task — the false-suspicion case the
	// fence must survive.
	keeperID := 1 - owner
	s.reclaim(f.Node(keeperID), keeperID, h.Slot, w)
	if got := s.reclaimed.Load(); got != 1 {
		t.Fatalf("reclaim did not land (reclaimed=%d)", got)
	}

	// The re-queued attempt (attempt 1) runs to completion while the
	// original runner is still blocked.
	<-entered
	if !s.Wait(sub, h) {
		t.Fatal("Wait returned false")
	}
	if got := sub.AtomicLoad64(cell); got != 1 {
		t.Fatalf("DoneCell = %d after re-dispatched completion, want 1", got)
	}
	if done := sub.AtomicLoad64(s.completedG()); done != 1 {
		t.Fatalf("completed counter = %d, want 1", done)
	}

	// Now release the stale runner. Its completion CAS carries the old
	// (gen, attempt 0) word; the attempt bump must fence it out. Hold the
	// assertion window open long enough for the stale CAS to have fired.
	close(block)
	<-unblocked
	for i := 0; i < 30; i++ {
		if got := sub.AtomicLoad64(cell); got != 1 {
			t.Fatalf("DoneCell = %d after stale runner woke, want 1 (double completion!)", got)
		}
		if got := sub.AtomicLoad64(s.completedG()); got != 1 {
			t.Fatalf("completed counter = %d after stale runner woke, want 1", got)
		}
		time.Sleep(time.Millisecond)
	}
	if st := s.StatsFrom(sub); st.Reclaimed != 1 {
		t.Fatalf("Stats.Reclaimed = %d, want 1", st.Reclaimed)
	}
	if lg := s.ReclaimLog(); len(lg) != 1 || !strings.Contains(lg[0], fmt.Sprintf("owner=n%d", owner)) {
		t.Fatalf("ReclaimLog = %q, want one entry blaming n%d", lg, owner)
	}

	// The flight recorder must tell the same story: two dispatches of the
	// slot (attempts 0 and 1), one lease expiry naming the old owner, and
	// exactly one completion — the stale attempt leaves no trace event.
	rt := rec.Collector().Snapshot(sub, false)
	var dispatches, expiries, completes int
	for _, ev := range rt.Events {
		if ev.Sub != trace.SubSched || ev.Arg0 != h.Slot {
			continue
		}
		switch ev.Kind {
		case trace.KDispatch:
			dispatches++
		case trace.KLeaseExpiry:
			expiries++
			if int(ev.Arg1) != owner {
				t.Fatalf("lease expiry blames node %d, want %d", ev.Arg1, owner)
			}
			if int(ev.Node) != keeperID {
				t.Fatalf("lease expiry emitted by node %d, want keeper node %d", ev.Node, keeperID)
			}
		case trace.KComplete:
			completes++
		}
	}
	if dispatches != 2 || expiries != 1 || completes != 1 {
		t.Fatalf("trace shows %d dispatches, %d expiries, %d completions; want 2, 1, 1\n%s",
			dispatches, expiries, completes, rt.Timeline())
	}
}
