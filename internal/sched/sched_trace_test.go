package sched

import (
	"strings"
	"testing"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/trace"
)

// TestTraceEventsOnHotPaths: with a recorder attached, every dispatched
// task leaves a Begin(KDispatch)/End(KComplete) pair on the worker
// node's ring, and a crash-driven reclaim leaves a KLeaseExpiry event
// plus a human-readable "vt=" line in the reclaim log.
func TestTraceEventsOnHotPaths(t *testing.T) {
	f := testFabric(2)
	rec := trace.New(f, trace.Config{RingCap: 1 << 12})
	s := testSched(t, f, Config{
		Policy: PolicyLocality, LocalitySlack: 1 << 40,
		ProbeRounds: 3, ReclaimTick: 100 * time.Microsecond, IdleTick: 100 * time.Microsecond,
		StealGrace: 50 * time.Millisecond,
	})
	s.SetTrace(rec)
	const tasks = 8
	base := cells(f, tasks)
	started := f.Reserve(8, fabric.LineSize)
	fn := s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
		n.Add64(fabric.GPtr(started), 1)
		time.Sleep(500 * time.Microsecond)
		n.Load64(fabric.GPtr(arg0))
	})
	s.Start()

	n0 := f.Node(0)
	for i := uint64(0); i < tasks; i++ {
		s.Submit(n0, Task{Fn: fn, Arg0: uint64(base), Preferred: 1, DoneCell: base.Add(i * 8)})
	}
	for n0.AtomicLoad64(started) == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	f.Node(1).Crash()
	deadline := time.Now().Add(10 * time.Second)
	for s.StatsFrom(n0).Reclaimed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("reclaimer never fired")
		}
		time.Sleep(100 * time.Microsecond)
	}
	f.Node(1).Restart()
	s.RebootNode(1)
	if !s.Drain(n0) {
		t.Fatal("Drain aborted")
	}

	snap := rec.Collector().Snapshot(n0, false)
	counts := map[trace.Kind]int{}
	for _, e := range snap.Events {
		if e.Sub == trace.SubSched {
			counts[e.Kind]++
		}
	}
	if counts[trace.KDispatch] < tasks {
		t.Errorf("dispatch events=%d, want >= %d", counts[trace.KDispatch], tasks)
	}
	if counts[trace.KComplete] != tasks {
		t.Errorf("complete events=%d, want exactly %d (completion is exactly-once)", counts[trace.KComplete], tasks)
	}
	if counts[trace.KLeaseExpiry] == 0 {
		t.Error("no lease-expiry event despite a reclaim")
	}
	if snap.TotalDropped() != 0 {
		t.Errorf("dropped %d events at ring cap %d", snap.TotalDropped(), rec.Cap())
	}

	log := s.ReclaimLog()
	if len(log) == 0 {
		t.Fatal("reclaim log is empty despite a reclaim")
	}
	// Under heavy instrumentation the keeper may also falsely suspect a
	// live node (the fence makes that benign), so only require that every
	// line is well-formed and at least one blames the node that crashed.
	blamedCrashed := false
	for _, line := range log {
		if !strings.Contains(line, "vt=") || !strings.Contains(line, "owner=n") {
			t.Errorf("reclaim log line %q missing vt=/owner fields", line)
		}
		if strings.Contains(line, "owner=n1") {
			blamedCrashed = true
		}
	}
	if !blamedCrashed {
		t.Errorf("no reclaim log line blames crashed node n1: %q", log)
	}
}

// TestTraceStealEvent: a task whose preferred node never claims it is
// stolen, and the thief's ring records the KSteal with the original
// assignee in arg1.
func TestTraceStealEvent(t *testing.T) {
	f := testFabric(2)
	rec := trace.New(f, trace.Config{RingCap: 1 << 10})
	s := testSched(t, f, Config{
		Policy: PolicyLocality, LocalitySlack: 1 << 40, WorkersPerNode: 1,
		IdleTick: 100 * time.Microsecond, StealGrace: 1 * time.Microsecond,
	})
	s.SetTrace(rec)
	release := make(chan struct{})
	blocker := s.Register(func(n *fabric.Node, arg0, arg1 uint64) { <-release })
	fn := s.Register(func(n *fabric.Node, arg0, arg1 uint64) {})
	s.Start()
	n0 := f.Node(0)
	// Pin node 1's only worker on a blocker, then queue work assigned to
	// node 1: with a tiny steal grace, node 0 must steal it.
	bh := s.Submit(n0, Task{Fn: blocker, Preferred: 1})
	for i := 0; i < 4; i++ {
		s.Submit(n0, Task{Fn: fn, Preferred: 1})
	}
	snapDeadline := time.Now().Add(10 * time.Second)
	for {
		steals := s.StatsFrom(n0).Stolen
		if steals > 0 {
			break
		}
		if time.Now().After(snapDeadline) {
			break // let the assertions below report what happened
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	if !s.Wait(n0, bh) || !s.Drain(n0) {
		t.Fatal("Drain aborted")
	}
	snap := rec.Collector().Snapshot(n0, false)
	steals := 0
	for _, e := range snap.Events {
		if e.Sub == trace.SubSched && e.Kind == trace.KSteal {
			steals++
			if e.Node != 0 || e.Arg1 != 1 {
				t.Errorf("steal event node=%d arg1=%d, want thief=0 assignee=1", e.Node, e.Arg1)
			}
		}
	}
	if steals == 0 {
		t.Error("no steal events recorded")
	}
}
