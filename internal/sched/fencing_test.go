package sched

import (
	"sync"
	"testing"

	"flacos/internal/fabric"
)

// Zombie fencing, deterministically: a node the rack declared Dead is
// still executing a task when ReclaimNode (the membership Dead hook)
// sweeps its leases. The attempt bump must fence the zombie's
// completion CAS so the re-dispatched attempt is the only one that
// counts — exactly-once even though both incarnations run to the end.
func TestReclaimNodeFencesZombieCompletion(t *testing.T) {
	f := fabric.New(fabric.Config{GlobalSize: 8 << 20, Nodes: 2})
	s := New(f, Config{})
	// No Start(): every claim in this test is explicit, so the interleaving
	// is exact, not scheduled.

	release := make(chan struct{})
	running := make(chan struct{})
	var mu sync.Mutex
	runs := 0
	fn := s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
		mu.Lock()
		runs++
		first := runs == 1
		mu.Unlock()
		if first {
			close(running)
			<-release // the zombie hangs here across its own death
		}
	})

	n0, n1 := f.Node(0), f.Node(1)
	cell := f.Reserve(fabric.LineSize, fabric.LineSize)
	h := s.Submit(n0, Task{Fn: fn, Preferred: 1, DoneCell: cell})

	// Node 1 claims and starts running (the pre-death incarnation).
	var zombieDone sync.WaitGroup
	zombieDone.Add(1)
	go func() {
		defer zombieDone.Done()
		if !s.claimAndRun(n1, 1, h.Slot) {
			t.Error("node 1 failed to claim its own preferred task")
		}
	}()
	<-running

	// The rack declares node 1 dead: membership's hook sweeps its leases.
	if got := s.ReclaimNode(n0, 1); got != 1 {
		t.Fatalf("ReclaimNode reclaimed %d tasks, want 1", got)
	}
	// Idempotent: nothing left Running under the dead owner.
	if got := s.ReclaimNode(n0, 1); got != 0 {
		t.Fatalf("second ReclaimNode reclaimed %d tasks, want 0", got)
	}

	// Node 0 re-claims and completes the bumped attempt.
	if !s.claimAndRun(n0, 0, h.Slot) {
		t.Fatal("node 0 failed to claim the reclaimed task")
	}

	// Now let the zombie finish: its completion CAS carries the stale
	// (gen, attempt, owner) word and must fail.
	close(release)
	zombieDone.Wait()

	if got := n0.AtomicLoad64(cell); got != 1 {
		t.Fatalf("done cell = %d, want exactly 1 (zombie completion leaked through)", got)
	}
	st := s.StatsFrom(n0)
	if st.Completed != 1 {
		t.Fatalf("completed = %d, want 1", st.Completed)
	}
	if st.Reclaimed != 1 {
		t.Fatalf("reclaimed = %d, want 1", st.Reclaimed)
	}
	mu.Lock()
	defer mu.Unlock()
	if runs != 2 {
		t.Fatalf("function ran %d times, want 2 (both incarnations execute; one counts)", runs)
	}
}

// SetLiveness must steer placement away from a node the membership
// layer declared dead even though the fabric node itself is up (the
// false-positive / slow-node case): a zombie must not receive work.
func TestLivenessOracleSteersPlacement(t *testing.T) {
	f := fabric.New(fabric.Config{GlobalSize: 8 << 20, Nodes: 3})
	s := New(f, Config{})
	dead := map[int]bool{1: true}
	s.SetLiveness(func(id int) bool { return !dead[id] })

	n0 := f.Node(0)
	for i := 0; i < 8; i++ {
		if got := s.target(n0, 1); got == 1 {
			t.Fatalf("placement %d chose declared-dead node 1", i)
		}
	}
	if s.PickNode([]int{0, 0, 0}) == 1 {
		t.Fatal("PickNode chose declared-dead node 1")
	}
	// Clearing the oracle restores crash-check-only placement.
	s.SetLiveness(nil)
	if got := s.target(n0, 1); got != 1 {
		t.Fatalf("with oracle cleared, preferred live node 1 should win placement, got %d", got)
	}
}

// SetNodeServing gates a hot-plugging node's pull paths; placement must
// skip it until it activates and starts serving.
func TestNodeServingGatePlacement(t *testing.T) {
	f := fabric.New(fabric.Config{GlobalSize: 8 << 20, Nodes: 2})
	s := New(f, Config{})
	s.SetNodeServing(1, false)
	n0 := f.Node(0)
	if got := s.target(n0, 1); got == 1 {
		t.Fatal("placement chose gated (joining) node 1")
	}
	s.SetNodeServing(1, true)
	if got := s.target(n0, 1); got != 1 {
		t.Fatalf("after serving gate lifted, preferred node 1 should win, got %d", got)
	}
}
