package sched

// This file is the scheduler's slice of the health layer's anomaly
// surface (internal/health): per-node counters whose RATE is a gray-
// failure signal. A node whose leases keep expiring is stalling or
// partitioned; a node that keeps losing claim CASes is being outrun —
// its interconnect path or its CPUs are slower than its peers'. The
// health layer samples these each observation window, folds the deltas
// into its EWMA detector, and publishes them in the node's arena
// health record next to the fabric latency and error signals.

// NodeHealthCounters returns node id's lifetime anomaly counters:
// leaseExpiries counts leases reclaimed FROM the node (its runners went
// silent mid-task — keeper expiry and membership sweeps both count),
// claimFails counts task-claim CASes the node lost (contention it is
// losing, a relative-slowness signal). Both are cheap host-side reads;
// callers diff successive samples to get rates.
func (s *Scheduler) NodeHealthCounters(id int) (leaseExpiries, claimFails uint64) {
	if id < 0 || id >= len(s.nodeLeaseExp) {
		return 0, 0
	}
	return s.nodeLeaseExp[id].Load(), s.nodeClaimFail[id].Load()
}
