package sched

import (
	"testing"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/alloc"
	"flacos/internal/memsys"
)

// TestSpacePlacementHint: SubmitToSpace leaves a hint naming the node it
// chose, the hint ages out, and unknown spaces report no hint.
func TestSpacePlacementHint(t *testing.T) {
	f := testFabric(3)
	s := testSched(t, f, Config{Policy: PolicyLocality, StealGrace: 100 * time.Millisecond})
	fn := s.Register(func(n *fabric.Node, arg0, arg1 uint64) {})
	s.Start()

	if node, ok := s.SpacePlacementHint(1, time.Hour); ok || node != -1 {
		t.Fatalf("hint for unknown space = %d/%v, want -1/false", node, ok)
	}

	arena := alloc.NewArena(f, 8<<20)
	frames := memsys.NewGlobalFrames(f, 128)
	sp := memsys.NewSpace(f, 1, frames, arena.NodeAllocator(f.Node(0), 0), 64)
	sp.Attach(f.Node(2), arena.NodeAllocator(f.Node(2), 0), nil, 16)

	n0 := f.Node(0)
	h := s.SubmitToSpace(n0, sp, Task{Fn: fn})
	if node, ok := s.SpacePlacementHint(sp.ID, time.Hour); !ok || node != 2 {
		t.Fatalf("hint = %d/%v, want node 2 (the attached node)", node, ok)
	}
	s.Wait(n0, h)

	// An aged hint no longer protects the node.
	s.hints.mu.Lock()
	hh := s.hints.m[sp.ID]
	hh.at = hh.at.Add(-time.Minute)
	s.hints.m[sp.ID] = hh
	s.hints.mu.Unlock()
	if _, ok := s.SpacePlacementHint(sp.ID, time.Second); ok {
		t.Fatal("expired hint still reported")
	}
	// A fresh submit renews it.
	s.Wait(n0, s.SubmitToSpace(n0, sp, Task{Fn: fn}))
	if node, ok := s.SpacePlacementHint(sp.ID, time.Second); !ok || node != 2 {
		t.Fatalf("renewed hint = %d/%v, want node 2", node, ok)
	}
}
