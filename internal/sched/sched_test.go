package sched

import (
	"testing"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/alloc"
	"flacos/internal/memsys"
)

func testFabric(nodes int) *fabric.Fabric {
	return fabric.New(fabric.Config{GlobalSize: 64 << 20, Nodes: nodes, CacheCapacityLines: -1})
}

func testSched(t *testing.T, f *fabric.Fabric, cfg Config) *Scheduler {
	t.Helper()
	s := New(f, cfg)
	t.Cleanup(s.Stop)
	return s
}

// cells reserves count completion cells and returns their base.
func cells(f *fabric.Fabric, count uint64) fabric.GPtr {
	return f.Reserve(count*8, fabric.LineSize)
}

func TestSubmitCompletesEverywhere(t *testing.T) {
	f := testFabric(3)
	s := testSched(t, f, Config{})
	fn := s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
		n.Add64(fabric.GPtr(arg0), arg1)
	})
	s.Start()

	sum := f.Reserve(8, 8)
	base := cells(f, 64)
	n0 := f.Node(0)
	var hs []Handle
	for i := uint64(0); i < 64; i++ {
		hs = append(hs, s.Submit(n0, Task{
			Fn: fn, Arg0: uint64(sum), Arg1: i,
			Preferred: int(i % 3), DoneCell: base.Add(i * 8),
		}))
	}
	for _, h := range hs {
		if !s.Wait(n0, h) {
			t.Fatal("Wait aborted")
		}
	}
	if got := n0.AtomicLoad64(sum); got != 64*63/2 {
		t.Fatalf("sum = %d, want %d", got, 64*63/2)
	}
	for i := uint64(0); i < 64; i++ {
		if c := n0.AtomicLoad64(base.Add(i * 8)); c != 1 {
			t.Fatalf("task %d completion cell = %d, want 1", i, c)
		}
	}
	st := s.StatsFrom(n0)
	if st.Submitted != 64 || st.Completed != 64 || st.Queued != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLocalityPlacementRunsOnPreferredNode(t *testing.T) {
	f := testFabric(3)
	// A long steal grace makes the run deterministic: worker-goroutine
	// startup (hundreds of µs) must not let an idle node outrun the
	// preferred node's claim.
	s := testSched(t, f, Config{Policy: PolicyLocality, StealGrace: 100 * time.Millisecond})
	ranOn := f.Reserve(8*64, fabric.LineSize)
	fn := s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
		n.AtomicStore64(fabric.GPtr(arg0).Add(arg1*8), uint64(n.ID())+1)
	})
	s.Start()

	n0 := f.Node(0)
	for i := 0; i < 12; i++ {
		pref := i % 3
		h := s.Submit(n0, Task{Fn: fn, Arg0: uint64(ranOn), Arg1: uint64(i), Preferred: pref})
		s.Wait(n0, h)
		// An idle rack with zero load always honors the preference.
		if got := n0.AtomicLoad64(ranOn.Add(uint64(i) * 8)); got != uint64(pref)+1 {
			t.Fatalf("task %d ran on node %d, want %d", i, got-1, pref)
		}
	}
}

func TestWorkStealingRebalances(t *testing.T) {
	f := testFabric(4)
	// Huge slack pins every task's target to node 0; the other three
	// nodes can only get work by stealing through the global table.
	s := testSched(t, f, Config{Policy: PolicyLocality, LocalitySlack: 1 << 40, IdleTick: 100 * time.Microsecond})
	perNode := f.Reserve(8*8, fabric.LineSize)
	fn := s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
		n.Add64(fabric.GPtr(arg0).Add(uint64(n.ID())*8), 1)
		time.Sleep(200 * time.Microsecond) // long enough that one node can't drain alone
	})
	s.Start()

	n0 := f.Node(0)
	const tasks = 96
	for i := 0; i < tasks; i++ {
		s.Submit(n0, Task{Fn: fn, Arg0: uint64(perNode), Preferred: 0})
	}
	if !s.Drain(n0) {
		t.Fatal("Drain aborted")
	}
	st := s.StatsFrom(n0)
	if st.Completed != tasks {
		t.Fatalf("completed %d of %d", st.Completed, tasks)
	}
	if st.Stolen == 0 {
		t.Fatal("no task was stolen despite a single overloaded target")
	}
	others := uint64(0)
	for id := 1; id < 4; id++ {
		others += n0.AtomicLoad64(perNode.Add(uint64(id) * 8))
	}
	if others == 0 {
		t.Fatal("no task executed off the overloaded node")
	}
}

func TestCrashReclaimExactlyOnce(t *testing.T) {
	f := testFabric(2)
	s := testSched(t, f, Config{
		Policy: PolicyLocality, LocalitySlack: 1 << 40,
		ProbeRounds: 3, ReclaimTick: 100 * time.Microsecond, IdleTick: 100 * time.Microsecond,
	})
	const tasks = 24
	base := cells(f, tasks)
	started := f.Reserve(8*2, fabric.LineSize) // per-node start counters
	fn := s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
		n.Add64(fabric.GPtr(started).Add(uint64(n.ID())*8), 1)
		time.Sleep(300 * time.Microsecond)
		n.Load64(fabric.GPtr(arg0)) // touch the fabric so a dead CPU dies here
	})
	s.Start()

	n0 := f.Node(0)
	for i := uint64(0); i < tasks; i++ {
		// Everything targets node 1, which is about to die.
		s.Submit(n0, Task{Fn: fn, Arg0: uint64(base), Preferred: 1, DoneCell: base.Add(i * 8)})
	}
	// Wait until node 1 specifically has tasks in flight, then kill it:
	// the sleeping runners die mid-task and their leases must expire.
	for n0.AtomicLoad64(started.Add(8)) == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	f.Node(1).Crash()

	if !s.Drain(n0) {
		t.Fatal("Drain aborted")
	}
	st := s.StatsFrom(n0)
	if st.Completed != tasks {
		t.Fatalf("completed %d of %d after crash", st.Completed, tasks)
	}
	if st.Reclaimed == 0 {
		t.Fatal("crash left in-flight tasks but nothing was reclaimed")
	}
	for i := uint64(0); i < tasks; i++ {
		if c := n0.AtomicLoad64(base.Add(i * 8)); c != 1 {
			t.Fatalf("task %d completed %d times, want exactly once", i, c)
		}
	}
	if s.RedispatchHist().Count() == 0 {
		t.Fatal("reclaimed tasks recorded no re-dispatch latency")
	}
}

func TestSubmitLocalStaysOnNode(t *testing.T) {
	f := testFabric(2)
	s := testSched(t, f, Config{})
	s.Start()
	done := make(chan int, 8)
	for i := 0; i < 8; i++ {
		s.SubmitLocal(1, func(n *fabric.Node) { done <- n.ID() })
	}
	s.Drain(f.Node(0))
	close(done)
	count := 0
	for id := range done {
		count++
		if id != 1 {
			t.Fatalf("local task ran on node %d, want 1", id)
		}
	}
	if count != 8 {
		t.Fatalf("ran %d local tasks, want 8", count)
	}
	if st := s.StatsFrom(f.Node(0)); st.LocalRun != 8 {
		t.Fatalf("LocalRun = %d", st.LocalRun)
	}
}

func TestPickNodeSkipsCrashedAndAddsLoad(t *testing.T) {
	f := testFabric(3)
	s := testSched(t, f, Config{})
	// Not started: the board is all zeros.
	if got := s.PickNode([]int{5, 0, 3}); got != 1 {
		t.Fatalf("PickNode = %d, want 1 (least dense)", got)
	}
	f.Node(1).Crash()
	if got := s.PickNode([]int{5, 0, 3}); got != 2 {
		t.Fatalf("PickNode = %d, want 2 (node 1 is down)", got)
	}
}

func TestSubmitToSpacePrefersAttachedNode(t *testing.T) {
	f := testFabric(3)
	s := testSched(t, f, Config{Policy: PolicyLocality, StealGrace: 100 * time.Millisecond})
	ranOn := f.Reserve(8, 8)
	fn := s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
		n.AtomicStore64(fabric.GPtr(arg0), uint64(n.ID())+1)
	})
	s.Start()

	arena := alloc.NewArena(f, 8<<20)
	frames := memsys.NewGlobalFrames(f, 128)
	sp := memsys.NewSpace(f, 1, frames, arena.NodeAllocator(f.Node(0), 0), 64)
	sp.Attach(f.Node(2), arena.NodeAllocator(f.Node(2), 0), nil, 16)

	n0 := f.Node(0)
	h := s.SubmitToSpace(n0, sp, Task{Fn: fn, Arg0: uint64(ranOn)})
	s.Wait(n0, h)
	if got := n0.AtomicLoad64(ranOn); got != 3 {
		t.Fatalf("space task ran on node %d, want 2 (the attached node)", got-1)
	}
}

func TestBoundedTableBlocksThenRecovers(t *testing.T) {
	f := testFabric(2)
	s := testSched(t, f, Config{TableCap: 8})
	fn := s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
		time.Sleep(50 * time.Microsecond)
	})
	s.Start()
	n0 := f.Node(0)
	for i := 0; i < 64; i++ { // 8x the table size: Submit must recycle slots
		s.Submit(n0, Task{Fn: fn})
	}
	if !s.Drain(n0) {
		t.Fatal("Drain aborted")
	}
	if st := s.StatsFrom(n0); st.Completed != 64 {
		t.Fatalf("completed %d of 64 through an 8-slot table", st.Completed)
	}
}
