package sched

import (
	"testing"
	"time"

	"flacos/internal/fabric"
)

// TestCrashRestartSameNodeNoResurrection is the regression test for the
// nastiest lease race: a node crashes mid-task, the reclaimer fences its
// attempts and re-dispatches them, and then the SAME node ID restarts
// while the old runner goroutines are still asleep. Those runners wake on
// a now-alive node, so their fabric stores succeed again — only attempt
// fencing stops them from completing a task someone else already re-ran.
// The test asserts no task completes twice, nothing is lost, and the
// restarted ID accepts fresh work.
func TestCrashRestartSameNodeNoResurrection(t *testing.T) {
	f := testFabric(2)
	s := testSched(t, f, Config{
		Policy: PolicyLocality, LocalitySlack: 1 << 40,
		ProbeRounds: 3, ReclaimTick: 100 * time.Microsecond, IdleTick: 100 * time.Microsecond,
		StealGrace: 50 * time.Millisecond,
	})
	const tasks = 24
	base := cells(f, tasks)
	started := f.Reserve(8*2, fabric.LineSize)
	fn := s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
		n.Add64(started.Add(uint64(n.ID())*8), 1)
		// Long enough that most of node 1's runners are still asleep when
		// the node is crashed, fenced, and restarted underneath them.
		time.Sleep(2 * time.Millisecond)
		n.Load64(fabric.GPtr(arg0))
	})
	ranOn := f.Reserve(8, 8)
	fn2 := s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
		n.AtomicStore64(fabric.GPtr(arg0), uint64(n.ID())+1)
	})
	s.Start()

	n0 := f.Node(0)
	for i := uint64(0); i < tasks; i++ {
		// Huge slack pins everything to the preferred node 1.
		s.Submit(n0, Task{Fn: fn, Arg0: uint64(base), Preferred: 1, DoneCell: base.Add(i * 8)})
	}
	for n0.AtomicLoad64(started.Add(8)) == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	f.Node(1).Crash()

	// Wait for the reclaimer to fence at least one dead attempt, then
	// bring the same node ID back while old runners still sleep.
	deadline := time.Now().Add(10 * time.Second)
	for s.StatsFrom(n0).Reclaimed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("reclaimer never fenced the crashed node's attempts")
		}
		time.Sleep(100 * time.Microsecond)
	}
	f.Node(1).Restart()
	s.RebootNode(1)

	if !s.Drain(n0) {
		t.Fatal("Drain aborted after restart")
	}
	st := s.StatsFrom(n0)
	if st.Completed != tasks {
		t.Fatalf("completed %d of %d across crash+restart", st.Completed, tasks)
	}
	if st.Queued != 0 {
		t.Fatalf("queued = %d after Drain", st.Queued)
	}
	for i := uint64(0); i < tasks; i++ {
		if c := n0.AtomicLoad64(base.Add(i * 8)); c != 1 {
			t.Fatalf("task %d completion cell = %d: a fenced runner resurrected", i, c)
		}
	}

	// The restarted ID is a first-class scheduling target again.
	h := s.Submit(n0, Task{Fn: fn2, Arg0: uint64(ranOn), Preferred: 1})
	if !s.Wait(n0, h) {
		t.Fatal("Wait aborted on post-restart task")
	}
	if got := n0.AtomicLoad64(ranOn); got != 2 {
		t.Fatalf("post-restart task ran on node %d, want 1 (the rebooted node)", got-1)
	}
}
