package sched

import (
	"fmt"
	"sync"
	"sync/atomic"

	"flacos/internal/fabric"
	"flacos/internal/trace"
)

// tracing holds the scheduler's flight-recorder wiring: one writer
// pointer per node, swappable at runtime, plus the bounded lease-expiry
// log that post-mortems read.
type tracing struct {
	trw []atomic.Pointer[trace.Writer]

	reclaimMu  sync.Mutex
	reclaimLog []string
}

const reclaimLogCap = 64

// SetTrace attaches the scheduler's hot paths (dispatch, steal,
// lease-expiry, completion) to r's per-node writers. Nil detaches (and
// a nil recorder is ignored, so torture workloads can pass their env's
// recorder through unconditionally). Safe to call while running.
func (s *Scheduler) SetTrace(r *trace.Recorder) {
	for i := range s.tr.trw {
		s.tr.trw[i].Store(r.Writer(i))
	}
}

// tw returns node id's trace writer, nil when tracing is off.
func (s *Scheduler) tw(id int) *trace.Writer { return s.tr.trw[id].Load() }

// noteReclaim records one lease expiry in the bounded human-readable
// log, stamped with the keeper's virtual clock via the shared trace.VNS
// formatter (the same one torture's event log uses).
func (s *Scheduler) noteReclaim(n *fabric.Node, keeper int, slot uint64, owner int, attempt uint64) {
	entry := fmt.Sprintf("vt=%-9s keeper=n%d slot=%d owner=n%d attempt=%d",
		trace.VNS(n.VirtualNS()), keeper, slot, owner, attempt)
	s.tr.reclaimMu.Lock()
	if len(s.tr.reclaimLog) >= reclaimLogCap {
		copy(s.tr.reclaimLog, s.tr.reclaimLog[1:])
		s.tr.reclaimLog = s.tr.reclaimLog[:reclaimLogCap-1]
	}
	s.tr.reclaimLog = append(s.tr.reclaimLog, entry)
	s.tr.reclaimMu.Unlock()
}

// ReclaimLog returns the most recent lease-expiry records (oldest
// first, at most reclaimLogCap), each formatted with trace.VNS.
func (s *Scheduler) ReclaimLog() []string {
	s.tr.reclaimMu.Lock()
	defer s.tr.reclaimMu.Unlock()
	return append([]string(nil), s.tr.reclaimLog...)
}
