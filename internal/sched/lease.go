package sched

import (
	"time"

	"flacos/internal/fabric"
	"flacos/internal/trace"
)

// probe is a keeper's last observation of a Running slot: the state
// word, the owner's heartbeat, and how many consecutive ticks both have
// stayed frozen.
type probe struct {
	w, hb   uint64
	strikes int
}

// keeper is node id's housekeeping goroutine. Every tick it (a) bumps
// the node's heartbeat on the load board — implicitly renewing the
// lease of every task this node is running — and (b) probes other
// nodes' Running tasks for expired leases. A lease expires when the
// owner's heartbeat has not advanced for ProbeRounds consecutive ticks
// while the task's state word is also unchanged: a live-but-slow owner
// keeps beating (its keeper is an independent goroutine), so a frozen
// beat means the node is gone, exactly as Node.Crash leaves it.
//
// Reclaim detours the slot through Init so the routing word and board
// accounting are fixed before the task becomes claimable again; the
// bumped attempt counter fences out the dead (or falsely-suspected)
// owner's completion CAS.
func (s *Scheduler) keeper(id int) {
	defer s.wg.Done()
	n := s.fab.Node(id)
	defer func() {
		if r := recover(); r != nil {
			if n.Crashed() {
				return // heartbeat freezes exactly at the crash
			}
			panic(r)
		}
	}()
	seen := make(map[uint64]probe)
	tick := time.NewTicker(s.cfg.ReclaimTick)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
		}
		n.Add64(s.beatG(id), 1)
		if n.AtomicLoad64(s.submittedG()) == n.AtomicLoad64(s.completedG()) {
			continue // nothing in flight anywhere
		}
		for i := uint64(0); i < s.cfg.TableCap; i++ {
			w := n.AtomicLoad64(s.stateG(i))
			if stState(w) != stRunning {
				delete(seen, i)
				continue
			}
			owner := stOwner(w)
			if owner == id {
				delete(seen, i) // our own lease; we just renewed it
				continue
			}
			hb := n.AtomicLoad64(s.beatG(owner))
			pr, ok := seen[i]
			if !ok || pr.w != w || pr.hb != hb {
				seen[i] = probe{w: w, hb: hb}
				continue
			}
			pr.strikes++
			if pr.strikes < s.cfg.ProbeRounds {
				seen[i] = pr
				continue
			}
			delete(seen, i)
			s.reclaim(n, id, i, w)
		}
	}
}

// reclaim re-queues slot i after its owner's lease expired: the task is
// re-assigned to this node, its attempt bumped, and its enqueue clock
// restarted so RedispatchHist measures crash-to-restart latency.
func (s *Scheduler) reclaim(n *fabric.Node, id int, i, w uint64) {
	owner := stOwner(w)
	held := packState(stGen(w), stAttempt(w)+1, id, stInit)
	if !n.CAS64(s.stateG(i), w, held) {
		return // the owner finished after all, or another keeper won
	}
	route := n.AtomicLoad64(s.routeG(i))
	n.AtomicStore64(s.routeG(i), packRoute(id, routePreferred(route)))
	n.AtomicStore64(s.enqG(i), nowNS())
	n.Add64(s.loadG(owner), ^uint64(0))
	n.Add64(s.loadG(id), 1)
	n.Add64(s.queuedG(), 1)
	n.AtomicStore64(s.stateG(i), packState(stGen(w), stAttempt(w)+1, 0, stQueued))
	s.reclaimed.Add(1)
	if owner >= 0 && owner < len(s.nodeLeaseExp) {
		s.nodeLeaseExp[owner].Add(1)
	}
	if tw := s.tw(id); tw != nil {
		tw.Emit(trace.SubSched, trace.KLeaseExpiry, 0, i, uint64(owner))
	}
	s.noteReclaim(n, id, i, owner, stAttempt(w)+1)
	s.announce(n, id, i)
}
