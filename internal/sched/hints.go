package sched

import (
	"sync"
	"time"
)

// Placement hints: the scheduler's side of the truce with the tiering
// daemon. Every SubmitToSpace records WHERE it just placed work for a
// space; the tiering daemon consults that record before demoting pages,
// so a node that sched chose moments ago does not have its working set
// demoted out from under the tasks landing there (ISSUE 8's "placement
// decisions and tiering decisions don't fight"). Hints live in plain host
// memory — they are advisory and node-local-observable state, not part of
// the coherent rack image.

type spaceHint struct {
	node int
	at   time.Time
}

type hintTable struct {
	mu sync.Mutex
	m  map[uint64]spaceHint
}

// noteSpacePlacement records that work for space spaceID was just placed
// on node.
func (s *Scheduler) noteSpacePlacement(spaceID uint64, node int) {
	s.hints.mu.Lock()
	if s.hints.m == nil {
		s.hints.m = make(map[uint64]spaceHint)
	}
	s.hints.m[spaceID] = spaceHint{node: node, at: time.Now()}
	s.hints.mu.Unlock()
}

// SpacePlacementHint returns the node that most recently received work
// for the space via SubmitToSpace, if that placement is younger than
// maxAge. The tiering daemon treats the returned node as off-limits for
// demotion this step.
func (s *Scheduler) SpacePlacementHint(spaceID uint64, maxAge time.Duration) (node int, ok bool) {
	s.hints.mu.Lock()
	defer s.hints.mu.Unlock()
	h, ok := s.hints.m[spaceID]
	if !ok || time.Since(h.at) > maxAge {
		return -1, false
	}
	return h.node, true
}
