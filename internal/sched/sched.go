package sched

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/ds"
	"flacos/internal/memsys"
	"flacos/internal/metrics"
	"flacos/internal/trace"
)

// Func is a schedulable function. It runs on whichever node claims the
// task; all task state it touches must be reachable through its
// arguments (typically GPtrs into global memory). Functions are
// registered identically on every node — the scheduler's equivalent of
// §3.5's shared code contexts.
type Func func(n *fabric.Node, arg0, arg1 uint64)

// FuncID names a registered function in the shared code-context table.
type FuncID uint64

// LocalTask is a node-private task: it runs on its submission node's
// local run queue with zero global-memory traffic, and is NOT crash
// recoverable. Use Submit for anything that must survive its host.
type LocalTask func(n *fabric.Node)

// Task describes one crash-recoverable unit of work.
type Task struct {
	Fn   FuncID
	Arg0 uint64
	Arg1 uint64
	// Preferred is the locality hint: the node whose cache is warm with
	// the task's working set. Negative means "run anywhere".
	Preferred int
	// DoneCell, when non-nil, is a global-memory word the scheduler
	// increments exactly once when the task completes.
	DoneCell fabric.GPtr
}

// Handle identifies a submitted task for Wait.
type Handle struct {
	Slot uint64
	Gen  uint64
}

// Policy selects the placement strategy consulted at submission.
type Policy int

// Placement policies.
const (
	// PolicyLocality honors Task.Preferred unless that node's load
	// exceeds the rack minimum by more than LocalitySlack.
	PolicyLocality Policy = iota
	// PolicyLeastLoaded ignores locality and targets the least-loaded
	// live node (the density-style baseline).
	PolicyLeastLoaded
	// PolicyRandom places uniformly at random over live nodes (the
	// ablation baseline for the sched experiment).
	PolicyRandom
)

// Config sizes and tunes a Scheduler. Zero values get workable defaults.
type Config struct {
	// TableCap is the number of task slots in the global run queue.
	// Submit blocks (bounded-queue semantics) when all are in flight.
	TableCap uint64
	// InboxCap is the per-node announcement ring capacity.
	InboxCap uint64
	// WorkersPerNode is how many claiming goroutines each node runs.
	WorkersPerNode int
	// LocalQueueCap bounds each node's private LocalTask queue.
	LocalQueueCap int
	// Policy is the placement strategy.
	Policy Policy
	// LocalitySlack is how much extra load the preferred node may carry
	// before PolicyLocality spills the task to the least-loaded node.
	LocalitySlack uint64
	// ProbeRounds is how many consecutive keeper ticks a Running task's
	// owner heartbeat must stay frozen before its lease expires.
	ProbeRounds int
	// ReclaimTick is the keeper's heartbeat/probe period.
	ReclaimTick time.Duration
	// IdleTick is how long an idle worker waits before re-scanning for
	// stealable work.
	IdleTick time.Duration
	// StealGrace is how long a queued task with a live preferred node
	// is left for that node before other nodes may steal it; it keeps
	// momentary idleness elsewhere from defeating locality. Tasks whose
	// preferred node is down (or unset) are stealable immediately.
	StealGrace time.Duration
	// HistCap bounds the scheduler's latency histograms by reservoir
	// sampling (0 keeps exact samples; long-running schedulers should
	// cap — see metrics.Histogram.SetReservoir).
	HistCap int
	// Seed seeds PolicyRandom and the histogram reservoirs.
	Seed int64
}

// DefaultConfig returns the configuration core.Rack boots with.
func DefaultConfig() Config { return Config{} }

func (c *Config) fillDefaults() {
	if c.TableCap == 0 {
		c.TableCap = 1024
	}
	if c.InboxCap == 0 {
		c.InboxCap = 256
	}
	if c.WorkersPerNode == 0 {
		c.WorkersPerNode = 4
	}
	if c.LocalQueueCap == 0 {
		c.LocalQueueCap = 256
	}
	if c.LocalitySlack == 0 {
		c.LocalitySlack = 8
	}
	if c.ProbeRounds == 0 {
		c.ProbeRounds = 4
	}
	if c.ReclaimTick == 0 {
		c.ReclaimTick = 200 * time.Microsecond
	}
	if c.IdleTick == 0 {
		c.IdleTick = 500 * time.Microsecond
	}
	if c.StealGrace == 0 {
		c.StealGrace = 200 * time.Microsecond
	}
	if c.HistCap == 0 {
		c.HistCap = 16384
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Scheduler is the rack-wide coordinated task scheduler. One instance
// serves the whole rack; every node's OS boots workers into it.
type Scheduler struct {
	fab *fabric.Fabric
	cfg Config

	tableG  fabric.GPtr // task slots, one line each
	boardG  fabric.GPtr // per-node load + heartbeat lines
	ctrG    fabric.GPtr // submitted / completed / queued counters
	inboxes []*ds.MPSCRing

	fnMu sync.RWMutex
	fns  []Func

	localQ  []chan LocalTask
	inboxMu []sync.Mutex // node-private consumer locks
	notify  []chan struct{}

	// liveness is the membership layer's oracle (nil = crash checks
	// only); notServing gates a joining node's pull paths (see
	// membership.go in this package).
	liveness   atomic.Pointer[func(int) bool]
	notServing []atomic.Bool

	allocCursor atomic.Uint64
	stolen      atomic.Uint64
	reclaimed   atomic.Uint64
	localRun    atomic.Uint64
	localSub    atomic.Uint64
	localDone   atomic.Uint64

	// Per-node anomaly counters the health layer samples (see health.go
	// in this package): lease expiries are charged to the node whose
	// lease was reclaimed, claim-CAS losses to the node that lost the
	// claim. Host-side only — they cost the hot paths one atomic add.
	nodeLeaseExp  []atomic.Uint64
	nodeClaimFail []atomic.Uint64

	rngMu sync.Mutex
	rng   *rand.Rand

	hints hintTable // recent per-space placements (see hints.go)

	dispatch   *metrics.Histogram // submit -> first claim
	redispatch *metrics.Histogram // lease reclaim -> re-claim
	service    *metrics.Histogram // claim -> completion

	tr tracing // flight-recorder hooks (see trace.go)

	stop     chan struct{}
	stopOnce sync.Once
	started  atomic.Bool
	wg       sync.WaitGroup
}

// New lays the scheduler's shared structures out in f's global memory.
// Call Register for every function, then Start.
func New(f *fabric.Fabric, cfg Config) *Scheduler {
	cfg.fillDefaults()
	if f.NumNodes() > 254 {
		panic("sched: at most 254 nodes (owner is a packed byte)")
	}
	s := &Scheduler{
		fab:        f,
		cfg:        cfg,
		tableG:     f.Reserve(cfg.TableCap*slotBytes, fabric.LineSize),
		boardG:     f.Reserve(uint64(f.NumNodes())*boardBytes, fabric.LineSize),
		ctrG:       f.Reserve(fabric.LineSize, fabric.LineSize),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		dispatch:   metrics.NewHistogram(),
		redispatch: metrics.NewHistogram(),
		service:    metrics.NewHistogram(),
		stop:       make(chan struct{}),
	}
	if cfg.HistCap > 0 {
		s.dispatch.SetReservoir(cfg.HistCap, cfg.Seed)
		s.redispatch.SetReservoir(cfg.HistCap, cfg.Seed+1)
		s.service.SetReservoir(cfg.HistCap, cfg.Seed+2)
	}
	nn := f.NumNodes()
	s.notServing = make([]atomic.Bool, nn)
	s.nodeLeaseExp = make([]atomic.Uint64, nn)
	s.nodeClaimFail = make([]atomic.Uint64, nn)
	s.tr.trw = make([]atomic.Pointer[trace.Writer], nn)
	s.inboxes = make([]*ds.MPSCRing, nn)
	s.localQ = make([]chan LocalTask, nn)
	s.inboxMu = make([]sync.Mutex, nn)
	s.notify = make([]chan struct{}, nn)
	for i := 0; i < nn; i++ {
		s.inboxes[i] = ds.NewMPSCRing(f, f.Node(0), cfg.InboxCap, 8)
		s.localQ[i] = make(chan LocalTask, cfg.LocalQueueCap)
		s.notify[i] = make(chan struct{}, 1)
	}
	return s
}

// Register installs fn in the shared code-context table on every node
// and returns its id. Register before Start (ids must be stable before
// any worker can claim).
func (s *Scheduler) Register(fn Func) FuncID {
	s.fnMu.Lock()
	defer s.fnMu.Unlock()
	s.fns = append(s.fns, fn)
	return FuncID(len(s.fns) - 1)
}

func (s *Scheduler) fn(id uint64) Func {
	s.fnMu.RLock()
	defer s.fnMu.RUnlock()
	if id >= uint64(len(s.fns)) {
		panic(fmt.Sprintf("sched: unregistered function %d", id))
	}
	return s.fns[id]
}

// Start boots the per-node worker pools and keepers. Idempotent.
func (s *Scheduler) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	for id := 0; id < s.fab.NumNodes(); id++ {
		for w := 0; w < s.cfg.WorkersPerNode; w++ {
			s.wg.Add(1)
			go s.worker(id)
		}
		s.wg.Add(1)
		go s.keeper(id)
	}
}

// Stop shuts every worker and keeper down. In-flight tasks finish;
// queued tasks stay in the table (a future Start-like rebuild could
// resume them, as a real reboot would). Idempotent.
func (s *Scheduler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// RebootNode spawns a fresh worker pool and keeper for node id after a
// fabric.Node Restart. The node rejoins the rack under its original ID:
// its new keeper resumes advancing the same heartbeat word, and any task
// the pre-crash incarnation still thinks it owns was fenced by the
// attempt bump when its lease was reclaimed, so a stale completion CAS
// cannot resurrect it. Call only after the node has been restarted and
// only while the scheduler is running.
func (s *Scheduler) RebootNode(id int) {
	if !s.started.Load() {
		return
	}
	select {
	case <-s.stop:
		return
	default:
	}
	for w := 0; w < s.cfg.WorkersPerNode; w++ {
		s.wg.Add(1)
		go s.worker(id)
	}
	s.wg.Add(1)
	go s.keeper(id)
	s.wake(id)
}

// wake nudges node id's workers (the software stand-in for an IPI /
// mwait wakeup on a global doorbell word — see internal/irq).
func (s *Scheduler) wake(id int) {
	select {
	case s.notify[id] <- struct{}{}:
	default:
	}
}

// Submit places t on the global run queue from node `from` and returns
// a Handle for Wait. It blocks (bounded queue) while the table is full.
func (s *Scheduler) Submit(from *fabric.Node, t Task) Handle {
	pref := noPreference
	if t.Preferred >= 0 {
		if t.Preferred >= s.fab.NumNodes() {
			panic(fmt.Sprintf("sched: preferred node %d out of range", t.Preferred))
		}
		pref = t.Preferred
	}
	target := s.target(from, pref)
	slot, gen := s.allocSlot(from)
	from.AtomicStore64(s.fnG(slot), uint64(t.Fn))
	from.AtomicStore64(s.arg0G(slot), t.Arg0)
	from.AtomicStore64(s.arg1G(slot), t.Arg1)
	from.AtomicStore64(s.routeG(slot), packRoute(target, pref))
	from.AtomicStore64(s.enqG(slot), nowNS())
	from.AtomicStore64(s.cellG(slot), uint64(t.DoneCell))
	from.AtomicStore64(s.leaseG(slot), 0)
	// Account before publishing so the load board and queued counter
	// never under-read a claimable task.
	from.Add64(s.loadG(target), 1)
	from.Add64(s.queuedG(), 1)
	from.Add64(s.submittedG(), 1)
	from.AtomicStore64(s.stateG(slot), packState(gen, 0, 0, stQueued))
	s.announce(from, target, slot)
	return Handle{Slot: slot, Gen: gen}
}

// SubmitToSpace submits t preferring the node that owns sp's pages: the
// least-loaded node holding a live MMU attachment to the space (whose
// cache and local frames are warm with it). Any Preferred already set on
// t is overridden.
func (s *Scheduler) SubmitToSpace(from *fabric.Node, sp *memsys.Space, t Task) Handle {
	t.Preferred = -1
	best := ^uint64(0)
	for _, id := range sp.AttachedNodes() {
		if !s.placeable(id) {
			continue
		}
		if l := from.AtomicLoad64(s.loadG(id)); l < best {
			best, t.Preferred = l, id
		}
	}
	if t.Preferred >= 0 {
		s.noteSpacePlacement(sp.ID, t.Preferred)
	}
	return s.Submit(from, t)
}

// SubmitLocal runs fn on node id's private run queue: the hot path for
// node-local work, no global-memory traffic, no crash recovery.
func (s *Scheduler) SubmitLocal(id int, fn LocalTask) {
	s.localSub.Add(1)
	s.localQ[id] <- fn
	s.wake(id)
}

// allocSlot claims a Free slot (Init state) and returns it with the new
// generation. Spins with backoff while the table is full.
func (s *Scheduler) allocSlot(from *fabric.Node) (uint64, uint64) {
	for {
		start := s.allocCursor.Add(1)
		for k := uint64(0); k < s.cfg.TableCap; k++ {
			i := (start + k) % s.cfg.TableCap
			w := from.AtomicLoad64(s.stateG(i))
			if stState(w) != stFree {
				continue
			}
			gen := stGen(w) + 1
			if from.CAS64(s.stateG(i), w, packState(gen, 0, from.ID(), stInit)) {
				return i, gen
			}
		}
		runtime.Gosched()
	}
}

// announce posts slot to node target's inbox ring and rings its
// doorbell. Best effort: if the ring is full the task is still found by
// table scans, which is what correctness rests on.
func (s *Scheduler) announce(from *fabric.Node, target int, slot uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], slot)
	s.inboxes[target].TryPush(from, b[:])
	s.wake(target)
}

// target applies the placement policy over the load board.
func (s *Scheduler) target(from *fabric.Node, pref int) int {
	nn := s.fab.NumNodes()
	switch s.cfg.Policy {
	case PolicyRandom:
		s.rngMu.Lock()
		defer s.rngMu.Unlock()
		for tries := 0; tries < 4*nn; tries++ {
			if id := s.rng.Intn(nn); s.placeable(id) {
				return id
			}
		}
		return from.ID()
	}
	best, bestLoad := -1, ^uint64(0)
	var prefLoad uint64
	prefAlive := false
	for id := 0; id < nn; id++ {
		if !s.placeable(id) {
			continue
		}
		l := from.AtomicLoad64(s.loadG(id))
		if l < bestLoad {
			best, bestLoad = id, l
		}
		if id == pref {
			prefLoad, prefAlive = l, true
		}
	}
	if best < 0 {
		return from.ID() // every node down: caller is about to find out
	}
	if s.cfg.Policy == PolicyLocality && pref != noPreference && prefAlive &&
		prefLoad <= bestLoad+s.cfg.LocalitySlack {
		return pref
	}
	return best
}

// Wait blocks until h's task completes (its slot generation advances).
// It returns false if the scheduler stops first.
func (s *Scheduler) Wait(n *fabric.Node, h Handle) bool {
	for i := 0; ; i++ {
		if stGen(n.AtomicLoad64(s.stateG(h.Slot))) > h.Gen {
			return true
		}
		select {
		case <-s.stop:
			return false
		default:
		}
		if i%64 == 63 {
			time.Sleep(20 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
}

// Drain blocks until every submitted task (global and local) has
// completed. It returns false if the scheduler stops first.
func (s *Scheduler) Drain(n *fabric.Node) bool {
	for i := 0; ; i++ {
		if n.AtomicLoad64(s.submittedG()) == n.AtomicLoad64(s.completedG()) &&
			s.localSub.Load() == s.localDone.Load() {
			return true
		}
		select {
		case <-s.stop:
			return false
		default:
		}
		if i%16 == 15 {
			time.Sleep(50 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
}

// Loads returns the load board as seen by node n: per node, the count of
// tasks queued for or running on it.
func (s *Scheduler) Loads(n *fabric.Node) []uint64 {
	out := make([]uint64, s.fab.NumNodes())
	for i := range out {
		out[i] = n.AtomicLoad64(s.loadG(i))
	}
	return out
}

// PickNode scores each live node as density[i] + scheduler load and
// returns the lowest. It is the placement hook serverless.Controller
// routes pickNode through (SetPlacer), so container placement and task
// placement share one load board.
func (s *Scheduler) PickNode(density []int) int {
	n := s.anyAlive()
	best, bestScore := -1, ^uint64(0)
	for id := 0; id < s.fab.NumNodes() && id < len(density); id++ {
		if !s.placeable(id) {
			continue
		}
		score := uint64(density[id])
		if n != nil {
			score += n.AtomicLoad64(s.loadG(id))
		}
		if score < bestScore {
			best, bestScore = id, score
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

func (s *Scheduler) anyAlive() *fabric.Node {
	for i := 0; i < s.fab.NumNodes(); i++ {
		if n := s.fab.Node(i); !n.Crashed() {
			return n
		}
	}
	return nil
}

// Stats is a snapshot of scheduler activity.
type Stats struct {
	Submitted uint64 // global tasks submitted
	Completed uint64 // global tasks completed (exactly-once)
	Queued    uint64 // currently claimable
	Stolen    uint64 // claims by a node other than the assigned one
	Reclaimed uint64 // lease expiries (crash re-dispatch)
	LocalRun  uint64 // node-private LocalTasks executed
}

// StatsFrom reads the counters through node n.
func (s *Scheduler) StatsFrom(n *fabric.Node) Stats {
	return Stats{
		Submitted: n.AtomicLoad64(s.submittedG()),
		Completed: n.AtomicLoad64(s.completedG()),
		Queued:    n.AtomicLoad64(s.queuedG()),
		Stolen:    s.stolen.Load(),
		Reclaimed: s.reclaimed.Load(),
		LocalRun:  s.localRun.Load(),
	}
}

// DispatchHist is the submit->claim latency histogram (first attempts).
func (s *Scheduler) DispatchHist() *metrics.Histogram { return s.dispatch }

// RedispatchHist is the reclaim->re-claim latency histogram (tasks
// re-dispatched after their owner's lease expired).
func (s *Scheduler) RedispatchHist() *metrics.Histogram { return s.redispatch }

// ServiceHist is the claim->completion latency histogram.
func (s *Scheduler) ServiceHist() *metrics.Histogram { return s.service }
