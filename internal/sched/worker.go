package sched

import (
	"encoding/binary"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/trace"
)

// worker is one claiming goroutine of node id — one of the node's CPUs
// from the scheduler's point of view. It drains the node-private local
// queue first (hottest path), then the announcement inbox, then scans
// the global table (own-preferred tasks first, then stealing). When the
// node crashes, the fabric panics on its next memory operation and the
// worker dies with its node.
func (s *Scheduler) worker(id int) {
	defer s.wg.Done()
	n := s.fab.Node(id)
	defer func() {
		if r := recover(); r != nil {
			if n.Crashed() {
				return // this CPU died with its node
			}
			panic(r)
		}
	}()
	timer := time.NewTimer(s.cfg.IdleTick)
	defer timer.Stop()
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		// 1. Node-private run queue: plain Go, zero fabric traffic.
		select {
		case t := <-s.localQ[id]:
			t(n)
			s.localRun.Add(1)
			s.localDone.Add(1)
			continue
		default:
		}
		// A node gated off by membership (hot-plug in progress: joined
		// the fabric, not yet resynced/activated) runs only its local
		// queue — it must not claim rack work it cannot yet serve.
		if !s.notServing[id].Load() {
			// 2. Announcement inbox: the fast path for tasks placed here.
			if slot, ok := s.popInbox(n, id); ok {
				s.claimAndRun(n, id, slot)
				continue
			}
			// 3. Global table: own-preferred first, then cross-node steal.
			if n.AtomicLoad64(s.queuedG()) > 0 && s.scanAndRun(n, id) {
				continue
			}
		}
		// 4. Idle: wait for a doorbell or the next steal tick.
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(s.cfg.IdleTick)
		select {
		case <-s.stop:
			return
		case <-s.notify[id]:
		case <-timer.C:
		case t := <-s.localQ[id]:
			t(n)
			s.localRun.Add(1)
			s.localDone.Add(1)
		}
	}
}

// popInbox pops one announced slot index from the node's inbox ring.
// The ring is multi-producer single-consumer; the node-private mutex
// funnels this node's many workers into the one consumer role.
func (s *Scheduler) popInbox(n *fabric.Node, id int) (uint64, bool) {
	s.inboxMu[id].Lock()
	defer s.inboxMu[id].Unlock()
	var buf [8]byte
	ln, ok := s.inboxes[id].TryPop(n, buf[:])
	if !ok || ln != 8 {
		return 0, false
	}
	slot := binary.LittleEndian.Uint64(buf[:])
	if slot >= s.cfg.TableCap {
		// The ring payload travels through the cache, so a fault sweep can
		// hand us garbage. Announcements are only hints; drop it and let
		// the table scan find the real task.
		return 0, false
	}
	return slot, true
}

// scanAndRun walks the task table looking for Queued work: first a task
// preferring this node, otherwise any task (a steal). Returns whether a
// task was claimed and run.
func (s *Scheduler) scanAndRun(n *fabric.Node, id int) bool {
	cap := s.cfg.TableCap
	start := uint64(id) * (cap / uint64(s.fab.NumNodes()))
	now := nowNS()
	fallback, haveFallback := uint64(0), false
	for k := uint64(0); k < cap; k++ {
		i := (start + k) % cap
		if stState(n.AtomicLoad64(s.stateG(i))) != stQueued {
			continue
		}
		pref := routePreferred(n.AtomicLoad64(s.routeG(i)))
		if pref == id {
			if s.claimAndRun(n, id, i) {
				return true
			}
			continue
		}
		if haveFallback {
			continue
		}
		// Steal grace: leave a fresh task to its live preferred node —
		// "live" by the membership oracle when one is installed, so tasks
		// preferring a declared-dead node are stealable immediately.
		if pref != noPreference && s.placeable(pref) &&
			latencyNS(n.AtomicLoad64(s.enqG(i)), now) < float64(s.cfg.StealGrace.Nanoseconds()) {
			continue
		}
		fallback, haveFallback = i, true
	}
	if haveFallback {
		return s.claimAndRun(n, id, fallback)
	}
	return false
}

// claimAndRun CASes the slot Queued->Running on behalf of node id, runs
// the task, and publishes completion with a generation-advancing CAS.
// A failed claim (someone else won the race) returns false. The claim
// CAS is the single point of ownership: announcements and scans are
// only hints.
func (s *Scheduler) claimAndRun(n *fabric.Node, id int, slot uint64) bool {
	w := n.AtomicLoad64(s.stateG(slot))
	if stState(w) != stQueued {
		s.nodeClaimFail[id].Add(1)
		return false
	}
	running := packState(stGen(w), stAttempt(w), id, stRunning)
	if !n.CAS64(s.stateG(slot), w, running) {
		s.nodeClaimFail[id].Add(1)
		return false
	}
	// Lease: record the beat this claim starts at; the node's keeper
	// renews it by advancing the heartbeat every tick.
	n.AtomicStore64(s.leaseG(slot), n.AtomicLoad64(s.beatG(id)))
	n.Add64(s.queuedG(), ^uint64(0))
	assigned := routeAssigned(n.AtomicLoad64(s.routeG(slot)))
	if assigned != id {
		n.Add64(s.loadG(assigned), ^uint64(0))
		n.Add64(s.loadG(id), 1)
		s.stolen.Add(1)
	}
	enq := n.AtomicLoad64(s.enqG(slot))
	claimed := nowNS()
	if stAttempt(w) > 0 {
		s.redispatch.Record(latencyNS(enq, claimed))
	} else {
		s.dispatch.Record(latencyNS(enq, claimed))
	}
	if tw := s.tw(id); tw != nil {
		tw.Begin(trace.SubSched, trace.KDispatch, slot, stAttempt(w))
		if assigned != id {
			tw.Emit(trace.SubSched, trace.KSteal, 0, slot, uint64(assigned))
		}
	}
	fnID := n.AtomicLoad64(s.fnG(slot))
	arg0 := n.AtomicLoad64(s.arg0G(slot))
	arg1 := n.AtomicLoad64(s.arg1G(slot))
	cell := n.AtomicLoad64(s.cellG(slot))

	s.fn(fnID)(n, arg0, arg1)

	// Completion: only the incarnation whose exact (gen, attempt, owner)
	// word is still current may free the slot — a task re-dispatched
	// after a (possibly false) lease expiry bumped the attempt, so a
	// stale runner's CAS fails here and completion stays exactly-once.
	if n.CAS64(s.stateG(slot), running, packState(stGen(w)+1, 0, 0, stFree)) {
		if cell != 0 {
			n.Add64(fabric.GPtr(cell), 1)
		}
		n.Add64(s.completedG(), 1)
		n.Add64(s.loadG(id), ^uint64(0))
		s.service.Record(latencyNS(claimed, nowNS()))
		if tw := s.tw(id); tw != nil {
			tw.End(trace.SubSched, trace.KComplete, slot, stAttempt(w))
		}
	}
	return true
}
