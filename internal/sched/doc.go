// Package sched is FlacOS's rack-wide coordinated task scheduler: the
// layer that makes the memory-interconnected rack schedulable like one
// large multi-core machine. Its state is strategically split exactly as
// the paper prescribes for kernel structures:
//
//   - Hot, node-private state stays local: each node's run queue of
//     purely local tasks is a plain Go channel, and the consumer side of
//     the node's announcement inbox is guarded by a node-private mutex.
//     None of it ever crosses the fabric.
//
//   - Coordination state lives in global memory and is manipulated ONLY
//     with fabric atomics (no Go pointers cross nodes, no reliance on
//     cache coherence): a fixed-size task table whose slots carry a
//     packed state word (generation | attempt | owner | state), a lease
//     word, function/argument words and instrumentation words; a per-node
//     load board (queued+running count, heartbeat); and global
//     submitted/completed/queued counters.
//
// Placement is locality-aware: a task may carry a preferred node (e.g.
// the node whose cache is warm with the task's memsys.Space pages), and
// the submitter consults the load board to honor the preference unless
// that node is overloaded. Announcement rides a per-node flacdk/ds
// MPSC ring, but rings are only a latency optimization — ownership is
// decided solely by a CAS on the task's state word, so idle nodes can
// steal any queued task by scanning the shared table (cross-node work
// stealing through the global queue).
//
// Failure handling is lease-based. A claim writes (owner, claim-beat)
// into the task: the owner node's keeper goroutine renews all of its
// leases implicitly by bumping the node's heartbeat word on the load
// board every tick. When the fault injector crashes a node, its
// heartbeat freezes; surviving keepers observe a Running task whose
// owner's beat has not advanced for ProbeRounds consecutive ticks,
// declare the lease expired, and re-queue the task (attempt+1) for any
// survivor to claim. Completion is published with a generation-checked
// CAS, so even if a slow node is falsely declared dead and its task
// re-dispatched, exactly one completion is recorded and the completion
// cell (if any) is bumped exactly once. Task bodies should therefore be
// idempotent or publish their effects through their own global-memory
// protocol: the scheduler guarantees at-least-once execution and
// exactly-once completion.
package sched
