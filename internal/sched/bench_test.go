package sched

import (
	"testing"
	"time"

	"flacos/internal/fabric"
)

// benchRack builds a 4-node fabric and a started scheduler whose task
// increments a per-node counter — cheap enough that dispatch overhead
// dominates, which is what these benchmarks measure.
func benchRack(b *testing.B, cfg Config) (*fabric.Fabric, *Scheduler, FuncID, fabric.GPtr) {
	b.Helper()
	f := fabric.New(fabric.Config{GlobalSize: 64 << 20, Nodes: 4, CacheCapacityLines: -1})
	s := New(f, cfg)
	b.Cleanup(s.Stop)
	perNode := f.Reserve(8*4, fabric.LineSize)
	fn := s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
		n.Add64(fabric.GPtr(arg0).Add(uint64(n.ID())*8), 1)
	})
	s.Start()
	return f, s, fn, perNode
}

func reportDispatch(b *testing.B, s *Scheduler) {
	if h := s.DispatchHist(); h.Count() > 0 {
		b.ReportMetric(h.Percentile(50), "p50-dispatch-ns")
		b.ReportMetric(h.Percentile(99), "p99-dispatch-ns")
	}
}

// BenchmarkSchedLocal measures dispatch when every task lands on its
// preferred node: submit from node 0 preferring node 0, so the claim is
// an announcement-inbox pop with no cross-node stealing.
func BenchmarkSchedLocal(b *testing.B) {
	f, s, fn, perNode := benchRack(b, Config{
		Policy: PolicyLocality, LocalitySlack: 1 << 40, // never spill off the preferred node
		StealGrace: 10 * time.Millisecond, // and nobody steals within a drain burst
	})
	n0 := f.Node(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Submit(n0, Task{Fn: fn, Arg0: uint64(perNode), Preferred: 0})
		if i%64 == 63 {
			s.Drain(n0) // keep the table from saturating
		}
	}
	if !s.Drain(n0) {
		b.Fatal("Drain aborted")
	}
	b.StopTimer()
	reportDispatch(b, s)
	b.ReportMetric(float64(s.StatsFrom(n0).Stolen), "stolen")
}

// BenchmarkSchedSteal measures the cross-node steal path: every task is
// pinned to node 0 by a huge locality slack, so the other three nodes
// only get work by claiming out of the global table.
func BenchmarkSchedSteal(b *testing.B) {
	f, s, fn, perNode := benchRack(b, Config{
		Policy: PolicyLocality, LocalitySlack: 1 << 40,
		WorkersPerNode: 1, StealGrace: time.Nanosecond, IdleTick: 50 * time.Microsecond,
	})
	n0 := f.Node(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Submit(n0, Task{Fn: fn, Arg0: uint64(perNode), Preferred: 0})
		if i%64 == 63 {
			s.Drain(n0)
		}
	}
	if !s.Drain(n0) {
		b.Fatal("Drain aborted")
	}
	b.StopTimer()
	reportDispatch(b, s)
	b.ReportMetric(float64(s.StatsFrom(n0).Stolen), "stolen")
}
