package irq

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flacos/internal/fabric"
)

func rack(t *testing.T, nodes int) *fabric.Fabric {
	t.Helper()
	return fabric.New(fabric.Config{GlobalSize: 8 << 20, Nodes: nodes})
}

func TestIPIDeliveryAcrossNodes(t *testing.T) {
	f := rack(t, 2)
	c := NewController(f, f.Node(0), 0)
	var got struct {
		from int
		v    Vector
		arg  uint64
	}
	c.Register(1, 7, func(from int, v Vector, arg uint64) {
		got.from, got.v, got.arg = from, v, arg
	})
	if err := c.SendIPI(f.Node(0), 1, 7, 0xabcd); err != nil {
		t.Fatal(err)
	}
	if n := c.DispatchOnce(f.Node(1)); n != 1 {
		t.Fatalf("dispatched %d", n)
	}
	if got.from != 0 || got.v != 7 || got.arg != 0xabcd {
		t.Fatalf("got %+v", got)
	}
	sent, delivered, spurious := c.Stats()
	if sent != 1 || delivered != 1 || spurious != 0 {
		t.Fatalf("stats %d/%d/%d", sent, delivered, spurious)
	}
}

func TestIPIUnregisteredVectorIsSpurious(t *testing.T) {
	f := rack(t, 2)
	c := NewController(f, f.Node(0), 0)
	c.SendIPI(f.Node(0), 1, 99, 0)
	if n := c.DispatchOnce(f.Node(1)); n != 0 {
		t.Fatalf("handled %d", n)
	}
	if _, _, spurious := c.Stats(); spurious != 1 {
		t.Fatal("spurious not counted")
	}
}

func TestIPIBadTarget(t *testing.T) {
	f := rack(t, 2)
	c := NewController(f, f.Node(0), 0)
	if err := c.SendIPI(f.Node(0), 5, 1, 0); err == nil {
		t.Fatal("bad target should fail")
	}
}

func TestDispatcherGoroutine(t *testing.T) {
	f := rack(t, 2)
	c := NewController(f, f.Node(0), 0)
	var count atomic.Int64
	c.Register(1, 3, func(from int, v Vector, arg uint64) { count.Add(1) })
	stop := c.StartDispatcher(f.Node(1))
	defer stop()
	for i := 0; i < 20; i++ {
		for c.SendIPI(f.Node(0), 1, 3, uint64(i)) != nil {
			time.Sleep(time.Millisecond) // inbox momentarily full
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for count.Load() != 20 {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of 20", count.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMWaitWakesOnNotify(t *testing.T) {
	f := rack(t, 2)
	g := f.Reserve(fabric.LineSize, fabric.LineSize)
	var wg sync.WaitGroup
	wg.Add(1)
	var got uint64
	var ok bool
	go func() {
		defer wg.Done()
		got, ok = MWait(f.Node(1), g, 0, 5*time.Second)
	}()
	time.Sleep(5 * time.Millisecond)
	Notify(f.Node(0), g, 42)
	wg.Wait()
	if !ok || got != 42 {
		t.Fatalf("mwait = %d,%v", got, ok)
	}
}

func TestMWaitTimeout(t *testing.T) {
	f := rack(t, 1)
	g := f.Reserve(fabric.LineSize, fabric.LineSize)
	start := time.Now()
	_, ok := MWait(f.Node(0), g, 0, 20*time.Millisecond)
	if ok {
		t.Fatal("mwait should time out")
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("returned before timeout")
	}
}

func TestRouterBalancesAcrossNodes(t *testing.T) {
	f := rack(t, 4)
	c := NewController(f, f.Node(0), 64)
	for n := 0; n < 4; n++ {
		c.Register(n, 1, func(from int, v Vector, arg uint64) {})
	}
	r := NewRouter(c)
	counts := make([]int, 4)
	for i := 0; i < 16; i++ {
		node, err := r.RouteExternal(f.Node(0), 1, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		counts[node]++
	}
	for n, ct := range counts {
		if ct != 4 {
			t.Fatalf("node %d got %d of 16 interrupts (want balanced): %v", n, ct, counts)
		}
	}
	// Completion feedback shifts routing toward drained nodes.
	for i := 0; i < 4; i++ {
		r.Complete(2)
	}
	node, _ := r.RouteExternal(f.Node(0), 1, 0)
	if node != 2 {
		t.Fatalf("routed to %d, want drained node 2 (pending %v)", node, r.Pending())
	}
}
