// Package irq implements the paper's §5 "rack-wide interrupt" future-work
// items as a software layer over the fabric:
//
//   - IPI: inter-processor interrupts delivered to cores on OTHER nodes,
//     carried through per-node MPSC rings in global memory;
//   - mwait: waiting on a global memory word and waking when its value
//     changes (monitor/mwait semantics for fast cross-node notification);
//   - interrupt routing: external (device) interrupts steered to the
//     least-loaded node, rack-wide irqbalance.
//
// Hardware interconnects do not provide these today — which is exactly why
// the paper lists them as open challenges; this package shows the software
// shape FlacOS wants from them and lets the rest of the system (TLB
// shootdown, delegation wakeups, device completion) program against it.
package irq

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/ds"
)

// Vector identifies an interrupt source.
type Vector uint32

// Handler runs in the receiving node's interrupt context.
type Handler func(fromNode int, v Vector, arg uint64)

// ipiCostNS models the send-side cost of crossing the fabric with a
// doorbell write.
const ipiCostNS = 1500

// Controller is the rack's interrupt controller.
type Controller struct {
	fab    *fabric.Fabric
	queues []*ds.MPSCRing // one inbox per node

	mu       sync.Mutex
	handlers []map[Vector]Handler

	sent      atomic.Uint64
	delivered atomic.Uint64
	spurious  atomic.Uint64
}

// NewController lays out one IPI inbox per node (init runs on node).
func NewController(f *fabric.Fabric, node *fabric.Node, inboxDepth uint64) *Controller {
	if inboxDepth == 0 {
		inboxDepth = 64
	}
	c := &Controller{fab: f}
	c.queues = make([]*ds.MPSCRing, f.NumNodes())
	c.handlers = make([]map[Vector]Handler, f.NumNodes())
	for i := range c.queues {
		c.queues[i] = ds.NewMPSCRing(f, node, inboxDepth, 24)
		c.handlers[i] = make(map[Vector]Handler)
	}
	return c
}

// Register installs node's handler for vector v (replacing any previous).
func (c *Controller) Register(node int, v Vector, h Handler) {
	c.mu.Lock()
	c.handlers[node][v] = h
	c.mu.Unlock()
}

// SendIPI posts an inter-processor interrupt from the calling node to any
// core of node `to`. It is the §5 "IPI extended to cores located in
// different nodes".
func (c *Controller) SendIPI(from *fabric.Node, to int, v Vector, arg uint64) error {
	if to < 0 || to >= len(c.queues) {
		return fmt.Errorf("irq: no node %d", to)
	}
	var msg [24]byte
	binary.LittleEndian.PutUint64(msg[:], uint64(from.ID()))
	binary.LittleEndian.PutUint32(msg[8:], uint32(v))
	binary.LittleEndian.PutUint64(msg[16:], arg)
	from.ChargeNS(ipiCostNS)
	if !c.queues[to].TryPush(from, msg[:]) {
		return fmt.Errorf("irq: node %d inbox full", to)
	}
	c.sent.Add(1)
	return nil
}

// DispatchOnce drains node's inbox, invoking handlers; returns how many
// interrupts were handled. Deterministic harnesses call it directly;
// StartDispatcher wraps it in the node's interrupt thread.
func (c *Controller) DispatchOnce(n *fabric.Node) int {
	var buf [24]byte
	handled := 0
	for {
		ln, ok := c.queues[n.ID()].TryPop(n, buf[:])
		if !ok {
			return handled
		}
		if ln != 24 {
			c.spurious.Add(1)
			continue
		}
		from := int(binary.LittleEndian.Uint64(buf[:]))
		v := Vector(binary.LittleEndian.Uint32(buf[8:]))
		arg := binary.LittleEndian.Uint64(buf[16:])
		c.mu.Lock()
		h := c.handlers[n.ID()][v]
		c.mu.Unlock()
		if h == nil {
			c.spurious.Add(1)
			continue
		}
		n.ChargeNS(500) // interrupt entry/exit
		h(from, v, arg)
		c.delivered.Add(1)
		handled++
	}
}

// StartDispatcher runs node n's interrupt thread until the returned stop
// function is called.
func (c *Controller) StartDispatcher(n *fabric.Node) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if c.DispatchOnce(n) == 0 {
				runtime.Gosched()
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// Stats returns (sent, delivered, spurious) counters.
func (c *Controller) Stats() (sent, delivered, spurious uint64) {
	return c.sent.Load(), c.delivered.Load(), c.spurious.Load()
}

// MWait blocks until the global word at g differs from old or the timeout
// elapses, returning the observed value and whether a change was seen.
// It models §5's "global memory triggering an interrupt similar to
// monitor/mwait": the waiting core polls home memory with an exponential
// backoff, charging one fabric atomic per probe.
func MWait(n *fabric.Node, g fabric.GPtr, old uint64, timeout time.Duration) (uint64, bool) {
	deadline := time.Now().Add(timeout)
	backoff := 1
	for {
		if v := n.AtomicLoad64(g); v != old {
			return v, true
		}
		if time.Now().After(deadline) {
			return old, false
		}
		for i := 0; i < backoff; i++ {
			runtime.Gosched()
		}
		if backoff < 64 {
			backoff <<= 1
		}
	}
}

// Notify publishes a new value at g, waking MWaiters.
func Notify(n *fabric.Node, g fabric.GPtr, val uint64) { n.AtomicStore64(g, val) }

// Router steers external (device) interrupts to nodes — §5's rack-wide
// irqbalance. Devices call RouteExternal; the router picks the node with
// the fewest in-flight interrupts.
type Router struct {
	c       *Controller
	pending []atomic.Int64
}

// NewRouter creates a router over the controller.
func NewRouter(c *Controller) *Router {
	return &Router{c: c, pending: make([]atomic.Int64, len(c.queues))}
}

// RouteExternal delivers a device interrupt to the least-loaded node and
// returns the chosen node. from is the node the device is attached to
// (whose fabric port carries the message).
func (r *Router) RouteExternal(from *fabric.Node, v Vector, arg uint64) (int, error) {
	best := 0
	for i := 1; i < len(r.pending); i++ {
		if r.pending[i].Load() < r.pending[best].Load() {
			best = i
		}
	}
	r.pending[best].Add(1)
	err := r.c.SendIPI(from, best, v, arg)
	if err != nil {
		r.pending[best].Add(-1)
	}
	return best, err
}

// Complete records that a routed interrupt finished processing on node.
func (r *Router) Complete(node int) { r.pending[node].Add(-1) }

// Pending returns the per-node in-flight counts (diagnostics).
func (r *Router) Pending() []int64 {
	out := make([]int64, len(r.pending))
	for i := range r.pending {
		out[i] = r.pending[i].Load()
	}
	return out
}
