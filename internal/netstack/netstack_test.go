package netstack

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"flacos/internal/fabric"
)

func rack(t *testing.T) *fabric.Fabric {
	t.Helper()
	return fabric.New(fabric.Config{
		GlobalSize: 1 << 20,
		Nodes:      2,
		Latency:    fabric.LatencyModel{Mode: fabric.LatencyAccount},
	})
}

func TestDialSendRecv(t *testing.T) {
	f := rack(t)
	nw := New(DefaultTCP())
	l, err := nw.Listen(f.Node(0), "10.0.0.1:6379")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := c.Recv(buf)
			if err != nil {
				return
			}
			c.Send(buf[:n])
		}
	}()
	c, err := nw.Dial(f.Node(1), "10.0.0.1:6379")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("PING over simulated ethernet")
	if err := c.Send(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	n, err := c.Recv(buf)
	if err != nil || !bytes.Equal(buf[:n], msg) {
		t.Fatalf("echo = %q, %v", buf[:n], err)
	}
	c.Close()
	wg.Wait()
	l.Close()
}

func TestDialRefusedAndAddressInUse(t *testing.T) {
	f := rack(t)
	nw := New(DefaultTCP())
	if _, err := nw.Dial(f.Node(0), "1.2.3.4:80"); err == nil {
		t.Fatal("dial with no listener should fail")
	}
	l, _ := nw.Listen(f.Node(0), "a:1")
	if _, err := nw.Listen(f.Node(1), "a:1"); err == nil {
		t.Fatal("double listen should fail")
	}
	l.Close()
	if _, err := nw.Listen(f.Node(1), "a:1"); err != nil {
		t.Fatalf("listen after close: %v", err)
	}
}

func TestCloseSemantics(t *testing.T) {
	f := rack(t)
	nw := New(DefaultTCP())
	l, _ := nw.Listen(f.Node(0), "s:1")
	var srv *Conn
	done := make(chan struct{})
	go func() {
		srv, _ = l.Accept()
		close(done)
	}()
	c, err := nw.Dial(f.Node(1), "s:1")
	if err != nil {
		t.Fatal(err)
	}
	<-done
	// In-flight data survives a close issued after the send.
	c.Send([]byte("last words"))
	c.Close()
	buf := make([]byte, 64)
	n, err := srv.Recv(buf)
	if err != nil || string(buf[:n]) != "last words" {
		t.Fatalf("drain after close = %q, %v", buf[:n], err)
	}
	if _, err := srv.Recv(buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv on closed = %v", err)
	}
	if err := srv.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send on closed = %v", err)
	}
	c.Close() // idempotent
}

func TestCostModelCharges(t *testing.T) {
	f := rack(t)
	cfg := DefaultTCP()
	nw := New(cfg)
	l, _ := nw.Listen(f.Node(0), "c:1")
	go func() {
		c, _ := l.Accept()
		buf := make([]byte, 8192)
		for {
			if _, err := c.Recv(buf); err != nil {
				return
			}
		}
	}()
	c, _ := nw.Dial(f.Node(1), "c:1")
	defer c.Close()

	before := f.Node(1).VirtualNS()
	c.Send(make([]byte, 64))
	small := f.Node(1).VirtualNS() - before

	before = f.Node(1).VirtualNS()
	c.Send(make([]byte, 60000)) // 40 MTU-sized packets
	large := f.Node(1).VirtualNS() - before

	if small == 0 || large <= small {
		t.Fatalf("send costs: small=%d large=%d", small, large)
	}
	// Per-packet stack cost must dominate the large send's growth.
	if large < uint64(35*cfg.StackProcessNS) {
		t.Fatalf("large send %dns under-charges packetization", large)
	}
}

func TestRecvBufferTooSmall(t *testing.T) {
	f := rack(t)
	nw := New(DefaultTCP())
	l, _ := nw.Listen(f.Node(0), "b:1")
	var srv *Conn
	done := make(chan struct{})
	go func() { srv, _ = l.Accept(); close(done) }()
	c, _ := nw.Dial(f.Node(1), "b:1")
	defer c.Close()
	<-done
	c.Send(make([]byte, 128))
	if _, err := srv.Recv(make([]byte, 16)); err == nil {
		t.Fatal("undersized recv buffer should error")
	}
}

func TestRDMAOneSided(t *testing.T) {
	f := rack(t)
	r := NewRDMA(DefaultRDMA())
	mr := NewMemoryRegion(4096)
	if mr.Size() != 4096 {
		t.Fatalf("size = %d", mr.Size())
	}
	init := f.Node(1) // initiator
	data := bytes.Repeat([]byte{0x3C}, 1024)
	if err := r.Write(init, mr, 100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1024)
	if err := r.Read(init, mr, 100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("rdma round trip mismatch")
	}
	// Bounds.
	if err := r.Write(init, mr, 4000, make([]byte, 200)); err == nil {
		t.Fatal("out-of-region write should fail")
	}
	if err := r.Read(init, mr, 4000, make([]byte, 200)); err == nil {
		t.Fatal("out-of-region read should fail")
	}
	// Atomics.
	ok, err := r.CompareAndSwap(init, mr, 0, 0, 42)
	if err != nil || !ok {
		t.Fatalf("cas = %v %v", ok, err)
	}
	ok, _ = r.CompareAndSwap(init, mr, 0, 0, 99)
	if ok {
		t.Fatal("stale cas should fail")
	}
	if init.VirtualNS() == 0 {
		t.Fatal("rdma ops charged nothing")
	}
}

func TestTCPCostExceedsRDMACost(t *testing.T) {
	tcp, rdma := DefaultTCP(), DefaultRDMA()
	for _, size := range []int{64, 4096, 65536} {
		t1 := tcp.sendCost(size) + tcp.recvCost(size)
		t2 := rdma.sendCost(size) + rdma.WireLatencyNS
		if t2 >= t1 {
			t.Fatalf("size %d: rdma %dns !< tcp %dns", size, t2, t1)
		}
	}
}
