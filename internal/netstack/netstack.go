// Package netstack is the BASELINE the paper's evaluation compares FlacOS
// against: the disaggregated, network-based world of Figure 1(a), where
// nodes talk over a TCP/IP software stack on direct-connected Ethernet (or
// over one-sided RDMA verbs).
//
// The simulation charges exactly the cost classes the paper names as the
// dominant overhead of the networking method — buffer allocations, data
// copies, and stack processing — plus wire serialization and propagation.
// Messages are delivered through in-process queues; all latency comes from
// the explicit cost model so benchmark comparisons against FlacOS IPC
// reflect the modeled software overheads, not Go scheduling noise.
package netstack

import (
	"errors"
	"fmt"
	"sync"

	"flacos/internal/fabric"
)

// ErrClosed is returned on operations against a closed connection.
var ErrClosed = errors.New("netstack: connection closed")

// Config models one transport's cost structure (all times nanoseconds).
type Config struct {
	// WireLatencyNS is one-way propagation + switch latency per packet.
	WireLatencyNS int
	// BandwidthBytesPerNS is the link's serialization rate (bytes per ns);
	// 1.25 means 10 Gbit/s, 12.5 means 100 Gbit/s.
	BandwidthBytesPerNS float64
	// StackProcessNS is per-packet protocol processing on EACH side:
	// header processing, checksums, interrupt + softirq, socket wakeup.
	StackProcessNS int
	// BufferAllocNS is the allocation cost of a send/receive buffer (skb).
	BufferAllocNS int
	// CopyNSPerByte is the memcpy rate for one data copy.
	CopyNSPerByte float64
	// CopiesPerSide is the number of data copies each side performs
	// (user<->socket buffer, socket buffer<->NIC ring: classically 2).
	CopiesPerSide int
	// MTU is the maximum payload per packet.
	MTU int
	// QueueDepth is the per-connection in-flight message budget.
	QueueDepth int
}

// DefaultTCP returns a cost model for TCP over direct-connected 25 GbE —
// the "networking" bars of Figure 4.
func DefaultTCP() Config {
	return Config{
		WireLatencyNS:       2_000,
		BandwidthBytesPerNS: 3.125, // 25 Gbit/s
		StackProcessNS:      4_500, // header+checksum+IRQ+softirq+wakeup per packet
		BufferAllocNS:       700,
		CopyNSPerByte:       0.05,
		CopiesPerSide:       2,
		MTU:                 1500,
		QueueDepth:          64,
	}
}

// DefaultRDMA returns a cost model for one-sided RDMA over 100 Gb fabric:
// no per-packet stack processing on the passive side, one copy, kernel
// bypass — but still NIC doorbells, PCIe and wire latency.
func DefaultRDMA() Config {
	return Config{
		WireLatencyNS:       1_200,
		BandwidthBytesPerNS: 12.5, // 100 Gbit/s
		StackProcessNS:      600,  // verb post + completion polling
		BufferAllocNS:       0,    // pre-registered MRs
		CopyNSPerByte:       0.05,
		CopiesPerSide:       1,
		MTU:                 4096,
		QueueDepth:          64,
	}
}

// sendCost returns the sender-side cost of transmitting size bytes.
func (c Config) sendCost(size int) int {
	packets := (size + c.MTU - 1) / c.MTU
	if packets == 0 {
		packets = 1
	}
	cost := c.BufferAllocNS +
		packets*c.StackProcessNS +
		int(float64(size)*c.CopyNSPerByte)*c.CopiesPerSide +
		int(float64(size)/c.BandwidthBytesPerNS)
	return cost
}

// recvCost returns the receiver-side cost of absorbing size bytes,
// including the wire's one-way latency.
func (c Config) recvCost(size int) int {
	packets := (size + c.MTU - 1) / c.MTU
	if packets == 0 {
		packets = 1
	}
	return c.WireLatencyNS +
		c.BufferAllocNS +
		packets*c.StackProcessNS +
		int(float64(size)*c.CopyNSPerByte)*c.CopiesPerSide
}

// Network is one simulated fabric of links between the rack's nodes.
type Network struct {
	cfg Config

	mu        sync.Mutex
	listeners map[string]*Listener
}

// New creates a network with the given cost model.
func New(cfg Config) *Network {
	return &Network{cfg: cfg, listeners: make(map[string]*Listener)}
}

// Listener accepts inbound connections on an address.
type Listener struct {
	nw      *Network
	node    *fabric.Node
	addr    string
	backlog chan *Conn
	closed  bool
}

// Listen binds addr on node n.
func (nw *Network) Listen(n *fabric.Node, addr string) (*Listener, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if _, ok := nw.listeners[addr]; ok {
		return nil, fmt.Errorf("netstack: listen %s: address in use", addr)
	}
	l := &Listener{nw: nw, node: n, addr: addr, backlog: make(chan *Conn, 16)}
	nw.listeners[addr] = l
	return l, nil
}

// Accept returns the next established connection.
func (l *Listener) Accept() (*Conn, error) {
	c, ok := <-l.backlog
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

// Close stops the listener.
func (l *Listener) Close() {
	l.nw.mu.Lock()
	defer l.nw.mu.Unlock()
	if !l.closed {
		l.closed = true
		delete(l.nw.listeners, l.addr)
		close(l.backlog)
	}
}

// Conn is one side of an established connection.
type Conn struct {
	nw   *Network
	node *fabric.Node

	in     chan []byte
	peerIn chan []byte

	closeOnce *sync.Once // shared by both sides
	closedCh  chan struct{}
}

// Dial connects node n to addr, paying a three-way-handshake's worth of
// round trips.
func (nw *Network) Dial(n *fabric.Node, addr string) (*Conn, error) {
	nw.mu.Lock()
	l := nw.listeners[addr]
	nw.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("netstack: dial %s: connection refused", addr)
	}
	depth := nw.cfg.QueueDepth
	if depth == 0 {
		depth = 64
	}
	cIn := make(chan []byte, depth)
	sIn := make(chan []byte, depth)
	once := new(sync.Once)
	closedCh := make(chan struct{})
	client := &Conn{nw: nw, node: n, in: cIn, peerIn: sIn, closeOnce: once, closedCh: closedCh}
	server := &Conn{nw: nw, node: l.node, in: sIn, peerIn: cIn, closeOnce: once, closedCh: closedCh}
	// SYN, SYN-ACK, ACK: one and a half RTTs of wire + stack on each end.
	n.ChargeNS(3 * (nw.cfg.WireLatencyNS + nw.cfg.StackProcessNS))
	select {
	case l.backlog <- server:
	default:
		return nil, fmt.Errorf("netstack: dial %s: backlog full", addr)
	}
	return client, nil
}

// Send transmits msg, charging the sender's share of the software stack.
func (c *Conn) Send(msg []byte) error {
	select {
	case <-c.closedCh:
		return ErrClosed
	default:
	}
	// The stack copies the user's buffer into socket buffers — the data no
	// longer aliases the caller's slice, which we reproduce faithfully.
	cp := make([]byte, len(msg))
	copy(cp, msg)
	c.node.ChargeNS(c.nw.cfg.sendCost(len(msg)))
	select {
	case c.peerIn <- cp:
		return nil
	case <-c.closedCh:
		return ErrClosed
	}
}

// Recv receives the next message into buf, charging the receiver's share.
// Messages already in flight when the connection closes are still
// delivered.
func (c *Conn) Recv(buf []byte) (int, error) {
	var msg []byte
	select {
	case msg = <-c.in: // drain in-flight data first
	default:
		select {
		case msg = <-c.in:
		case <-c.closedCh:
			// Close raced with a sender: one more non-blocking drain.
			select {
			case msg = <-c.in:
			default:
				return 0, ErrClosed
			}
		}
	}
	if len(msg) > len(buf) {
		return 0, fmt.Errorf("netstack: message %d exceeds buffer %d", len(msg), len(buf))
	}
	c.node.ChargeNS(c.nw.cfg.recvCost(len(msg)))
	copy(buf, msg)
	return len(msg), nil
}

// Close shuts down both directions (idempotent, either side).
func (c *Conn) Close() {
	c.closeOnce.Do(func() { close(c.closedCh) })
}
