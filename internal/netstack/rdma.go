package netstack

import (
	"fmt"
	"sync"

	"flacos/internal/fabric"
)

// MemoryRegion is a pinned, remotely accessible buffer — the registered MR
// of RDMA verbs. It lives in the owner's memory; remote nodes reach it only
// through one-sided Read/Write verbs that pay NIC + wire costs.
type MemoryRegion struct {
	mu   sync.Mutex
	data []byte
}

// NewMemoryRegion registers size bytes.
func NewMemoryRegion(size int) *MemoryRegion {
	return &MemoryRegion{data: make([]byte, size)}
}

// Size returns the region's length.
func (mr *MemoryRegion) Size() int { return len(mr.data) }

// RDMA is the one-sided verbs transport over the network's RDMA cost
// model. It represents the "disaggregated memory over RDMA" baseline: data
// is reachable remotely, but every access is a full NIC round trip, unlike
// load/store-able fabric memory.
type RDMA struct {
	cfg Config
}

// NewRDMA creates a verbs transport with the given cost model (typically
// DefaultRDMA()).
func NewRDMA(cfg Config) *RDMA { return &RDMA{cfg: cfg} }

// Write performs a one-sided RDMA write of data into mr at off, charged to
// the initiating node. The passive side spends nothing — the defining RDMA
// property.
func (r *RDMA) Write(n *fabric.Node, mr *MemoryRegion, off int, data []byte) error {
	if off+len(data) > len(mr.data) {
		return fmt.Errorf("netstack: rdma write [%d,+%d) outside region of %d", off, len(data), len(mr.data))
	}
	n.ChargeNS(r.cfg.sendCost(len(data)) + r.cfg.WireLatencyNS)
	mr.mu.Lock()
	copy(mr.data[off:], data)
	mr.mu.Unlock()
	return nil
}

// Read performs a one-sided RDMA read from mr at off into buf. The
// initiator pays a full round trip: request out, data back.
func (r *RDMA) Read(n *fabric.Node, mr *MemoryRegion, off int, buf []byte) error {
	if off+len(buf) > len(mr.data) {
		return fmt.Errorf("netstack: rdma read [%d,+%d) outside region of %d", off, len(buf), len(mr.data))
	}
	n.ChargeNS(2*r.cfg.WireLatencyNS + r.cfg.sendCost(len(buf)))
	mr.mu.Lock()
	copy(buf, mr.data[off:off+len(buf)])
	mr.mu.Unlock()
	return nil
}

// CompareAndSwap performs an 8-byte RDMA atomic on the region.
func (r *RDMA) CompareAndSwap(n *fabric.Node, mr *MemoryRegion, off int, old, new uint64) (bool, error) {
	if off+8 > len(mr.data) {
		return false, fmt.Errorf("netstack: rdma cas at %d outside region", off)
	}
	n.ChargeNS(2*r.cfg.WireLatencyNS + r.cfg.StackProcessNS)
	mr.mu.Lock()
	defer mr.mu.Unlock()
	cur := uint64(0)
	for i := 0; i < 8; i++ {
		cur |= uint64(mr.data[off+i]) << (8 * i)
	}
	if cur != old {
		return false, nil
	}
	for i := 0; i < 8; i++ {
		mr.data[off+i] = byte(new >> (8 * i))
	}
	return true, nil
}
