package histcheck

// bitset tracks which operations the current search path has
// linearized; its hash buckets the memoization cache.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)   { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) equals(o bitset) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// mix64 is the splitmix64 finalizer. The checker keeps a running hash
// of the linearized set as the XOR of mix64(id) over its members, so
// set/clear update it in O(1) instead of rehashing the whole set on
// every linearization attempt; equals stays the exact tie-breaker.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
