package histcheck

import (
	"sync"
	"sync/atomic"
)

// Recorder collects a concurrent operation history. Its clock is a
// single atomic counter, so timestamps are unique and totally ordered
// with the real-time order of the stamping instructions: if operation A
// returned before operation B was called, A's Return stamp is smaller
// than B's Call stamp, which is exactly the precedence relation
// linearizability must respect. Safe for concurrent use.
type Recorder struct {
	clock atomic.Int64
	mu    sync.Mutex
	ops   []Operation
}

// NewRecorder returns an empty history recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Pending is an operation that has been called but not yet returned.
type Pending struct {
	r      *Recorder
	client int
	input  any
	call   int64
}

// Begin stamps the call time of an operation just before the caller
// issues it against the real object.
func (r *Recorder) Begin(client int, input any) *Pending {
	return &Pending{r: r, client: client, input: input, call: r.clock.Add(1)}
}

// End stamps the return time and commits the operation to the history.
// Call it with the observed output immediately after the real operation
// returns.
func (p *Pending) End(output any) {
	ret := p.r.clock.Add(1)
	p.r.mu.Lock()
	p.r.ops = append(p.r.ops, Operation{
		Client: p.client,
		Input:  p.input,
		Output: output,
		Call:   p.call,
		Return: ret,
	})
	p.r.mu.Unlock()
}

// Operations returns a copy of the recorded history.
func (r *Recorder) Operations() []Operation {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Operation(nil), r.ops...)
}

// Len returns the number of completed operations recorded so far.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}
