package histcheck

import "testing"

// FuzzHistcheck feeds the checker hostile histories — overlapping,
// inverted, duplicated and nonsensical intervals against both models —
// and requires it to return a verdict without panicking or diverging.
// Histories are decoded from raw bytes, 8 per operation, capped at 16
// operations so even a fully-overlapping adversarial history keeps the
// WGL search space (2^n linearized-sets x tiny state space) bounded.
func FuzzHistcheck(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 2, 0, 0, 0, 0})
	f.Add([]byte{
		1, 0, 5, 1, 3, 0, 1, 0, // SET k0=5 in [1,3]
		0, 0, 5, 1, 2, 4, 0, 0, // GET k0 -> (5,true) in [2,4]
		3, 1, 0, 0, 9, 5, 1, 1, // INCR k1 inverted interval [9,5]
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxOps = 16
		var kvOps, qOps []Operation
		for i := 0; i+8 <= len(data) && len(kvOps) < maxOps; i += 8 {
			b := data[i : i+8]
			call := int64(b[4])
			ret := int64(b[5]) // may precede call: the checker must cope
			kvOps = append(kvOps, Operation{
				Client: int(b[7] % 4),
				Input: KVInput{
					Op:  KVOp(b[0] % 5), // includes one out-of-range op
					Key: string(rune('a' + b[1]%3)),
					Val: uint64(b[2]),
				},
				Output: KVOutput{Val: uint64(b[2] % 4), Found: b[3]&1 == 1},
				Call:   call,
				Return: ret,
			})
			qOps = append(qOps, Operation{
				Client: int(b[7] % 4),
				Input:  QueueInput{Op: QueueOp(b[0] % 3), Val: uint64(b[2] % 8)},
				Output: QueueOutput{Val: uint64(b[3] % 8), OK: b[6]&1 == 1},
				Call:   call,
				Return: ret,
			})
		}
		// Both verdicts are acceptable; panics and hangs are not.
		res := Check(KVModel(), kvOps)
		if !res.Ok && res.Info == "" {
			t.Fatal("KV rejection with empty Info")
		}
		res = Check(QueueModel(), qOps)
		if !res.Ok && res.Info == "" {
			t.Fatal("queue rejection with empty Info")
		}
		// A history that passed must still pass with its operations
		// reordered in the slice: Check is order-insensitive by spec
		// (ordering comes from timestamps, not slice position).
		if len(kvOps) > 1 {
			rev := make([]Operation, len(kvOps))
			for i, op := range kvOps {
				rev[len(kvOps)-1-i] = op
			}
			a, b := Check(KVModel(), kvOps).Ok, Check(KVModel(), rev).Ok
			if a != b {
				t.Fatalf("verdict depends on slice order: %v vs reversed %v", a, b)
			}
		}
	})
}
