package histcheck

import (
	"sync"
	"testing"
)

func op(client int, in KVInput, out KVOutput, call, ret int64) Operation {
	return Operation{Client: client, Input: in, Output: out, Call: call, Return: ret}
}

func TestSequentialHistoryAccepted(t *testing.T) {
	ops := []Operation{
		op(0, KVInput{Op: KVSet, Key: "a", Val: 1}, KVOutput{}, 1, 2),
		op(1, KVInput{Op: KVGet, Key: "a"}, KVOutput{Val: 1, Found: true}, 3, 4),
		op(0, KVInput{Op: KVDel, Key: "a"}, KVOutput{Found: true}, 5, 6),
		op(1, KVInput{Op: KVGet, Key: "a"}, KVOutput{}, 7, 8),
		op(2, KVInput{Op: KVIncr, Key: "a"}, KVOutput{Val: 1}, 9, 10),
		op(2, KVInput{Op: KVIncr, Key: "a"}, KVOutput{Val: 2}, 11, 12),
	}
	if res := Check(KVModel(), ops); !res.Ok {
		t.Fatalf("sequential history rejected: %s", res.Info)
	}
}

func TestStaleReadRejected(t *testing.T) {
	ops := []Operation{
		op(0, KVInput{Op: KVSet, Key: "a", Val: 1}, KVOutput{}, 1, 2),
		op(0, KVInput{Op: KVSet, Key: "a", Val: 2}, KVOutput{}, 3, 4),
		// Strictly after the second set returned, a reader still sees 1:
		// the exact symptom of a missing write-back/invalidate pair.
		op(1, KVInput{Op: KVGet, Key: "a"}, KVOutput{Val: 1, Found: true}, 5, 6),
	}
	res := Check(KVModel(), ops)
	if res.Ok {
		t.Fatal("stale read accepted")
	}
	if res.Info == "" {
		t.Fatal("rejection carries no counterexample info")
	}
}

func TestOverlappingOpsUseTheSlack(t *testing.T) {
	// The read overlaps the set, so it may linearize on either side:
	// a miss is legal.
	ops := []Operation{
		op(0, KVInput{Op: KVSet, Key: "a", Val: 1}, KVOutput{}, 1, 6),
		op(1, KVInput{Op: KVGet, Key: "a"}, KVOutput{}, 2, 3),
		op(1, KVInput{Op: KVGet, Key: "a"}, KVOutput{Val: 1, Found: true}, 4, 5),
	}
	if res := Check(KVModel(), ops); !res.Ok {
		t.Fatalf("overlapping history rejected: %s", res.Info)
	}
	// But a read strictly after the set returned must hit.
	ops = []Operation{
		op(0, KVInput{Op: KVSet, Key: "a", Val: 1}, KVOutput{}, 1, 2),
		op(1, KVInput{Op: KVGet, Key: "a"}, KVOutput{}, 3, 4),
	}
	if res := Check(KVModel(), ops); res.Ok {
		t.Fatal("lost update accepted")
	}
}

func TestPartitionIndependence(t *testing.T) {
	// Key b's violation must be caught even though key a's history is fine.
	ops := []Operation{
		op(0, KVInput{Op: KVSet, Key: "a", Val: 1}, KVOutput{}, 1, 2),
		op(1, KVInput{Op: KVGet, Key: "a"}, KVOutput{Val: 1, Found: true}, 3, 4),
		op(2, KVInput{Op: KVGet, Key: "b"}, KVOutput{Val: 9, Found: true}, 5, 6),
	}
	if res := Check(KVModel(), ops); res.Ok {
		t.Fatal("phantom read on key b accepted")
	}
}

func TestQueueFIFO(t *testing.T) {
	push := func(v uint64, call, ret int64) Operation {
		return Operation{Input: QueueInput{Op: QueuePush, Val: v}, Call: call, Return: ret}
	}
	pop := func(v uint64, ok bool, call, ret int64) Operation {
		return Operation{Input: QueueInput{Op: QueuePop}, Output: QueueOutput{Val: v, OK: ok}, Call: call, Return: ret}
	}
	good := []Operation{push(1, 1, 2), push(2, 3, 4), pop(1, true, 5, 6), pop(2, true, 7, 8), pop(0, false, 9, 10)}
	if res := Check(QueueModel(), good); !res.Ok {
		t.Fatalf("FIFO history rejected: %s", res.Info)
	}
	reordered := []Operation{push(1, 1, 2), push(2, 3, 4), pop(2, true, 5, 6)}
	if res := Check(QueueModel(), reordered); res.Ok {
		t.Fatal("LIFO pop accepted by FIFO model")
	}
	phantomEmpty := []Operation{push(1, 1, 2), pop(0, false, 3, 4)}
	if res := Check(QueueModel(), phantomEmpty); res.Ok {
		t.Fatal("empty pop after completed push accepted")
	}
}

func TestMalformedHistoryRejectedNotPanicked(t *testing.T) {
	ops := []Operation{op(0, KVInput{Op: KVSet, Key: "a"}, KVOutput{}, 10, 2)}
	if res := Check(KVModel(), ops); res.Ok {
		t.Fatal("operation returning before it was called accepted")
	}
}

// TestRecorderAgainstRealMutexMap drives a genuinely linearizable object
// (a mutex-guarded map) through the Recorder and checks the history
// passes — the end-to-end smoke for the Recorder's clock semantics.
func TestRecorderAgainstRealMutexMap(t *testing.T) {
	var (
		mu sync.Mutex
		m  = map[string]uint64{}
	)
	rec := NewRecorder()
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			key := []string{"x", "y"}[c%2]
			for i := 0; i < 200; i++ {
				if c < 2 {
					v := uint64(c*1000 + i)
					p := rec.Begin(c, KVInput{Op: KVSet, Key: key, Val: v})
					mu.Lock()
					m[key] = v
					mu.Unlock()
					p.End(KVOutput{})
				} else {
					p := rec.Begin(c, KVInput{Op: KVGet, Key: key})
					mu.Lock()
					v, ok := m[key]
					mu.Unlock()
					p.End(KVOutput{Val: v, Found: ok})
				}
			}
		}(c)
	}
	wg.Wait()
	if res := Check(KVModel(), rec.Operations()); !res.Ok {
		t.Fatalf("mutex-map history rejected: %s", res.Info)
	}
	if rec.Len() != 800 {
		t.Fatalf("recorded %d ops, want 800", rec.Len())
	}
}
