// Package histcheck is a linearizability checker for operation
// histories, in the style of Porcupine (Wing & Gong's algorithm with
// Lowe's memoization): given a sequential model of an object and a
// concurrent history of timed call/return intervals, it searches for a
// linearization — a total order of the operations, each taking effect
// at some instant inside its interval, that the sequential model
// accepts.
//
// FlacOS needs this because its shared objects (the rack-wide Redis
// store, the fabric rings) are built on a non-coherent fabric where the
// failure mode of a missing write-back or invalidate is precisely a
// non-linearizable history: a reader observing a value that no
// linearization can explain. The repo's earlier history tests hand-rolled
// per-shape checks (single-writer floors, exactly-once counters); this
// package replaces them with the real decision procedure, reusable by
// any test that can record Operations.
//
// Usage:
//
//	rec := histcheck.NewRecorder()
//	op := rec.Begin(client, histcheck.KVInput{Op: histcheck.KVSet, Key: "k", Val: 7})
//	... perform the real operation ...
//	op.End(histcheck.KVOutput{})
//	res := histcheck.Check(histcheck.KVModel(), rec.Operations())
//	if !res.Ok { t.Fatal(res.Info) }
package histcheck

import (
	"fmt"
	"reflect"
	"sort"
)

// Operation is one completed call against the object under test:
// a client, an input, an output, and the logical-time window
// [Call, Return] during which it was in flight.
type Operation struct {
	Client int   // recording client (diagnostics only)
	Input  any   // what was asked
	Output any   // what came back
	Call   int64 // logical timestamp when the call was issued
	Return int64 // logical timestamp when the result was observed
}

// Model is a sequential specification. States and inputs/outputs are
// opaque to the checker; Step must be pure (clone, never mutate, the
// incoming state — the checker backtracks and will reuse it).
type Model struct {
	// Init returns the object's initial state.
	Init func() any
	// Step applies input to state. It returns whether the sequential
	// object could have returned output, and the successor state.
	Step func(state, input, output any) (bool, any)
	// Equal compares two states for the memoization cache. Nil means
	// reflect.DeepEqual.
	Equal func(a, b any) bool
	// Partition optionally splits a history into independent
	// sub-histories (e.g. per key) checked separately; linearizability
	// is local, so the conjunction is equivalent and exponentially
	// cheaper. Nil means one partition.
	Partition func(ops []Operation) [][]Operation
	// Describe renders an input/output pair for counterexamples. Nil
	// means %v formatting.
	Describe func(input, output any) string
}

// Result is a checker verdict. When Ok is false, Info names the first
// operation the search could not place in any linearization.
type Result struct {
	Ok   bool
	Info string
}

// Check decides whether ops is linearizable with respect to model.
// A malformed history (an operation whose Return precedes its Call)
// yields a failed Result rather than a panic, so hostile histories —
// including fuzzer-generated ones — are safe to feed in.
func Check(model Model, ops []Operation) Result {
	if model.Init == nil || model.Step == nil {
		return Result{Ok: false, Info: "histcheck: model must define Init and Step"}
	}
	for i, op := range ops {
		if op.Return < op.Call {
			return Result{Ok: false, Info: fmt.Sprintf(
				"histcheck: malformed history: operation %d returns at %d before its call at %d", i, op.Return, op.Call)}
		}
	}
	parts := [][]Operation{ops}
	if model.Partition != nil {
		parts = model.Partition(ops)
	}
	for _, part := range parts {
		if res := checkPartition(model, part); !res.Ok {
			return res
		}
	}
	return Result{Ok: true}
}

// entry is one end of an operation interval in the time-sorted event
// list the search walks. A call entry's match points at its return
// entry; return entries have match == nil.
type entry struct {
	id         int // operation index within the partition
	input      any
	output     any
	time       int64
	isReturn   bool
	match      *entry // call -> its return
	prev, next *entry
}

// makeEntries builds the doubly-linked, time-sorted event list, with a
// sentinel head. Ties sort calls before returns, treating equal-stamp
// operations as overlapping (the permissive reading; the Recorder's
// atomic clock never produces ties).
func makeEntries(ops []Operation) *entry {
	events := make([]*entry, 0, 2*len(ops))
	for i, op := range ops {
		call := &entry{id: i, input: op.Input, output: op.Output, time: op.Call}
		ret := &entry{id: i, output: op.Output, time: op.Return, isReturn: true}
		call.match = ret
		events = append(events, call, ret)
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].time != events[j].time {
			return events[i].time < events[j].time
		}
		return !events[i].isReturn && events[j].isReturn
	})
	head := &entry{id: -1}
	cur := head
	for _, e := range events {
		e.prev = cur
		cur.next = e
		cur = e
	}
	return head
}

// lift removes a call entry and its return from the list (the operation
// has been tentatively linearized).
func lift(e *entry) {
	e.prev.next = e.next
	if e.next != nil {
		e.next.prev = e.prev
	}
	m := e.match
	m.prev.next = m.next
	if m.next != nil {
		m.next.prev = m.prev
	}
}

// unlift reinserts a lifted call/return pair at their remembered
// positions (the tentative linearization is being backtracked).
func unlift(e *entry) {
	m := e.match
	m.prev.next = m
	if m.next != nil {
		m.next.prev = m
	}
	e.prev.next = e
	if e.next != nil {
		e.next.prev = e
	}
}

// checkPartition runs Wing & Gong's search with Lowe's (linearized-set,
// state) memoization over one independent sub-history.
func checkPartition(model Model, ops []Operation) Result {
	n := len(ops)
	if n == 0 {
		return Result{Ok: true}
	}
	equal := model.Equal
	if equal == nil {
		equal = reflect.DeepEqual
	}
	head := makeEntries(ops)
	linearized := newBitset(n)
	var linHash uint64 // running XOR-of-mix64 hash of the linearized set
	cache := map[uint64][]cacheEntry{}
	type frame struct {
		e     *entry
		state any
	}
	var stack []frame
	state := model.Init()
	e := head.next
	for head.next != nil {
		if e == nil {
			// Ran past the last event without being able to linearize
			// everything that is still in the list: backtrack.
			if len(stack) == 0 {
				return counterexample(model, ops, head)
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			state = top.state
			linearized.clear(top.e.id)
			linHash ^= mix64(uint64(top.e.id))
			unlift(top.e)
			e = top.e.next
			continue
		}
		if !e.isReturn {
			// Try linearizing this in-flight operation here.
			ok, next := model.Step(state, e.input, e.output)
			if ok {
				linearized.set(e.id)
				linHash ^= mix64(uint64(e.id))
				if cacheWitness(cache, equal, linHash, linearized, next) {
					stack = append(stack, frame{e: e, state: state})
					state = next
					lift(e)
					e = head.next
					continue
				}
				linearized.clear(e.id)
				linHash ^= mix64(uint64(e.id))
			}
			e = e.next
			continue
		}
		// A return entry: the operation that returned here was not
		// linearized on this path, and nothing after its return can
		// precede it — this path is dead. (Equivalent to e == nil.)
		e = nil
	}
	return Result{Ok: true}
}

// cacheEntry pairs a linearized-set with a model state already proven
// reachable; revisiting the pair cannot lead anywhere new.
type cacheEntry struct {
	lin   bitset
	state any
}

// cacheWitness records (linearized, state) and reports whether it is
// new. Returning false prunes the search (Lowe's optimization).
func cacheWitness(cache map[uint64][]cacheEntry, equal func(a, b any) bool, h uint64, lin bitset, state any) bool {
	for _, c := range cache[h] {
		if c.lin.equals(lin) && equal(c.state, state) {
			return false
		}
	}
	cache[h] = append(cache[h], cacheEntry{lin: lin.clone(), state: state})
	return true
}

// counterexample names the first un-linearizable prefix for the test
// failure message.
func counterexample(model Model, ops []Operation, head *entry) Result {
	describe := model.Describe
	if describe == nil {
		describe = func(in, out any) string { return fmt.Sprintf("%v -> %v", in, out) }
	}
	// The first remaining call entry is the operation the search could
	// never place; report it with its interval for debugging.
	for e := head.next; e != nil; e = e.next {
		if !e.isReturn {
			op := ops[e.id]
			return Result{Ok: false, Info: fmt.Sprintf(
				"histcheck: history is not linearizable: no linearization point for client %d op %s in [%d,%d]",
				op.Client, describe(op.Input, op.Output), op.Call, op.Return)}
		}
	}
	return Result{Ok: false, Info: "histcheck: history is not linearizable"}
}
