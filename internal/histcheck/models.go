package histcheck

import "fmt"

// This file carries the two sequential specifications FlacOS's shared
// objects are tested against: a per-key key/value cell (the rack-wide
// Redis store) and a FIFO queue (the fabric rings). Both are plain
// Models; tests with other shapes can define their own.

// KVOp selects a key/value operation.
type KVOp uint8

const (
	KVGet KVOp = iota
	KVSet
	KVDel
	KVIncr
)

func (o KVOp) String() string {
	switch o {
	case KVGet:
		return "GET"
	case KVSet:
		return "SET"
	case KVDel:
		return "DEL"
	case KVIncr:
		return "INCR"
	}
	return fmt.Sprintf("KVOp(%d)", uint8(o))
}

// KVInput is one key/value call. Val is the value being SET; GET, DEL
// and INCR ignore it.
type KVInput struct {
	Op  KVOp
	Key string
	Val uint64
}

// KVOutput is what came back: Found reports a GET hit or a DEL that
// removed the key; Val carries the GET value or the INCR result.
type KVOutput struct {
	Val   uint64
	Found bool
}

// kvState is one key's sequential state; histories are partitioned per
// key, so a scalar cell suffices.
type kvState struct {
	val     uint64
	present bool
}

// KVModel returns the sequential specification of a linearizable
// key/value store with GET/SET/DEL/INCR, partitioned by key.
func KVModel() Model {
	return Model{
		Init: func() any { return kvState{} },
		Step: func(state, input, output any) (bool, any) {
			s := state.(kvState)
			in := input.(KVInput)
			out, _ := output.(KVOutput)
			switch in.Op {
			case KVGet:
				ok := out.Found == s.present && (!out.Found || out.Val == s.val)
				return ok, s
			case KVSet:
				return true, kvState{val: in.Val, present: true}
			case KVDel:
				return out.Found == s.present, kvState{}
			case KVIncr:
				nv := uint64(1)
				if s.present {
					nv = s.val + 1
				}
				return out.Val == nv, kvState{val: nv, present: true}
			}
			return false, s
		},
		Equal: func(a, b any) bool { return a.(kvState) == b.(kvState) },
		Partition: func(ops []Operation) [][]Operation {
			byKey := map[string][]Operation{}
			var order []string
			for _, op := range ops {
				in, ok := op.Input.(KVInput)
				if !ok {
					// Foreign inputs share one partition so Step can
					// reject them instead of the checker panicking.
					in.Key = ""
				}
				if _, seen := byKey[in.Key]; !seen {
					order = append(order, in.Key)
				}
				byKey[in.Key] = append(byKey[in.Key], op)
			}
			parts := make([][]Operation, 0, len(order))
			for _, k := range order {
				parts = append(parts, byKey[k])
			}
			return parts
		},
		Describe: func(input, output any) string {
			in, _ := input.(KVInput)
			out, _ := output.(KVOutput)
			switch in.Op {
			case KVGet:
				if !out.Found {
					return fmt.Sprintf("GET %q -> miss", in.Key)
				}
				return fmt.Sprintf("GET %q -> %d", in.Key, out.Val)
			case KVSet:
				return fmt.Sprintf("SET %q = %d", in.Key, in.Val)
			case KVDel:
				return fmt.Sprintf("DEL %q -> %v", in.Key, out.Found)
			case KVIncr:
				return fmt.Sprintf("INCR %q -> %d", in.Key, out.Val)
			}
			return fmt.Sprintf("%v -> %v", input, output)
		},
	}
}

// QueueOp selects a queue operation.
type QueueOp uint8

const (
	QueuePush QueueOp = iota
	QueuePop
)

// QueueInput is one queue call; Val is the pushed value (POP ignores it).
type QueueInput struct {
	Op  QueueOp
	Val uint64
}

// QueueOutput is a POP result: OK false means the queue was observed
// empty (a TryPop miss), otherwise Val is the dequeued value.
type QueueOutput struct {
	Val uint64
	OK  bool
}

// QueueModel returns the sequential specification of a linearizable
// FIFO queue — the contract of the fabric SPSC/MPSC rings.
func QueueModel() Model {
	return Model{
		Init: func() any { return []uint64(nil) },
		Step: func(state, input, output any) (bool, any) {
			q := state.([]uint64)
			in := input.(QueueInput)
			switch in.Op {
			case QueuePush:
				nq := make([]uint64, len(q)+1)
				copy(nq, q)
				nq[len(q)] = in.Val
				return true, nq
			case QueuePop:
				out, _ := output.(QueueOutput)
				if !out.OK {
					return len(q) == 0, q
				}
				if len(q) == 0 || q[0] != out.Val {
					return false, q
				}
				return true, q[1:]
			}
			return false, q
		},
		Equal: func(a, b any) bool {
			qa, qb := a.([]uint64), b.([]uint64)
			if len(qa) != len(qb) {
				return false
			}
			for i := range qa {
				if qa[i] != qb[i] {
					return false
				}
			}
			return true
		},
		Describe: func(input, output any) string {
			in, _ := input.(QueueInput)
			if in.Op == QueuePush {
				return fmt.Sprintf("PUSH %d", in.Val)
			}
			out, _ := output.(QueueOutput)
			if !out.OK {
				return "POP -> empty"
			}
			return fmt.Sprintf("POP -> %d", out.Val)
		},
	}
}
