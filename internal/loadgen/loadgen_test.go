package loadgen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quickCfg pins testing/quick's own source so every property run draws
// the same parameter sets — a property that holds, holds on every CI run.
func quickCfg(maxCount int) *quick.Config {
	return &quick.Config{Rand: rand.New(rand.NewSource(7)), MaxCount: maxCount}
}

// Property: a Poisson stream's empirical mean inter-arrival gap matches
// 1e9/rate within tolerance, for any seed and a wide range of rates.
func TestQuickPoissonMean(t *testing.T) {
	const draws = 20000
	prop := func(seed uint64, rateRaw uint16) bool {
		rate := 1e3 + float64(rateRaw)*15 // ~1e3..1e6 ops/sec
		a := NewArrivals(seed, rate)
		var last uint64
		for i := 0; i < draws; i++ {
			last = a.Next()
		}
		gotMean := float64(last) / draws
		wantMean := 1e9 / rate
		// CLT: relative error of the mean of n exp draws ~ 1/sqrt(n);
		// 5 sigma at n=20000 is ~3.5%.
		if rel := math.Abs(gotMean-wantMean) / wantMean; rel > 0.05 {
			t.Logf("seed=%d rate=%.0f: mean gap %.1fns want %.1fns (rel %.3f)", seed, rate, gotMean, wantMean, rel)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(30)); err != nil {
		t.Fatal(err)
	}
}

// Property: the same seed replays the identical arrival schedule and the
// identical Zipf rank sequence — determinism is what makes a perf
// regression bisectable.
func TestQuickSeededReplayIdentical(t *testing.T) {
	prop := func(seed uint64) bool {
		a1, a2 := NewArrivals(seed, 5e5), NewArrivals(seed, 5e5)
		z1 := NewZipf(NewRand(seed), 512, 0.99)
		z2 := NewZipf(NewRand(seed), 512, 0.99)
		for i := 0; i < 4096; i++ {
			if a1.Next() != a2.Next() || z1.Next() != z2.Next() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(20)); err != nil {
		t.Fatal(err)
	}
}

// Property: Zipf head frequencies match the analytic distribution. The
// top ranks (plus an aggregated tail bucket) are checked with a
// chi-squared statistic against a generous critical value — catching a
// sampler that is systematically wrong, not one that is merely random.
func TestQuickZipfHeadChiSquared(t *testing.T) {
	const (
		draws = 50000
		head  = 16
		// df = head (head ranks + tail bucket - 1); chi2 0.999 quantile at
		// df=16 is 39.3. The margin keeps a correct sampler's worst pinned
		// draw comfortably inside.
		bound = 60.0
	)
	prop := func(seed uint64, sRaw uint8, nRaw uint8) bool {
		s := float64(sRaw%150) / 100.0 // skews 0.00..1.49, incl. the 0.99 regime
		n := 64 + int(nRaw)*8          // keyspaces 64..2104
		z := NewZipf(NewRand(seed), n, s)
		counts := make([]int, head+1)
		for i := 0; i < draws; i++ {
			k := z.Next()
			if k < head {
				counts[k]++
			} else {
				counts[head]++
			}
		}
		chi2 := 0.0
		tailP := 1.0
		for k := 0; k < head; k++ {
			exp := z.Prob(k) * draws
			tailP -= z.Prob(k)
			d := float64(counts[k]) - exp
			chi2 += d * d / exp
		}
		if exp := tailP * draws; exp > 0 {
			d := float64(counts[head]) - exp
			chi2 += d * d / exp
		}
		if chi2 > bound {
			t.Logf("seed=%d s=%.2f n=%d: chi2=%.1f > %.1f", seed, s, n, chi2, bound)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(25)); err != nil {
		t.Fatal(err)
	}
}

// Property: Zipf probabilities are a valid, monotone-nonincreasing
// distribution, and every draw is in range.
func TestQuickZipfDistributionShape(t *testing.T) {
	prop := func(seed uint64, sRaw uint8, nRaw uint8) bool {
		s := float64(sRaw%200) / 100.0
		n := 1 + int(nRaw)
		z := NewZipf(NewRand(seed), n, s)
		sum := 0.0
		for k := 0; k < n; k++ {
			p := z.Prob(k)
			if p < 0 || (k > 0 && p > z.Prob(k-1)+1e-12) {
				return false
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		for i := 0; i < 256; i++ {
			if k := z.Next(); k < 0 || k >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(40)); err != nil {
		t.Fatal(err)
	}
}

// Replay at trivially low load: no queueing, sojourn == service, achieved
// tracks the schedule.
func TestReplayLowLoadNoQueueing(t *testing.T) {
	ops := make([]Op, 100)
	for i := range ops {
		ops[i] = Op{ArrivalNS: uint64(i) * 10000, Server: i % 4, ServiceNS: 500}
	}
	achieved, h := Replay(ops, 4)
	if got := h.Percentile(99); got != 500 {
		t.Fatalf("p99 sojourn %v, want 500 (no queueing at low load)", got)
	}
	span := float64(99*10000 + 500)
	want := 100 / span * 1e9
	if math.Abs(achieved-want)/want > 1e-9 {
		t.Fatalf("achieved %v, want %v", achieved, want)
	}
}

// Replay past saturation: arrivals at twice the service rate must queue,
// achieved throughput pins at capacity, and Knee flags the overloaded row.
func TestReplaySaturationKnee(t *testing.T) {
	mkOps := func(gapNS uint64) []Op {
		ops := make([]Op, 2000)
		for i := range ops {
			ops[i] = Op{ArrivalNS: uint64(i) * gapNS, Server: 0, ServiceNS: 1000}
		}
		return ops
	}
	low := MeasureRow(1, 1e9/2000.0, mkOps(2000), 1) // offered = capacity/2
	high := MeasureRow(1, 1e9/500.0, mkOps(500), 1)  // offered = 2x capacity
	if low.AchievedOpsPerSec < 0.95*low.OfferedLoad {
		t.Fatalf("low load: achieved %.0f below 0.95x offered %.0f", low.AchievedOpsPerSec, low.OfferedLoad)
	}
	capacity := 1e9 / 1000.0
	if high.AchievedOpsPerSec > 1.05*capacity {
		t.Fatalf("overload achieved %.0f exceeds capacity %.0f", high.AchievedOpsPerSec, capacity)
	}
	if high.P99NS <= low.P99NS {
		t.Fatalf("overload p99 %d not above low-load p99 %d", high.P99NS, low.P99NS)
	}
	rows := []Row{low, high}
	if got := Knee(rows, 0.9); got != 1 {
		t.Fatalf("Knee = %d, want 1", got)
	}
}
