package loadgen

import "math"

// Zipf draws ranks from a Zipfian popularity distribution over
// {0, ..., n-1}: P(k) proportional to 1/(k+1)^s. Unlike math/rand's Zipf
// it accepts ANY skew s >= 0 — the YCSB-standard s = 0.99 the scaling
// experiments need is below the s > 1 floor of the standard library's
// rejection sampler — by inverting a precomputed CDF with binary search.
// Rank 0 is the hottest key.
type Zipf struct {
	r   *Rand
	cdf []float64 // cdf[k] = P(rank <= k); cdf[n-1] == 1
}

// NewZipf builds a sampler over n ranks with exponent s, drawing from r.
// s = 0 is uniform.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("loadgen: Zipf needs n > 0")
	}
	if s < 0 || math.IsNaN(s) {
		panic("loadgen: Zipf needs s >= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	cdf[n-1] = 1 // pin against rounding so search never falls off the end
	return &Zipf{r: r, cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Next draws one rank.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	// First k with cdf[k] > u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Prob returns the analytic probability of rank k — the expected head
// frequencies the chi-squared property test checks draws against.
func (z *Zipf) Prob(k int) float64 {
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}
