// Package loadgen is the rack's open-loop workload engine: Poisson
// arrivals at a configurable offered load, Zipfian key popularity with a
// pluggable skew, and latency-under-load accounting.
//
// Open-loop vs closed-loop matters for every throughput claim this repo
// makes. A closed-loop harness (N workers, each issuing its next request
// only after the last reply) hides queueing: when the server slows down
// the generator slows down with it, so reported latency stays flat right
// up to saturation and the knee never shows. An open-loop generator fixes
// the ARRIVAL schedule up front — requests keep arriving whether or not
// the server has caught up — so queueing delay lands in the measured
// sojourn time, which is the number a tail-latency SLO is actually about
// (the coordinated-omission lesson).
//
// Everything is deterministic: streams are seeded splitmix64, so the same
// seed replays the identical arrival schedule and key sequence, and a
// perf regression bisects against a byte-identical workload.
package loadgen

import "math"

// Rand is a splitmix64 PRNG — tiny, seedable, and stable across runs and
// platforms, which is what makes workload streams replayable. Not safe
// for concurrent use; give each stream its own.
type Rand struct{ state uint64 }

// NewRand seeds a stream. Distinct seeds give independent streams.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next raw 64-bit draw.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("loadgen: Intn needs n > 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Arrivals generates a Poisson arrival process: exponential inter-arrival
// gaps at rate opsPerSec, timestamped in virtual nanoseconds. The
// schedule depends only on the seed and the rate.
type Arrivals struct {
	r         *Rand
	meanGapNS float64
	nowNS     float64
}

// NewArrivals creates a Poisson stream offering opsPerSec (in ops per
// second of virtual time).
func NewArrivals(seed uint64, opsPerSec float64) *Arrivals {
	if opsPerSec <= 0 {
		panic("loadgen: offered load must be positive")
	}
	return &Arrivals{r: NewRand(seed), meanGapNS: 1e9 / opsPerSec}
}

// Next returns the next arrival's virtual-ns timestamp. Successive calls
// are non-decreasing.
func (a *Arrivals) Next() uint64 {
	// Exponential gap by inversion; 1-U keeps the argument in (0, 1].
	a.nowNS += -a.meanGapNS * math.Log(1-a.r.Float64())
	return uint64(a.nowNS)
}
