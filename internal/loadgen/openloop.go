package loadgen

import "flacos/internal/metrics"

// Op is one scheduled request in an open-loop replay: it arrives at a
// fixed virtual-ns time, executes on one server, and occupies that server
// for its measured service time.
type Op struct {
	ArrivalNS uint64 // fixed by the Poisson schedule, never by the server
	Server    int    // which serving node executes it
	ServiceNS uint64 // measured per-op service time on that node
}

// Row is one measured point of an offered-load sweep, the unit the
// redisscale bench artifact records per node count.
type Row struct {
	Nodes             int     `json:"nodes"`
	OfferedLoad       float64 `json:"offered_load"` // ops/sec scheduled
	AchievedOpsPerSec float64 `json:"achieved_ops_per_sec"`
	P50NS             uint64  `json:"p50_ns"` // sojourn = queueing + service
	P99NS             uint64  `json:"p99_ns"`
	P999NS            uint64  `json:"p999_ns"`
}

// Replay pushes an arrival schedule through per-server FIFO queues and
// returns the achieved throughput plus the sojourn-time histogram. Each
// op starts at max(arrival, server free) and completes after its service
// time; sojourn is completion minus arrival, so queueing delay — the
// thing closed-loop harnesses hide — is measured, not masked. ops must be
// in non-decreasing ArrivalNS order (a Poisson schedule is). Achieved
// throughput is total ops over the span from first arrival to last
// completion: at low load it tracks the offered rate; past saturation the
// backlog stretches the span and achieved falls below offered — that
// divergence IS the knee.
func Replay(ops []Op, servers int) (achievedOpsPerSec float64, sojourn *metrics.Histogram) {
	sojourn = metrics.NewHistogram()
	if len(ops) == 0 {
		return 0, sojourn
	}
	freeAt := make([]uint64, servers)
	var lastDone uint64
	for _, op := range ops {
		start := op.ArrivalNS
		if freeAt[op.Server] > start {
			start = freeAt[op.Server]
		}
		done := start + op.ServiceNS
		freeAt[op.Server] = done
		if done > lastDone {
			lastDone = done
		}
		sojourn.Record(float64(done - op.ArrivalNS))
	}
	span := lastDone - ops[0].ArrivalNS
	if span == 0 {
		span = 1
	}
	return float64(len(ops)) / float64(span) * 1e9, sojourn
}

// MeasureRow runs one sweep point: replay ops on servers at the offered
// load and package the result as a Row.
func MeasureRow(nodes int, offered float64, ops []Op, servers int) Row {
	achieved, h := Replay(ops, servers)
	return Row{
		Nodes:             nodes,
		OfferedLoad:       offered,
		AchievedOpsPerSec: achieved,
		P50NS:             uint64(h.Percentile(50)),
		P99NS:             uint64(h.Percentile(99)),
		P999NS:            uint64(h.Percentile(99.9)),
	}
}

// Knee returns the index of the first row whose achieved throughput falls
// below frac of its offered load — the saturation knee of a sweep ordered
// by increasing offered load — or -1 if the sweep never saturates.
func Knee(rows []Row, frac float64) int {
	for i, r := range rows {
		if r.AchievedOpsPerSec < frac*r.OfferedLoad {
			return i
		}
	}
	return -1
}
