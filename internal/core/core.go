// Package core assembles FlacOS: it boots a simulated memory-interconnect
// rack and stands up the coordinated, partially shared operating system of
// the paper — shared kernel structures (page tables, page cache, IPC
// buffers, operation logs) laid out in global memory, and one node-local
// OS instance per node holding the private structures (VMAs, TLBs,
// metadata replicas, socket tables) that coordinate through FlacDK's
// synchronization methods.
//
// This is the public API the examples and the experiment harness consume:
//
//	rack := core.Boot(core.Config{Nodes: 2})
//	osA, osB := rack.OS(0), rack.OS(1)
//	id, _ := osA.Mount.Create("/shared/data")   // visible on every node
//	conn, _ := osB.Endpoint.Connect("service")  // zero-copy IPC
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"flacos/internal/boot"
	"flacos/internal/devshare"
	"flacos/internal/fabric"
	"flacos/internal/faultbox"
	"flacos/internal/flacdk/alloc"
	"flacos/internal/flacdk/reliability"
	"flacos/internal/fs"
	"flacos/internal/ipc"
	"flacos/internal/irq"
	"flacos/internal/memsys"
	"flacos/internal/redis"
	"flacos/internal/sched"
	"flacos/internal/serverless"
	"flacos/internal/trace"
)

// Config sizes the rack and the OS's shared structures. Zero values get
// workable defaults for a small simulated rack.
type Config struct {
	// Nodes is the number of compute nodes (default 2, like the paper's
	// two-node Kunpeng rack).
	Nodes int
	// GlobalMemory is the interconnect-attached memory size in bytes
	// (default 256 MiB).
	GlobalMemory uint64
	// Latency is the fabric cost model (default: accounting-only).
	Latency fabric.LatencyModel
	// CacheCapacityLines bounds each node's simulated cache (0=unbounded).
	CacheCapacityLines int
	// PageCacheFrames sizes the shared page cache (default 4096 pages).
	PageCacheFrames uint64
	// AnonFrames sizes the anonymous-memory frame pool (default 4096).
	AnonFrames uint64
	// ArenaBytes sizes the kernel object arena (default 1/4 of global).
	ArenaBytes uint64
	// DeviceReadNS / DeviceWriteNS model the backing storage device
	// (default 50/60 us, NVMe-class).
	DeviceReadNS, DeviceWriteNS int
	// IPC sizes the switchboard.
	IPC ipc.Config
	// FaultSeed seeds the deterministic fault injector.
	FaultSeed int64
	// RedisSlots sizes the rack-shared Redis index (distinct keys ever
	// stored; default 1<<15). Only consumed if RedisStore is used.
	RedisSlots uint64
	// RedisViews bounds concurrent rack-shared Redis views (default 128).
	RedisViews int
}

func (c *Config) fillDefaults() {
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.GlobalMemory == 0 {
		c.GlobalMemory = 256 << 20
	}
	if c.Latency == (fabric.LatencyModel{}) {
		c.Latency = fabric.DefaultLatency()
	}
	if c.PageCacheFrames == 0 {
		c.PageCacheFrames = 4096
	}
	if c.AnonFrames == 0 {
		c.AnonFrames = 4096
	}
	if c.ArenaBytes == 0 {
		c.ArenaBytes = c.GlobalMemory / 4
	}
	if c.DeviceReadNS == 0 {
		c.DeviceReadNS = 50_000
	}
	if c.DeviceWriteNS == 0 {
		c.DeviceWriteNS = 60_000
	}
}

// Rack is a booted FlacOS rack: the shared substrate plus one OS instance
// per node.
type Rack struct {
	Fabric *fabric.Fabric
	// Frames is the anonymous-memory global frame pool (address spaces,
	// fault boxes).
	Frames *memsys.GlobalFrames
	// Arena allocates kernel objects in global memory.
	Arena *alloc.Arena
	// FS is the rack-wide file system with the shared page cache.
	FS *fs.FS
	// Dev is the storage device under FS.
	Dev *fs.MemDev
	// Switchboard carries zero-copy IPC.
	Switchboard *ipc.Switchboard
	// Services is the migration-RPC service table (shared code contexts).
	Services *ipc.ServiceTable
	// Boxes manages fault boxes.
	Boxes *faultbox.Manager
	// Scrubber guards protected global regions.
	Scrubber *reliability.Scrubber
	// IRQ is the rack-wide interrupt controller (§5 extension).
	IRQ *irq.Controller
	// Devices is the rack's global device namespace (§5 extension).
	Devices *devshare.Registry
	// HWTable is the shared-memory hardware description (§5 extension);
	// every OS instance discovers the rack through it.
	HWTable fabric.GPtr

	instances []*OS
	nextSpace uint64

	schedOnce   sync.Once
	sched       *sched.Scheduler
	schedBooted atomic.Bool

	redisOnce   sync.Once
	redis       *redis.RackStore
	redisCfg    redis.RackStoreConfig
	redisBooted atomic.Bool

	mem membershipState // coordinated failure detection (membership.go)

	ctlMu sync.Mutex
	ctls  []*serverless.Controller // control planes wired for Dead eviction

	traceMu sync.Mutex
	tracer  *trace.Recorder
}

// Scheduler returns the rack-wide coordinated task scheduler, booting it
// on first use: per-node worker pools over a shared run queue and load
// board in global memory, with locality-aware placement and failure-aware
// re-dispatch (internal/sched). One scheduler serves the whole rack.
func (r *Rack) Scheduler() *sched.Scheduler {
	r.schedOnce.Do(func() {
		r.sched = sched.New(r.Fabric, sched.DefaultConfig())
		r.sched.Start()
		// Handshake with EnableTrace: publish the booted scheduler first,
		// then check for a recorder. Whichever of the two calls runs its
		// check second sees the other's store, so at least one attaches
		// (SetTrace is idempotent, a double attach is harmless).
		r.schedBooted.Store(true)
		if t := r.Trace(); t != nil {
			r.sched.SetTrace(t)
		}
	})
	return r.sched
}

// RedisStore returns the rack-shared Redis keyspace, laying it out in
// global memory on first use: the key index is a flacdk/ds hashmap, the
// entry blocks come from the kernel object arena, and replaced values are
// reclaimed through flacdk/quiescence. Every node serves the SAME dataset
// through views from OS.RedisView — the paper's Fig. 4 workload running
// on the shared-OS substrate instead of a per-node Go heap.
func (r *Rack) RedisStore() *redis.RackStore {
	r.redisOnce.Do(func() {
		cfg := r.redisCfg
		cfg.Arena = r.Arena
		r.redis = redis.NewRackStore(r.Fabric, cfg)
		r.redisBooted.Store(true)
	})
	return r.redis
}

// RedisView attaches one worker's view on the rack-shared Redis store to
// this node. A view is single-goroutine (it owns a quiescence participant);
// attach one per server session or client worker. SET/GET spans land in
// the flight recorder when EnableTrace ran first.
func (o *OS) RedisView() *redis.View {
	v := o.Rack.RedisStore().Attach(o.Node)
	if t := o.Rack.Trace(); t != nil {
		v.SetTrace(t.Writer(o.Node.ID()))
	}
	return v
}

// RedisServer stands up a Redis server on this node over a fresh view of
// the rack-shared store. Servers on different nodes execute against the
// same dataset; each accepted connection needs its own server (sessions
// execute on the server's single view).
func (o *OS) RedisServer() *redis.Server {
	return redis.NewServer(o.RedisView())
}

// EnableTrace boots the rack-wide flight recorder (internal/trace) and
// attaches every booted subsystem's hot-path hooks: fabric miss/write-back/
// fence events when cfg.FabricEvents is set, scheduler dispatch/steal/
// lease-expiry/complete, fs journal commits and page-cache evictions.
// Spaces and serverless control planes created after this call attach
// automatically. Idempotent: later calls return the first recorder.
func (r *Rack) EnableTrace(cfg trace.Config) *trace.Recorder {
	r.traceMu.Lock()
	if r.tracer == nil {
		r.tracer = trace.New(r.Fabric, cfg)
		r.FS.SetTrace(r.tracer)
	}
	rec := r.tracer
	r.traceMu.Unlock()
	if r.schedBooted.Load() {
		r.sched.SetTrace(rec)
	}
	// Membership members may already be running (EnableMembership before
	// EnableTrace): attach their writers now. Member.SetTrace is
	// hot-swap safe.
	r.mem.mu.Lock()
	members := r.mem.members
	r.mem.mu.Unlock()
	for i, m := range members {
		if m != nil {
			m.SetTrace(rec.Writer(i))
		}
	}
	return rec
}

// Trace returns the rack's flight recorder, or nil before EnableTrace.
func (r *Rack) Trace() *trace.Recorder {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	return r.tracer
}

// Shutdown stops the rack's background machinery (scheduler workers and
// lease keepers). The fabric itself needs no teardown; a Rack is garbage
// once unreferenced. Safe to call more than once.
func (r *Rack) Shutdown() {
	r.StopMembership()
	r.schedOnce.Do(func() {}) // settle: either it booted or it never will
	if r.sched != nil {
		r.sched.Stop()
	}
}

// OS is one node's FlacOS instance: the node-local half of the coordinated
// OS, pre-attached to every shared subsystem.
type OS struct {
	Rack     *Rack
	Node     *fabric.Node
	Mount    *fs.Mount
	Endpoint *ipc.Endpoint
	Local    *memsys.LocalStore

	alloc *alloc.NodeAllocator
}

// Boot brings the rack up.
func Boot(cfg Config) *Rack {
	cfg.fillDefaults()
	f := fabric.New(fabric.Config{
		GlobalSize:         cfg.GlobalMemory,
		Nodes:              cfg.Nodes,
		CacheCapacityLines: cfg.CacheCapacityLines,
		Latency:            cfg.Latency,
		FaultSeed:          cfg.FaultSeed,
	})
	r := &Rack{Fabric: f, redisCfg: redis.RackStoreConfig{Slots: cfg.RedisSlots, MaxViews: cfg.RedisViews}}
	// One frame pool serves both anonymous memory and the page cache, so
	// file-backed mappings can move frames between them (COW breaks).
	r.Frames = memsys.NewGlobalFrames(f, cfg.AnonFrames+cfg.PageCacheFrames)
	r.Arena = alloc.NewArena(f, cfg.ArenaBytes)
	r.Dev = fs.NewMemDev(cfg.DeviceReadNS, cfg.DeviceWriteNS)
	r.FS = fs.New(f, r.Dev, fs.Config{
		CacheFrames: cfg.PageCacheFrames,
		MaxMounts:   2 * cfg.Nodes,
		Frames:      r.Frames,
	})
	r.Switchboard = ipc.NewSwitchboard(f, f.Node(0), cfg.IPC)
	r.Services = ipc.NewServiceTable(f)
	r.Boxes = faultbox.NewManager(f, r.Frames, r.Arena, r.Services)
	r.Scrubber = reliability.NewScrubber(f)
	r.IRQ = irq.NewController(f, f.Node(0), 64)
	r.Devices = devshare.NewRegistry()
	if _, err := r.Devices.Register("blk0", 0, r.Dev); err != nil {
		panic(err)
	}

	// Publish the hardware description into shared memory; every node's OS
	// instance bootstraps from this single table.
	r.HWTable = f.Reserve(boot.TableCap(16<<10), fabric.LineSize)
	desc := boot.HWDesc{GlobalMemBytes: f.Size(), BootSeq: 1}
	for i := 0; i < cfg.Nodes; i++ {
		desc.Nodes = append(desc.Nodes, boot.NodeDesc{
			ID: uint32(i), Cores: 320, Hops: uint32(f.Node(i).Hops()), LocalMemMB: 262144,
		})
	}
	desc.Devices = append(desc.Devices, boot.DeviceDesc{Name: "blk0", Owner: 0, Kind: "block"})
	if err := boot.Publish(f.Node(0), r.HWTable, desc); err != nil {
		panic(err)
	}

	for i := 0; i < cfg.Nodes; i++ {
		n := f.Node(i)
		r.instances = append(r.instances, &OS{
			Rack:     r,
			Node:     n,
			Mount:    r.FS.Mount(n),
			Endpoint: r.Switchboard.Endpoint(n),
			Local:    memsys.NewLocalStore(n),
			alloc:    r.Arena.NodeAllocator(n, 0),
		})
	}
	return r
}

// Nodes returns the number of nodes in the rack.
func (r *Rack) Nodes() int { return len(r.instances) }

// OS returns node i's FlacOS instance.
func (r *Rack) OS(i int) *OS {
	if i < 0 || i >= len(r.instances) {
		panic(fmt.Sprintf("core: node %d out of range [0,%d)", i, len(r.instances)))
	}
	return r.instances[i]
}

// NewSpace creates a rack-wide shared address space (traced when the
// rack's flight recorder is enabled).
func (r *Rack) NewSpace() *memsys.Space {
	r.nextSpace++
	s := memsys.NewSpace(r.Fabric, r.nextSpace, r.Frames,
		r.Arena.NodeAllocator(r.Fabric.Node(0), 0), 1024)
	if t := r.Trace(); t != nil {
		s.SetTrace(t)
	}
	return s
}

// Allocator returns the instance's kernel-object allocator. It is bound to
// one goroutine's use at a time; spawn more with Rack.Arena.NodeAllocator
// for concurrent workers.
func (o *OS) Allocator() *alloc.NodeAllocator { return o.alloc }

// DiscoverHardware reads the rack's shared hardware description table —
// the §5 bootstrapping flow every node runs as it comes up.
func (o *OS) DiscoverHardware() (boot.HWDesc, error) {
	return boot.Discover(o.Node, o.Rack.HWTable)
}

// Attach joins this node to a shared address space.
func (o *OS) Attach(s *memsys.Space) *memsys.MMU {
	return s.Attach(o.Node, o.Rack.Arena.NodeAllocator(o.Node, 0), o.Local, 256)
}

// Serverless stands up the rack-level serverless platform of §4.1 over
// this rack: per-node container runtimes sharing the page cache, and a
// control plane routing invocations over migration RPC.
func (r *Rack) Serverless(reg *serverless.Registry, rtCfg serverless.RuntimeConfig) *serverless.Controller {
	runtimes := make([]*serverless.NodeRuntime, r.Nodes())
	for i := range runtimes {
		runtimes[i] = serverless.NewNodeRuntime(r.Fabric.Node(i), r.OS(i).Mount, reg, rtCfg)
	}
	ctl := serverless.NewController(runtimes, r.Services)
	// Container placement goes through the coordinated scheduler: its
	// global load board sees work the control plane's own density count
	// doesn't, and it skips crashed nodes (and, with EnableMembership,
	// nodes the rack has declared dead).
	ctl.SetPlacer(r.Scheduler().PickNode)
	if t := r.Trace(); t != nil {
		ctl.SetTrace(t)
	}
	// Register for membership-driven recovery: a Dead event re-places
	// this control plane's containers off the dead node.
	r.ctlMu.Lock()
	r.ctls = append(r.ctls, ctl)
	r.ctlMu.Unlock()
	return ctl
}
