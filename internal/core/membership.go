package core

import (
	"sync"

	"flacos/internal/fabric"
	"flacos/internal/membership"
	"flacos/internal/redis"
	"flacos/internal/serverless"
	"flacos/internal/trace"
)

// membershipState is the rack's membership wiring: the table, each
// node's member handle, and the dedup set that makes the rack-wide
// event stream drive recovery exactly once per death.
type membershipState struct {
	mu       sync.Mutex
	table    *membership.Table
	members  []*membership.Member
	deadSeen map[[2]uint64]bool // {slot, generation} -> recovery ran
}

// EnableMembership boots the coordinated failure-detection layer
// (internal/membership) over this rack: every node joins slot i=node i,
// activates, and starts its heartbeat publisher and detector agent. The
// scheduler's placement immediately consults the table's liveness
// oracle, and ONE membership Dead event drives recovery everywhere:
//
//   - sched reclaims every lease the dead node held (one sweep, not
//     per-lease expiry),
//   - the redis RackStore (if booted) fences the dead node's views at
//     its generation, so zombie writes bounce with ErrFenced,
//   - every serverless control plane re-places the dead node's warm
//     containers on live nodes.
//
// Recovery is deduplicated on (slot, generation): every live member's
// agent observes the same transition, but only the first delivery acts.
// Idempotent; later calls return the same table.
func (r *Rack) EnableMembership(cfg membership.Config) *membership.Table {
	r.mem.mu.Lock()
	if r.mem.table != nil {
		t := r.mem.table
		r.mem.mu.Unlock()
		return t
	}
	table := membership.New(r.Fabric, cfg)
	r.mem.table = table
	r.mem.deadSeen = make(map[[2]uint64]bool)
	r.mem.mu.Unlock()

	r.Scheduler().SetLiveness(table.Alive)
	tr := r.Trace()
	members := make([]*membership.Member, r.Fabric.NumNodes())
	for i := 0; i < r.Fabric.NumNodes(); i++ {
		n := r.Fabric.Node(i)
		m, err := table.JoinSlot(n, i)
		if err != nil {
			panic("core: membership boot join failed: " + err.Error())
		}
		if tr != nil {
			m.SetTrace(tr.Writer(i))
		}
		if err := m.Activate(); err != nil {
			panic("core: membership boot activate failed: " + err.Error())
		}
		m.Subscribe(func(ev membership.Event) { r.onMembershipEvent(n, ev) })
		m.Start()
		members[i] = m
	}
	r.mem.mu.Lock()
	r.mem.members = members
	r.mem.mu.Unlock()
	return table
}

// Membership returns the rack's membership table, or nil before
// EnableMembership.
func (r *Rack) Membership() *membership.Table {
	r.mem.mu.Lock()
	defer r.mem.mu.Unlock()
	return r.mem.table
}

// onMembershipEvent runs on a member agent's goroutine for every
// rack-wide transition that agent observed. Only Dead needs action here
// (Join/Suspect/Alive/Left are already in the control table and the
// flight recorder); recovery runs once per (slot, generation) from the
// first observer to deliver it.
func (r *Rack) onMembershipEvent(observer *fabric.Node, ev membership.Event) {
	if ev.Kind != membership.EvDead {
		return
	}
	key := [2]uint64{uint64(ev.Slot), ev.Generation}
	r.mem.mu.Lock()
	done := r.mem.deadSeen[key]
	r.mem.deadSeen[key] = true
	r.mem.mu.Unlock()
	if done || observer.Crashed() {
		return
	}
	// Lease reclaim first: queued work restarts fastest. The sweep runs
	// from the observing node; a concurrent keeper expiry of the same
	// slot is harmless (both paths CAS, one wins).
	r.Scheduler().ReclaimNode(observer, ev.Node)
	// Fence the store at the dead generation so the zombie's writes
	// bounce before any client can observe them.
	if store := r.redisIfBooted(); store != nil {
		store.FenceNode(observer, ev.Node, ev.Generation)
		if t := r.Trace(); t != nil {
			t.Writer(observer.ID()).Emit(trace.SubRedis, trace.KViewFence, 0, uint64(ev.Node), ev.Generation)
		}
	}
	// Re-place the dead node's containers on live nodes.
	r.ctlMu.Lock()
	ctls := make([]*serverless.Controller, len(r.ctls))
	copy(ctls, r.ctls)
	r.ctlMu.Unlock()
	for _, ctl := range ctls {
		ctl.EvictNode(ev.Node)
	}
}

// redisIfBooted returns the rack store only if RedisStore has already
// run — membership recovery must not boot subsystems as a side effect.
func (r *Rack) redisIfBooted() *redis.RackStore {
	if !r.redisBooted.Load() {
		return nil
	}
	return r.redis
}

// StopMembership halts every member's goroutines (Shutdown calls this).
func (r *Rack) StopMembership() {
	r.mem.mu.Lock()
	members := r.mem.members
	r.mem.mu.Unlock()
	for _, m := range members {
		if m != nil {
			m.Stop()
		}
	}
}
