package core

import (
	"bytes"
	"sync"
	"testing"

	"flacos/internal/fabric"
	"flacos/internal/faultbox"
	"flacos/internal/irq"
	"flacos/internal/memsys"
	"flacos/internal/serverless"
	"flacos/internal/trace"
)

func TestBootDefaults(t *testing.T) {
	r := Boot(Config{GlobalMemory: 160 << 20})
	if r.Nodes() != 2 {
		t.Fatalf("nodes = %d", r.Nodes())
	}
	if r.Fabric.Size() < 160<<20 {
		t.Fatalf("global memory = %d", r.Fabric.Size())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("OS out of range should panic")
			}
		}()
		r.OS(5)
	}()
}

func TestFileSharedAcrossInstances(t *testing.T) {
	r := Boot(Config{Nodes: 2, GlobalMemory: 160 << 20})
	a, b := r.OS(0), r.OS(1)
	id, err := a.Mount.Create("/shared/cfg")
	if err != nil {
		t.Fatal(err)
	}
	a.Mount.Write(id, 0, []byte("rack-wide contents"))
	got, ok := b.Mount.Lookup("/shared/cfg")
	if !ok || got != id {
		t.Fatalf("lookup = %d,%v", got, ok)
	}
	buf := make([]byte, 18)
	if n, err := b.Mount.Read(id, 0, buf); err != nil || n != 18 {
		t.Fatalf("read = %d,%v", n, err)
	}
	if string(buf) != "rack-wide contents" {
		t.Fatalf("read %q", buf)
	}
}

func TestIPCThroughFacade(t *testing.T) {
	r := Boot(Config{Nodes: 2, GlobalMemory: 160 << 20})
	l, err := r.OS(0).Endpoint.Bind("svc")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := l.Accept()
		buf := make([]byte, 256)
		n, err := c.Recv(buf)
		if err == nil {
			c.Send(bytes.ToUpper(buf[:n]))
		}
	}()
	c, err := r.OS(1).Endpoint.Connect("svc")
	if err != nil {
		t.Fatal(err)
	}
	c.Send([]byte("hello"))
	buf := make([]byte, 256)
	n, err := c.Recv(buf)
	if err != nil || string(buf[:n]) != "HELLO" {
		t.Fatalf("echo = %q, %v", buf[:n], err)
	}
	c.Close()
	wg.Wait()
}

func TestSharedAddressSpaceThroughFacade(t *testing.T) {
	r := Boot(Config{Nodes: 2, GlobalMemory: 160 << 20})
	s := r.NewSpace()
	m0 := r.OS(0).Attach(s)
	m1 := r.OS(1).Attach(s)
	if err := m0.MMap(0x100000, 2, memsys.ProtRead|memsys.ProtWrite, memsys.BackGlobal); err != nil {
		t.Fatal(err)
	}
	if err := m0.Write(0x100000, []byte("one address space")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 17)
	if err := m1.Read(0x100000, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "one address space" {
		t.Fatalf("read %q", buf)
	}
}

func TestFaultBoxThroughFacade(t *testing.T) {
	r := Boot(Config{Nodes: 2, GlobalMemory: 160 << 20})
	b, err := r.Boxes.Create("app", r.Fabric.Node(0), faultbox.Config{
		HeapPages: 2, StackPages: 1, Criticality: 1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b.MMU().Write(faultbox.HeapVA, []byte("survives crashes"))
	if err := b.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r.Fabric.Node(0).Crash()
	nb, err := b.RecoverOn(r.Fabric.Node(1), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	nb.MMU().Read(faultbox.HeapVA, buf)
	if string(buf) != "survives crashes" {
		t.Fatalf("recovered %q", buf)
	}
}

func TestServerlessThroughFacade(t *testing.T) {
	r := Boot(Config{Nodes: 2, GlobalMemory: 160 << 20, PageCacheFrames: 8192})
	reg := serverless.NewRegistry(5_000_000, 0.02)
	reg.Push(serverless.SyntheticImage("app", 2, 4<<20))
	cfg := serverless.DefaultRuntimeConfig()
	cfg.InitNS = 10_000_000
	ctl := r.Serverless(reg, cfg)
	ctl.Deploy("fn", "app", func(n *fabric.Node, req []byte) []byte {
		return append(req, '!')
	})
	out, err := ctl.Invoke(r.Fabric.Node(1), "fn", []byte("hi"))
	if err != nil || string(out) != "hi!" {
		t.Fatalf("invoke = %q, %v", out, err)
	}
}

func TestHardwareDiscoveryFromEveryNode(t *testing.T) {
	r := Boot(Config{Nodes: 2, GlobalMemory: 160 << 20})
	for i := 0; i < r.Nodes(); i++ {
		desc, err := r.OS(i).DiscoverHardware()
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if len(desc.Nodes) != 2 || desc.GlobalMemBytes != r.Fabric.Size() {
			t.Fatalf("node %d sees %+v", i, desc)
		}
		if len(desc.Devices) != 1 || desc.Devices[0].Name != "blk0" {
			t.Fatalf("device inventory wrong: %+v", desc.Devices)
		}
	}
}

func TestIRQAndDeviceNamespaceWired(t *testing.T) {
	r := Boot(Config{Nodes: 2, GlobalMemory: 160 << 20})
	// Cross-node IPI through the facade.
	fired := false
	r.IRQ.Register(1, 5, func(from int, v irqVector, arg uint64) { fired = from == 0 && arg == 9 })
	if err := r.IRQ.SendIPI(r.Fabric.Node(0), 1, 5, 9); err != nil {
		t.Fatal(err)
	}
	r.IRQ.DispatchOnce(r.Fabric.Node(1))
	if !fired {
		t.Fatal("IPI not delivered")
	}
	// The FS's device is reachable by rack-wide name from any node.
	dev, err := r.Devices.Open("blk0")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	dev.WritePage(r.Fabric.Node(1), 77, 0, buf) // remote node
	if !dev.ReadPage(r.Fabric.Node(0), 77, 0, buf) {
		t.Fatal("device write from remote node not visible to owner")
	}
}

func TestScrubberWiredToFabric(t *testing.T) {
	r := Boot(Config{Nodes: 1, GlobalMemory: 160 << 20})
	g := r.Fabric.Reserve(64, 64)
	r.Fabric.WriteAtHome(g, []byte{1, 2, 3})
	reg := struct {
		G    fabric.GPtr
		Size uint64
	}{g, 64}
	r.Scrubber.Protect(struct {
		G    fabric.GPtr
		Size uint64
	}(reg))
	if bad := r.Scrubber.ScrubOnce(); len(bad) != 0 {
		t.Fatal("clean region flagged")
	}
	r.Fabric.Faults().FlipBitAtHome(r.Fabric, g, 7)
	if bad := r.Scrubber.ScrubOnce(); len(bad) != 1 {
		t.Fatal("corruption not detected through facade")
	}
}

// irqVector aliases the irq package's vector type for the test above.
type irqVector = irq.Vector

func TestRedisStoreSharedThroughFacade(t *testing.T) {
	r := Boot(Config{Nodes: 2})
	defer r.Shutdown()
	rec := r.EnableTrace(trace.Config{RingCap: 1 << 10})

	// Views from different OS instances serve ONE dataset.
	a, b := r.OS(0).RedisView(), r.OS(1).RedisView()
	if err := a.Set("facade", []byte("shared"), 0); err != nil {
		t.Fatal(err)
	}
	if got, ok := b.Get("facade"); !ok || string(got) != "shared" {
		t.Fatalf("node 1 view: %q ok=%v", got, ok)
	}
	if r.RedisStore() != a.Store() || a.Store() != b.Store() {
		t.Fatal("views not attached to the rack's one store")
	}

	// A per-node server executes against the same keyspace.
	srv := r.OS(1).RedisServer()
	if resp := srv.Execute([]byte("*2\r\n$3\r\nGET\r\n$6\r\nfacade\r\n")); !bytes.Contains(resp, []byte("shared")) {
		t.Fatalf("server on node 1: %q", resp)
	}

	// EnableTrace ran first, so SET/GET emit redis spans.
	rt := rec.Collector().Snapshot(r.Fabric.Node(0), false)
	found := false
	for _, ev := range rt.Events {
		if ev.Sub == trace.SubRedis && (ev.Kind == trace.KSet || ev.Kind == trace.KGet) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no redis SET/GET spans in the flight recorder")
	}
}
