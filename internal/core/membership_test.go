package core

import (
	"errors"
	"testing"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/membership"
	"flacos/internal/redis"
	"flacos/internal/serverless"
	"flacos/internal/trace"
)

func fastMembership() membership.Config {
	return membership.Config{
		HeartbeatTick: 100 * time.Microsecond,
		DeadStrikes:   2,
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(500 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// One crash, one detection, recovery everywhere: the membership Dead
// event must fence the dead node's redis views, move its serverless
// containers, steer placement away from it, and land the whole story in
// the flight-recorder timeline.
func TestMembershipDeadDrivesRecoveryEverywhere(t *testing.T) {
	r := Boot(Config{Nodes: 3, GlobalMemory: 192 << 20, PageCacheFrames: 8192})
	defer r.Shutdown()
	rec := r.EnableTrace(trace.Config{})
	store := r.RedisStore()

	reg := serverless.NewRegistry(1_000_000, 1.0)
	reg.Push(serverless.SyntheticImage("app", 2, 1<<20))
	ctl := r.Serverless(reg, serverless.DefaultRuntimeConfig())
	if _, err := ctl.Deploy("fn", "app", func(n *fabric.Node, req []byte) []byte { return req }); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.ScaleUpOn("fn", 2); err != nil {
		t.Fatal(err)
	}

	tb := r.EnableMembership(fastMembership())
	if tb != r.Membership() {
		t.Fatal("Membership() does not return the enabled table")
	}
	waitUntil(t, "boot population alive", func() bool {
		return tb.Alive(0) && tb.Alive(1) && tb.Alive(2)
	})

	// Node 2 serves redis under its boot generation (1).
	zombieView := store.AttachGen(r.Fabric.Node(2), 1)
	if err := zombieView.Set("k", []byte("committed"), 0); err != nil {
		t.Fatal(err)
	}

	r.Fabric.Node(2).Crash()
	waitUntil(t, "node 2 declared dead", func() bool { return !tb.Alive(2) })
	// Recovery runs on the first observer's agent; give its effects a
	// beat to land, observing each one.
	waitUntil(t, "serverless eviction", func() bool { return ctl.Density()[2] == 0 })
	if ctl.Density()[0]+ctl.Density()[1] == 0 {
		t.Fatal("evicted container was not re-placed on a live node")
	}

	// Placement never chooses the dead node.
	if got := r.Scheduler().PickNode([]int{0, 0, 0}); got == 2 {
		t.Fatal("PickNode chose the dead node")
	}

	// The restarted node's pre-death view is fenced (the zombie scenario:
	// the fabric node is back, but its old generation must not write).
	r.Fabric.Node(2).Restart()
	waitUntil(t, "redis fence", func() bool {
		return errors.Is(zombieView.Set("k", []byte("zombie"), 0), redis.ErrFenced)
	})
	if v, ok := store.AttachGen(r.Fabric.Node(0), 1).Get("k"); !ok || string(v) != "committed" {
		t.Fatalf("Get(k) = %q, %v; want the committed value intact", v, ok)
	}

	// The flight recorder holds the timeline: a membership dead event and
	// the store's view fence.
	rt := rec.Collector().Snapshot(r.Fabric.Node(0), false)
	var sawDead, sawFence bool
	for _, e := range rt.Events {
		if e.Sub == trace.SubMembership && e.Kind == trace.KDead && e.Arg1 == 2 {
			sawDead = true
		}
		if e.Sub == trace.SubRedis && e.Kind == trace.KViewFence && e.Arg0 == 2 {
			sawFence = true
		}
	}
	if !sawDead || !sawFence {
		t.Fatalf("timeline missing recovery events: dead=%v viewFence=%v", sawDead, sawFence)
	}
}
