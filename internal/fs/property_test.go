package fs

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestRandomOpsAgainstModel drives the FS with a randomized but seeded
// sequence of writes, reads, appends and truncates from two nodes,
// checking every observation against a plain in-memory model. This is the
// whole-file-system invariant test: whatever interleaving of shared-cache
// installs, multi-version updates and size CAS races happens underneath,
// reads must always return exactly what the model says.
func TestRandomOpsAgainstModel(t *testing.T) {
	f, fsys, _ := newFS(t, 2)
	mounts := []*Mount{fsys.Mount(f.Node(0)), fsys.Mount(f.Node(1))}
	id, err := mounts[0].Create("model-file")
	if err != nil {
		t.Fatal(err)
	}
	model := []byte{}
	rng := rand.New(rand.NewSource(12345))

	grow := func(to int) {
		for len(model) < to {
			model = append(model, 0)
		}
	}
	const maxSize = 48 * PageSize
	for step := 0; step < 800; step++ {
		m := mounts[rng.Intn(2)]
		switch rng.Intn(5) {
		case 0, 1: // write at random offset
			off := rng.Intn(maxSize - 9000)
			ln := 1 + rng.Intn(9000)
			data := make([]byte, ln)
			rng.Read(data)
			if _, err := m.Write(id, uint64(off), data); err != nil {
				t.Fatalf("step %d write: %v", step, err)
			}
			grow(off + ln)
			copy(model[off:], data)
		case 2: // append
			ln := 1 + rng.Intn(3000)
			data := make([]byte, ln)
			rng.Read(data)
			off, err := m.Append(id, data)
			if err != nil {
				t.Fatalf("step %d append: %v", step, err)
			}
			if off != uint64(len(model)) {
				t.Fatalf("step %d: append landed at %d, model size %d", step, off, len(model))
			}
			model = append(model, data...)
		case 3: // truncate shrink
			if len(model) > 0 {
				to := rng.Intn(len(model))
				if err := m.Truncate(id, uint64(to)); err != nil {
					t.Fatalf("step %d truncate: %v", step, err)
				}
				model = model[:to]
			}
		case 4: // read at random offset and verify
			if len(model) == 0 {
				continue
			}
			off := rng.Intn(len(model))
			ln := 1 + rng.Intn(len(model)-off)
			buf := make([]byte, ln)
			n, err := m.Read(id, uint64(off), buf)
			if err != nil {
				t.Fatalf("step %d read: %v", step, err)
			}
			if n != ln {
				t.Fatalf("step %d: read %d of %d at %d (size %d, fs says %d)",
					step, n, ln, off, len(model), m.Size(id))
			}
			if !bytes.Equal(buf[:n], model[off:off+n]) {
				t.Fatalf("step %d: content mismatch at %d+%d", step, off, ln)
			}
		}
		if got := m.Size(id); got != uint64(len(model)) {
			t.Fatalf("step %d: size %d, model %d", step, got, len(model))
		}
	}
	// Final end-to-end sweep.
	got := make([]byte, len(model))
	if n, _ := mounts[1].Read(id, 0, got); n != len(model) || !bytes.Equal(got, model) {
		t.Fatal("final full-file read diverged from model")
	}
}
