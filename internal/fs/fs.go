package fs

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/ds"
	"flacos/internal/flacdk/quiescence"
	"flacos/internal/flacdk/replication"
	"flacos/internal/memsys"
	"flacos/internal/trace"
)

// Config sizes the file system's shared structures.
type Config struct {
	// CacheFrames is the shared page cache capacity in pages.
	CacheFrames uint64
	// MetaLogCap is the metadata journal's entry capacity.
	MetaLogCap uint64
	// MaxMounts bounds the number of simultaneous mounts (quiescence
	// participants).
	MaxMounts int
	// Frames optionally supplies a shared frame pool. When nil the FS
	// reserves its own. Sharing one pool with memsys is required for
	// file-backed mappings (mmap), whose COW breaks move frames between
	// the page cache and anonymous memory.
	Frames *memsys.GlobalFrames
}

// FS is one rack-wide FlacOS file system instance.
type FS struct {
	fab    *fabric.Fabric
	dev    BlockDev
	frames *memsys.GlobalFrames
	index  *ds.HashMap // pageKey -> frame phys >> 12
	dirty  *ds.HashMap // pageKey -> frame phys >> 12 at dirtying time
	sizes  *ds.HashMap // fileID  -> size in bytes
	qdom   *quiescence.Domain

	metaLog *replication.Log
	idCtrG  fabric.GPtr

	mu         sync.Mutex
	nextPartID int
	maxMounts  int

	trw []atomic.Pointer[trace.Writer] // per-node flight-recorder hooks
}

// New creates a file system over dev, with its shared structures laid out
// in f's global memory.
func New(f *fabric.Fabric, dev BlockDev, cfg Config) *FS {
	if cfg.CacheFrames == 0 {
		cfg.CacheFrames = 1024
	}
	if cfg.MetaLogCap == 0 {
		cfg.MetaLogCap = 1024
	}
	if cfg.MaxMounts == 0 {
		cfg.MaxMounts = 2 * f.NumNodes()
	}
	frames := cfg.Frames
	if frames == nil {
		frames = memsys.NewGlobalFrames(f, cfg.CacheFrames)
	}
	return &FS{
		fab:       f,
		dev:       dev,
		frames:    frames,
		index:     ds.NewHashMap(f, cfg.CacheFrames*2),
		dirty:     ds.NewHashMap(f, cfg.CacheFrames*2),
		sizes:     ds.NewHashMap(f, cfg.CacheFrames),
		qdom:      quiescence.NewDomain(f, cfg.MaxMounts),
		metaLog:   replication.NewLog(f, cfg.MetaLogCap),
		idCtrG:    f.Reserve(fabric.LineSize, fabric.LineSize),
		maxMounts: cfg.MaxMounts,
		trw:       make([]atomic.Pointer[trace.Writer], f.NumNodes()),
	}
}

// Journal exposes the metadata operation log (which doubles as the
// journal) for recovery integration.
func (fs *FS) Journal() *replication.Log { return fs.metaLog }

// CachedPages returns how many pages the shared cache currently holds, as
// seen by node n. Rack-wide memory consumption is CachedPages()*PageSize
// regardless of how many nodes use the cache — the point of §3.4.
func (fs *FS) CachedPages(n *fabric.Node) uint64 { return fs.index.Len(n) }

func pageKey(fileID uint64, page uint32) uint64 { return fileID<<32 | uint64(page) }

// --- metadata state machine (node-local replica, replicated via log) ---

const (
	metaOpCreate = 1
	metaOpUnlink = 2
)

type inodeSM struct {
	names map[string]uint64
}

func newInodeSM() *inodeSM { return &inodeSM{names: make(map[string]uint64)} }

func (s *inodeSM) Apply(op uint32, payload []byte) uint64 {
	switch op {
	case metaOpCreate:
		id := binary.LittleEndian.Uint64(payload)
		name := string(payload[8:])
		if _, exists := s.names[name]; exists {
			return 0
		}
		s.names[name] = id
		return id
	case metaOpUnlink:
		name := string(payload)
		id, exists := s.names[name]
		if !exists {
			return 0
		}
		delete(s.names, name)
		return id
	case metaOpRename:
		oldLen := binary.LittleEndian.Uint32(payload)
		oldName := string(payload[4 : 4+oldLen])
		newName := string(payload[4+oldLen:])
		id, exists := s.names[oldName]
		if !exists {
			return 0
		}
		if _, taken := s.names[newName]; taken {
			return 0
		}
		delete(s.names, oldName)
		s.names[newName] = id
		return id
	}
	return 0
}

func (s *inodeSM) Snapshot() []byte {
	var out []byte
	for name, id := range s.names {
		var hdr [12]byte
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(name)))
		binary.LittleEndian.PutUint64(hdr[4:], id)
		out = append(out, hdr[:]...)
		out = append(out, name...)
	}
	return out
}

func (s *inodeSM) Restore(b []byte) {
	s.names = make(map[string]uint64)
	for len(b) >= 12 {
		nlen := binary.LittleEndian.Uint32(b[:4])
		id := binary.LittleEndian.Uint64(b[4:12])
		s.names[string(b[12:12+nlen])] = id
		b = b[12+nlen:]
	}
}

// Mount is one node's attachment to the file system. A Mount may be used
// concurrently by the node's goroutines.
type Mount struct {
	fs   *FS
	node *fabric.Node
	part *quiescence.Participant

	meta    *inodeSM
	metaRep *replication.Replica

	hits   atomic.Uint64
	misses atomic.Uint64
}

// Mount attaches node n.
func (fs *FS) Mount(n *fabric.Node) *Mount {
	fs.mu.Lock()
	id := fs.nextPartID
	if id >= fs.maxMounts {
		fs.mu.Unlock()
		panic(fmt.Sprintf("fs: more than %d mounts", fs.maxMounts))
	}
	fs.nextPartID++
	fs.mu.Unlock()
	m := &Mount{
		fs:   fs,
		node: n,
		part: fs.qdom.Participant(n, id),
		meta: newInodeSM(),
	}
	m.metaRep = fs.metaLog.Replica(n, m.meta)
	return m
}

// Node returns the mount's fabric node.
func (m *Mount) Node() *fabric.Node { return m.node }

// FenceMount recovers from the crash of dead's node: acting from live
// node `from`, it clears the dead mount's quiescence reservation so a
// participant that died inside a read section cannot stall epoch advance
// (and with it frame reclamation) rack-wide forever. The fenced Mount
// must never be used again; after the node restarts, attach a fresh one
// with FS.Mount. Retirements the dead mount still held are lost — those
// frames leak, exactly like memory held by a crashed kernel until a full
// device fsck, so size the cache with crash headroom.
func (fs *FS) FenceMount(from *fabric.Node, dead *Mount) {
	fs.qdom.Fence(from, dead.part.ID())
}

// MetaReplica exposes the metadata replica for journal-recovery flows.
func (m *Mount) MetaReplica() *replication.Replica { return m.metaRep }

// MetaState exposes the metadata state machine for checkpointing.
func (m *Mount) MetaState() interface {
	replication.StateMachine
	replication.Snapshotter
} {
	return m.meta
}

// CacheStats returns the mount's page-cache hit/miss counters.
func (m *Mount) CacheStats() (hits, misses uint64) {
	return m.hits.Load(), m.misses.Load()
}

// Create makes a new empty file and returns its id.
func (m *Mount) Create(name string) (uint64, error) {
	id := m.node.Add64(m.fs.idCtrG, 1)
	if id >= 1<<32 {
		panic("fs: file id space exhausted")
	}
	payload := make([]byte, 8+len(name))
	binary.LittleEndian.PutUint64(payload, id)
	copy(payload[8:], name)
	if m.metaRep.Execute(metaOpCreate, payload) == 0 {
		return 0, fmt.Errorf("fs: create %q: file exists", name)
	}
	m.fs.emit(m.node, trace.KJournalCommit, id, metaOpCreate)
	m.fs.sizes.PutIfAbsent(m.node, id, 0)
	return id, nil
}

// Lookup resolves a name to a file id. It syncs the metadata replica
// first, so files created on other nodes are visible.
func (m *Mount) Lookup(name string) (uint64, bool) {
	m.metaRep.Sync()
	var id uint64
	var ok bool
	m.metaRep.ReadLocal(func(replication.StateMachine) {
		id, ok = m.meta.names[name]
	})
	return id, ok
}

// Unlink removes a file: its name, cached pages, device pages and size.
func (m *Mount) Unlink(name string) error {
	payload := []byte(name)
	id := m.metaRep.Execute(metaOpUnlink, payload)
	if id == 0 {
		return fmt.Errorf("fs: unlink %q: no such file", name)
	}
	m.fs.emit(m.node, trace.KJournalCommit, id, metaOpUnlink)
	// Collect and drop the file's cached pages.
	var keys []uint64
	m.fs.index.Range(m.node, func(k, v uint64) bool {
		if k>>32 == id {
			keys = append(keys, k)
		}
		return true
	})
	for _, k := range keys {
		if fk, ok := m.fs.index.Delete(m.node, k); ok {
			phys := fk << memsys.PageShift
			m.part.Retire(func() { m.fs.frames.Unref(m.node, phys) })
			m.fs.emit(m.node, trace.KEvict, k, fk)
		}
		m.fs.dirty.Delete(m.node, k)
	}
	m.fs.sizes.Delete(m.node, id)
	m.fs.dev.DeleteFile(m.node, id)
	m.housekeep()
	return nil
}

// Size returns the file's current size in bytes.
func (m *Mount) Size(id uint64) uint64 {
	sz, _ := m.fs.sizes.Get(m.node, id)
	return sz
}

func (m *Mount) bumpSize(id, end uint64) {
	for {
		cur, ok := m.fs.sizes.Get(m.node, id)
		if !ok {
			if _, ins := m.fs.sizes.PutIfAbsent(m.node, id, end); ins {
				return
			}
			continue
		}
		if cur >= end {
			return
		}
		if m.fs.sizes.CompareAndSwap(m.node, id, cur, end) {
			return
		}
	}
}

// lookupFrame returns the cached frame for a page, faulting it in from the
// device on miss (installing exactly one copy rack-wide). hole is true if
// neither cache nor device has the page.
func (m *Mount) lookupFrame(id uint64, page uint32) (phys uint64, hole bool) {
	key := pageKey(id, page)
	n := m.node
	if fk, ok := m.fs.index.Get(n, key); ok {
		m.hits.Add(1)
		return fk << memsys.PageShift, false
	}
	m.misses.Add(1)
	buf := make([]byte, PageSize)
	if !m.fs.dev.ReadPage(n, id, page, buf) {
		return 0, true
	}
	frame := m.fs.frames.AllocUninit(n)
	n.Write(fabric.GPtr(frame), buf)
	n.WriteBackRange(fabric.GPtr(frame), PageSize)
	n.InvalidateRange(fabric.GPtr(frame), PageSize)
	actual, inserted := m.fs.index.PutIfAbsent(n, key, frame>>memsys.PageShift)
	if !inserted {
		m.fs.frames.Unref(n, frame) // another node's miss won the install
	}
	return actual << memsys.PageShift, false
}

// Read copies up to len(buf) bytes from the file at off, through the
// shared page cache. It returns the number of bytes read (short at EOF).
func (m *Mount) Read(id uint64, off uint64, buf []byte) (int, error) {
	size := m.Size(id)
	if off >= size {
		return 0, nil
	}
	total := min(uint64(len(buf)), size-off)
	done := uint64(0)
	for done < total {
		page := uint32((off + done) >> memsys.PageShift)
		po := (off + done) % PageSize
		chunk := min(PageSize-po, total-done)
		m.part.Enter()
		phys, hole := m.lookupFrame(id, page)
		if hole {
			clear(buf[done : done+chunk])
		} else {
			g := fabric.GPtr(phys + po)
			m.node.InvalidateRange(g, chunk)
			m.node.Read(g, buf[done:done+chunk])
			m.node.InvalidateRange(g, chunk)
		}
		m.part.Exit()
		done += chunk
	}
	return int(total), nil
}

// Write copies data into the file at off using multi-version page updates:
// each written page gets a freshly allocated version frame that replaces
// the old one atomically; readers holding the old version finish safely
// and the old frame is reclaimed after a grace period.
func (m *Mount) Write(id uint64, off uint64, data []byte) (int, error) {
	n := m.node
	done := uint64(0)
	for done < uint64(len(data)) {
		page := uint32((off + done) >> memsys.PageShift)
		po := (off + done) % PageSize
		chunk := min(PageSize-po, uint64(len(data))-done)
		key := pageKey(id, page)

		for {
			newFrame := m.fs.frames.AllocUninit(n)
			if po != 0 || chunk != PageSize {
				// Partial page: start from the current version (or zeros).
				cur := make([]byte, PageSize)
				m.part.Enter()
				phys, hole := m.lookupFrame(id, page)
				if !hole {
					n.InvalidateRange(fabric.GPtr(phys), PageSize)
					n.Read(fabric.GPtr(phys), cur)
				}
				m.part.Exit()
				copy(cur[po:], data[done:done+chunk])
				n.Write(fabric.GPtr(newFrame), cur)
			} else {
				n.Write(fabric.GPtr(newFrame), data[done:done+PageSize])
			}
			n.WriteBackRange(fabric.GPtr(newFrame), PageSize)
			n.InvalidateRange(fabric.GPtr(newFrame), PageSize)

			oldFK, exists := m.fs.index.Get(n, key)
			installed := false
			if exists {
				installed = m.fs.index.CompareAndSwap(n, key, oldFK, newFrame>>memsys.PageShift)
			} else {
				_, installed = m.fs.index.PutIfAbsent(n, key, newFrame>>memsys.PageShift)
			}
			if installed {
				if exists {
					oldPhys := oldFK << memsys.PageShift
					m.part.Retire(func() { m.fs.frames.Unref(n, oldPhys) })
					m.fs.emit(n, trace.KEvict, key, oldFK)
				}
				m.fs.dirty.Put(n, key, newFrame>>memsys.PageShift)
				break
			}
			m.fs.frames.Unref(n, newFrame) // lost to a concurrent writer; retry
		}
		done += chunk
	}
	m.bumpSize(id, off+uint64(len(data)))
	m.housekeep()
	return len(data), nil
}

// housekeep advances the quiescence epoch and reclaims retired frames.
func (m *Mount) housekeep() {
	m.part.TryAdvance()
	m.part.Collect()
}

// Fsync synchronously writes every cached page of the file to the device.
func (m *Mount) Fsync(id uint64) error {
	n := m.node
	var keys []uint64
	m.fs.index.Range(n, func(k, v uint64) bool {
		if k>>32 == id {
			keys = append(keys, k)
		}
		return true
	})
	buf := make([]byte, PageSize)
	for _, k := range keys {
		m.part.Enter()
		fk, ok := m.fs.index.Get(n, k)
		if ok {
			g := fabric.GPtr(fk << memsys.PageShift)
			n.InvalidateRange(g, PageSize)
			n.Read(g, buf)
		}
		m.part.Exit()
		if ok {
			m.fs.dev.WritePage(n, k>>32, uint32(k), buf)
			m.fs.dirty.Delete(n, k)
		}
	}
	return nil
}

// WriteBackOnce performs one pass of the asynchronous write-back daemon:
// every dirty page whose version is unchanged since dirtying is written to
// the device and its dirty mark cleared. Returns pages written.
func (m *Mount) WriteBackOnce() int {
	n := m.node
	type entry struct{ key, fk uint64 }
	var work []entry
	m.fs.dirty.Range(n, func(k, v uint64) bool {
		work = append(work, entry{k, v})
		return true
	})
	buf := make([]byte, PageSize)
	written := 0
	for _, e := range work {
		m.part.Enter()
		fk, ok := m.fs.index.Get(n, e.key)
		if ok {
			g := fabric.GPtr(fk << memsys.PageShift)
			n.InvalidateRange(g, PageSize)
			n.Read(g, buf)
		}
		m.part.Exit()
		if !ok {
			m.fs.dirty.Delete(n, e.key)
			continue
		}
		m.fs.dev.WritePage(n, e.key>>32, uint32(e.key), buf)
		written++
		// Clear the mark only if the page was not re-dirtied with a newer
		// version while we were writing.
		if cur, ok := m.fs.dirty.Get(n, e.key); ok && cur == fk {
			m.fs.dirty.Delete(n, e.key)
		}
	}
	return written
}

// StartWriteBack runs WriteBackOnce every interval until the returned stop
// function is called — the asynchronous dirty-data handling of §3.4.
func (m *Mount) StartWriteBack(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				m.WriteBackOnce()
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// DirtyPages returns how many pages currently await write-back.
func (m *Mount) DirtyPages() uint64 { return m.fs.dirty.Len(m.node) }

// DropCaches evicts every page from the shared cache after writing dirty
// data to the device — `echo 3 > drop_caches` for the rack. Returns the
// number of pages evicted. Used for cache-cold experiments and memory
// pressure relief.
func (m *Mount) DropCaches() int {
	m.WriteBackOnce()
	n := m.node
	var keys []uint64
	m.fs.index.Range(n, func(k, v uint64) bool {
		keys = append(keys, k)
		return true
	})
	dropped := 0
	for _, k := range keys {
		if fk, ok := m.fs.index.Delete(n, k); ok {
			phys := fk << memsys.PageShift
			m.part.Retire(func() { m.fs.frames.Unref(n, phys) })
			m.fs.emit(n, trace.KEvict, k, fk)
			dropped++
		}
		m.fs.dirty.Delete(n, k)
	}
	m.housekeep()
	return dropped
}
