package fs

import (
	"flacos/internal/memsys"
)

// PageFrame implements memsys.PageSource: it resolves one file page to a
// shared-page-cache frame and takes a reference on it for the mapping.
// This is how container rootfs and shared datasets get mapped rack-wide
// with exactly one physical copy (§3.4): every node's file mapping points
// at the same cache frame.
//
// The mapping captures the page's CURRENT version (MAP_PRIVATE snapshot
// semantics): later file writes publish new versions into the cache index
// without disturbing established mappings.
func (m *Mount) PageFrame(fileID uint64, page uint32) (phys uint64, ok bool) {
	if uint64(page)<<memsys.PageShift >= m.Size(fileID) {
		return 0, false // beyond EOF: SIGBUS
	}
	// The epoch pin keeps a concurrently retired version alive until our
	// reference is taken.
	m.part.Enter()
	defer m.part.Exit()
	phys, hole := m.lookupFrame(fileID, page)
	if hole {
		// Sparse page inside the file: materialize a shared zero frame so
		// the mapping (and everyone else) has one copy to share.
		frame := m.fs.frames.Alloc(m.node)
		actual, inserted := m.fs.index.PutIfAbsent(m.node, pageKey(fileID, page), frame>>memsys.PageShift)
		if !inserted {
			m.fs.frames.Unref(m.node, frame)
		}
		phys = actual << memsys.PageShift
	}
	m.fs.frames.Ref(m.node, phys)
	return phys, true
}
