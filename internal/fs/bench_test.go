package fs

import (
	"testing"

	"flacos/internal/fabric"
)

func benchFS(b *testing.B) (*fabric.Fabric, *FS) {
	b.Helper()
	f := fabric.New(fabric.Config{GlobalSize: 128 << 20, Nodes: 2})
	return f, New(f, NewMemDev(50_000, 60_000), Config{CacheFrames: 16384})
}

func BenchmarkWriteFullPage(b *testing.B) {
	f, fsys := benchFS(b)
	m := fsys.Mount(f.Node(0))
	id, _ := m.Create("bench")
	page := make([]byte, PageSize)
	b.SetBytes(PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Write(id, uint64(i%4096)*PageSize, page)
	}
}

func BenchmarkReadCachedPage(b *testing.B) {
	f, fsys := benchFS(b)
	m := fsys.Mount(f.Node(0))
	id, _ := m.Create("bench")
	page := make([]byte, PageSize)
	for i := 0; i < 64; i++ {
		m.Write(id, uint64(i)*PageSize, page)
	}
	b.SetBytes(PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Read(id, uint64(i%64)*PageSize, page)
	}
}

func BenchmarkReadCachedPageCrossNode(b *testing.B) {
	f, fsys := benchFS(b)
	m0 := fsys.Mount(f.Node(0))
	m1 := fsys.Mount(f.Node(1))
	id, _ := m0.Create("bench")
	page := make([]byte, PageSize)
	for i := 0; i < 64; i++ {
		m0.Write(id, uint64(i)*PageSize, page)
	}
	b.SetBytes(PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m1.Read(id, uint64(i%64)*PageSize, page)
	}
}

func BenchmarkPartialPageRMW(b *testing.B) {
	f, fsys := benchFS(b)
	m := fsys.Mount(f.Node(0))
	id, _ := m.Create("bench")
	m.Write(id, 0, make([]byte, PageSize))
	small := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Write(id, uint64(i%50)*64, small)
	}
}

func BenchmarkAppend(b *testing.B) {
	f, fsys := benchFS(b)
	m := fsys.Mount(f.Node(0))
	id, _ := m.Create("log")
	rec := make([]byte, 128)
	b.SetBytes(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%30000 == 0 && i > 0 {
			m.Truncate(id, 0) // keep the cache bounded
		}
		m.Append(id, rec)
	}
}
