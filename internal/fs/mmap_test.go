package fs

import (
	"bytes"
	"testing"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/alloc"
	"flacos/internal/memsys"
)

// mmapEnv builds an FS and a memsys space sharing ONE frame pool, as
// file-backed mappings require.
func mmapEnv(t *testing.T) (*fabric.Fabric, *FS, *Mount, *memsys.Space, *memsys.MMU, *memsys.MMU) {
	t.Helper()
	f := fabric.New(fabric.Config{GlobalSize: 64 << 20, Nodes: 2})
	frames := memsys.NewGlobalFrames(f, 4096)
	arena := alloc.NewArena(f, 24<<20)
	fsys := New(f, NewMemDev(50_000, 60_000), Config{CacheFrames: 2048, Frames: frames})
	mount := fsys.Mount(f.Node(0))
	space := memsys.NewSpace(f, 1, frames, arena.NodeAllocator(f.Node(0), 0), 256)
	space.SetPageSource(mount)
	m0 := space.Attach(f.Node(0), arena.NodeAllocator(f.Node(0), 0), memsys.NewLocalStore(f.Node(0)), 64)
	m1 := space.Attach(f.Node(1), arena.NodeAllocator(f.Node(1), 0), memsys.NewLocalStore(f.Node(1)), 64)
	return f, fsys, mount, space, m0, m1
}

func TestMMapFileReadsThroughSharedCache(t *testing.T) {
	f, fsys, mount, _, m0, m1 := mmapEnv(t)
	id, _ := mount.Create("/lib/libc.so")
	content := bytes.Repeat([]byte{0xC3}, 3*PageSize)
	copy(content, "ELF-ish header")
	mount.Write(id, 0, content)

	const va = 0x1000000
	if err := m0.MMapFile(va, 3, memsys.ProtRead, id, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(content))
	if err := m0.Read(va, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("mapped content mismatch")
	}
	// The mapping's frame IS the page cache frame: refcount 2 (cache +
	// mapping), one physical copy rack-wide.
	pte := m0.PTEOf(va)
	if fsys.frames.RefCount(f.Node(0), pte.GlobalPhys()) != 2 {
		t.Fatalf("refcount = %d, want 2 (shared with cache)",
			fsys.frames.RefCount(f.Node(0), pte.GlobalPhys()))
	}
	// Node 1 reads through the same page table: same frame, no extra copy.
	got1 := make([]byte, PageSize)
	if err := m1.Read(va, got1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, content[:PageSize]) {
		t.Fatal("node 1 mapped read mismatch")
	}
	if m1.PTEOf(va).GlobalPhys() != pte.GlobalPhys() {
		t.Fatal("nodes map different frames for the same file page")
	}
}

func TestMMapFileWriteIsCopyOnWrite(t *testing.T) {
	f, fsys, mount, _, m0, _ := mmapEnv(t)
	id, _ := mount.Create("/data")
	orig := bytes.Repeat([]byte{7}, PageSize)
	mount.Write(id, 0, orig)

	const va = 0x2000000
	if err := m0.MMapFile(va, 1, memsys.ProtRead|memsys.ProtWrite, id, 0); err != nil {
		t.Fatal(err)
	}
	// Fault in (read), then write: must COW, not corrupt the file.
	buf := make([]byte, 8)
	if err := m0.Read(va, buf); err != nil {
		t.Fatal(err)
	}
	shared := m0.PTEOf(va).GlobalPhys()
	if err := m0.Write(va, []byte("private!")); err != nil {
		t.Fatal(err)
	}
	private := m0.PTEOf(va).GlobalPhys()
	if private == shared {
		t.Fatal("write did not copy the shared frame")
	}
	// File content unchanged; mapping sees the private bytes.
	fileBuf := make([]byte, PageSize)
	mount.Read(id, 0, fileBuf)
	if !bytes.Equal(fileBuf, orig) {
		t.Fatal("mapped write leaked into the file")
	}
	mapBuf := make([]byte, 8)
	m0.Read(va, mapBuf)
	if string(mapBuf) != "private!" {
		t.Fatalf("mapping reads %q", mapBuf)
	}
	// The cache frame's mapping reference was dropped by the COW break.
	if fsys.frames.RefCount(f.Node(0), shared) != 1 {
		t.Fatalf("shared frame refcount = %d, want 1", fsys.frames.RefCount(f.Node(0), shared))
	}
}

func TestMMapFileBeyondEOFIsSIGBUS(t *testing.T) {
	_, _, mount, _, m0, _ := mmapEnv(t)
	id, _ := mount.Create("/small")
	mount.Write(id, 0, []byte("tiny"))
	const va = 0x3000000
	if err := m0.MMapFile(va, 4, memsys.ProtRead, id, 0); err != nil {
		t.Fatal(err) // mapping larger than the file is fine...
	}
	buf := make([]byte, 8)
	if err := m0.Read(va, buf); err != nil { // page 0 exists
		t.Fatal(err)
	}
	if err := m0.Read(va+2*PageSize, buf); err == nil { // page 2 is beyond EOF
		t.Fatal("access beyond EOF should SIGBUS")
	}
}

func TestMMapFileSparsePageReadsZeros(t *testing.T) {
	_, _, mount, _, m0, _ := mmapEnv(t)
	id, _ := mount.Create("/sparse")
	// Write page 1 only; page 0 is a hole inside the file.
	mount.Write(id, PageSize, bytes.Repeat([]byte{9}, PageSize))
	const va = 0x4000000
	if err := m0.MMapFile(va, 2, memsys.ProtRead, id, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := m0.Read(va, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, PageSize)) {
		t.Fatal("hole page not zero")
	}
	m0.Read(va+PageSize, buf)
	if buf[0] != 9 {
		t.Fatal("data page wrong")
	}
}

func TestMMapFileUnmapReleasesMappingRefs(t *testing.T) {
	f, fsys, mount, _, m0, _ := mmapEnv(t)
	id, _ := mount.Create("/f")
	mount.Write(id, 0, make([]byte, 2*PageSize))
	const va = 0x5000000
	m0.MMapFile(va, 2, memsys.ProtRead, id, 0)
	buf := make([]byte, 2*PageSize)
	m0.Read(va, buf)
	phys := m0.PTEOf(va).GlobalPhys()
	if err := m0.MUnmap(va, 2); err != nil {
		t.Fatal(err)
	}
	if got := fsys.frames.RefCount(f.Node(0), phys); got != 1 {
		t.Fatalf("refcount after unmap = %d, want 1 (cache only)", got)
	}
}

func TestMMapRequiresFileVariant(t *testing.T) {
	_, _, _, _, m0, _ := mmapEnv(t)
	if err := m0.MMap(0x6000000, 1, memsys.ProtRead, memsys.BackFile); err == nil {
		t.Fatal("MMap with BackFile should be rejected")
	}
}
