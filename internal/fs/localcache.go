package fs

import (
	"sync"
	"sync/atomic"

	"flacos/internal/fabric"
)

// LocalCacheMount is the DISAGGREGATED baseline for the page-cache
// ablation: each node keeps a private page cache in its own local memory
// (the world of Figure 1(a)). N nodes reading the same file each hold
// their own copy of every page — the duplication the shared page cache
// eliminates. It serves reads from the same BlockDev as the shared FS so
// the two are directly comparable.
type LocalCacheMount struct {
	node *fabric.Node
	dev  BlockDev

	mu    sync.Mutex
	pages map[uint64][]byte

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewLocalCacheMount creates node n's private cache over dev.
func NewLocalCacheMount(n *fabric.Node, dev BlockDev) *LocalCacheMount {
	return &LocalCacheMount{node: n, dev: dev, pages: make(map[uint64][]byte)}
}

// Read copies size bytes at off from the file through the private cache.
func (m *LocalCacheMount) Read(id uint64, off uint64, buf []byte) int {
	done := uint64(0)
	total := uint64(len(buf))
	for done < total {
		page := uint32((off + done) >> 12)
		po := (off + done) % PageSize
		chunk := min(PageSize-po, total-done)
		key := pageKey(id, page)
		m.mu.Lock()
		p, ok := m.pages[key]
		m.mu.Unlock()
		if ok {
			m.hits.Add(1)
			m.node.ChargeNS((int(chunk)/fabric.LineSize + 1) * 100) // local DRAM
		} else {
			m.misses.Add(1)
			p = make([]byte, PageSize)
			m.dev.ReadPage(m.node, id, page, p)
			m.mu.Lock()
			m.pages[key] = p
			m.mu.Unlock()
		}
		copy(buf[done:done+chunk], p[po:po+chunk])
		done += chunk
	}
	return int(total)
}

// CachedPages returns how many pages THIS node caches privately. Rack-wide
// consumption is the sum over nodes — the number the ablation compares
// against the shared cache's single count.
func (m *LocalCacheMount) CachedPages() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return uint64(len(m.pages))
}

// CacheStats returns hit/miss counters.
func (m *LocalCacheMount) CacheStats() (hits, misses uint64) {
	return m.hits.Load(), m.misses.Load()
}
