package fs

import (
	"bytes"
	"sync"
	"testing"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/reliability"
)

func newFS(t *testing.T, nodes int) (*fabric.Fabric, *FS, *MemDev) {
	t.Helper()
	f := fabric.New(fabric.Config{GlobalSize: 48 << 20, Nodes: nodes})
	dev := NewMemDev(50_000, 60_000) // NVMe-ish latency
	return f, New(f, dev, Config{CacheFrames: 2048, MetaLogCap: 512}), dev
}

func TestCreateLookupUnlink(t *testing.T) {
	f, fsys, _ := newFS(t, 2)
	m0 := fsys.Mount(f.Node(0))
	m1 := fsys.Mount(f.Node(1))

	id, err := m0.Create("/etc/config")
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("zero file id")
	}
	if _, err := m1.Create("/etc/config"); err == nil {
		t.Fatal("duplicate create from another node should fail")
	}
	got, ok := m1.Lookup("/etc/config") // metadata replicated cross-node
	if !ok || got != id {
		t.Fatalf("Lookup = %d,%v", got, ok)
	}
	if err := m1.Unlink("/etc/config"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m0.Lookup("/etc/config"); ok {
		t.Fatal("unlinked file still visible")
	}
	if err := m0.Unlink("/etc/config"); err == nil {
		t.Fatal("double unlink should fail")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f, fsys, _ := newFS(t, 1)
	m := fsys.Mount(f.Node(0))
	id, _ := m.Create("f")

	data := make([]byte, 3*PageSize+123)
	for i := range data {
		data[i] = byte(i * 13)
	}
	if n, err := m.Write(id, 7, data); err != nil || n != len(data) {
		t.Fatalf("Write = %d,%v", n, err)
	}
	if got := m.Size(id); got != 7+uint64(len(data)) {
		t.Fatalf("Size = %d", got)
	}
	buf := make([]byte, len(data))
	if n, err := m.Read(id, 7, buf); err != nil || n != len(data) {
		t.Fatalf("Read = %d,%v", n, err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("round trip mismatch")
	}
	// Reading the unwritten prefix returns zeros (hole).
	pre := make([]byte, 7)
	if n, _ := m.Read(id, 0, pre); n != 7 || !bytes.Equal(pre, make([]byte, 7)) {
		t.Fatalf("hole read = %d %v", n, pre)
	}
	// Read past EOF is short.
	if n, _ := m.Read(id, m.Size(id)+5, buf); n != 0 {
		t.Fatalf("past-EOF read = %d", n)
	}
}

func TestSharedPageCacheSingleCopyAcrossNodes(t *testing.T) {
	f, fsys, dev := newFS(t, 4)
	mounts := make([]*Mount, 4)
	for i := range mounts {
		mounts[i] = fsys.Mount(f.Node(i))
	}
	id, _ := mounts[0].Create("shared")
	const pages = 16
	content := bytes.Repeat([]byte{0xCD}, pages*PageSize)
	mounts[0].Write(id, 0, content)

	devReadsBefore := dev.Reads()
	buf := make([]byte, pages*PageSize)
	for _, m := range mounts {
		if n, err := m.Read(id, 0, buf); err != nil || n != len(buf) {
			t.Fatalf("read: %d %v", n, err)
		}
		if !bytes.Equal(buf, content) {
			t.Fatal("content mismatch")
		}
	}
	// The pages were cached by the writer; NO node's read should have
	// touched the device, and the rack holds exactly `pages` cached copies
	// (not pages * nodes).
	if dev.Reads() != devReadsBefore {
		t.Fatalf("device reads = %d, want 0 new (all nodes share one cache)", dev.Reads()-devReadsBefore)
	}
	if got := fsys.CachedPages(f.Node(0)); got != pages {
		t.Fatalf("cached pages = %d, want %d", got, pages)
	}
	for i, m := range mounts[1:] {
		hits, misses := m.CacheStats()
		if misses != 0 || hits == 0 {
			t.Fatalf("node %d: hits=%d misses=%d, want all hits", i+1, hits, misses)
		}
	}
}

func TestCacheMissLoadsFromDeviceOnce(t *testing.T) {
	f, fsys, dev := newFS(t, 2)
	m0 := fsys.Mount(f.Node(0))
	m1 := fsys.Mount(f.Node(1))
	id, _ := m0.Create("ondisk")
	// Put content on the device directly (file written and evicted long
	// ago): write through m0 then simulate cache loss via fsync+fresh FS?
	// Simpler: write pages straight to the device, set size via a 1-byte
	// FS write at the end.
	page := bytes.Repeat([]byte{0x11}, PageSize)
	dev.WritePage(f.Node(0), id, 0, page)
	m0.Write(id, PageSize, []byte{0x22}) // sets size = PageSize+1, caches page 1 only

	buf := make([]byte, PageSize)
	before := dev.Reads()
	if n, err := m0.Read(id, 0, buf); err != nil || n != PageSize {
		t.Fatalf("read = %d,%v", n, err)
	}
	if !bytes.Equal(buf, page) {
		t.Fatal("device content wrong")
	}
	if dev.Reads() != before+1 {
		t.Fatalf("device reads = %d, want 1", dev.Reads()-before)
	}
	// Second node reads the same page: served from the shared cache.
	if _, err := m1.Read(id, 0, buf); err != nil {
		t.Fatal(err)
	}
	if dev.Reads() != before+1 {
		t.Fatal("second node hit the device despite shared cache")
	}
}

func TestMultiVersionWriteDoesNotTearConcurrentReader(t *testing.T) {
	f, fsys, _ := newFS(t, 2)
	w := fsys.Mount(f.Node(0))
	r := fsys.Mount(f.Node(1))
	id, _ := w.Create("versioned")
	mk := func(v byte) []byte { return bytes.Repeat([]byte{v}, PageSize) }
	w.Write(id, 0, mk(1))

	done := make(chan struct{})
	go func() {
		defer close(done)
		for v := byte(2); v < 60; v++ {
			w.Write(id, 0, mk(v))
		}
	}()
	buf := make([]byte, PageSize)
	for {
		select {
		case <-done:
			return
		default:
		}
		if n, err := r.Read(id, 0, buf); err != nil || n != PageSize {
			t.Fatalf("read = %d,%v", n, err)
		}
		first := buf[0]
		for i, b := range buf {
			if b != first {
				t.Fatalf("torn page: byte 0 = %d, byte %d = %d", first, i, b)
			}
		}
	}
}

func TestPartialPageWriteReadModifyWrite(t *testing.T) {
	f, fsys, _ := newFS(t, 1)
	m := fsys.Mount(f.Node(0))
	id, _ := m.Create("partial")
	m.Write(id, 0, bytes.Repeat([]byte{0xAA}, PageSize))
	m.Write(id, 100, []byte{1, 2, 3})
	buf := make([]byte, PageSize)
	m.Read(id, 0, buf)
	if buf[99] != 0xAA || buf[100] != 1 || buf[102] != 3 || buf[103] != 0xAA {
		t.Fatalf("RMW wrong around offset 100: % x", buf[98:105])
	}
}

func TestFsyncAndWriteBackDaemon(t *testing.T) {
	f, fsys, dev := newFS(t, 1)
	m := fsys.Mount(f.Node(0))
	id, _ := m.Create("durable")
	m.Write(id, 0, bytes.Repeat([]byte{0x77}, 2*PageSize))
	if m.DirtyPages() != 2 {
		t.Fatalf("dirty = %d", m.DirtyPages())
	}
	if err := m.Fsync(id); err != nil {
		t.Fatal(err)
	}
	if m.DirtyPages() != 0 {
		t.Fatal("fsync left dirty pages")
	}
	var buf [PageSize]byte
	if !dev.ReadPage(f.Node(0), id, 1, buf[:]) || buf[0] != 0x77 {
		t.Fatal("fsync did not persist to device")
	}
	// Asynchronous daemon path.
	m.Write(id, 0, bytes.Repeat([]byte{0x88}, PageSize))
	if m.DirtyPages() == 0 {
		t.Fatal("write did not dirty")
	}
	if n := m.WriteBackOnce(); n != 1 {
		t.Fatalf("WriteBackOnce = %d", n)
	}
	if !dev.ReadPage(f.Node(0), id, 0, buf[:]) || buf[0] != 0x88 {
		t.Fatal("write-back did not persist")
	}
}

func TestConcurrentWritersDistinctRegions(t *testing.T) {
	f, fsys, _ := newFS(t, 4)
	m0 := fsys.Mount(f.Node(0))
	id, _ := m0.Create("parallel")
	const regionPages = 4
	var wg sync.WaitGroup
	mounts := []*Mount{m0, fsys.Mount(f.Node(1)), fsys.Mount(f.Node(2)), fsys.Mount(f.Node(3))}
	for i, m := range mounts {
		wg.Add(1)
		go func(i int, m *Mount) {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte(i + 1)}, regionPages*PageSize)
			if _, err := m.Write(id, uint64(i)*regionPages*PageSize, data); err != nil {
				t.Errorf("write %d: %v", i, err)
			}
		}(i, m)
	}
	wg.Wait()
	buf := make([]byte, regionPages*PageSize)
	for i := range mounts {
		if _, err := m0.Read(id, uint64(i)*regionPages*PageSize, buf); err != nil {
			t.Fatal(err)
		}
		for j, b := range buf {
			if b != byte(i+1) {
				t.Fatalf("region %d byte %d = %d", i, j, b)
			}
		}
	}
}

func TestMetadataJournalRecovery(t *testing.T) {
	f, fsys, _ := newFS(t, 2)
	m0 := fsys.Mount(f.Node(0))
	ck := reliability.NewCheckpointer(f, f.Node(0), 1<<16)

	m0.Create("a.txt")
	m0.Create("b.txt")
	reliability.CheckpointReplica(ck, m0.MetaReplica(), m0.MetaState(), nil)
	m0.Create("c.txt") // after the checkpoint: only in the journal
	m0.Unlink("a.txt")

	f.Node(0).Crash()

	sm := newInodeSM()
	rep, err := reliability.RecoverReplica(fsys.Journal(), f.Node(1), sm, ck)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	_ = rep
	if _, ok := sm.names["a.txt"]; ok {
		t.Fatal("unlink lost in recovery")
	}
	if _, ok := sm.names["b.txt"]; !ok {
		t.Fatal("checkpointed file lost")
	}
	if _, ok := sm.names["c.txt"]; !ok {
		t.Fatal("journaled file lost")
	}
}

func TestLocalCacheBaselineDuplicatesPages(t *testing.T) {
	f, fsys, dev := newFS(t, 4)
	m := fsys.Mount(f.Node(0))
	id, _ := m.Create("image")
	const pages = 8
	m.Write(id, 0, bytes.Repeat([]byte{0x42}, pages*PageSize))
	m.Fsync(id)

	locals := make([]*LocalCacheMount, 4)
	buf := make([]byte, pages*PageSize)
	totalLocal := uint64(0)
	for i := range locals {
		locals[i] = NewLocalCacheMount(f.Node(i), dev)
		locals[i].Read(id, 0, buf)
		if buf[0] != 0x42 {
			t.Fatal("baseline read wrong")
		}
		locals[i].Read(id, 0, buf) // second read: private hit
		hits, misses := locals[i].CacheStats()
		if misses != pages || hits != pages {
			t.Fatalf("node %d: hits=%d misses=%d", i, hits, misses)
		}
		totalLocal += locals[i].CachedPages()
	}
	// The baseline burns pages*nodes; the shared cache holds pages once.
	if totalLocal != pages*4 {
		t.Fatalf("baseline rack-wide pages = %d, want %d", totalLocal, pages*4)
	}
	if shared := fsys.CachedPages(f.Node(0)); shared != pages {
		t.Fatalf("shared rack-wide pages = %d, want %d", shared, pages)
	}
}

func TestUnlinkReleasesCacheFrames(t *testing.T) {
	f, fsys, _ := newFS(t, 1)
	m := fsys.Mount(f.Node(0))
	id, _ := m.Create("temp")
	m.Write(id, 0, make([]byte, 4*PageSize))
	if fsys.CachedPages(f.Node(0)) != 4 {
		t.Fatalf("cached = %d", fsys.CachedPages(f.Node(0)))
	}
	if err := m.Unlink("temp"); err != nil {
		t.Fatal(err)
	}
	if fsys.CachedPages(f.Node(0)) != 0 {
		t.Fatal("unlink left pages cached")
	}
	if m.Size(id) != 0 {
		t.Fatal("size survived unlink")
	}
}
