package fs

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"flacos/internal/flacdk/replication"
	"flacos/internal/memsys"
	"flacos/internal/trace"
)

// metaOpRename renames a file in the replicated namespace.
// Payload: u32 oldLen, old, new. Result: file id or 0.
const metaOpRename = 3

// Rename atomically renames a file. Fails if the source is missing or the
// destination exists — decided deterministically on every replica.
func (m *Mount) Rename(oldName, newName string) error {
	payload := make([]byte, 4+len(oldName)+len(newName))
	binary.LittleEndian.PutUint32(payload, uint32(len(oldName)))
	copy(payload[4:], oldName)
	copy(payload[4+len(oldName):], newName)
	id := m.metaRep.Execute(metaOpRename, payload)
	if id == 0 {
		return fmt.Errorf("fs: rename %q -> %q: no such file or destination exists", oldName, newName)
	}
	m.fs.emit(m.node, trace.KJournalCommit, id, metaOpRename)
	return nil
}

// List returns the names under prefix, sorted (the namespace is flat; a
// "directory" is a name prefix, like object stores).
func (m *Mount) List(prefix string) []string {
	m.metaRep.Sync()
	var names []string
	m.metaRep.ReadLocal(func(replication.StateMachine) {
		for name := range m.meta.names {
			if strings.HasPrefix(name, prefix) {
				names = append(names, name)
			}
		}
	})
	sort.Strings(names)
	return names
}

// Append writes data at the file's current end and returns the offset it
// landed at. Concurrent appenders from different nodes each get disjoint
// regions: the offset is claimed with a CAS loop on the size table.
func (m *Mount) Append(id uint64, data []byte) (uint64, error) {
	n := m.node
	for {
		cur, ok := m.fs.sizes.Get(n, id)
		if !ok {
			return 0, fmt.Errorf("fs: append to unknown file %d", id)
		}
		if m.fs.sizes.CompareAndSwap(n, id, cur, cur+uint64(len(data))) {
			if _, err := m.Write(id, cur, data); err != nil {
				return 0, err
			}
			return cur, nil
		}
	}
}

// Truncate sets the file's size. Shrinking drops whole cached pages beyond
// the new end (their frames are reclaimed after a grace period).
func (m *Mount) Truncate(id uint64, size uint64) error {
	n := m.node
	for {
		cur, ok := m.fs.sizes.Get(n, id)
		if !ok {
			return fmt.Errorf("fs: truncate of unknown file %d", id)
		}
		if cur == size {
			return nil
		}
		if !m.fs.sizes.CompareAndSwap(n, id, cur, size) {
			continue
		}
		if size < cur {
			firstDead := uint32((size + PageSize - 1) >> memsys.PageShift)
			var keys []uint64
			m.fs.index.Range(n, func(k, v uint64) bool {
				if k>>32 == id && uint32(k) >= firstDead {
					keys = append(keys, k)
				}
				return true
			})
			for _, k := range keys {
				if fk, ok := m.fs.index.Delete(n, k); ok {
					phys := fk << memsys.PageShift
					m.part.Retire(func() { m.fs.frames.Unref(n, phys) })
				}
				m.fs.dirty.Delete(n, k)
			}
			// Zero the boundary page's tail: data beyond the new EOF must
			// read back as zeros if the file grows again (POSIX truncate).
			if tail := size % PageSize; tail != 0 {
				if _, err := m.Write(id, size, make([]byte, PageSize-tail)); err != nil {
					return err
				}
				// The zeroing write bumped the size back up; undo it.
				for {
					c, _ := m.fs.sizes.Get(n, id)
					if c <= size || m.fs.sizes.CompareAndSwap(n, id, c, size) {
						break
					}
				}
			}
			m.housekeep()
		}
		return nil
	}
}
