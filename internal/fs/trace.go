package fs

import (
	"flacos/internal/fabric"
	"flacos/internal/trace"
)

// SetTrace attaches the file system's journal-commit and page-cache
// eviction paths to r's per-node writers; a nil recorder detaches.
// Safe to call while mounts are active.
func (fsys *FS) SetTrace(r *trace.Recorder) {
	for i := range fsys.trw {
		fsys.trw[i].Store(r.Writer(i))
	}
}

// emit records one fs event on n's writer when tracing is attached.
func (fsys *FS) emit(n *fabric.Node, kind trace.Kind, a0, a1 uint64) {
	if tw := fsys.trw[n.ID()].Load(); tw != nil {
		tw.Emit(trace.SubFS, kind, 0, a0, a1)
	}
}
