package fs

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
)

func TestRenameAcrossNodes(t *testing.T) {
	f, fsys, _ := newFS(t, 2)
	m0, m1 := fsys.Mount(f.Node(0)), fsys.Mount(f.Node(1))
	id, _ := m0.Create("/a/old")
	m0.Write(id, 0, []byte("content survives rename"))

	if err := m1.Rename("/a/old", "/a/new"); err != nil { // from the other node
		t.Fatal(err)
	}
	if _, ok := m0.Lookup("/a/old"); ok {
		t.Fatal("old name still resolves")
	}
	got, ok := m0.Lookup("/a/new")
	if !ok || got != id {
		t.Fatalf("new name = %d,%v", got, ok)
	}
	buf := make([]byte, 24)
	if n, _ := m0.Read(id, 0, buf); string(buf[:n]) != "content survives rename" {
		t.Fatalf("content = %q", buf[:n])
	}
	// Error cases.
	if err := m0.Rename("/a/missing", "/x"); err == nil {
		t.Fatal("rename of missing file should fail")
	}
	m0.Create("/a/taken")
	if err := m0.Rename("/a/new", "/a/taken"); err == nil {
		t.Fatal("rename onto existing name should fail")
	}
}

func TestListWithPrefix(t *testing.T) {
	f, fsys, _ := newFS(t, 2)
	m0, m1 := fsys.Mount(f.Node(0)), fsys.Mount(f.Node(1))
	for _, name := range []string{"/etc/a", "/etc/b", "/var/log", "/etc/c"} {
		if _, err := m0.Create(name); err != nil {
			t.Fatal(err)
		}
	}
	got := m1.List("/etc/") // listing replicated metadata from node 1
	want := []string{"/etc/a", "/etc/b", "/etc/c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("List = %v, want %v", got, want)
	}
	if all := m1.List(""); len(all) != 4 {
		t.Fatalf("List(\"\") = %v", all)
	}
	if none := m1.List("/nope"); len(none) != 0 {
		t.Fatalf("List(/nope) = %v", none)
	}
}

func TestAppendSequential(t *testing.T) {
	f, fsys, _ := newFS(t, 1)
	m := fsys.Mount(f.Node(0))
	id, _ := m.Create("log")
	off1, err := m.Append(id, []byte("first."))
	if err != nil || off1 != 0 {
		t.Fatalf("append 1: %d, %v", off1, err)
	}
	off2, _ := m.Append(id, []byte("second."))
	if off2 != 6 {
		t.Fatalf("append 2 at %d", off2)
	}
	buf := make([]byte, 13)
	m.Read(id, 0, buf)
	if string(buf) != "first.second." {
		t.Fatalf("log = %q", buf)
	}
	if _, err := m.Append(999, []byte("x")); err == nil {
		t.Fatal("append to unknown file should fail")
	}
}

func TestAppendConcurrentDisjointOffsets(t *testing.T) {
	const writers, per = 4, 50
	f, fsys, _ := newFS(t, 4)
	m0 := fsys.Mount(f.Node(0))
	id, _ := m0.Create("shared-log")
	mounts := []*Mount{m0, fsys.Mount(f.Node(1)), fsys.Mount(f.Node(2)), fsys.Mount(f.Node(3))}

	var mu sync.Mutex
	offsets := map[uint64]bool{}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := bytes.Repeat([]byte{byte(w + 1)}, 32)
			for i := 0; i < per; i++ {
				off, err := mounts[w].Append(id, rec)
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				mu.Lock()
				if offsets[off] {
					t.Errorf("offset %d claimed twice", off)
				}
				offsets[off] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if got := m0.Size(id); got != writers*per*32 {
		t.Fatalf("size = %d, want %d", got, writers*per*32)
	}
	// Every 32-byte record must be uniform (no interleaving).
	buf := make([]byte, 32)
	for off := uint64(0); off < writers*per*32; off += 32 {
		m0.Read(id, off, buf)
		for _, b := range buf {
			if b != buf[0] || b == 0 {
				t.Fatalf("record at %d torn: % x", off, buf)
			}
		}
	}
}

func TestTruncate(t *testing.T) {
	f, fsys, _ := newFS(t, 1)
	m := fsys.Mount(f.Node(0))
	id, _ := m.Create("t")
	m.Write(id, 0, bytes.Repeat([]byte{7}, 3*PageSize))
	if fsys.CachedPages(f.Node(0)) != 3 {
		t.Fatalf("cached = %d", fsys.CachedPages(f.Node(0)))
	}
	// Shrink to 1.5 pages: page 2 must be dropped, page 1 kept (contains
	// live data up to the new EOF).
	if err := m.Truncate(id, PageSize+PageSize/2); err != nil {
		t.Fatal(err)
	}
	if got := m.Size(id); got != PageSize+PageSize/2 {
		t.Fatalf("size = %d", got)
	}
	if fsys.CachedPages(f.Node(0)) != 2 {
		t.Fatalf("cached after truncate = %d", fsys.CachedPages(f.Node(0)))
	}
	buf := make([]byte, PageSize)
	n, _ := m.Read(id, PageSize, buf)
	if n != PageSize/2 {
		t.Fatalf("read past new EOF = %d", n)
	}
	// Growing is allowed too (sparse tail reads as zeros).
	if err := m.Truncate(id, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	n, _ = m.Read(id, 3*PageSize, buf)
	if n != PageSize || !bytes.Equal(buf, make([]byte, PageSize)) {
		t.Fatalf("sparse tail read n=%d", n)
	}
	if err := m.Truncate(999, 0); err == nil {
		t.Fatal("truncate of unknown file should fail")
	}
}
