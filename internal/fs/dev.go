// Package fs is the FlacOS memory file system (paper §3.4).
//
// Its core split follows the paper's placement analysis:
//
//   - The PAGE CACHE is shared, in global memory: one copy of each cached
//     file page serves every node in the rack, eliminating the per-node
//     duplicate copies (container images, shared datasets) that dominate
//     page-cache footprints in production clusters. Cache misses install
//     pages with a race-free PutIfAbsent protocol; updates are
//     multi-version (writers publish a new immutable page version and the
//     old one is reclaimed after a quiescence grace period), and dirty
//     pages reach the device through an asynchronous write-back daemon.
//   - METADATA (the name space and inode attributes) is node-local: each
//     mount holds a replica, bulk-synchronized through a FlacDK
//     replication log. The log doubles as the journal — §3.4's plan of
//     integrating journaling with the synchronization mechanism — so
//     metadata recovery after a node crash is checkpoint + log replay.
//   - The BLOCK LAYER is node-local and device-shaped (BlockDev), keeping
//     compatibility with traditional non-memory-semantic storage.
package fs

import (
	"fmt"
	"sync"

	"flacos/internal/fabric"
)

// PageSize is the file system's page granularity (same as memsys).
const PageSize = 4096

// BlockDev is the storage device under the file system. Implementations
// model their own access latency by charging the calling node.
type BlockDev interface {
	// ReadPage fills buf (PageSize bytes) with the stored content of the
	// file's page; ok is false for holes the device has never written.
	ReadPage(n *fabric.Node, fileID uint64, page uint32, buf []byte) (ok bool)
	// WritePage persists one page of a file.
	WritePage(n *fabric.Node, fileID uint64, page uint32, data []byte)
	// DeleteFile drops every stored page of a file.
	DeleteFile(n *fabric.Node, fileID uint64)
}

// MemDev is an in-memory BlockDev with configurable access latency,
// standing in for an NVMe device or a remote registry backend.
type MemDev struct {
	ReadLatencyNS  int
	WriteLatencyNS int

	mu    sync.Mutex
	pages map[uint64][]byte
	reads uint64
}

// NewMemDev creates a device with the given per-page access latencies.
func NewMemDev(readLatNS, writeLatNS int) *MemDev {
	return &MemDev{
		ReadLatencyNS:  readLatNS,
		WriteLatencyNS: writeLatNS,
		pages:          make(map[uint64][]byte),
	}
}

func devKey(fileID uint64, page uint32) uint64 {
	if fileID == 0 || fileID >= 1<<32 {
		panic(fmt.Sprintf("fs: file id %d out of range", fileID))
	}
	return fileID<<32 | uint64(page)
}

// ReadPage implements BlockDev.
func (d *MemDev) ReadPage(n *fabric.Node, fileID uint64, page uint32, buf []byte) bool {
	n.ChargeNS(d.ReadLatencyNS)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reads++
	p, ok := d.pages[devKey(fileID, page)]
	if !ok {
		return false
	}
	copy(buf, p)
	return true
}

// WritePage implements BlockDev.
func (d *MemDev) WritePage(n *fabric.Node, fileID uint64, page uint32, data []byte) {
	n.ChargeNS(d.WriteLatencyNS)
	cp := make([]byte, PageSize)
	copy(cp, data)
	d.mu.Lock()
	d.pages[devKey(fileID, page)] = cp
	d.mu.Unlock()
}

// DeleteFile implements BlockDev.
func (d *MemDev) DeleteFile(n *fabric.Node, fileID uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for k := range d.pages {
		if k>>32 == fileID {
			delete(d.pages, k)
		}
	}
}

// Reads returns how many page reads the device has served (cache-miss
// accounting for the experiments).
func (d *MemDev) Reads() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads
}
