package tiering

import (
	"testing"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/alloc"
	"flacos/internal/memsys"
)

// tierEnv is a small rack: one space attached on every node, each node
// with a local store, TLB big enough that nothing evicts.
type tierEnv struct {
	f    *fabric.Fabric
	s    *memsys.Space
	mmus []*memsys.MMU
}

func newTierEnv(t *testing.T, nodes int) *tierEnv {
	t.Helper()
	f := fabric.New(fabric.Config{
		GlobalSize: 48 << 20,
		Nodes:      nodes,
		Latency:    fabric.DefaultLatency(),
	})
	frames := memsys.NewGlobalFrames(f, 4096)
	arena := alloc.NewArena(f, 24<<20)
	s := memsys.NewSpace(f, 1, frames, arena.NodeAllocator(f.Node(0), 0), 4096)
	e := &tierEnv{f: f, s: s}
	for n := 0; n < nodes; n++ {
		e.mmus = append(e.mmus, s.Attach(f.Node(n),
			arena.NodeAllocator(f.Node(n), 0), memsys.NewLocalStore(f.Node(n)), 4096))
	}
	return e
}

const basePage = uint64(0x40000000 >> memsys.PageShift)

// mapPages maps and faults in n pages starting at basePage via node 0, so
// every page starts in warm global memory.
func (e *tierEnv) mapPages(t *testing.T, n int) {
	t.Helper()
	if err := e.mmus[0].MMap(basePage<<memsys.PageShift, uint64(n),
		memsys.ProtRead|memsys.ProtWrite, memsys.BackGlobal); err != nil {
		t.Fatal(err)
	}
	buf := []byte{1}
	for i := 0; i < n; i++ {
		if err := e.mmus[0].Write((basePage+uint64(i))<<memsys.PageShift, buf); err != nil {
			t.Fatal(err)
		}
	}
}

// read issues one sampled access to page basePage+i from the given node.
func (e *tierEnv) read(t *testing.T, node, i int) {
	t.Helper()
	buf := make([]byte, 8)
	if err := e.mmus[node].Read((basePage+uint64(i))<<memsys.PageShift, buf); err != nil {
		t.Fatal(err)
	}
}

func (e *tierEnv) tierOf(i int) (memsys.Tier, int) {
	return e.mmus[0].TierOf(basePage + uint64(i))
}

// TestDaemonPromotesHotPageToDominantNode: sustained access from one node
// pulls a warm page into that node's local store, end to end through the
// sampler hook.
func TestDaemonPromotesHotPageToDominantNode(t *testing.T) {
	e := newTierEnv(t, 3)
	e.mapPages(t, 1)
	d := New(e.s, e.mmus, Config{}, nil)
	d.Attach()
	defer d.Detach()

	for i := 0; i < 16; i++ {
		e.read(t, 1, 0)
	}
	d.Step()
	if tier, node := e.tierOf(0); tier != memsys.TierLocal || node != 1 {
		t.Fatalf("after hot step: tier=%v node=%d, want local on node 1", tier, node)
	}
	st := d.Stats()
	if st.PromotedLocal != 1 || st.FailedMoves != 0 {
		t.Fatalf("stats = %+v, want 1 clean local promotion", st)
	}
}

// TestDaemonPressureDemotion: fading alone never demotes — an idle local
// page keeps its frame while the store is uncontended — but a hotter
// challenger displaces the faded resident down to warm, and warm-budget
// pressure then pushes it to the cold tier (faded pages carry zero heat,
// so they are the first victims).
func TestDaemonPressureDemotion(t *testing.T) {
	e := newTierEnv(t, 2)
	e.mapPages(t, 4)
	d := New(e.s, e.mmus, Config{LocalBudgetPages: 1, WarmBudgetPages: 2}, nil)
	d.Attach()
	defer d.Detach()

	for i := 0; i < 16; i++ {
		e.read(t, 0, 0)
	}
	d.Step()
	if tier, _ := e.tierOf(0); tier != memsys.TierLocal {
		t.Fatalf("setup: tier=%v, want local", tier)
	}

	for i := 0; i < 10; i++ { // idle: the page fades out of the tracker
		d.Step()
	}
	if tier, _ := e.tierOf(0); tier != memsys.TierLocal {
		t.Fatalf("idle page demoted without pressure (tier=%v)", tier)
	}
	if st := d.Stats(); st.DemotedWarm != 0 || st.DemotedCold != 0 {
		t.Fatalf("stats = %+v, want no demotions while uncontended", st)
	}

	// A hot challenger fills the one-frame local store: the faded resident
	// is displaced down to warm, and the next step installs the challenger.
	for i := 0; i < 16; i++ {
		e.read(t, 0, 1)
	}
	d.Step()
	if tier, _ := e.tierOf(0); tier != memsys.TierWarm {
		t.Fatalf("faded resident not displaced to warm (tier=%v)", tier)
	}
	d.Step()
	if tier, node := e.tierOf(1); tier != memsys.TierLocal || node != 0 {
		t.Fatalf("challenger tier=%v/%d, want local on node 0", tier, node)
	}

	// Warm-budget pressure: two managed warm pages with live heat overflow
	// the budget of 2, and the faded page 0 is the coldest — it goes cold.
	d.Prime(basePage+2, memsys.TierWarm, -1)
	d.Prime(basePage+3, memsys.TierWarm, -1)
	e.read(t, 0, 2)
	e.read(t, 0, 3)
	d.Step()
	if tier, _ := e.tierOf(0); tier != memsys.TierCold {
		t.Fatalf("faded warm page not evicted under pressure (tier=%v)", tier)
	}
	if st := d.Stats(); st.DemotedCold != 1 || st.FailedMoves != 0 {
		t.Fatalf("stats = %+v, want 1 clean cold eviction", st)
	}
}

// TestDaemonColdPromotion: accesses to a cold page first earn it a warm
// slot, and sustained dominance then earns it a local frame.
func TestDaemonColdPromotion(t *testing.T) {
	e := newTierEnv(t, 2)
	e.mapPages(t, 1)
	if !e.mmus[0].DemoteToCold(basePage) {
		t.Fatal("setup demote failed")
	}
	d := New(e.s, e.mmus, Config{}, nil)
	d.Prime(basePage, memsys.TierCold, -1)
	d.Attach()
	defer d.Detach()

	e.read(t, 1, 0)
	e.read(t, 1, 0)
	e.read(t, 1, 0)
	d.Step()
	if tier, _ := e.tierOf(0); tier != memsys.TierWarm {
		t.Fatalf("tier=%v, want warm after moderate heat", tier)
	}
	for i := 0; i < 16; i++ {
		e.read(t, 1, 0)
	}
	d.Step()
	if tier, node := e.tierOf(0); tier != memsys.TierLocal || node != 1 {
		t.Fatalf("tier=%v/%d, want local on node 1", tier, node)
	}
	st := d.Stats()
	if st.PromotedWarm != 1 || st.PromotedLocal != 1 || st.FailedMoves != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDaemonWarmBudgetEviction: priming more warm pages than the premium
// budget allows evicts the coldest down to the cold tier.
func TestDaemonWarmBudgetEviction(t *testing.T) {
	e := newTierEnv(t, 2)
	e.mapPages(t, 4)
	d := New(e.s, e.mmus, Config{WarmBudgetPages: 2}, nil)
	d.Attach()
	defer d.Detach()
	for i := 0; i < 4; i++ {
		d.Prime(basePage+uint64(i), memsys.TierWarm, -1)
	}
	// Pages 0 and 1 stay warm; 2 and 3 are never touched.
	for i := 0; i < 4; i++ {
		e.read(t, 0, 0)
		e.read(t, 0, 1)
	}
	d.Step()
	for i, want := range []memsys.Tier{memsys.TierWarm, memsys.TierWarm, memsys.TierCold, memsys.TierCold} {
		if tier, _ := e.tierOf(i); tier != want {
			t.Fatalf("page %d: tier=%v, want %v", i, tier, want)
		}
	}
	if st := d.Stats(); st.Displaced != 2 || st.DemotedCold != 2 {
		t.Fatalf("stats = %+v, want 2 budget evictions", st)
	}
}

// TestDaemonLocalDisplacement: a full local store only gives up a frame
// when the challenger is DisplaceFactor hotter than the coldest resident,
// and the displaced page's slot goes to the challenger next step.
func TestDaemonLocalDisplacement(t *testing.T) {
	e := newTierEnv(t, 2)
	e.mapPages(t, 2)
	d := New(e.s, e.mmus, Config{LocalBudgetPages: 1}, nil)
	d.Attach()
	defer d.Detach()

	for i := 0; i < 16; i++ {
		e.read(t, 0, 0)
	}
	d.Step()
	if tier, _ := e.tierOf(0); tier != memsys.TierLocal {
		t.Fatal("setup: page 0 not local")
	}

	// Page 1 gets modest heat — above LocalHeat but NOT DisplaceFactor
	// beyond page 0's decayed heat (8): no churn.
	for i := 0; i < 9; i++ {
		e.read(t, 0, 1)
	}
	d.Step()
	if tier, _ := e.tierOf(0); tier != memsys.TierLocal {
		t.Fatal("hysteresis violated: lukewarm challenger displaced resident")
	}
	if st := d.Stats(); st.Displaced != 0 {
		t.Fatalf("Displaced = %d, want 0", st.Displaced)
	}

	// Now page 1 runs clearly hotter: resident 0 is displaced, and the
	// following step installs page 1 in the freed frame.
	for i := 0; i < 64; i++ {
		e.read(t, 0, 1)
	}
	d.Step()
	if tier, _ := e.tierOf(0); tier != memsys.TierWarm {
		t.Fatal("hot challenger failed to displace cold resident")
	}
	d.Step()
	if tier, node := e.tierOf(1); tier != memsys.TierLocal || node != 0 {
		t.Fatalf("page 1: tier=%v/%d, want local on node 0", tier, node)
	}
	if st := d.Stats(); st.Displaced != 1 || st.FailedMoves != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// fakeHints scripts sched's placement answer.
type fakeHints struct {
	node int
	ok   bool
}

func (f *fakeHints) SpacePlacementHint(spaceID uint64, maxAge time.Duration) (int, bool) {
	return f.node, f.ok
}

// TestDaemonHintVeto: a sched placement hint for a node blocks demotions
// (here: budget displacement) from that node's local store until the hint
// expires.
func TestDaemonHintVeto(t *testing.T) {
	e := newTierEnv(t, 2)
	e.mapPages(t, 2)
	hints := &fakeHints{node: 0, ok: true}
	d := New(e.s, e.mmus, Config{LocalBudgetPages: 1}, hints)
	d.Attach()
	defer d.Detach()

	for i := 0; i < 16; i++ {
		e.read(t, 0, 0)
	}
	d.Step() // promotions are never vetoed: the hinted node GAINS pages
	if tier, _ := e.tierOf(0); tier != memsys.TierLocal {
		t.Fatal("setup: page not local")
	}

	// A far hotter challenger wants the frame, but node 0 is hinted: the
	// displacement is vetoed and the resident stays.
	for i := 0; i < 64; i++ {
		e.read(t, 0, 1)
	}
	d.Step()
	if tier, _ := e.tierOf(0); tier != memsys.TierLocal {
		t.Fatal("veto ignored: hinted node lost its page")
	}
	st := d.Stats()
	if st.HintVetoes == 0 || st.DemotedWarm != 0 {
		t.Fatalf("stats = %+v, want vetoes and no demotions", st)
	}

	// Hint expires: the same pressure now displaces the resident, and the
	// challenger takes the frame on the following step.
	hints.ok = false
	for i := 0; i < 64; i++ {
		e.read(t, 0, 1)
	}
	d.Step()
	if tier, _ := e.tierOf(0); tier != memsys.TierWarm {
		t.Fatal("resident not displaced after hint expiry")
	}
	d.Step()
	if tier, node := e.tierOf(1); tier != memsys.TierLocal || node != 0 {
		t.Fatalf("challenger tier=%v/%d, want local on node 0", tier, node)
	}
}

// TestDaemonLearnsFromDemandMigration: when a remote access demand-migrates
// a local page to warm behind the daemon's back, the Migrated callback
// corrects the model — the next promotion plans from "warm", succeeds, and
// nothing resyncs.
func TestDaemonLearnsFromDemandMigration(t *testing.T) {
	e := newTierEnv(t, 2)
	e.mapPages(t, 1)
	d := New(e.s, e.mmus, Config{}, nil)
	d.Attach()
	defer d.Detach()

	for i := 0; i < 16; i++ {
		e.read(t, 0, 0)
	}
	d.Step()
	if tier, _ := e.tierOf(0); tier != memsys.TierLocal {
		t.Fatal("setup: page not local")
	}

	// A write from node 1 demand-migrates the page to warm global memory.
	if err := e.mmus[1].Write(basePage<<memsys.PageShift, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if tier, _ := e.tierOf(0); tier != memsys.TierWarm {
		t.Fatal("demand migration did not happen")
	}

	// Node 1 now dominates; one step is enough to land it locally there,
	// because the model already knows the page went warm.
	for i := 0; i < 32; i++ {
		e.read(t, 1, 0)
	}
	d.Step()
	if tier, node := e.tierOf(0); tier != memsys.TierLocal || node != 1 {
		t.Fatalf("tier=%v/%d, want local on node 1", tier, node)
	}
	if st := d.Stats(); st.FailedMoves != 0 {
		t.Fatalf("FailedMoves = %d: Migrated callback not folded in", st.FailedMoves)
	}
}

// TestDaemonResyncOnFailedMove: the daemon assumes an unknown hot page is
// cold; when the promote-from-cold fails (the page was already warm) it
// resyncs from the page table instead of believing its plan.
func TestDaemonResyncOnFailedMove(t *testing.T) {
	e := newTierEnv(t, 2)
	e.mapPages(t, 1)
	d := New(e.s, e.mmus, Config{}, nil)
	d.Attach()
	defer d.Detach()

	e.read(t, 0, 0)
	e.read(t, 0, 0)
	e.read(t, 0, 0)
	d.Step()
	if tier, _ := e.tierOf(0); tier != memsys.TierWarm {
		t.Fatalf("page moved unexpectedly")
	}
	if st := d.Stats(); st.FailedMoves != 1 || st.PromotedWarm != 0 {
		t.Fatalf("stats = %+v, want exactly one resynced failure", st)
	}
	d.Step() // model now says warm: no repeat attempt
	if st := d.Stats(); st.FailedMoves != 1 {
		t.Fatalf("FailedMoves = %d after resync, want still 1", d.Stats().FailedMoves)
	}
}

// TestDaemonDeterministic: two fresh racks running the same scripted
// workload step-for-step produce identical tier layouts, stats, and
// virtual clocks.
func TestDaemonDeterministic(t *testing.T) {
	type outcome struct {
		tiers [64]memsys.Tier
		nodes [64]int
		stats Stats
		ns    []uint64
	}
	run := func() outcome {
		e := newTierEnv(t, 3)
		e.mapPages(t, 64)
		d := New(e.s, e.mmus, Config{LocalBudgetPages: 8, WarmBudgetPages: 32}, nil)
		d.Attach()
		defer d.Detach()
		x := uint64(99)
		for round := 0; round < 6; round++ {
			for i := 0; i < 400; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				page := int(x>>20) % 64
				node := page % 3 // stable dominant accessor per page
				if x%8 == 0 {
					node = int(x>>40) % 3
				}
				e.read(t, node, page)
			}
			d.Step()
		}
		var o outcome
		for i := 0; i < 64; i++ {
			o.tiers[i], o.nodes[i] = e.tierOf(i)
		}
		o.stats = d.Stats()
		for n := 0; n < 3; n++ {
			o.ns = append(o.ns, e.f.Node(n).Stats().VirtualNS)
		}
		return o
	}
	a, b := run(), run()
	if a.tiers != b.tiers || a.nodes != b.nodes || a.stats != b.stats {
		t.Fatalf("runs diverged:\n%+v\n%+v", a, b)
	}
	for i := range a.ns {
		if a.ns[i] != b.ns[i] {
			t.Fatalf("node %d virtual clock diverged: %d vs %d", i, a.ns[i], b.ns[i])
		}
	}
	if a.stats.PromotedLocal == 0 {
		t.Fatal("workload produced no local promotions; test proves nothing")
	}
}

// TestDaemonStartStop: background mode promotes a hot page without manual
// Step calls, and Stop is idempotent.
func TestDaemonStartStop(t *testing.T) {
	e := newTierEnv(t, 2)
	e.mapPages(t, 1)
	d := New(e.s, e.mmus, Config{Interval: time.Millisecond}, nil)
	d.Attach()
	defer d.Detach()
	d.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for i := 0; i < 8; i++ {
			e.read(t, 1, 0)
		}
		if tier, node := e.tierOf(0); tier == memsys.TierLocal && node == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background daemon never promoted the hot page")
		}
		time.Sleep(time.Millisecond)
	}
	d.Stop()
	d.Stop()
	if d.Stats().Steps == 0 {
		t.Fatal("no steps recorded")
	}
}

// TestDaemonDrainSpillsAndBlocksPromotion: marking a node drained spills
// its managed local pages back to warm, refuses new local promotions
// toward it (even for a blazing-hot dominant page), and clearing the
// flag restores normal placement — the tiering half of the self-healing
// re-place stage.
func TestDaemonDrainSpillsAndBlocksPromotion(t *testing.T) {
	e := newTierEnv(t, 2)
	e.mapPages(t, 2)
	d := New(e.s, e.mmus, Config{}, nil)
	d.Attach()
	defer d.Detach()

	// Page 0 earns a local frame on node 1 the normal way.
	for i := 0; i < 16; i++ {
		e.read(t, 1, 0)
	}
	d.Step()
	if tier, node := e.tierOf(0); tier != memsys.TierLocal || node != 1 {
		t.Fatalf("setup: tier=%v node=%d, want local on node 1", tier, node)
	}

	// Drain node 1: the next step must spill page 0 to warm even though
	// nothing else wants the frame, and page 1 — hot and dominated by
	// node 1 — must NOT be promoted there.
	d.SetNodeDrained(1, true)
	if !d.NodeDrained(1) {
		t.Fatal("NodeDrained(1) = false after SetNodeDrained(1, true)")
	}
	for i := 0; i < 16; i++ {
		e.read(t, 1, 1)
	}
	d.Step()
	if tier, _ := e.tierOf(0); tier != memsys.TierWarm {
		t.Fatalf("drained node's local page not spilled (tier=%v)", tier)
	}
	if tier, _ := e.tierOf(1); tier == memsys.TierLocal {
		t.Fatal("page promoted to a drained node")
	}
	if st := d.Stats(); st.DrainEvicted != 1 {
		t.Fatalf("DrainEvicted = %d, want 1", st.DrainEvicted)
	}

	// Rejoin: clearing the flag lets the hot page take its local frame.
	d.SetNodeDrained(1, false)
	for i := 0; i < 16; i++ {
		e.read(t, 1, 1)
	}
	d.Step()
	if tier, node := e.tierOf(1); tier != memsys.TierLocal || node != 1 {
		t.Fatalf("after rejoin: tier=%v node=%d, want local on node 1", tier, node)
	}
	if st := d.Stats(); st.DrainEvicted != 1 {
		t.Fatalf("DrainEvicted grew after rejoin: %d", st.DrainEvicted)
	}
}

// TestDaemonDrainOutranksHintVeto: a sched placement hint normally
// protects a node's pages from demotion, but a drained node forfeits the
// truce — the spill proceeds hints notwithstanding.
func TestDaemonDrainOutranksHintVeto(t *testing.T) {
	e := newTierEnv(t, 2)
	e.mapPages(t, 1)
	h := &fakeHints{node: 1, ok: true}
	d := New(e.s, e.mmus, Config{}, h)
	d.Attach()
	defer d.Detach()

	for i := 0; i < 16; i++ {
		e.read(t, 1, 0)
	}
	d.Step()
	if tier, node := e.tierOf(0); tier != memsys.TierLocal || node != 1 {
		t.Fatalf("setup: tier=%v node=%d, want local on node 1", tier, node)
	}

	d.SetNodeDrained(1, true)
	d.Step()
	if tier, _ := e.tierOf(0); tier != memsys.TierWarm {
		t.Fatalf("hinted drain spill blocked (tier=%v)", tier)
	}
}
