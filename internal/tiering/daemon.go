package tiering

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"flacos/internal/memsys"
	"flacos/internal/trace"
)

// Config tunes the daemon's policy. Zero values select the defaults.
type Config struct {
	// PromoteHeat is the decayed heat at which a cold page is pulled back
	// into warm global memory.
	PromoteHeat float64
	// LocalHeat is the decayed heat at which a page qualifies for a
	// node-local DRAM frame on its dominant accessor. Keep LocalHeat >
	// PromoteHeat > Floor: the gap is the promote/demote hysteresis that
	// stops a page oscillating between tiers on epoch noise.
	LocalHeat float64
	// DominantShare is the fraction of a page's heat its dominant node
	// must hold before the page is pinned locally — pages shared evenly
	// across nodes belong in global memory, not in one node's DRAM.
	DominantShare float64
	// Decay multiplies heat each epoch; Floor is the heat below which a
	// page fades out of the tracker. Fading prunes the tracker, it does
	// NOT demote: an idle page keeps its placement until a hotter page
	// needs the space (pressure-driven demotion), so an uncontended fast
	// tier never empties itself. Faded pages carry zero heat, making them
	// the first victims of budget eviction and displacement.
	Decay float64
	Floor float64
	// DisplaceFactor is how much hotter a candidate must be than the
	// coldest resident before it displaces that resident from a full
	// local store (more hysteresis: ties never churn).
	DisplaceFactor float64
	// LocalBudgetPages caps managed node-local pages per node;
	// WarmBudgetPages caps managed warm global pages rack-wide. <= 0
	// means uncapped.
	LocalBudgetPages int
	WarmBudgetPages  int
	// MaxMovesPerStep bounds one step's page moves so a policy swing
	// cannot monopolize the fabric.
	MaxMovesPerStep int
	// Interval is the background cadence of Start. Experiments call Step
	// directly instead, keeping the policy on deterministic virtual time.
	Interval time.Duration
	// HintMaxAge is how long a sched placement hint protects a node from
	// demotions.
	HintMaxAge time.Duration
}

func (c *Config) fillDefaults() {
	if c.PromoteHeat <= 0 {
		c.PromoteHeat = 2
	}
	if c.LocalHeat <= 0 {
		c.LocalHeat = 8
	}
	if c.DominantShare <= 0 {
		c.DominantShare = 0.6
	}
	if c.Decay <= 0 || c.Decay > 1 {
		c.Decay = 0.5
	}
	if c.Floor <= 0 {
		c.Floor = 0.5
	}
	if c.DisplaceFactor <= 1 {
		c.DisplaceFactor = 1.5
	}
	if c.MaxMovesPerStep <= 0 {
		c.MaxMovesPerStep = 4096
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Millisecond
	}
	if c.HintMaxAge <= 0 {
		c.HintMaxAge = 10 * time.Millisecond
	}
}

// Hints is the slice of sched the daemon consults before demoting: where
// did the scheduler just place this space's work? *sched.Scheduler
// satisfies it.
type Hints interface {
	SpacePlacementHint(spaceID uint64, maxAge time.Duration) (node int, ok bool)
}

// Stats is a snapshot of the daemon's activity counters.
type Stats struct {
	Steps         uint64
	PromotedLocal uint64 // pages pulled into a node-local store
	PromotedWarm  uint64 // pages pulled cold -> warm
	DemotedWarm   uint64 // pages pushed local -> warm
	DemotedCold   uint64 // pages pushed warm -> cold
	FailedMoves   uint64 // CAS losses / stale model, resynced via TierOf
	HintVetoes    uint64 // demotions skipped for a sched-hinted node
	Displaced     uint64 // budget evictions (both tiers)
	DrainEvicted  uint64 // local pages pushed off a drained node
}

// pageState is what the daemon believes about one managed page. The
// daemon never scans the shared page table (a radix walk per page would
// swamp the fabric); it learns only through its own move outcomes, the
// Migrated sampler callback, and Prime.
type pageState struct {
	tier memsys.Tier
	node int16 // owning node for TierLocal, -1 otherwise
}

// Daemon is the background tiering policy for one address space.
type Daemon struct {
	cfg   Config
	sp    *memsys.Space
	mmus  []*memsys.MMU // indexed by node id; nil = node not attached
	heat  *HeatMap
	hints Hints

	migMu    sync.Mutex
	migrated map[uint64]struct{}

	// drained marks nodes the health layer's self-healing controller is
	// moving work off: the daemon stops promoting pages toward them and
	// actively spills their local pages back to warm global memory. The
	// flag outranks the sched hint truce — a drain is a deliberate
	// decision to give up the node's locality, hints notwithstanding.
	drained []atomic.Bool

	// Step-private placement model (Step is single-flight under stepMu).
	stepMu     sync.Mutex
	state      map[uint64]pageState
	localCount []int
	warmCount  int

	stats struct {
		steps, promLocal, promWarm, demWarm, demCold atomic.Uint64
		failed, vetoes, displaced, drainEvicted      atomic.Uint64
	}

	tw atomic.Pointer[trace.Writer]

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New builds a daemon for sp. mmus is indexed by node id (nil entries for
// unattached nodes); moves execute through the MMU of the node that
// benefits, so their fabric cost lands on the right virtual clock. hints
// may be nil.
func New(sp *memsys.Space, mmus []*memsys.MMU, cfg Config, hints Hints) *Daemon {
	cfg.fillDefaults()
	return &Daemon{
		cfg:        cfg,
		sp:         sp,
		mmus:       mmus,
		heat:       NewHeatMap(len(mmus)),
		hints:      hints,
		migrated:   make(map[uint64]struct{}),
		drained:    make([]atomic.Bool, len(mmus)),
		state:      make(map[uint64]pageState),
		localCount: make([]int, len(mmus)),
		stop:       make(chan struct{}),
	}
}

// Heat exposes the daemon's tracker (tests, diagnostics).
func (d *Daemon) Heat() *HeatMap { return d.heat }

// SetTraceWriter points step spans at a flight-recorder writer.
func (d *Daemon) SetTraceWriter(w *trace.Writer) { d.tw.Store(w) }

// Attach installs the daemon as the space's access sampler. Detach
// removes it; samples stop immediately, tracked heat persists.
func (d *Daemon) Attach() { d.sp.SetSampler(d) }

// Detach removes the daemon from the space's translate path.
func (d *Daemon) Detach() { d.sp.SetSampler(nil) }

// Sample implements memsys.Sampler.
func (d *Daemon) Sample(node int, vpn uint64, write bool) {
	d.heat.Sample(node, vpn, write)
}

// Migrated implements memsys.Sampler: a demand migration pulled a local
// page to warm global memory behind the daemon's back; fold it into the
// model at the next step.
func (d *Daemon) Migrated(vpn uint64, fromNode int) {
	d.migMu.Lock()
	d.migrated[vpn] = struct{}{}
	d.migMu.Unlock()
}

// Prime seeds the daemon's model with a page's known tier (node is the
// owner for TierLocal, else ignored) — e.g. after an initial bulk
// placement pass, so the daemon need not rediscover the layout one failed
// move at a time. Not required for correctness: moves resync the model.
func (d *Daemon) Prime(vpn uint64, t memsys.Tier, node int) {
	d.stepMu.Lock()
	d.setState(vpn, t, node)
	d.stepMu.Unlock()
}

// SetNodeDrained marks node as a (non-)target for placement: while
// drained, the node is demoted as a promotion target — no page is
// pulled into its local DRAM, the sched hint truce no longer protects
// its pages, and each Step spills its managed local pages back to warm
// global memory (under the usual per-step move budget). The health
// layer's self-healing controller raises the flag when it drains a
// degrading node and clears it on rejoin. Safe from any goroutine.
func (d *Daemon) SetNodeDrained(node int, drained bool) {
	if node < 0 || node >= len(d.drained) {
		return
	}
	d.drained[node].Store(drained)
}

// NodeDrained reports whether node is currently marked drained.
func (d *Daemon) NodeDrained(node int) bool {
	if node < 0 || node >= len(d.drained) {
		return false
	}
	return d.drained[node].Load()
}

// Stats returns a snapshot of the daemon's counters.
func (d *Daemon) Stats() Stats {
	return Stats{
		Steps:         d.stats.steps.Load(),
		PromotedLocal: d.stats.promLocal.Load(),
		PromotedWarm:  d.stats.promWarm.Load(),
		DemotedWarm:   d.stats.demWarm.Load(),
		DemotedCold:   d.stats.demCold.Load(),
		FailedMoves:   d.stats.failed.Load(),
		HintVetoes:    d.stats.vetoes.Load(),
		Displaced:     d.stats.displaced.Load(),
		DrainEvicted:  d.stats.drainEvicted.Load(),
	}
}

// Start runs Step every cfg.Interval until Stop. Background mode trades
// determinism for hands-off operation; experiments call Step themselves.
func (d *Daemon) Start() {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		t := time.NewTicker(d.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-t.C:
				d.Step()
			}
		}
	}()
}

// Stop halts the background loop (idempotent) and waits for it.
func (d *Daemon) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.wg.Wait()
}

// setState records a page's tier, keeping the budget counters consistent.
// Caller holds stepMu.
func (d *Daemon) setState(vpn uint64, t memsys.Tier, node int) {
	if prev, ok := d.state[vpn]; ok {
		switch prev.tier {
		case memsys.TierLocal:
			d.localCount[prev.node]--
		case memsys.TierWarm:
			d.warmCount--
		}
	}
	if t == memsys.TierNone {
		delete(d.state, vpn)
		return
	}
	st := pageState{tier: t, node: -1}
	switch t {
	case memsys.TierLocal:
		st.node = int16(node)
		d.localCount[node]++
	case memsys.TierWarm:
		d.warmCount++
	}
	d.state[vpn] = st
}

// resync repairs the model for a page whose move failed: one page-table
// read, the only time the daemon ever consults shared state directly.
func (d *Daemon) resync(m *memsys.MMU, vpn uint64) {
	t, node := m.TierOf(vpn)
	d.setState(vpn, t, node)
	d.stats.failed.Add(1)
}

// execMMU picks the MMU that should execute a move with no natural owner
// (warm<->cold transitions): deterministic spread by page number.
func (d *Daemon) execMMU(vpn uint64) *memsys.MMU {
	n := len(d.mmus)
	for i := 0; i < n; i++ {
		if m := d.mmus[(int(vpn)+i)%n]; m != nil {
			return m
		}
	}
	return nil
}

// plan is one step's decided moves, grouped per executing node so each
// group becomes one batched (single-IPI) memsys call.
type plan struct {
	promoteLocal map[int][]uint64 // dest node -> pages (warm/cold -> local)
	promoteWarm  map[int][]uint64 // exec node -> pages (cold -> warm)
	demoteWarm   map[int][]uint64 // owner node -> pages (local -> warm)
	demoteCold   map[int][]uint64 // exec node -> pages (warm -> cold)
	moves        int
}

func newPlan() *plan {
	return &plan{
		promoteLocal: map[int][]uint64{},
		promoteWarm:  map[int][]uint64{},
		demoteWarm:   map[int][]uint64{},
		demoteCold:   map[int][]uint64{},
	}
}

// Step runs one policy epoch synchronously: fold the heat map, decide
// promotions and demotions under budgets, hysteresis and the sched hint
// veto, then execute them as per-node batches. Fully deterministic for a
// given sample/migration history.
func (d *Daemon) Step() {
	d.stepMu.Lock()
	defer d.stepMu.Unlock()
	step := d.stats.steps.Add(1)

	// 1. Fold demand-migration feedback into the model: those pages now
	// sit in warm global memory whatever we believed before.
	d.migMu.Lock()
	mig := make([]uint64, 0, len(d.migrated))
	for vpn := range d.migrated {
		mig = append(mig, vpn)
	}
	clear(d.migrated)
	d.migMu.Unlock()
	sort.Slice(mig, func(i, j int) bool { return mig[i] < mig[j] })
	for _, vpn := range mig {
		d.setState(vpn, memsys.TierWarm, -1)
	}

	// 2. End the sampling epoch. Faded pages just leave the tracker; with
	// zero heat they become the preferred victims of budget pressure, but
	// nothing demotes them while the space is uncontended.
	hot, _ := d.heat.FoldEpoch(d.cfg.Decay, d.cfg.Floor)
	heatOf := make(map[uint64]float64, len(hot))
	for _, ps := range hot {
		heatOf[ps.VPN] = ps.Heat
	}

	// 3. The sched truce: a node that just received placements keeps its
	// pages this step — unless the health layer drained it, in which case
	// the truce yields (the drain already decided the node loses its
	// work, so protecting its pages would only delay the re-place).
	veto := -1
	if d.hints != nil {
		if n, ok := d.hints.SpacePlacementHint(d.sp.ID, d.cfg.HintMaxAge); ok && !d.NodeDrained(n) {
			veto = n
		}
	}

	if w := d.tw.Load(); w != nil {
		w.Begin(trace.SubMemsys, trace.KPromote, step, uint64(len(hot)))
	}

	pl := newPlan()
	planned := d.planDrainEvictions(pl)
	d.planPromotions(pl, hot, heatOf, veto, planned)
	d.planWarmBudget(pl, heatOf)
	d.execute(pl)

	if w := d.tw.Load(); w != nil {
		w.End(trace.SubMemsys, trace.KPromote, step, uint64(pl.moves))
	}
}

// planDrainEvictions spills every managed local page off drained nodes
// back to warm global memory — the "re-place" stage of the self-healing
// pipeline. It runs before promotion planning and returns the planned
// set so later stages never double-move the same page.
func (d *Daemon) planDrainEvictions(pl *plan) map[uint64]bool {
	planned := make(map[uint64]bool)
	for n := range d.mmus {
		if !d.drained[n].Load() || d.localCount[n] == 0 {
			continue
		}
		vpns := make([]uint64, 0, d.localCount[n])
		for vpn, st := range d.state {
			if st.tier == memsys.TierLocal && int(st.node) == n {
				vpns = append(vpns, vpn)
			}
		}
		sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
		for _, vpn := range vpns {
			if pl.moves >= d.cfg.MaxMovesPerStep {
				return planned
			}
			pl.demoteWarm[n] = append(pl.demoteWarm[n], vpn)
			planned[vpn] = true
			pl.moves++
			d.stats.drainEvicted.Add(1)
		}
	}
	return planned
}

// planPromotions walks the hot pages hottest-first and plans upward moves.
func (d *Daemon) planPromotions(pl *plan, hot []PageStat, heatOf map[uint64]float64, veto int, planned map[uint64]bool) {
	byHeat := make([]PageStat, len(hot))
	copy(byHeat, hot)
	sort.Slice(byHeat, func(i, j int) bool {
		if byHeat[i].Heat != byHeat[j].Heat {
			return byHeat[i].Heat > byHeat[j].Heat
		}
		return byHeat[i].VPN < byHeat[j].VPN
	})

	// coldestLocal is built lazily per node: managed local pages coldest
	// first, the displacement order.
	var coldest map[int][]PageStat
	buildColdest := func() {
		coldest = map[int][]PageStat{}
		for vpn, st := range d.state {
			if st.tier == memsys.TierLocal {
				coldest[int(st.node)] = append(coldest[int(st.node)],
					PageStat{VPN: vpn, Heat: heatOf[vpn]})
			}
		}
		for n := range coldest {
			s := coldest[n]
			sort.Slice(s, func(i, j int) bool {
				if s[i].Heat != s[j].Heat {
					return s[i].Heat < s[j].Heat
				}
				return s[i].VPN < s[j].VPN
			})
		}
	}

	// coldestWarm, same idea rack-wide: the eviction order when a cold
	// page asks for a slot in a full premium tier.
	var coldestWarm []PageStat
	warmBuilt := false
	buildColdestWarm := func() {
		warmBuilt = true
		for vpn, st := range d.state {
			if st.tier == memsys.TierWarm {
				coldestWarm = append(coldestWarm, PageStat{VPN: vpn, Heat: heatOf[vpn]})
			}
		}
		sort.Slice(coldestWarm, func(i, j int) bool {
			if coldestWarm[i].Heat != coldestWarm[j].Heat {
				return coldestWarm[i].Heat < coldestWarm[j].Heat
			}
			return coldestWarm[i].VPN < coldestWarm[j].VPN
		})
	}

	// projWarm tracks what warm occupancy will be once this plan executes,
	// so admission decisions see the step's own earlier moves.
	projWarm := d.warmCount

	for _, ps := range byHeat {
		if pl.moves >= d.cfg.MaxMovesPerStep {
			return
		}
		if planned[ps.VPN] {
			continue // already moving this step (drain spill)
		}
		st, managed := d.state[ps.VPN]
		dom := ps.Node
		// A drained node never qualifies as a local home, however hot the
		// page: the self-healing controller is moving work off it.
		wantLocal := ps.Heat >= d.cfg.LocalHeat && ps.Share >= d.cfg.DominantShare &&
			dom >= 0 && dom < len(d.mmus) && d.mmus[dom] != nil && !d.drained[dom].Load()
		switch {
		case wantLocal && managed && st.tier == memsys.TierLocal && int(st.node) == dom:
			// Already where it belongs.
		case wantLocal && managed && st.tier == memsys.TierLocal:
			// Pinned on the wrong node: pull it down this step, the next
			// step promotes it home (one move per step per page).
			if int(st.node) == veto {
				d.stats.vetoes.Add(1)
				continue
			}
			pl.demoteWarm[int(st.node)] = append(pl.demoteWarm[int(st.node)], ps.VPN)
			planned[ps.VPN] = true
			pl.moves++
			projWarm++
		case wantLocal:
			if d.cfg.LocalBudgetPages > 0 && d.localCount[dom] >= d.cfg.LocalBudgetPages {
				// Full: displace the coldest resident only if this page is
				// clearly hotter (DisplaceFactor hysteresis).
				if dom == veto {
					d.stats.vetoes.Add(1)
					continue
				}
				if coldest == nil {
					buildColdest()
				}
				q := coldest[dom]
				for len(q) > 0 && (planned[q[0].VPN] || d.state[q[0].VPN].tier != memsys.TierLocal) {
					q = q[1:]
				}
				coldest[dom] = q
				if len(q) > 0 && q[0].Heat*d.cfg.DisplaceFactor < ps.Heat {
					v := q[0]
					coldest[dom] = q[1:]
					pl.demoteWarm[dom] = append(pl.demoteWarm[dom], v.VPN)
					planned[v.VPN] = true
					pl.moves++
					projWarm++
					d.stats.displaced.Add(1)
				}
				continue // promote once room exists (next step)
			}
			pl.promoteLocal[dom] = append(pl.promoteLocal[dom], ps.VPN)
			planned[ps.VPN] = true
			pl.moves++
			if managed && st.tier == memsys.TierWarm {
				projWarm-- // leaves premium capacity for local DRAM
			}
		case ps.Heat >= d.cfg.PromoteHeat && (!managed || st.tier == memsys.TierCold):
			// Cold (or unknown — assumed cold; the move resyncs if not)
			// and hot enough for premium capacity.
			if d.cfg.WarmBudgetPages > 0 && projWarm >= d.cfg.WarmBudgetPages {
				// Premium is full: swap only when the candidate is clearly
				// hotter than the coldest resident (the same DisplaceFactor
				// hysteresis local placement uses). A page moves warm<->cold
				// at full-page copy cost, so near-ties must never churn.
				if !warmBuilt {
					buildColdestWarm()
				}
				q := coldestWarm
				for len(q) > 0 && (planned[q[0].VPN] || d.state[q[0].VPN].tier != memsys.TierWarm) {
					q = q[1:]
				}
				coldestWarm = q
				if len(q) == 0 || q[0].Heat*d.cfg.DisplaceFactor >= ps.Heat {
					continue // not clearly hotter than any resident
				}
				v := q[0]
				coldestWarm = q[1:]
				m := d.execMMU(v.VPN)
				if m == nil {
					continue
				}
				pl.demoteCold[m.Node().ID()] = append(pl.demoteCold[m.Node().ID()], v.VPN)
				planned[v.VPN] = true
				pl.moves++
				projWarm--
				d.stats.displaced.Add(1)
			}
			pl.promoteWarm[dom] = append(pl.promoteWarm[dom], ps.VPN)
			planned[ps.VPN] = true
			pl.moves++
			projWarm++
		}
	}
}

// planWarmBudget evicts the coldest managed warm pages when the step's
// plan would still overflow premium capacity (local -> warm spills bypass
// the admission check above). Together with planPromotions' inline warm
// displacement it forms the ONLY path to the cold tier: demotion happens
// under pressure, never on fade alone, so warm capacity stays packed with
// the hottest pages ever observed. The daemon
// only evicts what it placed (or was told about via Prime/Migrated), so it
// never cold-demotes another subsystem's pages on no evidence.
func (d *Daemon) planWarmBudget(pl *plan, heatOf map[uint64]float64) {
	if d.cfg.WarmBudgetPages <= 0 {
		return
	}
	projected := d.warmCount
	for _, v := range pl.promoteWarm {
		projected += len(v)
	}
	for _, v := range pl.demoteWarm {
		projected += len(v) // local -> warm also lands in premium
	}
	for _, v := range pl.demoteCold {
		projected -= len(v)
	}
	over := projected - d.cfg.WarmBudgetPages
	if over <= 0 {
		return
	}
	planned := make(map[uint64]bool)
	for _, vs := range pl.promoteWarm {
		for _, v := range vs {
			planned[v] = true
		}
	}
	for _, vs := range pl.demoteCold {
		for _, v := range vs {
			planned[v] = true
		}
	}
	cands := make([]PageStat, 0, d.warmCount)
	for vpn, st := range d.state {
		if st.tier == memsys.TierWarm && !planned[vpn] {
			cands = append(cands, PageStat{VPN: vpn, Heat: heatOf[vpn]})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Heat != cands[j].Heat {
			return cands[i].Heat < cands[j].Heat
		}
		return cands[i].VPN < cands[j].VPN
	})
	for _, c := range cands {
		if over <= 0 || pl.moves >= d.cfg.MaxMovesPerStep {
			return
		}
		if m := d.execMMU(c.VPN); m != nil {
			pl.demoteCold[m.Node().ID()] = append(pl.demoteCold[m.Node().ID()], c.VPN)
			pl.moves++
			over--
			d.stats.displaced.Add(1)
		}
	}
}

// execute runs the plan as per-node batches in node order — deterministic
// and one shootdown IPI per remote MMU per batch — then folds outcomes
// back into the model.
func (d *Daemon) execute(pl *plan) {
	run := func(byNode map[int][]uint64,
		exec func(*memsys.MMU, []uint64) []uint64,
		apply func(vpn uint64, node int)) {
		for n := 0; n < len(d.mmus); n++ {
			vpns := byNode[n]
			if len(vpns) == 0 || d.mmus[n] == nil {
				continue
			}
			sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
			moved := exec(d.mmus[n], vpns)
			ok := make(map[uint64]bool, len(moved))
			for _, v := range moved {
				ok[v] = true
				apply(v, n)
			}
			for _, v := range vpns {
				if !ok[v] {
					d.resync(d.mmus[n], v)
				}
			}
		}
	}

	// Demotions first: they free the budget the promotions rely on.
	run(pl.demoteWarm,
		func(m *memsys.MMU, v []uint64) []uint64 { return m.DemoteToGlobalBatch(v) },
		func(vpn uint64, node int) {
			d.setState(vpn, memsys.TierWarm, -1)
			d.stats.demWarm.Add(1)
		})
	run(pl.demoteCold,
		func(m *memsys.MMU, v []uint64) []uint64 { return m.DemoteToColdBatch(v) },
		func(vpn uint64, node int) {
			d.setState(vpn, memsys.TierCold, -1)
			d.stats.demCold.Add(1)
		})
	run(pl.promoteWarm,
		func(m *memsys.MMU, v []uint64) []uint64 { return m.PromoteFromColdBatch(v) },
		func(vpn uint64, node int) {
			d.setState(vpn, memsys.TierWarm, -1)
			d.stats.promWarm.Add(1)
		})
	run(pl.promoteLocal,
		func(m *memsys.MMU, v []uint64) []uint64 { return m.PromoteToLocalBatch(v) },
		func(vpn uint64, node int) {
			d.setState(vpn, memsys.TierLocal, node)
			d.stats.promLocal.Add(1)
		})
}
