package tiering

import (
	"reflect"
	"sync"
	"testing"
)

// TestHeatMapFoldSemantics checks decay, dominant-node selection, share
// computation, and fade-out against hand-computed values.
func TestHeatMapFoldSemantics(t *testing.T) {
	h := NewHeatMap(2)
	for i := 0; i < 10; i++ {
		h.Sample(0, 7, false)
	}
	for i := 0; i < 2; i++ {
		h.Sample(1, 7, true)
	}
	h.Sample(1, 9, false)

	hot, faded := h.FoldEpoch(0.5, 0.5)
	if len(faded) != 0 {
		t.Fatalf("first fold faded %v", faded)
	}
	if len(hot) != 2 || hot[0].VPN != 7 || hot[1].VPN != 9 {
		t.Fatalf("hot = %+v, want pages 7 and 9 in vpn order", hot)
	}
	p := hot[0]
	if p.Heat != 12 || p.Node != 0 || p.Share != 10.0/12.0 {
		t.Fatalf("page 7 = %+v, want heat 12, node 0, share 10/12", p)
	}
	if hot[1].Node != 1 || hot[1].Heat != 1 {
		t.Fatalf("page 9 = %+v, want heat 1 on node 1", hot[1])
	}

	// No further samples: heat halves each fold. Page 9 (heat 1) fades at
	// the second idle fold (0.25 < 0.5); page 7 (heat 12) takes longer.
	hot, faded = h.FoldEpoch(0.5, 0.5)
	if len(faded) != 0 || len(hot) != 2 || hot[0].Heat != 6 || hot[1].Heat != 0.5 {
		t.Fatalf("idle fold 1: hot=%+v faded=%v", hot, faded)
	}
	hot, faded = h.FoldEpoch(0.5, 0.5)
	if len(hot) != 1 || hot[0].VPN != 7 || !reflect.DeepEqual(faded, []uint64{9}) {
		t.Fatalf("idle fold 2: hot=%+v faded=%v, want page 9 faded", hot, faded)
	}
	if h.Tracked() != 1 {
		t.Fatalf("tracked = %d after fade, want 1", h.Tracked())
	}
}

// TestHeatMapDominantTie: equal heat on two nodes picks the lowest id.
func TestHeatMapDominantTie(t *testing.T) {
	h := NewHeatMap(3)
	h.Sample(2, 5, false)
	h.Sample(1, 5, false)
	hot, _ := h.FoldEpoch(0.5, 0.5)
	if len(hot) != 1 || hot[0].Node != 1 || hot[0].Share != 0.5 {
		t.Fatalf("tie fold = %+v, want node 1 (lowest id), share 0.5", hot)
	}
}

// TestHeatMapIgnoresBogusNodes: out-of-range node ids must not corrupt the
// per-node slices.
func TestHeatMapIgnoresBogusNodes(t *testing.T) {
	h := NewHeatMap(2)
	h.Sample(-1, 3, false)
	h.Sample(2, 3, false)
	h.Sample(99, 3, true)
	if h.Tracked() != 0 {
		t.Fatalf("bogus nodes created heat state: tracked=%d", h.Tracked())
	}
}

// TestHeatMapFoldDeterministic: two trackers fed the same samples in
// different orders fold to identical snapshots — the property the tiering
// experiment's bit-reproducibility rests on.
func TestHeatMapFoldDeterministic(t *testing.T) {
	a, b := NewHeatMap(4), NewHeatMap(4)
	// An LCG walk over pages/nodes, replayed forwards into a and (per
	// round) reversed into b.
	const n = 5000
	type s struct {
		node int
		vpn  uint64
	}
	seq := make([]s, n)
	x := uint64(12345)
	for i := range seq {
		x = x*6364136223846793005 + 1442695040888963407
		seq[i] = s{node: int(x>>32) % 4, vpn: (x >> 12) % 1024}
	}
	for _, e := range seq {
		a.Sample(e.node, e.vpn, false)
	}
	for i := len(seq) - 1; i >= 0; i-- {
		b.Sample(seq[i].node, seq[i].vpn, true)
	}
	hotA, fadedA := a.FoldEpoch(0.5, 0.5)
	hotB, fadedB := b.FoldEpoch(0.5, 0.5)
	if !reflect.DeepEqual(hotA, hotB) || !reflect.DeepEqual(fadedA, fadedB) {
		t.Fatal("folds differ for identical sample multisets")
	}
	for i := 1; i < len(hotA); i++ {
		if hotA[i-1].VPN >= hotA[i].VPN {
			t.Fatalf("hot not vpn-sorted at %d", i)
		}
	}
}

// TestHeatMapConcurrentSampling is the -race proof behind ISSUE 8's
// satellite 1: the sharded HeatMap (which replaces alloc.HotnessTracker
// on per-access hot paths) takes concurrent Sample traffic from every
// node while FoldEpoch runs, without races and without losing a sample.
// decay=1 and floor=0 make heat a conserved quantity, so the final fold
// must account for every access exactly.
func TestHeatMapConcurrentSampling(t *testing.T) {
	const (
		nodes      = 4
		perNode    = 20000
		pages      = 512
		foldRounds = 50
	)
	h := NewHeatMap(nodes)
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			x := uint64(node + 1)
			for i := 0; i < perNode; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				h.Sample(node, (x>>16)%pages, i%3 == 0)
			}
		}(n)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < foldRounds; i++ {
			h.FoldEpoch(1.0, 0)
		}
	}()
	wg.Wait()
	<-done

	hot, _ := h.FoldEpoch(1.0, 0)
	total := 0.0
	for _, p := range hot {
		total += p.Heat
	}
	if want := float64(nodes * perNode); total != want {
		t.Fatalf("conserved heat = %v, want %v: samples lost or duplicated", total, want)
	}
}
