// Package tiering closes the paper's placement loop: a rack-wide daemon
// that watches per-page access heat flowing out of the MMU translate path
// and moves pages between the rack's three memory tiers — node-local DRAM,
// premium ("warm") global memory, and the cold capacity/persistent tier —
// so the hot working set sits close to its dominant accessors while cold
// pages stop occupying premium capacity.
//
// The package splits into mechanism and policy:
//
//   - HeatMap is the sampling mechanism: a sharded, epoch-decayed,
//     concurrency-safe per-page heat tracker cheap enough to sit on the
//     translate hot path (alloc.HotnessTracker's single mutex-guarded map
//     is not — one lock would serialize every node's MMU).
//   - Daemon is the policy: it folds the heat epochs, decides promotions
//     and demotions under per-tier capacity budgets and promote/demote
//     hysteresis, coordinates with sched through placement hints so the
//     two never fight over a node, and executes the moves through the
//     memsys batch tier operations (one shootdown IPI per remote MMU per
//     batch).
//
// Every policy decision is deterministic: epoch folds return vpn-sorted
// snapshots, move lists sort by (heat desc, vpn asc), and the daemon's
// synchronous Step form lets experiments drive it under seeded virtual
// time for bit-reproducible results.
package tiering

import (
	"sort"
	"sync"
)

// shardCount is the number of independently locked heat shards. 64 keeps
// cross-node contention negligible at rack node counts.
const shardCount = 64

// shardOf spreads contiguous page numbers across shards so a sequential
// scan does not convoy on one lock (Fibonacci hashing).
func shardOf(vpn uint64) uint64 {
	return (vpn * 0x9E3779B97F4A7C15) >> (64 - 6)
}

// pageHeat is one tracked page's state: raw access counts for the current
// epoch plus the exponentially decayed per-node heat from prior epochs.
type pageHeat struct {
	epoch []uint32
	heat  []float64
}

type heatShard struct {
	mu sync.Mutex
	m  map[uint64]*pageHeat
}

// HeatMap is the sharded per-page access-heat tracker fed by the MMU
// translate path (it implements the Sample half of memsys.Sampler).
// Writers touch only their page's shard; FoldEpoch drains all shards into
// a deterministic snapshot.
type HeatMap struct {
	nodes  int
	shards [shardCount]heatShard
}

// NewHeatMap creates a tracker for a rack of the given node count.
func NewHeatMap(nodes int) *HeatMap {
	if nodes <= 0 {
		panic("tiering: NewHeatMap needs a positive node count")
	}
	h := &HeatMap{nodes: nodes}
	for i := range h.shards {
		h.shards[i].m = make(map[uint64]*pageHeat)
	}
	return h
}

// Sample records one access to vpn from node. Safe for concurrent use
// from every node; cost is one shard lock plus a map operation. Writes
// and reads weigh the same — tier distance hurts both equally here.
func (h *HeatMap) Sample(node int, vpn uint64, write bool) {
	if node < 0 || node >= h.nodes {
		return
	}
	sh := &h.shards[shardOf(vpn)]
	sh.mu.Lock()
	ph := sh.m[vpn]
	if ph == nil {
		ph = &pageHeat{epoch: make([]uint32, h.nodes), heat: make([]float64, h.nodes)}
		sh.m[vpn] = ph
	}
	ph.epoch[node]++
	sh.mu.Unlock()
}

// Tracked returns how many pages currently have heat state.
func (h *HeatMap) Tracked() int {
	n := 0
	for i := range h.shards {
		h.shards[i].mu.Lock()
		n += len(h.shards[i].m)
		h.shards[i].mu.Unlock()
	}
	return n
}

// PageStat is one page's folded heat snapshot.
type PageStat struct {
	VPN  uint64
	Heat float64 // total decayed heat across nodes
	// Node is the dominant accessor (most heat, lowest id on ties) and
	// Share its fraction of the total.
	Node  int
	Share float64
}

// FoldEpoch ends the current sampling epoch: every page's heat becomes
// heat*decay + epochCount (per node), epoch counters reset, and pages
// whose total heat fell below floor are dropped from the tracker and
// returned as faded — the daemon's demotion candidates. Surviving pages
// return as hot. Both slices are sorted (hot by VPN, faded ascending) so
// the fold is deterministic regardless of map iteration order.
func (h *HeatMap) FoldEpoch(decay, floor float64) (hot []PageStat, faded []uint64) {
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		for vpn, ph := range sh.m {
			total, best, bestNode := 0.0, 0.0, 0
			for n := range ph.heat {
				v := ph.heat[n]*decay + float64(ph.epoch[n])
				ph.heat[n] = v
				ph.epoch[n] = 0
				total += v
				if v > best {
					best, bestNode = v, n
				}
			}
			if total < floor {
				delete(sh.m, vpn)
				faded = append(faded, vpn)
				continue
			}
			hot = append(hot, PageStat{VPN: vpn, Heat: total, Node: bestNode, Share: best / total})
		}
		sh.mu.Unlock()
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i].VPN < hot[j].VPN })
	sort.Slice(faded, func(i, j int) bool { return faded[i] < faded[j] })
	return hot, faded
}
