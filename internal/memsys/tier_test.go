package memsys

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/alloc"
)

// TestTierPromoteDemoteCycle walks one page through every tier transition
// and asserts the Stats() promotion/demotion counters move with it.
func TestTierPromoteDemoteCycle(t *testing.T) {
	e := newEnv(t, 2)
	s := e.space(1)
	m0 := e.attach(s, 0)
	const va = 0x10000
	if err := m0.MMap(va, 1, ProtRead|ProtWrite, BackGlobal); err != nil {
		t.Fatal(err)
	}
	msg := []byte("tiered page content")
	if err := m0.Write(va, msg); err != nil {
		t.Fatal(err)
	}
	vpn := uint64(va >> PageShift)

	check := func(stage string, wantTier Tier, promotions, demotions uint64) {
		t.Helper()
		tier, _ := m0.TierOf(vpn)
		if tier != wantTier {
			t.Fatalf("%s: tier = %v, want %v", stage, tier, wantTier)
		}
		st := m0.Stats()
		if st.Promotions != promotions || st.Demotions != demotions {
			t.Fatalf("%s: promotions/demotions = %d/%d, want %d/%d",
				stage, st.Promotions, st.Demotions, promotions, demotions)
		}
		got := make([]byte, len(msg))
		if err := m0.Read(va, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("%s: content = %q", stage, got)
		}
	}

	check("initial", TierWarm, 0, 0)
	if !m0.DemoteToCold(vpn) {
		t.Fatal("DemoteToCold failed")
	}
	check("after cold demote", TierCold, 0, 1)
	if m0.DemoteToCold(vpn) {
		t.Fatal("double cold demote should be a no-op")
	}
	if !m0.PromoteFromCold(vpn) {
		t.Fatal("PromoteFromCold failed")
	}
	check("after cold promote", TierWarm, 1, 1)
	if !m0.PromoteToLocal(vpn) {
		t.Fatal("PromoteToLocal failed")
	}
	check("after local promote", TierLocal, 2, 1)
	if tier, node := m0.TierOf(vpn); tier != TierLocal || node != 0 {
		t.Fatalf("local tier owner = %v/%d", tier, node)
	}
	if !m0.DemoteToGlobal(vpn) {
		t.Fatal("DemoteToGlobal failed")
	}
	check("after local demote", TierWarm, 2, 2)

	// Cold pages stay writable; a later read must see the write.
	if !m0.DemoteToCold(vpn) {
		t.Fatal("re-demote failed")
	}
	msg = []byte("written while cold!")
	if err := m0.Write(va, msg); err != nil {
		t.Fatal(err)
	}
	check("write on cold page", TierCold, 2, 3)
}

// TestColdTierCharged asserts a cold page's accesses cost ColdNS more
// than the same access against warm global memory.
func TestColdTierCharged(t *testing.T) {
	lat := fabric.DefaultLatency()
	f := fabric.New(fabric.Config{GlobalSize: 48 << 20, Nodes: 1, Latency: lat})
	frames := NewGlobalFrames(f, 2048)
	arena := alloc.NewArena(f, 24<<20)
	s := NewSpace(f, 1, frames, arena.NodeAllocator(f.Node(0), 0), 1024)
	m := s.Attach(f.Node(0), arena.NodeAllocator(f.Node(0), 0), nil, 64)
	const va = 0x10000
	if err := m.MMap(va, 1, ProtRead|ProtWrite, BackGlobal); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := m.Write(va, buf); err != nil { // fault it in
		t.Fatal(err)
	}

	cost := func() uint64 {
		before := f.Node(0).Stats().VirtualNS
		if err := m.Read(va, buf); err != nil {
			t.Fatal(err)
		}
		return f.Node(0).Stats().VirtualNS - before
	}
	warm := cost()
	if !m.DemoteToCold(uint64(va >> PageShift)) {
		t.Fatal("DemoteToCold failed")
	}
	cold := cost()
	if cold < warm+uint64(lat.ColdNS) {
		t.Fatalf("cold read cost %d, warm %d: missing ColdNS=%d surcharge",
			cold, warm, lat.ColdNS)
	}
}

// TestBatchShootdownOneIPI asserts the batched tier moves interrupt each
// remote MMU once per batch, not once per page.
func TestBatchShootdownOneIPI(t *testing.T) {
	e := newEnv(t, 3)
	s := e.space(1)
	m0 := e.attach(s, 0)
	m1 := e.attach(s, 1)
	m2 := e.attach(s, 2)
	const pages = 16
	if err := m0.MMap(0, pages, ProtRead|ProtWrite, BackGlobal); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	vpns := make([]uint64, pages)
	for i := range vpns {
		vpns[i] = uint64(i)
		if err := m1.Read(uint64(i)*PageSize, buf); err != nil { // warm node 1's TLB
			t.Fatal(err)
		}
	}
	r1, r2 := m1.Stats().ShootdownsReceived, m2.Stats().ShootdownsReceived
	moved := m0.DemoteToColdBatch(vpns)
	if len(moved) != pages {
		t.Fatalf("moved %d of %d", len(moved), pages)
	}
	if got := m1.Stats().ShootdownsReceived - r1; got != 1 {
		t.Fatalf("node 1 received %d IPIs for one batch", got)
	}
	if got := m2.Stats().ShootdownsReceived - r2; got != 1 {
		t.Fatalf("node 2 received %d IPIs for one batch", got)
	}
	if sent := m0.Stats().ShootdownsSent; sent != 2 {
		t.Fatalf("node 0 sent %d shootdowns", sent)
	}
	// The batch must still have invalidated node 1's stale TLB entries:
	// its next read re-translates and sees the cold PTE.
	if err := m1.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	p, _ := m1.TierOf(0)
	if p != TierCold {
		t.Fatalf("tier after batch = %v", p)
	}
}

// TestPromoteSharedFrameRefused: promotion would give one node a private
// copy of a frame other PTEs still reference (dedup sharing), so it must
// refuse while the refcount is above one.
func TestPromoteSharedFrameRefused(t *testing.T) {
	e := newEnv(t, 1)
	s := e.space(1)
	m := e.attach(s, 0)
	if err := m.MMap(0, 2, ProtRead|ProtWrite, BackGlobal); err != nil {
		t.Fatal(err)
	}
	same := bytes.Repeat([]byte{0x5a}, PageSize)
	if err := m.Write(0, same); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(PageSize, same); err != nil {
		t.Fatal(err)
	}
	if merged := m.DedupPass(); merged != 1 {
		t.Fatalf("dedup merged %d", merged)
	}
	if m.PromoteToLocal(0) {
		t.Fatal("promoted a dedup-shared frame")
	}
	if m.DemoteToCold(0) {
		t.Fatal("cold-demoted a COW frame")
	}
}

// TestSamplerHooks: the translate path reports every successful access
// (hit and miss paths) to the installed sampler, and demand migration
// reports through Migrated.
type recordingSampler struct {
	mu       sync.Mutex
	samples  map[uint64]int
	writes   int
	migrated []uint64
}

func (r *recordingSampler) Sample(node int, vpn uint64, write bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.samples == nil {
		r.samples = map[uint64]int{}
	}
	r.samples[vpn]++
	if write {
		r.writes++
	}
}

func (r *recordingSampler) Migrated(vpn uint64, fromNode int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.migrated = append(r.migrated, vpn)
}

func TestSamplerHooks(t *testing.T) {
	e := newEnv(t, 2)
	s := e.space(1)
	m0 := e.attach(s, 0)
	m1 := e.attach(s, 1)
	rs := &recordingSampler{}
	s.SetSampler(rs)
	const va = 0x40000
	if err := m0.MMap(va, 1, ProtRead|ProtWrite, BackLocal); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if err := m0.Write(va, buf); err != nil { // miss path
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // hit path
		if err := m0.Read(va, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := m1.Read(va, buf); err != nil { // remote access migrates
		t.Fatal(err)
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	vpn := uint64(va >> PageShift)
	if rs.samples[vpn] < 5 {
		t.Fatalf("sampled %d accesses, want >= 5", rs.samples[vpn])
	}
	if rs.writes != 1 {
		t.Fatalf("sampled %d writes", rs.writes)
	}
	if len(rs.migrated) != 1 || rs.migrated[0] != vpn {
		t.Fatalf("migrated callback = %v", rs.migrated)
	}
	s.SetSampler(nil)
	n := rs.samples[vpn]
	if err := m0.Read(va, buf); err != nil {
		t.Fatal(err)
	}
	if rs.samples[vpn] != n {
		t.Fatal("sampler still called after SetSampler(nil)")
	}
}

// TestMigrateRacingWriter is the deterministic interleaving half of the
// migration race coverage: an owner keeps writing sequence-stamped
// records while a remote node's access migrates the page to global
// memory. Operations interleave at every step boundary; the gate is
// histcheck-style — no stale read (every read sees the latest published
// sequence) and no torn read (a record is internally consistent).
func TestMigrateRacingWriter(t *testing.T) {
	e := newEnv(t, 2)
	s := e.space(1)
	m0 := e.attach(s, 0)
	m1 := e.attach(s, 1)
	const va = 0x70000
	if err := m0.MMap(va, 1, ProtRead|ProtWrite, BackLocal); err != nil {
		t.Fatal(err)
	}
	record := func(seq byte) []byte {
		r := bytes.Repeat([]byte{seq}, 64)
		return r
	}
	checkRead := func(m *MMU, wantSeq byte, stage string) {
		t.Helper()
		got := make([]byte, 64)
		if err := m.Read(va, got); err != nil {
			t.Fatal(err)
		}
		for i, b := range got {
			if b != got[0] {
				t.Fatalf("%s: torn read at byte %d: %v", stage, i, got[:8])
			}
		}
		if got[0] != wantSeq {
			t.Fatalf("%s: stale read: seq %d, want %d", stage, got[0], wantSeq)
		}
	}

	var seq byte
	write := func(m *MMU) {
		t.Helper()
		seq++
		if err := m.Write(va, record(seq)); err != nil {
			t.Fatal(err)
		}
	}

	// Interleaving: owner writes twice, remote read triggers migration,
	// owner writes THROUGH its now-stale mapping (the post-store PTE
	// re-validation must redo the chunk via the global frame), both
	// nodes read back.
	write(m0)
	write(m0)
	checkRead(m1, seq, "migrating read") // migrates local -> global
	if m1.Stats().Migrations != 1 {
		t.Fatalf("migrations = %d", m1.Stats().Migrations)
	}
	write(m0) // owner's first write after losing the frame
	checkRead(m1, seq, "remote read after post-migration write")
	checkRead(m0, seq, "owner read after post-migration write")

	// Same protocol under a tiering move: a concurrent writer's store
	// races DemoteToCold's CAS; the re-validation redo keeps it.
	if !m1.DemoteToCold(uint64(va >> PageShift)) {
		t.Fatal("DemoteToCold failed")
	}
	write(m0)
	checkRead(m1, seq, "read after write to cold page")
}

// TestMigrateRacingWriterStress is the concurrent half: a writer node
// hammers a sequence-stamped record while readers on two other nodes pull
// it cross-node and a tiering stand-in bounces the page between the warm
// and cold tiers. Runs under -race. The fabric's cross-node atomicity
// unit is one word, so the gate is word-granular, histcheck-style: every
// observed word must be a value the writer actually published (no torn
// sub-word garbage, no stale zeroed frame), each reader's view of a word
// never travels back in time, and the final record holds the last write.
func TestMigrateRacingWriterStress(t *testing.T) {
	e := newEnv(t, 3)
	s := e.space(1)
	m0 := e.attach(s, 0)
	m1 := e.attach(s, 1)
	m2 := e.attach(s, 2)
	const va = 0x90000
	if err := m0.MMap(va, 1, ProtRead|ProtWrite, BackGlobal); err != nil {
		t.Fatal(err)
	}
	record := func(seq uint64) []byte {
		rec := make([]byte, 64)
		for w := 0; w < 8; w++ {
			for b := 0; b < 8; b++ {
				rec[w*8+b] = byte(seq >> (8 * b))
			}
		}
		return rec
	}
	if err := m0.Write(va, record(1)); err != nil {
		t.Fatal(err)
	}
	vpn := uint64(va >> PageShift)

	const iters = 2000
	var stop atomic.Bool
	var invalid, backwards atomic.Uint64
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer on node 0
		defer wg.Done()
		for i := uint64(2); i <= iters; i++ {
			if err := m0.Write(va, record(i)); err != nil {
				panic(err)
			}
		}
		stop.Store(true)
	}()

	reader := func(m *MMU) {
		defer wg.Done()
		var last uint64
		buf := make([]byte, 64)
		for !stop.Load() {
			if err := m.Read(va, buf); err != nil {
				panic(err)
			}
			for w := 0; w < 8; w++ {
				var v uint64
				for b := 7; b >= 0; b-- {
					v = v<<8 | uint64(buf[w*8+b])
				}
				if v < 1 || v > iters {
					invalid.Add(1)
				}
				if w == 0 {
					if v < last {
						backwards.Add(1)
					}
					last = v
				}
			}
		}
	}
	wg.Add(2)
	go reader(m1)
	go reader(m2)

	wg.Add(1)
	go func() { // tiering daemon stand-in: bounce the page between tiers
		defer wg.Done()
		for !stop.Load() {
			m1.DemoteToCold(vpn)
			m1.PromoteFromCold(vpn)
		}
	}()
	wg.Wait()

	if invalid.Load() != 0 || backwards.Load() != 0 {
		t.Fatalf("invalid=%d backwards=%d", invalid.Load(), backwards.Load())
	}
	// The final state must hold the last write everywhere (no lost write).
	got := make([]byte, 64)
	if err := m2.Read(va, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, record(iters)) {
		t.Fatalf("lost write: final record %x", got[:16])
	}
}

// TestMigratePlantedBrokenShootdown is the planted-broken self-test: with
// shootdowns deliberately suppressed, the migration race coverage above
// MUST be able to catch the resulting stale TLB window — proving the gate
// has teeth. A stale entry pointing at a freed local frame serves reads
// of abandoned memory.
func TestMigratePlantedBrokenShootdown(t *testing.T) {
	SetBrokenSkipShootdown(true)
	defer SetBrokenSkipShootdown(false)
	e := newEnv(t, 3)
	s := e.space(1)
	m0 := e.attach(s, 0)
	m1 := e.attach(s, 1)
	m2 := e.attach(s, 2)
	const va = 0xa0000
	if err := m0.MMap(va, 1, ProtRead|ProtWrite, BackLocal); err != nil {
		t.Fatal(err)
	}
	if err := m0.Write(va, bytes.Repeat([]byte{1}, 64)); err != nil {
		t.Fatal(err)
	}
	// Node 2 reads via its own translation, caching a global PTE after
	// migration... but with shootdowns broken, node 2 first warms its
	// TLB, THEN node 1 cold-demotes, and node 2's stale warm entry skips
	// the cold surcharge — detectable as a coherence/accounting break.
	buf := make([]byte, 64)
	if err := m2.Read(va, buf); err != nil { // migrates; node 2 caches PTE
		t.Fatal(err)
	}
	vpn := uint64(va >> PageShift)
	if !m1.DemoteToCold(vpn) {
		t.Fatal("demote failed")
	}
	// With the broken shootdown, node 2 still translates to the stale
	// warm PTE from its TLB.
	if p, ok := m2.tlbPeek(vpn); !ok || p.Cold() {
		t.Fatal("planted break not observable: TLB entry missing or already cold")
	}
	SetBrokenSkipShootdown(false)
	// With shootdowns restored, the same move invalidates the peer TLB.
	if !m1.PromoteFromCold(vpn) {
		t.Fatal("promote failed")
	}
	if _, ok := m2.tlbPeek(vpn); ok {
		t.Fatal("batched shootdown did not invalidate the peer TLB")
	}
}

func (m *MMU) tlbPeek(vpn uint64) (PTE, bool) { return m.tlb.get(vpn) }

// TestTierOpsRefuseBogusPages: unmapped and remote-local pages are not
// movable by this node.
func TestTierOpsRefuseBogusPages(t *testing.T) {
	e := newEnv(t, 2)
	s := e.space(1)
	m0 := e.attach(s, 0)
	m1 := e.attach(s, 1)
	if m0.DemoteToCold(999) || m0.PromoteFromCold(999) || m0.PromoteToLocal(999) || m0.DemoteToGlobal(999) {
		t.Fatal("tier op succeeded on unmapped page")
	}
	const va = 0xb0000
	if err := m0.MMap(va, 1, ProtRead|ProtWrite, BackLocal); err != nil {
		t.Fatal(err)
	}
	if err := m0.Write(va, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	vpn := uint64(va >> PageShift)
	if m1.DemoteToGlobal(vpn) {
		t.Fatal("node 1 demoted node 0's local frame")
	}
	if tier, node := m1.TierOf(vpn); tier != TierLocal || node != 0 {
		t.Fatalf("TierOf = %v/%d", tier, node)
	}
}
