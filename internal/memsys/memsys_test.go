package memsys

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/alloc"
)

// env bundles one simulated rack with the memory system bootstrapped.
type env struct {
	fab    *fabric.Fabric
	frames *GlobalFrames
	arena  *alloc.Arena
}

func newEnv(t *testing.T, nodes int) *env {
	t.Helper()
	f := fabric.New(fabric.Config{GlobalSize: 48 << 20, Nodes: nodes})
	return &env{
		fab:    f,
		frames: NewGlobalFrames(f, 2048), // 8 MiB of pages
		arena:  alloc.NewArena(f, 24<<20),
	}
}

func (e *env) space(id uint64) *Space {
	return NewSpace(e.fab, id, e.frames, e.arena.NodeAllocator(e.fab.Node(0), 0), 1024)
}

func (e *env) attach(s *Space, node int) *MMU {
	n := e.fab.Node(node)
	return s.Attach(n, e.arena.NodeAllocator(n, 0), NewLocalStore(n), 64)
}

func TestPTEEncoding(t *testing.T) {
	g := MakeGlobalPTE(0x1234000, true)
	if !g.Valid() || !g.Writable() || !g.Global() || g.COW() {
		t.Fatalf("flags wrong: %v", g)
	}
	if g.GlobalPhys() != 0x1234000 {
		t.Fatalf("phys = %#x", g.GlobalPhys())
	}
	l := MakeLocalPTE(3, 77, false)
	if l.Global() || l.Writable() {
		t.Fatalf("local flags wrong: %v", l)
	}
	if node, idx := l.LocalFrame(); node != 3 || idx != 77 {
		t.Fatalf("local frame = %d/%d", node, idx)
	}
	c := g.WithCOW()
	if !c.COW() || c.Writable() {
		t.Fatalf("WithCOW wrong: %v", c)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unaligned global frame should panic")
			}
		}()
		MakeGlobalPTE(0x1001, false)
	}()
	if PTE(0).String() != "pte<invalid>" {
		t.Fatal("invalid PTE string")
	}
}

func TestPTEQuickRoundTrip(t *testing.T) {
	prop := func(frame uint32, node uint8, w bool) bool {
		phys := uint64(frame) << PageShift
		g := MakeGlobalPTE(phys, w)
		if g.GlobalPhys() != phys || g.Writable() != w {
			return false
		}
		l := MakeLocalPTE(int(node), frame, w)
		gotNode, gotIdx := l.LocalFrame()
		return gotNode == int(node) && gotIdx == frame && l.Writable() == w
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalFramesAllocRefUnref(t *testing.T) {
	e := newEnv(t, 2)
	n0, n1 := e.fab.Node(0), e.fab.Node(1)
	phys := e.frames.Alloc(n0)
	if phys%PageSize != 0 || !e.frames.Contains(phys) {
		t.Fatalf("frame %#x", phys)
	}
	if e.frames.RefCount(n0, phys) != 1 {
		t.Fatalf("refcount = %d", e.frames.RefCount(n0, phys))
	}
	e.frames.Ref(n1, phys) // cross-node ref
	if e.frames.Unref(n0, phys) {
		t.Fatal("freed while still referenced")
	}
	if !e.frames.Unref(n1, phys) {
		t.Fatal("last unref did not free")
	}
	// Freed frame gets recycled, zeroed.
	phys2 := e.frames.Alloc(n1)
	if phys2 != phys {
		t.Fatalf("recycled %#x, want %#x", phys2, phys)
	}
	buf := make([]byte, PageSize)
	n1.InvalidateRange(fabric.GPtr(phys2), PageSize)
	n1.Read(fabric.GPtr(phys2), buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("recycled frame byte %d = %d", i, b)
		}
	}
}

func TestGlobalFramesConcurrentRefUnref(t *testing.T) {
	e := newEnv(t, 4)
	phys := e.frames.Alloc(e.fab.Node(0))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := e.fab.Node(w)
			for i := 0; i < 200; i++ {
				e.frames.Ref(n, phys)
				e.frames.Unref(n, phys)
			}
		}(w)
	}
	wg.Wait()
	if got := e.frames.RefCount(e.fab.Node(0), phys); got != 1 {
		t.Fatalf("refcount = %d, want 1", got)
	}
}

func TestLocalStore(t *testing.T) {
	e := newEnv(t, 1)
	ls := NewLocalStore(e.fab.Node(0))
	a := ls.Alloc()
	b := ls.Alloc()
	if a == b {
		t.Fatal("duplicate local frames")
	}
	ls.page(a)[0] = 0xEE
	ls.Free(a)
	c := ls.Alloc()
	if c != a {
		t.Fatalf("free list not reused: %d", c)
	}
	if ls.page(c)[0] != 0 {
		t.Fatal("recycled local frame not zeroed")
	}
	if ls.Allocated() != 2 {
		t.Fatalf("Allocated = %d", ls.Allocated())
	}
}

func TestMMapFaultReadWriteSingleNode(t *testing.T) {
	e := newEnv(t, 1)
	s := e.space(1)
	m := e.attach(s, 0)
	const va = 0x10000
	if err := m.MMap(va, 4, ProtRead|ProtWrite, BackGlobal); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x5A}, 3*PageSize)
	if err := m.Write(va+100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := m.Read(va+100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	faults := m.Stats().PageFaults
	if faults == 0 {
		t.Fatal("no page faults recorded")
	}
}

func TestCrossNodeSharedAddressSpace(t *testing.T) {
	e := newEnv(t, 2)
	s := e.space(1)
	m0 := e.attach(s, 0)
	m1 := e.attach(s, 1)
	const va = 0x200000
	// Node 0 maps and writes; node 1 must see both the mapping (via the
	// replicated VMA log) and the data (via the shared page table).
	if err := m0.MMap(va, 2, ProtRead|ProtWrite, BackGlobal); err != nil {
		t.Fatal(err)
	}
	msg := []byte("written on node 0, read on node 1")
	if err := m0.Write(va+PageSize-10, msg); err != nil { // crosses a page
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := m1.Read(va+PageSize-10, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("node 1 read %q", got)
	}
}

func TestSegfaultOnUnmapped(t *testing.T) {
	e := newEnv(t, 1)
	s := e.space(1)
	m := e.attach(s, 0)
	if err := m.Read(0xdead000, make([]byte, 8)); err == nil {
		t.Fatal("read of unmapped VA should fail")
	}
}

func TestWriteToReadOnlyFails(t *testing.T) {
	e := newEnv(t, 1)
	s := e.space(1)
	m := e.attach(s, 0)
	if err := m.MMap(0x30000, 1, ProtRead, BackGlobal); err != nil {
		t.Fatal(err)
	}
	// Fault the page in with a read first.
	if err := m.Read(0x30000, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0x30000, []byte{1}); err == nil {
		t.Fatal("write to read-only mapping should fail")
	}
}

func TestMMapOverlapRejected(t *testing.T) {
	e := newEnv(t, 2)
	s := e.space(1)
	m0 := e.attach(s, 0)
	m1 := e.attach(s, 1)
	if err := m0.MMap(0x40000, 4, ProtRead, BackGlobal); err != nil {
		t.Fatal(err)
	}
	// Overlap detected on a DIFFERENT node: the VMA table is replicated.
	if err := m1.MMap(0x40000+2*PageSize, 4, ProtRead, BackGlobal); err == nil {
		t.Fatal("overlapping mmap from another node should fail")
	}
}

func TestMUnmapReleasesFrames(t *testing.T) {
	e := newEnv(t, 1)
	s := e.space(1)
	m := e.attach(s, 0)
	const va = 0x50000
	if err := m.MMap(va, 2, ProtRead|ProtWrite, BackGlobal); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(va, make([]byte, 2*PageSize)); err != nil {
		t.Fatal(err)
	}
	phys := m.PTEOf(va).GlobalPhys()
	if err := m.MUnmap(va, 2); err != nil {
		t.Fatal(err)
	}
	if m.PTEOf(va).Valid() {
		t.Fatal("PTE survives munmap")
	}
	if e.frames.RefCount(m.Node(), phys) != 0 {
		t.Fatal("frame not released")
	}
	if err := m.Read(va, make([]byte, 8)); err == nil {
		t.Fatal("read after munmap should fault")
	}
	if err := m.MUnmap(va, 2); err == nil {
		t.Fatal("double munmap should fail")
	}
}

func TestLocalBackingAndMigration(t *testing.T) {
	e := newEnv(t, 2)
	s := e.space(1)
	m0 := e.attach(s, 0)
	m1 := e.attach(s, 1)
	const va = 0x60000
	if err := m0.MMap(va, 1, ProtRead|ProtWrite, BackLocal); err != nil {
		t.Fatal(err)
	}
	msg := []byte("node-local page content")
	if err := m0.Write(va, msg); err != nil {
		t.Fatal(err)
	}
	if m0.PTEOf(va).Global() {
		t.Fatal("BackLocal page allocated in global memory")
	}
	// Node 1 touches it: the page must migrate to global memory.
	got := make([]byte, len(msg))
	if err := m1.Read(va, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("migrated read = %q", got)
	}
	if !m1.PTEOf(va).Global() {
		t.Fatal("page not migrated to global tier")
	}
	migrations := m1.Stats().Migrations
	if migrations != 1 {
		t.Fatalf("migrations = %d", migrations)
	}
	// Node 0 still sees the same contents after migration.
	got0 := make([]byte, len(msg))
	if err := m0.Read(va, got0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got0, msg) {
		t.Fatalf("owner read after migration = %q", got0)
	}
}

func TestDedupMergesIdenticalPagesAndCOWBreaks(t *testing.T) {
	e := newEnv(t, 2)
	s := e.space(1)
	m0 := e.attach(s, 0)
	m1 := e.attach(s, 1)
	const vaA, vaB, vaC = 0x100000, 0x200000, 0x300000
	for _, va := range []uint64{vaA, vaB, vaC} {
		if err := m0.MMap(va, 1, ProtRead|ProtWrite, BackGlobal); err != nil {
			t.Fatal(err)
		}
	}
	same := bytes.Repeat([]byte{7}, PageSize)
	diff := bytes.Repeat([]byte{9}, PageSize)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m0.Write(vaA, same))
	must(m0.Write(vaB, same))
	must(m0.Write(vaC, diff))

	if merged := m0.DedupPass(); merged != 1 {
		t.Fatalf("merged = %d, want 1", merged)
	}
	pa, pb := m0.PTEOf(vaA), m0.PTEOf(vaB)
	if pa.GlobalPhys() != pb.GlobalPhys() {
		t.Fatal("identical pages not sharing a frame")
	}
	if e.frames.RefCount(m0.Node(), pa.GlobalPhys()) != 2 {
		t.Fatalf("shared frame refcount = %d", e.frames.RefCount(m0.Node(), pa.GlobalPhys()))
	}
	// Reads still correct from the other node.
	got := make([]byte, PageSize)
	must(m1.Read(vaB, got))
	if !bytes.Equal(got, same) {
		t.Fatal("deduped page content wrong")
	}
	// Writing one of the sharers must COW-break, not corrupt the other.
	must(m1.Write(vaB, diff))
	must(m0.Read(vaA, got))
	if !bytes.Equal(got, same) {
		t.Fatal("COW break corrupted the sibling page")
	}
	must(m1.Read(vaB, got))
	if !bytes.Equal(got, diff) {
		t.Fatal("COW page lost its write")
	}
	cow := m1.Stats().COWBreaks
	if cow != 1 {
		t.Fatalf("COW breaks = %d", cow)
	}
	if e.frames.RefCount(m0.Node(), pa.GlobalPhys()) != 1 {
		t.Fatal("refcount not dropped after COW break")
	}
}

func TestConcurrentFaultsOnePageOneFrame(t *testing.T) {
	e := newEnv(t, 4)
	s := e.space(1)
	mmus := make([]*MMU, 4)
	for i := range mmus {
		mmus[i] = e.attach(s, i)
	}
	const va = 0x700000
	if err := mmus[0].MMap(va, 1, ProtRead|ProtWrite, BackGlobal); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, m := range mmus {
		wg.Add(1)
		go func(m *MMU) {
			defer wg.Done()
			buf := make([]byte, 8)
			if err := m.Read(va, buf); err != nil {
				t.Errorf("read: %v", err)
			}
		}(m)
	}
	wg.Wait()
	phys := mmus[0].PTEOf(va).GlobalPhys()
	for i, m := range mmus {
		if m.PTEOf(va).GlobalPhys() != phys {
			t.Fatalf("node %d sees different frame", i)
		}
	}
	if e.frames.RefCount(mmus[0].Node(), phys) != 1 {
		t.Fatalf("refcount = %d (losing faulters must free their frames)",
			e.frames.RefCount(mmus[0].Node(), phys))
	}
}

func TestTLBHitsRecorded(t *testing.T) {
	e := newEnv(t, 1)
	s := e.space(1)
	m := e.attach(s, 0)
	if err := m.MMap(0x80000, 1, ProtRead|ProtWrite, BackGlobal); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for i := 0; i < 5; i++ {
		if err := m.Read(0x80000, buf); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := m.Stats().TLBHits, m.Stats().TLBMisses
	if hits < 3 || misses == 0 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	m.FlushTLB()
	m.Read(0x80000, buf)
	misses2 := m.Stats().TLBMisses
	if misses2 <= misses {
		t.Fatal("flush did not cause a TLB miss")
	}
}

func TestDetachDeregistersVMALog(t *testing.T) {
	e := newEnv(t, 2)
	s := e.space(1)
	m0 := e.attach(s, 0)
	m1 := e.attach(s, 1)
	s.Detach(m1)
	// With node 1 detached, node 0 can push far more VMA ops than the log
	// capacity without node 1 ever syncing.
	for i := uint64(0); i < 2000; i++ {
		va := 0x1000000 + i*PageSize
		if err := m0.MMap(va, 1, ProtRead, BackGlobal); err != nil {
			t.Fatal(err)
		}
	}
}
