package memsys

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/alloc"
	"flacos/internal/flacdk/replication"
	"flacos/internal/trace"
)

// MMUStats counts one MMU's translation activity.
type MMUStats struct {
	TLBHits            atomic.Uint64
	TLBMisses          atomic.Uint64
	PageFaults         atomic.Uint64
	COWBreaks          atomic.Uint64
	Migrations         atomic.Uint64
	Promotions         atomic.Uint64
	Demotions          atomic.Uint64
	ShootdownsSent     atomic.Uint64
	ShootdownsReceived atomic.Uint64
}

// MMUStatsSnapshot is a point-in-time copy of MMUStats, the value form
// Stats returns (the old 7-tuple form could not grow without breaking
// every call site; the tiering counters forced the switch).
type MMUStatsSnapshot struct {
	TLBHits            uint64
	TLBMisses          uint64
	PageFaults         uint64
	COWBreaks          uint64
	Migrations         uint64
	Promotions         uint64 // tiering: pages moved cold->warm or ->node-local
	Demotions          uint64 // tiering: pages moved local->warm or warm->cold
	ShootdownsSent     uint64
	ShootdownsReceived uint64
}

// tlb is a per-node translation cache: node-local, coherent Go memory, so
// an ordinary mutex suffices. Cross-node correctness comes from shootdowns.
//
// gen counts invalidations (local and shootdown-delivered). The store path
// snapshots it around each chunk: an unchanged generation means no
// shootdown touched this MMU mid-store, so the translation held for the
// whole store and the expensive page-table re-walk can be skipped — the
// software analogue of a core that re-checks its mapping only after a
// shootdown IPI, not after every store.
type tlb struct {
	gen atomic.Uint64
	mu  sync.Mutex
	cap int
	m   map[uint64]PTE
}

func newTLB(capacity int) *tlb {
	if capacity <= 0 {
		capacity = 256
	}
	return &tlb{cap: capacity, m: make(map[uint64]PTE)}
}

func (t *tlb) get(vpn uint64) (PTE, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.m[vpn]
	return p, ok
}

func (t *tlb) put(vpn uint64, p PTE) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.m) >= t.cap {
		for k := range t.m { // arbitrary eviction
			delete(t.m, k)
			break
		}
	}
	t.m[vpn] = p
}

func (t *tlb) invalidate(vpn uint64) {
	t.mu.Lock()
	t.gen.Add(1) // bump BEFORE the delete: an unchanged gen observed by a
	delete(t.m, vpn) // store proves the invalidation had not begun
	t.mu.Unlock()
}

func (t *tlb) flush() {
	t.mu.Lock()
	t.gen.Add(1)
	t.m = make(map[uint64]PTE)
	t.mu.Unlock()
}

// MMU is one node's attachment to a Space: TLB, fault handling, and the
// load/store paths. Safe for concurrent use by the node's goroutines.
type MMU struct {
	space  *Space
	node   *fabric.Node
	pta    *alloc.NodeAllocator
	local  *LocalStore
	vmas   *vmaSM
	vmaRep *replication.Replica
	tlb    *tlb
	stats  MMUStats
}

// Node returns the fabric node this MMU belongs to.
func (m *MMU) Node() *fabric.Node { return m.node }

// Space returns the address space this MMU translates for.
func (m *MMU) Space() *Space { return m.space }

// Stats returns a snapshot of the MMU's counters.
func (m *MMU) Stats() MMUStatsSnapshot {
	return MMUStatsSnapshot{
		TLBHits:            m.stats.TLBHits.Load(),
		TLBMisses:          m.stats.TLBMisses.Load(),
		PageFaults:         m.stats.PageFaults.Load(),
		COWBreaks:          m.stats.COWBreaks.Load(),
		Migrations:         m.stats.Migrations.Load(),
		Promotions:         m.stats.Promotions.Load(),
		Demotions:          m.stats.Demotions.Load(),
		ShootdownsSent:     m.stats.ShootdownsSent.Load(),
		ShootdownsReceived: m.stats.ShootdownsReceived.Load(),
	}
}

// MMap maps pages at [vaStart, vaStart+pages*PageSize) with the given
// protection and backing tier. The operation replicates to every attached
// node through the VMA log.
func (m *MMU) MMap(vaStart uint64, pages uint64, prot Prot, backing Backing) error {
	if backing == BackFile {
		return &MapError{Op: "mmap", VA: vaStart, Why: "use MMapFile for file-backed mappings"}
	}
	return m.mmap(vaStart, pages, prot, backing, 0, 0)
}

// MMapFile maps pages of a file (starting at filePage) into the address
// space with MAP_PRIVATE semantics: reads are served straight from the
// shared page cache's frames (zero copies, one frame rack-wide); the
// first write to a page copies it into a private anonymous frame. The
// space must share the file system's frame pool and have a PageSource.
func (m *MMU) MMapFile(vaStart uint64, pages uint64, prot Prot, fileID uint64, filePage uint32) error {
	if m.space.pageSource() == nil {
		return &MapError{Op: "mmap", VA: vaStart, Why: "space has no PageSource for file mappings"}
	}
	return m.mmap(vaStart, pages, prot, BackFile, fileID, filePage)
}

func (m *MMU) mmap(vaStart uint64, pages uint64, prot Prot, backing Backing, fileID uint64, filePage uint32) error {
	if vaStart%PageSize != 0 || pages == 0 {
		return &MapError{Op: "mmap", VA: vaStart, Why: "unaligned or empty"}
	}
	var payload [36]byte
	binary.LittleEndian.PutUint64(payload[:], vaStart>>PageShift)
	binary.LittleEndian.PutUint64(payload[8:], pages)
	binary.LittleEndian.PutUint32(payload[16:], uint32(prot))
	binary.LittleEndian.PutUint32(payload[20:], uint32(backing))
	binary.LittleEndian.PutUint64(payload[24:], fileID)
	binary.LittleEndian.PutUint32(payload[32:], filePage)
	if m.vmaRep.Execute(vmaOpMap, payload[:]) == 0 {
		return &MapError{Op: "mmap", VA: vaStart, Why: "overlaps existing mapping"}
	}
	return nil
}

// MUnmap removes a mapping previously created with exactly (vaStart,
// pages), releasing its frames and shooting down every TLB.
func (m *MMU) MUnmap(vaStart uint64, pages uint64) error {
	var payload [24]byte
	binary.LittleEndian.PutUint64(payload[:], vaStart>>PageShift)
	binary.LittleEndian.PutUint64(payload[8:], pages)
	if m.vmaRep.Execute(vmaOpUnmap, payload[:]) == 0 {
		return &MapError{Op: "munmap", VA: vaStart, Why: "no such mapping"}
	}
	startVPN := vaStart >> PageShift
	for vpn := startVPN; vpn < startVPN+pages; vpn++ {
		old := PTE(m.space.pt.Delete(m.node, vpn))
		m.tlb.invalidate(vpn)
		m.space.shootdown(m, vpn)
		if !old.Valid() {
			continue
		}
		if old.Global() {
			m.space.frames.Unref(m.node, old.GlobalPhys())
		} else if nodeID, idx := old.LocalFrame(); nodeID == m.node.ID() {
			m.local.Free(idx)
		} else {
			// Remote local frame: its owner's store must release it. The
			// registry gives us the owner's MMU (models an unmap IPI).
			if owner := m.space.mmuOnNode(nodeID); owner != nil {
				owner.local.Free(idx)
				m.node.ChargeNS(ipiCostNS)
			}
		}
	}
	return nil
}

// mmuOnNode returns some MMU attached from the given node, or nil.
func (s *Space) mmuOnNode(nodeID int) *MMU {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.mmus {
		if m.node.ID() == nodeID {
			return m
		}
	}
	return nil
}

// translate resolves vpn to a PTE, faulting the page in on demand. write
// selects write semantics (COW break, protection check).
func (m *MMU) translate(vpn uint64, write bool) (PTE, error) {
	if p, ok := m.tlb.get(vpn); ok {
		if !write || p.Writable() {
			m.stats.TLBHits.Add(1)
			m.sample(vpn, write)
			return p, nil
		}
		// Write to a read-only TLB entry: fall into the fault path.
		m.tlb.invalidate(vpn)
	}
	m.stats.TLBMisses.Add(1)
	for {
		p := PTE(m.space.pt.Get(m.node, vpn))
		switch {
		case !p.Valid():
			var err error
			if p, err = m.demandFault(vpn); err != nil {
				return 0, err
			}
			continue // re-check the installed entry
		case p.Busy():
			runtime.Gosched() // page mid-move: wait for the final entry
			continue
		case write && p.COW():
			m.breakCOW(vpn, p)
			continue
		case write && !p.Writable():
			return 0, &MapError{Op: "write", VA: vpn << PageShift, Why: "read-only mapping"}
		case !p.Global() && m.nodeOf(p) != m.node.ID():
			m.migrateToGlobal(vpn, p)
			continue
		default:
			m.tlb.put(vpn, p)
			m.sample(vpn, write)
			return p, nil
		}
	}
}

// sample forwards one successful translation to the space's access
// sampler, if any. One atomic load on the no-sampler path.
func (m *MMU) sample(vpn uint64, write bool) {
	if b := m.space.sampler.Load(); b != nil {
		b.s.Sample(m.node.ID(), vpn, write)
	}
}

func (m *MMU) nodeOf(p PTE) int {
	nodeID, _ := p.LocalFrame()
	return nodeID
}

// demandFault allocates and installs a frame for vpn per its VMA — the
// §3.3 fault path that "allocates and loads pages into global memory".
func (m *MMU) demandFault(vpn uint64) (PTE, error) {
	m.stats.PageFaults.Add(1)
	m.vmaRep.Sync() // learn VMAs mapped by other nodes
	var vma VMA
	var ok bool
	m.vmaRep.ReadLocal(func(replication.StateMachine) {
		vma, ok = m.vmas.lookup(vpn)
	})
	if !ok {
		return 0, &MapError{Op: "fault", VA: vpn << PageShift, Why: "unmapped address (SIGSEGV)"}
	}
	writable := vma.Prot&ProtWrite != 0
	var p PTE
	switch vma.Backing {
	case BackGlobal:
		phys := m.space.frames.Alloc(m.node)
		p = MakeGlobalPTE(phys, writable)
		if m.space.pt.CompareAndSwap(m.node, m.pta, vpn, 0, uint64(p)) {
			return p, nil
		}
		m.space.frames.Unref(m.node, phys) // lost the install race
	case BackLocal:
		idx := m.local.Alloc()
		p = MakeLocalPTE(m.node.ID(), idx, writable)
		if m.space.pt.CompareAndSwap(m.node, m.pta, vpn, 0, uint64(p)) {
			return p, nil
		}
		m.local.Free(idx)
	case BackFile:
		src := m.space.pageSource()
		if src == nil {
			return 0, &MapError{Op: "fault", VA: vpn << PageShift, Why: "no PageSource"}
		}
		filePage := vma.FilePage + uint32(vpn-vma.StartVPN)
		phys, ok := src.PageFrame(vma.FileID, filePage)
		if !ok {
			return 0, &MapError{Op: "fault", VA: vpn << PageShift,
				Why: fmt.Sprintf("file %d page %d beyond EOF (SIGBUS)", vma.FileID, filePage)}
		}
		// Map the shared cache frame read-only; writable VMAs get COW so
		// the first store copies into a private frame.
		p = MakeGlobalPTE(phys, false)
		if writable {
			p |= PteCOW
		}
		if m.space.pt.CompareAndSwap(m.node, m.pta, vpn, 0, uint64(p)) {
			return p, nil
		}
		m.space.frames.Unref(m.node, phys) // lost the race: drop our ref
	}
	return PTE(m.space.pt.Get(m.node, vpn)), nil // winner's entry
}

// breakCOW copies a copy-on-write page into a private frame.
func (m *MMU) breakCOW(vpn uint64, old PTE) {
	buf := make([]byte, PageSize)
	m.readFrame(old, 0, buf)
	phys := m.space.frames.AllocUninit(m.node)
	m.node.Write(fabric.GPtr(phys), buf)
	m.node.WriteBackRange(fabric.GPtr(phys), PageSize)
	m.node.InvalidateRange(fabric.GPtr(phys), PageSize)
	neu := MakeGlobalPTE(phys, true)
	if m.space.pt.CompareAndSwap(m.node, m.pta, vpn, uint64(old), uint64(neu)) {
		m.stats.COWBreaks.Add(1)
		m.tlb.invalidate(vpn)
		m.space.shootdown(m, vpn)
		if old.Global() {
			m.space.frames.Unref(m.node, old.GlobalPhys())
		}
		return
	}
	m.space.frames.Unref(m.node, phys) // another node broke it first
}

// migrateToGlobal moves a remote node-local page into global memory so this
// node can reach it: the unified-address-space promise of the shared
// heterogeneous page table.
//
// Unmap-before-copy protocol: publish the in-transit (busy) marker first so
// no new translation can hand out the dying mapping, purge every TLB, and
// only then copy the frame. Any store that slipped past its own MMU's
// generation check necessarily finished before the purge — before the
// copy — so the copy captures it; later stores re-walk and retry on the
// busy or final entry.
func (m *MMU) migrateToGlobal(vpn uint64, old PTE) {
	ownerID, idx := old.LocalFrame()
	owner := m.space.mmuOnNode(ownerID)
	if owner == nil {
		panic("memsys: local page owned by a node with no attached MMU")
	}
	phys := m.space.frames.AllocUninit(m.node)
	if !m.space.pt.CompareAndSwap(m.node, m.pta, vpn, uint64(old), uint64(old|PteBusy)) {
		m.space.frames.Unref(m.node, phys) // racing move won
		return
	}
	m.node.ChargeNS(ipiCostNS) // ask the owner to relinquish
	owner.tlb.invalidate(vpn)
	m.tlb.invalidate(vpn)
	m.space.shootdown(m, vpn)
	src := owner.local.copyOut(idx) // owner's lock serializes in-flight stores
	m.node.Write(fabric.GPtr(phys), src)
	m.node.WriteBackRange(fabric.GPtr(phys), PageSize)
	m.node.InvalidateRange(fabric.GPtr(phys), PageSize)
	neu := MakeGlobalPTE(phys, old.Writable())
	if m.space.pt.CompareAndSwap(m.node, m.pta, vpn, uint64(old|PteBusy), uint64(neu)) {
		m.stats.Migrations.Add(1)
		m.space.emit(m.node, trace.KMigrate, vpn, uint64(ownerID))
		owner.local.Free(idx)
		if b := m.space.sampler.Load(); b != nil {
			b.s.Migrated(vpn, ownerID)
		}
		return
	}
	m.space.frames.Unref(m.node, phys) // unmapped mid-move
}

// readFrame copies [off, off+len(buf)) of the frame behind p into buf.
// Cold-tier frames pay the fabric's ColdNS surcharge on top of the
// ordinary global cost — the access still works, it is just far.
func (m *MMU) readFrame(p PTE, off uint64, buf []byte) {
	if p.Global() {
		g := fabric.GPtr(p.GlobalPhys() + off)
		m.node.InvalidateRange(g, uint64(len(buf)))
		m.node.Read(g, buf)
		if p.Cold() {
			m.node.ChargeColdAccess(len(buf)/fabric.LineSize + 1)
		}
		return
	}
	nodeID, idx := p.LocalFrame()
	if nodeID != m.node.ID() {
		panic("memsys: direct read of remote local frame (must migrate)")
	}
	m.local.readAt(idx, off, buf)
	m.node.ChargeNS((len(buf)/fabric.LineSize + 1) * localAccessNS)
}

// writeFrame copies data into the frame behind p at off.
func (m *MMU) writeFrame(p PTE, off uint64, data []byte) {
	if p.Global() {
		g := fabric.GPtr(p.GlobalPhys() + off)
		m.node.Write(g, data)
		m.node.WriteBackRange(g, uint64(len(data)))
		if p.Cold() {
			m.node.ChargeColdAccess(len(data)/fabric.LineSize + 1)
		}
		return
	}
	nodeID, idx := p.LocalFrame()
	if nodeID != m.node.ID() {
		panic("memsys: direct write of remote local frame (must migrate)")
	}
	m.local.writeAt(idx, off, data)
	m.node.ChargeNS((len(data)/fabric.LineSize + 1) * localAccessNS)
}

// localAccessNS models one line's worth of node-local DRAM access.
const localAccessNS = 100

// Read copies len(buf) bytes from virtual address va, faulting pages in on
// demand. Global pages are invalidated before reading, so the data is
// coherent with the most recent write-back by any node.
func (m *MMU) Read(va uint64, buf []byte) error {
	for done := 0; done < len(buf); {
		vpn := (va + uint64(done)) >> PageShift
		off := (va + uint64(done)) % PageSize
		chunk := min(PageSize-off, uint64(len(buf)-done))
		p, err := m.translate(vpn, false)
		if err != nil {
			return err
		}
		m.readFrame(p, off, buf[done:done+int(chunk)])
		done += int(chunk)
	}
	return nil
}

// Write copies data to virtual address va with write-through to home
// memory, breaking COW and faulting pages in as needed.
//
// After each page's store the translation is re-validated: a concurrent
// write-protect (dedup's merge fence) or migration that landed mid-store
// would otherwise absorb the data into a frame about to be shared or
// abandoned. The check is two-level, like real hardware: the TLB
// invalidation generation is snapshotted before translating, and only if
// an invalidation hit this MMU during the store is the page table
// re-walked (the retry a core performs after a shootdown IPI). This is
// sound because every PTE-changing path invalidates TLBs, and the
// frame-moving paths purge ALL TLBs before copying the old frame
// (unmap-before-copy): a store that passed the generation check either
// used the live mapping or finished before the purge — and therefore
// before the copy, which captures it.
func (m *MMU) Write(va uint64, data []byte) error {
	for done := 0; done < len(data); {
		vpn := (va + uint64(done)) >> PageShift
		off := (va + uint64(done)) % PageSize
		chunk := min(PageSize-off, uint64(len(data)-done))
		gen := m.tlb.gen.Load()
		p, err := m.translate(vpn, true)
		if err != nil {
			return err
		}
		m.writeFrame(p, off, data[done:done+int(chunk)])
		if m.tlb.gen.Load() != gen && PTE(m.space.pt.Get(m.node, vpn)) != p {
			m.tlb.invalidate(vpn)
			continue // mapping changed under the store: redo this chunk
		}
		done += int(chunk)
	}
	return nil
}

// FlushTLB empties this MMU's TLB (context switch, space teardown).
func (m *MMU) FlushTLB() { m.tlb.flush() }

// PTEOf returns the current page-table entry for va (diagnostics/tests).
func (m *MMU) PTEOf(va uint64) PTE { return PTE(m.space.pt.Get(m.node, va>>PageShift)) }
