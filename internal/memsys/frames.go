package memsys

import (
	"fmt"
	"sync"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/ds"
)

// GlobalFrames allocates PageSize frames from a dedicated global-memory
// region. It is a simple lock-free free-list allocator (Treiber stack over
// fabric atomics, bump allocation for fresh frames) shared by every node,
// with a global refcount table so deduplicated and COW-shared frames are
// freed exactly once.
type GlobalFrames struct {
	fab    *fabric.Fabric
	base   fabric.GPtr
	frames uint64
	bumpG  fabric.GPtr // atomic: next never-used frame index
	headG  fabric.GPtr // atomic: free-list head (tagged)
	refs   *ds.HashMap // frame phys >> PageShift -> refcount
}

const frameAddrBits = 40

// NewGlobalFrames reserves a region of the given number of frames.
func NewGlobalFrames(f *fabric.Fabric, frames uint64) *GlobalFrames {
	if frames == 0 {
		panic("memsys: zero frames")
	}
	return &GlobalFrames{
		fab:    f,
		base:   f.Reserve(frames*PageSize, PageSize),
		frames: frames,
		bumpG:  f.Reserve(fabric.LineSize, fabric.LineSize),
		headG:  f.Reserve(fabric.LineSize, fabric.LineSize),
		refs:   ds.NewHashMap(f, frames*2),
	}
}

// Contains reports whether phys lies in this allocator's region.
func (gf *GlobalFrames) Contains(phys uint64) bool {
	return phys >= uint64(gf.base) && phys < uint64(gf.base)+gf.frames*PageSize
}

// Alloc returns one zeroed global frame's physical address with refcount 1.
// It panics when global memory is exhausted (a rack sizing error).
func (gf *GlobalFrames) Alloc(n *fabric.Node) uint64 {
	phys := gf.AllocUninit(n)
	zero := make([]byte, PageSize)
	n.Write(fabric.GPtr(phys), zero)
	n.WriteBackRange(fabric.GPtr(phys), PageSize)
	n.InvalidateRange(fabric.GPtr(phys), PageSize)
	return phys
}

// AllocUninit returns a frame with unspecified contents, for callers about
// to overwrite the whole page (page-cache installs, COW copies) — skipping
// the zeroing pass.
func (gf *GlobalFrames) AllocUninit(n *fabric.Node) uint64 {
	var phys uint64
	for {
		h := n.AtomicLoad64(gf.headG)
		addr := h & (1<<frameAddrBits - 1)
		if addr == 0 {
			idx := n.Add64(gf.bumpG, 1) - 1
			if idx >= gf.frames {
				panic(fmt.Sprintf("memsys: out of global frames (%d)", gf.frames))
			}
			phys = uint64(gf.base) + idx*PageSize
			break
		}
		next := n.AtomicLoad64(fabric.GPtr(addr))
		if n.CAS64(gf.headG, h, (h>>frameAddrBits+1)<<frameAddrBits|next) {
			phys = addr
			break
		}
	}
	// A popped/bumped frame is exclusively ours; its refcount entry is
	// either absent (fresh) or 0 (previously freed).
	gf.refs.Put(n, phys>>PageShift, 1)
	return phys
}

// Ref increments the frame's refcount (sharing via dedup or COW fork).
func (gf *GlobalFrames) Ref(n *fabric.Node, phys uint64) {
	key := phys >> PageShift
	for {
		c, ok := gf.refs.Get(n, key)
		if !ok || c == 0 {
			panic(fmt.Sprintf("memsys: Ref on unallocated frame %#x", phys))
		}
		if gf.refs.CompareAndSwap(n, key, c, c+1) {
			return
		}
	}
}

// TryRef increments the refcount iff the frame is still live, returning
// whether a reference was taken. DedupPass uses it for the canonical
// frame, which every sharer can concurrently COW-break away from and
// free: losing that race must skip the merge, not panic.
func (gf *GlobalFrames) TryRef(n *fabric.Node, phys uint64) bool {
	key := phys >> PageShift
	for {
		c, ok := gf.refs.Get(n, key)
		if !ok || c == 0 {
			return false
		}
		if gf.refs.CompareAndSwap(n, key, c, c+1) {
			return true
		}
	}
}

// Unref decrements the refcount, pushing the frame onto the free list when
// it reaches zero. Returns true when the frame was actually freed.
func (gf *GlobalFrames) Unref(n *fabric.Node, phys uint64) bool {
	key := phys >> PageShift
	for {
		c, ok := gf.refs.Get(n, key)
		if !ok || c == 0 {
			panic(fmt.Sprintf("memsys: Unref on unallocated frame %#x", phys))
		}
		if !gf.refs.CompareAndSwap(n, key, c, c-1) {
			continue
		}
		if c != 1 {
			return false
		}
		for {
			h := n.AtomicLoad64(gf.headG)
			n.AtomicStore64(fabric.GPtr(phys), h&(1<<frameAddrBits-1))
			if n.CAS64(gf.headG, h, (h>>frameAddrBits+1)<<frameAddrBits|phys) {
				return true
			}
		}
	}
}

// RefCount returns the frame's current refcount (0 if unallocated).
func (gf *GlobalFrames) RefCount(n *fabric.Node, phys uint64) uint64 {
	c, _ := gf.refs.Get(n, phys>>PageShift)
	return c
}

// LocalStore is one node's private page-frame pool: plain Go memory,
// reachable only by its own node (remote access requires migrating the
// page into global memory — exactly the constraint real node-local DRAM
// has in a rack).
type LocalStore struct {
	node *fabric.Node

	mu     sync.Mutex
	frames [][]byte
	free   []uint32
}

// NewLocalStore creates the node's local frame pool.
func NewLocalStore(n *fabric.Node) *LocalStore {
	return &LocalStore{node: n}
}

// Alloc returns a zeroed local frame index.
func (ls *LocalStore) Alloc() uint32 {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if len(ls.free) > 0 {
		idx := ls.free[len(ls.free)-1]
		ls.free = ls.free[:len(ls.free)-1]
		clear(ls.frames[idx])
		return idx
	}
	ls.frames = append(ls.frames, make([]byte, PageSize))
	return uint32(len(ls.frames) - 1)
}

// Free returns a frame to the pool.
func (ls *LocalStore) Free(idx uint32) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.free = append(ls.free, idx)
}

// Page returns the frame's backing bytes. Only single-goroutine tests may
// touch the slice directly; the MMU paths go through readAt/writeAt/copyOut
// so concurrent access and migration serialize on the store's mutex.
func (ls *LocalStore) page(idx uint32) []byte {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.frames[idx]
}

// readAt copies frame bytes [off, off+len(buf)) into buf under the lock,
// so a concurrent migration or tiering demotion copying the frame out
// never races the byte transfer (the model's atomic line transfers).
func (ls *LocalStore) readAt(idx uint32, off uint64, buf []byte) {
	ls.mu.Lock()
	copy(buf, ls.frames[idx][off:])
	ls.mu.Unlock()
}

// writeAt copies data into frame bytes at off under the lock.
func (ls *LocalStore) writeAt(idx uint32, off uint64, data []byte) {
	ls.mu.Lock()
	copy(ls.frames[idx][off:], data)
	ls.mu.Unlock()
}

// copyOut snapshots the whole frame into a fresh buffer under the lock
// (migration and demotion's page transfer).
func (ls *LocalStore) copyOut(idx uint32) []byte {
	buf := make([]byte, PageSize)
	ls.mu.Lock()
	copy(buf, ls.frames[idx])
	ls.mu.Unlock()
	return buf
}

// Allocated returns how many frames the store has ever created.
func (ls *LocalStore) Allocated() int {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return len(ls.frames)
}
