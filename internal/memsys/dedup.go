package memsys

import (
	"bytes"
	"hash/fnv"

	"flacos/internal/flacdk/replication"
)

// DedupPass scans every global page mapped by this space and merges pages
// with identical content onto a single frame (§3.3's deduplication):
// duplicates are remapped copy-on-write to the canonical frame and their
// frames freed. Returns how many pages were merged; the memory saved is
// merged*PageSize.
//
// The pass runs from one MMU (a housekeeping thread). Concurrent writers
// are safe because both pages are write-protected (COW) BEFORE their
// contents are compared for the merge decision: a mapped-COW frame is
// immutable (any write copies away through breakCOW, changing the PTE),
// so equality observed after protection cannot be invalidated later, and
// a writer that slipped a store in before protection is caught by the
// post-protect re-read. Writers racing the protect itself re-validate
// their PTE after the store (MMU.Write) and redo the write through the
// COW fault path, so no store is ever silently absorbed into a shared
// frame.
func (m *MMU) DedupPass() (merged int) {
	m.vmaRep.Sync()
	var vmas []VMA
	m.vmaRep.ReadLocal(func(replication.StateMachine) {
		vmas = append([]VMA(nil), m.vmas.vmas...)
	})

	byHash := make(map[uint64][]dedupCanon)
	buf := make([]byte, PageSize)

	for _, vma := range vmas {
		for vpn := vma.StartVPN; vpn < vma.End(); vpn++ {
			p := PTE(m.space.pt.Get(m.node, vpn))
			if !p.Valid() || !p.Global() || p.Busy() {
				continue // busy: mid-move, the frame may be retired
			}
			m.readFrame(p, 0, buf)
			h := fnv.New64a()
			h.Write(buf)
			key := h.Sum64()

			matched := false
			for _, c := range byHash[key] {
				if !bytes.Equal(c.content, buf) {
					continue // hash collision
				}
				if c.pte.GlobalPhys() == p.GlobalPhys() {
					matched = true // already sharing the canonical frame
					break
				}
				if m.mergeInto(vpn, p, c) {
					merged++
					matched = true
					break
				}
			}
			if !matched {
				byHash[key] = append(byHash[key], dedupCanon{
					vpn:     vpn,
					pte:     p,
					content: append([]byte(nil), buf...),
				})
			}
		}
	}
	return merged
}

// dedupCanon records a candidate canonical page as first scanned.
type dedupCanon struct {
	vpn     uint64
	pte     PTE
	content []byte
}

// mergeInto remaps duplicate page vpn (scanned as p) onto canonical c's
// frame. Returns whether the merge happened; any lost race skips it.
func (m *MMU) mergeInto(vpn uint64, p PTE, c dedupCanon) bool {
	// 1. Write-protect the canonical mapping (make it COW) if a writer
	// could still store into its frame in place.
	canonPTE := PTE(m.space.pt.Get(m.node, c.vpn))
	switch canonPTE {
	case c.pte:
		if c.pte.Writable() {
			if !m.space.pt.CompareAndSwap(m.node, m.pta, c.vpn, uint64(c.pte), uint64(c.pte.WithCOW())) {
				return false
			}
			canonPTE = c.pte.WithCOW()
			m.tlb.invalidate(c.vpn)
			m.space.shootdown(m, c.vpn)
		}
	case c.pte.WithCOW():
		// Already protected (an earlier merge onto the same canonical).
	default:
		return false // canonical page changed; not a safe target
	}
	// 2. Write-protect the duplicate the same way.
	dup := p
	if dup.Writable() && !dup.COW() {
		prot := dup.WithCOW()
		if !m.space.pt.CompareAndSwap(m.node, m.pta, vpn, uint64(dup), uint64(prot)) {
			return false
		}
		dup = prot
		m.tlb.invalidate(vpn)
		m.space.shootdown(m, vpn)
	}
	// 3. Both frames are now immutable while so mapped; re-read and
	// re-compare to catch any store that landed before protection. On a
	// mismatch both pages simply stay COW — correct, merely slower.
	ca := make([]byte, PageSize)
	da := make([]byte, PageSize)
	m.readFrame(MakeGlobalPTE(c.pte.GlobalPhys(), false), 0, ca)
	m.readFrame(MakeGlobalPTE(dup.GlobalPhys(), false), 0, da)
	if !bytes.Equal(ca, da) {
		return false
	}
	// 4. Re-confirm the canonical mapping still pins its frame, take a
	// reference, and repoint the duplicate.
	if PTE(m.space.pt.Get(m.node, c.vpn)) != canonPTE {
		return false
	}
	if !m.space.frames.TryRef(m.node, c.pte.GlobalPhys()) {
		return false // every sharer COW-broke away and the frame was freed
	}
	target := MakeGlobalPTE(c.pte.GlobalPhys(), false) | PteCOW
	if !m.space.pt.CompareAndSwap(m.node, m.pta, vpn, uint64(dup), uint64(target)) {
		m.space.frames.Unref(m.node, c.pte.GlobalPhys())
		return false // page changed under us; skip
	}
	m.tlb.invalidate(vpn)
	m.space.shootdown(m, vpn)
	m.space.frames.Unref(m.node, dup.GlobalPhys())
	return true
}
