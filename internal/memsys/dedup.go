package memsys

import (
	"bytes"
	"hash/fnv"

	"flacos/internal/flacdk/replication"
)

// DedupPass scans every global page mapped by this space and merges pages
// with identical content onto a single frame (§3.3's deduplication):
// duplicates are remapped copy-on-write to the canonical frame and their
// frames freed. Returns how many pages were merged; the memory saved is
// merged*PageSize.
//
// The pass runs from one MMU (a housekeeping thread); concurrent writers
// are safe because remapping uses CAS against the observed PTE — a page
// that changed under the scanner simply fails its CAS and is skipped.
func (m *MMU) DedupPass() (merged int) {
	m.vmaRep.Sync()
	var vmas []VMA
	m.vmaRep.ReadLocal(func(replication.StateMachine) {
		vmas = append([]VMA(nil), m.vmas.vmas...)
	})

	type canon struct {
		vpn     uint64
		pte     PTE
		content []byte
	}
	byHash := make(map[uint64][]canon)
	buf := make([]byte, PageSize)

	for _, vma := range vmas {
		for vpn := vma.StartVPN; vpn < vma.End(); vpn++ {
			p := PTE(m.space.pt.Get(m.node, vpn))
			if !p.Valid() || !p.Global() {
				continue
			}
			m.readFrame(p, 0, buf)
			h := fnv.New64a()
			h.Write(buf)
			key := h.Sum64()

			matched := false
			for _, c := range byHash[key] {
				if !bytes.Equal(c.content, buf) {
					continue // hash collision
				}
				if c.pte.GlobalPhys() == p.GlobalPhys() {
					matched = true // already sharing the canonical frame
					break
				}
				// Make the canonical mapping COW if it is not already.
				canonPTE := PTE(m.space.pt.Get(m.node, c.vpn))
				if canonPTE != c.pte && canonPTE != c.pte.WithCOW() {
					continue // canonical page changed; not a safe target
				}
				if canonPTE == c.pte && c.pte.Writable() {
					if !m.space.pt.CompareAndSwap(m.node, m.pta, c.vpn, uint64(c.pte), uint64(c.pte.WithCOW())) {
						continue
					}
					m.space.shootdown(m, c.vpn)
				}
				// Repoint the duplicate at the canonical frame, COW.
				target := MakeGlobalPTE(c.pte.GlobalPhys(), false) | PteCOW
				m.space.frames.Ref(m.node, c.pte.GlobalPhys())
				if !m.space.pt.CompareAndSwap(m.node, m.pta, vpn, uint64(p), uint64(target)) {
					m.space.frames.Unref(m.node, c.pte.GlobalPhys())
					continue // page changed under us; skip
				}
				m.tlb.invalidate(vpn)
				m.space.shootdown(m, vpn)
				m.space.frames.Unref(m.node, p.GlobalPhys())
				merged++
				matched = true
				break
			}
			if !matched {
				byHash[key] = append(byHash[key], canon{
					vpn:     vpn,
					pte:     p,
					content: append([]byte(nil), buf...),
				})
			}
		}
	}
	return merged
}
