package memsys

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/alloc"
	"flacos/internal/flacdk/ds"
	"flacos/internal/flacdk/replication"
	"flacos/internal/trace"
)

// brokenSkipShootdown suppresses remote TLB shootdowns — a deliberately
// broken sync path the torture harness enables (-torture-break shootdown)
// to prove its no-stale-mapping checker catches a missing shootdown.
var brokenSkipShootdown atomic.Bool

// SetBrokenSkipShootdown toggles the torture-only broken shootdown path.
func SetBrokenSkipShootdown(on bool) { brokenSkipShootdown.Store(on) }

// Prot is a mapping's protection.
type Prot uint32

// Protection flags.
const (
	ProtRead  Prot = 1 << 0
	ProtWrite Prot = 1 << 1
)

// Backing selects which memory tier a VMA's pages come from.
type Backing uint32

// Backing tiers.
const (
	// BackGlobal pages live in interconnect-attached global memory and are
	// reachable from every node — the default for shared data.
	BackGlobal Backing = iota
	// BackLocal pages live in the faulting node's local DRAM; a remote
	// access migrates them into global memory (§3.3's unified indexing of
	// both memories).
	BackLocal
	// BackFile pages map a file through the shared page cache
	// (MAP_PRIVATE semantics): faults resolve to the cache's frame for
	// that file page, mapped read-only; writes COW into a private frame.
	// The Space needs a PageSource (SetPageSource) and must share the
	// file system's frame pool.
	BackFile
)

// PageSource resolves file pages to page-cache frames for BackFile
// mappings. fs.Mount implements it. The returned frame must carry a
// reference for the mapping (released on unmap or COW break).
type PageSource interface {
	PageFrame(fileID uint64, page uint32) (phys uint64, ok bool)
}

// VMA describes one mapped region. VMAs are the paper's canonical
// "node-local structure": each node holds a replica, synchronized through
// the FlacDK replication log rather than shared memory, because they are
// consulted on every fault but changed rarely.
type VMA struct {
	StartVPN uint64
	Pages    uint64
	Prot     Prot
	Backing  Backing
	// FileID and FilePage locate the backing file range (BackFile only).
	FileID   uint64
	FilePage uint32
}

// End returns one past the VMA's last VPN.
func (v VMA) End() uint64 { return v.StartVPN + v.Pages }

const (
	vmaOpMap   = 1
	vmaOpUnmap = 2
)

// vmaSM is the replicated VMA table: a sorted slice, identical on every
// attached node after replay.
type vmaSM struct {
	vmas []VMA
}

func (s *vmaSM) Apply(op uint32, payload []byte) uint64 {
	start := binary.LittleEndian.Uint64(payload)
	pages := binary.LittleEndian.Uint64(payload[8:])
	switch op {
	case vmaOpMap:
		prot := Prot(binary.LittleEndian.Uint32(payload[16:]))
		backing := Backing(binary.LittleEndian.Uint32(payload[20:]))
		vma := VMA{StartVPN: start, Pages: pages, Prot: prot, Backing: backing}
		if len(payload) >= 36 {
			vma.FileID = binary.LittleEndian.Uint64(payload[24:])
			vma.FilePage = binary.LittleEndian.Uint32(payload[32:])
		}
		for _, v := range s.vmas {
			if start < v.End() && v.StartVPN < start+pages {
				return 0 // overlap: rejected deterministically on every replica
			}
		}
		s.vmas = append(s.vmas, vma)
		sort.Slice(s.vmas, func(i, j int) bool { return s.vmas[i].StartVPN < s.vmas[j].StartVPN })
		return 1
	case vmaOpUnmap:
		for i, v := range s.vmas {
			if v.StartVPN == start && v.Pages == pages {
				s.vmas = append(s.vmas[:i], s.vmas[i+1:]...)
				return 1
			}
		}
		return 0
	}
	return 0
}

// lookup returns the VMA covering vpn.
func (s *vmaSM) lookup(vpn uint64) (VMA, bool) {
	i := sort.Search(len(s.vmas), func(i int) bool { return s.vmas[i].End() > vpn })
	if i < len(s.vmas) && s.vmas[i].StartVPN <= vpn {
		return s.vmas[i], true
	}
	return VMA{}, false
}

// Space is one rack-wide address space: a page table shared in global
// memory plus the replicated VMA table. Any node may attach an MMU and the
// resulting threads see a single unified address space — the paper's
// "address space sharing and multi-threading support across the entire
// rack".
type Space struct {
	ID     uint64
	fab    *fabric.Fabric
	pt     *ds.RadixTree
	frames *GlobalFrames
	vmaLog *replication.Log

	mu     sync.Mutex
	mmus   []*MMU
	source PageSource

	trw     []atomic.Pointer[trace.Writer] // per-node flight-recorder hooks
	sampler atomic.Pointer[samplerBox]     // tiering access-heat hook
}

// Sampler observes the MMU translate path. Implementations must be safe
// for concurrent use from every attached node and cheap enough for the
// hot path (the tiering daemon's sharded heat map is the intended one;
// alloc.HotnessTracker's single mutex-guarded map is not).
type Sampler interface {
	// Sample is called once per successful translation (TLB hit or miss)
	// with the accessing node, the page, and whether the access wrote.
	Sample(node int, vpn uint64, write bool)
	// Migrated is called after a demand migration pulled a node-local page
	// into the global tier (MMU.migrateToGlobal), so a placement daemon
	// tracking tiers learns the page moved without scanning the page table.
	Migrated(vpn uint64, fromNode int)
}

// samplerBox exists because atomic.Pointer cannot hold an interface.
type samplerBox struct{ s Sampler }

// SetSampler installs (or, with nil, removes) the space's access sampler.
func (s *Space) SetSampler(sm Sampler) {
	if sm == nil {
		s.sampler.Store(nil)
		return
	}
	s.sampler.Store(&samplerBox{s: sm})
}

// SetPageSource installs the file-page resolver for BackFile mappings.
// The source's frames must come from this space's frame pool.
func (s *Space) SetPageSource(src PageSource) {
	s.mu.Lock()
	s.source = src
	s.mu.Unlock()
}

func (s *Space) pageSource() PageSource {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.source
}

// NewSpace creates an address space. pta allocates page-table nodes;
// vmaLogCap sizes the VMA operation log (VMA churn between syncs).
func NewSpace(f *fabric.Fabric, id uint64, frames *GlobalFrames, pta *alloc.NodeAllocator, vmaLogCap uint64) *Space {
	return &Space{
		ID:     id,
		fab:    f,
		pt:     ds.NewRadixTree(f, pta, 32), // 32-bit VPNs: 16 TiB of VA
		frames: f2frames(frames),
		vmaLog: replication.NewLog(f, vmaLogCap),
		trw:    make([]atomic.Pointer[trace.Writer], f.NumNodes()),
	}
}

func f2frames(gf *GlobalFrames) *GlobalFrames {
	if gf == nil {
		panic("memsys: NewSpace requires a GlobalFrames allocator")
	}
	return gf
}

// Frames returns the space's global frame allocator.
func (s *Space) Frames() *GlobalFrames { return s.frames }

// Attach creates node n's MMU for this space. pta allocates page-table
// nodes on faults; ls is the node's local frame pool (may be nil if the
// space never uses BackLocal). A node attaches to a space at most once
// (the VMA log keeps one replica cursor per node); Attach panics on a
// second live attachment from the same node.
func (s *Space) Attach(n *fabric.Node, pta *alloc.NodeAllocator, ls *LocalStore, tlbCap int) *MMU {
	s.mu.Lock()
	for _, x := range s.mmus {
		if x.node.ID() == n.ID() {
			s.mu.Unlock()
			panic(fmt.Sprintf("memsys: node %d already attached to space %d", n.ID(), s.ID))
		}
	}
	s.mu.Unlock()
	m := &MMU{
		space: s,
		node:  n,
		pta:   pta,
		local: ls,
		vmas:  &vmaSM{},
		tlb:   newTLB(tlbCap),
	}
	m.vmaRep = s.vmaLog.Replica(n, m.vmas)
	s.mu.Lock()
	s.mmus = append(s.mmus, m)
	s.mu.Unlock()
	return m
}

// AttachedNodes returns the IDs of nodes holding a live MMU attachment,
// deduplicated, in attach order. The scheduler uses it as the locality
// oracle: a node attached to the space has its page-table walks cached
// and its local frames mapped, so work against the space runs cheapest
// there (sched.SubmitToSpace).
func (s *Space) AttachedNodes() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[int]bool, len(s.mmus))
	out := make([]int, 0, len(s.mmus))
	for _, m := range s.mmus {
		if id := m.node.ID(); !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// Detach removes an MMU from the shootdown registry and the VMA log's
// recycle constraint.
func (s *Space) Detach(m *MMU) {
	s.mu.Lock()
	for i, x := range s.mmus {
		if x == m {
			s.mmus = append(s.mmus[:i], s.mmus[i+1:]...)
			break
		}
	}
	remaining := 0
	for _, x := range s.mmus {
		if x.node.ID() == m.node.ID() {
			remaining++
		}
	}
	s.mu.Unlock()
	if remaining == 0 {
		s.vmaLog.Deregister(m.node, m.node.ID())
	}
}

// shootdown invalidates vpn from every other attached MMU's TLB — the
// rack-wide TLB shootdown of §3.3, modeled as one IPI per remote MMU.
func (s *Space) shootdown(from *MMU, vpn uint64) {
	if brokenSkipShootdown.Load() {
		return
	}
	s.mu.Lock()
	targets := make([]*MMU, 0, len(s.mmus))
	for _, m := range s.mmus {
		if m != from {
			targets = append(targets, m)
		}
	}
	s.mu.Unlock()
	for _, m := range targets {
		m.tlb.invalidate(vpn)
		m.stats.ShootdownsReceived.Add(1)
		from.node.ChargeNS(ipiCostNS)
	}
	from.stats.ShootdownsSent.Add(uint64(len(targets)))
	s.emit(from.node, trace.KShootdown, vpn, uint64(len(targets)))
}

// shootdownBatch invalidates every vpn in vpns from every other attached
// MMU's TLB with ONE modeled IPI per remote MMU for the whole batch — the
// batched-migration amortization: a tiering step that moves a thousand
// pages interrupts each peer once, not a thousand times.
func (s *Space) shootdownBatch(from *MMU, vpns []uint64) {
	if len(vpns) == 0 || brokenSkipShootdown.Load() {
		return
	}
	s.mu.Lock()
	targets := make([]*MMU, 0, len(s.mmus))
	for _, m := range s.mmus {
		if m != from {
			targets = append(targets, m)
		}
	}
	s.mu.Unlock()
	for _, m := range targets {
		for _, vpn := range vpns {
			m.tlb.invalidate(vpn)
		}
		m.stats.ShootdownsReceived.Add(1)
		from.node.ChargeNS(ipiCostNS)
	}
	from.stats.ShootdownsSent.Add(uint64(len(targets)))
	s.emit(from.node, trace.KShootdown, vpns[0], uint64(len(targets)))
}

// ipiCostNS is the modeled cost of one cross-node interrupt.
const ipiCostNS = 1500

// MapError describes an address-space operation failure.
type MapError struct {
	Op  string
	VA  uint64
	Why string
}

func (e *MapError) Error() string {
	return fmt.Sprintf("memsys: %s va=%#x: %s", e.Op, e.VA, e.Why)
}
